//===- examples/quickstart.cpp - Five-minute tour of the library ----------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
// Builds the paper's Example 2, allocates it with the combined
// (parallelizable-interference-graph) framework, schedules it for the
// paper's two-arithmetic-unit machine, and prints everything a user needs
// to see: the symbolic code, the allocation, the cycle-by-cycle schedule,
// and the simulator's verdict.
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"
#include "machine/MachineModel.h"
#include "pipeline/Strategies.h"
#include "sim/SuperscalarSim.h"
#include "workloads/Kernels.h"

#include <iostream>

using namespace pira;

int main() {
  Function Program = paperExample2();
  MachineModel Machine = MachineModel::paperTwoUnit(/*Regs=*/4);

  std::cout << "=== Input (symbolic registers) ===\n";
  printFunction(Program, std::cout);

  PipelineResult R = runAndMeasure(StrategyKind::Combined, Program, Machine);
  if (!R.Success) {
    std::cerr << "pipeline failed: " << R.Error << '\n';
    return 1;
  }

  std::cout << "\n=== After combined allocation (physical registers) ===\n";
  printFunction(R.Final, std::cout);

  std::cout << "\n=== Schedule on " << Machine.name() << " ===\n";
  for (unsigned B = 0; B != R.Final.numBlocks(); ++B) {
    std::cout << "block " << R.Final.block(B).name() << ":\n";
    auto Groups = R.Sched.Blocks[B].groupsByCycle();
    for (unsigned C = 0; C != Groups.size(); ++C) {
      std::cout << "  cycle " << C << ":";
      for (unsigned I : Groups[C])
        std::cout << "   ["
                  << formatInstruction(R.Final.block(B).inst(I),
                                       /*Physical=*/true, &R.Final)
                  << "]";
      std::cout << '\n';
    }
  }

  std::cout << "\n=== Results ===\n"
            << "registers used:      " << R.RegistersUsed << '\n'
            << "spilled live ranges: " << R.SpilledWebs << '\n'
            << "false dependences:   " << R.FalseDeps << '\n'
            << "static cycles:       " << R.StaticCycles << '\n'
            << "dynamic cycles:      " << R.DynCycles << '\n'
            << "semantics preserved: "
            << (R.SemanticsPreserved ? "yes" : "NO") << '\n';
  return 0;
}
