//===- examples/pirac.cpp - Textual-IR compiler driver --------------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
// A miniature compiler driver over the textual IR: parse a function from
// a file (or stdin), verify it, run the chosen phase-ordering strategy
// for the chosen machine, and print the allocated code, schedule, and
// statistics. With no input file it compiles a built-in sample so the
// binary runs out of the box.
//
// With several input files, or with --jobs, pirac switches to the batch
// driver: every function is compiled through compileBatch() over the
// work-stealing pool (worker count from --jobs, else PIRA_JOBS, else the
// hardware), a per-function summary table is printed in input order, and
// --stats-out emits the batch-shaped "pira.stats" report. Batch results
// and reports are byte-identical for any --jobs value; only the "timers"
// section varies (see DESIGN.md).
//
// Usage: pirac [file.pir ...]
//          [--strategy alloc-first|sched-first|ips|combined]
//          [--machine scalar|paper|mips|rs6000|vliw4]
//          [--machine-file desc.mach] [--regs N] [--jobs N]
//          [--dump-graphs]
//          [--trace-out trace.json] [--stats-out stats.json]
//          [--time-passes]
//
//===----------------------------------------------------------------------===//

#include "analysis/Webs.h"
#include "core/FalseDependenceGraph.h"
#include "core/ParallelInterferenceGraph.h"
#include "ir/Parser.h"
#include "regalloc/InterferenceGraph.h"
#include "support/DotWriter.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "machine/MachineConfig.h"
#include "machine/MachineModel.h"
#include "pipeline/Batch.h"
#include "pipeline/Report.h"
#include "pipeline/Strategies.h"
#include "support/Telemetry.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace pira;

static const char *SampleProgram = R"(# Built-in sample: strided array sum.
func @sample regs 16 {
  array data 64
  array out 1
block entry:
  %s0 = li 0        # sum
  %s1 = li 0        # i
  %s2 = li 64       # n
  %s3 = li 2        # stride
  br loop
block loop:
  %s4 = load data[%s1]
  %s5 = load data[%s1 + 1]
  %s6 = fmul %s4, %s5
  %s0 = fadd %s0, %s6
  %s1 = add %s1, %s3
  %s7 = cmplt %s1, %s2
  cbr %s7, loop, done
block done:
  store out[0], %s0
  ret %s0
}
)";

int main(int argc, char **argv) {
  // (name, source) per input; empty after flag parsing means the sample.
  std::vector<std::pair<std::string, std::string>> Inputs;
  StrategyKind Strategy = StrategyKind::Combined;
  MachineModel Machine = MachineModel::rs6000();
  unsigned Regs = 0;
  unsigned Jobs = 0;
  bool BatchMode = false;
  bool DumpGraphs = false;
  std::string TraceOut;
  std::string StatsOut;
  bool TimePasses = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto NextValue = [&]() -> std::string {
      if (I + 1 >= argc) {
        std::cerr << "missing value for " << Arg << '\n';
        std::exit(1);
      }
      return argv[++I];
    };
    if (Arg == "--strategy") {
      std::string V = NextValue();
      if (V == "alloc-first")
        Strategy = StrategyKind::AllocFirst;
      else if (V == "sched-first")
        Strategy = StrategyKind::SchedFirst;
      else if (V == "ips")
        Strategy = StrategyKind::IntegratedPrepass;
      else if (V == "combined")
        Strategy = StrategyKind::Combined;
      else {
        std::cerr << "unknown strategy '" << V << "'\n";
        return 1;
      }
    } else if (Arg == "--machine") {
      std::string V = NextValue();
      if (V == "scalar")
        Machine = MachineModel::scalar();
      else if (V == "paper")
        Machine = MachineModel::paperTwoUnit();
      else if (V == "mips")
        Machine = MachineModel::mipsR3000();
      else if (V == "rs6000")
        Machine = MachineModel::rs6000();
      else if (V == "vliw4")
        Machine = MachineModel::vliw4();
      else {
        std::cerr << "unknown machine '" << V << "'\n";
        return 1;
      }
    } else if (Arg == "--machine-file") {
      std::ifstream In(NextValue());
      if (!In) {
        std::cerr << "cannot open machine description\n";
        return 1;
      }
      std::ostringstream SS;
      SS << In.rdbuf();
      std::string MachineError;
      std::optional<MachineModel> Parsed =
          parseMachineModel(SS.str(), MachineError);
      if (!Parsed) {
        std::cerr << "machine description error: " << MachineError << '\n';
        return 1;
      }
      Machine = *Parsed;
    } else if (Arg == "--regs") {
      Regs = static_cast<unsigned>(std::atoi(NextValue().c_str()));
    } else if (Arg == "--jobs") {
      Jobs = static_cast<unsigned>(std::atoi(NextValue().c_str()));
      BatchMode = true;
    } else if (Arg == "--dump-graphs") {
      DumpGraphs = true;
    } else if (Arg == "--trace-out") {
      TraceOut = NextValue();
    } else if (Arg == "--stats-out") {
      StatsOut = NextValue();
    } else if (Arg == "--time-passes") {
      TimePasses = true;
    } else if (Arg == "-") {
      std::ostringstream SS;
      SS << std::cin.rdbuf();
      Inputs.emplace_back("<stdin>", SS.str());
    } else {
      std::ifstream In(Arg);
      if (!In) {
        std::cerr << "cannot open '" << Arg << "'\n";
        return 1;
      }
      std::ostringstream SS;
      SS << In.rdbuf();
      Inputs.emplace_back(Arg, SS.str());
    }
  }
  if (Regs != 0)
    Machine.setNumPhysRegs(Regs);
  if (Inputs.empty())
    Inputs.emplace_back("<sample>", SampleProgram);
  if (Inputs.size() > 1)
    BatchMode = true;

  std::vector<BatchItem> Batch;
  std::string Error;
  for (const auto &[Name, Source] : Inputs) {
    Function F;
    if (!parseFunction(Source, F, Error)) {
      std::cerr << Name << ": parse error: " << Error << '\n';
      return 1;
    }
    if (!verifyFunction(F, Error)) {
      std::cerr << Name << ": verify error: " << Error << '\n';
      return 1;
    }
    Batch.push_back({Name, std::move(F)});
  }

  if (BatchMode) {
    if (!TraceOut.empty() || !StatsOut.empty() || TimePasses)
      telemetry::setEnabled(true);
    BatchOptions Opts;
    Opts.Strategy = Strategy;
    Opts.Jobs = Jobs;
    BatchResult BR = compileBatch(Batch, Machine, Opts);
    std::cout << "; batch of " << Batch.size() << " function(s), "
              << strategyName(Strategy) << " for " << Machine.name() << " ("
              << Machine.numPhysRegs() << " regs), " << BR.JobsUsed
              << " worker(s)\n";
    for (size_t I = 0; I != Batch.size(); ++I) {
      const PipelineResult &R = BR.Results[I];
      std::cout << ";   " << Batch[I].Name << " @"
                << Batch[I].Input.name() << ": ";
      if (R.Success)
        std::cout << "regs " << R.RegistersUsed << ", spills "
                  << R.SpillInstructions << ", false deps " << R.FalseDeps
                  << ", cycles " << R.DynCycles << ", semantics "
                  << (R.SemanticsPreserved ? "pass" : "FAIL") << '\n';
      else
        std::cout << "FAILED: " << R.Error << '\n';
    }
    std::cout << "; batch: " << BR.Succeeded << "/" << BR.Results.size()
              << " ok, static cycles " << BR.TotalStaticCycles
              << ", dynamic cycles " << BR.TotalDynCycles << '\n';

    bool ReportsOk = true;
    std::string ReportError;
    if (!TraceOut.empty() &&
        !telemetry::writeChromeTraceFile(TraceOut, ReportError)) {
      std::cerr << "trace-out: " << ReportError << '\n';
      ReportsOk = false;
    }
    if (!StatsOut.empty() &&
        !writeJsonFile(makeBatchStatsReport(BR, Batch, strategyName(Strategy),
                                            Machine),
                       StatsOut, ReportError)) {
      std::cerr << "stats-out: " << ReportError << '\n';
      ReportsOk = false;
    }
    if (TimePasses)
      telemetry::printTimerReport(std::cerr);
    return (BR.Succeeded == BR.Results.size() && ReportsOk) ? 0 : 1;
  }

  Function F = std::move(Batch.front().Input);

  if (DumpGraphs) {
    // Per-block paper graphs in DOT, before compilation touches F.
    Webs W(F);
    InterferenceGraph IG(F, W);
    ParallelInterferenceGraph PIG(F, W, IG, Machine);
    {
      DotWriter Dot(std::cout, "pig", /*Directed=*/false);
      for (unsigned Web = 0; Web != PIG.numWebs(); ++Web)
        Dot.node(Web, "%s" + std::to_string(W.webRegister(Web)));
      for (const auto &[A2, B2] : PIG.interference().edgeList())
        Dot.edge(A2, B2);
      for (const auto &[A2, B2] : PIG.parallel().edgeList())
        if (!PIG.interference().hasEdge(A2, B2))
          Dot.edge(A2, B2, "style=dashed, color=blue");
    }
    for (unsigned B2 = 0; B2 != F.numBlocks(); ++B2) {
      FalseDependenceGraph FDG(F, B2, Machine);
      DotWriter Dot(std::cout, "ef_" + F.block(B2).name(),
                    /*Directed=*/false);
      for (unsigned V = 0; V != FDG.size(); ++V)
        Dot.node(V, F.block(B2).name() + ":" + std::to_string(V));
      Dot.allEdges(FDG.parallelPairs(), "style=dashed");
    }
  }

  std::cout << "; compiling @" << F.name() << " with "
            << strategyName(Strategy) << " for " << Machine.name() << " ("
            << Machine.numPhysRegs() << " regs)\n\n";

  // Telemetry is opt-in: any observability flag turns on scope recording
  // for the compilation that follows.
  if (!TraceOut.empty() || !StatsOut.empty() || TimePasses)
    telemetry::setEnabled(true);

  PipelineResult R = runAndMeasure(Strategy, F, Machine);

  // Reports are written even for failed runs — a trace of a failing
  // pipeline is exactly when you want one.
  auto EmitReports = [&]() -> bool {
    bool Ok = true;
    std::string ReportError;
    if (!TraceOut.empty() &&
        !telemetry::writeChromeTraceFile(TraceOut, ReportError)) {
      std::cerr << "trace-out: " << ReportError << '\n';
      Ok = false;
    }
    if (!StatsOut.empty() &&
        !writeJsonFile(makeStatsReport(R, strategyName(Strategy), Machine),
                       StatsOut, ReportError)) {
      std::cerr << "stats-out: " << ReportError << '\n';
      Ok = false;
    }
    if (TimePasses)
      telemetry::printTimerReport(std::cerr);
    return Ok;
  };

  if (!R.Success) {
    std::cerr << "compilation failed: " << R.Error << '\n';
    EmitReports();
    return 1;
  }

  printFunction(R.Final, std::cout);
  std::cout << "\n; schedule:\n";
  for (unsigned B = 0; B != R.Final.numBlocks(); ++B) {
    std::cout << "; block " << R.Final.block(B).name() << " ("
              << R.Sched.Blocks[B].Makespan << " cycles)\n";
    auto Groups = R.Sched.Blocks[B].groupsByCycle();
    for (unsigned C = 0; C != Groups.size(); ++C) {
      std::cout << ";   " << C << ":";
      for (unsigned I : Groups[C])
        std::cout << "  " << formatInstruction(R.Final.block(B).inst(I),
                                               true, &R.Final);
      std::cout << '\n';
    }
  }
  std::cout << "\n; registers used:   " << R.RegistersUsed
            << "\n; spill instrs:     " << R.SpillInstructions
            << "\n; false deps:       " << R.FalseDeps
            << "\n; dynamic cycles:   " << R.DynCycles
            << "\n; semantics check:  "
            << (R.SemanticsPreserved ? "pass" : "FAIL") << '\n';
  return EmitReports() ? 0 : 1;
}
