//===- examples/pirac.cpp - Textual-IR compiler driver --------------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
// A miniature compiler driver over the textual IR: parse a function from
// a file (or stdin), verify it, run the chosen phase-ordering strategy
// for the chosen machine, and print the allocated code, schedule, and
// statistics. With no input file it compiles a built-in sample so the
// binary runs out of the box.
//
// With several input files, or with --jobs, pirac switches to the batch
// driver: every function is compiled through compileBatch() over the
// work-stealing pool (worker count from --jobs, else PIRA_JOBS, else the
// hardware), a per-function summary table is printed in input order, and
// --stats-out emits the batch-shaped "pira.stats" report. Batch results
// and reports are byte-identical for any --jobs value; only the "timers"
// section varies (see DESIGN.md).
//
// The driver is fault-isolated end to end: an unreadable, unparsable, or
// unverifiable input gets a per-file diagnostic and is skipped — never a
// reason to abandon the rest of the batch — and every function compiles
// through the guarded pipeline (budget checks, watchdog deadline,
// degradation ladder; DESIGN.md §8). Input failures land in the stats
// report's "failures" section next to compile failures, and pirac exits
// nonzero at the end if anything went wrong along the way.
//
// Usage: pirac [file.pir ...]
//          [--strategy alloc-first|sched-first|ips|combined|spill-all|oracle]
//          [--machine scalar|paper|mips|rs6000|vliw4]
//          [--machine-file desc.mach] [--regs N] [--jobs N]
//          [--deadline-ms N] [--max-instructions N] [--max-blocks N]
//          [--oracle-max-insts N] [--oracle-node-budget N]
//          [--tournament] [--corpus-count N] [--corpus-insts N]
//          [--corpus-seed N]
//          [--no-degrade] [--fault-inject site:n[,site:n...]]
//          [--cache off|on|verify] [--cache-dir DIR]
//          [--cache-remote PORT|SOCKET] [--cache-max-mb N]
//          [--isolate] [--retries N] [--retry-backoff-ms N]
//          [--child-timeout-ms N] [--child-mem-mb N]
//          [--journal FILE] [--resume]
//          [--client] [--socket PATH] [--tcp PORT] [--client-retries N]
//          [--client-backoff-ms N] [--client-verbose] [--daemon-stats]
//          [--dump-graphs]
//          [--trace-out trace.json] [--stats-out stats.json]
//          [--metrics-out metrics.prom] [--progress]
//          [--time-passes] [--version]
//
// Observability sinks: --stats-out writes the versioned "pira.stats"
// JSON report, --trace-out the merged Chrome trace (in --isolate runs
// the children's phase spans nest under the parent's spawn/ladder
// spans, each under its real pid), and --metrics-out the counter and
// histogram registries in the Prometheus/OpenMetrics text format. Each
// sink accepts "-" for stdout, but only one may take it (exit 2
// otherwise), and when one does, the human-readable output moves to
// stderr so the machine-readable stream stays clean. --progress draws a
// rate-limited, TTY-aware live status line on stderr while a batch
// runs. --version prints the build-provenance line and exits.
//
// --strategy oracle runs the exact branch-and-bound search
// (pipeline/Oracle.h) — provably minimum-makespan spill-free code for
// small single blocks; --oracle-max-insts and --oracle-node-budget set
// its scope cap and search budget. Out-of-scope or over-budget inputs
// fail with a search-exhausted diagnostic and (in batch mode) degrade
// down the ladder like any other rung failure.
//
// --tournament runs the heuristic-gap tournament instead of a compile:
// every strategy compiles every corpus function and the aggregate
// gap-vs-oracle table is printed (pipeline/Tournament.h). The corpus is
// generated (--corpus-count/--corpus-insts/--corpus-seed) unless input
// files are given, which then form the corpus. --stats-out emits the
// "pira.tournament" v1 report, byte-identical across --jobs values.
//
// --fault-inject (or the PIRA_FAULT environment variable) arms the
// deterministic fault-injection harness; see support/FaultInjection.h
// for the site table.
//
// --cache-dir DIR arms the content-addressed compilation cache
// (pipeline/Cache.h) with an on-disk tier under DIR, implying
// --cache on unless a mode was given explicitly; --cache on alone runs
// memory-only. --cache verify recompiles hits anyway and cross-checks
// byte identity; any mismatch makes the run exit nonzero. Caching
// applies in batch mode (several inputs, or --jobs).
//
// --cache-remote TARGET (a loopback TCP port if all digits, else a unix
// socket path) chains a shared remote tier in front of the local ones:
// lookups ask a `pirac serve --cache-serve` daemon first and fall back
// to disk, memory, and recompilation; inserts publish back best-effort.
// Every fetched entry is digest-verified and fully decoded before use —
// anything suspect is quarantined and recompiled — and every remote
// failure (dead daemon, timeout, tripped breaker) silently degrades to
// the local tiers, so reports stay byte-identical with or without the
// remote (DESIGN.md §13). Implies --cache on like --cache-dir does.
// --cache-max-mb N bounds the on-disk tier (requires --cache-dir),
// trimming oldest entries first; entries written by the current run are
// never trimmed.
//
// --isolate compiles every ladder rung in a sandboxed child process
// (`pirac --worker`, an internal mode that reads one job document from
// stdin): a crash, OOM kill, or hard hang in one function becomes a
// structured ChildCrashed / ChildKilled / ChildTimeout diagnostic and
// the batch keeps going. --retries N retries spawn failures and killed
// children with deterministic exponential backoff; --child-timeout-ms
// arms a per-child wall-clock SIGKILL watchdog; --child-mem-mb caps the
// child's address space (leave it off under sanitizers).
//
// --journal FILE records every finished function in a crash-safe
// append-only journal; --resume (requires --journal) replays recorded
// positions instead of recompiling, so a batch killed partway — even
// with kill -9 — reproduces the uninterrupted run's report (modulo
// "timers"/"counters") on the second invocation.
//
// `pirac serve --socket PATH [--tcp PORT]` runs the crash-tolerant
// compile daemon (service/Server.h): concurrent clients, a permanently
// warm compilation cache, bounded-queue admission with structured
// overload shedding, per-client budgets, server-enforced deadlines,
// SIGTERM graceful drain (exit 0) vs SIGINT fast abort (exit 130).
// With --cache-serve the daemon also answers the shared-cache protocol
// (lookup/store against its warm cache) for --cache-remote clients;
// --cache-remote TARGET chains its own misses to an upstream daemon,
// and --cache-max-mb bounds its disk tier.
// `pirac --client --socket PATH file.pir ...` runs a batch against the
// daemon instead of in-process; the client reconnects with bounded
// doubling backoff, so killing and restarting the daemon mid-batch is
// invisible. The remote report is byte-identical to the in-process one
// (modulo the usual volatile sections). --daemon-stats prints the
// daemon's pira.serve-stats document and exits. --client rejects
// --isolate/--journal/--cache/--fault-inject: those are daemon-side
// (or process-global) concerns.
//
// Exit codes are a stable contract: 0 = everything compiled and
// verified clean; 1 = at least one input or compile/verify failure
// (including cache-verify mismatches); 2 = usage errors (bad flag,
// missing value, --resume without --journal); 3 = internal errors — an
// unusable or mismatched journal, journal append failures, a report
// that could not be written, or a malformed --worker job. 3 takes
// precedence over 1 when both apply.
//
//===----------------------------------------------------------------------===//

#include "analysis/Webs.h"
#include "core/FalseDependenceGraph.h"
#include "core/ParallelInterferenceGraph.h"
#include "ir/Parser.h"
#include "regalloc/InterferenceGraph.h"
#include "support/DotWriter.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "machine/MachineConfig.h"
#include "machine/MachineModel.h"
#include "pipeline/Batch.h"
#include "pipeline/Cache.h"
#include "pipeline/Journal.h"
#include "pipeline/Report.h"
#include "pipeline/Strategies.h"
#include "pipeline/Tournament.h"
#include "pipeline/Worker.h"
#include "service/CacheClient.h"
#include "service/Client.h"
#include "service/Server.h"
#include "support/FaultInjection.h"
#include "support/Io.h"
#include "support/Subprocess.h"
#include "support/Telemetry.h"

#include <charconv>
#include <csignal>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <system_error>
#include <vector>

using namespace pira;

static const char *SampleProgram = R"(# Built-in sample: strided array sum.
func @sample regs 16 {
  array data 64
  array out 1
block entry:
  %s0 = li 0        # sum
  %s1 = li 0        # i
  %s2 = li 64       # n
  %s3 = li 2        # stride
  br loop
block loop:
  %s4 = load data[%s1]
  %s5 = load data[%s1 + 1]
  %s6 = fmul %s4, %s5
  %s0 = fadd %s0, %s6
  %s1 = add %s1, %s3
  %s7 = cmplt %s1, %s2
  cbr %s7, loop, done
block done:
  store out[0], %s0
  ret %s0
}
)";

/// Strictly parses \p Text as a decimal count for \p Flag: the whole
/// string must be digits and the value must fit in [\p Min, \p Max].
/// atoi-style silent zeroes ("--regs banana") and wrapped garbage
/// ("--regs 99999999999") become diagnostics instead. On failure prints
/// the Status and returns false (callers exit 2, the usage-error code).
static bool parseCliCount(const std::string &Flag, const std::string &Text,
                          uint64_t Min, uint64_t Max, uint64_t &Out) {
  uint64_t Value = 0;
  const char *Begin = Text.data(), *End = Begin + Text.size();
  auto [Ptr, Ec] = std::from_chars(Begin, End, Value);
  std::string Problem;
  if (Text.empty() || Ec == std::errc::invalid_argument || Ptr == Begin)
    Problem = "expected an unsigned integer, got '" + Text + "'";
  else if (Ptr != End)
    Problem = "trailing junk after number in '" + Text + "'";
  else if (Ec == std::errc::result_out_of_range || Value > Max)
    Problem = "value '" + Text + "' is out of range (max " +
              std::to_string(Max) + ")";
  else if (Value < Min)
    Problem = "value must be at least " + std::to_string(Min);
  if (!Problem.empty()) {
    Status S = Status::error(ErrorCode::InvalidArgument, "cli",
                             Flag + ": " + Problem);
    std::cerr << "pirac: " << S.toString() << '\n';
    return false;
  }
  Out = Value;
  return true;
}

//===----------------------------------------------------------------------===//
// pirac serve
//===----------------------------------------------------------------------===//

// The signal handlers may only touch async-signal-safe state; both
// Server entry points are one self-pipe write.
static service::Server *ActiveServer = nullptr;
static void onSigterm(int) {
  if (ActiveServer != nullptr)
    ActiveServer->requestDrain();
}
static void onSigint(int) {
  if (ActiveServer != nullptr)
    ActiveServer->requestAbort();
}

/// `pirac serve --socket PATH [--tcp PORT] ...`: the compile daemon.
/// SIGTERM drains gracefully (exit 0), SIGINT aborts fast (exit 130);
/// --stats-out flushes the pira.serve-stats document on the way out.
static int runServeMode(int argc, char **argv) {
  service::ServerOptions Opts;
  std::string StatsOut;
  for (int I = 2; I < argc; ++I) {
    std::string Arg = argv[I];
    auto NextValue = [&](std::string &Out) -> bool {
      if (I + 1 >= argc) {
        std::cerr << "pirac serve: missing value for " << Arg << '\n';
        return false;
      }
      Out = argv[++I];
      return true;
    };
    std::string V;
    uint64_t N = 0;
    if (Arg == "--socket") {
      if (!NextValue(Opts.SocketPath))
        return 2;
    } else if (Arg == "--tcp") {
      // 0 stays meaningful: "let the kernel pick" (announced on stderr).
      if (!NextValue(V) || !parseCliCount(Arg, V, 0, 65535, N))
        return 2;
      Opts.TcpPort = static_cast<int>(N);
    } else if (Arg == "--threads") {
      if (!NextValue(V) || !parseCliCount(Arg, V, 0, 4096, N))
        return 2;
      Opts.Threads = static_cast<unsigned>(N);
    } else if (Arg == "--queue-depth") {
      if (!NextValue(V) || !parseCliCount(Arg, V, 1, 1 << 20, N))
        return 2;
      Opts.QueueDepth = static_cast<size_t>(N);
    } else if (Arg == "--max-clients") {
      if (!NextValue(V) || !parseCliCount(Arg, V, 1, 1 << 16, N))
        return 2;
      Opts.MaxClients = static_cast<size_t>(N);
    } else if (Arg == "--client-budget") {
      if (!NextValue(V) || !parseCliCount(Arg, V, 1, 1 << 20, N))
        return 2;
      Opts.PerClientBudget = N;
    } else if (Arg == "--max-frame-bytes") {
      // Floor of 64: the cap must at least admit a minimal envelope.
      if (!NextValue(V) || !parseCliCount(Arg, V, 64, 1u << 30, N))
        return 2;
      Opts.MaxFrameBytes = static_cast<uint32_t>(N);
    } else if (Arg == "--idle-timeout-ms") {
      // 0 stays meaningful: "no inactivity timeout".
      if (!NextValue(V) || !parseCliCount(Arg, V, 0, 86400000, N))
        return 2;
      Opts.IdleTimeoutMs = static_cast<int>(N);
    } else if (Arg == "--drain-timeout-ms") {
      if (!NextValue(V) || !parseCliCount(Arg, V, 0, 86400000, N))
        return 2;
      Opts.DrainTimeoutMs = static_cast<int>(N);
    } else if (Arg == "--cache-dir") {
      if (!NextValue(Opts.CacheDir))
        return 2;
    } else if (Arg == "--cache-serve") {
      Opts.CacheServe = true;
    } else if (Arg == "--cache-remote") {
      if (!NextValue(Opts.CacheRemote))
        return 2;
    } else if (Arg == "--cache-max-mb") {
      if (!NextValue(V) || !parseCliCount(Arg, V, 1, 1 << 20, N))
        return 2;
      Opts.CacheMaxBytes = N << 20;
    } else if (Arg == "--stats-out") {
      if (!NextValue(StatsOut))
        return 2;
    } else if (Arg == "--verbose") {
      Opts.Verbose = true;
    } else {
      std::cerr << "pirac serve: unknown option '" << Arg << "'\n";
      return 2;
    }
  }
  if (Opts.SocketPath.empty() && Opts.TcpPort < 0) {
    std::cerr << "pirac serve: need --socket PATH and/or --tcp PORT\n";
    return 2;
  }
  if (Opts.CacheMaxBytes != 0 && Opts.CacheDir.empty()) {
    std::cerr << "pirac serve: --cache-max-mb requires --cache-dir DIR\n";
    return 2;
  }

  service::Server Server(Opts);
  Status B = Server.bind();
  if (!B.ok()) {
    std::cerr << "pirac serve: " << B.toString() << '\n';
    return 3;
  }

  ActiveServer = &Server;
  std::signal(SIGTERM, onSigterm);
  std::signal(SIGINT, onSigint);

  // The readiness line doubles as the address announcement: with
  // --tcp 0 this is the only place the kernel-assigned port appears.
  std::cerr << "pirac serve: ready";
  if (!Opts.SocketPath.empty())
    std::cerr << " on " << Opts.SocketPath;
  if (Opts.TcpPort >= 0)
    std::cerr << (Opts.SocketPath.empty() ? " on" : " and")
              << " 127.0.0.1:" << Server.tcpPort();
  std::cerr << std::endl;

  int Rc = Server.run();

  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  ActiveServer = nullptr;

  json::Value Stats = Server.statsToJson();
  if (!StatsOut.empty()) {
    std::string Error;
    if (!writeJsonFile(Stats, StatsOut, Error)) {
      std::cerr << "pirac serve: stats-out: " << Error << '\n';
      return 3;
    }
  }
  const json::Value *Req = Stats.find("requests");
  std::cerr << "pirac serve: " << (Rc == 0 ? "drained" : "aborted") << " ("
            << Req->find("total")->asInt() << " request(s), "
            << Req->find("compiles")->asInt() << " compile(s), "
            << Req->find("shed")->asInt() << " shed)\n";
  return Rc;
}

int main(int argc, char **argv) {
  // Process-wide, before any descriptor work: a report sink or socket
  // peer that vanishes must surface as EPIPE on the write (a structured
  // diagnostic and exit 3), never as silent SIGPIPE death (141).
  io::ignoreSigpipe();

  // The self-exec worker mode comes first: the batch driver spawns
  // `pirac --worker` with one job document on stdin, and nothing else
  // on the command line applies.
  if (argc >= 2 && std::string(argv[1]) == "--worker")
    return runWorkerMode(std::cin, std::cout, std::cerr);

  // The compile daemon is a subcommand with its own flag set.
  if (argc >= 2 && std::string(argv[1]) == "serve")
    return runServeMode(argc, argv);

  // (name, source) per input; empty after flag parsing means the sample.
  std::vector<std::pair<std::string, std::string>> Inputs;
  StrategyKind Strategy = StrategyKind::Combined;
  MachineModel Machine = MachineModel::rs6000();
  unsigned Regs = 0;
  unsigned Jobs = 0;
  bool BatchMode = false;
  bool DumpGraphs = false;
  std::string TraceOut;
  std::string StatsOut;
  std::string MetricsOut;
  bool Progress = false;
  bool TimePasses = false;
  ResourceBudget Budget;
  bool NoDegrade = false;
  CacheMode CacheModeFlag = CacheMode::Off;
  bool CacheFlagSeen = false;
  std::string CacheDir;
  std::string CacheRemote;
  uint64_t CacheMaxMB = 0;
  bool Isolate = false;
  uint64_t Retries = 0;
  uint64_t RetryBackoffMs = 10;
  uint64_t ChildTimeoutMs = 0;
  uint64_t ChildMemMB = 0;
  std::string JournalPath;
  bool Resume = false;
  bool UseClient = false;
  bool DaemonStats = false;
  service::ClientOptions ClientOpts;
  OracleOptions OracleOpts;
  bool Tournament = false;
  uint64_t CorpusCount = 200;
  uint64_t CorpusInsts = 12;
  uint64_t CorpusSeed = 7;

  // Inputs that never reach compilation: unreadable files, parse and
  // verify failures. They are reported per file, carried into the stats
  // report, and folded into the exit code — but they never stop the run.
  std::vector<BatchFailure> InputFailures;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    // False (with a message) when the flag's value is missing; a usage
    // error is the one thing that still ends the run immediately.
    auto NextValue = [&](std::string &Out) -> bool {
      if (I + 1 >= argc) {
        std::cerr << "pirac: missing value for " << Arg << '\n';
        return false;
      }
      Out = argv[++I];
      return true;
    };
    if (Arg == "--strategy") {
      std::string V;
      if (!NextValue(V))
        return 2;
      Expected<StrategyKind> K = strategyFromName(V);
      if (!K) {
        std::cerr << "pirac: " << K.status().toString() << '\n';
        return 2;
      }
      Strategy = *K;
    } else if (Arg == "--machine") {
      std::string V;
      if (!NextValue(V))
        return 2;
      if (V == "scalar")
        Machine = MachineModel::scalar();
      else if (V == "paper")
        Machine = MachineModel::paperTwoUnit();
      else if (V == "mips")
        Machine = MachineModel::mipsR3000();
      else if (V == "rs6000")
        Machine = MachineModel::rs6000();
      else if (V == "vliw4")
        Machine = MachineModel::vliw4();
      else {
        std::cerr << "pirac: unknown machine '" << V << "'\n";
        return 2;
      }
    } else if (Arg == "--machine-file") {
      std::string V;
      if (!NextValue(V))
        return 2;
      std::ifstream In(V);
      if (!In) {
        std::cerr << "pirac: cannot open machine description '" << V << "'\n";
        return 2;
      }
      std::ostringstream SS;
      SS << In.rdbuf();
      std::string MachineError;
      std::optional<MachineModel> Parsed =
          parseMachineModel(SS.str(), MachineError);
      if (!Parsed) {
        std::cerr << "pirac: machine description error: " << MachineError
                  << '\n';
        return 2;
      }
      Machine = *Parsed;
    } else if (Arg == "--regs") {
      std::string V;
      uint64_t N = 0;
      // A zero register file cannot hold any value live; reject it here
      // rather than let every allocator fail one by one.
      if (!NextValue(V) ||
          !parseCliCount(Arg, V, 1, std::numeric_limits<unsigned>::max(), N))
        return 2;
      Regs = static_cast<unsigned>(N);
    } else if (Arg == "--jobs") {
      std::string V;
      uint64_t N = 0;
      // 0 stays meaningful: "use the default worker count".
      if (!NextValue(V) ||
          !parseCliCount(Arg, V, 0, std::numeric_limits<unsigned>::max(), N))
        return 2;
      Jobs = static_cast<unsigned>(N);
      BatchMode = true;
    } else if (Arg == "--deadline-ms") {
      std::string V;
      if (!NextValue(V) || !parseCliCount(Arg, V, 0, UINT64_MAX,
                                          Budget.DeadlineMs))
        return 2;
    } else if (Arg == "--max-instructions") {
      std::string V;
      if (!NextValue(V) || !parseCliCount(Arg, V, 0, UINT64_MAX,
                                          Budget.MaxInstructions))
        return 2;
    } else if (Arg == "--max-blocks") {
      std::string V;
      if (!NextValue(V) || !parseCliCount(Arg, V, 0, UINT64_MAX,
                                          Budget.MaxBlocks))
        return 2;
    } else if (Arg == "--cache") {
      std::string V;
      if (!NextValue(V))
        return 2;
      Expected<CacheMode> M = cacheModeFromName(V);
      if (!M) {
        std::cerr << "pirac: " << M.status().toString() << '\n';
        return 2;
      }
      CacheModeFlag = *M;
      CacheFlagSeen = true;
    } else if (Arg == "--cache-dir") {
      if (!NextValue(CacheDir))
        return 2;
    } else if (Arg == "--cache-remote") {
      if (!NextValue(CacheRemote))
        return 2;
    } else if (Arg == "--cache-max-mb") {
      std::string V;
      if (!NextValue(V) || !parseCliCount(Arg, V, 1, 1 << 20, CacheMaxMB))
        return 2;
    } else if (Arg == "--isolate") {
      Isolate = true;
      BatchMode = true;
    } else if (Arg == "--retries") {
      std::string V;
      if (!NextValue(V) ||
          !parseCliCount(Arg, V, 0, std::numeric_limits<unsigned>::max(),
                         Retries))
        return 2;
    } else if (Arg == "--retry-backoff-ms") {
      std::string V;
      // Capped so the deterministic exponential backoff cannot be armed
      // into an effectively infinite sleep.
      if (!NextValue(V) || !parseCliCount(Arg, V, 0, 60000, RetryBackoffMs))
        return 2;
    } else if (Arg == "--child-timeout-ms") {
      std::string V;
      if (!NextValue(V) ||
          !parseCliCount(Arg, V, 0, UINT64_MAX, ChildTimeoutMs))
        return 2;
    } else if (Arg == "--child-mem-mb") {
      std::string V;
      if (!NextValue(V) || !parseCliCount(Arg, V, 0, UINT64_MAX, ChildMemMB))
        return 2;
    } else if (Arg == "--journal") {
      if (!NextValue(JournalPath))
        return 2;
      BatchMode = true;
    } else if (Arg == "--resume") {
      Resume = true;
    } else if (Arg == "--client") {
      UseClient = true;
      BatchMode = true;
    } else if (Arg == "--socket") {
      if (!NextValue(ClientOpts.SocketPath))
        return 2;
    } else if (Arg == "--tcp") {
      std::string V;
      uint64_t N = 0;
      if (!NextValue(V) || !parseCliCount(Arg, V, 1, 65535, N))
        return 2;
      ClientOpts.TcpPort = static_cast<int>(N);
    } else if (Arg == "--client-retries") {
      std::string V;
      uint64_t N = 0;
      // Total attempts per request; 1 disables retrying entirely (the
      // overload CI shard relies on that to surface shed requests).
      if (!NextValue(V) || !parseCliCount(Arg, V, 1, 1000, N))
        return 2;
      ClientOpts.MaxAttempts = static_cast<unsigned>(N);
    } else if (Arg == "--client-backoff-ms") {
      std::string V;
      uint64_t N = 0;
      if (!NextValue(V) || !parseCliCount(Arg, V, 0, 60000, N))
        return 2;
      ClientOpts.RetryBackoffMs = static_cast<unsigned>(N);
    } else if (Arg == "--client-verbose") {
      ClientOpts.Verbose = true;
    } else if (Arg == "--daemon-stats") {
      DaemonStats = true;
    } else if (Arg == "--oracle-max-insts") {
      std::string V;
      uint64_t N = 0;
      // 64 is the oracle's hard representation cap (one bit per
      // instruction in the search mask).
      if (!NextValue(V) || !parseCliCount(Arg, V, 1, 64, N))
        return 2;
      OracleOpts.MaxInstructions = static_cast<unsigned>(N);
    } else if (Arg == "--oracle-node-budget") {
      std::string V;
      // 0 stays meaningful: "search without a node budget".
      if (!NextValue(V) ||
          !parseCliCount(Arg, V, 0, UINT64_MAX, OracleOpts.NodeBudget))
        return 2;
    } else if (Arg == "--tournament") {
      Tournament = true;
    } else if (Arg == "--corpus-count") {
      std::string V;
      // 0 is allowed: "run the harness over nothing" yields a valid
      // zero-row report, which scripted sweeps rely on.
      if (!NextValue(V) || !parseCliCount(Arg, V, 0, 1000000, CorpusCount))
        return 2;
    } else if (Arg == "--corpus-insts") {
      std::string V;
      // At least roots + one body op + ret; capped at the oracle's
      // representation limit so a generated corpus stays comparable.
      if (!NextValue(V) || !parseCliCount(Arg, V, 3, 64, CorpusInsts))
        return 2;
    } else if (Arg == "--corpus-seed") {
      std::string V;
      if (!NextValue(V) || !parseCliCount(Arg, V, 0, UINT64_MAX, CorpusSeed))
        return 2;
    } else if (Arg == "--no-degrade") {
      NoDegrade = true;
    } else if (Arg == "--fault-inject") {
      std::string V;
      if (!NextValue(V))
        return 2;
      std::string FaultError;
      if (!faultinject::configure(V, FaultError)) {
        std::cerr << "pirac: --fault-inject: " << FaultError << '\n';
        return 2;
      }
    } else if (Arg == "--dump-graphs") {
      DumpGraphs = true;
    } else if (Arg == "--trace-out") {
      if (!NextValue(TraceOut))
        return 2;
    } else if (Arg == "--stats-out") {
      if (!NextValue(StatsOut))
        return 2;
    } else if (Arg == "--metrics-out") {
      if (!NextValue(MetricsOut))
        return 2;
    } else if (Arg == "--progress") {
      Progress = true;
      BatchMode = true;
    } else if (Arg == "--time-passes") {
      TimePasses = true;
    } else if (Arg == "--version") {
      const json::Value P = buildProvenanceToJson();
      std::cout << "pirac " << P.find("tool_version")->asString() << " (git "
                << P.find("git_sha")->asString() << ", "
                << P.find("compiler")->asString() << ", "
                << P.find("build_type")->asString()
                << (P.find("ndebug")->asBool() ? ", ndebug" : "") << ")\n";
      return 0;
    } else if (Arg == "-") {
      std::ostringstream SS;
      SS << std::cin.rdbuf();
      Inputs.emplace_back("<stdin>", SS.str());
    } else if (Arg.rfind("--", 0) == 0) {
      // A flag we don't know must not be silently treated as an input
      // path; that would turn a typo into a "cannot open" compile
      // failure (exit 1) instead of a usage error (exit 2).
      std::cerr << "pirac: unknown option '" << Arg << "'\n";
      return 2;
    } else {
      std::ifstream In(Arg);
      if (!In) {
        std::cerr << "pirac: cannot open '" << Arg << "'\n";
        Status S = Status::error(ErrorCode::InvalidArgument, "input",
                                 "cannot open file");
        S.addContext("input " + Arg);
        InputFailures.push_back({Arg, std::move(S)});
        continue;
      }
      std::ostringstream SS;
      SS << In.rdbuf();
      Inputs.emplace_back(Arg, SS.str());
    }
  }
  if (Regs != 0)
    Machine.setNumPhysRegs(Regs);
  if ((!CacheDir.empty() || !CacheRemote.empty()) && !CacheFlagSeen)
    CacheModeFlag = CacheMode::On;
  if (CacheMaxMB != 0 && CacheDir.empty()) {
    std::cerr << "pirac: --cache-max-mb requires --cache-dir DIR\n";
    return 2;
  }
  if (Resume && JournalPath.empty()) {
    std::cerr << "pirac: --resume requires --journal FILE\n";
    return 2;
  }
  if ((UseClient || DaemonStats) && ClientOpts.SocketPath.empty() &&
      ClientOpts.TcpPort < 0) {
    std::cerr << "pirac: --client/--daemon-stats need --socket PATH or "
                 "--tcp PORT\n";
    return 2;
  }
  if (UseClient &&
      (Isolate || !JournalPath.empty() || Resume || CacheFlagSeen ||
       !CacheDir.empty() || !CacheRemote.empty() ||
       !faultinject::currentSpec().empty())) {
    // The daemon owns isolation, journaling, caching, and (because it
    // is process-global state) fault injection; a client asking for
    // them locally would silently change what the daemon computes.
    std::cerr << "pirac: --client cannot be combined with --isolate, "
                 "--journal/--resume, --cache/--cache-dir/--cache-remote, "
                 "or --fault-inject\n";
    return 2;
  }
  if (DaemonStats) {
    service::ServiceClient Client(ClientOpts);
    Expected<json::Value> S = Client.stats();
    if (!S) {
      std::cerr << "pirac: daemon stats: " << S.status().toString() << '\n';
      return 3;
    }
    S->write(std::cout, 0);
    std::cout << '\n';
    std::cout.flush();
    return std::cout ? 0 : 3;
  }
  // At most one machine-readable sink may own stdout; the others must go
  // to real files or the streams would interleave into garbage.
  unsigned StdoutWriters = static_cast<unsigned>(TraceOut == "-") +
                           static_cast<unsigned>(StatsOut == "-") +
                           static_cast<unsigned>(MetricsOut == "-");
  if (StdoutWriters > 1) {
    std::cerr << "pirac: at most one of --trace-out/--stats-out/"
                 "--metrics-out may write to stdout ('-')\n";
    return 2;
  }
  // With stdout claimed by a report, the human-readable output moves to
  // stderr so the machine-readable stream stays parseable.
  std::ostream &Hum = StdoutWriters != 0 ? std::cerr : std::cout;
  if (Inputs.empty() && InputFailures.empty() && !Tournament)
    Inputs.emplace_back("<sample>", SampleProgram);
  if (Inputs.size() + InputFailures.size() > 1)
    BatchMode = true;

  std::vector<BatchItem> Batch;
  for (size_t Idx = 0; Idx != Inputs.size(); ++Idx) {
    const auto &[Name, Source] = Inputs[Idx];
    // The parse-time fault key is the input's position, mirroring the
    // batch-position keys compileBatch assigns at compile time, so
    // "parse.enter:n" fires for a fixed set of inputs at any --jobs.
    faultinject::ScopedKey Key(Idx);
    Expected<Function> F = parseFunctionEx(Source, Name);
    if (!F) {
      std::cerr << "pirac: " << Name << ": " << F.status().toString() << '\n';
      InputFailures.push_back({Name, F.status()});
      continue;
    }
    Status VS = verifyFunctionStatus(*F);
    if (!VS.ok()) {
      VS.addContext("input " + Name);
      std::cerr << "pirac: " << Name << ": " << VS.toString() << '\n';
      InputFailures.push_back({Name, std::move(VS)});
      continue;
    }
    Batch.push_back({Name, F.take()});
  }

  if (Tournament) {
    if (!TraceOut.empty() || !StatsOut.empty() || TimePasses)
      telemetry::setEnabled(true);
    TournamentOptions TOpts;
    TOpts.Jobs = Jobs;
    TOpts.Budget = Budget;
    TOpts.Oracle = OracleOpts;
    std::vector<BatchItem> Corpus;
    if (Inputs.empty() && InputFailures.empty()) {
      Corpus = makeTournamentCorpus(static_cast<unsigned>(CorpusCount),
                                    static_cast<unsigned>(CorpusInsts),
                                    CorpusSeed, TOpts);
    } else {
      // Input files form the corpus — even when every one failed to
      // parse. Falling back to a generated corpus here would silently
      // score the strategies on functions the user never supplied; an
      // all-failed corpus instead yields a valid zero-row report and
      // the compile-failure exit code below.
      Corpus = std::move(Batch);
      TOpts.CorpusCount = static_cast<unsigned>(Corpus.size());
    }
    json::Value Report = runTournament(Corpus, Machine, TOpts);
    printTournamentSummary(Report, Hum);

    bool ReportsOk = true;
    std::string ReportError;
    if (!TraceOut.empty() &&
        !telemetry::writeChromeTraceFile(TraceOut, ReportError)) {
      std::cerr << "trace-out: " << ReportError << '\n';
      ReportsOk = false;
    }
    if (!StatsOut.empty() && !writeJsonFile(Report, StatsOut, ReportError)) {
      std::cerr << "stats-out: " << ReportError << '\n';
      ReportsOk = false;
    }
    if (!MetricsOut.empty() &&
        !telemetry::writeMetricsFile(MetricsOut, ReportError)) {
      std::cerr << "metrics-out: " << ReportError << '\n';
      ReportsOk = false;
    }
    if (TimePasses)
      telemetry::printTimerReport(std::cerr);
    if (!ReportsOk)
      return 3;
    // A heuristic "beating" the provably optimal baseline means the
    // oracle (or a heuristic's reported cost) is wrong — surface that
    // as a failure even when nobody inspects the report.
    uint64_t BeatsOracle = 0;
    if (const json::Value *Agg = Report.find("aggregate"))
      for (const json::Value &Row : Agg->elements())
        if (const json::Value *B = Row.find("beats_oracle"))
          BeatsOracle += static_cast<uint64_t>(B->asInt());
    return (BeatsOracle == 0 && InputFailures.empty()) ? 0 : 1;
  }

  if (BatchMode) {
    if (!TraceOut.empty() || !StatsOut.empty() || TimePasses)
      telemetry::setEnabled(true);
    std::optional<CompilationCache> Cache;
    if (CacheModeFlag != CacheMode::Off) {
      Cache.emplace(CacheModeFlag, CacheDir);
      if (CacheMaxMB != 0)
        Cache->setDiskLimitBytes(CacheMaxMB << 20);
      if (!CacheRemote.empty())
        Cache->attachRemote(service::makeCacheBackendForTarget(CacheRemote));
    }
    BatchOptions Opts;
    Opts.Strategy = Strategy;
    Opts.Oracle = OracleOpts;
    Opts.Jobs = Jobs;
    Opts.Budget = Budget;
    Opts.Degrade = !NoDegrade;
    Opts.Progress = Progress;
    Opts.Cache = Cache ? &*Cache : nullptr;
    if (Isolate) {
      Opts.Isolate = true;
      // Self-exec: the worker is this very binary. /proc/self/exe is
      // the robust answer (argv[0] may be a bare name found via PATH);
      // argv[0] is the fallback on filesystems without /proc.
      Opts.WorkerExe = currentExecutablePath();
      if (Opts.WorkerExe.empty())
        Opts.WorkerExe = argv[0];
      Opts.MaxRetries = static_cast<unsigned>(Retries);
      Opts.RetryBackoffMs = static_cast<unsigned>(RetryBackoffMs);
      Opts.ChildTimeoutMs = ChildTimeoutMs;
      Opts.ChildMemLimitMB = ChildMemMB;
    }

    // The journal binds to the exact batch configuration via a digest;
    // opening it after every option is final keeps resume honest.
    BatchJournal Journal;
    if (!JournalPath.empty()) {
      Status JS = Journal.open(JournalPath,
                               computeJournalDigest(Batch, Machine, Opts),
                               Batch.size(), Resume);
      if (!JS.ok()) {
        std::cerr << "pirac: " << JS.toString() << '\n';
        return 3;
      }
      Opts.Journal = &Journal;
    }

    BatchResult BR = UseClient ? service::compileBatchRemote(Batch, Machine,
                                                             Opts, ClientOpts)
                               : compileBatch(Batch, Machine, Opts);
    Hum << "; batch of " << Batch.size() << " function(s), "
        << strategyName(Strategy) << " for " << Machine.name() << " ("
        << Machine.numPhysRegs() << " regs), " << BR.JobsUsed
        << " worker(s)\n";
    for (size_t I = 0; I != Batch.size(); ++I) {
      const PipelineResult &R = BR.Results[I];
      const CompileOutcome &O = BR.Outcomes[I];
      Hum << ";   " << Batch[I].Name << " @"
          << Batch[I].Input.name() << ": ";
      if (R.Success) {
        Hum << "regs " << R.RegistersUsed << ", spills "
            << R.SpillInstructions << ", false deps " << R.FalseDeps
            << ", cycles " << R.DynCycles << ", semantics "
            << (R.SemanticsPreserved ? "pass" : "FAIL");
        if (O.Degraded)
          Hum << " (degraded to " << O.Used << ", rung " << O.Rung << ")";
        Hum << '\n';
      } else {
        Hum << "FAILED: " << (R.Diag.ok() ? R.Error : R.Diag.toString())
            << '\n';
      }
    }
    Hum << "; batch: " << BR.Succeeded << "/" << BR.Results.size() << " ok";
    if (!InputFailures.empty())
      Hum << ", " << InputFailures.size() << " input failure(s)";
    if (BR.Degraded != 0)
      Hum << ", " << BR.Degraded << " degraded";
    Hum << ", static cycles " << BR.TotalStaticCycles
        << ", dynamic cycles " << BR.TotalDynCycles << '\n';
    if (Isolate)
      Hum << "; isolation: " << BR.Isolated << " sandboxed, "
          << BR.Crashes << " crash(es), " << BR.Timeouts
          << " timeout(s), " << BR.Retries << " retry(ies)\n";
    if (Opts.Journal != nullptr) {
      Hum << "; journal: " << BR.Resumed << " resumed";
      if (Journal.appendFailures() != 0)
        Hum << ", " << Journal.appendFailures() << " APPEND FAILURE(S)";
      Hum << '\n';
    }
    if (Cache) {
      CompilationCache::Stats CS = Cache->stats();
      Hum << "; cache (" << cacheModeName(Cache->mode()) << "): "
          << (CS.MemoryHits + CS.DiskHits + CS.RemoteHits) << " hit(s) ("
          << CS.MemoryHits << " memory, " << CS.DiskHits << " disk";
      if (Cache->remote() != nullptr)
        Hum << ", " << CS.RemoteHits << " remote";
      Hum << "), " << CS.Misses << " miss(es), " << CS.Inserts
          << " insert(s)";
      if (CS.CorruptEntries != 0)
        Hum << ", " << CS.CorruptEntries << " corrupt";
      if (CS.WriteFailures != 0)
        Hum << ", " << CS.WriteFailures << " write failure(s)";
      if (CS.TrimmedEntries != 0)
        Hum << ", " << CS.TrimmedEntries << " trimmed";
      if (CS.VerifyMismatches != 0)
        Hum << ", " << CS.VerifyMismatches << " VERIFY MISMATCH(ES)";
      Hum << '\n';
      if (RemoteCacheTier *Tier = Cache->remote()) {
        RemoteCacheTier::Stats RS = Tier->stats();
        Hum << "; remote cache: " << RS.Lookups << " lookup(s), " << RS.Hits
            << " hit(s), " << RS.Stores << " store(s), breaker "
            << RemoteCacheTier::breakerName(RS.State);
        if (RS.BreakerTrips != 0)
          Hum << " (" << RS.BreakerTrips << " trip(s))";
        if (RS.TransportFailures != 0)
          Hum << ", " << RS.TransportFailures << " transport failure(s)";
        if (RS.Collapsed != 0)
          Hum << ", " << RS.Collapsed << " collapsed";
        if (RS.Quarantined != 0)
          Hum << ", " << RS.Quarantined << " QUARANTINED";
        Hum << '\n';
      }
    }

    bool ReportsOk = true;
    std::string ReportError;
    if (!TraceOut.empty() &&
        !telemetry::writeChromeTraceFile(TraceOut, ReportError)) {
      std::cerr << "trace-out: " << ReportError << '\n';
      ReportsOk = false;
    }
    if (!StatsOut.empty() &&
        !writeJsonFile(makeBatchStatsReport(BR, Batch, strategyName(Strategy),
                                            Machine, InputFailures,
                                            Cache ? &*Cache : nullptr),
                       StatsOut, ReportError)) {
      std::cerr << "stats-out: " << ReportError << '\n';
      ReportsOk = false;
    }
    if (!MetricsOut.empty() &&
        !telemetry::writeMetricsFile(MetricsOut, ReportError)) {
      std::cerr << "metrics-out: " << ReportError << '\n';
      ReportsOk = false;
    }
    if (TimePasses)
      telemetry::printTimerReport(std::cerr);
    // Exit taxonomy (see the usage comment): internal errors — reports
    // that could not be written, journal records that could not land —
    // take precedence over compile failures.
    if (!ReportsOk || Journal.appendFailures() != 0)
      return 3;
    return (BR.Succeeded == BR.Results.size() && InputFailures.empty() &&
            (!Cache || Cache->stats().VerifyMismatches == 0))
               ? 0
               : 1;
  }

  // Single-function mode; the lone input may already have failed.
  if (Batch.empty())
    return 1;
  Function F = std::move(Batch.front().Input);

  if (DumpGraphs) {
    // Per-block paper graphs in DOT, before compilation touches F.
    Webs W(F);
    InterferenceGraph IG(F, W);
    ParallelInterferenceGraph PIG(F, W, IG, Machine);
    {
      DotWriter Dot(Hum, "pig", /*Directed=*/false);
      for (unsigned Web = 0; Web != PIG.numWebs(); ++Web)
        Dot.node(Web, "%s" + std::to_string(W.webRegister(Web)));
      for (const auto &[A2, B2] : PIG.interference().edgeList())
        Dot.edge(A2, B2);
      for (const auto &[A2, B2] : PIG.parallel().edgeList())
        if (!PIG.interference().hasEdge(A2, B2))
          Dot.edge(A2, B2, "style=dashed, color=blue");
    }
    for (unsigned B2 = 0; B2 != F.numBlocks(); ++B2) {
      FalseDependenceGraph FDG(F, B2, Machine);
      DotWriter Dot(Hum, "ef_" + F.block(B2).name(),
                    /*Directed=*/false);
      for (unsigned V = 0; V != FDG.size(); ++V)
        Dot.node(V, F.block(B2).name() + ":" + std::to_string(V));
      Dot.allEdges(FDG.parallelPairs(), "style=dashed");
    }
  }

  Hum << "; compiling @" << F.name() << " with "
      << strategyName(Strategy) << " for " << Machine.name() << " ("
      << Machine.numPhysRegs() << " regs)\n\n";

  // Telemetry is opt-in: any observability flag turns on scope recording
  // for the compilation that follows.
  if (!TraceOut.empty() || !StatsOut.empty() || TimePasses)
    telemetry::setEnabled(true);

  // Single-function compiles run under the same guard as batch items:
  // budget checks, watchdog deadline, exception capture, degradation
  // ladder. The fault key stays at its default of 0, so every armed site
  // fires — handy for exercising one site in isolation.
  BatchOptions GuardOpts;
  GuardOpts.Strategy = Strategy;
  GuardOpts.Oracle = OracleOpts;
  GuardOpts.Budget = Budget;
  GuardOpts.Degrade = !NoDegrade;
  GuardedResult G = compileFunctionGuarded(F, Machine, GuardOpts);
  PipelineResult &R = G.Result;

  for (const CompileAttempt &A : G.Outcome.FailedAttempts)
    Hum << "; attempt " << A.Rung << " failed: " << A.Diag.toString() << '\n';
  if (G.Outcome.Degraded)
    Hum << "; NOTE: degraded to " << G.Outcome.Used << " (rung "
        << G.Outcome.Rung << ")\n";

  // Reports are written even for failed runs — a trace of a failing
  // pipeline is exactly when you want one.
  auto EmitReports = [&]() -> bool {
    bool Ok = true;
    std::string ReportError;
    if (!TraceOut.empty() &&
        !telemetry::writeChromeTraceFile(TraceOut, ReportError)) {
      std::cerr << "trace-out: " << ReportError << '\n';
      Ok = false;
    }
    if (!StatsOut.empty() &&
        !writeJsonFile(makeStatsReport(R, strategyName(Strategy), Machine),
                       StatsOut, ReportError)) {
      std::cerr << "stats-out: " << ReportError << '\n';
      Ok = false;
    }
    if (!MetricsOut.empty() &&
        !telemetry::writeMetricsFile(MetricsOut, ReportError)) {
      std::cerr << "metrics-out: " << ReportError << '\n';
      Ok = false;
    }
    if (TimePasses)
      telemetry::printTimerReport(std::cerr);
    return Ok;
  };

  if (!R.Success) {
    std::cerr << "compilation failed: "
              << (R.Diag.ok() ? R.Error : R.Diag.toString()) << '\n';
    return EmitReports() ? 1 : 3;
  }

  printFunction(R.Final, Hum);
  Hum << "\n; schedule:\n";
  for (unsigned B = 0; B != R.Final.numBlocks(); ++B) {
    Hum << "; block " << R.Final.block(B).name() << " ("
        << R.Sched.Blocks[B].Makespan << " cycles)\n";
    auto Groups = R.Sched.Blocks[B].groupsByCycle();
    for (unsigned C = 0; C != Groups.size(); ++C) {
      Hum << ";   " << C << ":";
      for (unsigned I : Groups[C])
        Hum << "  " << formatInstruction(R.Final.block(B).inst(I),
                                         true, &R.Final);
      Hum << '\n';
    }
  }
  Hum << "\n; registers used:   " << R.RegistersUsed
      << "\n; spill instrs:     " << R.SpillInstructions
      << "\n; false deps:       " << R.FalseDeps
      << "\n; dynamic cycles:   " << R.DynCycles
      << "\n; semantics check:  "
      << (R.SemanticsPreserved ? "pass" : "FAIL") << '\n';
  return EmitReports() ? 0 : 3;
}
