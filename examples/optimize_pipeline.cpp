//===- examples/optimize_pipeline.cpp - Transform + compile pipeline ------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
// Scenario: squeezing a streaming kernel for a wide machine. Starts from
// the textual IR a front end would hand over (with reused registers),
// then runs the full middle end this library provides:
//
//   1. normalizeWebNames — the paper's one-register-per-value input form
//   2. propagateCopies + eliminateDeadCode — classic cleanups
//   3. unrollCountedLoop — widen the scheduling window
//   4. the combined (PIG) strategy — allocate + schedule without false
//      dependences
//
// and prints the cycle gains of each step, measured in the simulator.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "machine/MachineModel.h"
#include "pipeline/Strategies.h"
#include "transforms/Cleanup.h"
#include "transforms/LoopUnroller.h"
#include "transforms/Normalize.h"

#include <iostream>

using namespace pira;

// A front-end-ish rendering of  out[i] = a[i]*b[i] + c : register names
// reused across values, a redundant copy, and a dead temporary.
static const char *Source = R"(func @axpyish regs 12 {
  array a 64
  array b 64
  array c 1
  array out 64
block entry:
  %s0 = load c[0]
  %s1 = copy %s0       # redundant move a front end might emit
  %s2 = li 0           # i
  %s3 = li 64          # n
  %s4 = li 1           # step
  %s5 = add %s3, %s4   # dead temporary
  br loop
block loop:
  %s6 = load a[%s2]
  %s7 = load b[%s2]
  %s8 = fmul %s6, %s7
  %s8 = fadd %s8, %s1  # reuses %s8 for a second value
  store out[%s2], %s8
  %s2 = add %s2, %s4
  %s9 = cmplt %s2, %s3
  cbr %s9, loop, done
block done:
  ret
}
)";

static uint64_t measure(const Function &F, const MachineModel &M,
                        const char *Stage) {
  PipelineResult R = runAndMeasure(StrategyKind::Combined, F, M);
  if (!R.Success) {
    std::cerr << Stage << ": compile failed: " << R.Error << '\n';
    std::exit(1);
  }
  std::cout << "  " << Stage << ": " << R.DynCycles << " cycles, "
            << R.RegistersUsed << " regs, " << R.SpillInstructions
            << " spill instrs, " << R.FalseDeps << " false deps\n";
  return R.DynCycles;
}

int main() {
  Function F;
  std::string Err;
  if (!parseFunction(Source, F, Err)) {
    std::cerr << "parse error: " << Err << '\n';
    return 1;
  }
  if (!verifyFunction(F, Err)) {
    std::cerr << "verify error: " << Err << '\n';
    return 1;
  }
  MachineModel M = MachineModel::vliw4(10);

  std::cout << "=== middle-end pipeline on " << M.name() << " ("
            << M.numPhysRegs() << " regs) ===\n";
  uint64_t Baseline = measure(F, M, "as written          ");

  unsigned Renamed = normalizeWebNames(F);
  std::cout << "  [normalize: " << Renamed << " operands renamed]\n";
  measure(F, M, "normalized          ");

  unsigned Forwarded = propagateCopies(F);
  unsigned Removed = eliminateDeadCode(F);
  std::cout << "  [cleanup: " << Forwarded << " operands forwarded, "
            << Removed << " instructions deleted]\n";
  measure(F, M, "cleaned             ");

  if (!unrollCountedLoop(F, 1, 4)) {
    std::cerr << "unroll failed\n";
    return 1;
  }
  std::cout << "  [loop unrolled x4]\n";
  uint64_t Final = measure(F, M, "unrolled x4         ");

  std::cout << "\nfinal code:\n";
  printFunction(F, std::cout);
  std::cout << "\nspeedup vs as-written: "
            << static_cast<double>(Baseline) / static_cast<double>(Final)
            << "x\n";
  return 0;
}
