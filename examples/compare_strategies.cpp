//===- examples/compare_strategies.cpp - Phase-order shootout -------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
// The scenario from the paper's introduction: a compiler team must choose
// between allocating registers before scheduling (MIPS style) or after
// (RS/6000 style) — or adopt the combined framework. This example runs
// all three on a chosen kernel and register budget and prints the code,
// the schedules, and the measured cycles side by side.
//
// Usage: compare_strategies [kernel] [registers]
//   kernel    one of the standard suite names (default: hydro-u2)
//   registers register-file size (default: 6)
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"
#include "machine/MachineModel.h"
#include "pipeline/Strategies.h"
#include "workloads/Kernels.h"

#include <cstdlib>
#include <iostream>

using namespace pira;

int main(int argc, char **argv) {
  std::string KernelName = argc > 1 ? argv[1] : "hydro-u2";
  unsigned Regs = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 6;

  Function Kernel;
  bool Found = false;
  for (auto &[Name, F] : standardKernelSuite())
    if (Name == KernelName) {
      Kernel = F;
      Found = true;
    }
  if (!Found) {
    std::cerr << "unknown kernel '" << KernelName << "'. Available:\n";
    for (auto &[Name, F] : standardKernelSuite())
      std::cerr << "  " << Name << '\n';
    return 1;
  }

  MachineModel M = MachineModel::rs6000(Regs);
  std::cout << "kernel " << KernelName << " on " << M.name() << " with "
            << Regs << " registers\n\n=== input (symbolic) ===\n";
  printFunction(Kernel, std::cout);

  for (StrategyKind K : {StrategyKind::AllocFirst, StrategyKind::SchedFirst,
                         StrategyKind::Combined}) {
    std::cout << "\n=== " << strategyName(K) << " ===\n";
    PipelineResult R = runAndMeasure(K, Kernel, M);
    if (!R.Success) {
      std::cout << "failed: " << R.Error << '\n';
      continue;
    }
    std::cout << "registers " << R.RegistersUsed << "  spill-instrs "
              << R.SpillInstructions << "  false-deps " << R.FalseDeps
              << "  cycles " << R.DynCycles << "  verified "
              << (R.SemanticsPreserved ? "yes" : "NO") << '\n';
    for (unsigned B = 0; B != R.Final.numBlocks(); ++B) {
      std::cout << "block " << R.Final.block(B).name() << " ("
                << R.Sched.Blocks[B].Makespan << " cycles):\n";
      auto Groups = R.Sched.Blocks[B].groupsByCycle();
      for (unsigned C = 0; C != Groups.size(); ++C) {
        std::cout << "  " << C << ":";
        for (unsigned I : Groups[C])
          std::cout << "  ["
                    << formatInstruction(R.Final.block(B).inst(I), true,
                                         &R.Final)
                    << "]";
        std::cout << '\n';
      }
    }
  }
  return 0;
}
