//===- examples/custom_machine.cpp - Porting to a new core ----------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
// Scenario: a backend engineer brings up a new embedded DSP core — two
// float pipes, a slow single load unit, a small register file — and
// wants to see how the parallelizable interference graph changes with the
// machine description, and what the machine-aware allocation buys on a
// signal-processing kernel. Demonstrates: custom MachineModel
// construction, latency overrides, direct inspection of the false
// dependence graph and PIG, and DOT export of the paper's graphs.
//
//===----------------------------------------------------------------------===//

#include "analysis/DependenceGraph.h"
#include "analysis/Webs.h"
#include "core/FalseDependenceGraph.h"
#include "core/ParallelInterferenceGraph.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "machine/MachineModel.h"
#include "pipeline/Strategies.h"
#include "regalloc/InterferenceGraph.h"
#include "support/DotWriter.h"

#include <iostream>

using namespace pira;

/// Builds a small complex-FIR tap: two complex multiply-accumulates.
static Function buildDspKernel() {
  Function F("cfir_tap");
  IRBuilder B(F);
  B.startBlock("body");
  Reg Xr = B.load("x", NoReg, 0);
  Reg Xi = B.load("x", NoReg, 1);
  Reg Hr = B.load("h", NoReg, 0);
  Reg Hi = B.load("h", NoReg, 1);
  Reg RR = B.binary(Opcode::FMul, Xr, Hr);
  Reg II = B.binary(Opcode::FMul, Xi, Hi);
  Reg RI = B.binary(Opcode::FMul, Xr, Hi);
  Reg IR = B.binary(Opcode::FMul, Xi, Hr);
  Reg Re = B.binary(Opcode::FSub, RR, II);
  Reg Im = B.binary(Opcode::FAdd, RI, IR);
  Reg AccR = B.load("acc", NoReg, 0);
  Reg AccI = B.load("acc", NoReg, 1);
  Reg NewR = B.binary(Opcode::FAdd, AccR, Re);
  Reg NewI = B.binary(Opcode::FAdd, AccI, Im);
  B.store("acc", NewR, NoReg, 0);
  B.store("acc", NewI, NoReg, 1);
  B.ret();
  return F;
}

int main() {
  // The new core: dual float pipes (so FMULs pair), one slow memory
  // port, one integer ALU, 4-wide issue, 6 registers.
  MachineModel Dsp("dsp-dual-fpu", {1, 2, 1, 1, 2}, /*IssueWidth=*/4,
                   /*NumPhysRegs=*/6);
  Dsp.setLatency(Opcode::Load, 3);
  Dsp.setLatency(Opcode::FMul, 2);

  Function F = buildDspKernel();
  std::cout << "=== kernel ===\n";
  printFunction(F, std::cout);

  std::cout << "\n=== machine ===\n"
            << Dsp.name() << ": issue " << Dsp.issueWidth() << "-wide;";
  for (unsigned K = 0; K != NumUnitKinds; ++K)
    std::cout << ' ' << unitKindName(static_cast<UnitKind>(K)) << " x"
              << Dsp.units(static_cast<UnitKind>(K));
  std::cout << "; load latency " << Dsp.latency(Opcode::Load) << '\n';

  // With TWO float units, fmul pairs are no longer machine-constrained:
  // the false dependence graph grows and the PIG demands more registers.
  Webs W(F);
  InterferenceGraph IG(F, W);
  FalseDependenceGraph FDG(F, 0, Dsp);
  ParallelInterferenceGraph PIG(F, W, IG, Dsp);
  MachineModel OneFpu = MachineModel::rs6000(6);
  FalseDependenceGraph FDGNarrow(F, 0, OneFpu);
  std::cout << "\nco-issuable pairs (Ef): " << FDG.parallelPairs().numEdges()
            << " on " << Dsp.name() << " vs "
            << FDGNarrow.parallelPairs().numEdges() << " on "
            << OneFpu.name() << " (one FPU)\n"
            << "PIG: " << PIG.interference().numEdges()
            << " interference edges + " << PIG.numParallelOnlyEdges()
            << " parallel-only edges over " << PIG.numWebs() << " webs\n";

  // Export the paper's graphs for graphviz rendering.
  std::cout << "\n=== DOT of the parallelizable interference graph ===\n";
  {
    DotWriter Dot(std::cout, "pig", /*Directed=*/false);
    for (unsigned Web = 0; Web != PIG.numWebs(); ++Web)
      Dot.node(Web, "%s" + std::to_string(W.webRegister(Web)));
    for (const auto &[A, B] : PIG.interference().edgeList())
      Dot.edge(A, B);
    for (const auto &[A, B] : PIG.parallel().edgeList())
      if (!PIG.interference().hasEdge(A, B))
        Dot.edge(A, B, "style=dashed, color=blue");
  }

  std::cout << "\n=== combined compilation for the new core ===\n";
  PipelineResult R = runAndMeasure(StrategyKind::Combined, F, Dsp);
  if (!R.Success) {
    std::cerr << "failed: " << R.Error << '\n';
    return 1;
  }
  for (unsigned B = 0; B != R.Final.numBlocks(); ++B) {
    auto Groups = R.Sched.Blocks[B].groupsByCycle();
    for (unsigned C = 0; C != Groups.size(); ++C) {
      std::cout << "  cycle " << C << ":";
      for (unsigned I : Groups[C])
        std::cout << "  ["
                  << formatInstruction(R.Final.block(B).inst(I), true,
                                       &R.Final)
                  << "]";
      std::cout << '\n';
    }
  }
  std::cout << "\nregisters " << R.RegistersUsed << ", cycles "
            << R.DynCycles << ", false deps " << R.FalseDeps
            << ", verified " << (R.SemanticsPreserved ? "yes" : "NO")
            << '\n';
  return 0;
}
