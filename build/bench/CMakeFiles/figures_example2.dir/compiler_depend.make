# Empty compiler generated dependencies file for figures_example2.
# This may be replaced when dependencies are built.
