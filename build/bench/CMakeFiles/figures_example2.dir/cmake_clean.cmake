file(REMOVE_RECURSE
  "CMakeFiles/figures_example2.dir/figures_example2.cpp.o"
  "CMakeFiles/figures_example2.dir/figures_example2.cpp.o.d"
  "figures_example2"
  "figures_example2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figures_example2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
