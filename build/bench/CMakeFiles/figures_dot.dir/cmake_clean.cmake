file(REMOVE_RECURSE
  "CMakeFiles/figures_dot.dir/figures_dot.cpp.o"
  "CMakeFiles/figures_dot.dir/figures_dot.cpp.o.d"
  "figures_dot"
  "figures_dot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figures_dot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
