# Empty compiler generated dependencies file for figures_dot.
# This may be replaced when dependencies are built.
