# Empty dependencies file for figures_example1.
# This may be replaced when dependencies are built.
