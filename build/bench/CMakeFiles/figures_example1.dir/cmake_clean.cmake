file(REMOVE_RECURSE
  "CMakeFiles/figures_example1.dir/figures_example1.cpp.o"
  "CMakeFiles/figures_example1.dir/figures_example1.cpp.o.d"
  "figures_example1"
  "figures_example1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figures_example1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
