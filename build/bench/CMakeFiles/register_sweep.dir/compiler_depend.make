# Empty compiler generated dependencies file for register_sweep.
# This may be replaced when dependencies are built.
