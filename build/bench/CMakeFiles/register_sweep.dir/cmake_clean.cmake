file(REMOVE_RECURSE
  "CMakeFiles/register_sweep.dir/register_sweep.cpp.o"
  "CMakeFiles/register_sweep.dir/register_sweep.cpp.o.d"
  "register_sweep"
  "register_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/register_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
