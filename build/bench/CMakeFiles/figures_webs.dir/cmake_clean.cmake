file(REMOVE_RECURSE
  "CMakeFiles/figures_webs.dir/figures_webs.cpp.o"
  "CMakeFiles/figures_webs.dir/figures_webs.cpp.o.d"
  "figures_webs"
  "figures_webs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figures_webs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
