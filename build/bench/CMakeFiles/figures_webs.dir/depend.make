# Empty dependencies file for figures_webs.
# This may be replaced when dependencies are built.
