# Empty dependencies file for theorem1_validation.
# This may be replaced when dependencies are built.
