file(REMOVE_RECURSE
  "CMakeFiles/theorem1_validation.dir/theorem1_validation.cpp.o"
  "CMakeFiles/theorem1_validation.dir/theorem1_validation.cpp.o.d"
  "theorem1_validation"
  "theorem1_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem1_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
