# Empty dependencies file for heuristic_ablation.
# This may be replaced when dependencies are built.
