file(REMOVE_RECURSE
  "CMakeFiles/heuristic_ablation.dir/heuristic_ablation.cpp.o"
  "CMakeFiles/heuristic_ablation.dir/heuristic_ablation.cpp.o.d"
  "heuristic_ablation"
  "heuristic_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heuristic_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
