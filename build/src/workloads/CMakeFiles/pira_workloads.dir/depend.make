# Empty dependencies file for pira_workloads.
# This may be replaced when dependencies are built.
