
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/Kernels.cpp" "src/workloads/CMakeFiles/pira_workloads.dir/Kernels.cpp.o" "gcc" "src/workloads/CMakeFiles/pira_workloads.dir/Kernels.cpp.o.d"
  "/root/repo/src/workloads/RandomProgram.cpp" "src/workloads/CMakeFiles/pira_workloads.dir/RandomProgram.cpp.o" "gcc" "src/workloads/CMakeFiles/pira_workloads.dir/RandomProgram.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/pira_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pira_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
