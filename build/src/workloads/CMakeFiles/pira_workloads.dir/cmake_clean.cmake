file(REMOVE_RECURSE
  "CMakeFiles/pira_workloads.dir/Kernels.cpp.o"
  "CMakeFiles/pira_workloads.dir/Kernels.cpp.o.d"
  "CMakeFiles/pira_workloads.dir/RandomProgram.cpp.o"
  "CMakeFiles/pira_workloads.dir/RandomProgram.cpp.o.d"
  "libpira_workloads.a"
  "libpira_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pira_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
