file(REMOVE_RECURSE
  "libpira_workloads.a"
)
