# Empty compiler generated dependencies file for pira_machine.
# This may be replaced when dependencies are built.
