file(REMOVE_RECURSE
  "CMakeFiles/pira_machine.dir/MachineConfig.cpp.o"
  "CMakeFiles/pira_machine.dir/MachineConfig.cpp.o.d"
  "CMakeFiles/pira_machine.dir/MachineModel.cpp.o"
  "CMakeFiles/pira_machine.dir/MachineModel.cpp.o.d"
  "libpira_machine.a"
  "libpira_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pira_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
