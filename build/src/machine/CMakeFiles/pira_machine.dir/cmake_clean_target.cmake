file(REMOVE_RECURSE
  "libpira_machine.a"
)
