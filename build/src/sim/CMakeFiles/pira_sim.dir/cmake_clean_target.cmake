file(REMOVE_RECURSE
  "libpira_sim.a"
)
