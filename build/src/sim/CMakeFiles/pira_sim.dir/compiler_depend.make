# Empty compiler generated dependencies file for pira_sim.
# This may be replaced when dependencies are built.
