
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/SuperscalarSim.cpp" "src/sim/CMakeFiles/pira_sim.dir/SuperscalarSim.cpp.o" "gcc" "src/sim/CMakeFiles/pira_sim.dir/SuperscalarSim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/pira_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/pira_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/pira_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pira_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pira_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
