file(REMOVE_RECURSE
  "CMakeFiles/pira_sim.dir/SuperscalarSim.cpp.o"
  "CMakeFiles/pira_sim.dir/SuperscalarSim.cpp.o.d"
  "libpira_sim.a"
  "libpira_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pira_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
