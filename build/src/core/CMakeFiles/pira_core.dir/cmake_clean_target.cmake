file(REMOVE_RECURSE
  "libpira_core.a"
)
