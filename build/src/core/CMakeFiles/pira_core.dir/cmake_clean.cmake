file(REMOVE_RECURSE
  "CMakeFiles/pira_core.dir/AugmentedPig.cpp.o"
  "CMakeFiles/pira_core.dir/AugmentedPig.cpp.o.d"
  "CMakeFiles/pira_core.dir/FalseDepChecker.cpp.o"
  "CMakeFiles/pira_core.dir/FalseDepChecker.cpp.o.d"
  "CMakeFiles/pira_core.dir/FalseDependenceGraph.cpp.o"
  "CMakeFiles/pira_core.dir/FalseDependenceGraph.cpp.o.d"
  "CMakeFiles/pira_core.dir/ParallelInterferenceGraph.cpp.o"
  "CMakeFiles/pira_core.dir/ParallelInterferenceGraph.cpp.o.d"
  "CMakeFiles/pira_core.dir/PigScheduler.cpp.o"
  "CMakeFiles/pira_core.dir/PigScheduler.cpp.o.d"
  "CMakeFiles/pira_core.dir/PinterAllocator.cpp.o"
  "CMakeFiles/pira_core.dir/PinterAllocator.cpp.o.d"
  "CMakeFiles/pira_core.dir/RegionHoist.cpp.o"
  "CMakeFiles/pira_core.dir/RegionHoist.cpp.o.d"
  "libpira_core.a"
  "libpira_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pira_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
