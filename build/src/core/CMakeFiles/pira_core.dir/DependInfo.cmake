
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/AugmentedPig.cpp" "src/core/CMakeFiles/pira_core.dir/AugmentedPig.cpp.o" "gcc" "src/core/CMakeFiles/pira_core.dir/AugmentedPig.cpp.o.d"
  "/root/repo/src/core/FalseDepChecker.cpp" "src/core/CMakeFiles/pira_core.dir/FalseDepChecker.cpp.o" "gcc" "src/core/CMakeFiles/pira_core.dir/FalseDepChecker.cpp.o.d"
  "/root/repo/src/core/FalseDependenceGraph.cpp" "src/core/CMakeFiles/pira_core.dir/FalseDependenceGraph.cpp.o" "gcc" "src/core/CMakeFiles/pira_core.dir/FalseDependenceGraph.cpp.o.d"
  "/root/repo/src/core/ParallelInterferenceGraph.cpp" "src/core/CMakeFiles/pira_core.dir/ParallelInterferenceGraph.cpp.o" "gcc" "src/core/CMakeFiles/pira_core.dir/ParallelInterferenceGraph.cpp.o.d"
  "/root/repo/src/core/PigScheduler.cpp" "src/core/CMakeFiles/pira_core.dir/PigScheduler.cpp.o" "gcc" "src/core/CMakeFiles/pira_core.dir/PigScheduler.cpp.o.d"
  "/root/repo/src/core/PinterAllocator.cpp" "src/core/CMakeFiles/pira_core.dir/PinterAllocator.cpp.o" "gcc" "src/core/CMakeFiles/pira_core.dir/PinterAllocator.cpp.o.d"
  "/root/repo/src/core/RegionHoist.cpp" "src/core/CMakeFiles/pira_core.dir/RegionHoist.cpp.o" "gcc" "src/core/CMakeFiles/pira_core.dir/RegionHoist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/regalloc/CMakeFiles/pira_regalloc.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/pira_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/pira_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/pira_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pira_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pira_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
