# Empty compiler generated dependencies file for pira_core.
# This may be replaced when dependencies are built.
