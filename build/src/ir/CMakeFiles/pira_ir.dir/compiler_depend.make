# Empty compiler generated dependencies file for pira_ir.
# This may be replaced when dependencies are built.
