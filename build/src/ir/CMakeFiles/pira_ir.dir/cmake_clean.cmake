file(REMOVE_RECURSE
  "CMakeFiles/pira_ir.dir/Interpreter.cpp.o"
  "CMakeFiles/pira_ir.dir/Interpreter.cpp.o.d"
  "CMakeFiles/pira_ir.dir/Opcode.cpp.o"
  "CMakeFiles/pira_ir.dir/Opcode.cpp.o.d"
  "CMakeFiles/pira_ir.dir/Parser.cpp.o"
  "CMakeFiles/pira_ir.dir/Parser.cpp.o.d"
  "CMakeFiles/pira_ir.dir/Printer.cpp.o"
  "CMakeFiles/pira_ir.dir/Printer.cpp.o.d"
  "CMakeFiles/pira_ir.dir/Verifier.cpp.o"
  "CMakeFiles/pira_ir.dir/Verifier.cpp.o.d"
  "libpira_ir.a"
  "libpira_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pira_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
