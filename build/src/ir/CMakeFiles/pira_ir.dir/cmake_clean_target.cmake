file(REMOVE_RECURSE
  "libpira_ir.a"
)
