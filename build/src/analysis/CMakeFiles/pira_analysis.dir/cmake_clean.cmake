file(REMOVE_RECURSE
  "CMakeFiles/pira_analysis.dir/DependenceGraph.cpp.o"
  "CMakeFiles/pira_analysis.dir/DependenceGraph.cpp.o.d"
  "CMakeFiles/pira_analysis.dir/Dominators.cpp.o"
  "CMakeFiles/pira_analysis.dir/Dominators.cpp.o.d"
  "CMakeFiles/pira_analysis.dir/Liveness.cpp.o"
  "CMakeFiles/pira_analysis.dir/Liveness.cpp.o.d"
  "CMakeFiles/pira_analysis.dir/Regions.cpp.o"
  "CMakeFiles/pira_analysis.dir/Regions.cpp.o.d"
  "CMakeFiles/pira_analysis.dir/Webs.cpp.o"
  "CMakeFiles/pira_analysis.dir/Webs.cpp.o.d"
  "libpira_analysis.a"
  "libpira_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pira_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
