# Empty dependencies file for pira_analysis.
# This may be replaced when dependencies are built.
