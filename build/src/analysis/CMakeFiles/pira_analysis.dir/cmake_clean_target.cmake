file(REMOVE_RECURSE
  "libpira_analysis.a"
)
