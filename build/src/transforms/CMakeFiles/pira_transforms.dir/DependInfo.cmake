
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transforms/Cleanup.cpp" "src/transforms/CMakeFiles/pira_transforms.dir/Cleanup.cpp.o" "gcc" "src/transforms/CMakeFiles/pira_transforms.dir/Cleanup.cpp.o.d"
  "/root/repo/src/transforms/LoopUnroller.cpp" "src/transforms/CMakeFiles/pira_transforms.dir/LoopUnroller.cpp.o" "gcc" "src/transforms/CMakeFiles/pira_transforms.dir/LoopUnroller.cpp.o.d"
  "/root/repo/src/transforms/Normalize.cpp" "src/transforms/CMakeFiles/pira_transforms.dir/Normalize.cpp.o" "gcc" "src/transforms/CMakeFiles/pira_transforms.dir/Normalize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/pira_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/pira_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pira_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pira_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
