# Empty dependencies file for pira_transforms.
# This may be replaced when dependencies are built.
