file(REMOVE_RECURSE
  "libpira_transforms.a"
)
