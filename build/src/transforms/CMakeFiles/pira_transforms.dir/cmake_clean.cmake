file(REMOVE_RECURSE
  "CMakeFiles/pira_transforms.dir/Cleanup.cpp.o"
  "CMakeFiles/pira_transforms.dir/Cleanup.cpp.o.d"
  "CMakeFiles/pira_transforms.dir/LoopUnroller.cpp.o"
  "CMakeFiles/pira_transforms.dir/LoopUnroller.cpp.o.d"
  "CMakeFiles/pira_transforms.dir/Normalize.cpp.o"
  "CMakeFiles/pira_transforms.dir/Normalize.cpp.o.d"
  "libpira_transforms.a"
  "libpira_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pira_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
