file(REMOVE_RECURSE
  "libpira_support.a"
)
