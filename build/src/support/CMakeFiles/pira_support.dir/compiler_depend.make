# Empty compiler generated dependencies file for pira_support.
# This may be replaced when dependencies are built.
