file(REMOVE_RECURSE
  "CMakeFiles/pira_support.dir/DotWriter.cpp.o"
  "CMakeFiles/pira_support.dir/DotWriter.cpp.o.d"
  "libpira_support.a"
  "libpira_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pira_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
