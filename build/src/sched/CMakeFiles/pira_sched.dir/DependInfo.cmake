
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/EPTimes.cpp" "src/sched/CMakeFiles/pira_sched.dir/EPTimes.cpp.o" "gcc" "src/sched/CMakeFiles/pira_sched.dir/EPTimes.cpp.o.d"
  "/root/repo/src/sched/IntegratedPrepass.cpp" "src/sched/CMakeFiles/pira_sched.dir/IntegratedPrepass.cpp.o" "gcc" "src/sched/CMakeFiles/pira_sched.dir/IntegratedPrepass.cpp.o.d"
  "/root/repo/src/sched/ListScheduler.cpp" "src/sched/CMakeFiles/pira_sched.dir/ListScheduler.cpp.o" "gcc" "src/sched/CMakeFiles/pira_sched.dir/ListScheduler.cpp.o.d"
  "/root/repo/src/sched/PreScheduler.cpp" "src/sched/CMakeFiles/pira_sched.dir/PreScheduler.cpp.o" "gcc" "src/sched/CMakeFiles/pira_sched.dir/PreScheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/pira_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/pira_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pira_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pira_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
