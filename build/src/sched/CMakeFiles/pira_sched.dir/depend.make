# Empty dependencies file for pira_sched.
# This may be replaced when dependencies are built.
