file(REMOVE_RECURSE
  "CMakeFiles/pira_sched.dir/EPTimes.cpp.o"
  "CMakeFiles/pira_sched.dir/EPTimes.cpp.o.d"
  "CMakeFiles/pira_sched.dir/IntegratedPrepass.cpp.o"
  "CMakeFiles/pira_sched.dir/IntegratedPrepass.cpp.o.d"
  "CMakeFiles/pira_sched.dir/ListScheduler.cpp.o"
  "CMakeFiles/pira_sched.dir/ListScheduler.cpp.o.d"
  "CMakeFiles/pira_sched.dir/PreScheduler.cpp.o"
  "CMakeFiles/pira_sched.dir/PreScheduler.cpp.o.d"
  "libpira_sched.a"
  "libpira_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pira_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
