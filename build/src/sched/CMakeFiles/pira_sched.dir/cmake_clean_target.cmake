file(REMOVE_RECURSE
  "libpira_sched.a"
)
