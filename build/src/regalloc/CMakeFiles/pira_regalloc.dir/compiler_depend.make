# Empty compiler generated dependencies file for pira_regalloc.
# This may be replaced when dependencies are built.
