file(REMOVE_RECURSE
  "CMakeFiles/pira_regalloc.dir/Allocation.cpp.o"
  "CMakeFiles/pira_regalloc.dir/Allocation.cpp.o.d"
  "CMakeFiles/pira_regalloc.dir/ChaitinAllocator.cpp.o"
  "CMakeFiles/pira_regalloc.dir/ChaitinAllocator.cpp.o.d"
  "CMakeFiles/pira_regalloc.dir/InterferenceGraph.cpp.o"
  "CMakeFiles/pira_regalloc.dir/InterferenceGraph.cpp.o.d"
  "CMakeFiles/pira_regalloc.dir/SpillCost.cpp.o"
  "CMakeFiles/pira_regalloc.dir/SpillCost.cpp.o.d"
  "CMakeFiles/pira_regalloc.dir/SpillInserter.cpp.o"
  "CMakeFiles/pira_regalloc.dir/SpillInserter.cpp.o.d"
  "libpira_regalloc.a"
  "libpira_regalloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pira_regalloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
