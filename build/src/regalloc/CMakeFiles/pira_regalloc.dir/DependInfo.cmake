
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/regalloc/Allocation.cpp" "src/regalloc/CMakeFiles/pira_regalloc.dir/Allocation.cpp.o" "gcc" "src/regalloc/CMakeFiles/pira_regalloc.dir/Allocation.cpp.o.d"
  "/root/repo/src/regalloc/ChaitinAllocator.cpp" "src/regalloc/CMakeFiles/pira_regalloc.dir/ChaitinAllocator.cpp.o" "gcc" "src/regalloc/CMakeFiles/pira_regalloc.dir/ChaitinAllocator.cpp.o.d"
  "/root/repo/src/regalloc/InterferenceGraph.cpp" "src/regalloc/CMakeFiles/pira_regalloc.dir/InterferenceGraph.cpp.o" "gcc" "src/regalloc/CMakeFiles/pira_regalloc.dir/InterferenceGraph.cpp.o.d"
  "/root/repo/src/regalloc/SpillCost.cpp" "src/regalloc/CMakeFiles/pira_regalloc.dir/SpillCost.cpp.o" "gcc" "src/regalloc/CMakeFiles/pira_regalloc.dir/SpillCost.cpp.o.d"
  "/root/repo/src/regalloc/SpillInserter.cpp" "src/regalloc/CMakeFiles/pira_regalloc.dir/SpillInserter.cpp.o" "gcc" "src/regalloc/CMakeFiles/pira_regalloc.dir/SpillInserter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/pira_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/pira_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pira_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pira_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
