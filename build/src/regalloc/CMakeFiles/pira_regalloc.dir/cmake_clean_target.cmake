file(REMOVE_RECURSE
  "libpira_regalloc.a"
)
