file(REMOVE_RECURSE
  "libpira_pipeline.a"
)
