file(REMOVE_RECURSE
  "CMakeFiles/pira_pipeline.dir/Strategies.cpp.o"
  "CMakeFiles/pira_pipeline.dir/Strategies.cpp.o.d"
  "libpira_pipeline.a"
  "libpira_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pira_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
