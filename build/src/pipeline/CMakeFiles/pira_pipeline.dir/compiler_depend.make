# Empty compiler generated dependencies file for pira_pipeline.
# This may be replaced when dependencies are built.
