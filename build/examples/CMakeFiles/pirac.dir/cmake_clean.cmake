file(REMOVE_RECURSE
  "CMakeFiles/pirac.dir/pirac.cpp.o"
  "CMakeFiles/pirac.dir/pirac.cpp.o.d"
  "pirac"
  "pirac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pirac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
