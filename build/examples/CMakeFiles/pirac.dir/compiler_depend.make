# Empty compiler generated dependencies file for pirac.
# This may be replaced when dependencies are built.
