file(REMOVE_RECURSE
  "CMakeFiles/optimize_pipeline.dir/optimize_pipeline.cpp.o"
  "CMakeFiles/optimize_pipeline.dir/optimize_pipeline.cpp.o.d"
  "optimize_pipeline"
  "optimize_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimize_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
