
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/compare_strategies.cpp" "examples/CMakeFiles/compare_strategies.dir/compare_strategies.cpp.o" "gcc" "examples/CMakeFiles/compare_strategies.dir/compare_strategies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pipeline/CMakeFiles/pira_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/pira_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/transforms/CMakeFiles/pira_transforms.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pira_core.dir/DependInfo.cmake"
  "/root/repo/build/src/regalloc/CMakeFiles/pira_regalloc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pira_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/pira_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/pira_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/pira_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pira_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pira_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
