file(REMOVE_RECURSE
  "CMakeFiles/pira_tests.dir/analysis_test.cpp.o"
  "CMakeFiles/pira_tests.dir/analysis_test.cpp.o.d"
  "CMakeFiles/pira_tests.dir/core_test.cpp.o"
  "CMakeFiles/pira_tests.dir/core_test.cpp.o.d"
  "CMakeFiles/pira_tests.dir/extensions_test.cpp.o"
  "CMakeFiles/pira_tests.dir/extensions_test.cpp.o.d"
  "CMakeFiles/pira_tests.dir/ir_test.cpp.o"
  "CMakeFiles/pira_tests.dir/ir_test.cpp.o.d"
  "CMakeFiles/pira_tests.dir/machine_test.cpp.o"
  "CMakeFiles/pira_tests.dir/machine_test.cpp.o.d"
  "CMakeFiles/pira_tests.dir/pipeline_test.cpp.o"
  "CMakeFiles/pira_tests.dir/pipeline_test.cpp.o.d"
  "CMakeFiles/pira_tests.dir/property_test.cpp.o"
  "CMakeFiles/pira_tests.dir/property_test.cpp.o.d"
  "CMakeFiles/pira_tests.dir/regalloc_test.cpp.o"
  "CMakeFiles/pira_tests.dir/regalloc_test.cpp.o.d"
  "CMakeFiles/pira_tests.dir/sched_test.cpp.o"
  "CMakeFiles/pira_tests.dir/sched_test.cpp.o.d"
  "CMakeFiles/pira_tests.dir/sim_test.cpp.o"
  "CMakeFiles/pira_tests.dir/sim_test.cpp.o.d"
  "CMakeFiles/pira_tests.dir/support_test.cpp.o"
  "CMakeFiles/pira_tests.dir/support_test.cpp.o.d"
  "CMakeFiles/pira_tests.dir/transforms_test.cpp.o"
  "CMakeFiles/pira_tests.dir/transforms_test.cpp.o.d"
  "pira_tests"
  "pira_tests.pdb"
  "pira_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pira_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
