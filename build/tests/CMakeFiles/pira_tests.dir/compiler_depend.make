# Empty compiler generated dependencies file for pira_tests.
# This may be replaced when dependencies are built.
