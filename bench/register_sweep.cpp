//===- bench/register_sweep.cpp - Register-pressure sweep -----------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
// Sweeps the register-file size from starved to ample on representative
// kernels, charting the spill/parallelism trade-off of Section 4: with
// scarce registers the combined allocator sheds the least valuable
// parallel edges before it spills; with ample registers it matches the
// symbolic-code schedule exactly (Theorem 1).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "machine/MachineModel.h"
#include "pipeline/Strategies.h"
#include "workloads/Kernels.h"

#include <iostream>

using namespace pira;
using namespace pira::bench;

int main() {
  std::cout << "==========================================================\n"
            << " Register sweep (rs6000-style machine, r = 3..12)\n"
            << "==========================================================\n";

  std::vector<std::pair<std::string, Function>> Kernels = {
      {"hydro-u2", livermoreHydro(2)},
      {"fir-t4", firFilter(4)},
      {"cmul-3", complexMultiply(3)},
      {"example2", paperExample2()}};
  const StrategyKind Kinds[3] = {StrategyKind::AllocFirst,
                                 StrategyKind::SchedFirst,
                                 StrategyKind::Combined};
  bool AllOk = true;

  for (auto &[Name, Kernel] : Kernels) {
    std::cout << "\n--- kernel: " << Name << " ---\n";
    Table T({"r", "strategy", "spill instrs", "false deps",
             "par edges dropped", "cycles"});
    for (unsigned Regs = 3; Regs <= 12; Regs += (Regs < 8 ? 1 : 4)) {
      for (unsigned K = 0; K != 3; ++K) {
        MachineModel M = MachineModel::rs6000(Regs);
        PipelineResult R = runAndMeasure(Kinds[K], Kernel, M);
        if (!R.Success) {
          T.addRow({K == 0 ? cell(Regs) : "", strategyName(Kinds[K]),
                    "(failed)", "-", "-", "-"});
          // Failure is expected only when registers cannot possibly
          // hold the operands (r < 3 never swept here).
          AllOk = false;
          continue;
        }
        T.addRow({K == 0 ? cell(Regs) : "", strategyName(Kinds[K]),
                  cell(R.SpillInstructions), cell(R.FalseDeps),
                  cell(R.ParallelEdgesDropped), cell(R.DynCycles)});
      }
    }
    T.print(std::cout);
  }

  std::cout << "\nExpected shape: spills fall to zero as r grows; the\n"
            << "combined column's 'par edges dropped' falls to zero with\n"
            << "ample r and its false deps stay at zero there; cycle\n"
            << "counts converge to the symbolic-schedule optimum.\n"
            << "\nRESULT: " << (AllOk ? "ALL RUNS SUCCEEDED" : "FAILURES")
            << "\n\n";
  return AllOk ? 0 : 1;
}
