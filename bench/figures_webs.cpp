//===- bench/figures_webs.cpp - Regenerate paper Figure 6 -----------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
// Figure 6 shows three live intervals of one variable merging at a single
// use: the right-number-of-names analysis must combine the def-use chains
// into one compound (non-linear) interval that occupies one register.
// This binary regenerates that situation, shows the web partition, and
// demonstrates Claim 2 alongside the region-extended PIG.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/Regions.h"
#include "analysis/Webs.h"
#include "core/ParallelInterferenceGraph.h"
#include "core/PinterAllocator.h"
#include "machine/MachineModel.h"
#include "regalloc/InterferenceGraph.h"
#include "workloads/Kernels.h"

#include <iostream>

using namespace pira;
using namespace pira::bench;

int main() {
  std::cout << "==========================================================\n"
            << " Paper Figure 6: compound live intervals (webs)\n"
            << "==========================================================\n\n";
  Function F = figure6Diamond();
  std::cout << "Input (three definitions of one variable x reach the\n"
            << "single use in the join block):\n";
  printFunction(F, std::cout);

  Webs W(F);
  std::cout << "\n--- Web partition ---\n";
  Table T({"web", "register", "defs", "entry-def", "uses"});
  for (unsigned Web = 0; Web != W.numWebs(); ++Web) {
    std::string Defs;
    for (const auto &[B, I] : W.defsOfWeb(Web))
      Defs += F.block(B).name() + ":" + std::to_string(I) + " ";
    if (Defs.empty())
      Defs = "-";
    T.addRow({cell(Web), "%s" + std::to_string(W.webRegister(Web)), Defs,
              W.hasEntryDef(Web) ? "yes" : "no",
              cell(W.numUsesOfWeb(Web))});
  }
  T.print(std::cout);

  unsigned XWeb = W.webOfUse(3, 0, 0);
  std::cout << "\n  the join's use reads web " << XWeb << " with "
            << W.defsOfWeb(XWeb).size()
            << " definitions (paper: three intervals combine into one\n"
            << "  non-linear interval requiring a single register)\n";

  // Claim 2: defs inside one compound web never execute in parallel —
  // here they live on mutually exclusive paths.
  RegionAnalysis RA(F);
  std::cout << "\n--- Plausible block pairs (dom + postdom, acyclic) ---\n";
  for (unsigned A = 0; A != F.numBlocks(); ++A)
    for (unsigned B = A + 1; B != F.numBlocks(); ++B)
      if (RA.plausiblePair(A, B))
        std::cout << "  {" << F.block(A).name() << ", "
                  << F.block(B).name() << "}\n";

  MachineModel M = MachineModel::paperTwoUnit(6);
  InterferenceGraph IG(F, W);
  ParallelInterferenceGraph Block(F, W, IG, M, /*UseRegions=*/false);
  ParallelInterferenceGraph Region(F, W, IG, M, /*UseRegions=*/true);
  std::cout << "\n--- Region extension of the PIG ---\n"
            << "  parallel edges, block-local : "
            << Block.parallel().numEdges() << '\n'
            << "  parallel edges, with regions: "
            << Region.parallel().numEdges() << '\n';

  std::vector<double> Costs(W.numWebs(), 1.0);
  Allocation A = pinterColor(Region, Costs, 6);
  std::cout << "  region-PIG coloring: " << A.NumColorsUsed
            << " colors, spills " << A.SpilledWebs.size()
            << ", dropped " << A.ParallelEdgesDropped << '\n';

  bool Ok = W.defsOfWeb(XWeb).size() == 3 && A.fullyColored() &&
            Region.parallel().numEdges() >= Block.parallel().numEdges();
  std::cout << "\nRESULT: " << (Ok ? "MATCHES PAPER" : "MISMATCH") << "\n\n";
  return Ok ? 0 : 1;
}
