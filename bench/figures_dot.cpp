//===- bench/figures_dot.cpp - GraphViz export of every exhibit -----------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
// Emits DOT renderings of the paper's graph exhibits so they can be
// compared against the figures visually:
//   Figure 1  — schedule-graph dependence edges of Example 2
//   Figure 2  — Gs data edges, Et, and Gr of Example 1
//   Figure 3  — parallelizable interference graph of Example 1
//   Figure 4  — interference graph of Example 2
//   Figure 5  — PIG of Example 2 (interference solid, parallel dashed)
//
// Pipe the output into `dot -Tsvg` per graph, or split on "digraph" /
// "graph" boundaries.
//
//===----------------------------------------------------------------------===//

#include "analysis/DependenceGraph.h"
#include "analysis/Webs.h"
#include "core/FalseDependenceGraph.h"
#include "core/ParallelInterferenceGraph.h"
#include "machine/MachineModel.h"
#include "regalloc/InterferenceGraph.h"
#include "support/DotWriter.h"
#include "workloads/Kernels.h"

#include <iostream>
#include <string>

using namespace pira;

/// Emits one undirected exhibit over the paper's s1..sN naming.
static void emitUndirected(const std::string &Name,
                           const UndirectedGraph &G, unsigned Limit,
                           const std::string &Attrs = "") {
  DotWriter W(std::cout, Name, /*Directed=*/false);
  for (unsigned V = 0; V != Limit; ++V)
    W.node(V, "s" + std::to_string(V + 1));
  for (const auto &[A, B] : G.edgeList())
    if (A < Limit && B < Limit)
      W.edge(A, B, Attrs);
}

int main() {
  MachineModel M = MachineModel::paperTwoUnit();

  // Figure 1: directed dependence edges of Example 2.
  {
    Function F = paperExample2();
    DependenceGraph Gs(F, 0, M);
    DotWriter W(std::cout, "figure1_example2_gs", /*Directed=*/true);
    for (unsigned V = 0; V != 9; ++V)
      W.node(V, "s" + std::to_string(V + 1));
    for (const DepEdge &E : Gs.edges())
      if (E.Kind == DepKind::Flow && E.To < 9)
        W.edge(E.From, E.To);
  }

  // Figure 2: Example 1 exhibits.
  {
    Function F = paperExample1();
    DependenceGraph Gs(F, 0, M);
    {
      DotWriter W(std::cout, "figure2a_example1_gs", /*Directed=*/true);
      for (unsigned V = 0; V != 5; ++V)
        W.node(V, "s" + std::to_string(V + 1));
      for (const DepEdge &E : Gs.edges())
        if (E.Kind == DepKind::Flow && E.To < 5)
          W.edge(E.From, E.To);
    }
    FalseDependenceGraph FDG(F, 0, Gs, M);
    emitUndirected("figure2b_example1_et", FDG.constraints(), 5);
    emitUndirected("figure2b_example1_ef", FDG.parallelPairs(), 5,
                   "style=dashed");
    Webs W(F);
    InterferenceGraph IG(F, W);
    emitUndirected("figure2c_example1_gr", IG.graph(), 5);

    // Figure 3: the PIG (interference solid, parallel-only dashed).
    ParallelInterferenceGraph PIG(F, W, IG, M);
    DotWriter Dot(std::cout, "figure3_example1_pig", /*Directed=*/false);
    for (unsigned V = 0; V != 5; ++V)
      Dot.node(V, "s" + std::to_string(V + 1));
    for (const auto &[A, B] : PIG.interference().edgeList())
      if (A < 5 && B < 5)
        Dot.edge(A, B);
    for (const auto &[A, B] : PIG.parallel().edgeList())
      if (A < 5 && B < 5 && !PIG.interference().hasEdge(A, B))
        Dot.edge(A, B, "style=dashed, color=blue");
  }

  // Figures 4 and 5: Example 2 interference graph and PIG.
  {
    Function F = paperExample2();
    Webs W(F);
    InterferenceGraph IG(F, W);
    emitUndirected("figure4_example2_gr", IG.graph(), 9);
    ParallelInterferenceGraph PIG(F, W, IG, M);
    DotWriter Dot(std::cout, "figure5_example2_pig", /*Directed=*/false);
    for (unsigned V = 0; V != 9; ++V)
      Dot.node(V, "s" + std::to_string(V + 1));
    for (const auto &[A, B] : PIG.interference().edgeList())
      if (A < 9 && B < 9)
        Dot.edge(A, B);
    for (const auto &[A, B] : PIG.parallel().edgeList())
      if (A < 9 && B < 9 && !PIG.interference().hasEdge(A, B))
        Dot.edge(A, B, "style=dashed, color=blue");
  }
  return 0;
}
