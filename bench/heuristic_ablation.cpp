//===- bench/heuristic_ablation.cpp - Section 4 heuristic ablation --------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
// Ablates the Section 4 heuristics one at a time under register
// pressure:
//   * EP preliminary reordering on/off (the paper: "we will add a
//     preliminary scheduling heuristic for selecting one such order");
//   * the h* edge weights — parallel weight 0 reduces h* to the
//     traditional cost/degree, larger weights bias toward keeping
//     parallelism (the paper: "parallelism that will eventually
//     materialize is preferred over the cost of spilling");
//   * the region (global) extension on/off.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "machine/MachineModel.h"
#include "pipeline/Strategies.h"
#include "workloads/Kernels.h"

#include <iostream>

using namespace pira;
using namespace pira::bench;

namespace {

struct Variant {
  const char *Name;
  PinterOptions Opts;
};

std::vector<Variant> variants() {
  std::vector<Variant> V;
  PinterOptions Base;
  V.push_back({"baseline (w_par=1, presched)", Base});

  PinterOptions NoPre = Base;
  NoPre.PreSchedule = false;
  V.push_back({"no pre-scheduling", NoPre});

  PinterOptions ClassicH = Base;
  ClassicH.ParallelWeight = 0.0;
  V.push_back({"classic h (w_par=0)", ClassicH});

  PinterOptions HeavyPar = Base;
  HeavyPar.ParallelWeight = 4.0;
  V.push_back({"parallel-biased (w_par=4)", HeavyPar});

  PinterOptions Regions = Base;
  Regions.UseRegions = true;
  V.push_back({"with region extension", Regions});
  return V;
}

} // namespace

int main() {
  std::cout << "==========================================================\n"
            << " Section 4 heuristic ablation (combined strategy)\n"
            << "==========================================================\n";

  bool AllOk = true;
  for (unsigned Regs : {4u, 6u}) {
    MachineModel M = MachineModel::rs6000(Regs);
    std::cout << "\n--- " << M.name() << ", r = " << Regs << " ---\n";
    Table T({"kernel", "variant", "spill instrs", "par dropped",
             "false deps", "cycles"});
    for (auto &[Name, Kernel] : standardKernelSuite()) {
      bool First = true;
      for (const Variant &Var : variants()) {
        PipelineResult R =
            runAndMeasure(StrategyKind::Combined, Kernel, M, Var.Opts);
        if (!R.Success) {
          T.addRow({First ? Name : "", Var.Name, "(failed)", "-", "-",
                    "-"});
          AllOk = false;
          First = false;
          continue;
        }
        T.addRow({First ? Name : "", Var.Name, cell(R.SpillInstructions),
                  cell(R.ParallelEdgesDropped), cell(R.FalseDeps),
                  cell(R.DynCycles)});
        First = false;
      }
    }
    T.print(std::cout);
  }

  std::cout << "\nExpected shape: disabling pre-scheduling or zeroing the\n"
            << "parallel weight generally costs cycles under pressure;\n"
            << "the region extension never hurts correctness and may\n"
            << "spend extra registers guarding cross-block parallelism.\n"
            << "\nRESULT: " << (AllOk ? "ALL RUNS SUCCEEDED" : "FAILURES")
            << "\n\n";
  return AllOk ? 0 : 1;
}
