//===- bench/BenchUtil.h - Shared helpers for benchmark binaries *- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small formatting helpers shared by the figure/evaluation binaries:
/// fixed-width tables, edge-list rendering in the paper's s1..sN
/// notation, cycle diagrams, reproducibility knobs (PIRA_BENCH_ITERS /
/// PIRA_BENCH_SEED), and the BENCH_*.json report writer that makes bench
/// output machine-readable across PRs.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_BENCH_BENCHUTIL_H
#define PIRA_BENCH_BENCHUTIL_H

#include "ir/Function.h"
#include "ir/Printer.h"
#include "pipeline/Report.h"
#include "sched/Schedule.h"
#include "support/Json.h"
#include "support/UndirectedGraph.h"

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace pira {
namespace bench {

/// Parses a non-negative integer environment override; \p Default when
/// the variable is unset or unparsable.
inline uint64_t envUint(const char *Name, uint64_t Default) {
  const char *Raw = std::getenv(Name);
  // strtoull silently wraps negative input, so insist on a leading digit.
  if (Raw == nullptr || *Raw < '0' || *Raw > '9')
    return Default;
  char *End = nullptr;
  unsigned long long V = std::strtoull(Raw, &End, 10);
  return (End == nullptr || *End != '\0') ? Default
                                          : static_cast<uint64_t>(V);
}

/// Iteration count for timing loops; override with PIRA_BENCH_ITERS.
inline unsigned benchIterations(unsigned Default = 1) {
  return static_cast<unsigned>(envUint("PIRA_BENCH_ITERS", Default));
}

/// Seed for workload generation / simulation; override with
/// PIRA_BENCH_SEED.
inline uint64_t benchSeed(uint64_t Default = 42) {
  return envUint("PIRA_BENCH_SEED", Default);
}

/// Starts a "pira.bench" version-2 JSON document with the shared
/// preamble: bench name, the reproducibility parameters in effect, and
/// the build provenance (the perf gate refuses to compare numbers from
/// builds it cannot identify — e.g. a Debug run against a Release
/// baseline).
inline json::Value makeBenchReport(const std::string &BenchName,
                                   unsigned Iterations, uint64_t Seed) {
  json::Value Root = json::Value::object();
  Root.set("schema", "pira.bench");
  Root.set("version", 2);
  Root.set("bench", BenchName);
  Root.set("iterations", Iterations);
  Root.set("seed", Seed);
  Root.set("provenance", buildProvenanceToJson());
  return Root;
}

/// Writes \p Report to BENCH_<name>.json in the working directory (the
/// driver collects these per-PR). Returns false on I/O failure after
/// printing a warning — benches keep their human-readable exit status.
inline bool writeBenchReport(const std::string &BenchName,
                             const json::Value &Report) {
  std::string Path = "BENCH_" + BenchName + ".json";
  std::ofstream Out(Path);
  if (Out)
    Report.write(Out, 0);
  Out << '\n';
  if (!Out) {
    std::cerr << "warning: could not write " << Path << '\n';
    return false;
  }
  std::cout << "wrote " << Path << '\n';
  return true;
}

/// Renders an undirected edge list `{s1,s4} {s2,s3} ...` in the paper's
/// 1-based notation, restricted to vertices < Limit.
inline std::string paperEdges(const UndirectedGraph &G, unsigned Limit) {
  std::ostringstream OS;
  bool First = true;
  for (const auto &[A, B] : G.edgeList()) {
    if (A >= Limit || B >= Limit)
      continue;
    OS << (First ? "" : " ") << "{s" << A + 1 << ",s" << B + 1 << "}";
    First = false;
  }
  if (First)
    OS << "(none)";
  return OS.str();
}

/// A fixed-width text table with a header row.
class Table {
public:
  explicit Table(std::vector<std::string> Headers)
      : Headers(std::move(Headers)) {}

  /// Adds one row (stringified cells).
  void addRow(std::vector<std::string> Row) { Rows.push_back(std::move(Row)); }

  /// Prints the table with column separators.
  void print(std::ostream &OS) const {
    std::vector<size_t> Widths(Headers.size(), 0);
    for (size_t C = 0; C != Headers.size(); ++C)
      Widths[C] = Headers[C].size();
    for (const auto &Row : Rows)
      for (size_t C = 0; C != Row.size() && C != Widths.size(); ++C)
        Widths[C] = std::max(Widths[C], Row[C].size());
    auto PrintRow = [&](const std::vector<std::string> &Row) {
      OS << "  ";
      for (size_t C = 0; C != Widths.size(); ++C) {
        OS << std::left << std::setw(static_cast<int>(Widths[C]) + 2)
           << (C < Row.size() ? Row[C] : "");
      }
      OS << '\n';
    };
    PrintRow(Headers);
    OS << "  ";
    for (size_t C = 0; C != Widths.size(); ++C)
      OS << std::string(Widths[C], '-') << "  ";
    OS << '\n';
    for (const auto &Row : Rows)
      PrintRow(Row);
  }

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

/// Prints the cycle-by-cycle issue diagram of one block.
inline void printCycleDiagram(const Function &F, unsigned Block,
                              const BlockSchedule &S, std::ostream &OS) {
  auto Groups = S.groupsByCycle();
  for (unsigned C = 0; C != Groups.size(); ++C) {
    OS << "    cycle " << std::setw(2) << C << ":";
    for (unsigned I : Groups[C])
      OS << "  ["
         << formatInstruction(F.block(Block).inst(I), F.isAllocated(), &F)
         << "]";
    OS << '\n';
  }
}

/// Shorthand for numeric cells.
template <typename T> std::string cell(T Value) {
  std::ostringstream OS;
  OS << Value;
  return OS.str();
}

/// Fixed-precision double cell.
inline std::string cell(double Value, int Precision) {
  std::ostringstream OS;
  OS << std::fixed << std::setprecision(Precision) << Value;
  return OS.str();
}

} // namespace bench
} // namespace pira

#endif // PIRA_BENCH_BENCHUTIL_H
