//===- bench/BenchUtil.h - Shared helpers for benchmark binaries *- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small formatting helpers shared by the figure/evaluation binaries:
/// fixed-width tables, edge-list rendering in the paper's s1..sN
/// notation, and cycle diagrams.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_BENCH_BENCHUTIL_H
#define PIRA_BENCH_BENCHUTIL_H

#include "ir/Function.h"
#include "ir/Printer.h"
#include "sched/Schedule.h"
#include "support/UndirectedGraph.h"

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace pira {
namespace bench {

/// Renders an undirected edge list `{s1,s4} {s2,s3} ...` in the paper's
/// 1-based notation, restricted to vertices < Limit.
inline std::string paperEdges(const UndirectedGraph &G, unsigned Limit) {
  std::ostringstream OS;
  bool First = true;
  for (const auto &[A, B] : G.edgeList()) {
    if (A >= Limit || B >= Limit)
      continue;
    OS << (First ? "" : " ") << "{s" << A + 1 << ",s" << B + 1 << "}";
    First = false;
  }
  if (First)
    OS << "(none)";
  return OS.str();
}

/// A fixed-width text table with a header row.
class Table {
public:
  explicit Table(std::vector<std::string> Headers)
      : Headers(std::move(Headers)) {}

  /// Adds one row (stringified cells).
  void addRow(std::vector<std::string> Row) { Rows.push_back(std::move(Row)); }

  /// Prints the table with column separators.
  void print(std::ostream &OS) const {
    std::vector<size_t> Widths(Headers.size(), 0);
    for (size_t C = 0; C != Headers.size(); ++C)
      Widths[C] = Headers[C].size();
    for (const auto &Row : Rows)
      for (size_t C = 0; C != Row.size() && C != Widths.size(); ++C)
        Widths[C] = std::max(Widths[C], Row[C].size());
    auto PrintRow = [&](const std::vector<std::string> &Row) {
      OS << "  ";
      for (size_t C = 0; C != Widths.size(); ++C) {
        OS << std::left << std::setw(static_cast<int>(Widths[C]) + 2)
           << (C < Row.size() ? Row[C] : "");
      }
      OS << '\n';
    };
    PrintRow(Headers);
    OS << "  ";
    for (size_t C = 0; C != Widths.size(); ++C)
      OS << std::string(Widths[C], '-') << "  ";
    OS << '\n';
    for (const auto &Row : Rows)
      PrintRow(Row);
  }

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

/// Prints the cycle-by-cycle issue diagram of one block.
inline void printCycleDiagram(const Function &F, unsigned Block,
                              const BlockSchedule &S, std::ostream &OS) {
  auto Groups = S.groupsByCycle();
  for (unsigned C = 0; C != Groups.size(); ++C) {
    OS << "    cycle " << std::setw(2) << C << ":";
    for (unsigned I : Groups[C])
      OS << "  ["
         << formatInstruction(F.block(Block).inst(I), F.isAllocated(), &F)
         << "]";
    OS << '\n';
  }
}

/// Shorthand for numeric cells.
template <typename T> std::string cell(T Value) {
  std::ostringstream OS;
  OS << Value;
  return OS.str();
}

/// Fixed-precision double cell.
inline std::string cell(double Value, int Precision) {
  std::ostringstream OS;
  OS << std::fixed << std::setprecision(Precision) << Value;
  return OS.str();
}

} // namespace bench
} // namespace pira

#endif // PIRA_BENCH_BENCHUTIL_H
