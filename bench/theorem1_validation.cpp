//===- bench/theorem1_validation.cpp - Theorems 1 & 2 at scale ------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
// The paper's evaluation never shipped; its claims are Theorems 1 and 2.
// This binary validates them exhaustively over seeded random programs on
// every machine model: a PIG coloring with ample registers must spill
// nothing and introduce zero false dependences (Theorem 1), and merging
// the endpoints of any deleted PIG edge must produce a false dependence
// or an interference violation (Theorem 2).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/Webs.h"
#include "core/FalseDepChecker.h"
#include "core/ParallelInterferenceGraph.h"
#include "core/PinterAllocator.h"
#include "machine/MachineModel.h"
#include "regalloc/InterferenceGraph.h"
#include "workloads/RandomProgram.h"

#include <iostream>

using namespace pira;
using namespace pira::bench;

int main() {
  std::cout << "==========================================================\n"
            << " Theorem 1 / Theorem 2 validation sweep\n"
            << "==========================================================\n\n";

  std::vector<MachineModel> Machines = {
      MachineModel::paperTwoUnit(64), MachineModel::rs6000(64),
      MachineModel::vliw4(64), MachineModel::mipsR3000(64)};
  std::vector<CfgShape> Shapes = {CfgShape::Straight, CfgShape::Diamond,
                                  CfgShape::Loop, CfgShape::NestedDiamond,
                                  CfgShape::DoubleLoop};

  Table T({"machine", "programs", "webs", "T1 spills", "T1 false deps",
           "T2 edges checked", "T2 violations"});
  bool AllOk = true;

  for (const MachineModel &M : Machines) {
    unsigned Programs = 0, TotalWebs = 0, T1Spills = 0, T1False = 0;
    unsigned T2Checked = 0, T2Violations = 0;
    for (CfgShape Shape : Shapes) {
      for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
        RandomProgramOptions Opts;
        Opts.Shape = Shape;
        Opts.Seed = Seed * 1013;
        Opts.FloatPercent = 20 + Seed % 3 * 25;
        Opts.MemoryPercent = 15 + Seed % 2 * 15;
        Opts.InstructionsPerBlock = 12 + Seed % 8;
        Function Symbolic = generateRandomProgram(Opts);
        ++Programs;

        Webs W(Symbolic);
        TotalWebs += W.numWebs();
        InterferenceGraph IG(Symbolic, W);
        ParallelInterferenceGraph PIG(Symbolic, W, IG, M);
        std::vector<double> Costs(W.numWebs(), 1.0);

        // Theorem 1.
        Allocation A = pinterColor(PIG, Costs, 64);
        T1Spills += static_cast<unsigned>(A.SpilledWebs.size());
        if (A.fullyColored()) {
          Function Alloc = Symbolic;
          applyAllocation(Alloc, W, A);
          T1False += static_cast<unsigned>(
              findFalseDependences(Symbolic, Alloc, M).size());
        }

        // Theorem 2 on a sample of parallel-only, single-def edges.
        unsigned PerProgram = 0;
        for (const auto &[U, V] : PIG.parallel().edgeList()) {
          if (PIG.interference().hasEdge(U, V))
            continue;
          if (W.defsOfWeb(U).size() != 1 || W.defsOfWeb(V).size() != 1 ||
              W.hasEntryDef(U) || W.hasEntryDef(V))
            continue;
          if (++PerProgram > 4)
            break;
          Allocation Merge;
          Merge.ColorOfWeb.resize(PIG.numWebs());
          for (unsigned X = 0; X != PIG.numWebs(); ++X)
            Merge.ColorOfWeb[X] = static_cast<int>(X);
          Merge.ColorOfWeb[V] = static_cast<int>(U);
          Merge.NumColorsUsed = PIG.numWebs();
          Function Alloc = Symbolic;
          applyAllocation(Alloc, W, Merge);
          ++T2Checked;
          if (findFalseDependences(Symbolic, Alloc, M).empty())
            ++T2Violations;
        }
      }
    }
    AllOk &= T1Spills == 0 && T1False == 0 && T2Violations == 0;
    T.addRow({M.name(), cell(Programs), cell(TotalWebs), cell(T1Spills),
              cell(T1False), cell(T2Checked), cell(T2Violations)});
  }

  T.print(std::cout);
  std::cout << "\nExpected: zero T1 spills, zero T1 false deps, zero T2\n"
            << "violations on every row (the theorems are exact).\n"
            << "\nRESULT: " << (AllOk ? "MATCHES PAPER" : "MISMATCH")
            << "\n\n";
  return AllOk ? 0 : 1;
}
