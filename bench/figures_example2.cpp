//===- bench/figures_example2.cpp - Regenerate paper Example 2 ------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
// Regenerates the exhibits around Example 2: the schedule-graph data
// edges (Figure 1), the complement (false dependence) edges quoted in the
// text, the 3-colorability of the plain interference graph (Figure 4),
// the 4-register parallelizable-interference allocation (Figure 5), and —
// the paper's punchline — the cycle-level schedules showing that the
// 3-register Chaitin allocation fences off the machine's parallelism
// while the combined allocation keeps the optimal schedule.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/DependenceGraph.h"
#include "analysis/Webs.h"
#include "core/FalseDependenceGraph.h"
#include "core/ParallelInterferenceGraph.h"
#include "core/PinterAllocator.h"
#include "machine/MachineModel.h"
#include "pipeline/Strategies.h"
#include "regalloc/ChaitinAllocator.h"
#include "regalloc/InterferenceGraph.h"
#include "workloads/Kernels.h"

#include <iostream>

using namespace pira;
using namespace pira::bench;

int main() {
  std::cout << "==========================================================\n"
            << " Paper Example 2  (PLDI'93, Figures 1, 4, 5)\n"
            << " Machine: one fixed-point, one floating-point, one fetch\n"
            << "==========================================================\n\n";
  Function F = paperExample2();
  MachineModel M = MachineModel::paperTwoUnit(4);

  std::cout << "Input code (instructions are the paper's s1..s9):\n";
  printFunction(F, std::cout);

  DependenceGraph Gs(F, 0, M);
  std::cout << "\n--- Figure 1: dependence edges of the schedule graph ---\n  ";
  const char *Sep = "";
  for (const DepEdge &E : Gs.edges()) {
    if (E.Kind != DepKind::Flow || E.To >= 9)
      continue;
    std::cout << Sep << "s" << E.From + 1 << "->s" << E.To + 1;
    Sep = "  ";
  }
  std::cout << "\n  paper:  s1,s2->s3  s1,s2->s4  s3,s4->s5  s6,s7->s8  "
               "s5,s8->s9\n";

  FalseDependenceGraph FDG(F, 0, Gs, M);
  std::cout << "\n--- Complement (false dependence) edges Ef ---\n"
            << "  ours : " << paperEdges(FDG.parallelPairs(), 9) << '\n'
            << "  paper: s8 with each of s1..s5, and all edges between\n"
            << "         {s6,s7} and {s3,s4,s5}   (11 edges)\n";

  Webs W(F);
  InterferenceGraph IG(F, W);
  std::vector<double> Costs(W.numWebs(), 1.0);
  Allocation Gr3 = chaitinColor(IG.graph(), Costs, 3);
  std::cout << "\n--- Figure 4: plain interference graph ---\n"
            << "  colors needed: " << Gr3.NumColorsUsed
            << " (paper: \"only three registers are needed\")\n";

  ParallelInterferenceGraph PIG(F, W, IG, M);
  Allocation Pig4 = pinterColor(PIG, Costs, 4);
  std::cout << "\n--- Figure 5: parallelizable interference graph ---\n"
            << "  colors needed: " << Pig4.NumColorsUsed
            << " (paper: \"four registers are needed\"), dropped parallel "
               "edges: "
            << Pig4.ParallelEdgesDropped << '\n';
  Table T({"inst", "paper reg (Fig. 5)", "our reg"});
  const char *PaperRegs[9] = {"r1", "r2", "r3", "r2", "r3",
                              "r1", "r4", "r4", "r1"};
  for (unsigned I = 0; I != 9; ++I)
    T.addRow({"s" + std::to_string(I + 1), PaperRegs[I],
              "r" + std::to_string(Pig4.ColorOfWeb[W.webOfDef(0, I)] + 1)});
  T.print(std::cout);

  // The punchline: schedules under the two allocations.
  std::cout << "\n--- Schedules on the two-unit machine ---\n";
  MachineModel M3 = MachineModel::paperTwoUnit(3);
  PipelineResult AF = runAndMeasure(StrategyKind::AllocFirst, F, M3);
  PipelineResult CB = runAndMeasure(StrategyKind::Combined, F, M);
  std::cout << "\n  alloc-first (Chaitin, 3 regs) — " << AF.DynCycles
            << " cycles, " << AF.FalseDeps << " false dep(s), "
            << AF.AntiOrderingLosses << " anti ordering loss(es):\n";
  printCycleDiagram(AF.Final, 0, AF.Sched.Blocks[0], std::cout);
  std::cout << "\n  combined (PIG, 4 regs) — " << CB.DynCycles
            << " cycles, " << CB.FalseDeps << " false dep(s):\n";
  printCycleDiagram(CB.Final, 0, CB.Sched.Blocks[0], std::cout);

  Table Summary({"strategy", "regs", "false deps", "cycles", "IPC"});
  Summary.addRow({"alloc-first", cell(AF.RegistersUsed),
                  cell(AF.FalseDeps), cell(AF.DynCycles),
                  cell(static_cast<double>(F.totalInstructions()) /
                           static_cast<double>(AF.DynCycles),
                       2)});
  Summary.addRow({"combined", cell(CB.RegistersUsed), cell(CB.FalseDeps),
                  cell(CB.DynCycles),
                  cell(static_cast<double>(F.totalInstructions()) /
                           static_cast<double>(CB.DynCycles),
                       2)});
  std::cout << '\n';
  Summary.print(std::cout);

  bool Ok = Gr3.fullyColored() && Gr3.NumColorsUsed == 3 &&
            Pig4.fullyColored() && Pig4.NumColorsUsed == 4 &&
            Pig4.ParallelEdgesDropped == 0 && CB.FalseDeps == 0 &&
            CB.DynCycles <= AF.DynCycles && CB.Success && AF.Success;
  std::cout << "\nRESULT: " << (Ok ? "MATCHES PAPER" : "MISMATCH") << "\n\n";
  return Ok ? 0 : 1;
}
