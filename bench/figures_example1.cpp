//===- bench/figures_example1.cpp - Regenerate paper Example 1 ------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
// Regenerates every exhibit built on the paper's Example 1: the schedule
// graph's data edges (Figure 2a), the constraint set Et and its machine
// subset (Figure 2b), the false dependence edges (Figure 2b), the
// interference graph (Figure 2c), the parallelizable interference graph
// and a 3-register combined allocation (Figure 3), and the introduction's
// naive allocation (c) with its false dependence. The paper's expected
// values are printed next to the regenerated ones.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/DependenceGraph.h"
#include "analysis/Webs.h"
#include "core/FalseDepChecker.h"
#include "core/FalseDependenceGraph.h"
#include "core/ParallelInterferenceGraph.h"
#include "core/PinterAllocator.h"
#include "machine/MachineModel.h"
#include "regalloc/InterferenceGraph.h"
#include "workloads/Kernels.h"

#include <iostream>

using namespace pira;
using namespace pira::bench;

int main() {
  std::cout << "==========================================================\n"
            << " Paper Example 1  (PLDI'93, Figures 2-3)\n"
            << "==========================================================\n\n";
  Function F = paperExample1();
  MachineModel M = MachineModel::paperTwoUnit();

  std::cout << "Input code (block 0 instructions are the paper's s1..s5;\n"
            << "s5 := s3*5+s1 maps to mul(s3,s1) — same operands and unit):\n";
  printFunction(F, std::cout);

  DependenceGraph Gs(F, 0, M);
  std::cout << "\n--- Figure 2(a): data dependence edges of Gs ---\n  ";
  const char *Sep = "";
  for (const DepEdge &E : Gs.edges()) {
    if (E.Kind != DepKind::Flow || E.To >= 5)
      continue;
    std::cout << Sep << "s" << E.From + 1 << "->s" << E.To + 1;
    Sep = "  ";
  }
  std::cout << "\n  paper:  s1->s4  s1->s5  s2->s3  s3->s5\n";

  FalseDependenceGraph FDG(F, 0, Gs, M);
  std::cout << "\n--- Figure 2(b): the set Et ---\n"
            << "  ours : " << paperEdges(FDG.constraints(), 5) << '\n'
            << "  paper: {s1,s3} {s1,s4} {s1,s5} {s2,s3} {s2,s5} {s3,s5} "
               "{s4,s5}\n"
            << "  machine-dependent subset:\n"
            << "  ours : " << paperEdges(FDG.machinePairs(), 5) << '\n'
            << "  paper: {s1,s3} {s4,s5}\n";

  std::cout << "\n--- Figure 2(b): false dependence edges Ef ---\n"
            << "  ours : " << paperEdges(FDG.parallelPairs(), 5) << '\n'
            << "  paper: {s1,s2} {s2,s4} {s3,s4}\n";

  Webs W(F);
  InterferenceGraph IG(F, W);
  std::cout << "\n--- Figure 2(c): interference graph Gr ---\n"
            << "  ours : " << paperEdges(IG.graph(), 5) << '\n'
            << "  (s2/s3 and s1/s5 do not interfere: the last-use "
               "statement is an open endpoint)\n";

  ParallelInterferenceGraph PIG(F, W, IG, M);
  std::cout << "\n--- Figure 3: parallelizable interference graph ---\n"
            << "  edges: " << paperEdges(PIG.combined(), 5) << '\n';

  std::vector<double> Costs(W.numWebs(), 1.0);
  Allocation A = pinterColor(PIG, Costs, 3);
  Table T({"inst", "paper reg", "our reg"});
  const char *PaperRegs[5] = {"r1", "r2", "r2", "r3", "r2"};
  for (unsigned I = 0; I != 5; ++I)
    T.addRow({"s" + std::to_string(I + 1), PaperRegs[I],
              "r" + std::to_string(A.ColorOfWeb[W.webOfDef(0, I)] + 1)});
  std::cout << "\n  3-register combined allocation (paper's mapping vs "
               "ours; any optimal PIG coloring is valid):\n";
  T.print(std::cout);
  std::cout << "  colors used: " << A.NumColorsUsed
            << " (paper: 3), parallel edges dropped: "
            << A.ParallelEdgesDropped << " (paper: 0), spills: "
            << A.SpilledWebs.size() << " (paper: 0)\n";

  // The introduction's allocation (c): reuse r2 for s4 and r1 for s5.
  Function Naive = F;
  Allocation NA;
  NA.ColorOfWeb.assign(W.numWebs(), -1);
  int NaiveColors[5] = {0, 1, 2, 1, 0};
  for (unsigned I = 0; I != 5; ++I)
    NA.ColorOfWeb[W.webOfDef(0, I)] = NaiveColors[I];
  NA.NumColorsUsed = 3;
  applyAllocation(Naive, W, NA);
  auto False = findFalseDependences(F, Naive, M);
  std::cout << "\n--- Introduction (c): naive 3-register reuse ---\n";
  printFunction(Naive, std::cout);
  std::cout << "  false dependences introduced: " << False.size()
            << " (paper: 1, between the 2nd and 4th instructions)\n";
  for (const FalseDep &FD : False)
    std::cout << "    inst " << FD.From + 1 << " -> inst " << FD.To + 1
              << " (" << depKindName(FD.Kind) << ")\n";

  bool Ok = False.size() == 1 && False[0].From == 1 && False[0].To == 3 &&
            A.NumColorsUsed == 3 && A.ParallelEdgesDropped == 0;
  std::cout << "\nRESULT: " << (Ok ? "MATCHES PAPER" : "MISMATCH") << "\n\n";
  return Ok ? 0 : 1;
}
