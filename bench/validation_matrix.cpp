//===- bench/validation_matrix.cpp - End-to-end soundness matrix ----------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
// Runs every kernel through every strategy on every machine model and
// verifies, via the cycle-accurate simulator against the sequential
// interpreter, that the compiled code computes the same arrays and
// return value. This is the repository's blanket soundness statement:
// the evaluation numbers elsewhere come from pipelines that pass this
// matrix.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "machine/MachineModel.h"
#include "pipeline/Strategies.h"
#include "workloads/Kernels.h"
#include "workloads/RandomProgram.h"

#include <iostream>

using namespace pira;
using namespace pira::bench;

int main() {
  std::cout << "==========================================================\n"
            << " Validation matrix: semantic preservation everywhere\n"
            << "==========================================================\n\n";

  std::vector<MachineModel> Machines = {
      MachineModel::scalar(6), MachineModel::paperTwoUnit(6),
      MachineModel::mipsR3000(6), MachineModel::rs6000(6),
      MachineModel::vliw4(6)};
  const StrategyKind Kinds[4] = {StrategyKind::AllocFirst,
                                 StrategyKind::SchedFirst,
                                 StrategyKind::IntegratedPrepass,
                                 StrategyKind::Combined};

  unsigned Runs = 0, Passes = 0;
  Table T({"machine", "kernels", "strategies", "runs", "verified"});
  for (const MachineModel &M : Machines) {
    unsigned MachineRuns = 0, MachinePasses = 0;
    for (auto &[Name, Kernel] : standardKernelSuite())
      for (StrategyKind K : Kinds) {
        ++MachineRuns;
        PipelineResult R = runAndMeasure(K, Kernel, M, {}, /*Seed=*/77);
        if (R.Success && R.SemanticsPreserved)
          ++MachinePasses;
        else
          std::cout << "  FAIL: " << Name << " / " << strategyName(K)
                    << " on " << M.name() << ": " << R.Error << '\n';
      }
    Runs += MachineRuns;
    Passes += MachinePasses;
    T.addRow({M.name(), cell(standardKernelSuite().size()), "4",
              cell(MachineRuns), cell(MachinePasses)});
  }

  // A second layer over random programs (three shapes, both strategies
  // most sensitive to CFG shape).
  unsigned RandomRuns = 0, RandomPasses = 0;
  for (unsigned Seed = 1; Seed <= 12; ++Seed) {
    RandomProgramOptions Opts;
    Opts.Seed = Seed * 3023;
    Opts.Shape = static_cast<CfgShape>(Seed % 5);
    Opts.InstructionsPerBlock = 12;
    Function F = generateRandomProgram(Opts);
    for (StrategyKind K : Kinds) {
      ++RandomRuns;
      PipelineResult R =
          runAndMeasure(K, F, MachineModel::rs6000(5), {}, Seed);
      if (R.Success && R.SemanticsPreserved)
        ++RandomPasses;
      else
        std::cout << "  FAIL: random seed " << Seed << " / "
                  << strategyName(K) << ": " << R.Error << '\n';
    }
  }
  T.addRow({"rs6000 (random x12)", "12", "4", cell(RandomRuns),
            cell(RandomPasses)});
  Runs += RandomRuns;
  Passes += RandomPasses;

  T.print(std::cout);
  std::cout << "\ntotal: " << Passes << " / " << Runs << " verified\n"
            << "\nRESULT: "
            << (Passes == Runs ? "ALL RUNS VERIFIED" : "FAILURES")
            << "\n\n";
  return Passes == Runs ? 0 : 1;
}
