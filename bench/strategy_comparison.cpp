//===- bench/strategy_comparison.cpp - The promised evaluation ------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
// The paper promised experimental results ("we shall have some
// experimental results by the time the full paper is due") comparing its
// combined framework against the two deployed phase orderings: register
// allocation before scheduling (MIPS [6]) and scheduling before
// allocation (IBM RS/6000 [14]). This binary runs that comparison over
// the kernel suite on every machine model, measuring dynamic cycles in
// the superscalar simulator along with spills and false dependences.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "machine/MachineModel.h"
#include "pipeline/Strategies.h"
#include "workloads/Kernels.h"

#include <cmath>
#include <iostream>

using namespace pira;
using namespace pira::bench;

int main() {
  std::cout << "==========================================================\n"
            << " Strategy comparison: alloc-first vs sched-first vs\n"
            << " combined (the paper's framework)\n"
            << "==========================================================\n";

  std::vector<MachineModel> Machines = {MachineModel::paperTwoUnit(6),
                                        MachineModel::rs6000(6),
                                        MachineModel::vliw4(6)};
  const StrategyKind Kinds[4] = {StrategyKind::AllocFirst,
                                 StrategyKind::SchedFirst,
                                 StrategyKind::IntegratedPrepass,
                                 StrategyKind::Combined};
  bool AllOk = true;

  for (const MachineModel &M : Machines) {
    std::cout << "\n--- machine: " << M.name() << " ("
              << M.numPhysRegs() << " registers) ---\n";
    Table T({"kernel", "strategy", "regs", "spill instrs", "false deps",
             "cycles", "vs combined"});
    double LogSum[4] = {0, 0, 0, 0};
    unsigned Counted = 0;

    for (auto &[Name, Kernel] : standardKernelSuite()) {
      PipelineResult R[4];
      for (unsigned K = 0; K != 4; ++K)
        R[K] = runAndMeasure(Kinds[K], Kernel, M);
      bool Ok = R[0].Success && R[1].Success && R[2].Success && R[3].Success;
      AllOk &= Ok;
      if (!Ok) {
        T.addRow({Name, "(failed)", "-", "-", "-", "-", "-"});
        continue;
      }
      ++Counted;
      for (unsigned K = 0; K != 4; ++K) {
        double Ratio = static_cast<double>(R[K].DynCycles) /
                       static_cast<double>(R[3].DynCycles);
        LogSum[K] += std::log(Ratio);
        T.addRow({K == 0 ? Name : "", strategyName(Kinds[K]),
                  cell(R[K].RegistersUsed), cell(R[K].SpillInstructions),
                  cell(R[K].FalseDeps), cell(R[K].DynCycles),
                  cell(Ratio, 3) + "x"});
      }
    }
    T.print(std::cout);
    std::cout << "  geomean cycle ratio vs combined:  alloc-first "
              << cell(std::exp(LogSum[0] / Counted), 3)
              << "x   sched-first "
              << cell(std::exp(LogSum[1] / Counted), 3)
              << "x   goodman-hsu-ips "
              << cell(std::exp(LogSum[2] / Counted), 3) << "x\n";
  }

  std::cout << "\nExpected shape (paper Sections 1 and 3): combined is\n"
            << "never slower than alloc-first on parallel machines, has\n"
            << "zero false dependences whenever it needs no spills, and\n"
            << "avoids sched-first's extra spills under pressure.\n"
            << "\nRESULT: " << (AllOk ? "ALL RUNS SUCCEEDED" : "FAILURES")
            << "\n\n";
  return AllOk ? 0 : 1;
}
