//===- bench/strategy_comparison.cpp - The promised evaluation ------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
// The paper promised experimental results ("we shall have some
// experimental results by the time the full paper is due") comparing its
// combined framework against the two deployed phase orderings: register
// allocation before scheduling (MIPS [6]) and scheduling before
// allocation (IBM RS/6000 [14]). This binary runs that comparison over
// the kernel suite on every machine model, measuring dynamic cycles in
// the superscalar simulator along with spills and false dependences.
//
// Besides the human-readable tables it writes
// BENCH_strategy_comparison.json (the "pira.bench" schema) so the
// numbers are diffable across PRs. PIRA_BENCH_SEED picks the simulation
// seed and PIRA_BENCH_ITERS repeats each pipeline for wall-time
// averaging; both are recorded in the report.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "machine/MachineModel.h"
#include "pipeline/Report.h"
#include "pipeline/Strategies.h"
#include "workloads/Kernels.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>

using namespace pira;
using namespace pira::bench;

int main() {
  std::cout << "==========================================================\n"
            << " Strategy comparison: alloc-first vs sched-first vs\n"
            << " combined (the paper's framework)\n"
            << "==========================================================\n";

  const unsigned Iters = benchIterations(1);
  const uint64_t Seed = benchSeed(42);

  std::vector<MachineModel> Machines = {MachineModel::paperTwoUnit(6),
                                        MachineModel::rs6000(6),
                                        MachineModel::vliw4(6)};
  const StrategyKind Kinds[4] = {StrategyKind::AllocFirst,
                                 StrategyKind::SchedFirst,
                                 StrategyKind::IntegratedPrepass,
                                 StrategyKind::Combined};
  bool AllOk = true;

  json::Value Report = makeBenchReport("strategy_comparison", Iters, Seed);
  json::Value Results = json::Value::array();

  for (const MachineModel &M : Machines) {
    std::cout << "\n--- machine: " << M.name() << " ("
              << M.numPhysRegs() << " registers) ---\n";
    Table T({"kernel", "strategy", "regs", "spill instrs", "false deps",
             "cycles", "vs combined"});
    double LogSum[4] = {0, 0, 0, 0};
    unsigned Counted = 0;

    for (auto &[Name, Kernel] : standardKernelSuite()) {
      PipelineResult R[4];
      double WallNs[4] = {0, 0, 0, 0};
      for (unsigned K = 0; K != 4; ++K) {
        auto Start = std::chrono::steady_clock::now();
        for (unsigned It = 0; It != Iters; ++It)
          R[K] = runAndMeasure(Kinds[K], Kernel, M, {}, Seed);
        auto End = std::chrono::steady_clock::now();
        WallNs[K] =
            std::chrono::duration<double, std::nano>(End - Start).count() /
            std::max(1u, Iters);
      }
      bool Ok = R[0].Success && R[1].Success && R[2].Success && R[3].Success;
      AllOk &= Ok;
      for (unsigned K = 0; K != 4; ++K) {
        json::Value Row = json::Value::object();
        Row.set("machine", M.name());
        Row.set("kernel", Name);
        Row.set("strategy", strategyName(Kinds[K]));
        Row.set("wall_ns_per_run", WallNs[K]);
        Row.set("pipeline", pipelineResultToJson(R[K]));
        Results.push(std::move(Row));
      }
      if (!Ok) {
        T.addRow({Name, "(failed)", "-", "-", "-", "-", "-"});
        continue;
      }
      ++Counted;
      for (unsigned K = 0; K != 4; ++K) {
        double Ratio = static_cast<double>(R[K].DynCycles) /
                       static_cast<double>(R[3].DynCycles);
        LogSum[K] += std::log(Ratio);
        T.addRow({K == 0 ? Name : "", strategyName(Kinds[K]),
                  cell(R[K].RegistersUsed), cell(R[K].SpillInstructions),
                  cell(R[K].FalseDeps), cell(R[K].DynCycles),
                  cell(Ratio, 3) + "x"});
      }
    }
    T.print(std::cout);
    std::cout << "  geomean cycle ratio vs combined:  alloc-first "
              << cell(std::exp(LogSum[0] / Counted), 3)
              << "x   sched-first "
              << cell(std::exp(LogSum[1] / Counted), 3)
              << "x   goodman-hsu-ips "
              << cell(std::exp(LogSum[2] / Counted), 3) << "x\n";
  }

  Report.set("results", std::move(Results));
  Report.set("counters", countersToJson());
  Report.set("all_ok", AllOk);
  writeBenchReport("strategy_comparison", Report);

  std::cout << "\nExpected shape (paper Sections 1 and 3): combined is\n"
            << "never slower than alloc-first on parallel machines, has\n"
            << "zero false dependences whenever it needs no spills, and\n"
            << "avoids sched-first's extra spills under pressure.\n"
            << "\nRESULT: " << (AllOk ? "ALL RUNS SUCCEEDED" : "FAILURES")
            << "\n\n";
  return AllOk ? 0 : 1;
}
