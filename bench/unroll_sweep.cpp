//===- bench/unroll_sweep.cpp - ILP vs register pressure sweep ------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
// Sweeps the loop-unroll factor on streaming kernels: unrolling widens
// the scheduling window (more instruction-level parallelism per trip)
// while multiplying live temporaries — exactly the spill/parallelism
// tension the paper's Section 4 heuristics arbitrate. Cycles are
// measured end to end in the simulator; lower cycles per element is
// better.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "machine/MachineModel.h"
#include "pipeline/Strategies.h"
#include "transforms/LoopUnroller.h"
#include "workloads/Kernels.h"

#include <iostream>

using namespace pira;
using namespace pira::bench;

int main() {
  std::cout << "==========================================================\n"
            << " Unroll sweep (vliw4 machine): cycles vs unroll factor\n"
            << "==========================================================\n";

  std::vector<std::pair<std::string, Function>> Kernels = {
      {"dot", dotProduct(1)},
      {"saxpy", saxpy(1)},
      {"iccg", livermoreIccg(1)}};
  const StrategyKind Kinds[2] = {StrategyKind::AllocFirst,
                                 StrategyKind::Combined};
  bool AllOk = true;

  for (unsigned Regs : {8u, 16u}) {
    MachineModel M = MachineModel::vliw4(Regs);
    std::cout << "\n--- " << M.name() << ", r = " << Regs << " ---\n";
    Table T({"kernel", "unroll", "strategy", "spill instrs", "false deps",
             "cycles"});
    for (auto &[Name, Kernel] : Kernels) {
      bool First = true;
      for (unsigned Factor : {1u, 2u, 4u, 8u}) {
        Function F = Kernel;
        if (Factor != 1 && unrollAllLoops(F, Factor) == 0) {
          T.addRow({First ? Name : "", cell(Factor), "(not unrollable)",
                    "-", "-", "-"});
          First = false;
          continue;
        }
        for (unsigned K = 0; K != 2; ++K) {
          PipelineResult R = runAndMeasure(Kinds[K], F, M);
          if (!R.Success) {
            T.addRow({First ? Name : "", cell(Factor),
                      strategyName(Kinds[K]), "(failed)", "-", "-"});
            AllOk = false;
            First = false;
            continue;
          }
          T.addRow({First ? Name : "", cell(Factor),
                    strategyName(Kinds[K]), cell(R.SpillInstructions),
                    cell(R.FalseDeps), cell(R.DynCycles)});
          First = false;
        }
      }
    }
    T.print(std::cout);
  }

  std::cout << "\nExpected shape: cycles fall with moderate unrolling while\n"
            << "registers last, then spill code erodes the win — and the\n"
            << "combined strategy extracts more of the unrolled ILP than\n"
            << "alloc-first at equal register budgets.\n"
            << "\nRESULT: " << (AllOk ? "ALL RUNS SUCCEEDED" : "FAILURES")
            << "\n\n";
  return AllOk ? 0 : 1;
}
