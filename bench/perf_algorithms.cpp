//===- bench/perf_algorithms.cpp - Algorithmic cost benchmarks ------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
// google-benchmark timings of the framework's building blocks against
// block size: schedule-graph construction, transitive closure, false
// dependence graph, PIG construction, the two coloring procedures, the
// list scheduler, and the full combined pipeline. These back the
// engineering claim that the construction is practical: the closure is
// the asymptotic bottleneck at O(V^2 * V/64) bit steps.
//
// A custom main wraps the console reporter so every run also lands in
// BENCH_perf_algorithms.json ("pira.bench" schema) with the
// PIRA_BENCH_SEED in effect recorded, keeping the perf trajectory
// machine-readable across PRs.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/DependenceGraph.h"
#include "analysis/Webs.h"
#include "core/FalseDependenceGraph.h"
#include "core/ParallelInterferenceGraph.h"
#include "core/PinterAllocator.h"
#include "machine/MachineModel.h"
#include "pipeline/Batch.h"
#include "pipeline/Cache.h"
#include "pipeline/Strategies.h"
#include "pipeline/Tournament.h"
#include "regalloc/ChaitinAllocator.h"
#include "regalloc/InterferenceGraph.h"
#include "regalloc/SpillCost.h"
#include "sched/ListScheduler.h"
#include "support/ThreadPool.h"
#include "workloads/RandomProgram.h"

#include <benchmark/benchmark.h>

using namespace pira;

namespace {

Function makeBlock(unsigned Instructions) {
  // Block 0 (the block every per-block bench analyzes) holds exactly
  // `Instructions` instructions: two seed defs, the value-producing body,
  // and the trailing branch.
  RandomProgramOptions Opts;
  Opts.InstructionsPerBlock = Instructions > 3 ? Instructions - 3 : 1;
  Opts.Seed = pira::bench::benchSeed(4242);
  Opts.FloatPercent = 40;
  Opts.MemoryPercent = 25;
  return generateRandomProgram(Opts);
}

void BM_DependenceGraph(benchmark::State &State) {
  Function F = makeBlock(static_cast<unsigned>(State.range(0)));
  MachineModel M = MachineModel::rs6000(32);
  for (auto _ : State) {
    DependenceGraph G(F, 0, M);
    benchmark::DoNotOptimize(G.size());
  }
}
BENCHMARK(BM_DependenceGraph)
    ->Arg(32)->Arg(128)->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096);

void BM_TransitiveClosure(benchmark::State &State) {
  // The production path: pre-closure DAG reduction (sink peel, component
  // split, chain collapse, transitive strip) then the reverse-topological
  // sweep. Compare with BM_TransitiveClosureUnreduced at equal args for
  // the reduced-over-unreduced speedup the CI perf gate tracks.
  Function F = makeBlock(static_cast<unsigned>(State.range(0)));
  MachineModel M = MachineModel::rs6000(32);
  DependenceGraph G(F, 0, M);
  for (auto _ : State) {
    BitMatrix R = G.reachability();
    benchmark::DoNotOptimize(R.count());
  }
}
BENCHMARK(BM_TransitiveClosure)
    ->Arg(32)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096);

void BM_TransitiveClosureParallel(benchmark::State &State) {
  // The same reduced closure with independent components closed on the
  // thread pool (the single-function --jobs path). Byte-identical result;
  // the delta against BM_TransitiveClosure is pure component parallelism.
  Function F = makeBlock(static_cast<unsigned>(State.range(0)));
  MachineModel M = MachineModel::rs6000(32);
  DependenceGraph G(F, 0, M);
  ThreadPool Pool;
  for (auto _ : State) {
    BitMatrix R = G.reachability(&Pool);
    benchmark::DoNotOptimize(R.count());
  }
}
BENCHMARK(BM_TransitiveClosureParallel)->Arg(1024)->Arg(4096)->UseRealTime();

void BM_TransitiveClosureUnreduced(benchmark::State &State) {
  // Word-parallel Warshall straight over the adjacency matrix — the
  // pre-reduction production path, kept as the ratio denominator for the
  // closure_reduction_speedup gate.
  Function F = makeBlock(static_cast<unsigned>(State.range(0)));
  MachineModel M = MachineModel::rs6000(32);
  DependenceGraph G(F, 0, M);
  for (auto _ : State) {
    BitMatrix R = G.adjacency();
    R.transitiveClosure();
    benchmark::DoNotOptimize(R.count());
  }
}
BENCHMARK(BM_TransitiveClosureUnreduced)
    ->Arg(32)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096);

void BM_TransitiveClosureSetBased(benchmark::State &State) {
  // The pre-rewrite per-node std::set closure, kept as the differential
  // oracle; timed against BM_TransitiveClosure at the same sizes to pin
  // the packed-bitset speedup in BENCH_perf_algorithms.json.
  Function F = makeBlock(static_cast<unsigned>(State.range(0)));
  MachineModel M = MachineModel::rs6000(32);
  DependenceGraph G(F, 0, M);
  BitMatrix Edges(G.size());
  for (const DepEdge &E : G.edges())
    Edges.set(E.From, E.To);
  for (auto _ : State) {
    BitMatrix R = Edges.transitiveClosureSetBased();
    benchmark::DoNotOptimize(R.count());
  }
}
BENCHMARK(BM_TransitiveClosureSetBased)->Arg(32)->Arg(128)->Arg(256)->Arg(512);

void BM_FalseDependenceGraph(benchmark::State &State) {
  Function F = makeBlock(static_cast<unsigned>(State.range(0)));
  MachineModel M = MachineModel::rs6000(32);
  for (auto _ : State) {
    FalseDependenceGraph FDG(F, 0, M);
    benchmark::DoNotOptimize(FDG.parallelPairs().numEdges());
  }
}
BENCHMARK(BM_FalseDependenceGraph)->Arg(32)->Arg(128)->Arg(512);

void BM_PigConstruction(benchmark::State &State) {
  Function F = makeBlock(static_cast<unsigned>(State.range(0)));
  MachineModel M = MachineModel::rs6000(32);
  Webs W(F);
  InterferenceGraph IG(F, W);
  for (auto _ : State) {
    ParallelInterferenceGraph PIG(F, W, IG, M);
    benchmark::DoNotOptimize(PIG.numWebs());
  }
}
BENCHMARK(BM_PigConstruction)->Arg(32)->Arg(128)->Arg(512);

void BM_ChaitinColor(benchmark::State &State) {
  Function F = makeBlock(static_cast<unsigned>(State.range(0)));
  Webs W(F);
  InterferenceGraph IG(F, W);
  std::vector<double> Costs = computeSpillCosts(F, W);
  for (auto _ : State) {
    Allocation A = chaitinColor(IG.graph(), Costs, 16);
    benchmark::DoNotOptimize(A.NumColorsUsed);
  }
}
BENCHMARK(BM_ChaitinColor)->Arg(32)->Arg(128)->Arg(512);

void BM_PinterColor(benchmark::State &State) {
  Function F = makeBlock(static_cast<unsigned>(State.range(0)));
  MachineModel M = MachineModel::rs6000(16);
  Webs W(F);
  InterferenceGraph IG(F, W);
  ParallelInterferenceGraph PIG(F, W, IG, M);
  std::vector<double> Costs = computeSpillCosts(F, W);
  for (auto _ : State) {
    Allocation A = pinterColor(PIG, Costs, 16);
    benchmark::DoNotOptimize(A.NumColorsUsed);
  }
}
BENCHMARK(BM_PinterColor)->Arg(32)->Arg(128)->Arg(512);

void BM_ListScheduler(benchmark::State &State) {
  Function F = makeBlock(static_cast<unsigned>(State.range(0)));
  MachineModel M = MachineModel::rs6000(32);
  for (auto _ : State) {
    FunctionSchedule S = scheduleFunction(F, M);
    benchmark::DoNotOptimize(S.totalMakespan());
  }
}
BENCHMARK(BM_ListScheduler)->Arg(32)->Arg(128)->Arg(512);

void BM_CombinedPipeline(benchmark::State &State) {
  Function F = makeBlock(static_cast<unsigned>(State.range(0)));
  MachineModel M = MachineModel::rs6000(12);
  for (auto _ : State) {
    PipelineResult R = runStrategy(StrategyKind::Combined, F, M);
    benchmark::DoNotOptimize(R.StaticCycles);
  }
}
BENCHMARK(BM_CombinedPipeline)->Arg(32)->Arg(128);

void BM_Oracle(benchmark::State &State) {
  // The exact branch-and-bound search on a tournament-corpus block.
  // Guarded to the small single blocks inside the oracle's envelope —
  // search cost is exponential in principle, so this stays out of the
  // CI perf gate (wildly machine-sensitive) and exists to track the
  // pruning machinery's trajectory offline.
  TournamentOptions TOpts;
  std::vector<BatchItem> Corpus = makeTournamentCorpus(
      1, static_cast<unsigned>(State.range(0)), pira::bench::benchSeed(4242),
      TOpts);
  MachineModel M = MachineModel::paperTwoUnit(8);
  for (auto _ : State) {
    PipelineResult R = runStrategy(StrategyKind::Oracle, Corpus[0].Input, M);
    benchmark::DoNotOptimize(R.StaticCycles);
  }
}
BENCHMARK(BM_Oracle)->Arg(8)->Arg(12)->Arg(16);

void BM_CompileBatch(benchmark::State &State) {
  // 24 functions through the combined pipeline, sharded across
  // State.range(0) workers. Serial-vs-parallel wall clock for the batch
  // driver; on a single-core host all arms degenerate to the Jobs=1 time
  // (the determinism guarantee makes the outputs identical either way).
  std::vector<BatchItem> Batch;
  for (unsigned I = 0; I != 24; ++I) {
    RandomProgramOptions Opts;
    Opts.InstructionsPerBlock = 40;
    Opts.FloatPercent = 40;
    Opts.MemoryPercent = 25;
    Opts.Seed = pira::bench::benchSeed(4242) + I;
    Batch.push_back({"f" + std::to_string(I), generateRandomProgram(Opts)});
  }
  MachineModel M = MachineModel::rs6000(12);
  BatchOptions Opts;
  Opts.Jobs = static_cast<unsigned>(State.range(0));
  Opts.Measure = false;
  for (auto _ : State) {
    BatchResult R = compileBatch(Batch, M, Opts);
    benchmark::DoNotOptimize(R.Succeeded);
  }
}
BENCHMARK(BM_CompileBatch)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_CompileBatchWarmCache(benchmark::State &State) {
  // The same 24-function batch through a pre-filled compilation cache:
  // every item is a memory-tier hit, so the timed loop measures key
  // computation + entry decode instead of compilation. The ratio to
  // BM_CompileBatch/1 is the warm-cache speedup recorded in
  // EXPERIMENTS.md.
  std::vector<BatchItem> Batch;
  for (unsigned I = 0; I != 24; ++I) {
    RandomProgramOptions Opts;
    Opts.InstructionsPerBlock = 40;
    Opts.FloatPercent = 40;
    Opts.MemoryPercent = 25;
    Opts.Seed = pira::bench::benchSeed(4242) + I;
    Batch.push_back({"f" + std::to_string(I), generateRandomProgram(Opts)});
  }
  MachineModel M = MachineModel::rs6000(12);
  CompilationCache Cache(CacheMode::On);
  BatchOptions Opts;
  Opts.Jobs = 1;
  Opts.Measure = false;
  Opts.Cache = &Cache;
  // Cold fill outside the timed loop.
  compileBatch(Batch, M, Opts);
  for (auto _ : State) {
    BatchResult R = compileBatch(Batch, M, Opts);
    benchmark::DoNotOptimize(R.Succeeded);
  }
}
BENCHMARK(BM_CompileBatchWarmCache)->UseRealTime();

/// Forwards to the console reporter while collecting every run into a
/// "pira.bench" JSON document written at exit.
class JsonTeeReporter : public benchmark::ConsoleReporter {
public:
  JsonTeeReporter()
      : Report(pira::bench::makeBenchReport(
            "perf_algorithms", pira::bench::benchIterations(0),
            pira::bench::benchSeed(4242))),
        Results(pira::json::Value::array()) {}

  void ReportRuns(const std::vector<Run> &Runs) override {
    for (const Run &R : Runs) {
      pira::json::Value Row = pira::json::Value::object();
      Row.set("name", R.benchmark_name());
      Row.set("iterations", static_cast<int64_t>(R.iterations));
      Row.set("real_time_ns", R.GetAdjustedRealTime());
      Row.set("cpu_time_ns", R.GetAdjustedCPUTime());
      if (R.error_occurred)
        Row.set("error", R.error_message);
      Results.push(std::move(Row));
    }
    ConsoleReporter::ReportRuns(Runs);
  }

  void Finalize() override {
    Report.set("results", std::move(Results));
    pira::bench::writeBenchReport("perf_algorithms", Report);
    ConsoleReporter::Finalize();
  }

private:
  pira::json::Value Report;
  pira::json::Value Results;
};

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  JsonTeeReporter Reporter;
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  benchmark::Shutdown();
  return 0;
}
