#!/usr/bin/env python3
"""Perf-regression gate over "pira.bench" reports.

Compares a fresh BENCH_perf_algorithms.json against a committed baseline
and fails (exit 1) when a gated metric regresses by more than the
threshold. The primary gates are *ratios between benchmarks from the
same run* — the set-based-closure / bitset-closure speedup and the
cold / warm-cache batch speedup — because a ratio divides out the
machine: a slow CI runner slows both numerator and denominator, while a
real regression (say the bitset closure losing its word-parallel inner
loop) collapses the ratio no matter the host.

Absolute wall-clock gates (--absolute) are also available for
same-machine comparisons, e.g. a developer re-running the suite before
and after a change on one box.

Exit codes: 0 all gates pass, 1 regression, 2 usage / unreadable or
mismatched inputs.
"""

import argparse
import json
import sys

# (label, numerator benchmark, denominator benchmark). Higher is better
# for both: the numerator is the slow reference, the denominator the
# optimised path.
RATIO_GATES = [
    ("closure_speedup_256",
     "BM_TransitiveClosureSetBased/256", "BM_TransitiveClosure/256"),
    ("closure_reduction_speedup_1024",
     "BM_TransitiveClosureUnreduced/1024", "BM_TransitiveClosure/1024"),
    ("warm_cache_speedup",
     "BM_CompileBatch/1/real_time", "BM_CompileBatchWarmCache/real_time"),
]

# Hard floors on the *fresh* ratio itself, enforced in addition to the
# baseline-relative threshold. These encode standing acceptance criteria
# (the DAG reduction must keep beating plain Warshall by 2x at
# 1k-instruction blocks) so a slowly drifting committed baseline cannot
# ratchet a requirement away.
RATIO_FLOORS = {
    "closure_reduction_speedup_1024": 2.0,
}


def fail_usage(msg):
    print("perf_gate: error: " + msg, file=sys.stderr)
    sys.exit(2)


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        fail_usage("cannot read %s: %s" % (path, e))
    if doc.get("schema") != "pira.bench":
        fail_usage("%s is not a pira.bench report" % path)
    times = {}
    for row in doc.get("results", []):
        if "error" in row:
            continue
        try:
            value = float(row["real_time_ns"])
        except (KeyError, TypeError, ValueError):
            fail_usage("%s: result %r has no numeric real_time_ns"
                       % (path, row.get("name", "?")))
        if not value > 0.0:
            # A zero or negative time would silently pass (or divide by
            # zero in) every ratio gate downstream; it can only mean a
            # broken producer, so refuse the report outright.
            fail_usage("%s: benchmark %r reports non-positive time %r"
                       % (path, row.get("name", "?"), value))
        times[row["name"]] = value
    if not times:
        fail_usage("%s has no usable benchmark results" % path)
    return doc, times


def check_provenance(base_doc, fresh_doc):
    """Refuse cross-build-type comparisons: Debug-vs-Release deltas are
    build-flag artifacts, not regressions. Git SHAs are expected to
    differ and are only reported."""
    base = base_doc.get("provenance", {})
    fresh = fresh_doc.get("provenance", {})
    problems = []
    for key in ("build_type", "ndebug"):
        if key in base and key in fresh and base[key] != fresh[key]:
            problems.append("%s: baseline=%r fresh=%r"
                            % (key, base[key], fresh[key]))
    return problems


def main():
    ap = argparse.ArgumentParser(
        description="Gate fresh pira.bench results against a baseline.")
    ap.add_argument("baseline", help="committed baseline BENCH_*.json")
    ap.add_argument("fresh", help="freshly produced BENCH_*.json")
    ap.add_argument("--threshold-pct", type=float, default=25.0,
                    help="allowed regression in percent (default 25)")
    ap.add_argument("--absolute", action="store_true",
                    help="also gate absolute real_time_ns of every "
                         "benchmark present in both reports (only "
                         "meaningful on the same machine)")
    ap.add_argument("--no-provenance-check", action="store_true",
                    help="compare even across build types")
    args = ap.parse_args()
    if not 0 <= args.threshold_pct < 100:
        fail_usage("--threshold-pct must be in [0, 100)")

    base_doc, base_times = load_report(args.baseline)
    fresh_doc, fresh_times = load_report(args.fresh)

    mismatches = check_provenance(base_doc, fresh_doc)
    if mismatches and not args.no_provenance_check:
        fail_usage("build provenance mismatch (pass --no-provenance-check "
                   "to override): " + "; ".join(mismatches))

    base_sha = base_doc.get("provenance", {}).get("git_sha", "?")
    fresh_sha = fresh_doc.get("provenance", {}).get("git_sha", "?")
    print("perf_gate: baseline git %s vs fresh git %s, threshold %.0f%%"
          % (base_sha, fresh_sha, args.threshold_pct))

    slack = args.threshold_pct / 100.0
    rows = []
    failed = []

    def record(label, base_val, fresh_val, floor, ok):
        rows.append((label, base_val, fresh_val, floor, ok))
        if not ok:
            failed.append(label)

    for label, num, den in RATIO_GATES:
        missing = [n for n in (num, den)
                   if n not in base_times or n not in fresh_times]
        if missing:
            fail_usage("gate %s: benchmark(s) %s missing from a report"
                       % (label, ", ".join(missing)))
        base_ratio = base_times[num] / base_times[den]
        fresh_ratio = fresh_times[num] / fresh_times[den]
        floor = max(base_ratio * (1.0 - slack),
                    RATIO_FLOORS.get(label, 0.0))
        record(label, base_ratio, fresh_ratio, floor,
               fresh_ratio >= floor)

    if args.absolute:
        for name in sorted(set(base_times) & set(fresh_times)):
            ceil = base_times[name] * (1.0 + slack)
            record(name + " ns", base_times[name], fresh_times[name],
                   ceil, fresh_times[name] <= ceil)

    if not rows:
        fail_usage("no gates were evaluated (empty benchmark set)")
    width = max(len(r[0]) for r in rows)
    print("  %-*s  %12s  %12s  %12s  %s"
          % (width, "gate", "baseline", "fresh", "limit", "status"))
    for label, base_val, fresh_val, limit, ok in rows:
        print("  %-*s  %12.3f  %12.3f  %12.3f  %s"
              % (width, label, base_val, fresh_val, limit,
                 "ok" if ok else "REGRESSED"))

    if failed:
        print("perf_gate: FAIL: %s" % ", ".join(failed), file=sys.stderr)
        return 1
    print("perf_gate: all %d gates pass" % len(rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
