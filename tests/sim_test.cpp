//===- tests/sim_test.cpp - Superscalar simulator unit tests --------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "analysis/DependenceGraph.h"
#include "ir/IRBuilder.h"
#include "ir/Interpreter.h"
#include "machine/MachineModel.h"
#include "regalloc/ChaitinAllocator.h"
#include "sched/ListScheduler.h"
#include "sim/SuperscalarSim.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

using namespace pira;

namespace {

/// Allocates (8 regs) and schedules \p F for \p M, returning the final
/// function and schedule through out-params.
void compileFor(Function F, const MachineModel &M, Function &OutF,
                FunctionSchedule &OutS) {
  AllocStats Stats = chaitinAllocate(F, M.numPhysRegs());
  ASSERT_TRUE(Stats.Success);
  OutS = scheduleFunction(F, M);
  OutF = std::move(F);
}

} // namespace

TEST(SimTest, MatchesInterpreterOnAllKernels) {
  MachineModel M = MachineModel::rs6000(8);
  for (auto &[Name, Kernel] : standardKernelSuite()) {
    Function F;
    FunctionSchedule S;
    compileFor(Kernel, M, F, S);
    ExecState InitRef = makeInitialState(Kernel, 17);
    ExecState InitSim = makeInitialState(F, 17);
    for (auto &[ArrName, Data] : InitSim.Arrays) {
      auto It = InitRef.Arrays.find(ArrName);
      if (It != InitRef.Arrays.end())
        Data = It->second;
      else
        Data.assign(Data.size(), 0);
    }
    ExecResult Ref = interpret(Kernel, std::move(InitRef));
    SimResult Sim = simulate(F, S, M, std::move(InitSim));
    ASSERT_TRUE(Ref.Completed) << Name;
    ASSERT_TRUE(Sim.Completed) << Name << ": " << Sim.Error;
    EXPECT_EQ(Ref.HasReturnValue, Sim.HasReturnValue) << Name;
    if (Ref.HasReturnValue) {
      EXPECT_EQ(Ref.ReturnValue, Sim.ReturnValue) << Name;
    }
    for (const auto &[ArrName, Data] : Ref.Final.Arrays)
      EXPECT_EQ(Data, Sim.Final.Arrays.at(ArrName))
          << Name << " array " << ArrName;
  }
}

TEST(SimTest, CountsCyclesOfStraightLine) {
  Function F = paperExample2();
  MachineModel M = MachineModel::paperTwoUnit(8);
  AllocStats Stats = chaitinAllocate(F, 8);
  ASSERT_TRUE(Stats.Success);
  FunctionSchedule S = scheduleFunction(F, M);
  SimResult R = simulate(F, S, M, makeInitialState(F, 1));
  ASSERT_TRUE(R.Completed) << R.Error;
  EXPECT_EQ(R.Cycles, S.totalMakespan());
  EXPECT_EQ(R.Instructions, F.totalInstructions());
}

TEST(SimTest, LoopCyclesScaleWithIterations) {
  Function F = dotProduct(1); // 64 iterations
  MachineModel M = MachineModel::rs6000(8);
  Function Compiled;
  FunctionSchedule S;
  compileFor(F, M, Compiled, S);
  SimResult R = simulate(Compiled, S, M, makeInitialState(Compiled, 2));
  ASSERT_TRUE(R.Completed) << R.Error;
  unsigned LoopMakespan = S.Blocks[1].Makespan;
  EXPECT_GE(R.Cycles, 64u * LoopMakespan);
}

TEST(SimTest, DetectsIssueWidthViolation) {
  Function F = paperExample2();
  MachineModel M = MachineModel::paperTwoUnit(16);
  AllocStats Stats = chaitinAllocate(F, 16);
  ASSERT_TRUE(Stats.Success);
  FunctionSchedule S = scheduleFunction(F, M);
  // Cram everything into cycle 0.
  for (unsigned &C : S.Blocks[0].CycleOf)
    C = 0;
  S.Blocks[0].Makespan = 1;
  SimResult R = simulate(F, S, M, makeInitialState(F, 1));
  EXPECT_FALSE(R.Completed);
  EXPECT_FALSE(R.Error.empty());
}

TEST(SimTest, DetectsUnitOvercommit) {
  // Two independent int adds forced into one cycle on a 1-ALU machine
  // with wide issue.
  Function F("t");
  F.setNumRegs(4);
  F.setAllocated(true);
  F.addBlock("e");
  F.block(0).append(Instruction(Opcode::LoadImm, 0, {}, 1));
  F.block(0).append(Instruction(Opcode::LoadImm, 1, {}, 2));
  F.block(0).append(Instruction(Opcode::Add, 2, {0, 0}));
  F.block(0).append(Instruction(Opcode::Sub, 3, {1, 1}));
  F.block(0).append(Instruction(Opcode::Ret, NoReg, {2}));
  MachineModel M = MachineModel::paperTwoUnit(8);
  BlockSchedule BS;
  BS.CycleOf = {0, 1, 2, 2, 3}; // both ALU ops at cycle 2
  BS.Makespan = 4;
  FunctionSchedule S;
  S.Blocks.push_back(BS);
  SimResult R = simulate(F, S, M, makeInitialState(F, 1));
  EXPECT_FALSE(R.Completed);
  EXPECT_NE(R.Error.find("unit overcommitted"), std::string::npos);
}

TEST(SimTest, DetectsLatencyViolation) {
  // Consumer scheduled the cycle after a latency-2 load.
  Function F("t");
  F.setNumRegs(2);
  F.setAllocated(true);
  F.addBlock("e");
  Instruction L(Opcode::Load, 0, {}, 0);
  L.setArraySymbol("a");
  F.block(0).append(std::move(L));
  F.block(0).append(Instruction(Opcode::Add, 1, {0, 0}));
  F.block(0).append(Instruction(Opcode::Ret, NoReg, {1}));
  F.declareArray("a", 4);
  MachineModel M = MachineModel::rs6000(8); // load latency 2
  BlockSchedule BS;
  BS.CycleOf = {0, 1, 2}; // add must wait until cycle 2; scheduled at 1
  BS.Makespan = 3;
  FunctionSchedule S;
  S.Blocks.push_back(BS);
  SimResult R = simulate(F, S, M, makeInitialState(F, 1));
  EXPECT_FALSE(R.Completed);
  EXPECT_NE(R.Error.find("before ready"), std::string::npos);
}

TEST(SimTest, DetectsMemoryReadBeforeStoreReady) {
  Function F("t");
  F.setNumRegs(2);
  F.setAllocated(true);
  F.addBlock("e");
  F.block(0).append(Instruction(Opcode::LoadImm, 0, {}, 7));
  Instruction St(Opcode::Store, NoReg, {0}, 3);
  St.setArraySymbol("a");
  F.block(0).append(std::move(St));
  Instruction Ld(Opcode::Load, 1, {}, 3);
  Ld.setArraySymbol("a");
  F.block(0).append(std::move(Ld));
  F.block(0).append(Instruction(Opcode::Ret, NoReg, {1}));
  F.declareArray("a", 4);
  MachineModel M = MachineModel::vliw4(8);
  BlockSchedule BS;
  BS.CycleOf = {0, 1, 1, 2}; // load in the same cycle as the store
  BS.Makespan = 3;
  FunctionSchedule S;
  S.Blocks.push_back(BS);
  SimResult R = simulate(F, S, M, makeInitialState(F, 1));
  EXPECT_FALSE(R.Completed);
  EXPECT_NE(R.Error.find("memory read"), std::string::npos);
}

TEST(SimTest, AntiDependenceSameCycleReadsOldValue) {
  // reader (add) and overwriter (li) share a cycle: the add must see the
  // old value (reads-before-writes).
  Function F("t");
  F.setNumRegs(2);
  F.setAllocated(true);
  F.addBlock("e");
  F.block(0).append(Instruction(Opcode::LoadImm, 0, {}, 5));
  F.block(0).append(Instruction(Opcode::Add, 1, {0, 0})); // 10
  F.block(0).append(Instruction(Opcode::LoadImm, 0, {}, 99));
  F.block(0).append(Instruction(Opcode::Ret, NoReg, {1}));
  MachineModel M = MachineModel::vliw4(8);
  M.setUniformLatency(1);
  BlockSchedule BS;
  BS.CycleOf = {0, 1, 1, 2}; // add and the second li co-issue
  BS.Makespan = 3;
  FunctionSchedule S;
  S.Blocks.push_back(BS);
  SimResult R = simulate(F, S, M, makeInitialState(F, 1));
  ASSERT_TRUE(R.Completed) << R.Error;
  EXPECT_EQ(R.ReturnValue, 10);
}

TEST(SimTest, UtilizationCountsPerUnit) {
  Function F = paperExample2();
  MachineModel M = MachineModel::paperTwoUnit(8);
  AllocStats Stats = chaitinAllocate(F, 8);
  ASSERT_TRUE(Stats.Success);
  FunctionSchedule S = scheduleFunction(F, M);
  SimResult R = simulate(F, S, M, makeInitialState(F, 1));
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.UnitIssues[static_cast<unsigned>(UnitKind::Memory)], 4u);
  EXPECT_EQ(R.UnitIssues[static_cast<unsigned>(UnitKind::IntALU)], 3u);
  EXPECT_EQ(R.UnitIssues[static_cast<unsigned>(UnitKind::FPU)], 2u);
  EXPECT_EQ(R.UnitIssues[static_cast<unsigned>(UnitKind::Branch)], 1u);
  EXPECT_GT(R.ipc(), 1.0);
}

TEST(SimTest, CycleBudgetStopsRunaway) {
  Function F("t");
  F.setNumRegs(0);
  F.setAllocated(true);
  F.addBlock("spin");
  Instruction Br(Opcode::Br, NoReg, {});
  Br.setTargets({0});
  F.block(0).append(std::move(Br));
  BlockSchedule BS;
  BS.CycleOf = {0};
  BS.Makespan = 1;
  FunctionSchedule S;
  S.Blocks.push_back(BS);
  SimResult R = simulate(F, S, MachineModel::scalar(), ExecState{},
                         /*MaxCycles=*/64);
  EXPECT_FALSE(R.Completed);
  EXPECT_NE(R.Error.find("budget"), std::string::npos);
}
