//===- tests/remote_cache_test.cpp - Remote cache tier tests --------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
// The shared remote cache tier (DESIGN.md §13): the RemoteCacheTier
// envelope over a mocked backend — integrity verification and
// quarantine, the circuit breaker's Closed/Open/HalfOpen walk,
// in-operation retries, single-flight collapsing — the degradation
// ladder through CompilationCache (remote → disk → memory → compile),
// Verify mode across a lying remote, disk-tier trimming under
// --cache-max-mb, the deterministic reconnect jitter, the net.* fault
// sites inside the framing layer, and the framed cache protocol served
// end-to-end by a real `pirac serve --cache-serve` daemon (including a
// two-daemon chain).
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "machine/MachineModel.h"
#include "pipeline/Batch.h"
#include "pipeline/Cache.h"
#include "pipeline/Report.h"
#include "service/CacheClient.h"
#include "service/Client.h"
#include "service/Framing.h"
#include "service/Listener.h"
#include "service/Server.h"
#include "support/FaultInjection.h"
#include "support/Hash.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace pira;
using namespace pira::service;

namespace {

/// A tiny well-formed function; \p Name keeps keys distinct per test.
Function smallFunction(const std::string &Name) {
  std::string Text = "func @" + Name + R"( regs 8 {
block entry:
  %s0 = li 1
  %s1 = li 2
  %s2 = add %s0, %s1
  %s3 = fmul %s2, %s1
  ret %s3
}
)";
  Function F;
  std::string Error;
  EXPECT_TRUE(parseFunction(Text, F, Error)) << Error;
  return F;
}

/// A compiled function with everything a remote tier traffics in: the
/// key, the serialized entry, and the producer-side digest.
struct Artifact {
  std::string Key;
  json::Value Entry;
  std::string Text;
  std::string Digest;
  PipelineResult Result;
};

Artifact makeArtifact(const std::string &Name) {
  Artifact A;
  Function F = smallFunction(Name);
  MachineModel M = MachineModel::rs6000();
  BatchOptions Opts;
  GuardedResult G = compileFunctionGuarded(F, M, Opts);
  EXPECT_TRUE(G.Result.Success) << G.Result.Error;
  A.Key = computeCacheKey(F, M, Opts);
  A.Entry = encodeCacheEntry(G.Result, A.Key);
  A.Text = A.Entry.toString(-1);
  A.Digest = hash::Sha256::hashHex(A.Text);
  A.Result = G.Result;
  return A;
}

/// A fresh per-test scratch directory under the gtest temp root.
std::filesystem::path scratchDir(const std::string &Tag) {
  std::filesystem::path Dir =
      std::filesystem::path(testing::TempDir()) / ("pira_remote_" + Tag);
  std::filesystem::remove_all(Dir);
  return Dir;
}

/// An in-process backend the tests poison at will. The tier owns the
/// unique_ptr; tests keep the raw pointer (the tier serializes calls,
/// and counters are only read after the traffic of interest is done).
class MockBackend : public RemoteCacheBackend {
public:
  std::map<std::string, RemoteCacheHit> Entries;
  bool FailLookups = false;
  bool FailStores = false;
  unsigned FailFirstN = 0;            ///< Fail this many calls, then heal.
  std::atomic<bool> Release{true};    ///< Gate for single-flight tests.
  std::atomic<unsigned> LookupCalls{0};
  std::atomic<unsigned> StoreCalls{0};

  Expected<RemoteCacheHit> lookup(const std::string &Key,
                                  int /*DeadlineMs*/) override {
    ++LookupCalls;
    for (int I = 0; I != 10000 && !Release.load(); ++I)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (FailFirstN > 0) {
      --FailFirstN;
      return Status::error(ErrorCode::ServerOverloaded, "mock", "flaky");
    }
    if (FailLookups)
      return Status::error(ErrorCode::ServerOverloaded, "mock", "down");
    auto It = Entries.find(Key);
    if (It == Entries.end())
      return RemoteCacheHit{};
    return It->second;
  }

  Status store(const std::string &Key, const std::string &EntryText,
               const std::string &Digest, int /*DeadlineMs*/) override {
    ++StoreCalls;
    if (FailStores)
      return Status::error(ErrorCode::ServerOverloaded, "mock", "down");
    Entries[Key] = RemoteCacheHit{true, EntryText, Digest};
    return Status();
  }

  std::string describe() const override { return "mock"; }
};

/// Tier options with every window shrunk so failure paths are fast.
RemoteCacheOptions fastOpts() {
  RemoteCacheOptions O;
  O.OpDeadlineMs = 500;
  O.MaxAttempts = 1;
  O.BackoffMs = 1;
  O.BackoffCapMs = 2;
  O.BreakerThreshold = 3;
  O.BreakerCooldownMs = 50;
  return O;
}

} // namespace

//===----------------------------------------------------------------------===//
// RemoteCacheTier over a mocked backend
//===----------------------------------------------------------------------===//

TEST(RemoteTierTest, VerifiedHitIsServed) {
  Artifact A = makeArtifact("hit");
  auto Owned = std::make_unique<MockBackend>();
  Owned->Entries[A.Key] = {true, A.Text, A.Digest};
  RemoteCacheTier Tier(std::move(Owned), fastOpts());

  std::string Text;
  std::shared_ptr<const json::Value> E = Tier.lookup(A.Key, &Text);
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(Text, A.Text);
  EXPECT_EQ(E->toString(-1), A.Text);
  EXPECT_TRUE(decodeCacheEntry(*E).ok());

  RemoteCacheTier::Stats S = Tier.stats();
  EXPECT_EQ(S.Lookups, 1u);
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Quarantined, 0u);
  EXPECT_EQ(S.TransportFailures, 0u);
  EXPECT_EQ(S.State, RemoteCacheTier::Breaker::Closed);
}

TEST(RemoteTierTest, AbsentKeyIsACleanMiss) {
  auto Owned = std::make_unique<MockBackend>();
  RemoteCacheTier Tier(std::move(Owned), fastOpts());
  EXPECT_EQ(Tier.lookup("no-such-key"), nullptr);
  RemoteCacheTier::Stats S = Tier.stats();
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.TransportFailures, 0u);
  EXPECT_EQ(S.State, RemoteCacheTier::Breaker::Closed);
}

TEST(RemoteTierTest, DigestMismatchIsQuarantinedNotUsedNotABreakerEvent) {
  Artifact A = makeArtifact("digest");
  std::string WrongDigest = A.Digest;
  WrongDigest[0] = WrongDigest[0] == 'a' ? 'b' : 'a';
  auto Owned = std::make_unique<MockBackend>();
  Owned->Entries[A.Key] = {true, A.Text, WrongDigest};
  RemoteCacheTier Tier(std::move(Owned), fastOpts());

  // A lying daemon is not a dead one: the entry is quarantined every
  // time, but the transport is healthy, so the breaker never moves.
  for (int I = 0; I != 5; ++I)
    EXPECT_EQ(Tier.lookup(A.Key), nullptr);
  RemoteCacheTier::Stats S = Tier.stats();
  EXPECT_EQ(S.Quarantined, 5u);
  EXPECT_EQ(S.Hits, 0u);
  EXPECT_EQ(S.TransportFailures, 0u);
  EXPECT_EQ(S.BreakerTrips, 0u);
  EXPECT_EQ(S.State, RemoteCacheTier::Breaker::Closed);
}

TEST(RemoteTierTest, EntryFiledUnderTheWrongKeyIsQuarantined) {
  // A valid entry with a valid digest — but served under another key.
  // The digest check passes; the self-identification check must not.
  Artifact A = makeArtifact("selfkey_a");
  Artifact B = makeArtifact("selfkey_b");
  auto Owned = std::make_unique<MockBackend>();
  Owned->Entries[B.Key] = {true, A.Text, A.Digest};
  RemoteCacheTier Tier(std::move(Owned), fastOpts());
  EXPECT_EQ(Tier.lookup(B.Key), nullptr);
  EXPECT_EQ(Tier.stats().Quarantined, 1u);
}

TEST(RemoteTierTest, UndecodableEntryIsQuarantinedEvenWithAnHonestDigest) {
  // Digest, parse, and self-key all pass; only the full decode can see
  // that the schedule was gutted.
  Artifact A = makeArtifact("decode");
  json::Value Gutted = A.Entry;
  Gutted.set("schedule", json::Value::array());
  std::string Text = Gutted.toString(-1);
  auto Owned = std::make_unique<MockBackend>();
  Owned->Entries[A.Key] = {true, Text, hash::Sha256::hashHex(Text)};
  RemoteCacheTier Tier(std::move(Owned), fastOpts());
  EXPECT_EQ(Tier.lookup(A.Key), nullptr);
  EXPECT_EQ(Tier.stats().Quarantined, 1u);
  EXPECT_EQ(Tier.stats().Hits, 0u);
}

TEST(RemoteTierTest, RetriesHealATransientFailureWithinOneOperation) {
  Artifact A = makeArtifact("retry");
  RemoteCacheOptions O = fastOpts();
  O.MaxAttempts = 3;
  auto Owned = std::make_unique<MockBackend>();
  MockBackend *Mock = Owned.get();
  Mock->FailFirstN = 2;
  Mock->Entries[A.Key] = {true, A.Text, A.Digest};
  RemoteCacheTier Tier(std::move(Owned), O);

  EXPECT_NE(Tier.lookup(A.Key), nullptr);
  EXPECT_EQ(Mock->LookupCalls.load(), 3u);
  RemoteCacheTier::Stats S = Tier.stats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.TransportFailures, 2u); // Two failed attempts, one success.
  EXPECT_EQ(S.BreakerTrips, 0u);      // The operation succeeded overall.
  EXPECT_EQ(S.State, RemoteCacheTier::Breaker::Closed);
}

TEST(RemoteTierTest, BreakerTripsOpenThenRecoversThroughAHalfOpenProbe) {
  Artifact A = makeArtifact("breaker");
  auto Owned = std::make_unique<MockBackend>();
  MockBackend *Mock = Owned.get();
  Mock->FailLookups = true;
  RemoteCacheTier Tier(std::move(Owned), fastOpts()); // Threshold 3.

  // Three consecutive failed operations trip the breaker open.
  for (int I = 0; I != 3; ++I)
    EXPECT_EQ(Tier.lookup(A.Key), nullptr);
  RemoteCacheTier::Stats S = Tier.stats();
  EXPECT_EQ(S.State, RemoteCacheTier::Breaker::Open);
  EXPECT_EQ(S.BreakerTrips, 1u);
  EXPECT_EQ(S.TransportFailures, 3u);
  EXPECT_EQ(Mock->LookupCalls.load(), 3u);

  // While open, operations are refused without touching the network.
  EXPECT_EQ(Tier.lookup(A.Key), nullptr);
  EXPECT_EQ(Mock->LookupCalls.load(), 3u);
  EXPECT_EQ(Tier.stats().BreakerSkipped, 1u);

  // After the cooldown a single half-open probe reaches the (now
  // recovered) daemon, succeeds, and closes the breaker again.
  Mock->FailLookups = false;
  Mock->Entries[A.Key] = {true, A.Text, A.Digest};
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_NE(Tier.lookup(A.Key), nullptr);
  S = Tier.stats();
  EXPECT_EQ(S.State, RemoteCacheTier::Breaker::Closed);
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.BreakerTrips, 1u); // Recovery is not another trip.

  // And traffic flows normally again.
  EXPECT_NE(Tier.lookup(A.Key), nullptr);
  EXPECT_EQ(Tier.stats().Hits, 2u);
}

TEST(RemoteTierTest, SingleFlightCollapsesConcurrentIdenticalLookups) {
  Artifact A = makeArtifact("flight");
  RemoteCacheOptions O = fastOpts();
  O.OpDeadlineMs = 15000;
  auto Owned = std::make_unique<MockBackend>();
  MockBackend *Mock = Owned.get();
  Mock->Entries[A.Key] = {true, A.Text, A.Digest};
  Mock->Release = false; // Hold the leader inside the backend.
  RemoteCacheTier Tier(std::move(Owned), O);

  constexpr unsigned N = 4;
  std::vector<std::thread> Threads;
  std::vector<std::shared_ptr<const json::Value>> Out(N);
  for (unsigned I = 0; I != N; ++I)
    Threads.emplace_back([&, I] { Out[I] = Tier.lookup(A.Key); });

  // Wait until every follower has joined the leader's flight, then let
  // the one backend call finish. The gate makes this deterministic: the
  // leader cannot complete before the followers are counted.
  for (int I = 0; I != 10000 && Tier.stats().Collapsed < N - 1; ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(Tier.stats().Collapsed, N - 1);
  Mock->Release = true;
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Mock->LookupCalls.load(), 1u); // One wire operation total.
  RemoteCacheTier::Stats S = Tier.stats();
  EXPECT_EQ(S.Lookups, uint64_t(N));
  EXPECT_EQ(S.Hits, 1u); // The leader's; followers share its entry.
  for (unsigned I = 0; I != N; ++I) {
    ASSERT_NE(Out[I], nullptr) << "waiter " << I;
    EXPECT_EQ(Out[I]->toString(-1), A.Text);
  }
}

TEST(RemoteTierTest, StoreComputesTheDigestAndRoundTrips) {
  Artifact A = makeArtifact("store");
  auto Owned = std::make_unique<MockBackend>();
  MockBackend *Mock = Owned.get();
  RemoteCacheTier Tier(std::move(Owned), fastOpts());

  Tier.store(A.Key, A.Text);
  EXPECT_EQ(Tier.stats().Stores, 1u);
  ASSERT_EQ(Mock->Entries.count(A.Key), 1u);
  EXPECT_EQ(Mock->Entries[A.Key].Digest, A.Digest);

  // What was published verifies on the way back down.
  EXPECT_NE(Tier.lookup(A.Key), nullptr);
  EXPECT_EQ(Tier.stats().Quarantined, 0u);
}

TEST(RemoteTierTest, StoreFailuresAreCountedAndSilent) {
  Artifact A = makeArtifact("storefail");
  auto Owned = std::make_unique<MockBackend>();
  Owned->FailStores = true;
  RemoteCacheTier Tier(std::move(Owned), fastOpts());
  Tier.store(A.Key, A.Text); // Must not throw, block, or crash.
  RemoteCacheTier::Stats S = Tier.stats();
  EXPECT_EQ(S.Stores, 0u);
  EXPECT_EQ(S.StoreFailures, 1u);
  EXPECT_EQ(S.TransportFailures, 1u);
}

//===----------------------------------------------------------------------===//
// The degradation ladder through CompilationCache
//===----------------------------------------------------------------------===//

TEST(RemoteLadderTest, RemoteHitShortCircuitsCompilation) {
  Artifact A = makeArtifact("ladder_hit");
  auto Owned = std::make_unique<MockBackend>();
  Owned->Entries[A.Key] = {true, A.Text, A.Digest};
  CompilationCache Cache(CacheMode::On);
  Cache.attachRemote(std::move(Owned), fastOpts());

  std::optional<PipelineResult> R = Cache.lookup(A.Key);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(functionToString(R->Final), functionToString(A.Result.Final));
  EXPECT_EQ(R->DynCycles, A.Result.DynCycles);
  CompilationCache::Stats S = Cache.stats();
  EXPECT_EQ(S.RemoteHits, 1u);
  EXPECT_EQ(S.Misses, 0u);
}

TEST(RemoteLadderTest, DeadRemoteFallsThroughToDiskThenMemory) {
  std::filesystem::path Dir = scratchDir("ladder_disk");
  Artifact A = makeArtifact("ladder_disk");
  {
    CompilationCache Seed(CacheMode::On, Dir.string());
    Seed.insert(A.Key, A.Result);
  }

  auto Owned = std::make_unique<MockBackend>();
  Owned->FailLookups = true;
  CompilationCache Cache(CacheMode::On, Dir.string());
  Cache.attachRemote(std::move(Owned), fastOpts());

  // First lookup: the remote rung fails, the disk rung serves.
  ASSERT_TRUE(Cache.lookup(A.Key).has_value());
  // Second lookup: remote fails again, the promoted memory copy serves.
  ASSERT_TRUE(Cache.lookup(A.Key).has_value());
  CompilationCache::Stats S = Cache.stats();
  EXPECT_EQ(S.DiskHits, 1u);
  EXPECT_EQ(S.MemoryHits, 1u);
  EXPECT_EQ(S.RemoteHits, 0u);
  EXPECT_EQ(S.Misses, 0u);
  EXPECT_EQ(Cache.remote()->stats().TransportFailures, 2u);
  std::filesystem::remove_all(Dir);
}

TEST(RemoteLadderTest, DeadRemoteWithNothingLocalIsJustAMiss) {
  Artifact A = makeArtifact("ladder_miss");
  auto Owned = std::make_unique<MockBackend>();
  MockBackend *Mock = Owned.get();
  Mock->FailLookups = true;
  Mock->FailStores = true;
  CompilationCache Cache(CacheMode::On);
  Cache.attachRemote(std::move(Owned), fastOpts());

  EXPECT_FALSE(Cache.lookup(A.Key).has_value());
  EXPECT_EQ(Cache.stats().Misses, 1u);

  // The insert still lands locally even though the remote store drowns,
  // and the memory tier serves once the dead remote is consulted.
  Cache.insert(A.Key, A.Result);
  EXPECT_EQ(Mock->StoreCalls.load(), 1u);
  ASSERT_TRUE(Cache.lookup(A.Key).has_value());
  EXPECT_EQ(Cache.stats().MemoryHits, 1u);
  EXPECT_EQ(Cache.remote()->stats().StoreFailures, 1u);
}

TEST(RemoteLadderTest, InsertPublishesTheExactBytesAndDigest) {
  Artifact A = makeArtifact("ladder_pub");
  auto Owned = std::make_unique<MockBackend>();
  MockBackend *Mock = Owned.get();
  CompilationCache Cache(CacheMode::On); // Memory-only locally.
  Cache.attachRemote(std::move(Owned), fastOpts());

  Cache.insert(A.Key, A.Result);
  ASSERT_EQ(Mock->Entries.count(A.Key), 1u);
  EXPECT_EQ(Mock->Entries[A.Key].EntryText, A.Text);
  EXPECT_EQ(Mock->Entries[A.Key].Digest, A.Digest);
  EXPECT_EQ(Cache.remote()->stats().Stores, 1u);
}

namespace {

/// The batch stats report with the legitimately-varying sections
/// neutralized — what the CI chaos shard compares across daemon
/// health states.
std::string reportFingerprint(const std::vector<BatchItem> &Batch,
                              const MachineModel &M, BatchOptions Opts) {
  telemetry::reset();
  BatchResult BR = compileBatch(Batch, M, Opts);
  json::Value Report = makeBatchStatsReport(
      BR, Batch, strategyName(Opts.Strategy), M, {}, Opts.Cache);
  Report.set("timers", json::Value::array());
  Report.set("counters", json::Value::object());
  Report.set("histograms", json::Value::object());
  Report.set("cache", json::Value::object());
  return Report.toString();
}

std::vector<BatchItem> namedBatch(const std::string &Tag, unsigned N) {
  std::vector<BatchItem> Batch;
  for (unsigned I = 0; I != N; ++I)
    Batch.push_back({Tag + std::to_string(I) + ".pir",
                     smallFunction(Tag + std::to_string(I))});
  return Batch;
}

} // namespace

TEST(RemoteLadderTest, WarmRemoteBatchIsByteIdenticalToTheLocalRun) {
  std::vector<BatchItem> Batch = namedBatch("ident", 4);
  MachineModel M = MachineModel::rs6000();

  // Baseline: caching off. (The report carries a "cache" block whenever
  // a cache object exists; Off keeps the shape identical while the
  // fingerprint blanks the block's volatile contents anyway.)
  CompilationCache Off(CacheMode::Off);
  BatchOptions Plain;
  Plain.Jobs = 1;
  Plain.Cache = &Off;
  std::string Baseline = reportFingerprint(Batch, M, Plain);

  // Cold run against an empty remote fills it through insert().
  auto ColdOwned = std::make_unique<MockBackend>();
  MockBackend *ColdMock = ColdOwned.get();
  CompilationCache Cold(CacheMode::On);
  Cold.attachRemote(std::move(ColdOwned), fastOpts());
  BatchOptions ColdOpts;
  ColdOpts.Jobs = 1;
  ColdOpts.Cache = &Cold;
  EXPECT_EQ(reportFingerprint(Batch, M, ColdOpts), Baseline);
  ASSERT_EQ(ColdMock->Entries.size(), 4u);
  std::map<std::string, RemoteCacheHit> Published = ColdMock->Entries;

  // Warm runs served entirely by the remote tier, at every job count,
  // byte-compare clean against the no-cache baseline.
  for (unsigned Jobs : {1u, 2u, 8u}) {
    auto Owned = std::make_unique<MockBackend>();
    Owned->Entries = Published;
    CompilationCache Warm(CacheMode::On);
    Warm.attachRemote(std::move(Owned), fastOpts());
    BatchOptions WarmOpts;
    WarmOpts.Jobs = Jobs;
    WarmOpts.Cache = &Warm;
    EXPECT_EQ(reportFingerprint(Batch, M, WarmOpts), Baseline)
        << "jobs=" << Jobs;
    CompilationCache::Stats S = Warm.stats();
    EXPECT_EQ(S.RemoteHits, 4u) << "jobs=" << Jobs;
    EXPECT_EQ(S.Misses, 0u) << "jobs=" << Jobs;
  }
  telemetry::reset();
}

//===----------------------------------------------------------------------===//
// Verify mode across the remote tier
//===----------------------------------------------------------------------===//

TEST(RemoteVerifyTest, ForgedButDigestValidEntryIsCaughtByVerifyMode) {
  // A malicious daemon that recomputes the digest over forged bytes
  // passes every integrity check — byte-identity verification against
  // a recompile is the only oracle left, and it must fire.
  Artifact A = makeArtifact("forge");
  json::Value Forged = A.Entry;
  const json::Value *Pipeline = Forged.find("pipeline");
  ASSERT_NE(Pipeline, nullptr);
  json::Value P = *Pipeline;
  ASSERT_TRUE(P.has("dyn_cycles"));
  P.set("dyn_cycles", P.find("dyn_cycles")->asInt() + 1);
  Forged.set("pipeline", P);
  std::string ForgedText = Forged.toString(-1);

  auto Owned = std::make_unique<MockBackend>();
  Owned->Entries[A.Key] = {true, ForgedText,
                           hash::Sha256::hashHex(ForgedText)};
  CompilationCache Verify(CacheMode::Verify);
  Verify.attachRemote(std::move(Owned), fastOpts());

  std::vector<BatchItem> Batch;
  Batch.push_back({"a.pir", smallFunction("forge")});
  BatchOptions Opts;
  Opts.Jobs = 1;
  Opts.Cache = &Verify;
  BatchResult BR = compileBatch(Batch, MachineModel::rs6000(), Opts);
  ASSERT_EQ(BR.Succeeded, 1u);
  CompilationCache::Stats S = Verify.stats();
  EXPECT_EQ(S.RemoteHits, 1u);
  EXPECT_EQ(S.VerifyMismatches, 1u);
  EXPECT_EQ(Verify.remote()->stats().Quarantined, 0u);
  // The fresh compile wins; the forged cycle count never surfaces.
  EXPECT_EQ(BR.Results[0].DynCycles, A.Result.DynCycles);
}

TEST(RemoteVerifyTest, TamperedEntryIsQuarantinedBeforeVerifyEverSeesIt) {
  // Tampered bytes under the *original* digest die in the integrity
  // gauntlet: quarantined, recompiled, and no verify mismatch — the
  // report stays clean because the entry was never used.
  Artifact A = makeArtifact("tamper");
  std::string Tampered = A.Text;
  size_t Pos = Tampered.rfind("dyn_cycles");
  ASSERT_NE(Pos, std::string::npos);
  Tampered[Tampered.find_first_of("0123456789", Pos)] ^= 1;

  auto Owned = std::make_unique<MockBackend>();
  MockBackend *Mock = Owned.get();
  Mock->Entries[A.Key] = {true, Tampered, A.Digest};
  CompilationCache Verify(CacheMode::Verify);
  Verify.attachRemote(std::move(Owned), fastOpts());

  std::vector<BatchItem> Batch;
  Batch.push_back({"a.pir", smallFunction("tamper")});
  BatchOptions Opts;
  Opts.Jobs = 1;
  Opts.Cache = &Verify;
  BatchResult BR = compileBatch(Batch, MachineModel::rs6000(), Opts);
  ASSERT_EQ(BR.Succeeded, 1u);
  CompilationCache::Stats S = Verify.stats();
  EXPECT_EQ(Verify.remote()->stats().Quarantined, 1u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.VerifyMismatches, 0u);
  EXPECT_EQ(S.RemoteHits, 0u);
  // The recompile re-published a good entry over the tampered one.
  EXPECT_EQ(S.Inserts, 1u);
  EXPECT_EQ(Mock->Entries[A.Key].EntryText, A.Text);
}

//===----------------------------------------------------------------------===//
// Disk-tier trimming (--cache-max-mb)
//===----------------------------------------------------------------------===//

namespace {

void writeFile(const std::filesystem::path &P, size_t Bytes) {
  std::ofstream(P) << std::string(Bytes, 'x');
}

} // namespace

TEST(CacheTrimTest, OldestEntriesGoFirst) {
  std::filesystem::path Dir = scratchDir("trim_oldest");
  std::filesystem::create_directories(Dir);
  // Three settled entries from "previous runs", oldest first; the mtime
  // spacing makes the eviction order unambiguous.
  writeFile(Dir / "aa.json", 40000);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  writeFile(Dir / "bb.json", 40000);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  writeFile(Dir / "cc.json", 40000);

  CompilationCache Cache(CacheMode::On, Dir.string());
  Cache.setDiskLimitBytes(100000);
  Artifact A = makeArtifact("trim_oldest");
  Cache.insert(A.Key, A.Result);

  // One eviction suffices, and it takes the oldest file.
  EXPECT_FALSE(std::filesystem::exists(Dir / "aa.json"));
  EXPECT_TRUE(std::filesystem::exists(Dir / "bb.json"));
  EXPECT_TRUE(std::filesystem::exists(Dir / "cc.json"));
  EXPECT_TRUE(std::filesystem::exists(Dir / (A.Key + ".json")));
  EXPECT_EQ(Cache.stats().TrimmedEntries, 1u);
  std::filesystem::remove_all(Dir);
}

TEST(CacheTrimTest, OwnEntriesAndTempFilesAreNeverEvicted) {
  std::filesystem::path Dir = scratchDir("trim_own");
  std::filesystem::create_directories(Dir);
  writeFile(Dir / "old.json", 100);            // Evictable.
  writeFile(Dir / "x.json.tmp.3.17", 100);     // In-flight: untouchable.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  CompilationCache Cache(CacheMode::On, Dir.string());
  Cache.setDiskLimitBytes(1); // Impossible bound: evict all it may.
  Artifact A = makeArtifact("trim_own");
  Cache.insert(A.Key, A.Result);

  // The stranger was evicted; this instance's own entry and the temp
  // file survived even though the directory still exceeds the bound.
  EXPECT_FALSE(std::filesystem::exists(Dir / "old.json"));
  EXPECT_TRUE(std::filesystem::exists(Dir / "x.json.tmp.3.17"));
  EXPECT_TRUE(std::filesystem::exists(Dir / (A.Key + ".json")));
  EXPECT_EQ(Cache.stats().TrimmedEntries, 1u);

  // The entry it refused to evict still serves.
  CompilationCache Fresh(CacheMode::On, Dir.string());
  EXPECT_TRUE(Fresh.lookup(A.Key).has_value());
  std::filesystem::remove_all(Dir);
}

TEST(CacheTrimTest, AFreshInstanceMayEvictAPredecessorsEntries) {
  std::filesystem::path Dir = scratchDir("trim_fresh");
  Artifact Old = makeArtifact("trim_old");
  Artifact New = makeArtifact("trim_new");
  {
    CompilationCache First(CacheMode::On, Dir.string());
    First.insert(Old.Key, Old.Result);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // The next process run is not bound by the first one's written-keys
  // protection — exactly how a shared directory shrinks over time.
  CompilationCache Second(CacheMode::On, Dir.string());
  Second.setDiskLimitBytes(1);
  Second.insert(New.Key, New.Result);
  EXPECT_FALSE(std::filesystem::exists(Dir / (Old.Key + ".json")));
  EXPECT_TRUE(std::filesystem::exists(Dir / (New.Key + ".json")));
  EXPECT_EQ(Second.stats().TrimmedEntries, 1u);
  std::filesystem::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Deterministic reconnect jitter (service/Client.h)
//===----------------------------------------------------------------------===//

TEST(ClientBackoffTest, AttemptZeroNeverWaits) {
  ClientOptions O;
  EXPECT_EQ(retryBackoffMs(O, 0), 0u);
}

TEST(ClientBackoffTest, BackoffDoublesStaysJitteredAndCaps) {
  ClientOptions O;
  O.RetryBackoffMs = 64;
  O.BackoffCapMs = 256;
  O.JitterSeed = 7;
  for (unsigned Attempt = 1; Attempt != 7; ++Attempt) {
    uint64_t Base = std::min<uint64_t>(uint64_t(64) << (Attempt - 1), 256);
    uint64_t V = retryBackoffMs(O, Attempt);
    EXPECT_GE(V, Base / 2) << "attempt " << Attempt;
    EXPECT_LE(V, Base) << "attempt " << Attempt;
    // Deterministic: the same client replays the same timing.
    EXPECT_EQ(V, retryBackoffMs(O, Attempt)) << "attempt " << Attempt;
  }
}

TEST(ClientBackoffTest, DifferentSeedsDecorrelateClients) {
  // N clients orphaned by one daemon death must not reconnect in
  // lockstep; per-client seeds spread the retry storm.
  ClientOptions A, B;
  A.RetryBackoffMs = B.RetryBackoffMs = 64;
  A.BackoffCapMs = B.BackoffCapMs = 4096;
  A.JitterSeed = 1;
  B.JitterSeed = 2;
  bool AnyDiffer = false;
  for (unsigned Attempt = 1; Attempt != 8 && !AnyDiffer; ++Attempt)
    AnyDiffer = retryBackoffMs(A, Attempt) != retryBackoffMs(B, Attempt);
  EXPECT_TRUE(AnyDiffer);
}

//===----------------------------------------------------------------------===//
// The net.* fault sites inside the framing layer
//===----------------------------------------------------------------------===//

namespace {

/// A connected socketpair for exercising the framing helpers against a
/// peer the test controls byte-by-byte.
struct Pair {
  int A = -1, B = -1;
  Pair() {
    int Fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
    A = Fds[0];
    B = Fds[1];
  }
  ~Pair() {
    if (A >= 0)
      ::close(A);
    if (B >= 0)
      ::close(B);
  }
};

/// Fault tests disarm the harness on the way out so armed sites never
/// leak into the rest of the binary.
class NetFaultTest : public testing::Test {
protected:
  void TearDown() override { faultinject::reset(); }

  static void arm(const std::string &Spec) {
    std::string Error;
    ASSERT_TRUE(faultinject::configure(Spec, Error)) << Error;
  }
};

} // namespace

TEST_F(NetFaultTest, EveryNetworkSiteIsRegistered) {
  const std::vector<const char *> &Sites = faultinject::knownSites();
  for (const char *Want :
       {"net.write.short", "net.frame.torn", "net.read.stall", "net.reset",
        "net.payload.corrupt"}) {
    bool Found = false;
    for (const char *S : Sites)
      Found = Found || std::strcmp(S, Want) == 0;
    EXPECT_TRUE(Found) << Want;
  }
}

TEST_F(NetFaultTest, ReadStallBecomesATimeout) {
  Pair P;
  ASSERT_TRUE(writeFrame(P.B, "{\"x\": 1}"));
  arm("net.read.stall:1");
  std::string Out;
  EXPECT_EQ(readFrame(P.A, Out, DefaultMaxFrameBytes, 50),
            FrameStatus::Timeout);
}

TEST_F(NetFaultTest, ConnectionResetBecomesAnError) {
  Pair P;
  ASSERT_TRUE(writeFrame(P.B, "{\"x\": 1}"));
  arm("net.reset:1");
  std::string Out;
  EXPECT_EQ(readFrame(P.A, Out, DefaultMaxFrameBytes, 1000),
            FrameStatus::Error);
}

TEST_F(NetFaultTest, TornFrameBecomesAnErrorAfterTheBytesArrived) {
  Pair P;
  ASSERT_TRUE(writeFrame(P.B, "{\"x\": 1}"));
  arm("net.frame.torn:1");
  std::string Out;
  EXPECT_EQ(readFrame(P.A, Out, DefaultMaxFrameBytes, 1000),
            FrameStatus::Error);
}

TEST_F(NetFaultTest, PayloadCorruptionIsInvisibleToTheFramingLayer) {
  Pair P;
  const std::string Payload = "{\"seq\": 41}";
  ASSERT_TRUE(writeFrame(P.B, Payload));
  arm("net.payload.corrupt:1");
  std::string Out;
  ASSERT_EQ(readFrame(P.A, Out, DefaultMaxFrameBytes, 1000),
            FrameStatus::Ok);
  // The frame reads clean — same length, still parsable JSON — but the
  // last digit was mutated. Only an end-to-end digest can catch this.
  EXPECT_EQ(Out, "{\"seq\": 42}");
  EXPECT_NE(Out, Payload);
}

TEST_F(NetFaultTest, ShortWriteFailsTheSendAndLeavesATornFrameBehind) {
  Pair P;
  arm("net.write.short:1");
  EXPECT_FALSE(writeFrame(P.B, "{\"seq\": 99}"));
  faultinject::reset();
  // The peer sees a header promising more bytes than ever arrive; once
  // the writer hangs up that is a torn frame, not a clean EOF.
  ::close(P.B);
  P.B = -1;
  std::string Out;
  EXPECT_EQ(readFrame(P.A, Out, DefaultMaxFrameBytes, 1000),
            FrameStatus::Error);
}

TEST_F(NetFaultTest, CorruptedRemoteEntryIsQuarantinedEndToEnd) {
  // The full consumer path under in-flight corruption: the tier fetches
  // through a backend whose payload was mutated on the wire, the digest
  // cross-check catches it, and the lookup degrades to a miss.
  Artifact A = makeArtifact("wire_corrupt");
  std::string Mutated = A.Text;
  size_t Digit = Mutated.find_last_of("0123456789");
  ASSERT_NE(Digit, std::string::npos);
  Mutated[Digit] = Mutated[Digit] == '9' ? '0' : Mutated[Digit] + 1;

  auto Owned = std::make_unique<MockBackend>();
  Owned->Entries[A.Key] = {true, Mutated, A.Digest};
  RemoteCacheTier Tier(std::move(Owned), fastOpts());
  EXPECT_EQ(Tier.lookup(A.Key), nullptr);
  EXPECT_EQ(Tier.stats().Quarantined, 1u);
}

//===----------------------------------------------------------------------===//
// End-to-end against a real --cache-serve daemon
//===----------------------------------------------------------------------===//

namespace {

/// A raw loopback connection for tests that speak the cache protocol
/// frame-by-frame (including deliberately broken requests).
int rawConnect(uint16_t Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(Fd, 0);
  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)),
            0)
      << std::strerror(errno);
  return Fd;
}

json::Value readResponse(int Fd, int TimeoutMs = 30000) {
  std::string Payload;
  FrameStatus S = readFrame(Fd, Payload, DefaultMaxFrameBytes, TimeoutMs);
  EXPECT_EQ(S, FrameStatus::Ok) << frameStatusName(S);
  json::Value Doc;
  std::string Error;
  EXPECT_TRUE(json::parse(Payload, Doc, Error)) << Error;
  return Doc;
}

std::string responseOp(const json::Value &Doc) {
  const json::Value *Op = Doc.find("op");
  return Op != nullptr && Op->isString() ? Op->asString() : "";
}

json::Value lookupRequest(uint64_t Id, const std::string &Key) {
  json::Value R = cacheRequestEnvelope(Id, "lookup");
  R.set("key", Key);
  return R;
}

json::Value storeRequest(uint64_t Id, const std::string &Key,
                         const std::string &Text,
                         const std::string &Digest) {
  json::Value R = cacheRequestEnvelope(Id, "store");
  R.set("key", Key);
  R.set("entry", Text);
  R.set("sha256", Digest);
  return R;
}

/// Runs real Servers on background threads and owns their shutdown.
class RemoteServeTest : public testing::Test {
protected:
  struct Daemon {
    std::unique_ptr<Server> Srv;
    std::thread Runner;
    int Exit = -1;
  };

  void TearDown() override {
    for (std::unique_ptr<Daemon> &D : Daemons)
      if (D->Runner.joinable()) {
        D->Srv->requestAbort();
        D->Runner.join();
      }
    Daemons.clear();
  }

  Server &start(ServerOptions O) {
    Daemons.push_back(std::make_unique<Daemon>());
    Daemon *D = Daemons.back().get();
    D->Srv = std::make_unique<Server>(std::move(O));
    Status S = D->Srv->bind();
    EXPECT_TRUE(S.ok()) << S.toString();
    D->Runner = std::thread([D] { D->Exit = D->Srv->run(); });
    return *D->Srv;
  }

  static ServerOptions cacheServeOptions() {
    ServerOptions O;
    O.TcpPort = 0;
    O.Threads = 2;
    O.CacheServe = true;
    return O;
  }

  std::vector<std::unique_ptr<Daemon>> Daemons;
};

} // namespace

TEST_F(RemoteServeTest, ColdBatchPublishesAndAFreshClientHitsRemotely) {
  Server &Srv = start(cacheServeOptions());
  std::vector<BatchItem> Batch = namedBatch("e2e", 3);
  MachineModel M = MachineModel::rs6000();

  // Cold run: misses everywhere, compiles, publishes to the daemon.
  CompilationCache Cold(CacheMode::On);
  Cold.attachRemote(
      std::make_unique<SocketCacheBackend>("", Srv.tcpPort()));
  BatchOptions ColdOpts;
  ColdOpts.Jobs = 1;
  ColdOpts.Cache = &Cold;
  BatchResult First = compileBatch(Batch, M, ColdOpts);
  ASSERT_EQ(First.Succeeded, 3u);
  EXPECT_EQ(Cold.stats().Misses, 3u);
  EXPECT_EQ(Cold.remote()->stats().Stores, 3u);

  // A brand-new client process (fresh cache, fresh connection) is
  // served entirely from the daemon.
  CompilationCache Warm(CacheMode::On);
  Warm.attachRemote(
      std::make_unique<SocketCacheBackend>("", Srv.tcpPort()));
  BatchOptions WarmOpts;
  WarmOpts.Jobs = 1;
  WarmOpts.Cache = &Warm;
  BatchResult Second = compileBatch(Batch, M, WarmOpts);
  ASSERT_EQ(Second.Succeeded, 3u);
  CompilationCache::Stats S = Warm.stats();
  EXPECT_EQ(S.RemoteHits, 3u);
  EXPECT_EQ(S.Misses, 0u);
  EXPECT_EQ(Warm.remote()->stats().Quarantined, 0u);
  for (size_t I = 0; I != 3; ++I)
    EXPECT_EQ(functionToString(Second.Results[I].Final),
              functionToString(First.Results[I].Final));

  // The daemon's serve-stats surface saw all of it.
  ClientOptions CO;
  CO.TcpPort = Srv.tcpPort();
  ServiceClient C(CO);
  Expected<json::Value> Stats = C.stats();
  ASSERT_TRUE(bool(Stats)) << Stats.status().toString();
  const json::Value *RC = Stats->find("remote_cache");
  ASSERT_NE(RC, nullptr);
  EXPECT_TRUE(RC->find("serving")->asBool());
  EXPECT_GE(RC->find("lookups")->asInt(), 6);
  EXPECT_GE(RC->find("hits")->asInt(), 3);
  EXPECT_GE(RC->find("stores")->asInt(), 3);
}

TEST_F(RemoteServeTest, NonServingDaemonDegradesToALocalCompile) {
  ServerOptions O = cacheServeOptions();
  O.CacheServe = false; // A plain compile daemon refuses cache frames.
  Server &Srv = start(O);

  CompilationCache Cache(CacheMode::On);
  Cache.attachRemote(
      std::make_unique<SocketCacheBackend>("", Srv.tcpPort()), fastOpts());
  std::vector<BatchItem> Batch = namedBatch("refused", 1);
  BatchOptions Opts;
  Opts.Jobs = 1;
  Opts.Cache = &Cache;
  BatchResult BR = compileBatch(Batch, MachineModel::rs6000(), Opts);
  ASSERT_EQ(BR.Succeeded, 1u); // The refusal cost nothing but latency.
  EXPECT_EQ(Cache.stats().Misses, 1u);
  EXPECT_GE(Cache.remote()->stats().TransportFailures, 1u);
  EXPECT_EQ(Cache.remote()->stats().Hits, 0u);
}

TEST_F(RemoteServeTest, DeadDaemonNeverBlocksTheBatch) {
  // A port with nothing behind it: connects are refused instantly.
  uint16_t DeadPort = 0;
  {
    Expected<Listener> L = Listener::listenTcp(0);
    ASSERT_TRUE(bool(L)) << L.status().toString();
    DeadPort = L->port();
  }

  CompilationCache Cache(CacheMode::On);
  Cache.attachRemote(std::make_unique<SocketCacheBackend>("", DeadPort),
                     fastOpts());
  std::vector<BatchItem> Batch = namedBatch("dead", 2);
  BatchOptions Opts;
  Opts.Jobs = 1;
  Opts.Cache = &Cache;
  BatchResult BR = compileBatch(Batch, MachineModel::rs6000(), Opts);
  ASSERT_EQ(BR.Succeeded, 2u);
  EXPECT_EQ(Cache.stats().Misses, 2u);
  EXPECT_GE(Cache.remote()->stats().TransportFailures, 1u);
}

TEST_F(RemoteServeTest, StoreValidationRejectsEveryFlavorOfPoison) {
  Server &Srv = start(cacheServeOptions());
  int Fd = rawConnect(Srv.tcpPort());
  Artifact A = makeArtifact("poison");
  Artifact B = makeArtifact("poison_other");

  // Unknown key: a clean miss, not an error.
  ASSERT_TRUE(writeFrameDoc(Fd, lookupRequest(1, A.Key)));
  json::Value Miss = readResponse(Fd);
  EXPECT_EQ(responseOp(Miss), "lookup");
  EXPECT_FALSE(Miss.find("hit")->asBool());

  // Digest that does not cover the bytes.
  ASSERT_TRUE(writeFrameDoc(Fd, storeRequest(2, A.Key, A.Text, B.Digest)));
  EXPECT_EQ(responseOp(readResponse(Fd)), "error");

  // A valid entry filed under someone else's key.
  ASSERT_TRUE(writeFrameDoc(Fd, storeRequest(3, B.Key, A.Text, A.Digest)));
  EXPECT_EQ(responseOp(readResponse(Fd)), "error");

  // Bytes that are not an entry at all (digest honest, content not).
  ASSERT_TRUE(writeFrameDoc(
      Fd, storeRequest(4, A.Key, "not an entry",
                       hash::Sha256::hashHex("not an entry"))));
  EXPECT_EQ(responseOp(readResponse(Fd)), "error");

  // A request with no key.
  ASSERT_TRUE(writeFrameDoc(Fd, cacheRequestEnvelope(5, "lookup")));
  EXPECT_EQ(responseOp(readResponse(Fd)), "error");

  // An op the protocol does not know.
  json::Value Zap = cacheRequestEnvelope(7, "zap");
  Zap.set("key", A.Key);
  ASSERT_TRUE(writeFrameDoc(Fd, Zap));
  EXPECT_EQ(responseOp(readResponse(Fd)), "error");

  // After all that hostility, the honest store still lands…
  ASSERT_TRUE(writeFrameDoc(Fd, storeRequest(8, A.Key, A.Text, A.Digest)));
  json::Value Stored = readResponse(Fd);
  EXPECT_EQ(responseOp(Stored), "store");
  EXPECT_TRUE(Stored.find("stored")->asBool());

  // …and the same bytes come back, digest re-attested server-side.
  ASSERT_TRUE(writeFrameDoc(Fd, lookupRequest(9, A.Key)));
  json::Value Hit = readResponse(Fd);
  EXPECT_EQ(responseOp(Hit), "lookup");
  ASSERT_TRUE(Hit.find("hit")->asBool());
  EXPECT_EQ(Hit.find("entry")->asString(), A.Text);
  EXPECT_EQ(Hit.find("sha256")->asString(), A.Digest);
  ::close(Fd);
}

TEST_F(RemoteServeTest, CacheFramesAgainstANonServingDaemonAreRefused) {
  ServerOptions O = cacheServeOptions();
  O.CacheServe = false;
  Server &Srv = start(O);
  int Fd = rawConnect(Srv.tcpPort());
  ASSERT_TRUE(writeFrameDoc(Fd, lookupRequest(1, "abc")));
  json::Value Err = readResponse(Fd);
  EXPECT_EQ(responseOp(Err), "error");
  EXPECT_NE(Err.find("message")->asString().find("--cache-serve"),
            std::string::npos);

  // The refusal is per-frame: the same connection still compiles.
  json::Value Req = requestEnvelope(2, "health");
  ASSERT_TRUE(writeFrameDoc(Fd, Req));
  json::Value H = readResponse(Fd);
  EXPECT_EQ(H.find("type")->asString(), "health");
  ::close(Fd);
}

TEST_F(RemoteServeTest, DaemonsChainMissesToAnUpstreamDaemon) {
  // Edge daemon → upstream daemon: a store published to the upstream is
  // visible through the edge, which consults its own remote tier on a
  // local miss — the same ladder, one level up.
  Server &Up = start(cacheServeOptions());
  ServerOptions EdgeO = cacheServeOptions();
  EdgeO.CacheRemote = std::to_string(Up.tcpPort());
  Server &Edge = start(EdgeO);

  Artifact A = makeArtifact("chain");
  RemoteCacheTier UpTier(
      std::make_unique<SocketCacheBackend>("", Up.tcpPort()),
      RemoteCacheOptions{});
  UpTier.store(A.Key, A.Text);
  ASSERT_EQ(UpTier.stats().Stores, 1u);

  RemoteCacheTier EdgeTier(
      std::make_unique<SocketCacheBackend>("", Edge.tcpPort()),
      RemoteCacheOptions{});
  std::string Text;
  std::shared_ptr<const json::Value> E = EdgeTier.lookup(A.Key, &Text);
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(Text, A.Text);
  EXPECT_EQ(EdgeTier.stats().Hits, 1u);
  EXPECT_EQ(EdgeTier.stats().Quarantined, 0u);
}
