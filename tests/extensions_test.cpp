//===- tests/extensions_test.cpp - Extensions beyond the green path -------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
// Covers the Goodman-Hsu integrated prepass scheduler, the augmented
// parallelizable interference graph, the extended kernel suite, parser
// fuzzing via generated programs, and cross-analysis consistency
// invariants.
//
//===----------------------------------------------------------------------===//

#include "analysis/DependenceGraph.h"
#include "analysis/Liveness.h"
#include "analysis/Webs.h"
#include "core/AugmentedPig.h"
#include "core/FalseDependenceGraph.h"
#include "core/PinterAllocator.h"
#include "core/PigScheduler.h"
#include "core/RegionHoist.h"
#include "ir/IRBuilder.h"
#include "ir/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "machine/MachineConfig.h"
#include "machine/MachineModel.h"
#include "pipeline/Strategies.h"
#include "regalloc/ChaitinAllocator.h"
#include "regalloc/InterferenceGraph.h"
#include "sched/EPTimes.h"
#include "sched/IntegratedPrepass.h"
#include "sched/ListScheduler.h"
#include "support/UndirectedGraph.h"
#include "workloads/Kernels.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

using namespace pira;

//===----------------------------------------------------------------------===//
// Goodman-Hsu integrated prepass scheduler
//===----------------------------------------------------------------------===//

TEST(IpsTest, PreservesSemanticsOnAllKernels) {
  for (auto &[Name, Kernel] : standardKernelSuite()) {
    Function F = Kernel;
    integratedPrepassSchedule(F, MachineModel::rs6000(6), 6);
    std::string Err;
    ASSERT_TRUE(verifyFunction(F, Err)) << Name << ": " << Err;
    ExecResult RA = interpret(Kernel, makeInitialState(Kernel, 8));
    ExecResult RB = interpret(F, makeInitialState(F, 8));
    ASSERT_TRUE(RA.Completed) << Name;
    ASSERT_TRUE(RB.Completed) << Name << ": " << RB.Error;
    EXPECT_TRUE(statesEquivalent(RA.Final, RB.Final)) << Name;
    if (RA.HasReturnValue) {
      EXPECT_EQ(RA.ReturnValue, RB.ReturnValue) << Name;
    }
  }
}

TEST(IpsTest, SwitchesToPressureModeWhenTight) {
  // matmul3x3 holds 18 loaded values: with a limit of 4 the scheduler
  // must spend decisions in CSR (register-reducing) mode.
  Function F = matmul3x3();
  IpsStats S = integratedPrepassSchedule(F, MachineModel::rs6000(4), 4);
  EXPECT_GT(S.CsrDecisions, 0u);
  EXPECT_GT(S.CspDecisions, 0u);
}

TEST(IpsTest, StaysInPipelineModeWhenRelaxed) {
  Function F = paperExample2();
  IpsStats S = integratedPrepassSchedule(F, MachineModel::rs6000(64), 64);
  EXPECT_EQ(S.CsrDecisions, 0u);
}

TEST(IpsTest, ReducesPressureVersusSchedFirstOnMatmul) {
  // The point of IPS: fewer spills than pressure-oblivious prepass
  // scheduling under the same budget.
  MachineModel M = MachineModel::rs6000(5);
  PipelineResult Ips =
      runStrategy(StrategyKind::IntegratedPrepass, matmul3x3(), M);
  PipelineResult Sf =
      runStrategy(StrategyKind::SchedFirst, matmul3x3(), M);
  ASSERT_TRUE(Ips.Success);
  ASSERT_TRUE(Sf.Success);
  EXPECT_LE(Ips.SpilledWebs, Sf.SpilledWebs);
}

TEST(IpsTest, StrategyRunsEndToEnd) {
  MachineModel M = MachineModel::vliw4(6);
  for (auto &[Name, Kernel] : standardKernelSuite()) {
    PipelineResult R =
        runAndMeasure(StrategyKind::IntegratedPrepass, Kernel, M);
    ASSERT_TRUE(R.Success) << Name << ": " << R.Error;
    EXPECT_TRUE(R.SemanticsPreserved) << Name;
  }
}

TEST(IpsTest, NameIsStable) {
  EXPECT_STREQ(strategyName(StrategyKind::IntegratedPrepass),
               "goodman-hsu-ips");
}

//===----------------------------------------------------------------------===//
// Augmented parallelizable interference graph
//===----------------------------------------------------------------------===//

TEST(AugmentedPigTest, CoversAllInstructionsIncludingStores) {
  Function F = saxpy(1);
  Webs W(F);
  AugmentedPig APig(F, 1, W, MachineModel::paperTwoUnit());
  EXPECT_EQ(APig.size(), F.block(1).size());
}

TEST(AugmentedPigTest, CoIssueEdgesMatchFalseDependenceGraph) {
  Function F = paperExample2();
  Webs W(F);
  MachineModel M = MachineModel::paperTwoUnit();
  AugmentedPig APig(F, 0, W, M);
  FalseDependenceGraph FDG(F, 0, M);
  EXPECT_EQ(APig.coIssuePairs().edgeList(),
            FDG.parallelPairs().edgeList());
}

TEST(AugmentedPigTest, AvailableListsMatchPaperText) {
  // "at each node v the edges {v,u} provide the list of available
  // instructions (with v)": for s8 of Example 2 that list is s1..s5.
  Function F = paperExample2();
  Webs W(F);
  AugmentedPig APig(F, 0, W, MachineModel::paperTwoUnit());
  std::vector<unsigned> Avail = APig.availableWith(7);
  EXPECT_EQ(Avail, (std::vector<unsigned>{0, 1, 2, 3, 4}));
}

TEST(AugmentedPigTest, OverlapEdgesProjectInterference) {
  Function F = paperExample2();
  Webs W(F);
  AugmentedPig APig(F, 0, W, MachineModel::paperTwoUnit());
  InterferenceGraph IG(F, W);
  for (const auto &[I, J] : APig.overlapPairs().edgeList())
    EXPECT_TRUE(IG.interfere(W.webOfDef(0, I), W.webOfDef(0, J)))
        << I << "," << J;
}

TEST(AugmentedPigTest, FullGraphIsUnion) {
  Function F = livermoreHydro(1);
  Webs W(F);
  AugmentedPig APig(F, 1, W, MachineModel::rs6000());
  for (const auto &[A, B] : APig.graph().edgeList())
    EXPECT_TRUE(APig.coIssuePairs().hasEdge(A, B) ||
                APig.overlapPairs().hasEdge(A, B));
}

//===----------------------------------------------------------------------===//
// Extended kernels
//===----------------------------------------------------------------------===//

TEST(ExtendedKernelsTest, AllVerifyAndTerminate) {
  for (auto &[Name, Kernel] : standardKernelSuite()) {
    std::string Err;
    EXPECT_TRUE(verifyFunction(Kernel, Err)) << Name << ": " << Err;
    ExecResult R = interpret(Kernel, makeInitialState(Kernel, 12));
    EXPECT_TRUE(R.Completed) << Name << ": " << R.Error;
  }
}

TEST(ExtendedKernelsTest, TridiagonalIsSerial) {
  // The recurrence forbids cross-iteration overlap: the loop block's
  // critical path should span nearly the whole block.
  Function F = tridiagonal();
  MachineModel M = MachineModel::rs6000(16);
  FunctionSchedule S = scheduleFunction(F, M);
  DependenceGraph G(F, 1, M);
  std::vector<unsigned> EP = computeEP(G);
  unsigned CP = 0;
  for (unsigned V = 0; V != G.size(); ++V)
    CP = std::max(CP, EP[V]);
  EXPECT_GE(S.Blocks[1].Makespan, CP + 1);
}

TEST(ExtendedKernelsTest, Matmul3HasHighPressure) {
  Function F = matmul3x3();
  Webs W(F);
  InterferenceGraph IG(F, W);
  EXPECT_GE(IG.maxLivePressure(), 12u);
}

TEST(ExtendedKernelsTest, TwoLoopsHasTwoRegions) {
  Function F = twoLoops();
  ExecResult R = interpret(F, makeInitialState(F, 3));
  ASSERT_TRUE(R.Completed);
  // Loop-carried values must stay correct across both loops: every
  // strategy agrees with the interpreter.
  MachineModel M = MachineModel::rs6000(6);
  PipelineResult P = runAndMeasure(StrategyKind::Combined, F, M);
  ASSERT_TRUE(P.Success) << P.Error;
  EXPECT_TRUE(P.SemanticsPreserved);
}

TEST(ExtendedKernelsTest, ConvolutionUsesFma) {
  Function F = convolve5(1);
  bool SawFma = false;
  for (const Instruction &I : F.block(1).instructions())
    SawFma |= I.opcode() == Opcode::FMA;
  EXPECT_TRUE(SawFma);
}

//===----------------------------------------------------------------------===//
// Parser fuzzing: round-trip every random program
//===----------------------------------------------------------------------===//

namespace {
class ParserFuzz : public testing::TestWithParam<unsigned> {};
} // namespace

TEST_P(ParserFuzz, PrintParseRoundTrip) {
  RandomProgramOptions Opts;
  Opts.Seed = GetParam() * 31337;
  Opts.Shape = static_cast<CfgShape>(GetParam() % 5);
  Opts.InstructionsPerBlock = 8 + GetParam() % 12;
  Function F = generateRandomProgram(Opts);
  std::string Text = functionToString(F);
  Function G;
  std::string Err;
  ASSERT_TRUE(parseFunction(Text, G, Err)) << Err;
  EXPECT_EQ(functionToString(G), Text);
  ExecResult RA = interpret(F, makeInitialState(F, 5));
  ExecResult RB = interpret(G, makeInitialState(G, 5));
  ASSERT_TRUE(RA.Completed);
  ASSERT_TRUE(RB.Completed);
  EXPECT_TRUE(statesEquivalent(RA.Final, RB.Final));
}

INSTANTIATE_TEST_SUITE_P(Fuzz, ParserFuzz, testing::Range(1u, 21u));

//===----------------------------------------------------------------------===//
// Cross-analysis consistency invariants
//===----------------------------------------------------------------------===//

namespace {
class ConsistencySweep : public testing::TestWithParam<unsigned> {};

Function consistencyProgram(unsigned Seed) {
  RandomProgramOptions Opts;
  Opts.Seed = Seed * 977;
  Opts.Shape = static_cast<CfgShape>(Seed % 5);
  Opts.InstructionsPerBlock = 12;
  return generateRandomProgram(Opts);
}
} // namespace

TEST_P(ConsistencySweep, WebLivenessAgreesWithRegisterLiveness) {
  // If a web is live-in at a block, its register must be live-in too
  // (web liveness refines register liveness).
  Function F = consistencyProgram(GetParam());
  Webs W(F);
  Liveness L(F);
  InterferenceGraph IG(F, W);
  for (unsigned B = 0; B != F.numBlocks(); ++B) {
    const BitVector &LiveW = IG.liveIn(B);
    for (int Web = LiveW.findFirst(); Web != -1;
         Web = LiveW.findNext(static_cast<unsigned>(Web)))
      EXPECT_TRUE(L.isLiveIn(B, W.webRegister(static_cast<unsigned>(Web))))
          << "block " << B << " web " << Web;
  }
}

TEST_P(ConsistencySweep, InterferingWebsNeverShareAColor) {
  // Direct validation of allocation correctness, independent of the
  // interpreter: after Chaitin coloring, adjacent webs differ.
  Function F = consistencyProgram(GetParam());
  Webs W(F);
  InterferenceGraph IG(F, W);
  std::vector<double> Costs(W.numWebs(), 1.0);
  Allocation A = chaitinColor(IG.graph(), Costs, 64);
  ASSERT_TRUE(A.fullyColored());
  for (const auto &[X, Y] : IG.graph().edgeList())
    EXPECT_NE(A.ColorOfWeb[X], A.ColorOfWeb[Y]);
}

TEST_P(ConsistencySweep, AmpleMachineMakespanEqualsCriticalPath) {
  // With unbounded resources the list scheduler must achieve the
  // latency-weighted critical path exactly.
  Function F = consistencyProgram(GetParam());
  MachineModel Wide("wide", {16, 16, 16, 16, 16}, /*IssueWidth=*/64, 64);
  for (unsigned B = 0; B != F.numBlocks(); ++B) {
    DependenceGraph G(F, B, Wide);
    std::vector<unsigned> EP = computeEP(G);
    unsigned CP = 0;
    for (unsigned V = 0; V != G.size(); ++V)
      CP = std::max(CP, EP[V]);
    BlockSchedule S = scheduleBlockFor(F, B, G, Wide);
    EXPECT_EQ(S.Makespan, CP + 1) << "block " << B;
  }
}

TEST_P(ConsistencySweep, EpIsPointwiseLowerBoundOnAnySchedule) {
  Function F = consistencyProgram(GetParam());
  MachineModel M = MachineModel::rs6000(64);
  for (unsigned B = 0; B != F.numBlocks(); ++B) {
    DependenceGraph G(F, B, M);
    std::vector<unsigned> EP = computeEP(G);
    BlockSchedule S = scheduleBlockFor(F, B, G, M);
    for (unsigned V = 0; V != G.size(); ++V)
      EXPECT_GE(S.CycleOf[V], EP[V]) << "block " << B << " inst " << V;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConsistencySweep, testing::Range(1u, 16u));

//===----------------------------------------------------------------------===//
// Briggs optimistic coloring
//===----------------------------------------------------------------------===//

TEST(BriggsTest, ColorsEvenCycleWithTwoRegsWhereChaitinSpills) {
  // The classic optimism win: C4 is bipartite (2-colorable) but every
  // vertex has degree 2, so pessimistic Chaitin finds no simplify
  // candidate at r=2 and spills; Briggs colors it cleanly.
  UndirectedGraph G(4);
  for (unsigned I = 0; I != 4; ++I)
    G.addEdge(I, (I + 1) % 4);
  std::vector<double> Costs(4, 1.0);
  Allocation Pessimistic = chaitinColor(G, Costs, 2);
  Allocation Optimistic = briggsColor(G, Costs, 2);
  EXPECT_FALSE(Pessimistic.fullyColored());
  ASSERT_TRUE(Optimistic.fullyColored());
  EXPECT_EQ(Optimistic.NumColorsUsed, 2u);
}

TEST(BriggsTest, ColoringIsProperAndCapped) {
  UndirectedGraph G(6);
  for (unsigned I = 0; I != 6; ++I)
    for (unsigned J = I + 1; J != 6; ++J)
      if ((I + J) % 2 == 1)
        G.addEdge(I, J);
  std::vector<double> Costs(6, 1.0);
  Allocation A = briggsColor(G, Costs, 3);
  for (const auto &[U, V] : G.edgeList()) {
    if (A.ColorOfWeb[U] >= 0 && A.ColorOfWeb[V] >= 0) {
      EXPECT_NE(A.ColorOfWeb[U], A.ColorOfWeb[V]);
    }
  }
  for (int C : A.ColorOfWeb)
    EXPECT_LT(C, 3);
}

TEST(BriggsTest, NeverSpillsMoreThanChaitinOnRandomGraphs) {
  for (unsigned Seed = 1; Seed <= 10; ++Seed) {
    RandomProgramOptions Opts;
    Opts.Seed = Seed * 131;
    Opts.InstructionsPerBlock = 16;
    Opts.Shape = static_cast<CfgShape>(Seed % 5);
    Function F = generateRandomProgram(Opts);
    Webs W(F);
    InterferenceGraph IG(F, W);
    std::vector<double> Costs(W.numWebs(), 1.0);
    for (unsigned Regs : {3u, 5u}) {
      Allocation C = chaitinColor(IG.graph(), Costs, Regs);
      Allocation B = briggsColor(IG.graph(), Costs, Regs);
      EXPECT_LE(B.SpilledWebs.size(), C.SpilledWebs.size())
          << "seed " << Seed << " regs " << Regs;
    }
  }
}

TEST(BriggsTest, AgreesWithChaitinWhenNoPressure) {
  Function F = paperExample2();
  Webs W(F);
  InterferenceGraph IG(F, W);
  std::vector<double> Costs(W.numWebs(), 1.0);
  Allocation B = briggsColor(IG.graph(), Costs, 8);
  ASSERT_TRUE(B.fullyColored());
  EXPECT_EQ(B.NumColorsUsed, 3u);
}

//===----------------------------------------------------------------------===//
// Machine description parsing
//===----------------------------------------------------------------------===//

TEST(MachineConfigTest, ParsesFullDescription) {
  const char *Text = "machine dsp\n"
                     "width 4\n"
                     "regs 6\n"
                     "units fixed=1 float=2 mem=1 branch=1 move=2\n"
                     "latency load=3 fmul=2\n";
  std::string Err;
  std::optional<MachineModel> M = parseMachineModel(Text, Err);
  ASSERT_TRUE(M.has_value()) << Err;
  EXPECT_EQ(M->name(), "dsp");
  EXPECT_EQ(M->issueWidth(), 4u);
  EXPECT_EQ(M->numPhysRegs(), 6u);
  EXPECT_EQ(M->units(UnitKind::FPU), 2u);
  EXPECT_EQ(M->units(UnitKind::Move), 2u);
  EXPECT_EQ(M->latency(Opcode::Load), 3u);
  EXPECT_EQ(M->latency(Opcode::FMul), 2u);
  EXPECT_EQ(M->latency(Opcode::Add), 1u) << "defaults preserved";
}

TEST(MachineConfigTest, DefaultsWhenDirectivesOmitted) {
  std::string Err;
  std::optional<MachineModel> M = parseMachineModel("machine tiny\n", Err);
  ASSERT_TRUE(M.has_value()) << Err;
  EXPECT_EQ(M->issueWidth(), 1u);
  EXPECT_EQ(M->units(UnitKind::IntALU), 1u);
}

TEST(MachineConfigTest, CommentsAndBlankLines) {
  const char *Text = "# a core\n\nmachine c # trailing\nwidth 2\n";
  std::string Err;
  std::optional<MachineModel> M = parseMachineModel(Text, Err);
  ASSERT_TRUE(M.has_value()) << Err;
  EXPECT_EQ(M->issueWidth(), 2u);
}

TEST(MachineConfigTest, RejectsBadDirective) {
  std::string Err;
  EXPECT_FALSE(parseMachineModel("frequency 3GHz\n", Err).has_value());
  EXPECT_NE(Err.find("unknown directive"), std::string::npos);
}

TEST(MachineConfigTest, RejectsBadUnitSpec) {
  std::string Err;
  EXPECT_FALSE(parseMachineModel("units turbo=2\n", Err).has_value());
  EXPECT_FALSE(parseMachineModel("units fixed=0\n", Err).has_value());
  EXPECT_FALSE(parseMachineModel("units fixed\n", Err).has_value());
}

TEST(MachineConfigTest, RejectsBadLatency) {
  std::string Err;
  EXPECT_FALSE(parseMachineModel("latency frobnicate=2\n", Err).has_value());
  EXPECT_FALSE(parseMachineModel("latency load=0\n", Err).has_value());
}

TEST(MachineConfigTest, RoundTripsEveryPreset) {
  for (MachineModel M :
       {MachineModel::scalar(), MachineModel::paperTwoUnit(),
        MachineModel::mipsR3000(), MachineModel::rs6000(),
        MachineModel::vliw4()}) {
    std::string Text = machineModelToString(M);
    std::string Err;
    std::optional<MachineModel> Parsed = parseMachineModel(Text, Err);
    ASSERT_TRUE(Parsed.has_value()) << M.name() << ": " << Err;
    EXPECT_EQ(Parsed->name(), M.name());
    EXPECT_EQ(Parsed->issueWidth(), M.issueWidth());
    EXPECT_EQ(Parsed->numPhysRegs(), M.numPhysRegs());
    for (unsigned K = 0; K != NumUnitKinds; ++K)
      EXPECT_EQ(Parsed->units(static_cast<UnitKind>(K)),
                M.units(static_cast<UnitKind>(K)));
    for (unsigned I = 0; I != NumOpcodes; ++I)
      EXPECT_EQ(Parsed->latency(static_cast<Opcode>(I)),
                M.latency(static_cast<Opcode>(I)));
  }
}

//===----------------------------------------------------------------------===//
// Region hoisting (cross-block code motion within plausible chains)
//===----------------------------------------------------------------------===//

TEST(RegionHoistTest, MergesStraightLineChains) {
  // entry -> body -> exit: body's computation hoists into entry.
  Function F("t");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg A = B.loadImm(3);
  B.br(1);
  B.startBlock("body");
  Reg C = B.binary(Opcode::Add, A, A);
  Reg D = B.binary(Opcode::Mul, C, A);
  B.br(2);
  B.startBlock("exit");
  B.ret(D);
  unsigned Moved = regionHoist(F);
  EXPECT_EQ(Moved, 2u);
  EXPECT_EQ(F.block(0).size(), 4u) << "li, add, mul, br";
  EXPECT_EQ(F.block(1).size(), 1u) << "only the branch remains";
  std::string Err;
  EXPECT_TRUE(verifyFunction(F, Err)) << Err;
  ExecResult R = interpret(F, makeInitialState(F, 1));
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.ReturnValue, 18);
}

TEST(RegionHoistTest, NeverHoistsOutOfLoops) {
  Function F = dotProduct(2);
  Function Before = F;
  regionHoist(F);
  // The loop block must be untouched (hoisting across a back edge would
  // change execution counts).
  ASSERT_EQ(F.block(1).size(), Before.block(1).size());
  for (unsigned I = 0; I != F.block(1).size(); ++I)
    EXPECT_EQ(F.block(1).inst(I).opcode(), Before.block(1).inst(I).opcode());
}

TEST(RegionHoistTest, StoresStayHome) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg A = B.loadImm(5);
  B.br(1);
  B.startBlock("body");
  B.store("out", A, NoReg, 0);
  B.br(2);
  B.startBlock("exit");
  B.ret();
  regionHoist(F);
  EXPECT_EQ(F.block(1).inst(0).opcode(), Opcode::Store);
}

TEST(RegionHoistTest, LoadPinnedByStoreLeftBehind) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg A = B.loadImm(5);
  B.br(1);
  B.startBlock("body");
  B.store("buf", A, NoReg, 0); // stays (stores never hoist)
  Reg L = B.load("buf", NoReg, 0); // must not float above the store
  B.br(2);
  B.startBlock("exit");
  B.ret(L);
  regionHoist(F);
  // The load stays in body, after the store.
  ASSERT_GE(F.block(1).size(), 3u);
  EXPECT_EQ(F.block(1).inst(0).opcode(), Opcode::Store);
  EXPECT_EQ(F.block(1).inst(1).opcode(), Opcode::Load);
  ExecResult R = interpret(F, makeInitialState(F, 1));
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.ReturnValue, 5);
}

TEST(RegionHoistTest, DiamondArmStoreBlocksJoinLoad) {
  // entry -> (then | else) -> join; then-arm stores into buf, the join
  // loads it: the load is pinned by the intervening store.
  Function F("t");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg C = B.load("c", NoReg, 0);
  Reg V = B.loadImm(9);
  B.condBr(C, 1, 2);
  B.startBlock("then");
  B.store("buf", V, NoReg, 0);
  B.br(3);
  B.startBlock("else");
  B.br(3);
  B.startBlock("join");
  Reg L = B.load("buf", NoReg, 0);
  B.ret(L);
  regionHoist(F);
  // join's load must not hoist into entry.
  EXPECT_EQ(F.block(3).inst(0).opcode(), Opcode::Load);
  ExecResult R = interpret(F, makeInitialState(F, 7));
  ASSERT_TRUE(R.Completed) << R.Error;
}

TEST(RegionHoistTest, RedefinedRegisterNotHoisted) {
  // join redefines the same symbolic register written in entry and read
  // in the then-arm; hoisting it would clobber the arm's read.
  Function F("t");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg C = B.load("c", NoReg, 0);
  Reg X = B.loadImm(1);
  B.condBr(C, 1, 2);
  B.startBlock("then");
  B.store("out", X, NoReg, 0); // reads X's first value
  B.br(3);
  B.startBlock("else");
  B.br(3);
  B.startBlock("join");
  B.loadImmInto(X, 2); // second web of the same register
  B.ret(X);
  Function Before = F;
  regionHoist(F);
  // The redefinition must stay in the join block.
  EXPECT_EQ(F.block(3).size(), Before.block(3).size());
  ExecResult RA = interpret(Before, makeInitialState(Before, 3));
  ExecResult RB = interpret(F, makeInitialState(F, 3));
  ASSERT_TRUE(RA.Completed);
  ASSERT_TRUE(RB.Completed);
  EXPECT_TRUE(statesEquivalent(RA.Final, RB.Final));
  EXPECT_EQ(RA.ReturnValue, RB.ReturnValue);
}

TEST(RegionHoistTest, SemanticsPreservedOnRandomPrograms) {
  for (unsigned Seed = 1; Seed <= 15; ++Seed) {
    RandomProgramOptions Opts;
    Opts.Seed = Seed * 557;
    Opts.Shape = static_cast<CfgShape>(Seed % 5);
    Opts.InstructionsPerBlock = 12;
    Function F = generateRandomProgram(Opts);
    Function Before = F;
    regionHoist(F);
    std::string Err;
    ASSERT_TRUE(verifyFunction(F, Err)) << "seed " << Seed << ": " << Err;
    ExecResult RA = interpret(Before, makeInitialState(Before, Seed));
    ExecResult RB = interpret(F, makeInitialState(F, Seed));
    ASSERT_TRUE(RA.Completed) << "seed " << Seed;
    ASSERT_TRUE(RB.Completed) << "seed " << Seed << ": " << RB.Error;
    EXPECT_TRUE(statesEquivalent(RA.Final, RB.Final)) << "seed " << Seed;
    EXPECT_EQ(RA.ReturnValue, RB.ReturnValue) << "seed " << Seed;
  }
}

TEST(RegionHoistTest, SemanticsPreservedOnKernels) {
  for (auto &[Name, Kernel] : standardKernelSuite()) {
    Function F = Kernel;
    regionHoist(F);
    std::string Err;
    ASSERT_TRUE(verifyFunction(F, Err)) << Name << ": " << Err;
    ExecResult RA = interpret(Kernel, makeInitialState(Kernel, 21));
    ExecResult RB = interpret(F, makeInitialState(F, 21));
    ASSERT_TRUE(RA.Completed) << Name;
    ASSERT_TRUE(RB.Completed) << Name << ": " << RB.Error;
    EXPECT_TRUE(statesEquivalent(RA.Final, RB.Final)) << Name;
  }
}

TEST(RegionHoistTest, CombinedWithRegionsStillSoundEndToEnd) {
  PinterOptions Opts;
  Opts.UseRegions = true;
  MachineModel M = MachineModel::vliw4(8);
  for (auto &[Name, Kernel] : standardKernelSuite()) {
    PipelineResult R =
        runAndMeasure(StrategyKind::Combined, Kernel, M, Opts);
    ASSERT_TRUE(R.Success) << Name << ": " << R.Error;
    EXPECT_TRUE(R.SemanticsPreserved) << Name;
  }
}

TEST(RegionHoistTest, WideningTheWindowHelpsStraightLineCycles) {
  // Straight-line random programs split across blocks: hoisting merges
  // the window and should never lose cycles on a wide machine.
  MachineModel M = MachineModel::vliw4(12);
  PinterOptions Plain;
  PinterOptions Regions;
  Regions.UseRegions = true;
  unsigned Better = 0, Worse = 0;
  for (unsigned Seed = 1; Seed <= 8; ++Seed) {
    RandomProgramOptions Opts;
    Opts.Seed = Seed * 7717;
    Opts.Shape = CfgShape::Straight;
    Opts.InstructionsPerBlock = 10;
    Function F = generateRandomProgram(Opts);
    PipelineResult A = runAndMeasure(StrategyKind::Combined, F, M, Plain);
    PipelineResult B = runAndMeasure(StrategyKind::Combined, F, M, Regions);
    ASSERT_TRUE(A.Success) << A.Error;
    ASSERT_TRUE(B.Success) << B.Error;
    if (B.DynCycles < A.DynCycles)
      ++Better;
    if (B.DynCycles > A.DynCycles)
      ++Worse;
  }
  EXPECT_GT(Better, 0u) << "hoisting should win somewhere";
  EXPECT_GE(Better, Worse);
}

//===----------------------------------------------------------------------===//
// Augmented-PIG-driven list scheduler
//===----------------------------------------------------------------------===//

TEST(PigSchedulerTest, LegalOnAllKernelsAndMachines) {
  for (auto &[Name, Kernel] : standardKernelSuite())
    for (MachineModel M : {MachineModel::paperTwoUnit(),
                           MachineModel::rs6000(), MachineModel::vliw4()}) {
      FunctionSchedule S = scheduleFunctionWithPig(Kernel, M);
      for (unsigned B = 0; B != Kernel.numBlocks(); ++B) {
        DependenceGraph G(Kernel, B, M);
        ASSERT_EQ(S.Blocks[B].CycleOf.size(), G.size()) << Name;
        for (const DepEdge &E : G.edges())
          EXPECT_GE(S.Blocks[B].CycleOf[E.To],
                    S.Blocks[B].CycleOf[E.From] + E.Latency)
              << Name << "/" << M.name();
      }
    }
}

TEST(PigSchedulerTest, CoIssuedPairsAreAlwaysEfAdjacent) {
  Function F = paperExample2();
  MachineModel M = MachineModel::paperTwoUnit();
  FunctionSchedule S = scheduleFunctionWithPig(F, M);
  FalseDependenceGraph FDG(F, 0, M);
  auto Groups = S.Blocks[0].groupsByCycle();
  for (const auto &Group : Groups)
    for (size_t I = 0; I != Group.size(); ++I)
      for (size_t J = I + 1; J != Group.size(); ++J)
        EXPECT_TRUE(FDG.canIssueTogether(Group[I], Group[J]))
            << Group[I] << "," << Group[J];
}

TEST(PigSchedulerTest, MatchesStandardSchedulerOnPaperExamples) {
  // For the computation proper the Ef filter encodes the same co-issue
  // relation as the resource counters. The one principled difference is
  // the terminator: Et derives from the transitive closure, so *any*
  // predecessor of the branch counts as not-co-issuable, while the
  // standard scheduler lets work share the branch's cycle through the
  // latency-0 control edge. Hence: identical spans over non-terminator
  // instructions, at most one extra cycle for the branch itself.
  for (Function F : {paperExample1(), paperExample2()}) {
    MachineModel M = MachineModel::paperTwoUnit();
    FunctionSchedule Standard = scheduleFunction(F, M);
    FunctionSchedule Pig = scheduleFunctionWithPig(F, M);
    for (unsigned B = 0; B != F.numBlocks(); ++B) {
      unsigned N = F.block(B).size();
      unsigned StdSpan = 0, PigSpan = 0;
      for (unsigned I = 0; I + 1 < N; ++I) {
        StdSpan = std::max(StdSpan, Standard.Blocks[B].CycleOf[I] + 1);
        PigSpan = std::max(PigSpan, Pig.Blocks[B].CycleOf[I] + 1);
      }
      EXPECT_EQ(PigSpan, StdSpan) << F.name() << " block " << B;
      EXPECT_LE(Pig.Blocks[B].Makespan,
                Standard.Blocks[B].Makespan + 1)
          << F.name() << " block " << B;
    }
  }
}

TEST(PigSchedulerTest, NeverBeatsCriticalPath) {
  Function F = reductionTree(8);
  MachineModel M = MachineModel::rs6000();
  DependenceGraph G(F, 0, M);
  std::vector<unsigned> EP = computeEP(G);
  unsigned CP = 0;
  for (unsigned V = 0; V != G.size(); ++V)
    CP = std::max(CP, EP[V]);
  FunctionSchedule S = scheduleFunctionWithPig(F, M);
  EXPECT_GE(S.Blocks[0].Makespan, CP + 1);
}
