//===- tests/support_test.cpp - Support ADT unit tests --------------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "support/BitMatrix.h"
#include "support/BitVector.h"
#include "support/DotWriter.h"
#include "support/Rng.h"
#include "support/UndirectedGraph.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

using namespace pira;

//===----------------------------------------------------------------------===//
// BitVector
//===----------------------------------------------------------------------===//

TEST(BitVectorTest, StartsEmpty) {
  BitVector V(100);
  EXPECT_EQ(V.size(), 100u);
  EXPECT_TRUE(V.none());
  EXPECT_FALSE(V.any());
  EXPECT_EQ(V.count(), 0u);
  EXPECT_EQ(V.findFirst(), -1);
}

TEST(BitVectorTest, SetTestReset) {
  BitVector V(130);
  V.set(0);
  V.set(63);
  V.set(64);
  V.set(129);
  EXPECT_TRUE(V.test(0));
  EXPECT_TRUE(V.test(63));
  EXPECT_TRUE(V.test(64));
  EXPECT_TRUE(V.test(129));
  EXPECT_FALSE(V.test(1));
  EXPECT_EQ(V.count(), 4u);
  V.reset(63);
  EXPECT_FALSE(V.test(63));
  EXPECT_EQ(V.count(), 3u);
}

TEST(BitVectorTest, ConstructAllOnes) {
  BitVector V(70, true);
  EXPECT_EQ(V.count(), 70u);
  EXPECT_TRUE(V.test(69));
}

TEST(BitVectorTest, SetAllRespectsSize) {
  BitVector V(70);
  V.setAll();
  EXPECT_EQ(V.count(), 70u);
}

TEST(BitVectorTest, FindFirstAndNextIterateAscending) {
  BitVector V(200);
  std::set<unsigned> Expected = {3, 64, 65, 127, 128, 199};
  for (unsigned B : Expected)
    V.set(B);
  std::set<unsigned> Seen;
  for (int I = V.findFirst(); I != -1;
       I = V.findNext(static_cast<unsigned>(I)))
    Seen.insert(static_cast<unsigned>(I));
  EXPECT_EQ(Seen, Expected);
}

TEST(BitVectorTest, FindNextPastEndReturnsMinusOne) {
  BitVector V(64);
  V.set(63);
  EXPECT_EQ(V.findNext(63), -1);
}

TEST(BitVectorTest, UnionReportsChange) {
  BitVector A(64), B(64);
  B.set(7);
  EXPECT_TRUE(A.unionWith(B));
  EXPECT_FALSE(A.unionWith(B));
  EXPECT_TRUE(A.test(7));
}

TEST(BitVectorTest, IntersectAndSubtract) {
  BitVector A(64), B(64);
  A.set(1);
  A.set(2);
  A.set(3);
  B.set(2);
  B.set(3);
  B.set(4);
  BitVector I = A;
  I.intersectWith(B);
  EXPECT_EQ(I.count(), 2u);
  EXPECT_TRUE(I.test(2));
  EXPECT_TRUE(I.test(3));
  BitVector D = A;
  D.subtract(B);
  EXPECT_EQ(D.count(), 1u);
  EXPECT_TRUE(D.test(1));
}

TEST(BitVectorTest, FlipAllStaysInDeclaredSize) {
  BitVector V(70);
  V.set(0);
  V.flipAll();
  EXPECT_EQ(V.count(), 69u);
  EXPECT_FALSE(V.test(0));
  EXPECT_TRUE(V.test(69));
}

TEST(BitVectorTest, ResizePreservesAndZeroExtends) {
  BitVector V(10);
  V.set(9);
  V.resize(100);
  EXPECT_TRUE(V.test(9));
  EXPECT_EQ(V.count(), 1u);
  EXPECT_FALSE(V.test(99));
}

TEST(BitVectorTest, EqualityComparesSizeAndBits) {
  BitVector A(10), B(10), C(11);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  B.set(3);
  EXPECT_NE(A, B);
}

//===----------------------------------------------------------------------===//
// BitMatrix
//===----------------------------------------------------------------------===//

TEST(BitMatrixTest, SetAndTest) {
  BitMatrix M(5);
  M.set(1, 3);
  EXPECT_TRUE(M.test(1, 3));
  EXPECT_FALSE(M.test(3, 1));
  M.setSymmetric(2, 4);
  EXPECT_TRUE(M.test(2, 4));
  EXPECT_TRUE(M.test(4, 2));
}

TEST(BitMatrixTest, TransitiveClosureChain) {
  BitMatrix M(4);
  M.set(0, 1);
  M.set(1, 2);
  M.set(2, 3);
  M.transitiveClosure();
  EXPECT_TRUE(M.test(0, 2));
  EXPECT_TRUE(M.test(0, 3));
  EXPECT_TRUE(M.test(1, 3));
  EXPECT_FALSE(M.test(3, 0));
  EXPECT_FALSE(M.test(0, 0));
}

TEST(BitMatrixTest, TransitiveClosureCycleIncludesSelf) {
  BitMatrix M(3);
  M.set(0, 1);
  M.set(1, 0);
  M.transitiveClosure();
  EXPECT_TRUE(M.test(0, 0));
  EXPECT_TRUE(M.test(1, 1));
  EXPECT_FALSE(M.test(2, 2));
}

TEST(BitMatrixTest, SymmetrizeAddsTranspose) {
  BitMatrix M(3);
  M.set(0, 2);
  M.symmetrize();
  EXPECT_TRUE(M.test(2, 0));
  EXPECT_TRUE(M.test(0, 2));
}

TEST(BitMatrixTest, ComplementOffDiagonal) {
  BitMatrix M(3);
  M.set(0, 1);
  M.complementOffDiagonal();
  EXPECT_FALSE(M.test(0, 1));
  EXPECT_TRUE(M.test(1, 0));
  EXPECT_TRUE(M.test(0, 2));
  EXPECT_FALSE(M.test(0, 0));
  EXPECT_FALSE(M.test(1, 1));
}

TEST(BitMatrixTest, CountSumsAllEntries) {
  BitMatrix M(4);
  M.set(0, 1);
  M.set(2, 3);
  M.set(3, 2);
  EXPECT_EQ(M.count(), 3u);
}

//===----------------------------------------------------------------------===//
// UndirectedGraph
//===----------------------------------------------------------------------===//

TEST(UndirectedGraphTest, AddRemoveEdge) {
  UndirectedGraph G(4);
  EXPECT_TRUE(G.addEdge(0, 1));
  EXPECT_FALSE(G.addEdge(1, 0)) << "duplicate edge must be rejected";
  EXPECT_TRUE(G.hasEdge(0, 1));
  EXPECT_TRUE(G.hasEdge(1, 0));
  EXPECT_EQ(G.numEdges(), 1u);
  EXPECT_EQ(G.degree(0), 1u);
  EXPECT_TRUE(G.removeEdge(0, 1));
  EXPECT_FALSE(G.removeEdge(0, 1));
  EXPECT_EQ(G.numEdges(), 0u);
  EXPECT_EQ(G.degree(0), 0u);
}

TEST(UndirectedGraphTest, NeighborListAscending) {
  UndirectedGraph G(5);
  G.addEdge(2, 4);
  G.addEdge(2, 0);
  G.addEdge(2, 3);
  std::vector<unsigned> Expected = {0, 3, 4};
  EXPECT_EQ(G.neighborList(2), Expected);
}

TEST(UndirectedGraphTest, EdgeListLexicographic) {
  UndirectedGraph G(4);
  G.addEdge(3, 1);
  G.addEdge(0, 2);
  G.addEdge(1, 0);
  std::vector<std::pair<unsigned, unsigned>> Expected = {
      {0, 1}, {0, 2}, {1, 3}};
  EXPECT_EQ(G.edgeList(), Expected);
}

TEST(UndirectedGraphTest, UnionWithMergesEdges) {
  UndirectedGraph A(3), B(3);
  A.addEdge(0, 1);
  B.addEdge(1, 2);
  B.addEdge(0, 1);
  A.unionWith(B);
  EXPECT_EQ(A.numEdges(), 2u);
  EXPECT_TRUE(A.hasEdge(1, 2));
}

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(RngTest, DeterministicForSameSeed) {
  Rng A(12345), B(12345);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  bool AnyDifferent = false;
  for (int I = 0; I != 16 && !AnyDifferent; ++I)
    AnyDifferent = A.next() != B.next();
  EXPECT_TRUE(AnyDifferent);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I)
    EXPECT_LT(R.nextBelow(13), 13u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng R(7);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 2000; ++I) {
    int64_t V = R.nextInRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= V == -3;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RngTest, ZeroSeedIsRemapped) {
  Rng R(0);
  EXPECT_NE(R.next(), 0u);
}

//===----------------------------------------------------------------------===//
// DotWriter
//===----------------------------------------------------------------------===//

TEST(DotWriterTest, EmitsWellFormedGraph) {
  std::ostringstream OS;
  {
    DotWriter W(OS, "g", /*Directed=*/false);
    W.node(0, "a");
    W.node(1, "b", "shape=box");
    W.edge(0, 1, "style=dashed");
  }
  std::string S = OS.str();
  EXPECT_NE(S.find("graph g {"), std::string::npos);
  EXPECT_NE(S.find("n0 [label=\"a\"];"), std::string::npos);
  EXPECT_NE(S.find("shape=box"), std::string::npos);
  EXPECT_NE(S.find("n0 -- n1 [style=dashed];"), std::string::npos);
  EXPECT_NE(S.find("}"), std::string::npos);
}

TEST(DotWriterTest, DirectedUsesArrows) {
  std::ostringstream OS;
  {
    DotWriter W(OS, "d", /*Directed=*/true);
    W.edge(2, 5);
  }
  EXPECT_NE(OS.str().find("digraph d {"), std::string::npos);
  EXPECT_NE(OS.str().find("n2 -> n5;"), std::string::npos);
}

TEST(DotWriterTest, AllEdgesDumpsGraph) {
  UndirectedGraph G(3);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  std::ostringstream OS;
  {
    DotWriter W(OS, "g", false);
    W.allEdges(G);
  }
  EXPECT_NE(OS.str().find("n0 -- n1"), std::string::npos);
  EXPECT_NE(OS.str().find("n1 -- n2"), std::string::npos);
}
