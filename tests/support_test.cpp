//===- tests/support_test.cpp - Support ADT unit tests --------------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"
#include "support/BitMatrix.h"
#include "support/BitVector.h"
#include "support/DotWriter.h"
#include "support/Json.h"
#include "support/Rng.h"
#include "support/SmallVector.h"
#include "support/StringInterner.h"
#include "support/UndirectedGraph.h"

#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <set>
#include <sstream>

using namespace pira;

//===----------------------------------------------------------------------===//
// BitVector
//===----------------------------------------------------------------------===//

TEST(BitVectorTest, StartsEmpty) {
  BitVector V(100);
  EXPECT_EQ(V.size(), 100u);
  EXPECT_TRUE(V.none());
  EXPECT_FALSE(V.any());
  EXPECT_EQ(V.count(), 0u);
  EXPECT_EQ(V.findFirst(), -1);
}

TEST(BitVectorTest, SetTestReset) {
  BitVector V(130);
  V.set(0);
  V.set(63);
  V.set(64);
  V.set(129);
  EXPECT_TRUE(V.test(0));
  EXPECT_TRUE(V.test(63));
  EXPECT_TRUE(V.test(64));
  EXPECT_TRUE(V.test(129));
  EXPECT_FALSE(V.test(1));
  EXPECT_EQ(V.count(), 4u);
  V.reset(63);
  EXPECT_FALSE(V.test(63));
  EXPECT_EQ(V.count(), 3u);
}

TEST(BitVectorTest, ConstructAllOnes) {
  BitVector V(70, true);
  EXPECT_EQ(V.count(), 70u);
  EXPECT_TRUE(V.test(69));
}

TEST(BitVectorTest, SetAllRespectsSize) {
  BitVector V(70);
  V.setAll();
  EXPECT_EQ(V.count(), 70u);
}

TEST(BitVectorTest, FindFirstAndNextIterateAscending) {
  BitVector V(200);
  std::set<unsigned> Expected = {3, 64, 65, 127, 128, 199};
  for (unsigned B : Expected)
    V.set(B);
  std::set<unsigned> Seen;
  for (int I = V.findFirst(); I != -1;
       I = V.findNext(static_cast<unsigned>(I)))
    Seen.insert(static_cast<unsigned>(I));
  EXPECT_EQ(Seen, Expected);
}

TEST(BitVectorTest, FindNextPastEndReturnsMinusOne) {
  BitVector V(64);
  V.set(63);
  EXPECT_EQ(V.findNext(63), -1);
}

TEST(BitVectorTest, UnionReportsChange) {
  BitVector A(64), B(64);
  B.set(7);
  EXPECT_TRUE(A.unionWith(B));
  EXPECT_FALSE(A.unionWith(B));
  EXPECT_TRUE(A.test(7));
}

TEST(BitVectorTest, IntersectAndSubtract) {
  BitVector A(64), B(64);
  A.set(1);
  A.set(2);
  A.set(3);
  B.set(2);
  B.set(3);
  B.set(4);
  BitVector I = A;
  I.intersectWith(B);
  EXPECT_EQ(I.count(), 2u);
  EXPECT_TRUE(I.test(2));
  EXPECT_TRUE(I.test(3));
  BitVector D = A;
  D.subtract(B);
  EXPECT_EQ(D.count(), 1u);
  EXPECT_TRUE(D.test(1));
}

TEST(BitVectorTest, FlipAllStaysInDeclaredSize) {
  BitVector V(70);
  V.set(0);
  V.flipAll();
  EXPECT_EQ(V.count(), 69u);
  EXPECT_FALSE(V.test(0));
  EXPECT_TRUE(V.test(69));
}

TEST(BitVectorTest, ResizePreservesAndZeroExtends) {
  BitVector V(10);
  V.set(9);
  V.resize(100);
  EXPECT_TRUE(V.test(9));
  EXPECT_EQ(V.count(), 1u);
  EXPECT_FALSE(V.test(99));
}

TEST(BitVectorTest, EqualityComparesSizeAndBits) {
  BitVector A(10), B(10), C(11);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  B.set(3);
  EXPECT_NE(A, B);
}

//===----------------------------------------------------------------------===//
// BitMatrix
//===----------------------------------------------------------------------===//

TEST(BitMatrixTest, SetAndTest) {
  BitMatrix M(5);
  M.set(1, 3);
  EXPECT_TRUE(M.test(1, 3));
  EXPECT_FALSE(M.test(3, 1));
  M.setSymmetric(2, 4);
  EXPECT_TRUE(M.test(2, 4));
  EXPECT_TRUE(M.test(4, 2));
}

TEST(BitMatrixTest, TransitiveClosureChain) {
  BitMatrix M(4);
  M.set(0, 1);
  M.set(1, 2);
  M.set(2, 3);
  M.transitiveClosure();
  EXPECT_TRUE(M.test(0, 2));
  EXPECT_TRUE(M.test(0, 3));
  EXPECT_TRUE(M.test(1, 3));
  EXPECT_FALSE(M.test(3, 0));
  EXPECT_FALSE(M.test(0, 0));
}

TEST(BitMatrixTest, TransitiveClosureCycleIncludesSelf) {
  BitMatrix M(3);
  M.set(0, 1);
  M.set(1, 0);
  M.transitiveClosure();
  EXPECT_TRUE(M.test(0, 0));
  EXPECT_TRUE(M.test(1, 1));
  EXPECT_FALSE(M.test(2, 2));
}

TEST(BitMatrixTest, SymmetrizeAddsTranspose) {
  BitMatrix M(3);
  M.set(0, 2);
  M.symmetrize();
  EXPECT_TRUE(M.test(2, 0));
  EXPECT_TRUE(M.test(0, 2));
}

TEST(BitMatrixTest, ComplementOffDiagonal) {
  BitMatrix M(3);
  M.set(0, 1);
  M.complementOffDiagonal();
  EXPECT_FALSE(M.test(0, 1));
  EXPECT_TRUE(M.test(1, 0));
  EXPECT_TRUE(M.test(0, 2));
  EXPECT_FALSE(M.test(0, 0));
  EXPECT_FALSE(M.test(1, 1));
}

TEST(BitMatrixTest, CountSumsAllEntries) {
  BitMatrix M(4);
  M.set(0, 1);
  M.set(2, 3);
  M.set(3, 2);
  EXPECT_EQ(M.count(), 3u);
}

//===----------------------------------------------------------------------===//
// UndirectedGraph
//===----------------------------------------------------------------------===//

TEST(UndirectedGraphTest, AddRemoveEdge) {
  UndirectedGraph G(4);
  EXPECT_TRUE(G.addEdge(0, 1));
  EXPECT_FALSE(G.addEdge(1, 0)) << "duplicate edge must be rejected";
  EXPECT_TRUE(G.hasEdge(0, 1));
  EXPECT_TRUE(G.hasEdge(1, 0));
  EXPECT_EQ(G.numEdges(), 1u);
  EXPECT_EQ(G.degree(0), 1u);
  EXPECT_TRUE(G.removeEdge(0, 1));
  EXPECT_FALSE(G.removeEdge(0, 1));
  EXPECT_EQ(G.numEdges(), 0u);
  EXPECT_EQ(G.degree(0), 0u);
}

TEST(UndirectedGraphTest, NeighborListAscending) {
  UndirectedGraph G(5);
  G.addEdge(2, 4);
  G.addEdge(2, 0);
  G.addEdge(2, 3);
  std::vector<unsigned> Expected = {0, 3, 4};
  EXPECT_EQ(G.neighborList(2), Expected);
}

TEST(UndirectedGraphTest, EdgeListLexicographic) {
  UndirectedGraph G(4);
  G.addEdge(3, 1);
  G.addEdge(0, 2);
  G.addEdge(1, 0);
  std::vector<std::pair<unsigned, unsigned>> Expected = {
      {0, 1}, {0, 2}, {1, 3}};
  EXPECT_EQ(G.edgeList(), Expected);
}

TEST(UndirectedGraphTest, UnionWithMergesEdges) {
  UndirectedGraph A(3), B(3);
  A.addEdge(0, 1);
  B.addEdge(1, 2);
  B.addEdge(0, 1);
  A.unionWith(B);
  EXPECT_EQ(A.numEdges(), 2u);
  EXPECT_TRUE(A.hasEdge(1, 2));
}

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(RngTest, DeterministicForSameSeed) {
  Rng A(12345), B(12345);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  bool AnyDifferent = false;
  for (int I = 0; I != 16 && !AnyDifferent; ++I)
    AnyDifferent = A.next() != B.next();
  EXPECT_TRUE(AnyDifferent);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I)
    EXPECT_LT(R.nextBelow(13), 13u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng R(7);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 2000; ++I) {
    int64_t V = R.nextInRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= V == -3;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RngTest, ZeroSeedIsRemapped) {
  Rng R(0);
  EXPECT_NE(R.next(), 0u);
}

//===----------------------------------------------------------------------===//
// DotWriter
//===----------------------------------------------------------------------===//

TEST(DotWriterTest, EmitsWellFormedGraph) {
  std::ostringstream OS;
  {
    DotWriter W(OS, "g", /*Directed=*/false);
    W.node(0, "a");
    W.node(1, "b", "shape=box");
    W.edge(0, 1, "style=dashed");
  }
  std::string S = OS.str();
  EXPECT_NE(S.find("graph g {"), std::string::npos);
  EXPECT_NE(S.find("n0 [label=\"a\"];"), std::string::npos);
  EXPECT_NE(S.find("shape=box"), std::string::npos);
  EXPECT_NE(S.find("n0 -- n1 [style=dashed];"), std::string::npos);
  EXPECT_NE(S.find("}"), std::string::npos);
}

TEST(DotWriterTest, DirectedUsesArrows) {
  std::ostringstream OS;
  {
    DotWriter W(OS, "d", /*Directed=*/true);
    W.edge(2, 5);
  }
  EXPECT_NE(OS.str().find("digraph d {"), std::string::npos);
  EXPECT_NE(OS.str().find("n2 -> n5;"), std::string::npos);
}

TEST(DotWriterTest, AllEdgesDumpsGraph) {
  UndirectedGraph G(3);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  std::ostringstream OS;
  {
    DotWriter W(OS, "g", false);
    W.allEdges(G);
  }
  EXPECT_NE(OS.str().find("n0 -- n1"), std::string::npos);
  EXPECT_NE(OS.str().find("n1 -- n2"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Transitive closure: packed-bitset vs. set-based reference
//===----------------------------------------------------------------------===//

namespace {

/// A random DAG on \p N nodes: edges only from lower to higher index,
/// each present with probability \p EdgePercent.
BitMatrix randomDag(unsigned N, unsigned EdgePercent, uint64_t Seed) {
  Rng R(Seed);
  BitMatrix M(N);
  for (unsigned I = 0; I != N; ++I)
    for (unsigned J = I + 1; J != N; ++J)
      if (R.chancePercent(EdgePercent))
        M.set(I, J);
  return M;
}

} // namespace

TEST(TransitiveClosureTest, BitsetMatchesSetBasedReferenceOnRandomDags) {
  // Sizes straddle the word width and reach the 512-node blocks the
  // closure benchmark times; densities cover sparse through near-dense.
  for (unsigned N : {1u, 7u, 63u, 64u, 65u, 200u, 512u})
    for (unsigned Density : {2u, 10u, 40u}) {
      BitMatrix Dag = randomDag(N, Density, N * 1000 + Density);
      BitMatrix Reference = Dag.transitiveClosureSetBased();
      BitMatrix Packed = Dag;
      Packed.transitiveClosure();
      EXPECT_EQ(Packed, Reference)
          << "closures diverge at N=" << N << " density=" << Density << "%";
    }
}

TEST(TransitiveClosureTest, SetBasedReferenceLeavesInputUntouched) {
  BitMatrix Dag = randomDag(50, 20, 99);
  BitMatrix Copy = Dag;
  (void)Dag.transitiveClosureSetBased();
  EXPECT_EQ(Dag, Copy);
}

TEST(TransitiveClosureTest, ClosureOfChainIsFullUpperTriangle) {
  unsigned N = 130;
  BitMatrix Chain(N);
  for (unsigned I = 0; I + 1 != N; ++I)
    Chain.set(I, I + 1);
  BitMatrix Reference = Chain.transitiveClosureSetBased();
  Chain.transitiveClosure();
  EXPECT_EQ(Chain, Reference);
  EXPECT_EQ(Chain.count(), N * (N - 1) / 2);
}

//===----------------------------------------------------------------------===//
// UndirectedGraph::fromSymmetric
//===----------------------------------------------------------------------===//

TEST(UndirectedGraphTest, FromSymmetricMatchesIncrementalConstruction) {
  Rng R(4242);
  unsigned N = 150;
  UndirectedGraph Incremental(N);
  BitMatrix M(N);
  for (unsigned I = 0; I != N; ++I)
    for (unsigned J = I + 1; J != N; ++J)
      if (R.chancePercent(15)) {
        Incremental.addEdge(I, J);
        M.setSymmetric(I, J);
      }
  UndirectedGraph Bulk = UndirectedGraph::fromSymmetric(std::move(M));
  ASSERT_EQ(Bulk.numVertices(), Incremental.numVertices());
  EXPECT_EQ(Bulk.numEdges(), Incremental.numEdges());
  for (unsigned V = 0; V != N; ++V) {
    EXPECT_EQ(Bulk.degree(V), Incremental.degree(V)) << "vertex " << V;
    EXPECT_EQ(Bulk.neighbors(V), Incremental.neighbors(V)) << "vertex " << V;
  }
  EXPECT_EQ(Bulk.edgeList(), Incremental.edgeList());
}

TEST(UndirectedGraphTest, FromSymmetricEmptyAndComplete) {
  UndirectedGraph Empty = UndirectedGraph::fromSymmetric(BitMatrix(40));
  EXPECT_EQ(Empty.numEdges(), 0u);
  BitMatrix Full(40);
  for (unsigned I = 0; I != 40; ++I)
    for (unsigned J = 0; J != 40; ++J)
      if (I != J)
        Full.set(I, J);
  UndirectedGraph Complete = UndirectedGraph::fromSymmetric(std::move(Full));
  EXPECT_EQ(Complete.numEdges(), 40u * 39u / 2);
  EXPECT_EQ(Complete.degree(17), 39u);
}

//===----------------------------------------------------------------------===//
// Json parser edge cases
//===----------------------------------------------------------------------===//

namespace {

/// Parses \p Text, asserting success, and returns the value.
json::Value parseOk(const std::string &Text) {
  json::Value V;
  std::string Error;
  EXPECT_TRUE(json::parse(Text, V, Error)) << Error;
  return V;
}

/// Parses \p Text, asserting failure, and returns the error message.
std::string parseErr(const std::string &Text) {
  json::Value V;
  std::string Error;
  EXPECT_FALSE(json::parse(Text, V, Error));
  return Error;
}

/// Builds Depth nested arrays around a zero: [[[...0...]]].
std::string nestedArrays(unsigned Depth) {
  std::string S;
  S.append(Depth, '[');
  S += '0';
  S.append(Depth, ']');
  return S;
}

} // namespace

TEST(JsonEdgeTest, MalformedUtf8BytesPassThroughStrings) {
  // The parser treats strings as byte sequences; invalid UTF-8 (a lone
  // continuation byte, an overlong-start byte) must neither crash nor be
  // altered on a write/parse round trip. Telemetry reports embed function
  // names that ultimately come from arbitrary user input.
  std::string Raw = std::string("a\x80") + "\xC3" + "b\xFF";
  json::Value V(Raw);
  std::string Serialized = V.toString();
  json::Value Back = parseOk(Serialized);
  ASSERT_TRUE(Back.isString());
  EXPECT_EQ(Back.asString(), Raw);
}

TEST(JsonEdgeTest, ControlCharactersEscapeAndRoundTrip) {
  std::string Raw = "tab\there\nnewline\x01unit";
  json::Value Back = parseOk(json::Value(Raw).toString());
  ASSERT_TRUE(Back.isString());
  EXPECT_EQ(Back.asString(), Raw);
}

TEST(JsonEdgeTest, DeepNestingWithinLimitParses) {
  json::Value V = parseOk(nestedArrays(150));
  unsigned Depth = 0;
  const json::Value *Cur = &V;
  while (Cur->isArray()) {
    ASSERT_EQ(Cur->size(), 1u);
    Cur = &Cur->elements().front();
    ++Depth;
  }
  EXPECT_EQ(Depth, 150u);
  ASSERT_TRUE(Cur->isInt());
  EXPECT_EQ(Cur->asInt(), 0);
}

TEST(JsonEdgeTest, NestingBeyondLimitIsRejectedNotOverflowed) {
  // The recursive-descent parser must refuse pathological inputs with a
  // clean error instead of exhausting the stack.
  EXPECT_NE(parseErr(nestedArrays(300)).find("nesting too deep"),
            std::string::npos);
  EXPECT_NE(parseErr(nestedArrays(5000)).find("nesting too deep"),
            std::string::npos);
}

TEST(JsonEdgeTest, DuplicateObjectKeysLastValueWins) {
  json::Value V = parseOk(R"({"k": 1, "other": true, "k": 2})");
  ASSERT_TRUE(V.isObject());
  // The duplicate collapses into the member's original slot: one entry,
  // holding the last value, with insertion order otherwise preserved.
  ASSERT_EQ(V.size(), 2u);
  EXPECT_EQ(V.members()[0].first, "k");
  EXPECT_EQ(V.members()[1].first, "other");
  const json::Value *K = V.find("k");
  ASSERT_NE(K, nullptr);
  EXPECT_EQ(K->asInt(), 2);
}

TEST(JsonEdgeTest, NegativeZeroIntegerParsesAsZero) {
  json::Value V = parseOk("-0");
  ASSERT_TRUE(V.isInt());
  EXPECT_EQ(V.asInt(), 0);
}

TEST(JsonEdgeTest, NegativeZeroDoubleKeepsItsSign) {
  json::Value V = parseOk("-0.0");
  ASSERT_FALSE(V.isInt());
  ASSERT_TRUE(V.isNumber());
  EXPECT_EQ(V.asDouble(), 0.0);
  EXPECT_TRUE(std::signbit(V.asDouble()));
}

TEST(JsonEdgeTest, Int64ExtremesRoundTripExactly) {
  // Counters are int64; both extremes must survive write/parse without
  // drifting through a double.
  for (int64_t I : {INT64_MAX, INT64_MIN, int64_t{0}, int64_t{-1}}) {
    json::Value Back = parseOk(json::Value(I).toString());
    ASSERT_TRUE(Back.isInt()) << I;
    EXPECT_EQ(Back.asInt(), I);
  }
}

TEST(JsonEdgeTest, IntegerOverflowIsAnErrorNotSilentWrap) {
  EXPECT_NE(parseErr("9223372036854775808").find("number out of range"),
            std::string::npos);
  EXPECT_NE(parseErr("-9223372036854775809").find("number out of range"),
            std::string::npos);
}

namespace {

/// Switches LC_NUMERIC to a comma-decimal locale for one test and
/// restores the previous locale on destruction. Valid() is false when no
/// such locale is installed (common in minimal containers); tests skip
/// then, and CI installs de_DE.UTF-8 so the path actually runs there.
class ScopedCommaLocale {
public:
  ScopedCommaLocale() {
    const char *Prev = std::setlocale(LC_NUMERIC, nullptr);
    Saved = Prev ? Prev : "C";
    for (const char *Name : {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8",
                             "fr_FR.utf8", "de_DE", "fr_FR"})
      if (std::setlocale(LC_NUMERIC, Name)) {
        // Only count it if the locale really uses a comma decimal point.
        if (*std::localeconv()->decimal_point == ',') {
          Active = true;
          return;
        }
        std::setlocale(LC_NUMERIC, Saved.c_str());
      }
  }
  ~ScopedCommaLocale() {
    if (Active)
      std::setlocale(LC_NUMERIC, Saved.c_str());
  }
  bool valid() const { return Active; }

private:
  std::string Saved;
  bool Active = false;
};

} // namespace

TEST(JsonLocaleTest, DoubleRoundTripUnderCommaDecimalLocale) {
  // Regression test: number formatting went through snprintf("%g") and
  // parsing through std::stod, both of which honor LC_NUMERIC. Under a
  // comma-decimal locale that wrote "0,5" (invalid JSON) and failed to
  // read "0.5". The writer/parser now use std::to_chars/std::from_chars,
  // which are locale-independent by construction.
  ScopedCommaLocale Locale;
  if (!Locale.valid())
    GTEST_SKIP() << "no comma-decimal locale installed";

  for (double D : {0.5, -3.25, 1e-9, 6.02e23, 0.1}) {
    json::Value V(D);
    std::string Text = V.toString();
    // The serialized form must use '.' regardless of locale, and must
    // not contain a comma (which would also break array separators).
    EXPECT_EQ(Text.find(','), std::string::npos) << Text;
    json::Value Back = parseOk(Text);
    ASSERT_TRUE(Back.isNumber()) << Text;
    EXPECT_EQ(Back.asDouble(), D) << Text;
  }

  // A full report-shaped document round-trips too: parsing locale-neutral
  // input must not be confused by the ambient locale either.
  json::Value Doc = parseOk(R"({"hit_rate": 0.75, "xs": [1.5, 2.25]})");
  EXPECT_EQ(Doc.find("hit_rate")->asDouble(), 0.75);
  EXPECT_EQ(Doc.find("xs")->elements()[1].asDouble(), 2.25);
}

//===----------------------------------------------------------------------===//
// SmallVector / Arena / string interner (the data-oriented IR layer)
//===----------------------------------------------------------------------===//

TEST(SmallVectorTest, InlineThenSpill) {
  SmallVector<unsigned, 3> V;
  EXPECT_TRUE(V.empty());
  // Stay inline: no heap allocation observable, values intact.
  V.push_back(10);
  V.push_back(20);
  V.push_back(30);
  EXPECT_EQ(V.size(), 3u);
  EXPECT_EQ(V[0], 10u);
  EXPECT_EQ(V.back(), 30u);
  // Cross the inline capacity and keep growing well past it.
  for (unsigned I = 0; I < 100; ++I)
    V.push_back(I);
  ASSERT_EQ(V.size(), 103u);
  EXPECT_EQ(V[0], 10u);
  EXPECT_EQ(V[3], 0u);
  EXPECT_EQ(V[102], 99u);
  V.pop_back();
  EXPECT_EQ(V.size(), 102u);
  V.clear();
  EXPECT_TRUE(V.empty());
}

TEST(SmallVectorTest, CopyMoveAndEquality) {
  SmallVector<unsigned, 2> A{1, 2, 3, 4};
  SmallVector<unsigned, 2> B(A);
  EXPECT_TRUE(A == B);
  SmallVector<unsigned, 2> C(std::move(A));
  EXPECT_TRUE(C == B);
  // Converting construction from std::vector, both inline and spilled.
  SmallVector<unsigned, 4> D(std::vector<unsigned>{7, 8});
  ASSERT_EQ(D.size(), 2u);
  EXPECT_EQ(D[1], 8u);
  SmallVector<unsigned, 1> E(std::vector<unsigned>{5, 6, 7});
  ASSERT_EQ(E.size(), 3u);
  EXPECT_EQ(E[2], 7u);
  SmallVector<unsigned, 2> F{1, 2, 3, 4};
  SmallVector<unsigned, 2> G{1, 2, 3, 5};
  EXPECT_FALSE(F == G);
  G = F;
  EXPECT_TRUE(F == G);
  // Range-for iterates in order.
  unsigned Sum = 0;
  for (unsigned X : F)
    Sum += X;
  EXPECT_EQ(Sum, 10u);
}

TEST(ArenaTest, BumpAllocationAndAlignment) {
  Arena A(/*ChunkBytes=*/256);
  unsigned *P = A.allocate<unsigned>(10);
  for (unsigned I = 0; I < 10; ++I)
    P[I] = I;
  uint64_t *Q = A.allocateZeroed<uint64_t>(4);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(Q) % alignof(uint64_t), 0u);
  for (unsigned I = 0; I < 4; ++I)
    EXPECT_EQ(Q[I], 0u);
  // Earlier allocations survive chunk growth.
  for (unsigned I = 0; I < 50; ++I)
    (void)A.allocate<uint64_t>(16); // each 128 bytes; forces new chunks
  for (unsigned I = 0; I < 10; ++I)
    EXPECT_EQ(P[I], I);
  EXPECT_GT(A.bytesAllocated(), 256u);
  // An allocation larger than the chunk size still succeeds.
  char *Big = A.allocate<char>(4096);
  Big[4095] = 'x';
  EXPECT_EQ(Big[4095], 'x');
}

TEST(StringInternerTest, PointerIdentityPerContent) {
  Symbol A = internString("alpha");
  Symbol B = internString(std::string("al") + "pha");
  Symbol C = internString("beta");
  EXPECT_EQ(A, B);  // same content, same pointer
  EXPECT_NE(A, C);
  EXPECT_EQ(*A, "alpha");
  EXPECT_EQ(*C, "beta");
  EXPECT_EQ(internString(""), emptySymbol());
  EXPECT_EQ(*emptySymbol(), "");
}
