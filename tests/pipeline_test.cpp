//===- tests/pipeline_test.cpp - Strategy pipeline tests ------------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "machine/MachineModel.h"
#include "pipeline/Batch.h"
#include "pipeline/Strategies.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

using namespace pira;

TEST(PipelineTest, ProgressLineBasicShape) {
  ProgressSnapshot S;
  S.Done = 3;
  S.Total = 10;
  S.Failed = 1;
  S.Degraded = 2;
  S.Crashed = 0;
  S.ElapsedS = 1.5;
  EXPECT_EQ(formatProgressLine(S),
            "pirac: 3/10 done, 1 failed, 2 degraded, 0 crashed"
            " | 2.0/s | eta 3.5s");

  // Cache segment appears once a lookup happened.
  S.HasCache = true;
  S.CacheHits = 1;
  S.CacheLookups = 4;
  EXPECT_EQ(formatProgressLine(S),
            "pirac: 3/10 done, 1 failed, 2 degraded, 0 crashed"
            " | cache 25.0% | 2.0/s | eta 3.5s");

  // A finished batch drops the ETA but keeps the rate.
  S.HasCache = false;
  S.Done = 10;
  S.Failed = 1;
  EXPECT_EQ(formatProgressLine(S),
            "pirac: 10/10 done, 1 failed, 2 degraded, 0 crashed"
            " | 6.7/s");
}

TEST(PipelineTest, ProgressLineNeverShowsInfOrNanAtZeroElapsed) {
  // The first tick of a fast batch can land within the clock's
  // granularity: items finished but zero (or even negative, on a
  // misbehaving clock) elapsed time. The rate and ETA divisions must be
  // skipped, not performed.
  for (double Elapsed : {0.0, -1.0}) {
    ProgressSnapshot S;
    S.Done = 2;
    S.Total = 10;
    S.ElapsedS = Elapsed;
    std::string Line = formatProgressLine(S);
    EXPECT_EQ(Line, "pirac: 2/10 done, 0 failed, 0 degraded, 0 crashed")
        << Line;
    EXPECT_EQ(Line.find("inf"), std::string::npos) << Line;
    EXPECT_EQ(Line.find("nan"), std::string::npos) << Line;
  }

  // Zero items done: no rate, no ETA, regardless of elapsed time.
  ProgressSnapshot S;
  S.Total = 10;
  S.ElapsedS = 5.0;
  EXPECT_EQ(formatProgressLine(S),
            "pirac: 0/10 done, 0 failed, 0 degraded, 0 crashed");

  // A cache that has seen no lookups contributes no segment (avoiding
  // its own 0/0).
  S.HasCache = true;
  S.CacheLookups = 0;
  EXPECT_EQ(formatProgressLine(S).find("cache"), std::string::npos);
}

TEST(PipelineTest, StrategyNames) {
  EXPECT_STREQ(strategyName(StrategyKind::AllocFirst), "alloc-first");
  EXPECT_STREQ(strategyName(StrategyKind::SchedFirst), "sched-first");
  EXPECT_STREQ(strategyName(StrategyKind::Combined), "combined");
}

TEST(PipelineTest, AllStrategiesSucceedOnSuiteWithAmpleRegs) {
  MachineModel M = MachineModel::rs6000(10);
  for (auto &[Name, Kernel] : standardKernelSuite())
    for (StrategyKind K : {StrategyKind::AllocFirst,
                           StrategyKind::SchedFirst,
                           StrategyKind::Combined}) {
      PipelineResult R = runAndMeasure(K, Kernel, M);
      EXPECT_TRUE(R.Success)
          << Name << " / " << strategyName(K) << ": " << R.Error;
      EXPECT_TRUE(R.SemanticsPreserved) << Name << " / " << strategyName(K);
      EXPECT_LE(R.RegistersUsed, 10u);
    }
}

TEST(PipelineTest, CombinedHasNoFalseDepsWithoutPressure) {
  // Theorem 1 at pipeline level: whenever Combined spills nothing and
  // drops no parallel edge, the final code carries no false dependence.
  MachineModel M = MachineModel::paperTwoUnit(12);
  for (auto &[Name, Kernel] : standardKernelSuite()) {
    PipelineResult R = runStrategy(StrategyKind::Combined, Kernel, M);
    ASSERT_TRUE(R.Success) << Name;
    if (R.SpilledWebs == 0 && R.ParallelEdgesDropped == 0) {
      EXPECT_EQ(R.FalseDeps, 0u) << Name;
    }
  }
}

TEST(PipelineTest, AllocFirstIntroducesFalseDepsOnExample2Tight) {
  // Chaitin with exactly 3 registers on Example 2 must reuse a register
  // pair that kills parallelism (the paper's motivating claim).
  MachineModel M = MachineModel::paperTwoUnit(3);
  PipelineResult R =
      runStrategy(StrategyKind::AllocFirst, paperExample2(), M);
  ASSERT_TRUE(R.Success) << R.Error;
  EXPECT_EQ(R.SpilledWebs, 0u) << "Gr is 3-colorable";
  EXPECT_GT(R.FalseDeps + R.AntiOrderingLosses, 0u);
}

TEST(PipelineTest, CombinedNeverSlowerOnExample2) {
  MachineModel M3 = MachineModel::paperTwoUnit(4);
  PipelineResult A =
      runAndMeasure(StrategyKind::AllocFirst, paperExample2(), M3);
  PipelineResult C =
      runAndMeasure(StrategyKind::Combined, paperExample2(), M3);
  ASSERT_TRUE(A.Success);
  ASSERT_TRUE(C.Success);
  EXPECT_LE(C.DynCycles, A.DynCycles);
  EXPECT_EQ(C.FalseDeps, 0u);
}

TEST(PipelineTest, DynamicAndStaticCyclesAgreeOnStraightLine) {
  MachineModel M = MachineModel::rs6000(8);
  PipelineResult R =
      runAndMeasure(StrategyKind::Combined, paperExample2(), M);
  ASSERT_TRUE(R.Success);
  EXPECT_EQ(R.DynCycles, R.StaticCycles);
}

TEST(PipelineTest, TightRegistersForceSpillsSomewhere) {
  MachineModel M = MachineModel::rs6000(3);
  unsigned TotalSpills = 0;
  for (auto &[Name, Kernel] : standardKernelSuite()) {
    PipelineResult R = runAndMeasure(StrategyKind::AllocFirst, Kernel, M);
    ASSERT_TRUE(R.Success) << Name << ": " << R.Error;
    EXPECT_TRUE(R.SemanticsPreserved) << Name;
    TotalSpills += R.SpilledWebs;
  }
  EXPECT_GT(TotalSpills, 0u);
}

TEST(PipelineTest, SchedFirstSpillsAtLeastAsMuchOnPressure) {
  // Pre-pass scheduling stretches live ranges; under tight registers it
  // should never spill less than alloc-first, summed over the suite.
  MachineModel M = MachineModel::rs6000(4);
  unsigned AllocFirstSpills = 0, SchedFirstSpills = 0;
  for (auto &[Name, Kernel] : standardKernelSuite()) {
    PipelineResult A = runStrategy(StrategyKind::AllocFirst, Kernel, M);
    PipelineResult S = runStrategy(StrategyKind::SchedFirst, Kernel, M);
    ASSERT_TRUE(A.Success) << Name;
    ASSERT_TRUE(S.Success) << Name;
    AllocFirstSpills += A.SpilledWebs;
    SchedFirstSpills += S.SpilledWebs;
  }
  EXPECT_GE(SchedFirstSpills, AllocFirstSpills);
}

TEST(PipelineTest, CombinedRespectsMachineRegisterFile) {
  for (unsigned Regs : {4u, 6u, 8u}) {
    MachineModel M = MachineModel::vliw4(Regs);
    PipelineResult R =
        runAndMeasure(StrategyKind::Combined, livermoreHydro(2), M);
    ASSERT_TRUE(R.Success) << "regs=" << Regs << ": " << R.Error;
    EXPECT_LE(R.RegistersUsed, Regs);
    EXPECT_TRUE(R.SemanticsPreserved);
  }
}

TEST(PipelineTest, FailureReportedWhenRegistersAbsurdlyTight) {
  // One register cannot hold two live operands of a binary op chain.
  MachineModel M = MachineModel::rs6000(1);
  PipelineResult R =
      runStrategy(StrategyKind::AllocFirst, paperExample2(), M);
  EXPECT_FALSE(R.Success);
  EXPECT_FALSE(R.Error.empty());
}
