//===- tests/pipeline_test.cpp - Strategy pipeline tests ------------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "machine/MachineModel.h"
#include "pipeline/Strategies.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

using namespace pira;

TEST(PipelineTest, StrategyNames) {
  EXPECT_STREQ(strategyName(StrategyKind::AllocFirst), "alloc-first");
  EXPECT_STREQ(strategyName(StrategyKind::SchedFirst), "sched-first");
  EXPECT_STREQ(strategyName(StrategyKind::Combined), "combined");
}

TEST(PipelineTest, AllStrategiesSucceedOnSuiteWithAmpleRegs) {
  MachineModel M = MachineModel::rs6000(10);
  for (auto &[Name, Kernel] : standardKernelSuite())
    for (StrategyKind K : {StrategyKind::AllocFirst,
                           StrategyKind::SchedFirst,
                           StrategyKind::Combined}) {
      PipelineResult R = runAndMeasure(K, Kernel, M);
      EXPECT_TRUE(R.Success)
          << Name << " / " << strategyName(K) << ": " << R.Error;
      EXPECT_TRUE(R.SemanticsPreserved) << Name << " / " << strategyName(K);
      EXPECT_LE(R.RegistersUsed, 10u);
    }
}

TEST(PipelineTest, CombinedHasNoFalseDepsWithoutPressure) {
  // Theorem 1 at pipeline level: whenever Combined spills nothing and
  // drops no parallel edge, the final code carries no false dependence.
  MachineModel M = MachineModel::paperTwoUnit(12);
  for (auto &[Name, Kernel] : standardKernelSuite()) {
    PipelineResult R = runStrategy(StrategyKind::Combined, Kernel, M);
    ASSERT_TRUE(R.Success) << Name;
    if (R.SpilledWebs == 0 && R.ParallelEdgesDropped == 0) {
      EXPECT_EQ(R.FalseDeps, 0u) << Name;
    }
  }
}

TEST(PipelineTest, AllocFirstIntroducesFalseDepsOnExample2Tight) {
  // Chaitin with exactly 3 registers on Example 2 must reuse a register
  // pair that kills parallelism (the paper's motivating claim).
  MachineModel M = MachineModel::paperTwoUnit(3);
  PipelineResult R =
      runStrategy(StrategyKind::AllocFirst, paperExample2(), M);
  ASSERT_TRUE(R.Success) << R.Error;
  EXPECT_EQ(R.SpilledWebs, 0u) << "Gr is 3-colorable";
  EXPECT_GT(R.FalseDeps + R.AntiOrderingLosses, 0u);
}

TEST(PipelineTest, CombinedNeverSlowerOnExample2) {
  MachineModel M3 = MachineModel::paperTwoUnit(4);
  PipelineResult A =
      runAndMeasure(StrategyKind::AllocFirst, paperExample2(), M3);
  PipelineResult C =
      runAndMeasure(StrategyKind::Combined, paperExample2(), M3);
  ASSERT_TRUE(A.Success);
  ASSERT_TRUE(C.Success);
  EXPECT_LE(C.DynCycles, A.DynCycles);
  EXPECT_EQ(C.FalseDeps, 0u);
}

TEST(PipelineTest, DynamicAndStaticCyclesAgreeOnStraightLine) {
  MachineModel M = MachineModel::rs6000(8);
  PipelineResult R =
      runAndMeasure(StrategyKind::Combined, paperExample2(), M);
  ASSERT_TRUE(R.Success);
  EXPECT_EQ(R.DynCycles, R.StaticCycles);
}

TEST(PipelineTest, TightRegistersForceSpillsSomewhere) {
  MachineModel M = MachineModel::rs6000(3);
  unsigned TotalSpills = 0;
  for (auto &[Name, Kernel] : standardKernelSuite()) {
    PipelineResult R = runAndMeasure(StrategyKind::AllocFirst, Kernel, M);
    ASSERT_TRUE(R.Success) << Name << ": " << R.Error;
    EXPECT_TRUE(R.SemanticsPreserved) << Name;
    TotalSpills += R.SpilledWebs;
  }
  EXPECT_GT(TotalSpills, 0u);
}

TEST(PipelineTest, SchedFirstSpillsAtLeastAsMuchOnPressure) {
  // Pre-pass scheduling stretches live ranges; under tight registers it
  // should never spill less than alloc-first, summed over the suite.
  MachineModel M = MachineModel::rs6000(4);
  unsigned AllocFirstSpills = 0, SchedFirstSpills = 0;
  for (auto &[Name, Kernel] : standardKernelSuite()) {
    PipelineResult A = runStrategy(StrategyKind::AllocFirst, Kernel, M);
    PipelineResult S = runStrategy(StrategyKind::SchedFirst, Kernel, M);
    ASSERT_TRUE(A.Success) << Name;
    ASSERT_TRUE(S.Success) << Name;
    AllocFirstSpills += A.SpilledWebs;
    SchedFirstSpills += S.SpilledWebs;
  }
  EXPECT_GE(SchedFirstSpills, AllocFirstSpills);
}

TEST(PipelineTest, CombinedRespectsMachineRegisterFile) {
  for (unsigned Regs : {4u, 6u, 8u}) {
    MachineModel M = MachineModel::vliw4(Regs);
    PipelineResult R =
        runAndMeasure(StrategyKind::Combined, livermoreHydro(2), M);
    ASSERT_TRUE(R.Success) << "regs=" << Regs << ": " << R.Error;
    EXPECT_LE(R.RegistersUsed, Regs);
    EXPECT_TRUE(R.SemanticsPreserved);
  }
}

TEST(PipelineTest, FailureReportedWhenRegistersAbsurdlyTight) {
  // One register cannot hold two live operands of a binary op chain.
  MachineModel M = MachineModel::rs6000(1);
  PipelineResult R =
      runStrategy(StrategyKind::AllocFirst, paperExample2(), M);
  EXPECT_FALSE(R.Success);
  EXPECT_FALSE(R.Error.empty());
}
