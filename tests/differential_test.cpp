//===- tests/differential_test.cpp - Theorem-1 differential oracle --------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
// The paper's core claim as an executable differential oracle, swept
// over ~200 seeded random programs: a coloring of the parallelizable
// interference graph (Pinter) introduces zero false dependences and
// spills nothing when colors suffice, while Chaitin coloring of the
// plain interference graph on the *same* input is free to reuse
// registers across co-issuable instructions — and measurably does,
// somewhere in the corpus. The batch driver leans on exactly this
// invariant, so it is pinned here independently of any pipeline code.
//
//===----------------------------------------------------------------------===//

#include "analysis/Webs.h"
#include "core/FalseDepChecker.h"
#include "core/ParallelInterferenceGraph.h"
#include "core/PinterAllocator.h"
#include "machine/MachineModel.h"
#include "regalloc/ChaitinAllocator.h"
#include "regalloc/InterferenceGraph.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

using namespace pira;

namespace {

/// Ample register budget: "colors suffice" for every generated program.
constexpr unsigned AmpleRegs = 64;

/// Program #I of the corpus: shapes, mixes, and seeds all rotate so the
/// 200 programs cover every generator mode.
Function corpusProgram(unsigned I) {
  static const CfgShape Shapes[] = {CfgShape::Straight, CfgShape::Diamond,
                                    CfgShape::Loop, CfgShape::NestedDiamond,
                                    CfgShape::DoubleLoop};
  RandomProgramOptions Opts;
  Opts.Shape = Shapes[I % 5];
  Opts.InstructionsPerBlock = 10 + I % 7;
  Opts.FloatPercent = 20 + (I * 13) % 60;
  Opts.MemoryPercent = 10 + (I * 7) % 30;
  Opts.Seed = 1 + I * 104729; // distinct primes-stride seeds
  return generateRandomProgram(Opts);
}

/// The machine each corpus program is checked on; rotating models keeps
/// the oracle honest about unit contention, not just data dependences.
MachineModel corpusMachine(unsigned I) {
  switch (I % 3) {
  case 0:
    return MachineModel::paperTwoUnit(AmpleRegs);
  case 1:
    return MachineModel::rs6000(AmpleRegs);
  default:
    return MachineModel::vliw4(AmpleRegs);
  }
}

struct DifferentialOutcome {
  bool PinterColored = false;
  unsigned PinterFalseDeps = 0;
  unsigned PinterDroppedEdges = 0;
  bool ChaitinColored = false;
  unsigned ChaitinFalseDeps = 0;
};

/// Colors one program both ways and counts false dependences in each
/// allocated twin.
DifferentialOutcome runDifferential(const Function &Symbolic,
                                    const MachineModel &M) {
  DifferentialOutcome Out;
  Webs W(Symbolic);
  InterferenceGraph IG(Symbolic, W);
  ParallelInterferenceGraph PIG(Symbolic, W, IG, M);
  std::vector<double> Costs(W.numWebs(), 1.0);

  Allocation Pinter = pinterColor(PIG, Costs, AmpleRegs);
  Out.PinterColored = Pinter.fullyColored();
  Out.PinterDroppedEdges = Pinter.ParallelEdgesDropped;
  if (Out.PinterColored) {
    Function Alloc = Symbolic;
    applyAllocation(Alloc, W, Pinter);
    Out.PinterFalseDeps =
        static_cast<unsigned>(findFalseDependences(Symbolic, Alloc, M).size());
  }

  Allocation Chaitin = chaitinColor(IG.graph(), Costs, AmpleRegs);
  Out.ChaitinColored = Chaitin.fullyColored();
  if (Out.ChaitinColored) {
    Function Alloc = Symbolic;
    applyAllocation(Alloc, W, Chaitin);
    Out.ChaitinFalseDeps =
        static_cast<unsigned>(findFalseDependences(Symbolic, Alloc, M).size());
  }
  return Out;
}

class DifferentialOracle : public testing::TestWithParam<unsigned> {};

} // namespace

TEST_P(DifferentialOracle, PinterIntroducesNoFalseDependence) {
  unsigned I = GetParam();
  Function Symbolic = corpusProgram(I);
  MachineModel M = corpusMachine(I);
  DifferentialOutcome Out = runDifferential(Symbolic, M);

  // Theorem 1, both arms: with ample colors the PIG coloring neither
  // spills nor gives up parallel edges, and the allocated code carries
  // zero false dependences. Chaitin is merely *allowed* to differ; its
  // counts are asserted at corpus level below.
  ASSERT_TRUE(Out.PinterColored)
      << AmpleRegs << " registers must suffice for program " << I;
  EXPECT_EQ(Out.PinterDroppedEdges, 0u) << "program " << I;
  EXPECT_EQ(Out.PinterFalseDeps, 0u)
      << "Theorem 1 violated on program " << I << " (" << M.name() << ")";
}

INSTANTIATE_TEST_SUITE_P(Corpus, DifferentialOracle,
                         testing::Range(0u, 200u));

// The contrast that makes the oracle differential: summed over the whole
// corpus, the baseline introduces false dependences (the PIG coloring,
// per the parameterized test above, introduces none anywhere). If the
// generator ever degenerates to programs with no exploitable
// parallelism, this canary fails before the comparison becomes vacuous.
TEST(DifferentialOracle, ChaitinIntroducesFalseDependencesSomewhere) {
  uint64_t ChaitinTotal = 0;
  uint64_t PinterTotal = 0;
  unsigned BothColored = 0;
  for (unsigned I = 0; I != 200; ++I) {
    Function Symbolic = corpusProgram(I);
    MachineModel M = corpusMachine(I);
    DifferentialOutcome Out = runDifferential(Symbolic, M);
    if (!Out.PinterColored || !Out.ChaitinColored)
      continue;
    ++BothColored;
    ChaitinTotal += Out.ChaitinFalseDeps;
    PinterTotal += Out.PinterFalseDeps;
  }
  // Nearly every program must color under 64 registers in both arms for
  // the comparison to mean anything.
  EXPECT_GE(BothColored, 190u);
  EXPECT_EQ(PinterTotal, 0u);
  EXPECT_GT(ChaitinTotal, 0u)
      << "the baseline never introduced a false dependence across 200 "
         "programs; the differential corpus has lost its discriminating "
         "power";
}
