//===- tests/isolation_test.cpp - Process-isolation and journal tests -----===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
// The out-of-process compilation stack (DESIGN.md §8): the sandboxed
// subprocess helper (support/Subprocess.h), the pirac --worker wire
// protocol (pipeline/Worker.h), the isolated degradation ladder with its
// crash / kill / timeout taxonomy and bounded retries, and the
// crash-safe resumable batch journal (pipeline/Journal.h).
//
// Tests that fork real pirac children need the binary's path; CMake
// passes it as PIRAC_PATH. Without it those tests compile to skips.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "machine/MachineConfig.h"
#include "machine/MachineModel.h"
#include "pipeline/Batch.h"
#include "pipeline/Journal.h"
#include "pipeline/Report.h"
#include "pipeline/Worker.h"
#include "support/FaultInjection.h"
#include "support/Subprocess.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace pira;

namespace {

/// A tiny well-formed function; \p Name keeps digests distinct per test.
Function smallFunction(const std::string &Name = "t") {
  std::string Text = "func @" + Name + R"( regs 8 {
  array a 4
block entry:
  %s0 = li 1
  %s1 = li 2
  %s2 = add %s0, %s1
  %s3 = fmul %s2, %s1
  store a[0], %s3
  ret %s3
}
)";
  Function F;
  std::string Error;
  EXPECT_TRUE(parseFunction(Text, F, Error)) << Error;
  return F;
}

std::vector<BatchItem> smallBatch(unsigned N) {
  std::vector<BatchItem> Batch;
  for (unsigned I = 0; I != N; ++I) {
    std::string Name = "fn" + std::to_string(I);
    Batch.push_back({Name + ".pir", smallFunction(Name)});
  }
  return Batch;
}

/// A fresh per-test scratch path under the gtest temp root.
std::filesystem::path scratchPath(const std::string &Tag) {
  std::filesystem::path P =
      std::filesystem::path(testing::TempDir()) / ("pira_journal_" + Tag);
  std::filesystem::remove_all(P);
  return P;
}

uint64_t counterValue(const std::string &Name) {
  for (const telemetry::Counter *C : telemetry::counters())
    if (Name == C->name())
      return C->value();
  ADD_FAILURE() << "no counter named " << Name;
  return 0;
}

/// Fault tests disarm the harness on the way out so armed sites never
/// leak into the rest of the binary.
class IsolationFaultTest : public testing::Test {
protected:
  void TearDown() override { faultinject::reset(); }

  static void arm(const std::string &Spec) {
    std::string Error;
    ASSERT_TRUE(faultinject::configure(Spec, Error)) << Error;
  }
};

#ifdef PIRAC_PATH
/// Batch options wired for real child processes.
BatchOptions isolatedOptions() {
  BatchOptions Opts;
  Opts.Jobs = 1;
  Opts.Isolate = true;
  Opts.WorkerExe = PIRAC_PATH;
  Opts.RetryBackoffMs = 1; // Keep retry tests fast.
  return Opts;
}

/// The determinism fingerprint for isolated batches: the full stats
/// report with the wall-clock timers neutralized. Counters stay in —
/// spawn and crash tallies are themselves part of the contract.
std::string isolatedFingerprint(const std::vector<BatchItem> &Batch,
                                const MachineModel &M, unsigned Jobs) {
  telemetry::reset();
  BatchOptions Opts = isolatedOptions();
  Opts.Jobs = Jobs;
  BatchResult BR = compileBatch(Batch, M, Opts);
  EXPECT_EQ(BR.Results.size(), Batch.size());
  json::Value Report = makeBatchStatsReport(BR, Batch, "combined", M);
  Report.set("timers", json::Value::array());
  // Histogram *counts* are deterministic but the timed bucket placement
  // is not; identity checks neutralize the section wholesale.
  Report.set("histograms", json::Value::object());
  std::ostringstream OS;
  Report.write(OS, 0);
  return OS.str();
}
#endif // PIRAC_PATH

} // namespace

//===----------------------------------------------------------------------===//
// Subprocess basics
//===----------------------------------------------------------------------===//

TEST(SubprocessTest, StdinRoundTripsToStdout) {
  SubprocessOptions Opts;
  Opts.Argv = {"/bin/cat"};
  Opts.Input = "hello sandbox\n";
  Expected<SubprocessResult> R = runSubprocess(Opts);
  ASSERT_TRUE(R) << R.status().toString();
  EXPECT_EQ(R->ExitCode, 0);
  EXPECT_EQ(R->Signal, 0);
  EXPECT_FALSE(R->TimedOut);
  EXPECT_EQ(R->Stdout, "hello sandbox\n");
}

TEST(SubprocessTest, LargeInputDoesNotDeadlockThePipes) {
  // Bigger than any pipe buffer, so the parent must interleave writing
  // stdin with draining stdout or the two processes deadlock.
  std::string Big(1 << 20, 'x');
  SubprocessOptions Opts;
  Opts.Argv = {"/bin/cat"};
  Opts.Input = Big;
  Opts.TimeoutMs = 30000; // Backstop: a deadlock fails, not hangs.
  Expected<SubprocessResult> R = runSubprocess(Opts);
  ASSERT_TRUE(R) << R.status().toString();
  EXPECT_EQ(R->ExitCode, 0);
  EXPECT_EQ(R->Stdout.size(), Big.size());
  EXPECT_EQ(R->Stdout, Big);
}

TEST(SubprocessTest, ExitCodeAndStderrAreCaptured) {
  SubprocessOptions Opts;
  Opts.Argv = {"/bin/sh", "-c", "echo out; echo err >&2; exit 5"};
  Expected<SubprocessResult> R = runSubprocess(Opts);
  ASSERT_TRUE(R) << R.status().toString();
  EXPECT_EQ(R->ExitCode, 5);
  EXPECT_EQ(R->Signal, 0);
  EXPECT_EQ(R->Stdout, "out\n");
  EXPECT_EQ(R->Stderr, "err\n");
}

TEST(SubprocessTest, FatalSignalIsCaptured) {
  SubprocessOptions Opts;
  Opts.Argv = {"/bin/sh", "-c", "kill -ABRT $$"};
  Expected<SubprocessResult> R = runSubprocess(Opts);
  ASSERT_TRUE(R) << R.status().toString();
  EXPECT_EQ(R->ExitCode, -1);
  EXPECT_EQ(R->Signal, SIGABRT);
  EXPECT_FALSE(R->TimedOut);
}

TEST(SubprocessTest, WallClockTimeoutKills) {
  SubprocessOptions Opts;
  Opts.Argv = {"/bin/sh", "-c", "sleep 30"};
  Opts.TimeoutMs = 200;
  Expected<SubprocessResult> R = runSubprocess(Opts);
  ASSERT_TRUE(R) << R.status().toString();
  EXPECT_TRUE(R->TimedOut);
  EXPECT_EQ(R->Signal, SIGKILL);
}

TEST(SubprocessTest, ExecFailureIsAStatusNotAChildResult) {
  SubprocessOptions Opts;
  Opts.Argv = {"/no/such/binary/anywhere"};
  Expected<SubprocessResult> R = runSubprocess(Opts);
  ASSERT_FALSE(R);
  EXPECT_EQ(R.status().code(), ErrorCode::Internal);
  EXPECT_NE(R.status().toString().find("exec"), std::string::npos);
}

TEST(SubprocessTest, EmptyArgvIsRejected) {
  Expected<SubprocessResult> R = runSubprocess({});
  ASSERT_FALSE(R);
  EXPECT_EQ(R.status().code(), ErrorCode::InvalidArgument);
}

TEST(SubprocessTest, SignalNamesAreStable) {
  EXPECT_EQ(signalName(SIGSEGV), "SIGSEGV");
  EXPECT_EQ(signalName(SIGKILL), "SIGKILL");
  EXPECT_EQ(signalName(SIGXCPU), "SIGXCPU");
  EXPECT_EQ(signalName(250), "signal 250");
}

//===----------------------------------------------------------------------===//
// Worker protocol
//===----------------------------------------------------------------------===//

TEST(WorkerProtocolTest, JobDocumentCarriesTheSchema) {
  BatchOptions Opts;
  json::Value Job = encodeWorkerJob(functionToString(smallFunction()),
                                    machineModelToString(MachineModel::rs6000()),
                                    Opts, "", 0);
  const json::Value *Schema = Job.find("schema");
  ASSERT_NE(Schema, nullptr);
  EXPECT_EQ(Schema->asString(), WorkerJobSchemaName);
  const json::Value *Version = Job.find("version");
  ASSERT_NE(Version, nullptr);
  EXPECT_EQ(Version->asInt(), WorkerProtocolVersion);
}

TEST(WorkerProtocolTest, WorkerModeCompilesAJobInProcess) {
  BatchOptions Opts;
  json::Value Job = encodeWorkerJob(functionToString(smallFunction("wp")),
                                    machineModelToString(MachineModel::rs6000()),
                                    Opts, "", 0);
  std::istringstream In(Job.toString(-1) + "\n");
  std::ostringstream Out, Err;
  EXPECT_EQ(runWorkerMode(In, Out, Err), 0) << Err.str();

  json::Value Doc;
  std::string Error;
  ASSERT_TRUE(json::parse(Out.str(), Doc, Error)) << Error;
  Expected<GuardedResult> G = decodeWorkerResult(Doc);
  ASSERT_TRUE(G) << G.status().toString();
  EXPECT_TRUE(G->Result.Success);
  EXPECT_TRUE(G->Result.SemanticsPreserved);
  EXPECT_FALSE(G->Outcome.Degraded);
  EXPECT_EQ(G->Outcome.Requested, "combined");
}

TEST(WorkerProtocolTest, WorkerResultMatchesInProcessCompile) {
  // The whole point of the protocol: a result that travelled through
  // the child serializes identically to one compiled in-process.
  Function F = smallFunction("twin");
  MachineModel M = MachineModel::rs6000();
  BatchOptions Opts;
  GuardedResult Local = compileFunctionGuarded(F, M, Opts);
  ASSERT_TRUE(Local.Result.Success);

  json::Value Job =
      encodeWorkerJob(functionToString(F), machineModelToString(M), Opts, "", 0);
  std::istringstream In(Job.toString(-1) + "\n");
  std::ostringstream Out, Err;
  ASSERT_EQ(runWorkerMode(In, Out, Err), 0) << Err.str();
  json::Value Doc;
  std::string Error;
  ASSERT_TRUE(json::parse(Out.str(), Doc, Error)) << Error;
  Expected<GuardedResult> Remote = decodeWorkerResult(Doc);
  ASSERT_TRUE(Remote) << Remote.status().toString();

  EXPECT_EQ(functionToString(Remote->Result.Final),
            functionToString(Local.Result.Final));
  EXPECT_EQ(pipelineResultToJson(Remote->Result).toString(-1),
            pipelineResultToJson(Local.Result).toString(-1));
}

TEST(WorkerProtocolTest, UnparsableIrBecomesAFailureDocumentNotAnExit) {
  BatchOptions Opts;
  json::Value Job = encodeWorkerJob(
      "this is not ir", machineModelToString(MachineModel::rs6000()), Opts, "",
      0);
  std::istringstream In(Job.toString(-1) + "\n");
  std::ostringstream Out, Err;
  // The compile failed but the *process* is fine: result doc, exit 0.
  EXPECT_EQ(runWorkerMode(In, Out, Err), 0);
  json::Value Doc;
  std::string Error;
  ASSERT_TRUE(json::parse(Out.str(), Doc, Error)) << Error;
  Expected<GuardedResult> G = decodeWorkerResult(Doc);
  ASSERT_TRUE(G) << G.status().toString();
  EXPECT_FALSE(G->Result.Success);
  EXPECT_FALSE(G->Result.Diag.ok());
}

TEST(WorkerProtocolTest, MalformedJobIsAProtocolError) {
  std::istringstream In("{\"schema\": \"something else\"}\n");
  std::ostringstream Out, Err;
  EXPECT_EQ(runWorkerMode(In, Out, Err), 3);
  EXPECT_FALSE(Err.str().empty());
}

TEST(WorkerProtocolTest, FailedResultRoundTripsTheDiagnostic) {
  GuardedResult G;
  G.Result.Success = false;
  G.Result.Diag = Status::error(ErrorCode::DeadlineExceeded, "sched",
                                "watchdog expired");
  G.Result.Diag.addContext("function @x");
  G.Outcome.Requested = "combined";
  G.Outcome.Used = "";
  G.Outcome.FailedAttempts.push_back(
      {"combined",
       Status::error(ErrorCode::DeadlineExceeded, "sched", "watchdog expired")});

  json::Value Doc = encodeWorkerResult(G);
  Expected<GuardedResult> Back = decodeWorkerResult(Doc);
  ASSERT_TRUE(Back) << Back.status().toString();
  EXPECT_FALSE(Back->Result.Success);
  EXPECT_EQ(Back->Result.Diag.code(), ErrorCode::DeadlineExceeded);
  EXPECT_EQ(Back->Result.Diag.toString(), G.Result.Diag.toString());
  ASSERT_EQ(Back->Outcome.FailedAttempts.size(), 1u);
  EXPECT_EQ(Back->Outcome.FailedAttempts[0].Rung, "combined");
}

//===----------------------------------------------------------------------===//
// Isolated batches (real pirac children)
//===----------------------------------------------------------------------===//

#ifdef PIRAC_PATH

TEST(IsolatedBatchTest, ResultsMatchInProcessCompilation) {
  std::vector<BatchItem> Batch = smallBatch(3);
  MachineModel M = MachineModel::rs6000();

  BatchOptions Plain;
  Plain.Jobs = 1;
  BatchResult Local = compileBatch(Batch, M, Plain);
  BatchResult Remote = compileBatch(Batch, M, isolatedOptions());

  ASSERT_EQ(Remote.Results.size(), Local.Results.size());
  EXPECT_EQ(Remote.Succeeded, Local.Succeeded);
  EXPECT_EQ(Remote.Isolated, 3u);
  EXPECT_EQ(Remote.Crashes, 0u);
  for (size_t I = 0; I != Batch.size(); ++I) {
    ASSERT_TRUE(Remote.Results[I].Success);
    EXPECT_EQ(pipelineResultToJson(Remote.Results[I]).toString(-1),
              pipelineResultToJson(Local.Results[I]).toString(-1));
    EXPECT_TRUE(Remote.Outcomes[I].Isolation.Isolated);
    EXPECT_EQ(Remote.Outcomes[I].Isolation.Spawns, 1u);
  }
}

TEST_F(IsolationFaultTest, ChildCrashBecomesAStructuredDiagnostic) {
  arm("crash.segv:3");
  std::vector<BatchItem> Batch = smallBatch(3);
  MachineModel M = MachineModel::rs6000();
  BatchResult BR = compileBatch(Batch, M, isolatedOptions());

  // Position 0 fires on every rung; the other functions are untouched.
  ASSERT_EQ(BR.Results.size(), 3u);
  EXPECT_FALSE(BR.Results[0].Success);
  EXPECT_EQ(BR.Results[0].Diag.code(), ErrorCode::ChildCrashed);
  EXPECT_EQ(BR.Outcomes[0].Isolation.Crashes, 3u); // One per ladder rung.
  EXPECT_EQ(BR.Outcomes[0].Isolation.Signal, SIGSEGV);
  EXPECT_TRUE(BR.Results[1].Success);
  EXPECT_TRUE(BR.Results[2].Success);
  EXPECT_EQ(BR.Succeeded, 2u);
  EXPECT_EQ(BR.Crashes, 3u);
}

TEST_F(IsolationFaultTest, ChildKillRetriesDeterministicallyThenGivesUp) {
  arm("crash.oom:2"); // OOM path ends in SIGKILL, the retryable death.
  std::vector<BatchItem> Batch = smallBatch(2);
  MachineModel M = MachineModel::rs6000();
  BatchOptions Opts = isolatedOptions();
  Opts.MaxRetries = 2;
  BatchResult BR = compileBatch(Batch, M, Opts);

  EXPECT_FALSE(BR.Results[0].Success);
  EXPECT_EQ(BR.Results[0].Diag.code(), ErrorCode::ChildKilled);
  // Three ladder rungs, each tried 1 + MaxRetries times.
  EXPECT_EQ(BR.Outcomes[0].Isolation.Spawns, 9u);
  EXPECT_EQ(BR.Outcomes[0].Isolation.Retries, 6u);
  EXPECT_EQ(BR.Retries, 6u);
  EXPECT_TRUE(BR.Results[1].Success);
}

TEST_F(IsolationFaultTest, ChildHangBecomesChildTimeout) {
  arm("crash.hang:2");
  std::vector<BatchItem> Batch = smallBatch(2);
  MachineModel M = MachineModel::rs6000();
  BatchOptions Opts = isolatedOptions();
  Opts.ChildTimeoutMs = 3000;
  BatchResult BR = compileBatch(Batch, M, Opts);

  EXPECT_FALSE(BR.Results[0].Success);
  EXPECT_EQ(BR.Results[0].Diag.code(), ErrorCode::ChildTimeout);
  // A timeout is fatal to the whole ladder: retrying a hang would hang
  // again, and the lower rungs get the same wall clock.
  EXPECT_EQ(BR.Outcomes[0].Isolation.Spawns, 1u);
  EXPECT_EQ(BR.Outcomes[0].Isolation.Timeouts, 1u);
  EXPECT_TRUE(BR.Outcomes[0].Isolation.TimedOut);
  EXPECT_TRUE(BR.Results[1].Success);
  EXPECT_EQ(BR.Timeouts, 1u);
}

TEST_F(IsolationFaultTest, CrashingBatchReportIsWorkerCountInvariant) {
  arm("crash.segv:3");
  std::vector<BatchItem> Batch = smallBatch(5);
  MachineModel M = MachineModel::rs6000();
  std::string One = isolatedFingerprint(Batch, M, 1);
  std::string Two = isolatedFingerprint(Batch, M, 2);
  std::string Eight = isolatedFingerprint(Batch, M, 8);
  EXPECT_EQ(One, Two);
  EXPECT_EQ(One, Eight);
  telemetry::reset();
}

TEST(IsolatedBatchTest, ChildTelemetryMergesIntoTheParentRegistries) {
  telemetry::reset();
  telemetry::setEnabled(true);
  std::vector<BatchItem> Batch = smallBatch(2);
  MachineModel M = MachineModel::rs6000();
  BatchResult BR = compileBatch(Batch, M, isolatedOptions());
  telemetry::setEnabled(false);
  ASSERT_EQ(BR.Succeeded, 2u);

  // The pipeline only ever ran inside the children, so these tallies can
  // reach the parent registry only through the v2 result documents.
  EXPECT_GE(counterValue("NumPipelineRuns"), 2u);
  EXPECT_GE(counterValue("NumBlocksListScheduled"), 2u);
  // Same for the rung-latency histogram: one single-rung child compile
  // per function, recorded child-side and merged up.
  telemetry::Histogram *Rung = telemetry::findHistogram("LadderRungLatency");
  ASSERT_NE(Rung, nullptr);
  EXPECT_EQ(Rung->count(), 2u);

  // Child trace events arrive with the child's pid kept, re-based onto
  // the parent's clock no earlier than the parent's own first event.
  bool SawChildEvent = false;
  uint64_t ParentMinStart = UINT64_MAX;
  for (const telemetry::TimedEvent &E : telemetry::events())
    if (E.Pid == telemetry::processId())
      ParentMinStart = std::min(ParentMinStart, E.StartNs);
  for (const telemetry::TimedEvent &E : telemetry::events()) {
    if (E.Pid == telemetry::processId())
      continue;
    SawChildEvent = true;
    EXPECT_GE(E.StartNs, ParentMinStart);
  }
  EXPECT_TRUE(SawChildEvent);
  telemetry::reset();
}

/// The trace-side determinism fingerprint: every recorded event path
/// (parent and merged child alike) plus every histogram's sample count,
/// both order-normalized. Timestamps, durations, and bucket placement
/// are the wall-clock tail and stay out.
std::string tracedFingerprint(const std::vector<BatchItem> &Batch,
                              const MachineModel &M, unsigned Jobs) {
  telemetry::reset();
  telemetry::setEnabled(true);
  BatchOptions Opts = isolatedOptions();
  Opts.Jobs = Jobs;
  compileBatch(Batch, M, Opts);
  std::vector<std::string> Paths;
  for (const telemetry::TimedEvent &E : telemetry::events())
    Paths.push_back(E.Path);
  std::sort(Paths.begin(), Paths.end());
  std::ostringstream OS;
  for (const std::string &P : Paths)
    OS << P << '\n';
  for (const telemetry::Histogram *H : telemetry::histograms())
    OS << H->name() << '=' << H->count() << '\n';
  telemetry::setEnabled(false);
  telemetry::reset();
  return OS.str();
}

TEST_F(IsolationFaultTest, CrashingBatchTraceIsWorkerCountInvariant) {
  arm("crash.segv:3");
  std::vector<BatchItem> Batch = smallBatch(5);
  MachineModel M = MachineModel::rs6000();
  std::string One = tracedFingerprint(Batch, M, 1);
  std::string Two = tracedFingerprint(Batch, M, 2);
  std::string Eight = tracedFingerprint(Batch, M, 8);
  EXPECT_EQ(One, Two);
  EXPECT_EQ(One, Eight);
}

#endif // PIRAC_PATH

//===----------------------------------------------------------------------===//
// Journal digest
//===----------------------------------------------------------------------===//

TEST(JournalDigestTest, SensitiveToConfigButNotWorkerCount) {
  std::vector<BatchItem> Batch = smallBatch(2);
  MachineModel M = MachineModel::rs6000();
  BatchOptions Opts;
  std::string Base = computeJournalDigest(Batch, M, Opts);
  EXPECT_EQ(Base.size(), 64u);

  BatchOptions Jobs = Opts;
  Jobs.Jobs = 8;
  EXPECT_EQ(computeJournalDigest(Batch, M, Jobs), Base);

  BatchOptions Strat = Opts;
  Strat.Strategy = StrategyKind::AllocFirst;
  EXPECT_NE(computeJournalDigest(Batch, M, Strat), Base);

  BatchOptions Retries = Opts;
  Retries.MaxRetries = 3;
  EXPECT_NE(computeJournalDigest(Batch, M, Retries), Base);

  std::vector<BatchItem> Fewer(Batch.begin(), Batch.begin() + 1);
  EXPECT_NE(computeJournalDigest(Fewer, M, Opts), Base);

  MachineModel Tight = MachineModel::rs6000(6);
  EXPECT_NE(computeJournalDigest(Batch, Tight, Opts), Base);
}

//===----------------------------------------------------------------------===//
// Journal resume
//===----------------------------------------------------------------------===//

namespace {

/// Report fingerprint for resume-identity checks: timers are wall clock
/// and counters legitimately differ between a clean and a resumed run
/// (a replay skips the compile-phase counters), so both are stripped.
std::string resumeFingerprint(const BatchResult &BR,
                              const std::vector<BatchItem> &Batch,
                              const MachineModel &M) {
  json::Value Report = makeBatchStatsReport(BR, Batch, "combined", M);
  Report.set("timers", json::Value::array());
  Report.set("counters", json::Value::array());
  Report.set("histograms", json::Value::object());
  std::ostringstream OS;
  Report.write(OS, 0);
  return OS.str();
}

} // namespace

TEST(JournalTest, ResumeReplaysEveryRecordedPosition) {
  std::filesystem::path Path = scratchPath("replay");
  std::vector<BatchItem> Batch = smallBatch(4);
  MachineModel M = MachineModel::rs6000();
  BatchOptions Opts;
  Opts.Jobs = 1;
  std::string Digest = computeJournalDigest(Batch, M, Opts);

  BatchResult Clean;
  {
    BatchJournal J;
    ASSERT_TRUE(J.open(Path.string(), Digest, Batch.size(), false).ok());
    Opts.Journal = &J;
    Clean = compileBatch(Batch, M, Opts);
    ASSERT_EQ(Clean.Succeeded, 4u);
    EXPECT_EQ(Clean.Resumed, 0u);
    EXPECT_EQ(J.appendFailures(), 0u);
  }

  BatchJournal J;
  ASSERT_TRUE(J.open(Path.string(), Digest, Batch.size(), true).ok());
  EXPECT_EQ(J.resumedCount(), 4u);
  Opts.Journal = &J;
  BatchResult Resumed = compileBatch(Batch, M, Opts);
  EXPECT_EQ(Resumed.Succeeded, 4u);
  EXPECT_EQ(Resumed.Resumed, 4u);
  for (const CompileOutcome &O : Resumed.Outcomes)
    EXPECT_TRUE(O.Resumed);

  // The resumed run's report is the clean run's report.
  EXPECT_EQ(resumeFingerprint(Resumed, Batch, M),
            resumeFingerprint(Clean, Batch, M));
  std::filesystem::remove(Path);
}

TEST(JournalTest, PartialJournalRecompilesOnlyTheMissingTail) {
  std::filesystem::path Path = scratchPath("partial");
  std::vector<BatchItem> Batch = smallBatch(4);
  MachineModel M = MachineModel::rs6000();
  BatchOptions Opts;
  Opts.Jobs = 1;
  std::string Digest = computeJournalDigest(Batch, M, Opts);

  BatchResult Clean;
  {
    BatchJournal J;
    ASSERT_TRUE(J.open(Path.string(), Digest, Batch.size(), false).ok());
    Opts.Journal = &J;
    Clean = compileBatch(Batch, M, Opts);
  }

  // Keep the header and the first two records — as if the run died
  // mid-batch — then resume.
  {
    std::ifstream In(Path);
    std::string Line, Kept;
    for (int I = 0; I != 3 && std::getline(In, Line); ++I)
      Kept += Line + "\n";
    In.close();
    std::ofstream(Path, std::ios::trunc) << Kept;
  }

  BatchJournal J;
  ASSERT_TRUE(J.open(Path.string(), Digest, Batch.size(), true).ok());
  EXPECT_EQ(J.resumedCount(), 2u);
  Opts.Journal = &J;
  BatchResult Resumed = compileBatch(Batch, M, Opts);
  EXPECT_EQ(Resumed.Succeeded, 4u);
  EXPECT_EQ(Resumed.Resumed, 2u);
  EXPECT_EQ(resumeFingerprint(Resumed, Batch, M),
            resumeFingerprint(Clean, Batch, M));
  std::filesystem::remove(Path);
}

TEST(JournalTest, TornTrailingRecordIsTruncatedAway) {
  std::filesystem::path Path = scratchPath("torn");
  std::vector<BatchItem> Batch = smallBatch(3);
  MachineModel M = MachineModel::rs6000();
  BatchOptions Opts;
  Opts.Jobs = 1;
  std::string Digest = computeJournalDigest(Batch, M, Opts);
  {
    BatchJournal J;
    ASSERT_TRUE(J.open(Path.string(), Digest, Batch.size(), false).ok());
    Opts.Journal = &J;
    ASSERT_EQ(compileBatch(Batch, M, Opts).Succeeded, 3u);
  }
  uintmax_t CleanSize = std::filesystem::file_size(Path);

  // A kill -9 mid-append leaves a partial last line.
  {
    std::ofstream Out(Path, std::ios::app);
    Out << "{\"position\": 9, \"name\": \"torn";
  }
  ASSERT_GT(std::filesystem::file_size(Path), CleanSize);

  BatchJournal J;
  ASSERT_TRUE(J.open(Path.string(), Digest, Batch.size(), true).ok());
  EXPECT_EQ(J.resumedCount(), 3u); // The torn record never replays.
  // And the file itself was truncated back to the last good record, so
  // new appends extend a well-formed journal.
  EXPECT_EQ(std::filesystem::file_size(Path), CleanSize);
  std::filesystem::remove(Path);
}

TEST(JournalTest, DigestMismatchRefusesToResume) {
  std::filesystem::path Path = scratchPath("mismatch");
  std::vector<BatchItem> Batch = smallBatch(2);
  MachineModel M = MachineModel::rs6000();
  BatchOptions Opts;
  Opts.Jobs = 1;
  std::string Digest = computeJournalDigest(Batch, M, Opts);
  {
    BatchJournal J;
    ASSERT_TRUE(J.open(Path.string(), Digest, Batch.size(), false).ok());
    Opts.Journal = &J;
    compileBatch(Batch, M, Opts);
  }

  BatchOptions Other = Opts;
  Other.Strategy = StrategyKind::AllocFirst;
  std::string OtherDigest = computeJournalDigest(Batch, M, Other);
  ASSERT_NE(OtherDigest, Digest);
  BatchJournal J;
  Status S = J.open(Path.string(), OtherDigest, Batch.size(), true);
  EXPECT_FALSE(S.ok());
  EXPECT_NE(S.toString().find("digest"), std::string::npos);
  std::filesystem::remove(Path);
}

TEST(JournalTest, ResumingANonexistentFileStartsFresh) {
  std::filesystem::path Path = scratchPath("fresh");
  std::vector<BatchItem> Batch = smallBatch(1);
  MachineModel M = MachineModel::rs6000();
  BatchOptions Opts;
  std::string Digest = computeJournalDigest(Batch, M, Opts);
  BatchJournal J;
  ASSERT_TRUE(J.open(Path.string(), Digest, Batch.size(), true).ok());
  EXPECT_EQ(J.resumedCount(), 0u);
  EXPECT_TRUE(std::filesystem::exists(Path)); // Created, header written.
  std::filesystem::remove(Path);
}

TEST(JournalTest, ReplayTalliesLandInTheTelemetryCounters) {
  std::filesystem::path Path = scratchPath("counters");
  std::vector<BatchItem> Batch = smallBatch(2);
  MachineModel M = MachineModel::rs6000();
  BatchOptions Opts;
  Opts.Jobs = 1;
  std::string Digest = computeJournalDigest(Batch, M, Opts);
  {
    BatchJournal J;
    ASSERT_TRUE(J.open(Path.string(), Digest, Batch.size(), false).ok());
    Opts.Journal = &J;
    compileBatch(Batch, M, Opts);
  }

  telemetry::reset();
  BatchJournal J;
  ASSERT_TRUE(J.open(Path.string(), Digest, Batch.size(), true).ok());
  Opts.Journal = &J;
  compileBatch(Batch, M, Opts);
  EXPECT_EQ(counterValue("NumJournalRecordsReplayed"), 2u);
  EXPECT_EQ(counterValue("NumJournalRecordsWritten"), 0u);
  telemetry::reset();
  std::filesystem::remove(Path);
}

TEST(JournalTest, ZeroLengthJournalStartsFreshInsteadOfFailing) {
  // A previous run died between creating the file and writing the
  // header: resume must start over, not error out or replay garbage.
  std::filesystem::path Path = scratchPath("empty");
  { std::ofstream Out(Path); }
  ASSERT_TRUE(std::filesystem::exists(Path));
  ASSERT_EQ(std::filesystem::file_size(Path), 0u);

  std::vector<BatchItem> Batch = smallBatch(2);
  MachineModel M = MachineModel::rs6000();
  BatchOptions Opts;
  Opts.Jobs = 1;
  std::string Digest = computeJournalDigest(Batch, M, Opts);

  telemetry::reset();
  BatchJournal J;
  ASSERT_TRUE(J.open(Path.string(), Digest, Batch.size(), true).ok());
  EXPECT_EQ(J.resumedCount(), 0u);
  EXPECT_EQ(counterValue("NumJournalEmptyResumes"), 1u);
  EXPECT_GT(std::filesystem::file_size(Path), 0u); // header landed

  // And the restarted journal is fully functional: the batch records
  // into it and a second resume replays everything.
  Opts.Journal = &J;
  EXPECT_EQ(compileBatch(Batch, M, Opts).Succeeded, 2u);
  BatchJournal J2;
  ASSERT_TRUE(J2.open(Path.string(), Digest, Batch.size(), true).ok());
  EXPECT_EQ(J2.resumedCount(), 2u);
  telemetry::reset();
  std::filesystem::remove(Path);
}

TEST(JournalTest, HeaderOnlyJournalResumesWithZeroRecords) {
  // The run died after the header fsync but before any record: a
  // legitimate journal with nothing done yet.
  std::filesystem::path Path = scratchPath("headeronly");
  std::vector<BatchItem> Batch = smallBatch(2);
  MachineModel M = MachineModel::rs6000();
  BatchOptions Opts;
  Opts.Jobs = 1;
  std::string Digest = computeJournalDigest(Batch, M, Opts);
  {
    BatchJournal J;
    ASSERT_TRUE(J.open(Path.string(), Digest, Batch.size(), false).ok());
  }
  uintmax_t HeaderSize = std::filesystem::file_size(Path);
  ASSERT_GT(HeaderSize, 0u);

  BatchJournal J;
  ASSERT_TRUE(J.open(Path.string(), Digest, Batch.size(), true).ok());
  EXPECT_EQ(J.resumedCount(), 0u);
  // The resume must not have rewritten (truncated) the file.
  EXPECT_EQ(std::filesystem::file_size(Path), HeaderSize);
  // Appends continue from the header, on a record boundary.
  Opts.Journal = &J;
  EXPECT_EQ(compileBatch(Batch, M, Opts).Succeeded, 2u);
  BatchJournal J2;
  ASSERT_TRUE(J2.open(Path.string(), Digest, Batch.size(), true).ok());
  EXPECT_EQ(J2.resumedCount(), 2u);
  std::filesystem::remove(Path);
}

TEST(JournalTest, TornHeaderLineRestartsFresh) {
  // kill -9 mid-header-write leaves a partial first line with no
  // newline; there is nothing salvageable, so the journal restarts.
  std::filesystem::path Path = scratchPath("tornheader");
  {
    std::ofstream Out(Path);
    Out << "{\"schema\": \"pira.journal\", \"vers";
  }
  std::vector<BatchItem> Batch = smallBatch(1);
  MachineModel M = MachineModel::rs6000();
  BatchOptions Opts;
  std::string Digest = computeJournalDigest(Batch, M, Opts);

  telemetry::reset();
  BatchJournal J;
  ASSERT_TRUE(J.open(Path.string(), Digest, Batch.size(), true).ok());
  EXPECT_EQ(J.resumedCount(), 0u);
  EXPECT_EQ(counterValue("NumJournalHeaderRestarts"), 1u);
  EXPECT_EQ(counterValue("NumJournalEmptyResumes"), 0u);
  telemetry::reset();
  std::filesystem::remove(Path);
}

TEST(JournalTest, ForeignFileIsRefusedNotOverwritten) {
  // A complete (newline-terminated) first line that is not JSON means
  // the path points at somebody else's file; resuming must refuse
  // rather than truncate it into a fresh journal.
  std::filesystem::path Path = scratchPath("foreign");
  const std::string Contents = "PID 1234 started at 12:00\n";
  {
    std::ofstream Out(Path);
    Out << Contents;
  }
  std::vector<BatchItem> Batch = smallBatch(1);
  MachineModel M = MachineModel::rs6000();
  BatchOptions Opts;
  std::string Digest = computeJournalDigest(Batch, M, Opts);

  BatchJournal J;
  Status S = J.open(Path.string(), Digest, Batch.size(), true);
  EXPECT_FALSE(S.ok());
  EXPECT_NE(S.toString().find("not a pira.journal"), std::string::npos);

  // The file survives byte-for-byte.
  std::ifstream In(Path);
  std::stringstream SS;
  SS << In.rdbuf();
  EXPECT_EQ(SS.str(), Contents);
  std::filesystem::remove(Path);
}
