//===- tests/serve_test.cpp - Compile-service daemon tests ----------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
// The `pirac serve` stack (DESIGN.md §11): the length-prefixed framing
// layer and its hostile-input taxonomy (service/Framing.h), listener
// setup with stale-socket reclamation (service/Listener.h), the daemon
// itself — admission control, overload shedding, per-client budgets,
// server-side deadlines, graceful drain vs fast abort — and the
// reconnecting client whose retry loop rides out a daemon restart
// (service/Client.h).
//
// Every test runs the real Server on a background thread, over real
// sockets (loopback TCP with a kernel-assigned port, or a unix socket
// under the temp root); nothing is mocked. Hostility tests speak raw
// frames so they can violate the protocol on purpose.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "machine/MachineConfig.h"
#include "machine/MachineModel.h"
#include "pipeline/Batch.h"
#include "pipeline/Report.h"
#include "pipeline/Worker.h"
#include "service/Client.h"
#include "service/Framing.h"
#include "service/Listener.h"
#include "service/Server.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace pira;
using namespace pira::service;

namespace {

/// A tiny well-formed function in canonical text form.
std::string smallFunctionText(const std::string &Name) {
  return "func @" + Name + R"( regs 8 {
block entry:
  %s0 = li 1
  %s1 = li 2
  %s2 = add %s0, %s1
  %s3 = fmul %s2, %s1
  ret %s3
}
)";
}

/// A deliberately expensive function (~240 instructions): long enough
/// that admission races in the budget / queue-full / deadline tests
/// have tens of milliseconds of slack, not microseconds.
std::string heavyFunctionText(const std::string &Name) {
  std::string T = "func @" + Name + " regs 240 {\nblock entry:\n"
                  "  %s0 = li 1\n  %s1 = li 3\n";
  for (int I = 2; I != 240; ++I)
    T += "  %s" + std::to_string(I) + " = " +
         (I % 3 == 0 ? "fmul" : "add") + " %s" + std::to_string(I - 1) +
         ", %s" + std::to_string(I / 2) + "\n";
  T += "  ret %s239\n}\n";
  return T;
}

std::string machineText() {
  return machineModelToString(MachineModel::rs6000());
}

/// A pira.job document for \p IRText under default batch options.
json::Value makeJob(const std::string &IRText,
                    const std::string &FaultSpec = "") {
  BatchOptions Opts;
  Opts.Jobs = 1;
  return encodeWorkerJob(IRText, machineText(), Opts, FaultSpec,
                         /*FaultKey=*/0);
}

/// A raw loopback connection to \p Port; tests that must break the
/// protocol on purpose cannot go through ServiceClient.
int rawConnect(uint16_t Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(Fd, 0);
  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                      sizeof(Addr)),
            0)
      << std::strerror(errno);
  return Fd;
}

/// Reads one frame and parses it; fails the test on anything else.
json::Value readResponse(int Fd, int TimeoutMs = 30000) {
  std::string Payload;
  FrameStatus S = readFrame(Fd, Payload, DefaultMaxFrameBytes, TimeoutMs);
  EXPECT_EQ(S, FrameStatus::Ok) << frameStatusName(S);
  json::Value Doc;
  std::string Error;
  EXPECT_TRUE(json::parse(Payload, Doc, Error)) << Error;
  return Doc;
}

uint64_t responseId(const json::Value &Doc) {
  const json::Value *Id = Doc.find("id");
  return Id != nullptr && Id->isInt() ? static_cast<uint64_t>(Id->asInt())
                                      : ~0ull;
}

std::string responseType(const json::Value &Doc) {
  const json::Value *T = Doc.find("type");
  return T != nullptr && T->isString() ? T->asString() : "";
}

std::string responseError(const json::Value &Doc) {
  const json::Value *E = Doc.find("error");
  return E != nullptr && E->isString() ? E->asString() : "";
}

/// A compile request envelope around \p Job.
json::Value compileRequest(uint64_t Id, const json::Value &Job,
                           uint64_t DeadlineMs = 0) {
  json::Value Req = requestEnvelope(Id, "compile");
  if (DeadlineMs != 0)
    Req.set("deadline_ms", DeadlineMs);
  Req.set("job", Job);
  return Req;
}

/// Runs the real Server on a background thread and owns its shutdown.
class ServeTest : public testing::Test {
protected:
  void TearDown() override { stop(/*Abort=*/true); }

  /// Binds and runs a server; fails the test if bind() does.
  void start(ServerOptions O) {
    stop(/*Abort=*/true);
    Srv = std::make_unique<Server>(std::move(O));
    Status S = Srv->bind();
    ASSERT_TRUE(S.ok()) << S.toString();
    Runner = std::thread([this] { Exit = Srv->run(); });
  }

  /// TCP-only options with a kernel-assigned port; tests override what
  /// they probe. Two executors keep the suite light.
  static ServerOptions tcpOptions() {
    ServerOptions O;
    O.TcpPort = 0;
    O.Threads = 2;
    return O;
  }

  int stop(bool Abort) {
    if (!Runner.joinable())
      return Exit;
    if (Abort)
      Srv->requestAbort();
    else
      Srv->requestDrain();
    Runner.join();
    return Exit;
  }

  ClientOptions clientOptions() const {
    ClientOptions C;
    C.TcpPort = Srv->tcpPort();
    C.RetryBackoffMs = 1;
    C.BackoffCapMs = 10;
    return C;
  }

  std::unique_ptr<Server> Srv;
  std::thread Runner;
  int Exit = -1;
};

} // namespace

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

namespace {

/// A connected socketpair for exercising readFrame against a peer the
/// test controls byte-by-byte.
struct Pair {
  int A = -1, B = -1;
  Pair() {
    int Fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
    A = Fds[0];
    B = Fds[1];
  }
  ~Pair() {
    if (A >= 0)
      ::close(A);
    if (B >= 0)
      ::close(B);
  }
  void closeB() {
    ::close(B);
    B = -1;
  }
};

} // namespace

TEST(FramingTest, RoundTripsAPayload) {
  Pair P;
  const std::string Payload = "{\"answer\": 42}";
  std::string Framed = frameBytes(Payload);
  ASSERT_EQ(Framed.size(), Payload.size() + 4);
  // Big-endian length prefix.
  EXPECT_EQ(static_cast<unsigned char>(Framed[3]), Payload.size());
  EXPECT_TRUE(writeFrame(P.B, Payload));
  std::string Out;
  EXPECT_EQ(readFrame(P.A, Out, DefaultMaxFrameBytes, 1000),
            FrameStatus::Ok);
  EXPECT_EQ(Out, Payload);
}

TEST(FramingTest, OversizedHeaderIsRejectedBeforeThePayload) {
  Pair P;
  // A header announcing 1 MiB against a 4 KiB cap: rejected from the
  // four header bytes alone; no payload is ever read.
  unsigned char Header[4] = {0x00, 0x10, 0x00, 0x00};
  ASSERT_EQ(::write(P.B, Header, 4), 4);
  std::string Out;
  EXPECT_EQ(readFrame(P.A, Out, /*MaxBytes=*/4096, 1000),
            FrameStatus::TooLarge);
}

TEST(FramingTest, ZeroLengthHeaderIsBadLength) {
  Pair P;
  unsigned char Header[4] = {0, 0, 0, 0};
  ASSERT_EQ(::write(P.B, Header, 4), 4);
  std::string Out;
  EXPECT_EQ(readFrame(P.A, Out, DefaultMaxFrameBytes, 1000),
            FrameStatus::BadLength);
}

TEST(FramingTest, CleanCloseOnABoundaryIsEof) {
  Pair P;
  P.closeB();
  std::string Out;
  EXPECT_EQ(readFrame(P.A, Out, DefaultMaxFrameBytes, 1000),
            FrameStatus::Eof);
}

TEST(FramingTest, CloseMidFrameIsAnErrorNotEof) {
  Pair P;
  // Header promises ten bytes; three arrive, then the peer vanishes. A
  // truncated frame must never be mistaken for a clean goodbye.
  unsigned char Header[4] = {0, 0, 0, 10};
  ASSERT_EQ(::write(P.B, Header, 4), 4);
  ASSERT_EQ(::write(P.B, "abc", 3), 3);
  P.closeB();
  std::string Out;
  EXPECT_EQ(readFrame(P.A, Out, DefaultMaxFrameBytes, 1000),
            FrameStatus::Error);
}

TEST(FramingTest, StalledPeerTripsTheInactivityTimeout) {
  Pair P;
  // A slowloris peer: two header bytes, then silence.
  ASSERT_EQ(::write(P.B, "\0\0", 2), 2);
  std::string Out;
  EXPECT_EQ(readFrame(P.A, Out, DefaultMaxFrameBytes, /*IdleTimeoutMs=*/50),
            FrameStatus::Timeout);
}

//===----------------------------------------------------------------------===//
// Listener
//===----------------------------------------------------------------------===//

TEST(ListenerTest, StaleUnixSocketNodeIsReclaimed) {
  // A kill -9'd daemon leaves its socket node behind; the next daemon
  // must bind anyway — crash recovery depends on it.
  std::string Path = std::filesystem::path(testing::TempDir()) /
                     ("pira_stale_" + std::to_string(::getpid()) + ".sock");
  {
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(Fd, 0);
    sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    ASSERT_LT(Path.size(), sizeof(Addr.sun_path));
    std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
    ASSERT_EQ(::bind(Fd, reinterpret_cast<sockaddr *>(&Addr),
                     sizeof(Addr)),
              0)
        << std::strerror(errno);
    ::close(Fd); // The fd dies; the filesystem node survives.
  }
  ASSERT_TRUE(std::filesystem::exists(Path));

  Expected<Listener> L = Listener::listenUnix(Path);
  ASSERT_TRUE(bool(L)) << L.status().toString();
  EXPECT_TRUE(L->valid());
  L->close();
  // And a clean close removes the node it owned.
  EXPECT_FALSE(std::filesystem::exists(Path));
}

TEST(ListenerTest, KernelAssignedTcpPortIsRecovered) {
  Expected<Listener> L = Listener::listenTcp(0);
  ASSERT_TRUE(bool(L)) << L.status().toString();
  EXPECT_NE(L->port(), 0); // The 0 request resolved to a real port.
}

//===----------------------------------------------------------------------===//
// Server lifecycle
//===----------------------------------------------------------------------===//

TEST_F(ServeTest, DrainReturnsZeroAndAbortReturns130) {
  start(tcpOptions());
  ServiceClient C(clientOptions());
  Expected<json::Value> H = C.health();
  ASSERT_TRUE(bool(H)) << H.status().toString();
  EXPECT_EQ(H->find("status")->asString(), "ok");
  EXPECT_EQ(stop(/*Abort=*/false), 0);

  start(tcpOptions());
  EXPECT_EQ(stop(/*Abort=*/true), 130);
}

TEST_F(ServeTest, CompileOverTheWireMatchesInProcess) {
  start(tcpOptions());
  json::Value Job = makeJob(smallFunctionText("wire"));

  Expected<WorkerJob> Decoded = decodeWorkerJob(Job);
  ASSERT_TRUE(bool(Decoded)) << Decoded.status().toString();
  GuardedResult Local = runWorkerJob(*Decoded);

  ServiceClient C(clientOptions());
  Expected<GuardedResult> Remote = C.compile(Job);
  ASSERT_TRUE(bool(Remote)) << Remote.status().toString();
  ASSERT_TRUE(Remote->Result.Success) << Remote->Result.Error;

  // The full result document — allocated code, schedule, every scalar —
  // is byte-identical to the in-process compile's.
  EXPECT_EQ(encodeWorkerResult(*Remote).toString(-1),
            encodeWorkerResult(Local).toString(-1));
}

TEST_F(ServeTest, ConcurrentClientsAllGetServed) {
  start(tcpOptions());
  constexpr int NumClients = 8, PerClient = 4;
  std::vector<std::thread> Threads;
  std::vector<unsigned> Ok(NumClients, 0);
  for (int T = 0; T != NumClients; ++T)
    Threads.emplace_back([&, T] {
      ServiceClient C(clientOptions());
      for (int I = 0; I != PerClient; ++I) {
        json::Value Job = makeJob(smallFunctionText(
            "c" + std::to_string(T) + "_" + std::to_string(I)));
        Expected<GuardedResult> G = C.compile(Job);
        if (G && G->Result.Success)
          ++Ok[T];
      }
    });
  for (std::thread &T : Threads)
    T.join();
  for (int T = 0; T != NumClients; ++T)
    EXPECT_EQ(Ok[T], unsigned(PerClient)) << "client " << T;

  ServiceClient C(clientOptions());
  Expected<json::Value> Stats = C.stats();
  ASSERT_TRUE(bool(Stats)) << Stats.status().toString();
  EXPECT_EQ(Stats->find("schema")->asString(), ServeStatsSchemaName);
  EXPECT_GE(Stats->find("requests")->find("compiles")->asInt(),
            NumClients * PerClient);
}

TEST_F(ServeTest, TheCacheStaysWarmAcrossRequestsAndClients) {
  start(tcpOptions());
  json::Value Job = makeJob(smallFunctionText("warm"));

  // Two separate clients, same job: the second is served from the
  // daemon's in-memory tier — the amortization a one-shot process
  // never gets.
  std::string First, Second;
  {
    ServiceClient C(clientOptions());
    Expected<GuardedResult> G = C.compile(Job);
    ASSERT_TRUE(bool(G)) << G.status().toString();
    First = encodeWorkerResult(*G).toString(-1);
  }
  {
    ServiceClient C(clientOptions());
    Expected<GuardedResult> G = C.compile(Job);
    ASSERT_TRUE(bool(G)) << G.status().toString();
    Second = encodeWorkerResult(*G).toString(-1);
  }
  EXPECT_EQ(First, Second); // A hit is byte-identical to the compile.

  ServiceClient C(clientOptions());
  Expected<json::Value> Stats = C.stats();
  ASSERT_TRUE(bool(Stats)) << Stats.status().toString();
  const json::Value *Cache = Stats->find("cache");
  ASSERT_NE(Cache, nullptr);
  EXPECT_EQ(Cache->find("memory_hits")->asInt(), 1);
  EXPECT_EQ(Cache->find("inserts")->asInt(), 1);
}

TEST_F(ServeTest, ClientRidesOutADaemonRestart) {
  // kill -9 equivalent, in-process: abort server A (its sockets die
  // with it), start server B on the same unix path, and the same
  // ServiceClient's next call must succeed via reconnect + resend.
  std::string Path = std::filesystem::path(testing::TempDir()) /
                     ("pira_restart_" + std::to_string(::getpid()) +
                      ".sock");
  ServerOptions O;
  O.SocketPath = Path;
  O.Threads = 2;
  start(O);

  ClientOptions CO;
  CO.SocketPath = Path;
  CO.RetryBackoffMs = 1;
  CO.BackoffCapMs = 10;
  ServiceClient C(CO);
  Expected<GuardedResult> G1 = C.compile(makeJob(smallFunctionText("r1")));
  ASSERT_TRUE(bool(G1)) << G1.status().toString();
  EXPECT_EQ(C.connectCount(), 1u);

  EXPECT_EQ(stop(/*Abort=*/true), 130);
  start(O); // Server B: binds over whatever A left behind.

  Expected<GuardedResult> G2 = C.compile(makeJob(smallFunctionText("r2")));
  ASSERT_TRUE(bool(G2)) << G2.status().toString();
  EXPECT_TRUE(G2->Result.Success);
  EXPECT_GE(C.connectCount(), 2u); // The death was ridden out, not hidden.
}

//===----------------------------------------------------------------------===//
// Protocol hostility — every failure stays contained to its connection
//===----------------------------------------------------------------------===//

TEST_F(ServeTest, GarbageJsonGetsAProtocolErrorAndTheConnectionSurvives) {
  start(tcpOptions());
  int Fd = rawConnect(Srv->tcpPort());

  ASSERT_TRUE(writeFrame(Fd, "this is not json {"));
  json::Value Err = readResponse(Fd);
  EXPECT_EQ(responseType(Err), "error");
  EXPECT_EQ(responseError(Err), "protocol-error");
  EXPECT_EQ(responseId(Err), 0u); // No id was salvageable.

  // Resynchronization on a frame boundary is safe: the same connection
  // still answers a well-formed request.
  ASSERT_TRUE(writeFrameDoc(Fd, requestEnvelope(7, "health")));
  json::Value H = readResponse(Fd);
  EXPECT_EQ(responseType(H), "health");
  EXPECT_EQ(responseId(H), 7u);
  ::close(Fd);
}

TEST_F(ServeTest, DepthBombedPayloadIsAProtocolErrorNotACrash) {
  start(tcpOptions());
  int Fd = rawConnect(Srv->tcpPort());
  // 100k nested arrays: the hardened parser's depth limit rejects it
  // long before the stack would.
  ASSERT_TRUE(writeFrame(Fd, std::string(100000, '[')));
  json::Value Err = readResponse(Fd);
  EXPECT_EQ(responseError(Err), "protocol-error");
  ::close(Fd);

  ServiceClient C(clientOptions());
  Expected<json::Value> H = C.health();
  EXPECT_TRUE(bool(H)) << H.status().toString();
}

TEST_F(ServeTest, OversizedFrameGetsAnAnswerThenTheConnectionCloses) {
  ServerOptions O = tcpOptions();
  O.MaxFrameBytes = 4096;
  start(O);
  int Fd = rawConnect(Srv->tcpPort());

  // Announce 1 MiB against the 4 KiB cap. The stream offset is
  // unrecoverable, so after the best-effort answer the server hangs up.
  unsigned char Header[4] = {0x00, 0x10, 0x00, 0x00};
  ASSERT_EQ(::write(Fd, Header, 4), 4);
  json::Value Err = readResponse(Fd);
  EXPECT_EQ(responseError(Err), "protocol-error");
  std::string Rest;
  EXPECT_EQ(readFrame(Fd, Rest, 4096, 5000), FrameStatus::Eof);
  ::close(Fd);
}

TEST_F(ServeTest, TruncatedFrameThenCloseDoesNotWedgeTheServer) {
  start(tcpOptions());
  int Fd = rawConnect(Srv->tcpPort());
  unsigned char Header[4] = {0, 0, 0, 100};
  ASSERT_EQ(::write(Fd, Header, 4), 4);
  ASSERT_EQ(::write(Fd, "truncated", 9), 9);
  ::close(Fd); // Mid-frame EOF: the reader drops the connection.

  // A well-behaved client is entirely unaffected.
  ServiceClient C(clientOptions());
  Expected<GuardedResult> G = C.compile(makeJob(smallFunctionText("ok")));
  ASSERT_TRUE(bool(G)) << G.status().toString();
  EXPECT_TRUE(G->Result.Success);
}

TEST_F(ServeTest, SlowlorisConnectionIsDisconnectedByTheIdleTimeout) {
  ServerOptions O = tcpOptions();
  O.IdleTimeoutMs = 100;
  start(O);
  int Fd = rawConnect(Srv->tcpPort());
  ASSERT_EQ(::write(Fd, "\0\0", 2), 2); // Two header bytes, then stall.

  // The server gives up on us within the timeout (plus slack) — the
  // socket reads EOF rather than waiting forever.
  std::string Rest;
  FrameStatus S = readFrame(Fd, Rest, DefaultMaxFrameBytes, 10000);
  EXPECT_EQ(S, FrameStatus::Eof) << frameStatusName(S);
  ::close(Fd);

  ServiceClient C(clientOptions());
  Expected<json::Value> H = C.health();
  EXPECT_TRUE(bool(H)) << H.status().toString();
}

TEST_F(ServeTest, EnvelopeViolationsAreProtocolErrors) {
  start(tcpOptions());
  int Fd = rawConnect(Srv->tcpPort());

  // Not an object at all.
  ASSERT_TRUE(writeFrame(Fd, "[1, 2, 3]"));
  EXPECT_EQ(responseError(readResponse(Fd)), "protocol-error");

  // Wrong schema.
  json::Value Wrong = requestEnvelope(1, "health");
  Wrong.set("schema", "pira.wrong");
  ASSERT_TRUE(writeFrameDoc(Fd, Wrong));
  EXPECT_EQ(responseError(readResponse(Fd)), "protocol-error");

  // Unsupported version; the salvaged id still comes back.
  json::Value Ver = requestEnvelope(9, "health");
  Ver.set("version", 99);
  ASSERT_TRUE(writeFrameDoc(Fd, Ver));
  json::Value VErr = readResponse(Fd);
  EXPECT_EQ(responseError(VErr), "protocol-error");
  EXPECT_EQ(responseId(VErr), 9u);

  // Unknown request type.
  ASSERT_TRUE(writeFrameDoc(Fd, requestEnvelope(10, "launch-missiles")));
  EXPECT_EQ(responseError(readResponse(Fd)), "protocol-error");

  // Compile without a job document.
  ASSERT_TRUE(writeFrameDoc(Fd, requestEnvelope(11, "compile")));
  EXPECT_EQ(responseError(readResponse(Fd)), "protocol-error");
  ::close(Fd);
}

TEST_F(ServeTest, FaultInjectionJobsAreRefused) {
  start(tcpOptions());
  // Fault injection is process-global state; one tenant must not arm
  // it for everyone. The spec rides the job document and is refused.
  json::Value Armed = makeJob(smallFunctionText("armed"),
                              /*FaultSpec=*/"cache.read:1");
  ServiceClient C(clientOptions());
  Expected<GuardedResult> G = C.compile(Armed);
  ASSERT_FALSE(bool(G));
  EXPECT_EQ(G.status().code(), ErrorCode::ProtocolError);
  EXPECT_NE(G.status().toString().find("fault injection"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Admission control, shedding, deadlines, drain
//===----------------------------------------------------------------------===//

TEST_F(ServeTest, PerClientBudgetShedsTheSecondConcurrentRequest) {
  ServerOptions O = tcpOptions();
  O.Threads = 1;
  O.PerClientBudget = 1;
  start(O);
  int Fd = rawConnect(Srv->tcpPort());

  // Two back-to-back compiles on one connection: the first is admitted
  // and starts executing (it is heavy — tens of milliseconds), so the
  // second finds the budget exhausted and is shed immediately.
  json::Value Heavy = makeJob(heavyFunctionText("b1"));
  ASSERT_TRUE(writeFrameDoc(Fd, compileRequest(1, Heavy)));
  ASSERT_TRUE(
      writeFrameDoc(Fd, compileRequest(2, makeJob(smallFunctionText("b2")))));

  // The shed answer overtakes the compile.
  json::Value Shed = readResponse(Fd);
  EXPECT_EQ(responseId(Shed), 2u);
  EXPECT_EQ(responseError(Shed), "server-overloaded");
  EXPECT_TRUE(Shed.find("retryable")->asBool());

  json::Value Result = readResponse(Fd);
  EXPECT_EQ(responseId(Result), 1u);
  EXPECT_EQ(responseType(Result), "result");
  ::close(Fd);
}

TEST_F(ServeTest, FullAdmissionQueueShedsInsteadOfBacklogging) {
  ServerOptions O = tcpOptions();
  O.Threads = 1;
  O.QueueDepth = 1;
  start(O);
  int Fd = rawConnect(Srv->tcpPort());

  // Six heavy compiles into a one-deep queue with one executor: the
  // first executes, one waits, and the rest are shed — immediately,
  // with a retryable error, not by queueing without bound.
  constexpr uint64_t N = 6;
  for (uint64_t Id = 1; Id <= N; ++Id)
    ASSERT_TRUE(writeFrameDoc(
        Fd, compileRequest(Id, makeJob(heavyFunctionText(
                                   "q" + std::to_string(Id))))));

  unsigned Results = 0, Shed = 0;
  for (uint64_t I = 0; I != N; ++I) {
    json::Value Resp = readResponse(Fd);
    if (responseType(Resp) == "result") {
      ++Results;
    } else {
      EXPECT_EQ(responseError(Resp), "server-overloaded");
      EXPECT_TRUE(Resp.find("retryable")->asBool());
      ++Shed;
    }
  }
  EXPECT_EQ(Results + Shed, N);
  EXPECT_GE(Results, 1u); // The admitted work still completed,
  EXPECT_GE(Shed, 1u);    // and the overload was shed, not absorbed.
  ::close(Fd);
}

TEST_F(ServeTest, DeadlineThatExpiresInTheQueueIsAnsweredWithoutRunning) {
  ServerOptions O = tcpOptions();
  O.Threads = 1;
  start(O);
  int Fd = rawConnect(Srv->tcpPort());

  // The heavy request occupies the only executor; the 1 ms deadline on
  // the second expires while it waits. The executor answers it without
  // compiling anything.
  ASSERT_TRUE(
      writeFrameDoc(Fd, compileRequest(1, makeJob(heavyFunctionText("d1")))));
  ASSERT_TRUE(writeFrameDoc(
      Fd, compileRequest(2, makeJob(smallFunctionText("d2")),
                         /*DeadlineMs=*/1)));

  std::map<uint64_t, json::Value> ById;
  for (int I = 0; I != 2; ++I) {
    json::Value Resp = readResponse(Fd);
    ById[responseId(Resp)] = Resp;
  }
  EXPECT_EQ(responseType(ById[1]), "result");
  EXPECT_EQ(responseError(ById[2]), "deadline-exceeded");
  EXPECT_FALSE(ById[2].find("retryable")->asBool());
  ::close(Fd);
}

TEST_F(ServeTest, DrainFinishesInFlightWorkAndRefusesNewCompiles) {
  ServerOptions O = tcpOptions();
  O.Threads = 1;
  O.DrainTimeoutMs = 30000; // The in-flight heavy compile must finish.
  start(O);
  int Fd = rawConnect(Srv->tcpPort());

  ASSERT_TRUE(
      writeFrameDoc(Fd, compileRequest(1, makeJob(heavyFunctionText("g1")))));

  // Make sure the request was actually admitted before draining —
  // stats are answered inline by the reader, so they double as the
  // admission barrier. (Draining before admission would be a different,
  // trivial test: an empty server shutting down.)
  bool InFlight = false;
  for (uint64_t Id = 100; Id != 200 && !InFlight; ++Id) {
    ASSERT_TRUE(writeFrameDoc(Fd, requestEnvelope(Id, "stats")));
    json::Value S = readResponse(Fd);
    const json::Value *Clients = S.find("stats")->find("clients");
    for (const json::Value &Row : Clients->elements())
      if (Row.find("in_flight")->asInt() >= 1)
        InFlight = true;
  }
  ASSERT_TRUE(InFlight);
  Srv->requestDrain();

  // The reader still answers health inline; poll until the drain is
  // visible (the self-pipe byte needs one trip through the accept loop).
  std::string HealthNow;
  for (uint64_t Id = 200; Id != 300 && HealthNow != "draining"; ++Id) {
    ASSERT_TRUE(writeFrameDoc(Fd, requestEnvelope(Id, "health")));
    json::Value H = readResponse(Fd);
    if (responseType(H) == "health")
      HealthNow = H.find("status")->asString();
  }
  EXPECT_EQ(HealthNow, "draining");

  // New compile work is refused with the draining vocabulary…
  ASSERT_TRUE(
      writeFrameDoc(Fd, compileRequest(2, makeJob(smallFunctionText("g2")))));
  json::Value Refused = readResponse(Fd);
  EXPECT_EQ(responseId(Refused), 2u);
  EXPECT_EQ(responseError(Refused), "server-draining");
  EXPECT_TRUE(Refused.find("retryable")->asBool());

  // …while the admitted request still completes inside the grace
  // period, and the drain exits clean.
  json::Value Done = readResponse(Fd);
  EXPECT_EQ(responseId(Done), 1u);
  EXPECT_EQ(responseType(Done), "result");
  ::close(Fd);
  EXPECT_EQ(stop(/*Abort=*/false), 0);
}

TEST_F(ServeTest, ConnectionCapRejectsTheOverflowClient) {
  ServerOptions O = tcpOptions();
  O.MaxClients = 1;
  start(O);

  // Client 1 occupies the only slot (a completed request proves it is
  // registered, not just queued in the accept backlog).
  int Fd1 = rawConnect(Srv->tcpPort());
  ASSERT_TRUE(writeFrameDoc(Fd1, requestEnvelope(1, "health")));
  EXPECT_EQ(responseType(readResponse(Fd1)), "health");

  // Client 2 is answered and hung up on.
  int Fd2 = rawConnect(Srv->tcpPort());
  json::Value Err = readResponse(Fd2);
  EXPECT_EQ(responseError(Err), "server-overloaded");
  EXPECT_TRUE(Err.find("retryable")->asBool());
  std::string Rest;
  EXPECT_EQ(readFrame(Fd2, Rest, DefaultMaxFrameBytes, 5000),
            FrameStatus::Eof);
  ::close(Fd2);
  ::close(Fd1);
}

//===----------------------------------------------------------------------===//
// compileBatchRemote — the batch driver's remote twin
//===----------------------------------------------------------------------===//

namespace {

std::vector<BatchItem> parsedBatch(unsigned N) {
  std::vector<BatchItem> Batch;
  for (unsigned I = 0; I != N; ++I) {
    std::string Name = "fn" + std::to_string(I);
    Function F;
    std::string Error;
    EXPECT_TRUE(parseFunction(smallFunctionText(Name), F, Error)) << Error;
    Batch.push_back({Name + ".pir", std::move(F)});
  }
  return Batch;
}

/// Report fingerprint for remote-vs-local identity: timers are wall
/// clock and counters live in process-global registries the client
/// process cannot see, so both are neutralized — everything else must
/// be byte-identical.
std::string reportFingerprint(const BatchResult &BR,
                              const std::vector<BatchItem> &Batch,
                              const MachineModel &M) {
  json::Value Report = makeBatchStatsReport(BR, Batch, "combined", M);
  Report.set("timers", json::Value::array());
  Report.set("counters", json::Value::array());
  Report.set("histograms", json::Value::object());
  std::ostringstream OS;
  Report.write(OS, 0);
  return OS.str();
}

} // namespace

TEST_F(ServeTest, CompileBatchRemoteReportMatchesTheInProcessDriver) {
  start(tcpOptions());
  std::vector<BatchItem> Batch = parsedBatch(5);
  MachineModel M = MachineModel::rs6000();
  BatchOptions Opts;
  Opts.Jobs = 2;

  BatchResult Local = compileBatch(Batch, M, Opts);
  ASSERT_EQ(Local.Succeeded, 5u);

  BatchResult Remote = compileBatchRemote(Batch, M, Opts, clientOptions());
  EXPECT_EQ(Remote.Succeeded, 5u);
  EXPECT_EQ(Remote.Failed, 0u);

  EXPECT_EQ(reportFingerprint(Remote, Batch, M),
            reportFingerprint(Local, Batch, M));
}

TEST(ServeClientTest, NoDaemonMeansPerItemFailuresNotAnAbortedBatch) {
  // A port with nothing behind it: grab a kernel-assigned port, then
  // close the listener so connects are refused.
  uint16_t DeadPort = 0;
  {
    Expected<Listener> L = Listener::listenTcp(0);
    ASSERT_TRUE(bool(L)) << L.status().toString();
    DeadPort = L->port();
  }

  ClientOptions CO;
  CO.TcpPort = DeadPort;
  CO.MaxAttempts = 2;
  CO.RetryBackoffMs = 1;
  CO.BackoffCapMs = 2;

  std::vector<BatchItem> Batch = parsedBatch(3);
  BatchOptions Opts;
  Opts.Jobs = 2;
  BatchResult BR =
      compileBatchRemote(Batch, MachineModel::rs6000(), Opts, CO);
  ASSERT_EQ(BR.Results.size(), 3u);
  EXPECT_EQ(BR.Succeeded, 0u);
  EXPECT_EQ(BR.Failed, 3u);
  for (size_t I = 0; I != 3; ++I) {
    EXPECT_FALSE(BR.Results[I].Success);
    // Structured, attributable failures naming the function.
    EXPECT_NE(BR.Results[I].Error.find("fn" + std::to_string(I)),
              std::string::npos)
        << BR.Results[I].Error;
  }
}
