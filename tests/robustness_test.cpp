//===- tests/robustness_test.cpp - Fault-isolation and recovery tests -----===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
// The failure model under test (DESIGN.md §8): structured diagnostics
// (Status / Expected), the deterministic fault-injection harness, the
// thread pool's exception capture and cooperative watchdog, and the
// degradation ladder that turns phase failures into rescued — or at
// worst cleanly diagnosed — compilations.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "machine/MachineModel.h"
#include "pipeline/Batch.h"
#include "pipeline/Report.h"
#include "pipeline/Strategies.h"
#include "support/FaultInjection.h"
#include "support/Status.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

using namespace pira;

namespace {

/// Every fault test disarms the harness on the way out so armed sites
/// never leak into the next test (or, worse, the rest of the binary).
class FaultTest : public testing::Test {
protected:
  void TearDown() override { faultinject::reset(); }

  static void arm(const std::string &Spec) {
    std::string Error;
    ASSERT_TRUE(faultinject::configure(Spec, Error)) << Error;
  }
};

/// A tiny well-formed function for guard and ladder tests.
Function smallFunction(const std::string &Name = "t") {
  std::string Text = "func @" + Name + R"( regs 8 {
  array a 4
block entry:
  %s0 = li 1
  %s1 = li 2
  %s2 = add %s0, %s1
  %s3 = fmul %s2, %s1
  store a[0], %s3
  ret %s3
}
)";
  Function F;
  std::string Error;
  EXPECT_TRUE(parseFunction(Text, F, Error)) << Error;
  return F;
}

} // namespace

//===----------------------------------------------------------------------===//
// Status and Expected
//===----------------------------------------------------------------------===//

TEST(StatusTest, DefaultIsSuccess) {
  Status S;
  EXPECT_TRUE(S.ok());
  EXPECT_EQ(S.code(), ErrorCode::Ok);
  EXPECT_EQ(S.toString(), "ok");
  // Context on a success is a no-op, so call sites need not branch.
  S.addContext("function @f");
  EXPECT_TRUE(S.context().empty());
}

TEST(StatusTest, ErrorCarriesCodePhaseMessageAndContext) {
  Status S = Status::error(ErrorCode::AllocFailure, "alloc/chaitin",
                           "did not converge");
  EXPECT_FALSE(S.ok());
  EXPECT_EQ(S.code(), ErrorCode::AllocFailure);
  EXPECT_EQ(S.phase(), "alloc/chaitin");
  EXPECT_EQ(S.message(), "did not converge");
  S.addContext("rung combined").addContext("function @dot");
  ASSERT_EQ(S.context().size(), 2u);
  EXPECT_EQ(S.toString(),
            "alloc/chaitin: did not converge [rung combined; function @dot]");
}

TEST(StatusTest, JsonIsMinimalOnSuccessAndFullOnFailure) {
  std::ostringstream Ok;
  Status().toJson().write(Ok, 0);
  EXPECT_NE(Ok.str().find("\"ok\""), std::string::npos);
  EXPECT_EQ(Ok.str().find("phase"), std::string::npos);

  Status S = Status::error(ErrorCode::VerifyError, "verify", "bad block");
  S.addContext("function @f");
  std::ostringstream Bad;
  S.toJson().write(Bad, 0);
  EXPECT_NE(Bad.str().find("\"verify-error\""), std::string::npos);
  EXPECT_NE(Bad.str().find("bad block"), std::string::npos);
  EXPECT_NE(Bad.str().find("function @f"), std::string::npos);
}

TEST(StatusTest, ErrorCodeNamesAreStable) {
  EXPECT_STREQ(errorCodeName(ErrorCode::Ok), "ok");
  EXPECT_STREQ(errorCodeName(ErrorCode::ResourceExhausted),
               "resource-exhausted");
  EXPECT_STREQ(errorCodeName(ErrorCode::DeadlineExceeded),
               "deadline-exceeded");
  EXPECT_STREQ(errorCodeName(ErrorCode::FaultInjected), "fault-injected");
}

TEST(ExpectedTest, HoldsValueOrStatus) {
  Expected<int> Good(42);
  ASSERT_TRUE(Good.ok());
  EXPECT_EQ(*Good, 42);
  EXPECT_TRUE(Good.status().ok());

  Expected<int> Bad(Status::error(ErrorCode::InvalidArgument, "opt", "nope"));
  ASSERT_FALSE(Bad.ok());
  EXPECT_FALSE(static_cast<bool>(Bad));
  EXPECT_EQ(Bad.status().code(), ErrorCode::InvalidArgument);

  Expected<std::string> Str(std::string("hello"));
  EXPECT_EQ(Str.take(), "hello");
}

//===----------------------------------------------------------------------===//
// Fault-injection harness
//===----------------------------------------------------------------------===//

TEST_F(FaultTest, SpecParsingAcceptsKnownSitesAndRejectsJunk) {
  std::string Error;
  EXPECT_TRUE(faultinject::configure("alloc.pinter:3", Error)) << Error;
  EXPECT_TRUE(faultinject::enabled());
  EXPECT_TRUE(
      faultinject::configure("strategy.entry:1,sim.measure:7", Error));

  // Rejections leave the previous configuration armed and untouched.
  EXPECT_FALSE(faultinject::configure("bogus.site:1", Error));
  EXPECT_NE(Error.find("bogus.site"), std::string::npos);
  EXPECT_FALSE(faultinject::configure("alloc.pinter:0", Error));
  EXPECT_FALSE(faultinject::configure("alloc.pinter", Error));
  EXPECT_FALSE(faultinject::configure("alloc.pinter:x", Error));
  EXPECT_TRUE(faultinject::enabled());
  EXPECT_TRUE(faultinject::shouldFire("strategy.entry"));

  // An empty spec and reset() both disarm.
  EXPECT_TRUE(faultinject::configure("", Error));
  EXPECT_FALSE(faultinject::enabled());
  faultinject::reset();
  EXPECT_FALSE(faultinject::shouldFire("strategy.entry"));
}

TEST_F(FaultTest, EverySiteInTheTableIsConfigurable) {
  const std::vector<const char *> &Sites = faultinject::knownSites();
  EXPECT_EQ(Sites.size(), 19u);
  std::string Error;
  for (const char *Site : Sites)
    EXPECT_TRUE(faultinject::configure(std::string(Site) + ":2", Error))
        << Site << ": " << Error;
}

TEST_F(FaultTest, FiringIsAPureFunctionOfTheKey) {
  arm("strategy.entry:3");
  // The default key is 0 — a multiple of everything, so it fires.
  EXPECT_EQ(faultinject::currentKey(), 0u);
  EXPECT_TRUE(faultinject::shouldFire("strategy.entry"));
  EXPECT_FALSE(faultinject::shouldFire("alloc.pinter")) << "unarmed site";

  for (uint64_t Key = 0; Key != 12; ++Key) {
    faultinject::ScopedKey Scoped(Key);
    EXPECT_EQ(faultinject::currentKey(), Key);
    EXPECT_EQ(faultinject::shouldFire("strategy.entry"), Key % 3 == 0)
        << "key " << Key;
    // Pure: asking twice changes nothing.
    EXPECT_EQ(faultinject::shouldFire("strategy.entry"), Key % 3 == 0);
  }
  EXPECT_EQ(faultinject::currentKey(), 0u) << "ScopedKey must restore";
}

TEST_F(FaultTest, MaybeThrowCarriesTheSiteName) {
  arm("sched.final:1");
  try {
    faultinject::maybeThrow("sched.final");
    FAIL() << "expected FaultInjectedError";
  } catch (const faultinject::FaultInjectedError &E) {
    EXPECT_EQ(E.site(), "sched.final");
    EXPECT_NE(std::string(E.what()).find("sched.final"), std::string::npos);
  }
  EXPECT_NO_THROW(faultinject::maybeThrow("sim.measure"));
}

//===----------------------------------------------------------------------===//
// Strategy hardening (the assert-free paths)
//===----------------------------------------------------------------------===//

TEST(StrategyRobustness, NamesRoundTripAndRejectJunk) {
  for (StrategyKind K :
       {StrategyKind::AllocFirst, StrategyKind::SchedFirst,
        StrategyKind::IntegratedPrepass, StrategyKind::Combined,
        StrategyKind::SpillAll}) {
    Expected<StrategyKind> Back = strategyFromName(strategyName(K));
    ASSERT_TRUE(Back.ok()) << strategyName(K);
    EXPECT_EQ(*Back, K);
  }
  EXPECT_EQ(*strategyFromName("ips"), StrategyKind::IntegratedPrepass);

  Expected<StrategyKind> Bad = strategyFromName("optimal");
  ASSERT_FALSE(Bad.ok());
  EXPECT_EQ(Bad.status().code(), ErrorCode::InvalidArgument);
  EXPECT_NE(Bad.status().message().find("optimal"), std::string::npos);
}

TEST(StrategyRobustness, OutOfRangeKindNamesUnknownInsteadOfUB) {
  // Exercised in every build type: the old assert(false) compiled to
  // undefined behaviour under NDEBUG.
  EXPECT_STREQ(strategyName(static_cast<StrategyKind>(999)), "unknown");
}

TEST(StrategyRobustness, AllocatedInputIsAStructuredErrorNotAnAssert) {
  Function F = smallFunction();
  MachineModel M = MachineModel::rs6000();
  PipelineResult First = runStrategy(StrategyKind::AllocFirst, F, M);
  ASSERT_TRUE(First.Success) << First.Error;
  ASSERT_TRUE(First.Final.isAllocated());

  PipelineResult Again = runStrategy(StrategyKind::AllocFirst, First.Final, M);
  EXPECT_FALSE(Again.Success);
  EXPECT_EQ(Again.Diag.code(), ErrorCode::InvalidArgument);
  EXPECT_NE(Again.Error.find("allocated"), std::string::npos);
}

TEST(StrategyRobustness, UnknownKindIsAStructuredError) {
  Function F = smallFunction();
  PipelineResult R = runStrategy(static_cast<StrategyKind>(999), F,
                                 MachineModel::rs6000());
  EXPECT_FALSE(R.Success);
  EXPECT_EQ(R.Diag.code(), ErrorCode::InvalidArgument);
}

TEST(StrategyRobustness, SpillAllBaselinePreservesSemanticsEverywhere) {
  MachineModel M = MachineModel::rs6000(8);
  for (auto &[Name, Kernel] : standardKernelSuite()) {
    PipelineResult R = runAndMeasure(StrategyKind::SpillAll, Kernel, M);
    ASSERT_TRUE(R.Success) << Name << ": " << R.Error;
    EXPECT_TRUE(R.SemanticsPreserved) << Name;
    EXPECT_GT(R.SpilledWebs, 0u) << Name << ": baseline must spill";
  }
}

//===----------------------------------------------------------------------===//
// Thread pool: exception capture and the cooperative watchdog
//===----------------------------------------------------------------------===//

TEST(ThreadPoolRobustness, TaskExceptionRethrownFromWaitPoolSurvives) {
  ThreadPool Pool(4);
  std::atomic<unsigned> Ran{0};
  for (unsigned I = 0; I != 8; ++I)
    Pool.submit([&Ran, I] {
      if (I == 3)
        throw std::runtime_error("task 3 boom");
      ++Ran;
    });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  EXPECT_EQ(Ran.load(), 7u) << "one poisoned task must not starve the rest";

  // The pool is still healthy after a captured failure.
  for (unsigned I = 0; I != 4; ++I)
    Pool.submit([&Ran] { ++Ran; });
  EXPECT_NO_THROW(Pool.wait());
  EXPECT_EQ(Ran.load(), 11u);
}

TEST(ThreadPoolRobustness, ParallelForRunsEveryIterationDespiteAThrow) {
  for (unsigned Workers : {1u, 4u}) { // inline and pooled paths
    ThreadPool Pool(Workers);
    std::atomic<unsigned> Ran{0};
    EXPECT_THROW(Pool.parallelFor(16,
                                  [&Ran](unsigned I) {
                                    if (I == 5)
                                      throw std::runtime_error("iter 5");
                                    ++Ran;
                                  }),
                 std::runtime_error)
        << Workers << " workers";
    EXPECT_EQ(Ran.load(), 15u) << Workers << " workers";
  }
}

TEST(ThreadPoolRobustness, SecondaryExceptionsAreCountedNotSilent) {
  // Only the first exception survives to the wait() rethrow; the pool
  // drops the rest by design, but each drop must leave a telemetry
  // trace — a silently vanishing diagnostic is the one thing the
  // failure model forbids.
  auto Dropped = [] {
    for (const telemetry::Counter *C : telemetry::counters())
      if (std::string("NumDroppedTaskExceptions") == C->name())
        return C->value();
    ADD_FAILURE() << "no NumDroppedTaskExceptions counter";
    return uint64_t(0);
  };

  uint64_t Before = Dropped();
  ThreadPool Pool(4);
  for (unsigned I = 0; I != 6; ++I)
    Pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  EXPECT_EQ(Dropped() - Before, 5u) << "six throws, one captured";

  // The inline parallelFor path counts drops the same way.
  Before = Dropped();
  ThreadPool Inline(1);
  EXPECT_THROW(Inline.parallelFor(4,
                                  [](unsigned) {
                                    throw std::runtime_error("iter boom");
                                  }),
               std::runtime_error);
  EXPECT_EQ(Dropped() - Before, 3u) << "four throws, one captured";
}

TEST(DeadlineTest, NothingArmedNeverExpires) {
  EXPECT_FALSE(deadline::expired());
  EXPECT_NO_THROW(deadline::checkpoint());
  deadline::ScopedDeadline Unarmed(0); // 0 arms nothing
  EXPECT_FALSE(deadline::expired());
}

TEST(DeadlineTest, ExpiryFlipsExpiredAndCheckpointThrows) {
  deadline::ScopedDeadline Short(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(deadline::expired());
  EXPECT_THROW(deadline::checkpoint(), deadline::DeadlineExceededError);
}

TEST(DeadlineTest, WatchdogCancelsACooperativeTaskInThePool) {
  ThreadPool Pool(2);
  std::atomic<bool> OtherRan{false};
  Pool.submit([&OtherRan] { OtherRan = true; });
  Pool.submit([] {
    deadline::ScopedDeadline Watchdog(5);
    // A cooperative loop: the watchdog never kills the thread, the task
    // unwinds itself at the next checkpoint after expiry.
    for (unsigned I = 0; I != 100000; ++I) {
      deadline::checkpoint();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  EXPECT_THROW(Pool.wait(), deadline::DeadlineExceededError);
  EXPECT_TRUE(OtherRan.load());
}

//===----------------------------------------------------------------------===//
// The degradation ladder
//===----------------------------------------------------------------------===//

namespace {

GuardedResult guarded(const Function &F, const BatchOptions &Opts) {
  return compileFunctionGuarded(F, MachineModel::rs6000(), Opts);
}

} // namespace

TEST_F(FaultTest, LadderRescuesPinterFailureWithChaitin) {
  arm("alloc.pinter:1");
  BatchOptions Opts;
  Opts.Strategy = StrategyKind::Combined;
  GuardedResult G = guarded(smallFunction(), Opts);
  ASSERT_TRUE(G.Result.Success) << G.Result.Error;
  EXPECT_TRUE(G.Result.SemanticsPreserved);
  EXPECT_TRUE(G.Outcome.Degraded);
  EXPECT_EQ(G.Outcome.Requested, "combined");
  EXPECT_EQ(G.Outcome.Used, "alloc-first");
  EXPECT_EQ(G.Outcome.Rung, 1u);
  ASSERT_EQ(G.Outcome.FailedAttempts.size(), 1u);
  EXPECT_EQ(G.Outcome.FailedAttempts[0].Rung, "combined");
  EXPECT_EQ(G.Outcome.FailedAttempts[0].Diag.code(),
            ErrorCode::FaultInjected);
}

TEST_F(FaultTest, LadderFallsAllTheWayToSpillAll) {
  arm("alloc.pinter:1,alloc.chaitin:1");
  BatchOptions Opts;
  Opts.Strategy = StrategyKind::Combined;
  GuardedResult G = guarded(smallFunction(), Opts);
  ASSERT_TRUE(G.Result.Success) << G.Result.Error;
  EXPECT_TRUE(G.Result.SemanticsPreserved);
  EXPECT_EQ(G.Outcome.Used, "spill-all");
  EXPECT_EQ(G.Outcome.Rung, 2u);
  EXPECT_EQ(G.Outcome.FailedAttempts.size(), 2u);
}

TEST_F(FaultTest, ExhaustedLadderReportsEveryAttempt) {
  arm("alloc.pinter:1,alloc.chaitin:1,alloc.spillall:1");
  BatchOptions Opts;
  Opts.Strategy = StrategyKind::Combined;
  GuardedResult G = guarded(smallFunction(), Opts);
  EXPECT_FALSE(G.Result.Success);
  EXPECT_FALSE(G.Outcome.Degraded);
  ASSERT_EQ(G.Outcome.FailedAttempts.size(), 3u);
  EXPECT_EQ(G.Outcome.FailedAttempts[2].Rung, "spill-all");
  // The surviving diagnostic names the rung and the function.
  const std::vector<std::string> &Ctx = G.Result.Diag.context();
  ASSERT_EQ(Ctx.size(), 2u);
  EXPECT_EQ(Ctx[0], "rung spill-all");
  EXPECT_EQ(Ctx[1], "function @t");
}

TEST_F(FaultTest, DegradationCanBeTurnedOff) {
  arm("alloc.pinter:1");
  BatchOptions Opts;
  Opts.Strategy = StrategyKind::Combined;
  Opts.Degrade = false;
  GuardedResult G = guarded(smallFunction(), Opts);
  EXPECT_FALSE(G.Result.Success);
  EXPECT_EQ(G.Outcome.FailedAttempts.size(), 1u);
}

TEST(LadderTest, BudgetRejectionSkipsTheLadderEntirely) {
  BatchOptions Opts;
  Opts.Budget.MaxInstructions = 2;
  GuardedResult G = guarded(smallFunction(), Opts);
  EXPECT_FALSE(G.Result.Success);
  EXPECT_EQ(G.Result.Diag.code(), ErrorCode::ResourceExhausted);
  EXPECT_NE(G.Result.Diag.message().find("exceed"), std::string::npos);
  EXPECT_TRUE(G.Outcome.FailedAttempts.empty())
      << "no compile attempt may run on a rejected input";
  EXPECT_TRUE(G.Outcome.Used.empty());

  Opts.Budget.MaxInstructions = 0;
  Opts.Budget.MaxBlocks = 1; // smallFunction has one block, so it fits
  GuardedResult Ok = guarded(smallFunction(), Opts);
  EXPECT_TRUE(Ok.Result.Success) << Ok.Result.Error;
}

TEST_F(FaultTest, InjectedDeadlineStopsTheLadder) {
  arm("budget.deadline:1");
  BatchOptions Opts;
  Opts.Strategy = StrategyKind::Combined;
  GuardedResult G = guarded(smallFunction(), Opts);
  EXPECT_FALSE(G.Result.Success);
  EXPECT_EQ(G.Result.Diag.code(), ErrorCode::DeadlineExceeded);
  // A blown deadline would blow again on a retry from the same input:
  // the ladder must stop after the first attempt.
  EXPECT_EQ(G.Outcome.FailedAttempts.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Batch isolation and fault-injected determinism
//===----------------------------------------------------------------------===//

namespace {

std::vector<BatchItem> makeFaultBatch(unsigned N) {
  std::vector<BatchItem> Batch;
  for (unsigned I = 0; I != N; ++I) {
    std::string Name = "f" + std::to_string(I);
    Batch.push_back({Name + ".pir", smallFunction(Name)});
  }
  return Batch;
}

/// Mirror of property_test's fingerprint, for fault-injected batches:
/// the full stats report with the wall-clock timers neutralized.
std::string faultBatchFingerprint(const std::vector<BatchItem> &Batch,
                                  unsigned Jobs) {
  telemetry::reset();
  MachineModel M = MachineModel::rs6000();
  BatchOptions Opts;
  Opts.Strategy = StrategyKind::Combined;
  Opts.Jobs = Jobs;
  BatchResult BR = compileBatch(Batch, M, Opts);
  json::Value Report = makeBatchStatsReport(BR, Batch, "combined", M);
  Report.set("timers", json::Value::array());
  Report.set("histograms", json::Value::object());
  std::ostringstream OS;
  Report.write(OS, 0);
  return OS.str();
}

} // namespace

TEST_F(FaultTest, OneFaultedFunctionNeverStopsTheBatch) {
  arm("strategy.entry:4");
  std::vector<BatchItem> Batch = makeFaultBatch(10);
  BatchOptions Opts;
  Opts.Strategy = StrategyKind::Combined;
  Opts.Jobs = 4;
  BatchResult BR = compileBatch(Batch, MachineModel::rs6000(), Opts);
  ASSERT_EQ(BR.Results.size(), 10u);
  for (unsigned I = 0; I != 10; ++I) {
    bool ShouldFail = I % 4 == 0; // strategy.entry throws on every rung
    EXPECT_EQ(BR.Results[I].Success, !ShouldFail) << "item " << I;
    if (ShouldFail)
      EXPECT_EQ(BR.Results[I].Diag.code(), ErrorCode::FaultInjected)
          << "item " << I;
    else
      EXPECT_TRUE(BR.Results[I].SemanticsPreserved) << "item " << I;
  }
  EXPECT_EQ(BR.Failed, 3u);
  EXPECT_EQ(BR.Succeeded, 7u);
}

TEST_F(FaultTest, DegradationsAreKeyedToInputPositions) {
  arm("alloc.pinter:3");
  std::vector<BatchItem> Batch = makeFaultBatch(10);
  BatchOptions Opts;
  Opts.Strategy = StrategyKind::Combined;
  Opts.Jobs = 4;
  BatchResult BR = compileBatch(Batch, MachineModel::rs6000(), Opts);
  ASSERT_EQ(BR.Outcomes.size(), 10u);
  for (unsigned I = 0; I != 10; ++I) {
    EXPECT_TRUE(BR.Results[I].Success) << "item " << I << " must be rescued";
    EXPECT_EQ(BR.Outcomes[I].Degraded, I % 3 == 0) << "item " << I;
  }
  EXPECT_EQ(BR.Degraded, 4u);
  EXPECT_EQ(BR.Failed, 0u);
}

TEST_F(FaultTest, FaultInjectedBatchesStayWorkerCountDeterministic) {
  arm("strategy.entry:5,alloc.pinter:3,sim.measure:7");
  std::vector<BatchItem> Batch = makeFaultBatch(12);
  std::string Serial = faultBatchFingerprint(Batch, 1);
  std::string Two = faultBatchFingerprint(Batch, 2);
  std::string Eight = faultBatchFingerprint(Batch, 8);
  telemetry::reset();
  EXPECT_EQ(Serial, Two) << "2 workers diverged under fault injection";
  EXPECT_EQ(Serial, Eight) << "8 workers diverged under fault injection";
  // The report actually recorded the carnage.
  EXPECT_NE(Serial.find("\"failures\""), std::string::npos);
  EXPECT_NE(Serial.find("\"degradations\""), std::string::npos);
  EXPECT_NE(Serial.find("fault-injected"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Stats report failure sections
//===----------------------------------------------------------------------===//

TEST_F(FaultTest, ReportCarriesFailuresDegradationsAndInputFailures) {
  arm("strategy.entry:4,alloc.pinter:3");
  std::vector<BatchItem> Batch = makeFaultBatch(8);
  MachineModel M = MachineModel::rs6000();
  BatchOptions Opts;
  Opts.Strategy = StrategyKind::Combined;
  Opts.Jobs = 1;
  BatchResult BR = compileBatch(Batch, M, Opts);

  std::vector<BatchFailure> InputFailures;
  Status Bad = Status::error(ErrorCode::ParseError, "parse", "line 1: junk");
  Bad.addContext("input bad.pir");
  InputFailures.push_back({"bad.pir", Bad});

  json::Value Report =
      makeBatchStatsReport(BR, Batch, "combined", M, InputFailures);
  std::ostringstream OS;
  Report.write(OS, 0);
  std::string Text = OS.str();

  // Keys 0 and 4 fail outright (strategy.entry); keys 3 and 6 degrade
  // (alloc.pinter); the parse failure joins the failures section.
  EXPECT_NE(Text.find("bad.pir"), std::string::npos);
  EXPECT_NE(Text.find("line 1: junk"), std::string::npos);
  EXPECT_NE(Text.find("\"degradation\""), std::string::npos);
  EXPECT_NE(Text.find("\"ladder\""), std::string::npos);
  const json::Value *Agg = Report.find("batch");
  ASSERT_NE(Agg, nullptr);
  EXPECT_EQ(Agg->find("failed")->asInt(), 3) << "2 compile + 1 input";
  EXPECT_EQ(Agg->find("degraded")->asInt(), 2);
}
