#!/usr/bin/env bash
#===- tests/pirac_cli_test.sh - pirac exit-code taxonomy -----------------===#
#
# Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
# allocation / instruction scheduling framework.
#
# Pins the documented exit-code contract from the outside, through a
# real shell spawn of the installed binary:
#
#   0  every input compiled and verified clean
#   1  at least one input failed to compile or verify
#   2  usage error (bad flag or flag value)
#   3  internal error (journal/report machinery), incl. digest mismatch
#
# Usage: pirac_cli_test.sh /path/to/pirac
#
#===----------------------------------------------------------------------===#

set -u

PIRAC=${1:?usage: pirac_cli_test.sh /path/to/pirac}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

FAILURES=0

# expect <wanted-exit> <label> -- cmd args...
expect() {
  local want=$1 label=$2
  shift 3
  "$@" > /dev/null 2>&1
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: $label: expected exit $want, got $got: $*" >&2
    FAILURES=$((FAILURES + 1))
  else
    echo "ok: $label (exit $got)"
  fi
}

cat > good.pir <<'EOF'
func @good regs 8 {
  array a 4
block entry:
  %s0 = li 1
  %s1 = li 2
  %s2 = add %s0, %s1
  store a[0], %s2
  ret %s2
}
EOF

cat > bad.pir <<'EOF'
func @bad regs 8 {
block entry:
  %s0 = frobnicate 1
  ret %s0
}
EOF

# --- exit 0: clean compiles -------------------------------------------------
expect 0 "clean single function"        -- "$PIRAC" good.pir
expect 0 "clean batch"                  -- "$PIRAC" good.pir good.pir --jobs 2
expect 0 "clean isolated batch"         -- "$PIRAC" good.pir good.pir --isolate
expect 0 "clean journaled batch"        -- "$PIRAC" good.pir good.pir --journal j0.jsonl
expect 0 "clean resumed batch"          -- "$PIRAC" good.pir good.pir --journal j0.jsonl --resume
expect 0 "--version"                    -- "$PIRAC" --version
expect 0 "metrics to file"              -- "$PIRAC" good.pir good.pir --metrics-out m.prom
expect 0 "metrics to stdout"            -- "$PIRAC" good.pir good.pir --metrics-out -
expect 0 "stats to stdout"              -- "$PIRAC" good.pir --stats-out -
expect 0 "progress batch"               -- "$PIRAC" good.pir good.pir --progress

# A stdout sink must leave stdout machine-clean: exactly one parsable
# OpenMetrics/JSON document, no human chatter mixed in.
if "$PIRAC" good.pir good.pir --metrics-out - 2> /dev/null | grep -q '^# EOF$' \
   && ! "$PIRAC" good.pir good.pir --metrics-out - 2> /dev/null | grep -q 'batch of'; then
  echo "ok: stdout metrics are machine-clean"
else
  echo "FAIL: stdout metrics mixed with human output" >&2
  FAILURES=$((FAILURES + 1))
fi

# --- exit 1: compile/verify failures ----------------------------------------
expect 1 "unparsable input"             -- "$PIRAC" bad.pir
expect 1 "unreadable input path"        -- "$PIRAC" no-such-file.pir
expect 1 "mixed batch still reports 1"  -- "$PIRAC" good.pir bad.pir --jobs 2
expect 1 "isolated child crash"         -- "$PIRAC" good.pir good.pir --isolate \
                                             --fault-inject crash.segv:2
expect 1 "budget rejection"             -- "$PIRAC" good.pir --max-instructions 1

# --- exit 2: usage errors ---------------------------------------------------
expect 2 "unknown flag"                 -- "$PIRAC" --definitely-not-a-flag
expect 2 "unknown strategy"             -- "$PIRAC" good.pir --strategy bogus
expect 2 "missing flag value"           -- "$PIRAC" good.pir --retries
expect 2 "non-numeric flag value"       -- "$PIRAC" good.pir --retries banana
expect 2 "resume without journal"       -- "$PIRAC" good.pir --resume
expect 2 "bad fault spec"               -- "$PIRAC" good.pir --fault-inject nope
# Only one report may claim stdout; two "-" sinks would interleave.
expect 2 "two stdout report sinks"      -- "$PIRAC" good.pir \
                                             --stats-out - --metrics-out -
expect 2 "stats+trace both on stdout"   -- "$PIRAC" good.pir \
                                             --stats-out - --trace-out -

# --- exit 3: internal errors ------------------------------------------------
# A journal written under one configuration refuses to resume another.
"$PIRAC" good.pir good.pir --journal j3.jsonl > /dev/null 2>&1
expect 3 "journal digest mismatch"      -- "$PIRAC" good.pir good.pir \
                                             --strategy alloc-first \
                                             --journal j3.jsonl --resume
# A journal path whose directory cannot exist never opens.
expect 3 "unwritable journal path"      -- "$PIRAC" good.pir good.pir \
                                             --journal /no/such/dir/j.jsonl
# A stats path whose directory cannot exist fails the report write.
expect 3 "unwritable stats path"        -- "$PIRAC" good.pir \
                                             --stats-out /no/such/dir/s.json
expect 3 "unwritable metrics path"      -- "$PIRAC" good.pir \
                                             --metrics-out /no/such/dir/m.prom

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES taxonomy check(s) failed" >&2
  exit 1
fi
echo "all exit-code taxonomy checks passed"
