#!/usr/bin/env bash
#===- tests/pirac_cli_test.sh - pirac exit-code taxonomy -----------------===#
#
# Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
# allocation / instruction scheduling framework.
#
# Pins the documented exit-code contract from the outside, through a
# real shell spawn of the installed binary:
#
#   0  every input compiled and verified clean
#   1  at least one input failed to compile or verify
#   2  usage error (bad flag or flag value)
#   3  internal error (journal/report machinery), incl. digest mismatch
#
# Usage: pirac_cli_test.sh /path/to/pirac
#
#===----------------------------------------------------------------------===#

set -u

PIRAC=${1:?usage: pirac_cli_test.sh /path/to/pirac}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

FAILURES=0

# expect <wanted-exit> <label> -- cmd args...
expect() {
  local want=$1 label=$2
  shift 3
  "$@" > /dev/null 2>&1
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: $label: expected exit $want, got $got: $*" >&2
    FAILURES=$((FAILURES + 1))
  else
    echo "ok: $label (exit $got)"
  fi
}

cat > good.pir <<'EOF'
func @good regs 8 {
  array a 4
block entry:
  %s0 = li 1
  %s1 = li 2
  %s2 = add %s0, %s1
  store a[0], %s2
  ret %s2
}
EOF

cat > bad.pir <<'EOF'
func @bad regs 8 {
block entry:
  %s0 = frobnicate 1
  ret %s0
}
EOF

# --- exit 0: clean compiles -------------------------------------------------
expect 0 "clean single function"        -- "$PIRAC" good.pir
expect 0 "clean batch"                  -- "$PIRAC" good.pir good.pir --jobs 2
expect 0 "clean isolated batch"         -- "$PIRAC" good.pir good.pir --isolate
expect 0 "clean journaled batch"        -- "$PIRAC" good.pir good.pir --journal j0.jsonl
expect 0 "clean resumed batch"          -- "$PIRAC" good.pir good.pir --journal j0.jsonl --resume
expect 0 "--version"                    -- "$PIRAC" --version
expect 0 "metrics to file"              -- "$PIRAC" good.pir good.pir --metrics-out m.prom
expect 0 "metrics to stdout"            -- "$PIRAC" good.pir good.pir --metrics-out -
expect 0 "stats to stdout"              -- "$PIRAC" good.pir --stats-out -
expect 0 "progress batch"               -- "$PIRAC" good.pir good.pir --progress
expect 0 "empty generated tournament"   -- "$PIRAC" --tournament --corpus-count 0 \
                                             --stats-out t0.json
expect 1 "tournament all inputs bad"    -- "$PIRAC" --tournament bad.pir \
                                             --stats-out t1.json

# Both empty-corpus tournaments must still emit a valid zero-row
# pira.tournament report — never fall back to a generated corpus.
for f in t0.json t1.json; do
  if grep -q '"schema": *"pira.tournament"' "$f" \
     && grep -q '"functions": *\[\]' "$f"; then
    echo "ok: $f is a zero-row tournament report"
  else
    echo "FAIL: $f missing schema or non-empty functions" >&2
    FAILURES=$((FAILURES + 1))
  fi
done

# A stdout sink must leave stdout machine-clean: exactly one parsable
# OpenMetrics/JSON document, no human chatter mixed in.
if "$PIRAC" good.pir good.pir --metrics-out - 2> /dev/null | grep -q '^# EOF$' \
   && ! "$PIRAC" good.pir good.pir --metrics-out - 2> /dev/null | grep -q 'batch of'; then
  echo "ok: stdout metrics are machine-clean"
else
  echo "FAIL: stdout metrics mixed with human output" >&2
  FAILURES=$((FAILURES + 1))
fi

# --- exit 1: compile/verify failures ----------------------------------------
expect 1 "unparsable input"             -- "$PIRAC" bad.pir
expect 1 "unreadable input path"        -- "$PIRAC" no-such-file.pir
expect 1 "mixed batch still reports 1"  -- "$PIRAC" good.pir bad.pir --jobs 2
expect 1 "isolated child crash"         -- "$PIRAC" good.pir good.pir --isolate \
                                             --fault-inject crash.segv:2
expect 1 "budget rejection"             -- "$PIRAC" good.pir --max-instructions 1

# --- SIGPIPE: a vanished stdout reader is a structured failure --------------
# With SIGPIPE ignored process-wide, a --stats-out - pipe whose reader
# quits early must surface as a report-write failure (exit 3), never as
# a signal death (exit 141). Enough inputs to overflow the pipe buffer
# make the EPIPE deterministic.
SINK_INPUTS=$(for _ in $(seq 1 200); do printf 'good.pir '; done)
# shellcheck disable=SC2086
"$PIRAC" $SINK_INPUTS --stats-out - 2> /dev/null | head -c 1 > /dev/null
got=${PIPESTATUS[0]}
if [ "$got" -eq 3 ]; then
  echo "ok: EPIPE on stdout report is exit 3"
else
  echo "FAIL: EPIPE on stdout report: expected exit 3, got $got" >&2
  FAILURES=$((FAILURES + 1))
fi

# --- exit 2: usage errors ---------------------------------------------------
expect 2 "unknown flag"                 -- "$PIRAC" --definitely-not-a-flag
expect 2 "unknown strategy"             -- "$PIRAC" good.pir --strategy bogus
expect 2 "missing flag value"           -- "$PIRAC" good.pir --retries
expect 2 "non-numeric flag value"       -- "$PIRAC" good.pir --retries banana
expect 2 "resume without journal"       -- "$PIRAC" good.pir --resume
expect 2 "bad fault spec"               -- "$PIRAC" good.pir --fault-inject nope
# Only one report may claim stdout; two "-" sinks would interleave.
expect 2 "two stdout report sinks"      -- "$PIRAC" good.pir \
                                             --stats-out - --metrics-out -
expect 2 "stats+trace both on stdout"   -- "$PIRAC" good.pir \
                                             --stats-out - --trace-out -
expect 2 "serve without a transport"    -- "$PIRAC" serve
expect 2 "client without an address"    -- "$PIRAC" --client good.pir
expect 2 "client cannot isolate"        -- "$PIRAC" --client \
                                             --socket d.sock --isolate good.pir
expect 2 "client cannot journal"        -- "$PIRAC" --client \
                                             --socket d.sock --journal j.jsonl good.pir
expect 2 "daemon-stats needs an address" -- "$PIRAC" --daemon-stats

# --- exit 3: internal errors ------------------------------------------------
# A journal written under one configuration refuses to resume another.
"$PIRAC" good.pir good.pir --journal j3.jsonl > /dev/null 2>&1
expect 3 "journal digest mismatch"      -- "$PIRAC" good.pir good.pir \
                                             --strategy alloc-first \
                                             --journal j3.jsonl --resume
# A journal path whose directory cannot exist never opens.
expect 3 "unwritable journal path"      -- "$PIRAC" good.pir good.pir \
                                             --journal /no/such/dir/j.jsonl
# A stats path whose directory cannot exist fails the report write.
expect 3 "unwritable stats path"        -- "$PIRAC" good.pir \
                                             --stats-out /no/such/dir/s.json
expect 3 "unwritable metrics path"      -- "$PIRAC" good.pir \
                                             --metrics-out /no/such/dir/m.prom
# A serve socket whose directory cannot exist never binds.
expect 3 "unbindable serve socket"      -- "$PIRAC" serve \
                                             --socket /no/such/dir/d.sock

# --- the daemon round trip ---------------------------------------------------
# Start a daemon, compile through it, drain it with SIGTERM: exit 0 on
# both sides. A client pointed at a socket nobody serves exhausts its
# retries into per-item failures — the ordinary exit-1 taxonomy, not a
# hang and not a crash.
expect 1 "client with no daemon"        -- "$PIRAC" --client \
                                             --socket "$WORK/nobody.sock" \
                                             --client-retries 1 good.pir

timeout 60 "$PIRAC" serve --socket "$WORK/d.sock" --threads 2 \
  2> "$WORK/serve.log" &
SERVE_PID=$!
for _ in $(seq 1 100); do
  grep -q ready "$WORK/serve.log" 2> /dev/null && break
  sleep 0.05
done
expect 0 "clean batch via the daemon"   -- "$PIRAC" --client \
                                             --socket "$WORK/d.sock" \
                                             good.pir good.pir --jobs 2
expect 1 "mixed batch via the daemon"   -- "$PIRAC" --client \
                                             --socket "$WORK/d.sock" \
                                             good.pir bad.pir
kill -TERM "$SERVE_PID" 2> /dev/null
wait "$SERVE_PID"
got=$?
if [ "$got" -eq 0 ] && grep -q drained "$WORK/serve.log"; then
  echo "ok: SIGTERM drains the daemon to exit 0"
else
  echo "FAIL: SIGTERM drain: expected exit 0 + drain notice, got $got" >&2
  FAILURES=$((FAILURES + 1))
fi

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES taxonomy check(s) failed" >&2
  exit 1
fi
echo "all exit-code taxonomy checks passed"
