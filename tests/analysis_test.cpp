//===- tests/analysis_test.cpp - Analysis layer unit tests ----------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "analysis/DependenceGraph.h"
#include "analysis/Dominators.h"
#include "analysis/Liveness.h"
#include "analysis/Regions.h"
#include "analysis/Webs.h"
#include "ir/IRBuilder.h"
#include "machine/MachineModel.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

#include <set>

using namespace pira;

namespace {

/// Returns the set of (From, To, Kind) edges of \p G for compact asserts.
std::set<std::tuple<unsigned, unsigned, DepKind>>
edgeSet(const DependenceGraph &G) {
  std::set<std::tuple<unsigned, unsigned, DepKind>> S;
  for (const DepEdge &E : G.edges())
    S.insert({E.From, E.To, E.Kind});
  return S;
}

bool hasEdgeOfKind(const DependenceGraph &G, unsigned From, unsigned To,
                   DepKind Kind) {
  return edgeSet(G).count({From, To, Kind}) != 0;
}

} // namespace

//===----------------------------------------------------------------------===//
// DependenceGraph
//===----------------------------------------------------------------------===//

TEST(DependenceGraphTest, FlowEdgesFollowDefUse) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("e");
  Reg A = B.loadImm(1);                    // 0
  Reg C = B.loadImm(2);                    // 1
  Reg S = B.binary(Opcode::Add, A, C);     // 2
  B.ret(S);                                // 3
  MachineModel M = MachineModel::scalar();
  DependenceGraph G(F, 0, M);
  EXPECT_TRUE(hasEdgeOfKind(G, 0, 2, DepKind::Flow));
  EXPECT_TRUE(hasEdgeOfKind(G, 1, 2, DepKind::Flow));
  EXPECT_TRUE(hasEdgeOfKind(G, 2, 3, DepKind::Flow));
  EXPECT_FALSE(G.hasEdge(0, 1));
}

TEST(DependenceGraphTest, SymbolicCodeHasNoAntiOrOutputEdges) {
  // The paper's observation: with one register per value, Et contains
  // exactly the real constraints.
  Function F = paperExample2();
  MachineModel M = MachineModel::paperTwoUnit();
  DependenceGraph G(F, 0, M);
  for (const DepEdge &E : G.edges()) {
    EXPECT_NE(E.Kind, DepKind::Anti);
    EXPECT_NE(E.Kind, DepKind::Output);
  }
}

TEST(DependenceGraphTest, AllocatedCodeGrowsAntiAndOutput) {
  // r0 = li; r1 = add r0,r0; r0 = li  — output (0,2) and anti (1,2).
  Function F("t");
  F.setNumRegs(2);
  F.setAllocated(true);
  F.addBlock("e");
  F.block(0).append(Instruction(Opcode::LoadImm, 0, {}, 1));
  F.block(0).append(Instruction(Opcode::Add, 1, {0, 0}));
  F.block(0).append(Instruction(Opcode::LoadImm, 0, {}, 2));
  F.block(0).append(Instruction(Opcode::Ret, NoReg, {1}));
  MachineModel M = MachineModel::scalar();
  DependenceGraph G(F, 0, M);
  EXPECT_TRUE(hasEdgeOfKind(G, 0, 2, DepKind::Output));
  EXPECT_TRUE(hasEdgeOfKind(G, 1, 2, DepKind::Anti));
}

TEST(DependenceGraphTest, AntiEdgeHasZeroLatency) {
  Function F("t");
  F.setNumRegs(2);
  F.setAllocated(true);
  F.addBlock("e");
  F.block(0).append(Instruction(Opcode::LoadImm, 0, {}, 1));
  F.block(0).append(Instruction(Opcode::Add, 1, {0, 0}));
  F.block(0).append(Instruction(Opcode::LoadImm, 0, {}, 2));
  F.block(0).append(Instruction(Opcode::Ret, NoReg, {1}));
  DependenceGraph G(F, 0, MachineModel::scalar());
  for (const DepEdge &E : G.edges())
    if (E.Kind == DepKind::Anti) {
      EXPECT_EQ(E.Latency, 0u);
    }
}

TEST(DependenceGraphTest, MemoryOrderingConservative) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("e");
  Reg V = B.loadImm(1);          // 0
  Reg I = B.loadImm(2);          // 1
  B.store("a", V, I, 0);         // 2 store a[i]
  Reg L = B.load("a", NoReg, 3); // 3 load a[3]: may alias (reg index)
  B.ret(L);                      // 4
  DependenceGraph G(F, 0, MachineModel::scalar());
  EXPECT_TRUE(hasEdgeOfKind(G, 2, 3, DepKind::Memory));
}

TEST(DependenceGraphTest, DisjointConstantAddressesIndependent) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("e");
  Reg V = B.loadImm(1);           // 0
  B.store("a", V, NoReg, 3);      // 1
  Reg L = B.load("a", NoReg, 4);  // 2: provably disjoint from store
  B.ret(L);                       // 3
  DependenceGraph G(F, 0, MachineModel::scalar());
  EXPECT_FALSE(G.hasEdge(1, 2));
}

TEST(DependenceGraphTest, SameBaseDifferentOffsetDisjoint) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("e");
  Reg I = B.loadImm(1);          // 0
  Reg V = B.loadImm(2);          // 1
  B.store("a", V, I, 0);         // 2 a[i+0]
  B.store("a", V, I, 1);         // 3 a[i+1]: same base, distinct offset
  B.ret();                       // 4
  DependenceGraph G(F, 0, MachineModel::scalar());
  EXPECT_FALSE(G.hasEdge(2, 3));
}

TEST(DependenceGraphTest, DifferentArraysIndependent) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("e");
  Reg V = B.loadImm(1);       // 0
  B.store("a", V, NoReg, 0);  // 1
  B.store("b", V, NoReg, 0);  // 2
  B.ret();                    // 3
  DependenceGraph G(F, 0, MachineModel::scalar());
  EXPECT_FALSE(G.hasEdge(1, 2));
}

TEST(DependenceGraphTest, LoadsCommute) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("e");
  Reg I = B.loadImm(0);      // 0
  Reg A = B.load("a", I, 0); // 1
  Reg C = B.load("a", I, 0); // 2: same address, both loads
  Reg S = B.binary(Opcode::Add, A, C);
  B.ret(S);
  DependenceGraph G(F, 0, MachineModel::scalar());
  EXPECT_FALSE(G.hasEdge(1, 2));
}

TEST(DependenceGraphTest, EverythingPrecedesTerminator) {
  Function F = paperExample2();
  DependenceGraph G(F, 0, MachineModel::paperTwoUnit());
  unsigned Term = F.block(0).size() - 1;
  for (unsigned I = 0; I != Term; ++I)
    EXPECT_TRUE(G.hasPath(I, Term)) << "inst " << I;
}

TEST(DependenceGraphTest, ReachabilityMatchesHasPath) {
  Function F = livermoreHydro(2);
  DependenceGraph G(F, 1, MachineModel::rs6000());
  BitMatrix R = G.reachability();
  for (unsigned U = 0; U != G.size(); ++U)
    for (unsigned V = 0; V != G.size(); ++V)
      EXPECT_EQ(R.test(U, V), G.hasPath(U, V))
          << "pair " << U << "," << V;
}

TEST(DependenceGraphTest, FlowLatencyTracksMachine) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("e");
  Reg A = B.load("a", NoReg, 0);          // 0: rs6000 load latency 2
  Reg C = B.binary(Opcode::FMul, A, A);   // 1
  B.ret(C);                               // 2
  DependenceGraph G(F, 0, MachineModel::rs6000());
  bool Found = false;
  for (const DepEdge &E : G.edges())
    if (E.From == 0 && E.To == 1 && E.Kind == DepKind::Flow) {
      EXPECT_EQ(E.Latency, 2u);
      Found = true;
    }
  EXPECT_TRUE(Found);
}

//===----------------------------------------------------------------------===//
// Liveness
//===----------------------------------------------------------------------===//

TEST(LivenessTest, StraightLine) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("e");
  Reg A = B.loadImm(1);
  B.br(1);
  B.startBlock("x");
  B.ret(A);
  Liveness L(F);
  EXPECT_TRUE(L.isLiveOut(0, A));
  EXPECT_TRUE(L.isLiveIn(1, A));
  EXPECT_FALSE(L.isLiveIn(0, A));
}

TEST(LivenessTest, LoopCarriedValueLiveAroundBackEdge) {
  Function F = dotProduct(1);
  Liveness L(F);
  // The accumulator (s0) is live into and out of the loop block.
  EXPECT_TRUE(L.isLiveIn(1, 0));
  EXPECT_TRUE(L.isLiveOut(1, 0));
}

TEST(LivenessTest, ValueDeadAfterLastUse) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("e");
  Reg A = B.loadImm(1);
  Reg C = B.binary(Opcode::Add, A, A); // last use of A
  B.br(1);
  B.startBlock("x");
  B.ret(C);
  Liveness L(F);
  EXPECT_FALSE(L.isLiveOut(0, A));
  EXPECT_TRUE(L.isLiveOut(0, C));
}

TEST(LivenessTest, BranchConditionLive) {
  Function F = figure6Diamond();
  Liveness L(F);
  // c2 (reg 1) is used in blocks 1 and 2; live out of entry.
  EXPECT_TRUE(L.isLiveOut(0, 1));
}

TEST(LivenessTest, UpwardExposedVsDefined) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("e");
  Reg A = B.loadImm(1);          // def A
  Reg C = B.binary(Opcode::Add, A, A);
  B.ret(C);
  Liveness L(F);
  EXPECT_TRUE(L.defined(0).test(A));
  EXPECT_FALSE(L.upwardExposed(0).test(A));
}

//===----------------------------------------------------------------------===//
// Webs
//===----------------------------------------------------------------------===//

TEST(WebsTest, StraightLineOneWebPerValue) {
  Function F = paperExample2();
  Webs W(F);
  // s0..s8 each have one def and form distinct webs.
  EXPECT_EQ(W.numWebs(), 9u);
  std::set<unsigned> Ids;
  for (unsigned I = 0; I != 9; ++I)
    Ids.insert(W.webOfDef(0, I));
  EXPECT_EQ(Ids.size(), 9u);
}

TEST(WebsTest, Figure6ThreeDefsMergeIntoOneWeb) {
  Function F = figure6Diamond();
  Webs W(F);
  unsigned W1 = W.webOfDef(0, 2); // entry def of x
  unsigned W2 = W.webOfDef(1, 0); // mid def
  unsigned W3 = W.webOfDef(2, 0); // last def
  EXPECT_EQ(W1, W2);
  EXPECT_EQ(W2, W3);
  // The join's ret reads the same compound web.
  EXPECT_EQ(W.webOfUse(3, 0, 0), W1);
  EXPECT_EQ(W.defsOfWeb(W1).size(), 3u);
}

TEST(WebsTest, IndependentDefsOfSameRegisterSplit) {
  // Two defs of one register with disjoint uses: distinct webs.
  Function F("t");
  F.setNumRegs(2);
  F.addBlock("e");
  F.block(0).append(Instruction(Opcode::LoadImm, 0, {}, 1));
  F.block(0).append(Instruction(Opcode::Copy, 1, {0}));
  F.block(0).append(Instruction(Opcode::LoadImm, 0, {}, 2)); // fresh value
  F.block(0).append(Instruction(Opcode::Ret, NoReg, {0}));
  Webs W(F);
  EXPECT_NE(W.webOfDef(0, 0), W.webOfDef(0, 2));
  EXPECT_EQ(W.webOfUse(0, 3, 0), W.webOfDef(0, 2));
}

TEST(WebsTest, LoopCarriedRegisterFormsOneWeb) {
  Function F = dotProduct(1);
  Webs W(F);
  // Sum (reg 0): defined in entry and in the loop; read in loop and exit.
  unsigned EntryDef = W.webOfDef(0, 0);
  // Find the loop redefinition of reg 0.
  unsigned LoopDefIdx = ~0u;
  const BasicBlock &Loop = F.block(1);
  for (unsigned I = 0; I != Loop.size(); ++I)
    if (Loop.inst(I).hasDef() && Loop.inst(I).def() == 0)
      LoopDefIdx = I;
  ASSERT_NE(LoopDefIdx, ~0u);
  EXPECT_EQ(W.webOfDef(1, LoopDefIdx), EntryDef);
  EXPECT_EQ(W.webOfUse(2, 0, 0), EntryDef) << "exit ret reads the web";
}

TEST(WebsTest, FunctionInputGetsEntryDefWeb) {
  Function F("t");
  F.setNumRegs(1);
  F.addBlock("e");
  F.block(0).append(Instruction(Opcode::Ret, NoReg, {0})); // reads input
  Webs W(F);
  ASSERT_EQ(W.numWebs(), 1u);
  EXPECT_TRUE(W.hasEntryDef(0));
  EXPECT_TRUE(W.defsOfWeb(0).empty());
  EXPECT_EQ(W.numUsesOfWeb(0), 1u);
}

TEST(WebsTest, UnusedRegistersProduceNoWebs) {
  Function F("t");
  F.setNumRegs(8); // seven registers never touched
  IRBuilder B(F);
  B.startBlock("e");
  B.ret();
  Webs W(F);
  EXPECT_EQ(W.numWebs(), 0u);
}

TEST(WebsTest, UseCountsAreExact) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("e");
  Reg A = B.loadImm(2);
  Reg C = B.binary(Opcode::Mul, A, A); // two uses of A
  B.ret(C);                            // one use of C
  Webs W(F);
  EXPECT_EQ(W.numUsesOfWeb(W.webOfDef(0, 0)), 2u);
  EXPECT_EQ(W.numUsesOfWeb(W.webOfDef(0, 1)), 1u);
}

//===----------------------------------------------------------------------===//
// Dominators
//===----------------------------------------------------------------------===//

namespace {

/// entry -> {then, else} -> join -> exit, with a loop join -> then.
Function buildCfgFixture() {
  Function F("cfg");
  IRBuilder B(F);
  B.startBlock("entry"); // 0
  Reg C = B.loadImm(1);
  B.condBr(C, 1, 2);
  B.startBlock("then"); // 1
  B.br(3);
  B.startBlock("else"); // 2
  B.br(3);
  B.startBlock("join"); // 3
  Reg D = B.loadImm(0);
  B.condBr(D, 1, 4); // back edge to then
  B.startBlock("exit"); // 4
  B.ret();
  return F;
}

} // namespace

TEST(DominatorsTest, EntryDominatesEverything) {
  Function F = buildCfgFixture();
  DominatorTree D = DominatorTree::forward(F);
  for (unsigned B = 0; B != F.numBlocks(); ++B)
    EXPECT_TRUE(D.dominates(0, B));
}

TEST(DominatorsTest, DiamondArmsDoNotDominateJoin) {
  Function F = buildCfgFixture();
  DominatorTree D = DominatorTree::forward(F);
  EXPECT_FALSE(D.dominates(1, 3));
  EXPECT_FALSE(D.dominates(2, 3));
  EXPECT_EQ(D.idom(3), 0);
  EXPECT_TRUE(D.dominates(3, 4));
}

TEST(DominatorsTest, DominanceIsReflexive) {
  Function F = buildCfgFixture();
  DominatorTree D = DominatorTree::forward(F);
  for (unsigned B = 0; B != F.numBlocks(); ++B)
    EXPECT_TRUE(D.dominates(B, B));
}

TEST(DominatorsTest, PostdominatorsOfDiamond) {
  Function F = buildCfgFixture();
  DominatorTree P = DominatorTree::postdom(F);
  // join postdominates both arms and entry; exit postdominates join.
  EXPECT_TRUE(P.dominates(3, 1));
  EXPECT_TRUE(P.dominates(3, 2));
  EXPECT_TRUE(P.dominates(3, 0));
  EXPECT_TRUE(P.dominates(4, 3));
  EXPECT_FALSE(P.dominates(1, 0));
}

TEST(DominatorsTest, VirtualExitIsRoot) {
  Function F = buildCfgFixture();
  DominatorTree P = DominatorTree::postdom(F);
  EXPECT_EQ(P.root(), F.numBlocks());
  EXPECT_TRUE(P.dominates(F.numBlocks(), 0));
}

TEST(DominatorsTest, UnreachableBlockHandled) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("entry");
  B.ret();
  B.startBlock("orphan");
  B.ret();
  DominatorTree D = DominatorTree::forward(F);
  EXPECT_FALSE(D.isReachable(1));
  EXPECT_FALSE(D.dominates(0, 1));
  EXPECT_TRUE(D.dominates(1, 1));
}

//===----------------------------------------------------------------------===//
// Regions
//===----------------------------------------------------------------------===//

TEST(RegionsTest, ControlEquivalentChainGroups) {
  // entry -> mid -> exit straight line: all control equivalent, acyclic.
  Function F("t");
  IRBuilder B(F);
  B.startBlock("entry");
  B.br(1);
  B.startBlock("mid");
  B.br(2);
  B.startBlock("exit");
  B.ret();
  RegionAnalysis RA(F);
  EXPECT_TRUE(RA.plausiblePair(0, 1));
  EXPECT_TRUE(RA.plausiblePair(1, 2));
  EXPECT_TRUE(RA.plausiblePair(0, 2));
  EXPECT_EQ(RA.regions().size(), 1u);
  EXPECT_EQ(RA.regions()[0].size(), 3u);
}

TEST(RegionsTest, DiamondArmsNotPlausibleWithEntry) {
  Function F = figure6Diamond();
  RegionAnalysis RA(F);
  // entry does not pair with either conditional arm...
  EXPECT_FALSE(RA.plausiblePair(0, 1));
  EXPECT_FALSE(RA.plausiblePair(0, 2));
  // ...but entry and join are control equivalent.
  EXPECT_TRUE(RA.plausiblePair(0, 3));
}

TEST(RegionsTest, LoopRegionsAreConsistent) {
  Function F = dotProduct(1);
  RegionAnalysis RA(F);
  // Acyclicity is judged with back edges removed, so entry/loop/exit are
  // mutually plausible; what matters here is internal consistency: every
  // pair inside one region is plausible and the partition is exact.
  for (const auto &Region : RA.regions())
    for (unsigned B1 : Region)
      for (unsigned B2 : Region)
        if (B1 != B2) {
          EXPECT_TRUE(RA.plausiblePair(B1, B2));
        }
  // Every block lands in exactly one region.
  std::set<unsigned> Seen;
  for (const auto &Region : RA.regions())
    for (unsigned B : Region)
      EXPECT_TRUE(Seen.insert(B).second);
  EXPECT_EQ(Seen.size(), F.numBlocks());
}

TEST(RegionsTest, SelfPairNeverPlausible) {
  Function F = buildCfgFixture();
  RegionAnalysis RA(F);
  for (unsigned B = 0; B != F.numBlocks(); ++B)
    EXPECT_FALSE(RA.plausiblePair(B, B));
}
