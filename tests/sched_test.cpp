//===- tests/sched_test.cpp - Scheduling unit tests -----------------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "analysis/DependenceGraph.h"
#include "ir/IRBuilder.h"
#include "ir/Interpreter.h"
#include "machine/MachineModel.h"
#include "sched/EPTimes.h"
#include "sched/ListScheduler.h"
#include "sched/PreScheduler.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

#include <array>

using namespace pira;

namespace {

/// Checks structural legality of \p S for block \p BlockIdx of \p F:
/// every dependence respected with its latency, no resource oversubscribed.
void expectLegalSchedule(const Function &F, unsigned BlockIdx,
                         const BlockSchedule &S, const MachineModel &M) {
  DependenceGraph G(F, BlockIdx, M);
  ASSERT_EQ(S.CycleOf.size(), G.size());
  for (const DepEdge &E : G.edges())
    EXPECT_GE(S.CycleOf[E.To], S.CycleOf[E.From] + E.Latency)
        << "edge " << E.From << "->" << E.To << " ("
        << depKindName(E.Kind) << ") violated";
  auto Groups = S.groupsByCycle();
  const BasicBlock &BB = F.block(BlockIdx);
  for (const auto &Group : Groups) {
    EXPECT_LE(Group.size(), M.issueWidth());
    std::array<unsigned, NumUnitKinds> PerUnit{};
    for (unsigned I : Group)
      ++PerUnit[static_cast<unsigned>(BB.inst(I).unit())];
    for (unsigned K = 0; K != NumUnitKinds; ++K)
      EXPECT_LE(PerUnit[K], M.units(static_cast<UnitKind>(K)));
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// EP times and heights
//===----------------------------------------------------------------------===//

TEST(EPTimesTest, ChainAccumulatesLatency) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("e");
  Reg A = B.load("a", NoReg, 0);        // latency 2 on rs6000
  Reg C = B.binary(Opcode::FMul, A, A); // latency 2
  Reg D = B.binary(Opcode::FAdd, C, C); // latency 2
  B.ret(D);
  MachineModel M = MachineModel::rs6000();
  DependenceGraph G(F, 0, M);
  std::vector<unsigned> EP = computeEP(G);
  EXPECT_EQ(EP[0], 0u);
  EXPECT_EQ(EP[1], 2u);
  EXPECT_EQ(EP[2], 4u);
  EXPECT_EQ(EP[3], 6u);
}

TEST(EPTimesTest, IndependentOpsShareEPZero) {
  Function F = paperExample2();
  DependenceGraph G(F, 0, MachineModel::paperTwoUnit());
  std::vector<unsigned> EP = computeEP(G);
  EXPECT_EQ(EP[0], 0u); // load z
  EXPECT_EQ(EP[1], 0u); // load y
  EXPECT_EQ(EP[5], 0u); // load x
  EXPECT_EQ(EP[6], 0u); // load w
  EXPECT_GT(EP[2], 0u); // add depends on loads
}

TEST(EPTimesTest, HeightsAreDualOfEP) {
  Function F = paperExample2();
  DependenceGraph G(F, 0, MachineModel::paperTwoUnit());
  std::vector<unsigned> EP = computeEP(G);
  std::vector<unsigned> H = computeHeights(G);
  // For every node, EP + height <= critical path length; equality on the
  // critical path.
  unsigned CP = 0;
  for (unsigned V = 0; V != G.size(); ++V)
    CP = std::max(CP, EP[V] + H[V]);
  bool Tight = false;
  for (unsigned V = 0; V != G.size(); ++V) {
    EXPECT_LE(EP[V] + H[V], CP);
    Tight |= EP[V] + H[V] == CP;
  }
  EXPECT_TRUE(Tight);
}

TEST(EPTimesTest, SinkHasZeroHeight) {
  Function F = paperExample2();
  DependenceGraph G(F, 0, MachineModel::paperTwoUnit());
  std::vector<unsigned> H = computeHeights(G);
  EXPECT_EQ(H[G.size() - 1], 0u) << "the terminator is the sink";
}

//===----------------------------------------------------------------------===//
// ListScheduler
//===----------------------------------------------------------------------===//

TEST(ListSchedulerTest, LegalOnEveryKernelAndMachine) {
  std::vector<MachineModel> Machines = {
      MachineModel::scalar(), MachineModel::paperTwoUnit(),
      MachineModel::mipsR3000(), MachineModel::rs6000(),
      MachineModel::vliw4()};
  for (auto &[Name, Kernel] : standardKernelSuite())
    for (const MachineModel &M : Machines) {
      FunctionSchedule S = scheduleFunction(Kernel, M);
      for (unsigned B = 0; B != Kernel.numBlocks(); ++B)
        expectLegalSchedule(Kernel, B, S.Blocks[B], M);
    }
}

TEST(ListSchedulerTest, ScalarMachineFullySerializes) {
  Function F = paperExample2();
  MachineModel M = MachineModel::scalar();
  M.setUniformLatency(1);
  FunctionSchedule S = scheduleFunction(F, M);
  // Width 1 and unit latency: makespan == instruction count.
  EXPECT_EQ(S.Blocks[0].Makespan, F.block(0).size());
}

TEST(ListSchedulerTest, Example2OptimalOnPaperMachine) {
  // Best possible on the two-unit machine: 4 serial loads (single fetch
  // unit), adds/muls overlapping, 7 cycles including the ret.
  Function F = paperExample2();
  FunctionSchedule S = scheduleFunction(F, MachineModel::paperTwoUnit());
  EXPECT_EQ(S.Blocks[0].Makespan, 7u);
}

TEST(ListSchedulerTest, ParallelIssueHappensWhenUnitsAllow) {
  Function F = paperExample2();
  FunctionSchedule S = scheduleFunction(F, MachineModel::paperTwoUnit());
  auto Groups = S.Blocks[0].groupsByCycle();
  bool AnyPair = false;
  for (const auto &G : Groups)
    AnyPair |= G.size() >= 2;
  EXPECT_TRUE(AnyPair);
}

TEST(ListSchedulerTest, CriticalPathPriorityBeatsFifoOnSkewedDag) {
  // Two chains: a long float chain and short int ops. Height priority
  // must start the long chain first.
  Function F("t");
  IRBuilder B(F);
  B.startBlock("e");
  Reg A = B.load("a", NoReg, 0);
  Reg C1 = B.binary(Opcode::FMul, A, A);
  Reg C2 = B.binary(Opcode::FMul, C1, C1);
  Reg C3 = B.binary(Opcode::FMul, C2, C2);
  Reg D = B.loadImm(1);
  Reg E2 = B.binary(Opcode::Add, D, D);
  Reg S = B.binary(Opcode::Add, E2, E2);
  (void)S;
  B.ret(C3);
  MachineModel M = MachineModel::rs6000();
  FunctionSchedule Sch = scheduleFunction(F, M);
  // The float chain head (inst 0) must issue at cycle 0.
  EXPECT_EQ(Sch.Blocks[0].CycleOf[0], 0u);
}

TEST(ListSchedulerTest, RespectsFlowLatency) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("e");
  Reg A = B.load("a", NoReg, 0); // rs6000: latency 2
  Reg C = B.binary(Opcode::Add, A, A);
  B.ret(C);
  FunctionSchedule S = scheduleFunction(F, MachineModel::rs6000());
  EXPECT_GE(S.Blocks[0].CycleOf[1], S.Blocks[0].CycleOf[0] + 2);
}

TEST(ListSchedulerTest, ReorderBlockKeepsSemantics) {
  Function F = paperExample2();
  Function Original = F;
  FunctionSchedule S = scheduleFunction(F, MachineModel::paperTwoUnit());
  reorderBlockBySchedule(F, 0, S.Blocks[0]);
  ExecResult RA = interpret(Original, makeInitialState(Original, 2));
  ExecResult RB = interpret(F, makeInitialState(F, 2));
  ASSERT_TRUE(RA.Completed);
  ASSERT_TRUE(RB.Completed);
  EXPECT_EQ(RA.ReturnValue, RB.ReturnValue);
}

TEST(ListSchedulerTest, ReorderReturnsPermutation) {
  Function F = paperExample2();
  FunctionSchedule S = scheduleFunction(F, MachineModel::paperTwoUnit());
  std::vector<unsigned> Perm = reorderBlockBySchedule(F, 0, S.Blocks[0]);
  std::vector<bool> Seen(Perm.size(), false);
  for (unsigned P : Perm) {
    ASSERT_LT(P, Perm.size());
    EXPECT_FALSE(Seen[P]);
    Seen[P] = true;
  }
  EXPECT_TRUE(F.block(0).hasTerminator());
}

//===----------------------------------------------------------------------===//
// PreScheduler
//===----------------------------------------------------------------------===//

TEST(PreSchedulerTest, KeepsSemanticsOnAllKernels) {
  for (auto &[Name, Kernel] : standardKernelSuite()) {
    Function F = Kernel;
    preScheduleFunction(F, MachineModel::paperTwoUnit());
    ExecResult RA = interpret(Kernel, makeInitialState(Kernel, 6));
    ExecResult RB = interpret(F, makeInitialState(F, 6));
    ASSERT_TRUE(RA.Completed) << Name;
    ASSERT_TRUE(RB.Completed) << Name << ": " << RB.Error;
    EXPECT_EQ(RA.HasReturnValue, RB.HasReturnValue) << Name;
    if (RA.HasReturnValue) {
      EXPECT_EQ(RA.ReturnValue, RB.ReturnValue) << Name;
    }
    EXPECT_TRUE(statesEquivalent(RA.Final, RB.Final)) << Name;
  }
}

TEST(PreSchedulerTest, InterleavesIndependentChains) {
  // Two independent chains written back to back; EP ordering interleaves
  // them (EP levels alternate).
  Function F("t");
  IRBuilder B(F);
  B.startBlock("e");
  Reg A = B.load("a", NoReg, 0);
  Reg A1 = B.binary(Opcode::Add, A, A);
  Reg A2 = B.binary(Opcode::Add, A1, A1);
  Reg C = B.load("c", NoReg, 0);
  Reg C1 = B.binary(Opcode::FMul, C, C);
  Reg C2 = B.binary(Opcode::FMul, C1, C1);
  Reg S = B.binary(Opcode::FAdd, A2, C2);
  B.ret(S);
  Function Before = F;
  unsigned Moved = preScheduleFunction(F, MachineModel::paperTwoUnit());
  EXPECT_GT(Moved, 0u) << "the second chain's load must move up";
  // load c must now come before the end of the first chain.
  unsigned PosLoadC = ~0u, PosA2 = ~0u;
  for (unsigned I = 0; I != F.block(0).size(); ++I) {
    const Instruction &Inst = F.block(0).inst(I);
    if (Inst.opcode() == Opcode::Load && Inst.arraySymbol() == "c")
      PosLoadC = I;
    if (Inst.hasDef() && Inst.def() == A2)
      PosA2 = I;
  }
  ASSERT_NE(PosLoadC, ~0u);
  ASSERT_NE(PosA2, ~0u);
  EXPECT_LT(PosLoadC, PosA2);
}

TEST(PreSchedulerTest, TerminatorStaysLast) {
  for (auto &[Name, Kernel] : standardKernelSuite()) {
    Function F = Kernel;
    preScheduleFunction(F, MachineModel::vliw4());
    for (unsigned B = 0; B != F.numBlocks(); ++B)
      EXPECT_TRUE(F.block(B).hasTerminator()) << Name;
  }
}

TEST(PreSchedulerTest, IdempotentOnSecondRun) {
  Function F = paperExample2();
  preScheduleFunction(F, MachineModel::paperTwoUnit());
  Function Once = F;
  unsigned Moved = preScheduleFunction(F, MachineModel::paperTwoUnit());
  EXPECT_EQ(Moved, 0u);
  // Identical instruction sequence.
  for (unsigned I = 0; I != F.block(0).size(); ++I)
    EXPECT_EQ(F.block(0).inst(I).opcode(), Once.block(0).inst(I).opcode());
}

TEST(PreSchedulerTest, PostponesBeyondMachineWidth) {
  // Three independent int adds on a machine with one ALU: EP forces them
  // into distinct levels.
  Function F("t");
  IRBuilder B(F);
  B.startBlock("e");
  Reg A = B.loadImm(1);
  Reg X = B.binary(Opcode::Add, A, A);
  Reg Y = B.binary(Opcode::Sub, A, A);
  Reg Z = B.binary(Opcode::Xor, A, A);
  Reg S1 = B.binary(Opcode::Or, X, Y);
  Reg S2 = B.binary(Opcode::And, S1, Z);
  B.ret(S2);
  preScheduleFunction(F, MachineModel::paperTwoUnit());
  ExecResult R = interpret(F, makeInitialState(F, 0));
  ASSERT_TRUE(R.Completed);
  // 1 ^ 1 = 0; (2 | 0) & 0 = 0.
  EXPECT_EQ(R.ReturnValue, 0);
}
