//===- tests/oracle_test.cpp - Exact-oracle and tournament tests ----------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
// The oracle's optimality claim is the ground truth of the heuristic-gap
// tournament, so it gets the strongest checks in the repository:
//
//   * an INDEPENDENT brute-force enumerator (permutations x cycle
//     partitions, none of the oracle's pruning machinery) must agree
//     with the oracle's makespan — and with its infeasibility proofs —
//     on every block small enough to enumerate;
//   * no heuristic may ever beat the oracle on a 200-function corpus
//     (a spill-free heuristic result is a point of the oracle's own
//     search space, so "beaten" means a soundness bug somewhere);
//   * the tournament report is byte-identical across worker counts;
//   * an over-budget oracle degrades down the ladder with a structured
//     search-exhausted diagnostic — in process and out of process —
//     instead of hanging or poisoning the batch.
//
//===----------------------------------------------------------------------===//

#include "analysis/DependenceGraph.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "machine/MachineModel.h"
#include "pipeline/Batch.h"
#include "pipeline/Oracle.h"
#include "pipeline/Strategies.h"
#include "pipeline/Tournament.h"
#include "support/FaultInjection.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

using namespace pira;

namespace {

constexpr unsigned Inf = std::numeric_limits<unsigned>::max();

//===----------------------------------------------------------------------===//
// Independent brute-force enumerator
//===----------------------------------------------------------------------===//

/// Minimum spill-free makespan of a single-block function by exhaustive
/// enumeration: every topological permutation of the block crossed with
/// every partition of it into consecutive cycles. Deliberately shares no
/// code with the oracle — same cost model (values die at their last
/// reader, dead-born definitions hold their register to the end of their
/// cycle), completely different search. Infeasible -> Inf.
///
/// Completeness: any spill-free schedule, read off in execution order,
/// is one (permutation, partition) pair, and for a fixed pair the
/// earliest-cycle placement computed here is minimal. So the minimum
/// over all pairs is the true optimum.
unsigned bruteForceOptimum(const Function &F, const MachineModel &M) {
  EXPECT_EQ(F.numBlocks(), 1u);
  const BasicBlock &BB = F.block(0);
  const unsigned N = BB.size();
  const unsigned K = M.numPhysRegs();
  const unsigned W = M.issueWidth();
  DependenceGraph G(F, 0, M);

  // Reaching-definition value analysis: a "value" is its defining
  // instruction's index.
  std::vector<std::vector<unsigned>> UseVals(N);
  std::vector<unsigned> NumReaders(N, 0);
  std::vector<char> HasDef(N, 0);
  std::vector<unsigned> UnitOf(N);
  {
    std::vector<unsigned> LastDef(F.numRegs(), Inf);
    for (unsigned I = 0; I != N; ++I) {
      const Instruction &Inst = BB.inst(I);
      UnitOf[I] = static_cast<unsigned>(Inst.unit());
      HasDef[I] = Inst.hasDef();
      for (Reg R : Inst.uses()) {
        EXPECT_NE(LastDef[R], Inf) << "brute force needs defined reads";
        unsigned V = LastDef[R];
        if (std::find(UseVals[I].begin(), UseVals[I].end(), V) ==
            UseVals[I].end()) {
          UseVals[I].push_back(V);
          ++NumReaders[V];
        }
      }
      if (Inst.hasDef())
        LastDef[Inst.def()] = I;
    }
  }

  std::vector<unsigned> Perm(N);
  std::iota(Perm.begin(), Perm.end(), 0);
  std::vector<unsigned> Pos(N), GroupOf(N), CycleOfGroup(N), ReadersLeft(N);
  unsigned BestMk = Inf;
  do {
    for (unsigned P = 0; P != N; ++P)
      Pos[Perm[P]] = P;
    bool Topo = true;
    for (const DepEdge &E : G.edges())
      if (Pos[E.From] > Pos[E.To]) {
        Topo = false;
        break;
      }
    if (!Topo)
      continue;

    // Breaks bit p set = a cycle boundary after position p.
    for (uint32_t Breaks = 0; Breaks < (1u << (N - 1)); ++Breaks) {
      unsigned Gp = 0;
      for (unsigned P = 0; P != N; ++P) {
        GroupOf[P] = Gp;
        if (P + 1 < N && (Breaks >> P & 1))
          ++Gp;
      }
      const unsigned NumGroups = Gp + 1;

      // Machine capacity per cycle.
      bool Feasible = true;
      for (unsigned Gs = 0; Gs != NumGroups && Feasible; ++Gs) {
        unsigned Issued = 0, PerUnit[NumUnitKinds] = {};
        for (unsigned P = 0; P != N; ++P)
          if (GroupOf[P] == Gs) {
            ++Issued;
            ++PerUnit[UnitOf[Perm[P]]];
          }
        if (Issued > W)
          Feasible = false;
        for (unsigned U = 0; U != NumUnitKinds && Feasible; ++U)
          if (PerUnit[U] > M.units(static_cast<UnitKind>(U)))
            Feasible = false;
      }
      if (!Feasible)
        continue;

      // Latency >= 1 edges must cross a cycle boundary.
      for (const DepEdge &E : G.edges())
        if (E.Latency >= 1 && GroupOf[Pos[E.From]] == GroupOf[Pos[E.To]]) {
          Feasible = false;
          break;
        }
      if (!Feasible)
        continue;

      // Earliest cycle per group under the latency constraints.
      for (unsigned Gs = 0; Gs != NumGroups; ++Gs)
        CycleOfGroup[Gs] = Gs == 0 ? 0 : CycleOfGroup[Gs - 1] + 1;
      for (unsigned Gs = 1; Gs != NumGroups; ++Gs) {
        unsigned C = CycleOfGroup[Gs - 1] + 1;
        for (const DepEdge &E : G.edges())
          if (GroupOf[Pos[E.To]] == Gs)
            C = std::max(C, CycleOfGroup[GroupOf[Pos[E.From]]] + E.Latency);
        CycleOfGroup[Gs] = C;
      }
      unsigned Mk = CycleOfGroup[NumGroups - 1] + 1;
      if (Mk >= BestMk)
        continue;

      // Register occupancy along the execution order: a use releases its
      // value at the last remaining reader (reusable later the same
      // cycle), a def takes a register, dead-born defs release at the
      // end of their cycle.
      ReadersLeft = NumReaders;
      unsigned Occ = 0, DeadBornHeld = 0;
      bool RegsOk = true;
      for (unsigned P = 0; P != N && RegsOk; ++P) {
        unsigned I = Perm[P];
        for (unsigned V : UseVals[I])
          if (--ReadersLeft[V] == 0)
            --Occ;
        if (HasDef[I]) {
          ++Occ;
          if (NumReaders[I] == 0)
            ++DeadBornHeld;
          if (Occ > K)
            RegsOk = false;
        }
        bool GroupEnds = P + 1 == N || GroupOf[P + 1] != GroupOf[P];
        if (GroupEnds) {
          Occ -= DeadBornHeld;
          DeadBornHeld = 0;
        }
      }
      if (RegsOk)
        BestMk = Mk;
    }
  } while (std::next_permutation(Perm.begin(), Perm.end()));
  return BestMk;
}

/// Small deterministic corpus through the tournament generator.
std::vector<BatchItem> smallCorpus(unsigned Count, unsigned Insts,
                                   uint64_t Seed) {
  TournamentOptions Ignored;
  return makeTournamentCorpus(Count, Insts, Seed, Ignored);
}

/// Fingerprint of an oracle result: body, twin, and cycle assignment.
std::string oracleFingerprint(const PipelineResult &R) {
  std::ostringstream OS;
  printFunction(R.Final, OS);
  printFunction(R.SymbolicTwin, OS);
  for (const BlockSchedule &B : R.Sched.Blocks) {
    OS << B.Makespan << ':';
    for (unsigned C : B.CycleOf)
      OS << ' ' << C;
  }
  return OS.str();
}

} // namespace

//===----------------------------------------------------------------------===//
// Oracle vs. brute force
//===----------------------------------------------------------------------===//

TEST(OracleBruteForce, MatchesExhaustiveEnumerationOnTinyBlocks) {
  MachineModel Roomy = MachineModel::paperTwoUnit(8);
  // Two registers starve any function that ever holds three values live
  // (three roots, an fma): the corpus must exercise both verdicts.
  MachineModel Tight = MachineModel::paperTwoUnit(2);
  unsigned Solved = 0, Infeasible = 0;
  for (unsigned Insts : {5u, 6u, 7u}) {
    std::vector<BatchItem> Corpus = smallCorpus(8, Insts, 1000 + Insts);
    for (const BatchItem &Item : Corpus)
      for (const MachineModel *M : {&Roomy, &Tight}) {
        unsigned Brute = bruteForceOptimum(Item.Input, *M);
        PipelineResult R =
            runStrategy(StrategyKind::Oracle, Item.Input, *M);
        if (R.Success) {
          ++Solved;
          EXPECT_EQ(R.StaticCycles, Brute)
              << Item.Name << " on " << M->name()
              << ": oracle disagrees with brute force";
        } else {
          ASSERT_EQ(R.Diag.code(), ErrorCode::AllocFailure)
              << Item.Name << " on " << M->name() << ": " << R.Diag.toString();
          ++Infeasible;
          EXPECT_EQ(Brute, Inf)
              << Item.Name << " on " << M->name()
              << ": oracle claims infeasible, brute force found a schedule";
        }
      }
  }
  // The split must exercise both verdicts or the test proves less than
  // it claims.
  EXPECT_GT(Solved, 0u);
  EXPECT_GT(Infeasible, 0u);
}

TEST(OracleBruteForce, MatchesExhaustiveEnumerationAtEightInstructions) {
  MachineModel M = MachineModel::paperTwoUnit(4);
  std::vector<BatchItem> Corpus = smallCorpus(2, 8, 42);
  for (const BatchItem &Item : Corpus) {
    unsigned Brute = bruteForceOptimum(Item.Input, M);
    PipelineResult R = runStrategy(StrategyKind::Oracle, Item.Input, M);
    if (R.Success)
      EXPECT_EQ(R.StaticCycles, Brute) << Item.Name;
    else
      EXPECT_EQ(Brute, Inf) << Item.Name << ": " << R.Diag.toString();
  }
}

TEST(OracleTest, SolvesAndVerifiesASimpleChain) {
  Function F("chain");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg A = B.loadImm(1);
  Reg C = B.loadImm(2);
  Reg D = B.binary(Opcode::Add, A, C);
  Reg E = B.binary(Opcode::FMul, A, D);
  B.ret(E);
  PipelineResult R =
      runAndMeasure(StrategyKind::Oracle, F, MachineModel::paperTwoUnit(8));
  ASSERT_TRUE(R.Success) << R.Diag.toString();
  EXPECT_TRUE(R.SemanticsPreserved);
  EXPECT_EQ(R.SpilledWebs, 0u);
  EXPECT_EQ(R.SpillInstructions, 0u);
  // Two loads co-issue, then add -> fmul -> ret serialize on flow
  // latency: 4 cycles is the critical path, and the oracle must find it.
  EXPECT_EQ(R.StaticCycles, 4u);
  // The two live values fit in two registers.
  EXPECT_EQ(R.RegistersUsed, 2u);
}

TEST(OracleTest, ProvesPressureFloorInfeasibility) {
  // One fma reads three simultaneously-live values: with two registers
  // no spill-free schedule exists, whatever the order.
  Function F("floor");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg A = B.loadImm(1);
  Reg C = B.loadImm(2);
  Reg D = B.loadImm(3);
  Reg E = B.fma(A, C, D);
  B.ret(E);
  PipelineResult R =
      runStrategy(StrategyKind::Oracle, F, MachineModel::paperTwoUnit(2));
  ASSERT_FALSE(R.Success);
  EXPECT_EQ(R.Diag.code(), ErrorCode::AllocFailure);
  EXPECT_EQ(bruteForceOptimum(F, MachineModel::paperTwoUnit(2)), Inf);
}

TEST(OracleTest, RejectsSymbolicReuseAsOutOfScope) {
  // %s0 is redefined: a renaming allocator could split the webs apart
  // and legally drop the output/anti edges, so the oracle must refuse
  // the optimality claim rather than risk being "beaten".
  Function F("reuse");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg A = B.loadImm(1);
  Reg C = B.loadImm(2);
  Reg D = B.binary(Opcode::Add, A, C);
  // Cross-instruction redefinition of %A: the add above must read the
  // old value first (anti edge) and the two defs order (output edge).
  B.binaryInto(A, Opcode::Add, C, C);
  B.ret(D);
  PipelineResult R =
      runStrategy(StrategyKind::Oracle, F, MachineModel::paperTwoUnit(8));
  ASSERT_FALSE(R.Success);
  EXPECT_EQ(R.Diag.code(), ErrorCode::SearchExhausted);
  EXPECT_NE(R.Diag.message().find("reuse"), std::string::npos);
}

TEST(OracleTest, RejectsMultiBlockFunctions) {
  Function F("twoblocks");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg A = B.loadImm(1);
  B.br(1);
  B.startBlock("exit");
  B.ret(A);
  PipelineResult R =
      runStrategy(StrategyKind::Oracle, F, MachineModel::paperTwoUnit(8));
  ASSERT_FALSE(R.Success);
  EXPECT_EQ(R.Diag.code(), ErrorCode::SearchExhausted);
}

TEST(OracleTest, DeterministicAcrossRepeatedRuns) {
  MachineModel M = MachineModel::paperTwoUnit(6);
  for (const BatchItem &Item : smallCorpus(5, 12, 7)) {
    PipelineResult First = runStrategy(StrategyKind::Oracle, Item.Input, M);
    PipelineResult Second = runStrategy(StrategyKind::Oracle, Item.Input, M);
    ASSERT_TRUE(First.Success) << Item.Name << ": " << First.Diag.toString();
    ASSERT_TRUE(Second.Success);
    EXPECT_EQ(oracleFingerprint(First), oracleFingerprint(Second))
        << Item.Name;
  }
}

//===----------------------------------------------------------------------===//
// Tournament: optimality over a real corpus, report determinism
//===----------------------------------------------------------------------===//

TEST(TournamentTest, NoHeuristicEverBeatsTheOracle) {
  TournamentOptions Opts;
  std::vector<BatchItem> Corpus = makeTournamentCorpus(200, 12, 7, Opts);
  ASSERT_EQ(Corpus.size(), 200u);
  MachineModel M = MachineModel::paperTwoUnit(8);
  json::Value Report = runTournament(Corpus, M, Opts);

  // The whole generated corpus is inside the oracle's envelope.
  const json::Value *Oracle = Report.find("oracle");
  ASSERT_NE(Oracle, nullptr);
  EXPECT_EQ(Oracle->find("solved")->asInt(), 200);

  // Aggregate tallies: nobody beats the baseline.
  const json::Value *Aggregate = Report.find("aggregate");
  ASSERT_NE(Aggregate, nullptr);
  ASSERT_TRUE(Aggregate->isArray());
  EXPECT_EQ(Aggregate->size(), allStrategies().size() - 1);
  for (const json::Value &Row : Aggregate->elements()) {
    const std::string Name = Row.find("strategy")->asString();
    EXPECT_EQ(Row.find("beats_oracle")->asInt(), 0) << Name;
    EXPECT_GE(Row.find("cycle_gap")->asInt(), 0) << Name;
    EXPECT_GE(Row.find("spill_gap")->asInt(), 0) << Name;
    EXPECT_EQ(Row.find("failures")->asInt(), 0) << Name;
  }

  // Re-derive the invariant from the per-function records rather than
  // trusting the aggregates: every successful spill-free heuristic
  // result costs at least the oracle's proven optimum.
  const json::Value *Functions = Report.find("functions");
  ASSERT_NE(Functions, nullptr);
  ASSERT_EQ(Functions->size(), 200u);
  unsigned CellsChecked = 0;
  for (const json::Value &FJ : Functions->elements()) {
    const json::Value *OJ = FJ.find("oracle");
    ASSERT_EQ(OJ->find("status")->asString(), "optimal");
    int64_t OracleCycles = OJ->find("cycles")->asInt();
    for (const json::Value &RJ : FJ.find("results")->elements()) {
      const json::Value *Spills = RJ.find("spills");
      if (Spills == nullptr || Spills->asInt() != 0)
        continue;
      EXPECT_GE(RJ.find("cycles")->asInt(), OracleCycles)
          << FJ.find("name")->asString() << " / "
          << RJ.find("strategy")->asString();
      EXPECT_EQ(RJ.find("cycle_gap")->asInt(),
                RJ.find("cycles")->asInt() - OracleCycles);
      ++CellsChecked;
    }
  }
  EXPECT_GT(CellsChecked, 600u) << "corpus produced too few comparable cells";
}

TEST(TournamentTest, ReportIsByteIdenticalAcrossWorkerCounts) {
  MachineModel M = MachineModel::paperTwoUnit(8);
  auto reportAt = [&M](unsigned Jobs) {
    telemetry::reset();
    TournamentOptions Opts;
    std::vector<BatchItem> Corpus = makeTournamentCorpus(60, 10, 11, Opts);
    Opts.Jobs = Jobs;
    return runTournament(Corpus, M, Opts).toString(0);
  };
  std::string Serial = reportAt(1);
  std::string Two = reportAt(2);
  std::string Eight = reportAt(8);
  telemetry::reset();
  EXPECT_EQ(Serial, Two) << "2 workers diverged from the serial reference";
  EXPECT_EQ(Serial, Eight) << "8 workers diverged from the serial reference";
}

TEST(TournamentTest, ReportCarriesSchemaAndCorpusEcho) {
  TournamentOptions Opts;
  std::vector<BatchItem> Corpus = makeTournamentCorpus(5, 8, 3, Opts);
  json::Value Report =
      runTournament(Corpus, MachineModel::paperTwoUnit(8), Opts);
  EXPECT_EQ(Report.find("schema")->asString(), TournamentSchemaName);
  EXPECT_EQ(Report.find("version")->asInt(), TournamentSchemaVersion);
  const json::Value *CorpusJ = Report.find("corpus");
  ASSERT_NE(CorpusJ, nullptr);
  EXPECT_EQ(CorpusJ->find("functions")->asInt(), 5);
  EXPECT_EQ(CorpusJ->find("instructions_per_block")->asInt(), 8);
  EXPECT_EQ(CorpusJ->find("seed")->asInt(), 3);
  EXPECT_EQ(CorpusJ->find("source")->asString(), "generated");
  const json::Value *Names = Report.find("strategies");
  ASSERT_NE(Names, nullptr);
  EXPECT_EQ(Names->size(), allStrategies().size());
  EXPECT_EQ(Names->elements().front().asString(), "oracle");
}

//===----------------------------------------------------------------------===//
// Negative paths: blowups degrade down the ladder
//===----------------------------------------------------------------------===//

namespace {

/// A wide, very parallel block the oracle cannot finish within a
/// one-node budget (but any heuristic compiles instantly).
Function wideBlock(unsigned Pairs = 8) {
  Function F("wide");
  IRBuilder B(F);
  B.startBlock("entry");
  std::vector<Reg> Vals;
  for (unsigned I = 0; I != Pairs; ++I)
    Vals.push_back(B.loadImm(static_cast<int64_t>(I)));
  Reg Acc = Vals[0];
  for (unsigned I = 1; I != Pairs; ++I)
    Acc = B.binary(Opcode::Add, Acc, Vals[I]);
  B.ret(Acc);
  return F;
}

/// Five independent mixed-unit chains joined by a combine tree, exactly
/// 30 instructions: ~200k search nodes (>100 ms) on the paper machine,
/// so a short real deadline reliably fires the oracle's every-256-nodes
/// poll long before the search completes.
Function hardBlock() {
  Function F("hard");
  IRBuilder B(F);
  B.startBlock("entry");
  std::vector<Reg> Heads;
  for (unsigned C = 0; C != 5; ++C) {
    Reg A = B.loadImm(static_cast<int64_t>(C + 1));
    Reg K = B.loadImm(static_cast<int64_t>(C + 7));
    Reg Cur = B.binary(Opcode::Add, A, K);
    for (unsigned I = 0; I != 2; ++I)
      Cur = B.binary((C + I) % 2 == 0 ? Opcode::FMul : Opcode::Add, Cur, K);
    Heads.push_back(Cur);
  }
  Reg Acc = Heads[0];
  for (unsigned C = 1; C != 5; ++C)
    Acc = B.binary(Opcode::Add, Acc, Heads[C]);
  B.ret(Acc);
  return F;
}

class OracleFaultTest : public testing::Test {
protected:
  void TearDown() override { faultinject::reset(); }
  static void arm(const std::string &Spec) {
    std::string Error;
    ASSERT_TRUE(faultinject::configure(Spec, Error)) << Error;
  }
};

} // namespace

TEST(OracleLadderTest, NodeBudgetExhaustionDegradesToAHeuristic) {
  BatchOptions Opts;
  Opts.Strategy = StrategyKind::Oracle;
  Opts.Oracle.NodeBudget = 1;
  GuardedResult G =
      compileFunctionGuarded(wideBlock(), MachineModel::paperTwoUnit(16), Opts);
  ASSERT_TRUE(G.Result.Success) << G.Result.Diag.toString();
  EXPECT_TRUE(G.Outcome.Degraded);
  EXPECT_EQ(G.Outcome.Requested, "oracle");
  EXPECT_EQ(G.Outcome.Used, "alloc-first");
  EXPECT_EQ(G.Outcome.Rung, 1u);
  ASSERT_EQ(G.Outcome.FailedAttempts.size(), 1u);
  EXPECT_EQ(G.Outcome.FailedAttempts[0].Rung, "oracle");
  EXPECT_EQ(G.Outcome.FailedAttempts[0].Diag.code(),
            ErrorCode::SearchExhausted);
  EXPECT_NE(G.Outcome.FailedAttempts[0].Diag.message().find("node budget"),
            std::string::npos);
}

TEST(OracleLadderTest, WithoutDegradationTheFailureIsStructured) {
  BatchOptions Opts;
  Opts.Strategy = StrategyKind::Oracle;
  Opts.Oracle.NodeBudget = 1;
  Opts.Degrade = false;
  GuardedResult G =
      compileFunctionGuarded(wideBlock(), MachineModel::paperTwoUnit(16), Opts);
  ASSERT_FALSE(G.Result.Success);
  EXPECT_EQ(G.Result.Diag.code(), ErrorCode::SearchExhausted);
  EXPECT_FALSE(G.Outcome.Degraded);
}

TEST(OracleLadderTest, RealDeadlineMidSearchDegradesToAHeuristic) {
  // A genuinely expiring watchdog, not an injected one: the oracle's
  // cooperative poll must convert the mid-search overrun into the
  // degradable SearchExhausted (the next rung gets a fresh deadline and
  // is orders of magnitude faster), never the ladder-fatal
  // DeadlineExceeded. hardBlock needs >100 ms of search on the machine
  // this was tuned on; the 10 ms budget leaves a >10x margin each way.
  BatchOptions Opts;
  Opts.Strategy = StrategyKind::Oracle;
  Opts.Oracle.NodeBudget = 0; // Only the deadline may stop this search.
  Opts.Budget.DeadlineMs = 10;
  GuardedResult G =
      compileFunctionGuarded(hardBlock(), MachineModel::paperTwoUnit(16), Opts);
  ASSERT_TRUE(G.Result.Success) << G.Result.Diag.toString();
  EXPECT_TRUE(G.Outcome.Degraded);
  EXPECT_EQ(G.Outcome.Used, "alloc-first");
  ASSERT_EQ(G.Outcome.FailedAttempts.size(), 1u);
  EXPECT_EQ(G.Outcome.FailedAttempts[0].Rung, "oracle");
  EXPECT_EQ(G.Outcome.FailedAttempts[0].Diag.code(),
            ErrorCode::SearchExhausted);
  EXPECT_NE(G.Outcome.FailedAttempts[0].Diag.message().find("deadline"),
            std::string::npos);
}

TEST_F(OracleFaultTest, InjectedDeadlineFailsFastBeforeTheSearch) {
  // budget.deadline makes deadline::expired() report an overrun at
  // every call, so the strategy prologue's checkpoint fires before the
  // search even starts: an already-blown deadline must fail fast with
  // the ladder-fatal DeadlineExceeded (a retry from the same input
  // would blow it again) — one attempt, no hang, no assert.
  arm("budget.deadline:1");
  BatchOptions Opts;
  Opts.Strategy = StrategyKind::Oracle;
  GuardedResult G =
      compileFunctionGuarded(hardBlock(), MachineModel::paperTwoUnit(16), Opts);
  EXPECT_FALSE(G.Result.Success);
  EXPECT_EQ(G.Result.Diag.code(), ErrorCode::DeadlineExceeded);
  ASSERT_EQ(G.Outcome.FailedAttempts.size(), 1u);
  EXPECT_EQ(G.Outcome.FailedAttempts[0].Rung, "oracle");
  EXPECT_EQ(G.Outcome.FailedAttempts[0].Diag.code(),
            ErrorCode::DeadlineExceeded);
}

#ifdef PIRAC_PATH
TEST(OracleIsolationTest, NodeBudgetDegradesUnderProcessIsolation) {
  // Same ladder walk, but every rung runs in a sandboxed pirac child
  // with the wall-clock watchdog armed (far above anything this compile
  // needs, so the path is exercised without timing sensitivity). The
  // search-exhausted diagnostic must survive the wire.
  BatchOptions Opts;
  Opts.Strategy = StrategyKind::Oracle;
  Opts.Oracle.NodeBudget = 1;
  Opts.Jobs = 1;
  Opts.Isolate = true;
  Opts.WorkerExe = PIRAC_PATH;
  Opts.RetryBackoffMs = 1;
  Opts.ChildTimeoutMs = 60000;
  std::vector<BatchItem> Batch;
  Batch.push_back({"wide.pir", wideBlock()});
  BatchResult BR =
      compileBatch(Batch, MachineModel::paperTwoUnit(16), Opts);
  ASSERT_EQ(BR.Results.size(), 1u);
  ASSERT_TRUE(BR.Results[0].Success) << BR.Results[0].Diag.toString();
  EXPECT_EQ(BR.Isolated, 1u);
  EXPECT_EQ(BR.Degraded, 1u);
  EXPECT_EQ(BR.Timeouts, 0u);
  EXPECT_EQ(BR.Crashes, 0u);
  const CompileOutcome &O = BR.Outcomes[0];
  EXPECT_TRUE(O.Degraded);
  EXPECT_EQ(O.Used, "alloc-first");
  EXPECT_TRUE(O.Isolation.Isolated);
  // One child per attempted rung: the exhausted oracle, the rescuer.
  EXPECT_GE(O.Isolation.Spawns, 2u);
  ASSERT_EQ(O.FailedAttempts.size(), 1u);
  EXPECT_EQ(O.FailedAttempts[0].Rung, "oracle");
  EXPECT_EQ(O.FailedAttempts[0].Diag.code(), ErrorCode::SearchExhausted);
}
#endif // PIRAC_PATH

//===----------------------------------------------------------------------===//
// Strategy-name table (the list the CLI error message shows)
//===----------------------------------------------------------------------===//

TEST(StrategyNameTest, EveryStrategyRoundTripsThroughItsName) {
  for (StrategyKind Kind : allStrategies()) {
    Expected<StrategyKind> Back = strategyFromName(strategyName(Kind));
    ASSERT_TRUE(Back) << strategyName(Kind);
    EXPECT_EQ(*Back, Kind);
  }
  Expected<StrategyKind> Alias = strategyFromName("ips");
  ASSERT_TRUE(Alias);
  EXPECT_EQ(*Alias, StrategyKind::IntegratedPrepass);
}

TEST(StrategyNameTest, UnknownNameErrorListsEveryStrategy) {
  Expected<StrategyKind> E = strategyFromName("no-such-strategy");
  ASSERT_FALSE(E);
  EXPECT_EQ(E.status().code(), ErrorCode::InvalidArgument);
  const std::string Message = E.status().message();
  // Generated from the same table strategyName reads: every strategy —
  // "spill-all" was historically missing — and the alias must appear.
  for (StrategyKind Kind : allStrategies())
    EXPECT_NE(Message.find(strategyName(Kind)), std::string::npos)
        << "error message omits " << strategyName(Kind) << ": " << Message;
  EXPECT_NE(Message.find("spill-all"), std::string::npos) << Message;
  EXPECT_NE(Message.find("ips"), std::string::npos) << Message;
}
