//===- tests/ir_test.cpp - IR layer unit tests ----------------------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "ir/IRBuilder.h"
#include "ir/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace pira;

//===----------------------------------------------------------------------===//
// Opcode metadata
//===----------------------------------------------------------------------===//

TEST(OpcodeTest, EveryOpcodeHasAName) {
  for (unsigned I = 0; I != NumOpcodes; ++I) {
    const OpcodeInfo &Info = opcodeInfo(static_cast<Opcode>(I));
    EXPECT_NE(Info.Name, nullptr);
    EXPECT_GT(std::string(Info.Name).size(), 0u);
    EXPECT_GE(Info.DefaultLatency, 1u);
  }
}

TEST(OpcodeTest, UnitRouting) {
  EXPECT_EQ(opcodeInfo(Opcode::Add).Unit, UnitKind::IntALU);
  EXPECT_EQ(opcodeInfo(Opcode::FMul).Unit, UnitKind::FPU);
  EXPECT_EQ(opcodeInfo(Opcode::Load).Unit, UnitKind::Memory);
  EXPECT_EQ(opcodeInfo(Opcode::Store).Unit, UnitKind::Memory);
  EXPECT_EQ(opcodeInfo(Opcode::Br).Unit, UnitKind::Branch);
}

TEST(OpcodeTest, TerminatorsAndMemoryFlags) {
  EXPECT_TRUE(opcodeInfo(Opcode::Br).IsTerminator);
  EXPECT_TRUE(opcodeInfo(Opcode::CondBr).IsTerminator);
  EXPECT_TRUE(opcodeInfo(Opcode::Ret).IsTerminator);
  EXPECT_FALSE(opcodeInfo(Opcode::Add).IsTerminator);
  EXPECT_TRUE(opcodeInfo(Opcode::Load).IsMemory);
  EXPECT_TRUE(opcodeInfo(Opcode::Store).IsMemory);
  EXPECT_FALSE(opcodeInfo(Opcode::Store).HasDef);
  EXPECT_TRUE(opcodeInfo(Opcode::Load).HasDef);
}

TEST(OpcodeTest, UnitKindNames) {
  EXPECT_STREQ(unitKindName(UnitKind::IntALU), "fixed");
  EXPECT_STREQ(unitKindName(UnitKind::FPU), "float");
  EXPECT_STREQ(unitKindName(UnitKind::Memory), "mem");
  EXPECT_STREQ(unitKindName(UnitKind::Branch), "branch");
}

//===----------------------------------------------------------------------===//
// Function / IRBuilder
//===----------------------------------------------------------------------===//

TEST(FunctionTest, BuilderProducesVerifiedFunction) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg A = B.loadImm(2);
  Reg C = B.binary(Opcode::Add, A, A);
  B.ret(C);
  std::string Err;
  EXPECT_TRUE(verifyFunction(F, Err)) << Err;
  EXPECT_EQ(F.numBlocks(), 1u);
  EXPECT_EQ(F.totalInstructions(), 3u);
  EXPECT_EQ(F.numRegs(), 2u);
}

TEST(FunctionTest, PredecessorsComputedFromTargets) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg C = B.loadImm(1);
  B.condBr(C, 1, 2);
  B.startBlock("a");
  B.br(3);
  B.startBlock("b");
  B.br(3);
  B.startBlock("join");
  B.ret();
  auto Preds = F.predecessors();
  EXPECT_TRUE(Preds[0].empty());
  EXPECT_EQ(Preds[1], std::vector<unsigned>{0});
  EXPECT_EQ(Preds[2], std::vector<unsigned>{0});
  EXPECT_EQ(Preds[3], (std::vector<unsigned>{1, 2}));
}

TEST(FunctionTest, DeclareArrayWidensNotShrinks) {
  Function F("t");
  F.declareArray("a", 10);
  F.declareArray("a", 5);
  EXPECT_EQ(F.arraySize("a"), 10u);
  F.declareArray("a", 20);
  EXPECT_EQ(F.arraySize("a"), 20u);
  EXPECT_EQ(F.arraySize("missing"), 0u);
}

TEST(FunctionTest, FindBlockByLabel) {
  Function F("t");
  F.addBlock("one");
  F.addBlock("two");
  EXPECT_EQ(F.findBlock("two"), 1);
  EXPECT_EQ(F.findBlock("nope"), -1);
}

//===----------------------------------------------------------------------===//
// Printer / Parser round trip
//===----------------------------------------------------------------------===//

static Function buildRichFunction() {
  Function F("rich");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg I = B.loadImm(0);
  Reg N = B.loadImm(8);
  Reg One = B.loadImm(1);
  B.br(1);
  B.startBlock("loop");
  Reg X = B.load("a", I, 2);
  Reg Y = B.load("b", NoReg, 0);
  Reg S = B.binary(Opcode::FAdd, X, Y);
  B.store("c", S, I, 0);
  B.binaryInto(I, Opcode::Add, I, One);
  Reg Cmp = B.binary(Opcode::CmpLt, I, N);
  B.condBr(Cmp, 1, 2);
  B.startBlock("exit");
  B.ret(S);
  F.declareArray("a", 16);
  F.declareArray("b", 1);
  F.declareArray("c", 16);
  return F;
}

TEST(ParserTest, RoundTripPreservesText) {
  Function F = buildRichFunction();
  std::string Text = functionToString(F);
  Function G;
  std::string Err;
  ASSERT_TRUE(parseFunction(Text, G, Err)) << Err;
  EXPECT_EQ(functionToString(G), Text);
}

TEST(ParserTest, RoundTripPreservesSemantics) {
  Function F = buildRichFunction();
  Function G;
  std::string Err;
  ASSERT_TRUE(parseFunction(functionToString(F), G, Err)) << Err;
  ExecResult A = interpret(F, makeInitialState(F, 3));
  ExecResult B = interpret(G, makeInitialState(G, 3));
  ASSERT_TRUE(A.Completed);
  ASSERT_TRUE(B.Completed);
  EXPECT_EQ(A.ReturnValue, B.ReturnValue);
  EXPECT_TRUE(statesEquivalent(A.Final, B.Final));
}

TEST(ParserTest, ParsesPhysicalRegisters) {
  const char *Text = "func @p regs 2 physical {\n"
                     "block entry:\n"
                     "  %r0 = li 4\n"
                     "  %r1 = add %r0, %r0\n"
                     "  ret %r1\n"
                     "}\n";
  Function F;
  std::string Err;
  ASSERT_TRUE(parseFunction(Text, F, Err)) << Err;
  EXPECT_TRUE(F.isAllocated());
}

TEST(ParserTest, RejectsMixedRegisterKinds) {
  const char *Text = "func @p regs 2 {\n"
                     "block entry:\n"
                     "  %s0 = li 4\n"
                     "  %r1 = add %s0, %s0\n"
                     "  ret %r1\n"
                     "}\n";
  Function F;
  std::string Err;
  EXPECT_FALSE(parseFunction(Text, F, Err));
  EXPECT_NE(Err.find("mixed"), std::string::npos);
}

TEST(ParserTest, RejectsUnknownOpcode) {
  Function F;
  std::string Err;
  EXPECT_FALSE(parseFunction(
      "func @x regs 1 {\nblock e:\n  %s0 = frobnicate 3\n  ret\n}\n", F,
      Err));
  EXPECT_NE(Err.find("unknown opcode"), std::string::npos);
}

TEST(ParserTest, RejectsUndefinedLabel) {
  Function F;
  std::string Err;
  EXPECT_FALSE(
      parseFunction("func @x regs 0 {\nblock e:\n  br nowhere\n}\n", F, Err));
  EXPECT_NE(Err.find("undefined block label"), std::string::npos);
}

TEST(ParserTest, RejectsDuplicateLabel) {
  Function F;
  std::string Err;
  EXPECT_FALSE(parseFunction(
      "func @x regs 0 {\nblock e:\n  ret\nblock e:\n  ret\n}\n", F, Err));
  EXPECT_NE(Err.find("duplicate block label"), std::string::npos);
}

TEST(ParserTest, RejectsTooSmallRegisterDeclaration) {
  Function F;
  std::string Err;
  EXPECT_FALSE(parseFunction(
      "func @x regs 1 {\nblock e:\n  %s5 = li 0\n  ret\n}\n", F, Err));
  EXPECT_NE(Err.find("register count"), std::string::npos);
}

TEST(ParserTest, CommentsAreIgnored) {
  const char *Text = "# leading comment\n"
                     "func @c regs 1 { # trailing\n"
                     "block e:\n"
                     "  %s0 = li 2 # value\n"
                     "  ret %s0\n"
                     "}\n";
  Function F;
  std::string Err;
  ASSERT_TRUE(parseFunction(Text, F, Err)) << Err;
  ExecResult R = interpret(F, makeInitialState(F, 1));
  EXPECT_EQ(R.ReturnValue, 2);
}

TEST(ParserTest, NegativeImmediates) {
  Function F;
  std::string Err;
  ASSERT_TRUE(parseFunction(
      "func @n regs 1 {\nblock e:\n  %s0 = li -42\n  ret %s0\n}\n", F, Err))
      << Err;
  ExecResult R = interpret(F, makeInitialState(F, 1));
  EXPECT_EQ(R.ReturnValue, -42);
}

//===----------------------------------------------------------------------===//
// Verifier
//===----------------------------------------------------------------------===//

TEST(VerifierTest, AcceptsWellFormed) {
  Function F = buildRichFunction();
  std::string Err;
  EXPECT_TRUE(verifyFunction(F, Err)) << Err;
}

TEST(VerifierTest, RejectsEmptyFunction) {
  Function F("empty");
  std::string Err;
  EXPECT_FALSE(verifyFunction(F, Err));
}

TEST(VerifierTest, RejectsMissingTerminator) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("entry");
  B.loadImm(1);
  std::string Err;
  EXPECT_FALSE(verifyFunction(F, Err));
  EXPECT_NE(Err.find("terminator"), std::string::npos);
}

TEST(VerifierTest, RejectsOutOfRangeRegister) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg A = B.loadImm(1);
  B.ret(A);
  F.setNumRegs(0); // corrupt the declared space
  std::string Err;
  EXPECT_FALSE(verifyFunction(F, Err));
  EXPECT_NE(Err.find("register"), std::string::npos);
}

TEST(VerifierTest, RejectsBranchTargetOutOfRange) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("entry");
  B.br(0);
  F.block(0).inst(0).setTargets({7});
  std::string Err;
  EXPECT_FALSE(verifyFunction(F, Err));
  EXPECT_NE(Err.find("target"), std::string::npos);
}

TEST(VerifierTest, RejectsOutOfBoundsConstantAddress) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg X = B.load("a", NoReg, 63);
  B.ret(X);
  F.declareArray("a", 16); // already 64 from builder default; stays 64
  // Force a smaller array by rebuilding the declaration.
  Function G("t2");
  IRBuilder B2(G);
  B2.startBlock("entry");
  Reg Y = B2.load("small", NoReg, 80);
  B2.ret(Y);
  std::string Err;
  EXPECT_FALSE(verifyFunction(G, Err));
  EXPECT_NE(Err.find("bounds"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Interpreter
//===----------------------------------------------------------------------===//

TEST(InterpreterTest, ArithmeticOpcodes) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("e");
  Reg A = B.loadImm(10);
  Reg C = B.loadImm(3);
  Reg Sum = B.binary(Opcode::Add, A, C);    // 13
  Reg Dif = B.binary(Opcode::Sub, Sum, C);  // 10
  Reg Mul = B.binary(Opcode::Mul, Dif, C);  // 30
  Reg Div = B.binary(Opcode::Div, Mul, C);  // 10
  Reg Neg = B.unary(Opcode::Neg, Div);      // -10
  Reg Xor = B.binary(Opcode::Xor, Neg, A);  // -10 ^ 10
  B.ret(Xor);
  ExecResult R = interpret(F, makeInitialState(F, 0));
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.ReturnValue, (-10 ^ 10));
}

TEST(InterpreterTest, DivisionByZeroYieldsZero) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("e");
  Reg A = B.loadImm(10);
  Reg Z = B.loadImm(0);
  B.ret(B.binary(Opcode::Div, A, Z));
  ExecResult R = interpret(F, makeInitialState(F, 0));
  EXPECT_EQ(R.ReturnValue, 0);
}

TEST(InterpreterTest, ShiftsAndCompares) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("e");
  Reg A = B.loadImm(5);
  Reg Two = B.loadImm(2);
  Reg Shl = B.binary(Opcode::Shl, A, Two); // 20
  Reg Shr = B.binary(Opcode::Shr, Shl, Two); // 5
  Reg Eq = B.binary(Opcode::CmpEq, Shr, A);  // 1
  Reg Lt = B.binary(Opcode::CmpLt, A, Two);  // 0
  Reg Le = B.binary(Opcode::CmpLe, A, A);    // 1
  Reg Sum = B.binary(Opcode::Add, Eq, Lt);
  B.ret(B.binary(Opcode::Add, Sum, Le));
  ExecResult R = interpret(F, makeInitialState(F, 0));
  EXPECT_EQ(R.ReturnValue, 2);
}

TEST(InterpreterTest, FmaSemantics) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("e");
  Reg A = B.loadImm(3);
  Reg C = B.loadImm(4);
  Reg D = B.loadImm(5);
  B.ret(B.fma(A, C, D)); // 3*4+5
  ExecResult R = interpret(F, makeInitialState(F, 0));
  EXPECT_EQ(R.ReturnValue, 17);
}

TEST(InterpreterTest, LoadStoreRoundTrip) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("e");
  Reg V = B.loadImm(99);
  B.store("a", V, NoReg, 5);
  Reg L = B.load("a", NoReg, 5);
  B.ret(L);
  ExecResult R = interpret(F, makeInitialState(F, 0));
  EXPECT_EQ(R.ReturnValue, 99);
}

TEST(InterpreterTest, IndexedAddressingWraps) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("e");
  Reg V = B.loadImm(7);
  Reg I = B.loadImm(70); // wraps to 70 mod 64 = 6
  B.store("a", V, I, 0);
  Reg L = B.load("a", NoReg, 6);
  B.ret(L);
  ExecResult R = interpret(F, makeInitialState(F, 0));
  EXPECT_EQ(R.ReturnValue, 7);
}

TEST(InterpreterTest, LoopExecutesCorrectCount) {
  // sum = 0; for (i = 0; i < 10; ++i) sum += 2;  => 20
  Function F("t");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Sum = B.loadImm(0);
  Reg I = B.loadImm(0);
  Reg N = B.loadImm(10);
  Reg One = B.loadImm(1);
  Reg Two = B.loadImm(2);
  B.br(1);
  B.startBlock("loop");
  B.binaryInto(Sum, Opcode::Add, Sum, Two);
  B.binaryInto(I, Opcode::Add, I, One);
  Reg Cmp = B.binary(Opcode::CmpLt, I, N);
  B.condBr(Cmp, 1, 2);
  B.startBlock("exit");
  B.ret(Sum);
  ExecResult R = interpret(F, makeInitialState(F, 0));
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.ReturnValue, 20);
}

TEST(InterpreterTest, StepBudgetStopsInfiniteLoop) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("spin");
  B.br(0);
  ExecResult R = interpret(F, makeInitialState(F, 0), /*MaxSteps=*/100);
  EXPECT_FALSE(R.Completed);
  EXPECT_NE(R.Error.find("budget"), std::string::npos);
}

TEST(InterpreterTest, InitialStateIsDeterministicPerSeed) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("e");
  B.ret(B.load("a", NoReg, 3));
  ExecResult R1 = interpret(F, makeInitialState(F, 11));
  ExecResult R2 = interpret(F, makeInitialState(F, 11));
  ExecResult R3 = interpret(F, makeInitialState(F, 12));
  EXPECT_EQ(R1.ReturnValue, R2.ReturnValue);
  // Different seeds should (overwhelmingly) differ somewhere.
  EXPECT_FALSE(statesEquivalent(R1.Final, R3.Final));
}

TEST(InterpreterTest, StatesEquivalentIgnoresRegisters) {
  ExecState A, B;
  A.Regs = {1, 2, 3};
  B.Regs = {9};
  A.Arrays["m"] = {5, 6};
  B.Arrays["m"] = {5, 6};
  EXPECT_TRUE(statesEquivalent(A, B));
  B.Arrays["m"][1] = 7;
  EXPECT_FALSE(statesEquivalent(A, B));
}
