//===- tests/transforms_test.cpp - IR transformation tests ----------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Interpreter.h"
#include "ir/Verifier.h"
#include "machine/MachineModel.h"
#include "pipeline/Strategies.h"
#include "analysis/DependenceGraph.h"
#include "analysis/Webs.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "transforms/Cleanup.h"
#include "transforms/Normalize.h"
#include "transforms/LoopUnroller.h"
#include "workloads/Kernels.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

using namespace pira;

namespace {

/// Interprets both functions from the same seed and compares the
/// observable outputs.
void expectSameSemantics(const Function &A, const Function &B,
                         uint64_t Seed, const std::string &What) {
  ExecState InitA = makeInitialState(A, Seed);
  ExecState InitB = makeInitialState(B, Seed);
  for (auto &[Name, Data] : InitB.Arrays) {
    auto It = InitA.Arrays.find(Name);
    if (It != InitA.Arrays.end())
      Data = It->second;
  }
  ExecResult RA = interpret(A, std::move(InitA));
  ExecResult RB = interpret(B, std::move(InitB));
  ASSERT_TRUE(RA.Completed) << What;
  ASSERT_TRUE(RB.Completed) << What << ": " << RB.Error;
  EXPECT_TRUE(statesEquivalent(RA.Final, RB.Final)) << What;
  EXPECT_EQ(RA.HasReturnValue, RB.HasReturnValue) << What;
  if (RA.HasReturnValue) {
    EXPECT_EQ(RA.ReturnValue, RB.ReturnValue) << What;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Loop unrolling
//===----------------------------------------------------------------------===//

TEST(UnrollTest, UnrollsDotProductPreservingSemantics) {
  for (unsigned Factor : {2u, 4u, 8u}) {
    Function F = dotProduct(1); // 64 iterations, step 1
    Function Before = F;
    ASSERT_TRUE(unrollCountedLoop(F, 1, Factor)) << "factor " << Factor;
    std::string Err;
    ASSERT_TRUE(verifyFunction(F, Err)) << Err;
    expectSameSemantics(Before, F, 33,
                        "dot unroll x" + std::to_string(Factor));
  }
}

TEST(UnrollTest, BodyGrowsByFactor) {
  Function F = dotProduct(1);
  unsigned BodyBefore = F.block(1).size();
  ASSERT_TRUE(unrollCountedLoop(F, 1, 4));
  // body+update replicated 4x, one guard + branch.
  EXPECT_EQ(F.block(1).size(), (BodyBefore - 2) * 4 + 2);
}

TEST(UnrollTest, FreshNamesKeepCopiesIndependent) {
  Function F = dotProduct(1);
  ASSERT_TRUE(unrollCountedLoop(F, 1, 2));
  // The two copies' loads must define different registers (renamed), so
  // a scheduler can overlap them.
  std::vector<Reg> LoadDefs;
  for (const Instruction &I : F.block(1).instructions())
    if (I.opcode() == Opcode::Load)
      LoadDefs.push_back(I.def());
  ASSERT_EQ(LoadDefs.size(), 4u);
  EXPECT_NE(LoadDefs[0], LoadDefs[2]);
  EXPECT_NE(LoadDefs[1], LoadDefs[3]);
}

TEST(UnrollTest, RefusesNonDividingFactor) {
  Function F = dotProduct(1); // 64 iterations
  EXPECT_FALSE(unrollCountedLoop(F, 1, 5));
  EXPECT_FALSE(unrollCountedLoop(F, 1, 7));
}

TEST(UnrollTest, RefusesNonLoopBlocks) {
  Function F = dotProduct(1);
  EXPECT_FALSE(unrollCountedLoop(F, 0, 2)) << "entry is not a loop";
  EXPECT_FALSE(unrollCountedLoop(F, 2, 2)) << "exit is not a loop";
}

TEST(UnrollTest, FactorOneIsIdentity) {
  Function F = dotProduct(1);
  Function Before = F;
  EXPECT_TRUE(unrollCountedLoop(F, 1, 1));
  EXPECT_EQ(F.block(1).size(), Before.block(1).size());
}

TEST(UnrollTest, UnrollAllHandlesMultipleLoops) {
  Function F = twoLoops(); // two counted loops, 32 iterations each
  Function Before = F;
  EXPECT_EQ(unrollAllLoops(F, 4), 2u);
  std::string Err;
  ASSERT_TRUE(verifyFunction(F, Err)) << Err;
  expectSameSemantics(Before, F, 5, "twoLoops unroll");
}

TEST(UnrollTest, UnrolledLoopSchedulesFasterPerElement) {
  // The substrate-level point of unrolling: more ILP per trip.
  MachineModel M = MachineModel::vliw4(12);
  Function U1 = dotProduct(1);
  Function U4 = dotProduct(1);
  ASSERT_TRUE(unrollCountedLoop(U4, 1, 4));
  PipelineResult R1 = runAndMeasure(StrategyKind::Combined, U1, M);
  PipelineResult R4 = runAndMeasure(StrategyKind::Combined, U4, M);
  ASSERT_TRUE(R1.Success) << R1.Error;
  ASSERT_TRUE(R4.Success) << R4.Error;
  EXPECT_LT(R4.DynCycles, R1.DynCycles);
}

TEST(UnrollTest, SemanticsAcrossKernelLoops) {
  for (auto &[Name, Kernel] : standardKernelSuite()) {
    Function F = Kernel;
    unsigned Done = unrollAllLoops(F, 2);
    if (Done == 0)
      continue; // straight-line kernels or non-dividing trip counts
    std::string Err;
    ASSERT_TRUE(verifyFunction(F, Err)) << Name << ": " << Err;
    expectSameSemantics(Kernel, F, 44, Name);
  }
}

//===----------------------------------------------------------------------===//
// Dead code elimination
//===----------------------------------------------------------------------===//

TEST(DceTest, RemovesUnusedPureDefs) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("e");
  Reg A = B.loadImm(1);
  B.binary(Opcode::Add, A, A);       // dead
  Reg C = B.binary(Opcode::Mul, A, A); // live via ret
  B.load("m", NoReg, 0);             // dead load (pure)
  B.ret(C);
  EXPECT_EQ(eliminateDeadCode(F), 2u);
  EXPECT_EQ(F.block(0).size(), 3u);
  ExecResult R = interpret(F, makeInitialState(F, 1));
  EXPECT_EQ(R.ReturnValue, 1);
}

TEST(DceTest, CascadesThroughChains) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("e");
  Reg A = B.loadImm(1);
  Reg D1 = B.binary(Opcode::Add, A, A);  // only feeds D2
  Reg D2 = B.binary(Opcode::Mul, D1, D1); // only feeds D3
  B.binary(Opcode::Sub, D2, D2);          // dead
  B.ret(A);
  EXPECT_EQ(eliminateDeadCode(F), 3u) << "whole chain dies";
  EXPECT_EQ(F.block(0).size(), 2u);
}

TEST(DceTest, KeepsStoresAndTerminators) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("e");
  Reg A = B.loadImm(1);
  B.store("m", A, NoReg, 0);
  B.ret();
  EXPECT_EQ(eliminateDeadCode(F), 0u);
  EXPECT_EQ(F.block(0).size(), 3u);
}

TEST(DceTest, NoopOnCleanKernels) {
  for (auto &[Name, Kernel] : standardKernelSuite()) {
    Function F = Kernel;
    EXPECT_EQ(eliminateDeadCode(F), 0u) << Name;
  }
}

//===----------------------------------------------------------------------===//
// Copy propagation
//===----------------------------------------------------------------------===//

TEST(CopyPropTest, ForwardsThroughCopies) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("e");
  Reg A = B.loadImm(7);
  Reg C = B.copy(A);
  Reg D = B.binary(Opcode::Add, C, C);
  B.ret(D);
  EXPECT_EQ(propagateCopies(F), 2u) << "both add operands forwarded";
  // The add now reads A directly; DCE can kill the copy.
  EXPECT_EQ(F.block(0).inst(2).uses()[0], A);
  EXPECT_EQ(eliminateDeadCode(F), 1u);
  ExecResult R = interpret(F, makeInitialState(F, 1));
  EXPECT_EQ(R.ReturnValue, 14);
}

TEST(CopyPropTest, StopsAtSourceRedefinition) {
  Function F("t");
  F.setNumRegs(3);
  F.addBlock("e");
  F.block(0).append(Instruction(Opcode::LoadImm, 0, {}, 1));
  F.block(0).append(Instruction(Opcode::Copy, 1, {0}));
  F.block(0).append(Instruction(Opcode::LoadImm, 0, {}, 9)); // src redefined
  F.block(0).append(Instruction(Opcode::Add, 2, {1, 1}));    // must read 1
  F.block(0).append(Instruction(Opcode::Ret, NoReg, {2}));
  propagateCopies(F);
  EXPECT_EQ(F.block(0).inst(3).uses()[0], 1u)
      << "forwarding through a clobbered source would change semantics";
  ExecResult R = interpret(F, makeInitialState(F, 1));
  EXPECT_EQ(R.ReturnValue, 2);
}

TEST(CopyPropTest, StopsAtDestRedefinition) {
  Function F("t");
  F.setNumRegs(3);
  F.addBlock("e");
  F.block(0).append(Instruction(Opcode::LoadImm, 0, {}, 1));
  F.block(0).append(Instruction(Opcode::Copy, 1, {0}));
  F.block(0).append(Instruction(Opcode::LoadImm, 1, {}, 5)); // dest clobbered
  F.block(0).append(Instruction(Opcode::Add, 2, {1, 1}));
  F.block(0).append(Instruction(Opcode::Ret, NoReg, {2}));
  propagateCopies(F);
  EXPECT_EQ(F.block(0).inst(3).uses()[0], 1u);
  ExecResult R = interpret(F, makeInitialState(F, 1));
  EXPECT_EQ(R.ReturnValue, 10);
}

TEST(CopyPropTest, SemanticsPreservedOnRandomPrograms) {
  for (unsigned Seed = 1; Seed <= 10; ++Seed) {
    RandomProgramOptions Opts;
    Opts.Seed = Seed * 449;
    Opts.Shape = static_cast<CfgShape>(Seed % 5);
    Function F = generateRandomProgram(Opts);
    Function Before = F;
    propagateCopies(F);
    eliminateDeadCode(F);
    std::string Err;
    ASSERT_TRUE(verifyFunction(F, Err)) << Err;
    expectSameSemantics(Before, F, Seed, "seed " + std::to_string(Seed));
  }
}

//===----------------------------------------------------------------------===//
// Web-name normalization (one register per value)
//===----------------------------------------------------------------------===//

TEST(NormalizeTest, SplitsIndependentReusesOfOneRegister) {
  // Hand-written code that reuses %s0 for two unrelated values.
  const char *Text = "func @reuse regs 2 {\n"
                     "block e:\n"
                     "  %s0 = li 1\n"
                     "  %s1 = add %s0, %s0\n"
                     "  %s0 = li 9\n"       // unrelated value, same reg
                     "  %s1 = mul %s0, %s1\n"
                     "  ret %s1\n"
                     "}\n";
  Function F;
  std::string Err;
  ASSERT_TRUE(parseFunction(Text, F, Err)) << Err;
  Function Before = F;
  unsigned Changed = normalizeWebNames(F);
  EXPECT_GT(Changed, 0u);
  // The two defs of the old %s0 now use different registers.
  EXPECT_NE(F.block(0).inst(0).def(), F.block(0).inst(2).def());
  ASSERT_TRUE(verifyFunction(F, Err)) << Err;
  expectSameSemantics(Before, F, 3, "normalize reuse");
}

TEST(NormalizeTest, RemovesSpuriousDependences) {
  // Before normalization the register reuse creates anti/output edges;
  // after it, the symbolic schedule graph holds only real constraints.
  const char *Text = "func @reuse regs 2 {\n"
                     "block e:\n"
                     "  %s0 = li 1\n"
                     "  %s1 = add %s0, %s0\n"
                     "  %s0 = li 9\n"
                     "  %s1 = mul %s0, %s1\n"
                     "  ret %s1\n"
                     "}\n";
  Function F;
  std::string Err;
  ASSERT_TRUE(parseFunction(Text, F, Err)) << Err;
  MachineModel M = MachineModel::paperTwoUnit();
  unsigned EdgesBefore = 0, EdgesAfter = 0;
  {
    DependenceGraph G(F, 0, M);
    for (const DepEdge &E : G.edges())
      if (E.Kind == DepKind::Anti || E.Kind == DepKind::Output)
        ++EdgesBefore;
  }
  normalizeWebNames(F);
  {
    DependenceGraph G(F, 0, M);
    for (const DepEdge &E : G.edges())
      if (E.Kind == DepKind::Anti || E.Kind == DepKind::Output)
        ++EdgesAfter;
  }
  EXPECT_GT(EdgesBefore, 0u);
  EXPECT_EQ(EdgesAfter, 0u);
}

TEST(NormalizeTest, KeepsCompoundWebsTogether) {
  // Loop-carried registers legitimately share a name across their
  // merged definitions; normalization must not split them.
  Function F = dotProduct(1);
  normalizeWebNames(F);
  std::string Err;
  ASSERT_TRUE(verifyFunction(F, Err)) << Err;
  // The accumulator still has two defs of one register.
  Webs W(F);
  unsigned AccWeb = W.webOfUse(2, 0, 0); // exit ret reads the sum
  EXPECT_EQ(W.defsOfWeb(AccWeb).size(), 2u);
  ExecResult RA = interpret(dotProduct(1), makeInitialState(dotProduct(1), 2));
  ExecResult RB = interpret(F, makeInitialState(F, 2));
  ASSERT_TRUE(RA.Completed);
  ASSERT_TRUE(RB.Completed);
  EXPECT_EQ(RA.ReturnValue, RB.ReturnValue);
}

TEST(NormalizeTest, IdempotentOnBuilderOutput) {
  for (auto &[Name, Kernel] : standardKernelSuite()) {
    Function F = Kernel;
    normalizeWebNames(F);
    Function Once = F;
    EXPECT_EQ(normalizeWebNames(F), 0u) << Name;
    EXPECT_EQ(functionToString(F), functionToString(Once)) << Name;
  }
}

TEST(NormalizeTest, SemanticsOnRandomPrograms) {
  for (unsigned Seed = 1; Seed <= 10; ++Seed) {
    RandomProgramOptions Opts;
    Opts.Seed = Seed * 8111;
    Opts.Shape = static_cast<CfgShape>(Seed % 5);
    Function F = generateRandomProgram(Opts);
    Function Before = F;
    normalizeWebNames(F);
    std::string Err;
    ASSERT_TRUE(verifyFunction(F, Err)) << Err;
    expectSameSemantics(Before, F, Seed, "seed " + std::to_string(Seed));
  }
}
