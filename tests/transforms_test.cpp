//===- tests/transforms_test.cpp - IR transformation tests ----------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Interpreter.h"
#include "ir/Verifier.h"
#include "machine/MachineModel.h"
#include "pipeline/Strategies.h"
#include "analysis/DependenceGraph.h"
#include "analysis/Webs.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "transforms/Cleanup.h"
#include "transforms/DagReduce.h"
#include "transforms/Normalize.h"
#include "transforms/LoopUnroller.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"
#include "workloads/Kernels.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

using namespace pira;

namespace {

/// Interprets both functions from the same seed and compares the
/// observable outputs.
void expectSameSemantics(const Function &A, const Function &B,
                         uint64_t Seed, const std::string &What) {
  ExecState InitA = makeInitialState(A, Seed);
  ExecState InitB = makeInitialState(B, Seed);
  for (auto &[Name, Data] : InitB.Arrays) {
    auto It = InitA.Arrays.find(Name);
    if (It != InitA.Arrays.end())
      Data = It->second;
  }
  ExecResult RA = interpret(A, std::move(InitA));
  ExecResult RB = interpret(B, std::move(InitB));
  ASSERT_TRUE(RA.Completed) << What;
  ASSERT_TRUE(RB.Completed) << What << ": " << RB.Error;
  EXPECT_TRUE(statesEquivalent(RA.Final, RB.Final)) << What;
  EXPECT_EQ(RA.HasReturnValue, RB.HasReturnValue) << What;
  if (RA.HasReturnValue) {
    EXPECT_EQ(RA.ReturnValue, RB.ReturnValue) << What;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Loop unrolling
//===----------------------------------------------------------------------===//

TEST(UnrollTest, UnrollsDotProductPreservingSemantics) {
  for (unsigned Factor : {2u, 4u, 8u}) {
    Function F = dotProduct(1); // 64 iterations, step 1
    Function Before = F;
    ASSERT_TRUE(unrollCountedLoop(F, 1, Factor)) << "factor " << Factor;
    std::string Err;
    ASSERT_TRUE(verifyFunction(F, Err)) << Err;
    expectSameSemantics(Before, F, 33,
                        "dot unroll x" + std::to_string(Factor));
  }
}

TEST(UnrollTest, BodyGrowsByFactor) {
  Function F = dotProduct(1);
  unsigned BodyBefore = F.block(1).size();
  ASSERT_TRUE(unrollCountedLoop(F, 1, 4));
  // body+update replicated 4x, one guard + branch.
  EXPECT_EQ(F.block(1).size(), (BodyBefore - 2) * 4 + 2);
}

TEST(UnrollTest, FreshNamesKeepCopiesIndependent) {
  Function F = dotProduct(1);
  ASSERT_TRUE(unrollCountedLoop(F, 1, 2));
  // The two copies' loads must define different registers (renamed), so
  // a scheduler can overlap them.
  std::vector<Reg> LoadDefs;
  for (const Instruction &I : F.block(1).instructions())
    if (I.opcode() == Opcode::Load)
      LoadDefs.push_back(I.def());
  ASSERT_EQ(LoadDefs.size(), 4u);
  EXPECT_NE(LoadDefs[0], LoadDefs[2]);
  EXPECT_NE(LoadDefs[1], LoadDefs[3]);
}

TEST(UnrollTest, RefusesNonDividingFactor) {
  Function F = dotProduct(1); // 64 iterations
  EXPECT_FALSE(unrollCountedLoop(F, 1, 5));
  EXPECT_FALSE(unrollCountedLoop(F, 1, 7));
}

TEST(UnrollTest, RefusesNonLoopBlocks) {
  Function F = dotProduct(1);
  EXPECT_FALSE(unrollCountedLoop(F, 0, 2)) << "entry is not a loop";
  EXPECT_FALSE(unrollCountedLoop(F, 2, 2)) << "exit is not a loop";
}

TEST(UnrollTest, FactorOneIsIdentity) {
  Function F = dotProduct(1);
  Function Before = F;
  EXPECT_TRUE(unrollCountedLoop(F, 1, 1));
  EXPECT_EQ(F.block(1).size(), Before.block(1).size());
}

TEST(UnrollTest, UnrollAllHandlesMultipleLoops) {
  Function F = twoLoops(); // two counted loops, 32 iterations each
  Function Before = F;
  EXPECT_EQ(unrollAllLoops(F, 4), 2u);
  std::string Err;
  ASSERT_TRUE(verifyFunction(F, Err)) << Err;
  expectSameSemantics(Before, F, 5, "twoLoops unroll");
}

TEST(UnrollTest, UnrolledLoopSchedulesFasterPerElement) {
  // The substrate-level point of unrolling: more ILP per trip.
  MachineModel M = MachineModel::vliw4(12);
  Function U1 = dotProduct(1);
  Function U4 = dotProduct(1);
  ASSERT_TRUE(unrollCountedLoop(U4, 1, 4));
  PipelineResult R1 = runAndMeasure(StrategyKind::Combined, U1, M);
  PipelineResult R4 = runAndMeasure(StrategyKind::Combined, U4, M);
  ASSERT_TRUE(R1.Success) << R1.Error;
  ASSERT_TRUE(R4.Success) << R4.Error;
  EXPECT_LT(R4.DynCycles, R1.DynCycles);
}

TEST(UnrollTest, SemanticsAcrossKernelLoops) {
  for (auto &[Name, Kernel] : standardKernelSuite()) {
    Function F = Kernel;
    unsigned Done = unrollAllLoops(F, 2);
    if (Done == 0)
      continue; // straight-line kernels or non-dividing trip counts
    std::string Err;
    ASSERT_TRUE(verifyFunction(F, Err)) << Name << ": " << Err;
    expectSameSemantics(Kernel, F, 44, Name);
  }
}

//===----------------------------------------------------------------------===//
// Dead code elimination
//===----------------------------------------------------------------------===//

TEST(DceTest, RemovesUnusedPureDefs) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("e");
  Reg A = B.loadImm(1);
  B.binary(Opcode::Add, A, A);       // dead
  Reg C = B.binary(Opcode::Mul, A, A); // live via ret
  B.load("m", NoReg, 0);             // dead load (pure)
  B.ret(C);
  EXPECT_EQ(eliminateDeadCode(F), 2u);
  EXPECT_EQ(F.block(0).size(), 3u);
  ExecResult R = interpret(F, makeInitialState(F, 1));
  EXPECT_EQ(R.ReturnValue, 1);
}

TEST(DceTest, CascadesThroughChains) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("e");
  Reg A = B.loadImm(1);
  Reg D1 = B.binary(Opcode::Add, A, A);  // only feeds D2
  Reg D2 = B.binary(Opcode::Mul, D1, D1); // only feeds D3
  B.binary(Opcode::Sub, D2, D2);          // dead
  B.ret(A);
  EXPECT_EQ(eliminateDeadCode(F), 3u) << "whole chain dies";
  EXPECT_EQ(F.block(0).size(), 2u);
}

TEST(DceTest, KeepsStoresAndTerminators) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("e");
  Reg A = B.loadImm(1);
  B.store("m", A, NoReg, 0);
  B.ret();
  EXPECT_EQ(eliminateDeadCode(F), 0u);
  EXPECT_EQ(F.block(0).size(), 3u);
}

TEST(DceTest, NoopOnCleanKernels) {
  for (auto &[Name, Kernel] : standardKernelSuite()) {
    Function F = Kernel;
    EXPECT_EQ(eliminateDeadCode(F), 0u) << Name;
  }
}

//===----------------------------------------------------------------------===//
// Copy propagation
//===----------------------------------------------------------------------===//

TEST(CopyPropTest, ForwardsThroughCopies) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("e");
  Reg A = B.loadImm(7);
  Reg C = B.copy(A);
  Reg D = B.binary(Opcode::Add, C, C);
  B.ret(D);
  EXPECT_EQ(propagateCopies(F), 2u) << "both add operands forwarded";
  // The add now reads A directly; DCE can kill the copy.
  EXPECT_EQ(F.block(0).inst(2).uses()[0], A);
  EXPECT_EQ(eliminateDeadCode(F), 1u);
  ExecResult R = interpret(F, makeInitialState(F, 1));
  EXPECT_EQ(R.ReturnValue, 14);
}

TEST(CopyPropTest, StopsAtSourceRedefinition) {
  Function F("t");
  F.setNumRegs(3);
  F.addBlock("e");
  F.block(0).append(Instruction(Opcode::LoadImm, 0, {}, 1));
  F.block(0).append(Instruction(Opcode::Copy, 1, {0}));
  F.block(0).append(Instruction(Opcode::LoadImm, 0, {}, 9)); // src redefined
  F.block(0).append(Instruction(Opcode::Add, 2, {1, 1}));    // must read 1
  F.block(0).append(Instruction(Opcode::Ret, NoReg, {2}));
  propagateCopies(F);
  EXPECT_EQ(F.block(0).inst(3).uses()[0], 1u)
      << "forwarding through a clobbered source would change semantics";
  ExecResult R = interpret(F, makeInitialState(F, 1));
  EXPECT_EQ(R.ReturnValue, 2);
}

TEST(CopyPropTest, StopsAtDestRedefinition) {
  Function F("t");
  F.setNumRegs(3);
  F.addBlock("e");
  F.block(0).append(Instruction(Opcode::LoadImm, 0, {}, 1));
  F.block(0).append(Instruction(Opcode::Copy, 1, {0}));
  F.block(0).append(Instruction(Opcode::LoadImm, 1, {}, 5)); // dest clobbered
  F.block(0).append(Instruction(Opcode::Add, 2, {1, 1}));
  F.block(0).append(Instruction(Opcode::Ret, NoReg, {2}));
  propagateCopies(F);
  EXPECT_EQ(F.block(0).inst(3).uses()[0], 1u);
  ExecResult R = interpret(F, makeInitialState(F, 1));
  EXPECT_EQ(R.ReturnValue, 10);
}

TEST(CopyPropTest, SemanticsPreservedOnRandomPrograms) {
  for (unsigned Seed = 1; Seed <= 10; ++Seed) {
    RandomProgramOptions Opts;
    Opts.Seed = Seed * 449;
    Opts.Shape = static_cast<CfgShape>(Seed % 5);
    Function F = generateRandomProgram(Opts);
    Function Before = F;
    propagateCopies(F);
    eliminateDeadCode(F);
    std::string Err;
    ASSERT_TRUE(verifyFunction(F, Err)) << Err;
    expectSameSemantics(Before, F, Seed, "seed " + std::to_string(Seed));
  }
}

//===----------------------------------------------------------------------===//
// Web-name normalization (one register per value)
//===----------------------------------------------------------------------===//

TEST(NormalizeTest, SplitsIndependentReusesOfOneRegister) {
  // Hand-written code that reuses %s0 for two unrelated values.
  const char *Text = "func @reuse regs 2 {\n"
                     "block e:\n"
                     "  %s0 = li 1\n"
                     "  %s1 = add %s0, %s0\n"
                     "  %s0 = li 9\n"       // unrelated value, same reg
                     "  %s1 = mul %s0, %s1\n"
                     "  ret %s1\n"
                     "}\n";
  Function F;
  std::string Err;
  ASSERT_TRUE(parseFunction(Text, F, Err)) << Err;
  Function Before = F;
  unsigned Changed = normalizeWebNames(F);
  EXPECT_GT(Changed, 0u);
  // The two defs of the old %s0 now use different registers.
  EXPECT_NE(F.block(0).inst(0).def(), F.block(0).inst(2).def());
  ASSERT_TRUE(verifyFunction(F, Err)) << Err;
  expectSameSemantics(Before, F, 3, "normalize reuse");
}

TEST(NormalizeTest, RemovesSpuriousDependences) {
  // Before normalization the register reuse creates anti/output edges;
  // after it, the symbolic schedule graph holds only real constraints.
  const char *Text = "func @reuse regs 2 {\n"
                     "block e:\n"
                     "  %s0 = li 1\n"
                     "  %s1 = add %s0, %s0\n"
                     "  %s0 = li 9\n"
                     "  %s1 = mul %s0, %s1\n"
                     "  ret %s1\n"
                     "}\n";
  Function F;
  std::string Err;
  ASSERT_TRUE(parseFunction(Text, F, Err)) << Err;
  MachineModel M = MachineModel::paperTwoUnit();
  unsigned EdgesBefore = 0, EdgesAfter = 0;
  {
    DependenceGraph G(F, 0, M);
    for (const DepEdge &E : G.edges())
      if (E.Kind == DepKind::Anti || E.Kind == DepKind::Output)
        ++EdgesBefore;
  }
  normalizeWebNames(F);
  {
    DependenceGraph G(F, 0, M);
    for (const DepEdge &E : G.edges())
      if (E.Kind == DepKind::Anti || E.Kind == DepKind::Output)
        ++EdgesAfter;
  }
  EXPECT_GT(EdgesBefore, 0u);
  EXPECT_EQ(EdgesAfter, 0u);
}

TEST(NormalizeTest, KeepsCompoundWebsTogether) {
  // Loop-carried registers legitimately share a name across their
  // merged definitions; normalization must not split them.
  Function F = dotProduct(1);
  normalizeWebNames(F);
  std::string Err;
  ASSERT_TRUE(verifyFunction(F, Err)) << Err;
  // The accumulator still has two defs of one register.
  Webs W(F);
  unsigned AccWeb = W.webOfUse(2, 0, 0); // exit ret reads the sum
  EXPECT_EQ(W.defsOfWeb(AccWeb).size(), 2u);
  ExecResult RA = interpret(dotProduct(1), makeInitialState(dotProduct(1), 2));
  ExecResult RB = interpret(F, makeInitialState(F, 2));
  ASSERT_TRUE(RA.Completed);
  ASSERT_TRUE(RB.Completed);
  EXPECT_EQ(RA.ReturnValue, RB.ReturnValue);
}

TEST(NormalizeTest, IdempotentOnBuilderOutput) {
  for (auto &[Name, Kernel] : standardKernelSuite()) {
    Function F = Kernel;
    normalizeWebNames(F);
    Function Once = F;
    EXPECT_EQ(normalizeWebNames(F), 0u) << Name;
    EXPECT_EQ(functionToString(F), functionToString(Once)) << Name;
  }
}

TEST(NormalizeTest, SemanticsOnRandomPrograms) {
  for (unsigned Seed = 1; Seed <= 10; ++Seed) {
    RandomProgramOptions Opts;
    Opts.Seed = Seed * 8111;
    Opts.Shape = static_cast<CfgShape>(Seed % 5);
    Function F = generateRandomProgram(Opts);
    Function Before = F;
    normalizeWebNames(F);
    std::string Err;
    ASSERT_TRUE(verifyFunction(F, Err)) << Err;
    expectSameSemantics(Before, F, Seed, "seed " + std::to_string(Seed));
  }
}

//===----------------------------------------------------------------------===//
// DAG reduction (transforms/DagReduce.h)
//===----------------------------------------------------------------------===//

namespace {

/// Oracle closure: the per-node successor-set reference implementation,
/// independent of everything the reduction pipeline does.
BitMatrix oracleClosure(unsigned N,
                        const std::vector<std::pair<unsigned, unsigned>> &E) {
  BitMatrix M(N);
  for (auto [A, B] : E)
    M.set(A, B);
  return M.transitiveClosureSetBased();
}

void expectReducedMatchesOracle(
    unsigned N, const std::vector<std::pair<unsigned, unsigned>> &E,
    const std::string &What, ThreadPool *Pool = nullptr) {
  BitMatrix Want = oracleClosure(N, E);
  BitMatrix Got = dagreduce::reducedClosure(N, E, Pool);
  ASSERT_EQ(Got.size(), Want.size()) << What;
  for (unsigned I = 0; I < N; ++I)
    for (unsigned J = 0; J < N; ++J)
      ASSERT_EQ(Got.test(I, J), Want.test(I, J))
          << What << ": row " << I << " col " << J;
}

} // namespace

TEST(DagReduceTest, DegenerateShapes) {
  // Empty graph and a single node.
  expectReducedMatchesOracle(0, {}, "empty");
  expectReducedMatchesOracle(1, {}, "single node");

  // Fully disconnected: no edges at any size.
  expectReducedMatchesOracle(17, {}, "disconnected 17");

  // One long chain — collapses to a single super-node.
  std::vector<std::pair<unsigned, unsigned>> Chain;
  for (unsigned I = 0; I + 1 < 64; ++I)
    Chain.push_back({I, I + 1});
  expectReducedMatchesOracle(64, Chain, "chain 64");

  // Many two-node chains: component splitting plus chain collapse.
  std::vector<std::pair<unsigned, unsigned>> Pairs;
  for (unsigned I = 0; I + 1 < 40; I += 2)
    Pairs.push_back({I, I + 1});
  expectReducedMatchesOracle(40, Pairs, "pair soup");

  // Universal sink (every node feeds the terminator), exercising the
  // sink peel.
  std::vector<std::pair<unsigned, unsigned>> Sink;
  for (unsigned I = 0; I + 1 < 12; ++I)
    Sink.push_back({I, 11});
  expectReducedMatchesOracle(12, Sink, "universal sink");

  // Duplicate edges must not confuse degree counting.
  expectReducedMatchesOracle(
      3, {{0, 1}, {0, 1}, {1, 2}, {1, 2}, {0, 2}}, "duplicate edges");
}

TEST(DagReduceTest, ReducedClosureMatchesOracleOn200RandomDags) {
  // The reduction pipeline (sink peel, component split, chain collapse,
  // transitive strip, reverse-topological closure, expansion) must be
  // invisible: bit-for-bit the closure of the input. Edges are drawn
  // with From < To, the DependenceGraph invariant reducedClosure
  // requires.
  ThreadPool Pool(4);
  Rng R(0xDA6CEDu);
  for (unsigned Case = 0; Case < 200; ++Case) {
    unsigned N = 1 + static_cast<unsigned>(R.nextBelow(512));
    // Sweep density so some graphs shatter into many components and
    // others are one dense blob with long chains stripped away.
    double Density = static_cast<double>(R.nextBelow(1000)) / 1000.0 * 0.15;
    std::vector<std::pair<unsigned, unsigned>> E;
    // Backbone chains over random strides keep single-entry/single-exit
    // runs common enough that the chain collapse actually fires.
    for (unsigned I = 0; I + 1 < N; ++I)
      if (R.nextBelow(100) < 60)
        E.push_back({I, I + 1});
    auto MaxExtra = static_cast<uint64_t>(Density * N) * 4 + 1;
    for (uint64_t K = R.nextBelow(MaxExtra); K != 0; --K) {
      unsigned A = static_cast<unsigned>(R.nextBelow(N));
      unsigned B = static_cast<unsigned>(R.nextBelow(N));
      if (A != B)
        E.push_back({std::min(A, B), std::max(A, B)});
    }
    std::string What = "case " + std::to_string(Case) + " (N=" +
                       std::to_string(N) + ", |E|=" +
                       std::to_string(E.size()) + ")";
    // Serial and pooled closures must agree with the oracle (and hence
    // with each other): parallel component closure is invisible too.
    expectReducedMatchesOracle(N, E, What + " serial");
    expectReducedMatchesOracle(N, E, What + " pooled", &Pool);
  }
}
