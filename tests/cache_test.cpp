//===- tests/cache_test.cpp - Compilation-cache tests ---------------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
// The content-addressed compilation cache (pipeline/Cache.h): key
// sensitivity to every compile-relevant input (and insensitivity to the
// irrelevant ones), entry encode/decode round trips, both tiers, the
// corrupt-entry-is-a-miss rule, Verify-mode tamper detection, the
// never-cache-degraded rule, and warm-run byte identity across worker
// counts.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "machine/MachineModel.h"
#include "pipeline/Batch.h"
#include "pipeline/Cache.h"
#include "pipeline/Report.h"
#include "support/FaultInjection.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace pira;

namespace {

/// A tiny well-formed function; \p Name keeps keys distinct per test.
Function smallFunction(const std::string &Name = "t") {
  std::string Text = "func @" + Name + R"( regs 8 {
  array a 4
block entry:
  %s0 = li 1
  %s1 = li 2
  %s2 = add %s0, %s1
  %s3 = fmul %s2, %s1
  store a[0], %s3
  ret %s3
}
)";
  Function F;
  std::string Error;
  EXPECT_TRUE(parseFunction(Text, F, Error)) << Error;
  return F;
}

std::string keyOf(const Function &F, const MachineModel &M = MachineModel::rs6000(),
                  const BatchOptions &Opts = {}) {
  return computeCacheKey(F, M, Opts);
}

/// A fresh per-test scratch directory under the gtest temp root.
std::filesystem::path scratchDir(const std::string &Tag) {
  std::filesystem::path Dir =
      std::filesystem::path(testing::TempDir()) / ("pira_cache_" + Tag);
  std::filesystem::remove_all(Dir);
  return Dir;
}

/// Fault tests disarm the harness on the way out so armed sites never
/// leak into the rest of the binary.
class CacheFaultTest : public testing::Test {
protected:
  void TearDown() override { faultinject::reset(); }

  static void arm(const std::string &Spec) {
    std::string Error;
    ASSERT_TRUE(faultinject::configure(Spec, Error)) << Error;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Mode names
//===----------------------------------------------------------------------===//

TEST(CacheModeTest, NamesRoundTrip) {
  for (CacheMode M : {CacheMode::Off, CacheMode::On, CacheMode::Verify}) {
    Expected<CacheMode> Back = cacheModeFromName(cacheModeName(M));
    ASSERT_TRUE(Back);
    EXPECT_EQ(*Back, M);
  }
  Expected<CacheMode> Bad = cacheModeFromName("sometimes");
  ASSERT_FALSE(Bad);
  EXPECT_EQ(Bad.status().code(), ErrorCode::InvalidArgument);
}

//===----------------------------------------------------------------------===//
// Key sensitivity
//===----------------------------------------------------------------------===//

TEST(CacheKeyTest, KeyIsStableHex) {
  Function F = smallFunction();
  std::string A = keyOf(F);
  std::string B = keyOf(F);
  EXPECT_EQ(A, B);
  ASSERT_EQ(A.size(), 64u);
  for (char C : A)
    EXPECT_TRUE((C >= '0' && C <= '9') || (C >= 'a' && C <= 'f')) << C;
}

TEST(CacheKeyTest, WhitespaceAndCommentDifferencesCollapse) {
  // The key hashes the canonical *printed* IR, so formatting noise in
  // the source text never fragments the cache.
  std::string Tidy = R"(func @f regs 8 {
block entry:
  %s0 = li 1
  %s1 = add %s0, %s0
  ret %s1
}
)";
  std::string Messy = R"(# a leading comment
func @f    regs 8 {
block entry:
    %s0 = li 1      # one
  %s1 =   add %s0, %s0

  ret %s1   # done
}
)";
  Function A, B;
  std::string Error;
  ASSERT_TRUE(parseFunction(Tidy, A, Error)) << Error;
  ASSERT_TRUE(parseFunction(Messy, B, Error)) << Error;
  EXPECT_EQ(keyOf(A), keyOf(B));
}

TEST(CacheKeyTest, OneIrTokenChangesTheKey) {
  std::string Base = R"(func @f regs 8 {
block entry:
  %s0 = li 1
  %s1 = add %s0, %s0
  ret %s1
}
)";
  std::string Changed = Base;
  size_t Pos = Changed.find("li 1");
  ASSERT_NE(Pos, std::string::npos);
  Changed.replace(Pos, 4, "li 2");
  Function A, B;
  std::string Error;
  ASSERT_TRUE(parseFunction(Base, A, Error)) << Error;
  ASSERT_TRUE(parseFunction(Changed, B, Error)) << Error;
  EXPECT_NE(keyOf(A), keyOf(B));
}

TEST(CacheKeyTest, MachineConfigurationChangesTheKey) {
  Function F = smallFunction();
  std::string Base = keyOf(F, MachineModel::rs6000());
  EXPECT_NE(Base, keyOf(F, MachineModel::mipsR3000()));
  EXPECT_NE(Base, keyOf(F, MachineModel::vliw4()));
  // Same machine, different register file.
  EXPECT_NE(Base, keyOf(F, MachineModel::rs6000(8)));
}

TEST(CacheKeyTest, StrategyAndOptionsChangeTheKey) {
  Function F = smallFunction();
  MachineModel M = MachineModel::rs6000();
  BatchOptions Base;
  std::string BaseKey = keyOf(F, M, Base);

  BatchOptions O = Base;
  O.Strategy = StrategyKind::AllocFirst;
  EXPECT_NE(BaseKey, keyOf(F, M, O));

  O = Base;
  O.Pinter.ParallelWeight = 2.0;
  EXPECT_NE(BaseKey, keyOf(F, M, O));

  O = Base;
  O.Pinter.PreSchedule = false;
  EXPECT_NE(BaseKey, keyOf(F, M, O));

  O = Base;
  O.Budget.MaxInstructions = 1000;
  EXPECT_NE(BaseKey, keyOf(F, M, O));

  O = Base;
  O.Budget.DeadlineMs = 5000;
  EXPECT_NE(BaseKey, keyOf(F, M, O));

  O = Base;
  O.Measure = false;
  EXPECT_NE(BaseKey, keyOf(F, M, O));

  O = Base;
  O.Seed = 7;
  EXPECT_NE(BaseKey, keyOf(F, M, O));

  O = Base;
  O.Degrade = false;
  EXPECT_NE(BaseKey, keyOf(F, M, O));
}

TEST(CacheKeyTest, WorkerCountAndCachePointerAreIrrelevant) {
  // Results are worker-count-invariant by the determinism contract, so
  // --jobs must not fragment keys; neither may the cache object itself.
  Function F = smallFunction();
  MachineModel M = MachineModel::rs6000();
  BatchOptions A, B;
  A.Jobs = 1;
  B.Jobs = 8;
  CompilationCache Cache(CacheMode::On);
  B.Cache = &Cache;
  EXPECT_EQ(keyOf(F, M, A), keyOf(F, M, B));
}

TEST_F(CacheFaultTest, ArmedFaultSpecChangesTheKey) {
  // A fault-injected compile can produce a different (degraded) result,
  // so the armed spec must partition the key space; with a spec armed
  // the per-thread fault key joins too (batch position changes which
  // sites fire). Disarmed, neither contributes.
  Function F = smallFunction();
  std::string Clean = keyOf(F);
  {
    faultinject::ScopedKey K(1);
    EXPECT_EQ(Clean, keyOf(F)) << "fault key leaked into a disarmed key";
  }
  arm("alloc.pinter:3");
  std::string Armed = keyOf(F);
  EXPECT_NE(Clean, Armed);
  {
    faultinject::ScopedKey K(1);
    EXPECT_NE(Armed, keyOf(F)) << "fault key ignored while armed";
  }
  faultinject::reset();
  EXPECT_EQ(Clean, keyOf(F));
}

//===----------------------------------------------------------------------===//
// Entry encode / decode
//===----------------------------------------------------------------------===//

TEST(CacheEntryTest, EncodeDecodeRoundTripsByteIdentically) {
  Function F = smallFunction("rt");
  MachineModel M = MachineModel::rs6000();
  BatchOptions Opts;
  GuardedResult G = compileFunctionGuarded(F, M, Opts);
  ASSERT_TRUE(G.Result.Success) << G.Result.Error;

  std::string Key = computeCacheKey(F, M, Opts);
  json::Value Entry = encodeCacheEntry(G.Result, Key);
  Expected<PipelineResult> Back = decodeCacheEntry(Entry);
  ASSERT_TRUE(Back) << Back.status().toString();

  // The decoded result must re-encode to the same bytes — that identity
  // is what makes Verify mode a real oracle.
  EXPECT_EQ(Entry.toString(-1), encodeCacheEntry(*Back, Key).toString(-1));
  EXPECT_EQ(Back->DynCycles, G.Result.DynCycles);
  EXPECT_EQ(Back->RegistersUsed, G.Result.RegistersUsed);
  EXPECT_EQ(functionToString(Back->Final), functionToString(G.Result.Final));
}

TEST(CacheEntryTest, DecodeRejectsStructuralCorruption) {
  Function F = smallFunction("bad");
  MachineModel M = MachineModel::rs6000();
  BatchOptions Opts;
  GuardedResult G = compileFunctionGuarded(F, M, Opts);
  ASSERT_TRUE(G.Result.Success);
  json::Value Good = encodeCacheEntry(G.Result, "k");

  json::Value WrongSchema = Good;
  WrongSchema.set("schema", "pira.trace");
  EXPECT_FALSE(decodeCacheEntry(WrongSchema));

  json::Value WrongVersion = Good;
  WrongVersion.set("version", CacheSchemaVersion + 1);
  EXPECT_FALSE(decodeCacheEntry(WrongVersion));

  json::Value BadIr = Good;
  BadIr.set("final", "func @broken regs {");
  EXPECT_FALSE(decodeCacheEntry(BadIr));

  json::Value NoSchedule = Good;
  NoSchedule.set("schedule", json::Value::array());
  EXPECT_FALSE(decodeCacheEntry(NoSchedule));
}

//===----------------------------------------------------------------------===//
// Tiers
//===----------------------------------------------------------------------===//

TEST(CompilationCacheTest, MemoryTierCatchesIntraBatchDuplicates) {
  // Two batch items with identical functions share one key; serially
  // (Jobs=1) the second must be a memory hit.
  std::vector<BatchItem> Batch;
  Batch.push_back({"a.pir", smallFunction("dup")});
  Batch.push_back({"b.pir", smallFunction("dup")});
  CompilationCache Cache(CacheMode::On);
  BatchOptions Opts;
  Opts.Jobs = 1;
  Opts.Cache = &Cache;
  BatchResult BR = compileBatch(Batch, MachineModel::rs6000(), Opts);
  ASSERT_EQ(BR.Succeeded, 2u);
  CompilationCache::Stats S = Cache.stats();
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.MemoryHits, 1u);
  EXPECT_EQ(S.Inserts, 1u);
  // The cached copy is indistinguishable from the compiled one.
  EXPECT_EQ(functionToString(BR.Results[0].Final),
            functionToString(BR.Results[1].Final));
  EXPECT_EQ(BR.Results[0].DynCycles, BR.Results[1].DynCycles);
}

TEST(CompilationCacheTest, DiskTierPersistsAcrossCacheObjects) {
  std::filesystem::path Dir = scratchDir("disk");
  std::vector<BatchItem> Batch;
  Batch.push_back({"a.pir", smallFunction("persist")});
  MachineModel M = MachineModel::rs6000();
  BatchOptions Opts;
  Opts.Jobs = 1;

  CompilationCache Cold(CacheMode::On, Dir.string());
  Opts.Cache = &Cold;
  BatchResult First = compileBatch(Batch, M, Opts);
  ASSERT_EQ(First.Succeeded, 1u);
  EXPECT_EQ(Cold.stats().Misses, 1u);
  EXPECT_EQ(Cold.stats().Inserts, 1u);

  // A brand-new cache object (a new process, in effect) hits on disk.
  CompilationCache Warm(CacheMode::On, Dir.string());
  Opts.Cache = &Warm;
  BatchResult Second = compileBatch(Batch, M, Opts);
  ASSERT_EQ(Second.Succeeded, 1u);
  CompilationCache::Stats S = Warm.stats();
  EXPECT_EQ(S.DiskHits, 1u);
  EXPECT_EQ(S.Misses, 0u);
  EXPECT_EQ(functionToString(First.Results[0].Final),
            functionToString(Second.Results[0].Final));
  std::filesystem::remove_all(Dir);
}

TEST(CompilationCacheTest, AbandonedTempFileNeverShadowsTheKey) {
  // A writer that dies between the temp write and the atomic rename —
  // or a power loss before the fsync landed — leaves a torn *.tmp.*
  // file, never a torn entry. That litter must be invisible: lookups
  // under the live key miss cleanly and a recompile re-inserts over it.
  std::filesystem::path Dir = scratchDir("litter");
  std::filesystem::create_directories(Dir);
  Function F = smallFunction("litter");
  MachineModel M = MachineModel::rs6000();
  BatchOptions Opts;
  Opts.Jobs = 1;
  std::string Key = computeCacheKey(F, M, Opts);
  std::ofstream(Dir / (Key + ".json.tmp.0.12345"))
      << "{\"schema\": \"pira.cach"; // torn mid-write

  std::vector<BatchItem> Batch;
  Batch.push_back({"a.pir", smallFunction("litter")});
  CompilationCache Cache(CacheMode::On, Dir.string());
  Opts.Cache = &Cache;
  ASSERT_EQ(compileBatch(Batch, M, Opts).Succeeded, 1u);
  CompilationCache::Stats S = Cache.stats();
  EXPECT_EQ(S.Misses, 1u);      // The litter never read as an entry.
  EXPECT_EQ(S.DiskHits, 0u);
  EXPECT_EQ(S.CorruptEntries, 0u);
  EXPECT_EQ(S.Inserts, 1u);
  // The real entry landed next to the corpse and decodes.
  CompilationCache Fresh(CacheMode::On, Dir.string());
  EXPECT_TRUE(Fresh.lookup(Key).has_value());
  std::filesystem::remove_all(Dir);
}

TEST(CompilationCacheTest, CorruptDiskEntryIsAMissNotAnError) {
  std::filesystem::path Dir = scratchDir("corrupt");
  Function F = smallFunction("mangle");
  MachineModel M = MachineModel::rs6000();
  BatchOptions Opts;
  Opts.Jobs = 1;
  std::string Key = computeCacheKey(F, M, Opts);

  std::vector<BatchItem> Batch;
  Batch.push_back({"a.pir", smallFunction("mangle")});
  {
    CompilationCache Cache(CacheMode::On, Dir.string());
    Opts.Cache = &Cache;
    ASSERT_EQ(compileBatch(Batch, M, Opts).Succeeded, 1u);
    ASSERT_EQ(Cache.stats().Inserts, 1u);
  }

  // Truncate the entry mid-JSON, as a crashed writer without the atomic
  // rename would have. The next run must shrug, recompile, and succeed.
  std::filesystem::path Entry = Dir / (Key + ".json");
  ASSERT_TRUE(std::filesystem::exists(Entry));
  std::ofstream(Entry, std::ios::trunc) << "{\"schema\": \"pira.cach";

  CompilationCache Cache(CacheMode::On, Dir.string());
  Opts.Cache = &Cache;
  BatchResult BR = compileBatch(Batch, M, Opts);
  ASSERT_EQ(BR.Succeeded, 1u);
  CompilationCache::Stats S = Cache.stats();
  EXPECT_EQ(S.CorruptEntries, 1u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.DiskHits, 0u);
  // The recompile re-inserted a good entry over the corpse.
  EXPECT_EQ(S.Inserts, 1u);
  std::filesystem::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Verify mode and the never-cache-degraded rule
//===----------------------------------------------------------------------===//

TEST(CompilationCacheTest, VerifyModePassesOnHonestEntries) {
  std::filesystem::path Dir = scratchDir("verify");
  std::vector<BatchItem> Batch;
  Batch.push_back({"a.pir", smallFunction("honest")});
  MachineModel M = MachineModel::rs6000();
  BatchOptions Opts;
  Opts.Jobs = 1;

  CompilationCache Cold(CacheMode::On, Dir.string());
  Opts.Cache = &Cold;
  ASSERT_EQ(compileBatch(Batch, M, Opts).Succeeded, 1u);

  CompilationCache Verify(CacheMode::Verify, Dir.string());
  Opts.Cache = &Verify;
  ASSERT_EQ(compileBatch(Batch, M, Opts).Succeeded, 1u);
  CompilationCache::Stats S = Verify.stats();
  EXPECT_EQ(S.DiskHits, 1u);
  EXPECT_EQ(S.VerifyMismatches, 0u);
  std::filesystem::remove_all(Dir);
}

TEST(CompilationCacheTest, VerifyModeCatchesTamperedEntries) {
  std::filesystem::path Dir = scratchDir("tamper");
  Function F = smallFunction("tampered");
  MachineModel M = MachineModel::rs6000();
  BatchOptions Opts;
  Opts.Jobs = 1;
  std::string Key = computeCacheKey(F, M, Opts);

  std::vector<BatchItem> Batch;
  Batch.push_back({"a.pir", smallFunction("tampered")});
  {
    CompilationCache Cache(CacheMode::On, Dir.string());
    Opts.Cache = &Cache;
    ASSERT_EQ(compileBatch(Batch, M, Opts).Succeeded, 1u);
  }

  // Falsify one stat in the stored entry; it still decodes cleanly, so
  // only the byte-identity cross-check can notice.
  std::filesystem::path EntryPath = Dir / (Key + ".json");
  std::ostringstream SS;
  SS << std::ifstream(EntryPath).rdbuf();
  json::Value Entry;
  std::string Error;
  ASSERT_TRUE(json::parse(SS.str(), Entry, Error)) << Error;
  const json::Value *Pipeline = Entry.find("pipeline");
  ASSERT_NE(Pipeline, nullptr);
  json::Value Forged = *Pipeline;
  ASSERT_TRUE(Forged.has("dyn_cycles"));
  Forged.set("dyn_cycles", Forged.find("dyn_cycles")->asInt() + 1);
  Entry.set("pipeline", Forged);
  std::ofstream(EntryPath, std::ios::trunc) << Entry.toString(-1);

  CompilationCache Verify(CacheMode::Verify, Dir.string());
  Opts.Cache = &Verify;
  BatchResult BR = compileBatch(Batch, M, Opts);
  ASSERT_EQ(BR.Succeeded, 1u);
  EXPECT_EQ(Verify.stats().VerifyMismatches, 1u);
  // The fresh compile wins: the forged cycle count is not in the result.
  GuardedResult Fresh = compileFunctionGuarded(F, M, BatchOptions{});
  EXPECT_EQ(BR.Results[0].DynCycles, Fresh.Result.DynCycles);
  std::filesystem::remove_all(Dir);
}

TEST_F(CacheFaultTest, DegradedResultsAreNeverCached) {
  // alloc.pinter:1 fails the combined rung for every fault key, so the
  // single item degrades to alloc-first — and must not be inserted.
  arm("alloc.pinter:1");
  std::vector<BatchItem> Batch;
  Batch.push_back({"a.pir", smallFunction("degraded")});
  CompilationCache Cache(CacheMode::On);
  BatchOptions Opts;
  Opts.Jobs = 1;
  Opts.Cache = &Cache;
  BatchResult BR = compileBatch(Batch, MachineModel::rs6000(), Opts);
  ASSERT_EQ(BR.Succeeded, 1u);
  ASSERT_TRUE(BR.Outcomes[0].Degraded);
  CompilationCache::Stats S = Cache.stats();
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Inserts, 0u) << "a degraded result was fossilized";

  // Re-running the identical batch misses again: the ladder re-walks.
  BatchResult Again = compileBatch(Batch, MachineModel::rs6000(), Opts);
  ASSERT_EQ(Again.Succeeded, 1u);
  EXPECT_EQ(Cache.stats().Misses, 2u);
  EXPECT_EQ(Cache.stats().MemoryHits, 0u);
}

//===----------------------------------------------------------------------===//
// Warm-run determinism across worker counts
//===----------------------------------------------------------------------===//

namespace {

/// The batch stats report with the legitimately-varying sections
/// neutralized: "timers" always differ (wall clock), and "counters" plus
/// "cache" differ between cold and warm runs (hits skip compile phases).
std::string reportFingerprint(const std::vector<BatchItem> &Batch,
                              const MachineModel &M, BatchOptions Opts) {
  telemetry::reset();
  BatchResult BR = compileBatch(Batch, M, Opts);
  json::Value Report =
      makeBatchStatsReport(BR, Batch, strategyName(Opts.Strategy), M, {},
                           Opts.Cache);
  Report.set("timers", json::Value::array());
  Report.set("counters", json::Value::object());
  Report.set("histograms", json::Value::object());
  Report.set("cache", json::Value::object());
  return Report.toString();
}

} // namespace

TEST(CompilationCacheTest, WarmRunsAreByteIdenticalAcrossWorkerCounts) {
  std::filesystem::path Dir = scratchDir("warm");
  std::vector<BatchItem> Batch;
  for (unsigned I = 0; I != 12; ++I)
    Batch.push_back({"f" + std::to_string(I) + ".pir",
                     smallFunction("w" + std::to_string(I))});
  MachineModel M = MachineModel::rs6000();

  BatchOptions Opts;
  Opts.Jobs = 1;
  CompilationCache Cold(CacheMode::On, Dir.string());
  Opts.Cache = &Cold;
  std::string ColdPrint = reportFingerprint(Batch, M, Opts);
  ASSERT_EQ(Cold.stats().Inserts, 12u);

  for (unsigned Jobs : {1u, 2u, 8u}) {
    CompilationCache Warm(CacheMode::On, Dir.string());
    BatchOptions WarmOpts;
    WarmOpts.Jobs = Jobs;
    WarmOpts.Cache = &Warm;
    std::string WarmPrint = reportFingerprint(Batch, M, WarmOpts);
    EXPECT_EQ(ColdPrint, WarmPrint) << "jobs=" << Jobs;
    CompilationCache::Stats S = Warm.stats();
    EXPECT_EQ(S.DiskHits, 12u) << "jobs=" << Jobs;
    EXPECT_EQ(S.Misses, 0u) << "jobs=" << Jobs;
  }
  telemetry::reset();
  std::filesystem::remove_all(Dir);
}
