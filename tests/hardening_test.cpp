//===- tests/hardening_test.cpp - Parser/verifier hostile-input tests -----===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
// Hostile-input hardening for the textual front end: a corpus of
// malformed IR that must produce diagnostics (never crashes), the
// Status-flavored parse/verify entry points, and a seeded
// random-mutation round-trip — print a generated program, corrupt
// random bytes, and push whatever survives parsing and verification
// through the guarded pipeline.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "machine/MachineModel.h"
#include "pipeline/Batch.h"
#include "support/FaultInjection.h"
#include "support/Rng.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>

using namespace pira;

namespace {

/// Malformed inputs and a short tag naming what is wrong with each.
/// Every one of these must be rejected — by the parser or by the
/// verifier — with a diagnostic, and must never crash.
const std::pair<const char *, const char *> MalformedCorpus[] = {
    {"empty", ""},
    {"whitespace-only", "   \n\t\n"},
    {"not-ir", "this is not IR\n"},
    {"missing-func", "@f regs 4 { block e: ret %s0 }\n"},
    {"missing-name", "func regs 4 {\nblock e:\n  ret %s0\n}\n"},
    {"unclosed-body", "func @f regs 4 {\nblock e:\n  %s0 = li 1\n"},
    {"no-blocks", "func @f regs 4 {\n}\n"},
    {"inst-before-block", "func @f regs 4 {\n  %s0 = li 1\n}\n"},
    {"bad-opcode",
     "func @f regs 4 {\nblock e:\n  %s0 = frobnicate 1\n  ret %s0\n}\n"},
    {"bad-register",
     "func @f regs 4 {\nblock e:\n  %x9 = li 1\n  ret %x9\n}\n"},
    {"bad-operand",
     "func @f regs 4 {\nblock e:\n  %s0 = add %s1,\n  ret %s0\n}\n"},
    {"duplicate-label",
     "func @f regs 4 {\nblock e:\n  %s0 = li 1\n  br e2\nblock e2:\n  br "
     "e2b\nblock e2:\n  ret %s0\nblock e2b:\n  ret %s0\n}\n"},
    {"undefined-branch-target",
     "func @f regs 4 {\nblock e:\n  %s0 = li 1\n  br nowhere\n}\n"},
    {"missing-terminator",
     "func @f regs 4 {\nblock e:\n  %s0 = li 1\nblock d:\n  ret %s0\n}\n"},
    {"terminator-mid-block",
     "func @f regs 4 {\nblock e:\n  ret %s0\n  %s0 = li 1\n}\n"},
    {"register-out-of-space",
     "func @f regs 2 {\nblock e:\n  %s7 = li 1\n  ret %s7\n}\n"},
};

} // namespace

TEST(HardeningTest, MalformedCorpusYieldsDiagnosticsNotCrashes) {
  for (const auto &[Tag, Text] : MalformedCorpus) {
    Expected<Function> F = parseFunctionEx(Text, Tag);
    if (!F.ok()) {
      EXPECT_EQ(F.status().code(), ErrorCode::ParseError) << Tag;
      EXPECT_FALSE(F.status().message().empty()) << Tag;
      continue;
    }
    // Parsed: the verifier must catch it instead.
    Status S = verifyFunctionStatus(*F);
    EXPECT_FALSE(S.ok()) << Tag << ": accepted malformed input";
    EXPECT_EQ(S.code(), ErrorCode::VerifyError) << Tag;
    EXPECT_FALSE(S.message().empty()) << Tag;
  }
}

TEST(HardeningTest, ParseExCarriesTheInputName) {
  Expected<Function> Bad = parseFunctionEx("junk", "broken.pir");
  ASSERT_FALSE(Bad.ok());
  ASSERT_EQ(Bad.status().context().size(), 1u);
  EXPECT_EQ(Bad.status().context()[0], "input broken.pir");

  Expected<Function> Anon = parseFunctionEx("junk");
  ASSERT_FALSE(Anon.ok());
  EXPECT_EQ(Anon.status().context()[0], "input <input>");

  Expected<Function> Good = parseFunctionEx(
      "func @ok regs 4 {\nblock e:\n  %s0 = li 1\n  ret %s0\n}\n", "ok.pir");
  ASSERT_TRUE(Good.ok()) << Good.status().toString();
  EXPECT_EQ(Good->name(), "ok");
}

TEST(HardeningTest, VerifyStatusNamesTheFunction) {
  Function F;
  std::string Error;
  ASSERT_TRUE(parseFunction(
      "func @f regs 4 {\nblock e:\n  %s0 = li 1\nblock d:\n  ret %s0\n}\n", F,
      Error))
      << Error;
  Status S = verifyFunctionStatus(F);
  ASSERT_FALSE(S.ok());
  ASSERT_EQ(S.context().size(), 1u);
  EXPECT_EQ(S.context()[0], "function @f");

  Function Ok;
  ASSERT_TRUE(parseFunction(
      "func @g regs 4 {\nblock e:\n  %s0 = li 1\n  ret %s0\n}\n", Ok, Error));
  EXPECT_TRUE(verifyFunctionStatus(Ok).ok());
}

TEST(HardeningTest, ParseEnterFaultSiteFires) {
  std::string ConfigError;
  ASSERT_TRUE(faultinject::configure("parse.enter:1", ConfigError))
      << ConfigError;
  Expected<Function> F = parseFunctionEx(
      "func @ok regs 4 {\nblock e:\n  %s0 = li 1\n  ret %s0\n}\n", "ok.pir");
  faultinject::reset();
  ASSERT_FALSE(F.ok());
  EXPECT_EQ(F.status().code(), ErrorCode::FaultInjected);
}

//===----------------------------------------------------------------------===//
// Seeded random-mutation round-trip
//===----------------------------------------------------------------------===//

namespace {

/// Corrupts up to \p Mutations bytes of \p Text, seeded. Digits mutate
/// to digits (register numbers, constants, addresses — corruptions that
/// often still parse, pushing the damage into later layers); everything
/// else mutates to an arbitrary printable character.
std::string mutate(std::string Text, uint64_t Seed, unsigned Mutations) {
  static const char Alphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789%@{}[]:=,+ \n";
  static const char Digits[] = "0123456789";
  Rng R(Seed);
  for (unsigned I = 0; I != Mutations && !Text.empty(); ++I) {
    size_t Pos = static_cast<size_t>(R.nextBelow(Text.size()));
    Text[Pos] = std::isdigit(static_cast<unsigned char>(Text[Pos]))
                    ? Digits[R.nextBelow(10)]
                    : Alphabet[R.nextBelow(sizeof(Alphabet) - 1)];
  }
  return Text;
}

} // namespace

TEST(HardeningTest, MutatedProgramsNeverCrashTheFrontEndOrThePipeline) {
  MachineModel M = MachineModel::rs6000();
  unsigned Parsed = 0, Compiled = 0;
  for (uint64_t Seed = 1; Seed <= 60; ++Seed) {
    RandomProgramOptions Opts;
    Opts.Shape = static_cast<CfgShape>(Seed % 5);
    Opts.Seed = Seed * 2654435761u;
    Opts.InstructionsPerBlock = 8;
    Function Original = generateRandomProgram(Opts);
    std::ostringstream OS;
    printFunction(Original, OS);
    std::string Text =
        mutate(OS.str(), Seed * 97, /*Mutations=*/1 + Seed % 4);

    // Whatever the mutation produced, the front end must answer with a
    // value or a diagnostic — nothing may throw or crash.
    Expected<Function> F =
        parseFunctionEx(Text, "mutant-" + std::to_string(Seed));
    if (!F.ok()) {
      EXPECT_FALSE(F.status().message().empty());
      continue;
    }
    if (!verifyFunctionStatus(*F).ok())
      continue;
    ++Parsed;

    // A mutant that still parses and verifies is just a program; the
    // guarded pipeline must compile it or diagnose it, never throw.
    BatchOptions BOpts;
    BOpts.Strategy = StrategyKind::Combined;
    GuardedResult G = compileFunctionGuarded(*F, M, BOpts);
    if (G.Result.Success) {
      ++Compiled;
      EXPECT_TRUE(G.Result.SemanticsPreserved)
          << "seed " << Seed << ": compiled code diverged from the mutant's "
          << "own reference semantics";
    } else {
      EXPECT_FALSE(G.Result.Diag.ok()) << "seed " << Seed;
    }
  }
  // The sweep must exercise both rejection and the full-compile path;
  // a mutation scheme that kills (or misses) everything tests nothing.
  EXPECT_GT(Parsed, 0u);
  EXPECT_GT(Compiled, 0u);
  RecordProperty("parsed", static_cast<int>(Parsed));
  RecordProperty("compiled", static_cast<int>(Compiled));
}
