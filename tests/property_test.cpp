//===- tests/property_test.cpp - Randomized property sweeps ---------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
// Parameterized sweeps over seeded random programs, machine models, and
// register budgets. These pin the paper's theorems as executable
// properties:
//   * Theorem 1 — a PIG coloring spills nothing (when r is ample) and
//     the allocated code has no false dependence.
//   * Theorem 2 — removing any single PIG edge and coloring endpoints
//     alike yields a spill or a false dependence.
//   * End-to-end semantic preservation for every strategy.
//
//===----------------------------------------------------------------------===//

#include "analysis/Webs.h"
#include "core/FalseDepChecker.h"
#include "core/ParallelInterferenceGraph.h"
#include "core/PinterAllocator.h"
#include "ir/Interpreter.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "machine/MachineModel.h"
#include "pipeline/Batch.h"
#include "pipeline/Strategies.h"
#include "regalloc/InterferenceGraph.h"
#include "support/Telemetry.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace pira;

namespace {

/// One sweep point: program shape, mix, seed, machine.
struct SweepPoint {
  CfgShape Shape;
  unsigned FloatPercent;
  unsigned MemoryPercent;
  uint64_t Seed;
};

std::vector<SweepPoint> sweepPoints() {
  std::vector<SweepPoint> Points;
  for (CfgShape Shape :
       {CfgShape::Straight, CfgShape::Diamond, CfgShape::Loop,
        CfgShape::NestedDiamond, CfgShape::DoubleLoop})
    for (unsigned Mix = 0; Mix != 3; ++Mix)
      for (uint64_t Seed = 1; Seed <= 6; ++Seed)
        Points.push_back(
            {Shape, 20 + Mix * 25, 15 + Mix * 10, Seed * 7919});
  return Points;
}

Function makeProgram(const SweepPoint &P) {
  RandomProgramOptions Opts;
  Opts.Shape = P.Shape;
  Opts.FloatPercent = P.FloatPercent;
  Opts.MemoryPercent = P.MemoryPercent;
  Opts.Seed = P.Seed;
  Opts.InstructionsPerBlock = 14;
  return generateRandomProgram(Opts);
}

std::string pointName(const testing::TestParamInfo<SweepPoint> &Info) {
  const SweepPoint &P = Info.param;
  const char *Shape = P.Shape == CfgShape::Straight        ? "straight"
                      : P.Shape == CfgShape::Diamond       ? "diamond"
                      : P.Shape == CfgShape::Loop          ? "loop"
                      : P.Shape == CfgShape::NestedDiamond ? "nested"
                                                           : "dloop";
  return std::string(Shape) + "_f" + std::to_string(P.FloatPercent) +
         "_m" + std::to_string(P.MemoryPercent) + "_s" +
         std::to_string(P.Seed);
}

class RandomProgramSweep : public testing::TestWithParam<SweepPoint> {};

} // namespace

TEST_P(RandomProgramSweep, GeneratorEmitsVerifiedPrograms) {
  Function F = makeProgram(GetParam());
  std::string Err;
  EXPECT_TRUE(verifyFunction(F, Err)) << Err;
  ExecResult R = interpret(F, makeInitialState(F, GetParam().Seed));
  EXPECT_TRUE(R.Completed) << R.Error;
}

TEST_P(RandomProgramSweep, Theorem1_NoSpillNoFalseDepWithAmpleRegisters) {
  Function Symbolic = makeProgram(GetParam());
  MachineModel M = MachineModel::paperTwoUnit(64);
  Webs W(Symbolic);
  InterferenceGraph IG(Symbolic, W);
  ParallelInterferenceGraph PIG(Symbolic, W, IG, M);
  std::vector<double> Costs(W.numWebs(), 1.0);
  Allocation A = pinterColor(PIG, Costs, 64);
  ASSERT_TRUE(A.fullyColored()) << "64 registers must suffice";
  EXPECT_EQ(A.ParallelEdgesDropped, 0u);
  Function Alloc = Symbolic;
  applyAllocation(Alloc, W, A);
  EXPECT_TRUE(findFalseDependences(Symbolic, Alloc, M).empty())
      << "Theorem 1 violated";
}

TEST_P(RandomProgramSweep, Theorem1_HoldsOnEveryMachineModel) {
  Function Symbolic = makeProgram(GetParam());
  for (MachineModel M : {MachineModel::rs6000(64),
                         MachineModel::vliw4(64),
                         MachineModel::mipsR3000(64)}) {
    Webs W(Symbolic);
    InterferenceGraph IG(Symbolic, W);
    ParallelInterferenceGraph PIG(Symbolic, W, IG, M);
    std::vector<double> Costs(W.numWebs(), 1.0);
    Allocation A = pinterColor(PIG, Costs, 64);
    ASSERT_TRUE(A.fullyColored()) << M.name();
    Function Alloc = Symbolic;
    applyAllocation(Alloc, W, A);
    EXPECT_TRUE(findFalseDependences(Symbolic, Alloc, M).empty())
        << "Theorem 1 violated on " << M.name();
  }
}

TEST_P(RandomProgramSweep, Theorem2_EveryParallelOnlyEdgeIsLoadBearing) {
  // For each parallel-only edge {u, v} of the PIG (sampled), color the
  // graph with the edge removed while forcing color(u) == color(v):
  // the result must exhibit a false dependence (Theorem 2's dichotomy;
  // the spill arm cannot trigger for parallel-only edges since no
  // interference is violated).
  Function Symbolic = makeProgram(GetParam());
  MachineModel M = MachineModel::paperTwoUnit(64);
  Webs W(Symbolic);
  InterferenceGraph IG(Symbolic, W);
  ParallelInterferenceGraph PIG(Symbolic, W, IG, M);

  unsigned Checked = 0;
  for (const auto &[U, V] : PIG.parallel().edgeList()) {
    if (PIG.interference().hasEdge(U, V))
      continue; // the spill arm of the dichotomy; nothing to color-check
    // Restrict to single-def webs so the merged registers' output
    // dependence is guaranteed to connect exactly the Ef pair.
    if (W.defsOfWeb(U).size() != 1 || W.defsOfWeb(V).size() != 1 ||
        W.hasEntryDef(U) || W.hasEntryDef(V))
      continue;
    if (++Checked > 8)
      break; // sample a few edges per program to bound runtime

    // Unique color per web, except V collapsed onto U: the only register
    // reuse in the rewritten program is the merged pair, so the merge's
    // effect is isolated.
    Allocation A;
    A.ColorOfWeb.resize(PIG.numWebs());
    for (unsigned X = 0; X != PIG.numWebs(); ++X)
      A.ColorOfWeb[X] = static_cast<int>(X);
    A.ColorOfWeb[V] = static_cast<int>(U);
    A.NumColorsUsed = PIG.numWebs();

    Function Alloc = Symbolic;
    applyAllocation(Alloc, W, A);
    auto False = findFalseDependences(Symbolic, Alloc, M);
    EXPECT_FALSE(False.empty())
        << "dropping PIG edge {" << U << "," << V
        << "} and merging colors must create a false dependence";
  }
}

TEST_P(RandomProgramSweep, AllStrategiesPreserveSemantics) {
  Function F = makeProgram(GetParam());
  MachineModel M = MachineModel::rs6000(6);
  for (StrategyKind K :
       {StrategyKind::AllocFirst, StrategyKind::SchedFirst,
        StrategyKind::IntegratedPrepass, StrategyKind::Combined}) {
    PipelineResult R = runAndMeasure(K, F, M, {}, GetParam().Seed);
    ASSERT_TRUE(R.Success) << strategyName(K) << ": " << R.Error;
    EXPECT_TRUE(R.SemanticsPreserved) << strategyName(K);
  }
}

TEST_P(RandomProgramSweep, CombinedPinterNeverSpillsMoreRegistersThanGiven) {
  Function F = makeProgram(GetParam());
  for (unsigned Regs : {4u, 8u}) {
    MachineModel M = MachineModel::vliw4(Regs);
    PipelineResult R = runStrategy(StrategyKind::Combined, F, M);
    ASSERT_TRUE(R.Success) << "regs=" << Regs << ": " << R.Error;
    EXPECT_LE(R.RegistersUsed, Regs);
    std::string Err;
    EXPECT_TRUE(verifyFunction(R.Final, Err)) << Err;
  }
}

TEST_P(RandomProgramSweep, SchedulesAreLegalUnderSimulation) {
  Function F = makeProgram(GetParam());
  MachineModel M = MachineModel::vliw4(8);
  PipelineResult R = runAndMeasure(StrategyKind::Combined, F, M, {},
                                   GetParam().Seed);
  ASSERT_TRUE(R.Success) << R.Error;
  // runAndMeasure already simulates; Success implies no resource or
  // latency violation was reported.
  EXPECT_GT(R.DynCycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomProgramSweep,
                         testing::ValuesIn(sweepPoints()), pointName);

//===----------------------------------------------------------------------===//
// Register-budget sweep on a fixed program
//===----------------------------------------------------------------------===//

namespace {
class RegisterBudgetSweep : public testing::TestWithParam<unsigned> {};
} // namespace

TEST_P(RegisterBudgetSweep, CombinedDegradesGracefully) {
  unsigned Regs = GetParam();
  RandomProgramOptions Opts;
  Opts.Seed = 1234;
  Opts.InstructionsPerBlock = 20;
  Function F = generateRandomProgram(Opts);
  MachineModel M = MachineModel::rs6000(Regs);
  PipelineResult R = runAndMeasure(StrategyKind::Combined, F, M, {}, 99);
  ASSERT_TRUE(R.Success) << "regs=" << Regs << ": " << R.Error;
  EXPECT_TRUE(R.SemanticsPreserved);
  EXPECT_LE(R.RegistersUsed, Regs);
}

TEST_P(RegisterBudgetSweep, MoreRegistersNeverIncreaseSpills) {
  unsigned Regs = GetParam();
  RandomProgramOptions Opts;
  Opts.Seed = 777;
  Opts.InstructionsPerBlock = 20;
  Function F = generateRandomProgram(Opts);
  PipelineResult Tight = runStrategy(
      StrategyKind::Combined, F, MachineModel::rs6000(Regs));
  PipelineResult Loose = runStrategy(
      StrategyKind::Combined, F, MachineModel::rs6000(Regs + 4));
  ASSERT_TRUE(Tight.Success);
  ASSERT_TRUE(Loose.Success);
  EXPECT_LE(Loose.SpilledWebs, Tight.SpilledWebs);
}

INSTANTIATE_TEST_SUITE_P(Budget, RegisterBudgetSweep,
                         testing::Values(4, 5, 6, 8, 12, 16));

//===----------------------------------------------------------------------===//
// Parallel-vs-serial batch determinism
//===----------------------------------------------------------------------===//

namespace {

/// A mixed batch exercising every CFG shape and both spilling and
/// non-spilling register pressure.
std::vector<BatchItem> makeDeterminismBatch() {
  std::vector<BatchItem> Batch;
  for (unsigned I = 0; I != 12; ++I) {
    SweepPoint P{static_cast<CfgShape>(I % 5), 20 + (I * 17) % 60,
                 10 + (I * 11) % 30, 1 + I * 6151};
    Batch.push_back({"prog" + std::to_string(I), makeProgram(P)});
  }
  return Batch;
}

/// Fingerprints everything compileBatch promises to keep worker-count
/// invariant: the full stats report (timers neutralized — they are wall
/// clock), every allocated function body, and every block schedule.
std::string batchFingerprint(const std::vector<BatchItem> &Batch,
                             const MachineModel &M, unsigned Jobs) {
  telemetry::reset();
  BatchOptions Opts;
  Opts.Strategy = StrategyKind::Combined;
  Opts.Jobs = Jobs;
  Opts.Seed = 7;
  BatchResult BR = compileBatch(Batch, M, Opts);
  EXPECT_EQ(BR.Results.size(), Batch.size());

  json::Value Report = makeBatchStatsReport(BR, Batch, "combined", M);
  Report.set("timers", json::Value::array());
  Report.set("histograms", json::Value::object());
  std::ostringstream OS;
  Report.write(OS, 0);
  for (const PipelineResult &R : BR.Results) {
    if (!R.Success)
      continue;
    printFunction(R.Final, OS);
    for (const BlockSchedule &B : R.Sched.Blocks) {
      OS << "| " << B.Makespan << ':';
      for (unsigned C : B.CycleOf)
        OS << ' ' << C;
      OS << '\n';
    }
  }
  return OS.str();
}

} // namespace

TEST(BatchDeterminism, WorkerCountNeverChangesResults) {
  std::vector<BatchItem> Batch = makeDeterminismBatch();
  MachineModel M = MachineModel::rs6000(6); // tight: spill paths included
  // Scope recording on: worker threads then exercise the concurrent
  // timer path (under TSan in CI), and the fingerprint proves the
  // *rest* of the report ignores it.
  telemetry::setEnabled(true);
  std::string Serial = batchFingerprint(Batch, M, 1);
  std::string Two = batchFingerprint(Batch, M, 2);
  std::string Eight = batchFingerprint(Batch, M, 8);
  telemetry::setEnabled(false);
  telemetry::reset();
  EXPECT_EQ(Serial, Two) << "2 workers diverged from the serial reference";
  EXPECT_EQ(Serial, Eight) << "8 workers diverged from the serial reference";
}

TEST(BatchDeterminism, RepeatedParallelRunsAreIdentical) {
  std::vector<BatchItem> Batch = makeDeterminismBatch();
  MachineModel M = MachineModel::vliw4(8);
  std::string First = batchFingerprint(Batch, M, 8);
  std::string Second = batchFingerprint(Batch, M, 8);
  EXPECT_EQ(First, Second);
}
