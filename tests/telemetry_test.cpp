//===- tests/telemetry_test.cpp - Telemetry subsystem tests ---------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
// Covers the observability layer end to end: nested scope timing and
// path formation, counter registration and reset, Chrome trace-event
// export (valid JSON, complete events), the JSON library round trip,
// and the versioned stats report built from a real pipeline run.
//
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include "ir/IRBuilder.h"
#include "machine/MachineModel.h"
#include "pipeline/Report.h"
#include "pipeline/Strategies.h"
#include "support/Json.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <thread>

using namespace pira;

namespace {

/// Every telemetry test runs against a clean, enabled registry and
/// restores the disabled default afterwards so ordering between test
/// suites cannot leak state.
class TelemetryTest : public ::testing::Test {
protected:
  void SetUp() override {
    telemetry::reset();
    telemetry::setEnabled(true);
  }
  void TearDown() override {
    telemetry::setEnabled(false);
    telemetry::reset();
  }
};

PIRA_STAT(TestCounterA, "test-only counter A");
PIRA_STAT(TestCounterB, "test-only counter B");

TEST_F(TelemetryTest, NestedScopesProduceHierarchicalPaths) {
  {
    PIRA_TIME_SCOPE("outer");
    {
      PIRA_TIME_SCOPE("middle/part");
      { PIRA_TIME_SCOPE("inner"); }
    }
    { PIRA_TIME_SCOPE("sibling"); }
  }
  std::vector<telemetry::TimedEvent> Events = telemetry::events();
  ASSERT_EQ(Events.size(), 4u);
  // Scopes record on exit, so innermost-first.
  EXPECT_EQ(Events[0].Path, "outer/middle/part/inner");
  EXPECT_EQ(Events[1].Path, "outer/middle/part");
  EXPECT_EQ(Events[2].Path, "outer/sibling");
  EXPECT_EQ(Events[3].Path, "outer");
  EXPECT_EQ(Events[0].Depth, 2u);
  EXPECT_EQ(Events[3].Depth, 0u);
  EXPECT_STREQ(Events[0].Label, "inner");
  // A nested scope cannot run longer than its parent.
  EXPECT_LE(Events[0].DurationNs, Events[3].DurationNs);
}

TEST_F(TelemetryTest, ScopesRecordNothingWhenDisabled) {
  telemetry::setEnabled(false);
  { PIRA_TIME_SCOPE("ghost"); }
  EXPECT_TRUE(telemetry::events().empty());
  // Re-enabling starts from a clean thread stack: no stale prefix.
  telemetry::setEnabled(true);
  { PIRA_TIME_SCOPE("alone"); }
  std::vector<telemetry::TimedEvent> Events = telemetry::events();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].Path, "alone");
}

TEST_F(TelemetryTest, CountersRegisterBumpAndReset) {
  const std::vector<telemetry::Counter *> &All = telemetry::counters();
  auto FindByName = [&](const char *Name) -> telemetry::Counter * {
    auto It = std::find_if(All.begin(), All.end(),
                           [&](const telemetry::Counter *C) {
                             return std::string(C->name()) == Name;
                           });
    return It == All.end() ? nullptr : *It;
  };
  ASSERT_NE(FindByName("TestCounterA"), nullptr);
  ASSERT_NE(FindByName("TestCounterB"), nullptr);

  ++TestCounterA;
  TestCounterA += 4;
  TestCounterB.updateMax(7);
  TestCounterB.updateMax(3); // lower: no effect
  EXPECT_EQ(TestCounterA.value(), 5u);
  EXPECT_EQ(TestCounterB.value(), 7u);

  telemetry::reset();
  EXPECT_EQ(TestCounterA.value(), 0u);
  EXPECT_EQ(TestCounterB.value(), 0u);
  // The registry survives a reset; only values are cleared.
  EXPECT_NE(FindByName("TestCounterA"), nullptr);
}

TEST_F(TelemetryTest, CountersAreThreadSafe) {
  constexpr unsigned PerThread = 10000;
  std::vector<std::thread> Threads;
  for (int T = 0; T != 4; ++T)
    Threads.emplace_back([] {
      for (unsigned I = 0; I != PerThread; ++I)
        ++TestCounterA;
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(TestCounterA.value(), 4u * PerThread);
}

TEST_F(TelemetryTest, TimerAggregatesGroupByPath) {
  for (int I = 0; I != 3; ++I) {
    PIRA_TIME_SCOPE("agg/outer");
    PIRA_TIME_SCOPE("agg/inner");
  }
  std::vector<telemetry::TimerAggregate> Aggs = telemetry::timerAggregates();
  ASSERT_EQ(Aggs.size(), 2u);
  for (const telemetry::TimerAggregate &A : Aggs)
    EXPECT_EQ(A.Calls, 3u);
  // Descending by total time: the outer scope contains the inner one.
  EXPECT_EQ(Aggs[0].Path, "agg/outer");
  EXPECT_EQ(Aggs[1].Path, "agg/outer/agg/inner");
}

TEST_F(TelemetryTest, ChromeTraceIsValidJsonWithCompleteEvents) {
  {
    PIRA_TIME_SCOPE("phase/a");
    { PIRA_TIME_SCOPE("phase/b"); }
  }
  std::ostringstream OS;
  telemetry::writeChromeTrace(OS);

  json::Value Root;
  std::string Error;
  ASSERT_TRUE(json::parse(OS.str(), Root, Error)) << Error;
  const json::Value *Trace = Root.find("traceEvents");
  ASSERT_NE(Trace, nullptr);
  ASSERT_TRUE(Trace->isArray());
  ASSERT_EQ(Trace->elements().size(), 2u);
  for (const json::Value &Ev : Trace->elements()) {
    // Complete ("X") events carry their duration inline, so every event
    // is trivially matched — no dangling B without E.
    ASSERT_TRUE(Ev.find("ph") != nullptr);
    EXPECT_EQ(Ev.find("ph")->asString(), "X");
    EXPECT_TRUE(Ev.has("name"));
    EXPECT_TRUE(Ev.has("ts"));
    EXPECT_TRUE(Ev.has("dur"));
    EXPECT_TRUE(Ev.has("pid"));
    EXPECT_TRUE(Ev.has("tid"));
    ASSERT_NE(Ev.find("args"), nullptr);
    EXPECT_TRUE(Ev.find("args")->has("path"));
  }
  // Nesting is visible in the args.path of the inner event.
  EXPECT_EQ(Trace->elements()[0].find("args")->find("path")->asString(),
            "phase/a/phase/b");
}

TEST_F(TelemetryTest, StatsReportRoundTripsThroughParser) {
  Function F = dotProduct(4);
  MachineModel M = MachineModel::rs6000(8);
  PipelineResult R = runAndMeasure(StrategyKind::Combined, F, M);
  ASSERT_TRUE(R.Success) << R.Error;

  json::Value Report = makeStatsReport(R, "combined", M);
  std::string Text = Report.toString();

  json::Value Parsed;
  std::string Error;
  ASSERT_TRUE(json::parse(Text, Parsed, Error)) << Error;

  EXPECT_EQ(Parsed.find("schema")->asString(), StatsSchemaName);
  EXPECT_EQ(Parsed.find("version")->asInt(), StatsSchemaVersion);
  EXPECT_EQ(Parsed.find("strategy")->asString(), "combined");

  // Every PipelineResult field is present and faithful.
  const json::Value *P = Parsed.find("pipeline");
  ASSERT_NE(P, nullptr);
  for (const char *Key :
       {"success", "error", "registers_used", "spilled_webs",
        "spill_instructions", "false_deps", "anti_ordering_losses",
        "parallel_edges_dropped", "static_cycles", "dyn_cycles",
        "dyn_instructions", "semantics_preserved"})
    EXPECT_TRUE(P->has(Key)) << "missing pipeline field " << Key;
  EXPECT_EQ(P->find("dyn_cycles")->asInt(),
            static_cast<int64_t>(R.DynCycles));
  EXPECT_EQ(P->find("registers_used")->asInt(), R.RegistersUsed);
  EXPECT_TRUE(P->find("semantics_preserved")->asBool());

  // The counter registry made it through with >= 10 entries, each
  // carrying a value and a description.
  const json::Value *Counters = Parsed.find("counters");
  ASSERT_NE(Counters, nullptr);
  EXPECT_GE(Counters->members().size(), 10u);
  for (const auto &[Name, C] : Counters->members()) {
    EXPECT_TRUE(C.has("value")) << Name;
    EXPECT_TRUE(C.has("description")) << Name;
  }

  // Timers made it through, and the combined run produced the scopes the
  // later perf PRs will regress against.
  const json::Value *Timers = Parsed.find("timers");
  ASSERT_NE(Timers, nullptr);
  bool SawClosure = false, SawColoring = false, SawList = false;
  for (const json::Value &T : Timers->elements()) {
    const std::string &Path = T.find("path")->asString();
    SawClosure |= Path.find("pig/closure") != std::string::npos;
    SawColoring |= Path.find("pig/coloring") != std::string::npos;
    SawList |= Path.find("sched/list") != std::string::npos;
  }
  EXPECT_TRUE(SawClosure);
  EXPECT_TRUE(SawColoring);
  EXPECT_TRUE(SawList);
}

TEST_F(TelemetryTest, PipelineFailureReasonsAreNeverSilent) {
  // A function whose only block loops forever: the reference interpreter
  // cannot complete, so runAndMeasure must fail with a populated error.
  Function F("spin");
  IRBuilder B(F);
  unsigned Entry = B.startBlock("entry");
  (void)B.loadImm(1);
  B.br(Entry);

  MachineModel M = MachineModel::rs6000(8);
  PipelineResult R = runAndMeasure(StrategyKind::AllocFirst, F, M);
  EXPECT_FALSE(R.Success);
  EXPECT_FALSE(R.Error.empty());
  // The report serializes that reason.
  json::Value Report = makeStatsReport(R, "alloc-first", M);
  EXPECT_FALSE(Report.find("pipeline")->find("error")->asString().empty());
}

//===----------------------------------------------------------------------===//
// JSON library
//===----------------------------------------------------------------------===//

TEST(JsonTest, WriterEscapesAndParserUnescapes) {
  json::Value V = json::Value::object();
  V.set("text", "line1\nline2\t\"quoted\" \\slash");
  V.set("neg", static_cast<int64_t>(-42));
  V.set("pi", 3.25);
  V.set("flag", true);
  V.set("nothing", nullptr);
  json::Value Arr = json::Value::array();
  Arr.push(1);
  Arr.push("two");
  V.set("arr", std::move(Arr));

  json::Value Back;
  std::string Error;
  ASSERT_TRUE(json::parse(V.toString(), Back, Error)) << Error;
  EXPECT_EQ(Back.find("text")->asString(), "line1\nline2\t\"quoted\" \\slash");
  EXPECT_EQ(Back.find("neg")->asInt(), -42);
  EXPECT_DOUBLE_EQ(Back.find("pi")->asDouble(), 3.25);
  EXPECT_TRUE(Back.find("flag")->asBool());
  EXPECT_TRUE(Back.find("nothing")->isNull());
  ASSERT_EQ(Back.find("arr")->elements().size(), 2u);
  EXPECT_EQ(Back.find("arr")->elements()[1].asString(), "two");
}

TEST(JsonTest, IntegersSurviveExactly) {
  json::Value V = json::Value::object();
  V.set("big", static_cast<uint64_t>(1) << 53);
  json::Value Back;
  std::string Error;
  ASSERT_TRUE(json::parse(V.toString(-1), Back, Error)) << Error;
  EXPECT_TRUE(Back.find("big")->isInt());
  EXPECT_EQ(Back.find("big")->asInt(), static_cast<int64_t>(1) << 53);
}

TEST(JsonTest, ParserRejectsMalformedInput) {
  json::Value V;
  std::string Error;
  EXPECT_FALSE(json::parse("{", V, Error));
  EXPECT_FALSE(json::parse("[1,]", V, Error));
  EXPECT_FALSE(json::parse("{\"a\":1} trailing", V, Error));
  EXPECT_FALSE(json::parse("\"unterminated", V, Error));
  EXPECT_FALSE(json::parse("01x", V, Error));
  EXPECT_FALSE(Error.empty());
}

TEST(JsonTest, ObjectsPreserveInsertionOrder) {
  json::Value V = json::Value::object();
  V.set("zebra", 1);
  V.set("apple", 2);
  V.set("zebra", 3); // replaces in place, keeps position
  EXPECT_EQ(V.members()[0].first, "zebra");
  EXPECT_EQ(V.members()[0].second.asInt(), 3);
  EXPECT_EQ(V.members()[1].first, "apple");
  EXPECT_EQ(V.toString(-1), "{\"zebra\":3,\"apple\":2}");
}

} // namespace
