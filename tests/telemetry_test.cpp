//===- tests/telemetry_test.cpp - Telemetry subsystem tests ---------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
// Covers the observability layer end to end: nested scope timing and
// path formation, counter registration and reset, Chrome trace-event
// export (valid JSON, complete events), the JSON library round trip,
// and the versioned stats report built from a real pipeline run.
//
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include "ir/IRBuilder.h"
#include "machine/MachineModel.h"
#include "pipeline/Report.h"
#include "pipeline/Strategies.h"
#include "support/Json.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <thread>

using namespace pira;

namespace {

/// Every telemetry test runs against a clean, enabled registry and
/// restores the disabled default afterwards so ordering between test
/// suites cannot leak state.
class TelemetryTest : public ::testing::Test {
protected:
  void SetUp() override {
    telemetry::reset();
    telemetry::setEnabled(true);
  }
  void TearDown() override {
    telemetry::setEnabled(false);
    telemetry::reset();
  }
};

PIRA_STAT(TestCounterA, "test-only counter A");
PIRA_STAT(TestCounterB, "test-only counter B");
PIRA_HIST(TestHistA, "test-only latency histogram A");

TEST_F(TelemetryTest, NestedScopesProduceHierarchicalPaths) {
  {
    PIRA_TIME_SCOPE("outer");
    {
      PIRA_TIME_SCOPE("middle/part");
      { PIRA_TIME_SCOPE("inner"); }
    }
    { PIRA_TIME_SCOPE("sibling"); }
  }
  std::vector<telemetry::TimedEvent> Events = telemetry::events();
  ASSERT_EQ(Events.size(), 4u);
  // Scopes record on exit, so innermost-first.
  EXPECT_EQ(Events[0].Path, "outer/middle/part/inner");
  EXPECT_EQ(Events[1].Path, "outer/middle/part");
  EXPECT_EQ(Events[2].Path, "outer/sibling");
  EXPECT_EQ(Events[3].Path, "outer");
  EXPECT_EQ(Events[0].Depth, 2u);
  EXPECT_EQ(Events[3].Depth, 0u);
  EXPECT_EQ(Events[0].Label, "inner");
  // A nested scope cannot run longer than its parent.
  EXPECT_LE(Events[0].DurationNs, Events[3].DurationNs);
}

TEST_F(TelemetryTest, ScopesRecordNothingWhenDisabled) {
  telemetry::setEnabled(false);
  { PIRA_TIME_SCOPE("ghost"); }
  EXPECT_TRUE(telemetry::events().empty());
  // Re-enabling starts from a clean thread stack: no stale prefix.
  telemetry::setEnabled(true);
  { PIRA_TIME_SCOPE("alone"); }
  std::vector<telemetry::TimedEvent> Events = telemetry::events();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].Path, "alone");
}

TEST_F(TelemetryTest, CountersRegisterBumpAndReset) {
  const std::vector<telemetry::Counter *> &All = telemetry::counters();
  auto FindByName = [&](const char *Name) -> telemetry::Counter * {
    auto It = std::find_if(All.begin(), All.end(),
                           [&](const telemetry::Counter *C) {
                             return std::string(C->name()) == Name;
                           });
    return It == All.end() ? nullptr : *It;
  };
  ASSERT_NE(FindByName("TestCounterA"), nullptr);
  ASSERT_NE(FindByName("TestCounterB"), nullptr);

  ++TestCounterA;
  TestCounterA += 4;
  TestCounterB.updateMax(7);
  TestCounterB.updateMax(3); // lower: no effect
  EXPECT_EQ(TestCounterA.value(), 5u);
  EXPECT_EQ(TestCounterB.value(), 7u);

  telemetry::reset();
  EXPECT_EQ(TestCounterA.value(), 0u);
  EXPECT_EQ(TestCounterB.value(), 0u);
  // The registry survives a reset; only values are cleared.
  EXPECT_NE(FindByName("TestCounterA"), nullptr);
}

TEST_F(TelemetryTest, CountersAreThreadSafe) {
  constexpr unsigned PerThread = 10000;
  std::vector<std::thread> Threads;
  for (int T = 0; T != 4; ++T)
    Threads.emplace_back([] {
      for (unsigned I = 0; I != PerThread; ++I)
        ++TestCounterA;
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(TestCounterA.value(), 4u * PerThread);
}

TEST_F(TelemetryTest, TimerAggregatesGroupByPath) {
  for (int I = 0; I != 3; ++I) {
    PIRA_TIME_SCOPE("agg/outer");
    PIRA_TIME_SCOPE("agg/inner");
  }
  std::vector<telemetry::TimerAggregate> Aggs = telemetry::timerAggregates();
  ASSERT_EQ(Aggs.size(), 2u);
  for (const telemetry::TimerAggregate &A : Aggs)
    EXPECT_EQ(A.Calls, 3u);
  // Descending by total time: the outer scope contains the inner one.
  EXPECT_EQ(Aggs[0].Path, "agg/outer");
  EXPECT_EQ(Aggs[1].Path, "agg/outer/agg/inner");
}

TEST_F(TelemetryTest, ChromeTraceIsValidJsonWithCompleteEvents) {
  {
    PIRA_TIME_SCOPE("phase/a");
    { PIRA_TIME_SCOPE("phase/b"); }
  }
  std::ostringstream OS;
  telemetry::writeChromeTrace(OS);

  json::Value Root;
  std::string Error;
  ASSERT_TRUE(json::parse(OS.str(), Root, Error)) << Error;
  const json::Value *Trace = Root.find("traceEvents");
  ASSERT_NE(Trace, nullptr);
  ASSERT_TRUE(Trace->isArray());
  // One process-name and one thread-name metadata event precede the two
  // complete events: every span came from this process's main thread.
  std::vector<const json::Value *> Meta, Spans;
  for (const json::Value &Ev : Trace->elements()) {
    ASSERT_TRUE(Ev.find("ph") != nullptr);
    if (Ev.find("ph")->asString() == "M")
      Meta.push_back(&Ev);
    else
      Spans.push_back(&Ev);
  }
  ASSERT_EQ(Meta.size(), 2u);
  EXPECT_EQ(Meta[0]->find("name")->asString(), "process_name");
  EXPECT_EQ(Meta[0]->find("args")->find("name")->asString(), "pirac");
  EXPECT_EQ(Meta[1]->find("name")->asString(), "thread_name");
  EXPECT_EQ(Meta[1]->find("args")->find("name")->asString(), "main");

  ASSERT_EQ(Spans.size(), 2u);
  for (const json::Value *EvP : Spans) {
    const json::Value &Ev = *EvP;
    // Complete ("X") events carry their duration inline, so every event
    // is trivially matched — no dangling B without E.
    EXPECT_EQ(Ev.find("ph")->asString(), "X");
    EXPECT_TRUE(Ev.has("name"));
    EXPECT_TRUE(Ev.has("ts"));
    EXPECT_TRUE(Ev.has("dur"));
    // Spans carry the real process id, not a placeholder.
    ASSERT_TRUE(Ev.has("pid"));
    EXPECT_EQ(Ev.find("pid")->asInt(),
              static_cast<int64_t>(telemetry::processId()));
    EXPECT_TRUE(Ev.has("tid"));
    ASSERT_NE(Ev.find("args"), nullptr);
    EXPECT_TRUE(Ev.find("args")->has("path"));
  }
  // Nesting is visible in the args.path of the inner event.
  EXPECT_EQ(Spans[0]->find("args")->find("path")->asString(),
            "phase/a/phase/b");
}

//===----------------------------------------------------------------------===//
// Histograms
//===----------------------------------------------------------------------===//

TEST_F(TelemetryTest, HistogramBucketBoundaries) {
  using H = telemetry::Histogram;
  // Bucket 0 holds exactly {0}; bucket i holds [2^(i-1), 2^i).
  EXPECT_EQ(H::bucketFor(0), 0u);
  EXPECT_EQ(H::bucketFor(1), 1u);
  EXPECT_EQ(H::bucketFor(2), 2u);
  EXPECT_EQ(H::bucketFor(3), 2u);
  EXPECT_EQ(H::bucketFor(4), 3u);
  EXPECT_EQ(H::bucketFor(1023), 10u);
  EXPECT_EQ(H::bucketFor(1024), 11u);
  // The top bucket absorbs everything that would overflow the range.
  EXPECT_EQ(H::bucketFor(UINT64_MAX), 63u);
  // Upper bounds are inclusive and consistent with bucketFor: a value at
  // a bucket's bound maps into that bucket, one past it does not.
  EXPECT_EQ(H::bucketUpperBound(0), 0u);
  EXPECT_EQ(H::bucketUpperBound(1), 1u);
  EXPECT_EQ(H::bucketUpperBound(2), 3u);
  EXPECT_EQ(H::bucketUpperBound(11), 2047u);
  EXPECT_EQ(H::bucketUpperBound(63), UINT64_MAX);
  for (unsigned I = 0; I != 20; ++I) {
    EXPECT_EQ(H::bucketFor(H::bucketUpperBound(I)), I) << I;
    EXPECT_EQ(H::bucketFor(H::bucketUpperBound(I) + 1), I + 1) << I;
  }
}

TEST_F(TelemetryTest, HistogramRecordAndPercentiles) {
  // Histograms record regardless of the trace flag, like counters.
  telemetry::setEnabled(false);
  for (uint64_t V : {0u, 1u, 5u, 5u, 100u, 1000u, 1000000u})
    TestHistA.record(V);
  EXPECT_EQ(TestHistA.count(), 7u);
  EXPECT_EQ(TestHistA.sum(), 1001111u);
  EXPECT_EQ(TestHistA.max(), 1000000u);
  EXPECT_EQ(TestHistA.bucketCount(0), 1u); // the 0
  EXPECT_EQ(TestHistA.bucketCount(3), 2u); // the 5s in [4,8)
  // Percentiles report the bucket's inclusive upper bound.
  EXPECT_EQ(TestHistA.percentileUpperBound(50.0),
            telemetry::Histogram::bucketUpperBound(
                telemetry::Histogram::bucketFor(5)));
  EXPECT_EQ(TestHistA.percentileUpperBound(100.0),
            telemetry::Histogram::bucketUpperBound(
                telemetry::Histogram::bucketFor(1000000)));
  // Registered once, findable by name, cleared by reset.
  ASSERT_EQ(telemetry::findHistogram("TestHistA"), &TestHistA);
  telemetry::reset();
  EXPECT_EQ(TestHistA.count(), 0u);
  EXPECT_EQ(TestHistA.sum(), 0u);
  EXPECT_EQ(TestHistA.max(), 0u);
}

TEST_F(TelemetryTest, EmptyHistogramPercentilesAreZeroAndOmittedFromReports) {
  // An empty histogram answers 0 for every percentile. The failure mode
  // this pins down: a rank walk that never reaches its target falls off
  // the end and reports the last bucket's upper bound — UINT64_MAX
  // masquerading as a latency for a histogram that recorded nothing.
  ASSERT_EQ(TestHistA.count(), 0u);
  for (double P : {1.0, 50.0, 90.0, 99.0, 100.0})
    EXPECT_EQ(TestHistA.percentileUpperBound(P), 0u) << "P" << P;

  // The pira.stats v5 histogram block keeps count (as 0) but omits the
  // percentile keys entirely rather than inventing values a dashboard
  // would average in.
  json::Value Hists = histogramsToJson();
  const json::Value *HV = Hists.find("TestHistA");
  ASSERT_NE(HV, nullptr);
  EXPECT_EQ(HV->find("count")->asInt(), 0);
  for (const char *Key : {"p50_ns", "p90_ns", "p99_ns"})
    EXPECT_FALSE(HV->has(Key)) << "unexpected " << Key;

  // One observation restores the full shape.
  TestHistA.record(7);
  Hists = histogramsToJson();
  HV = Hists.find("TestHistA");
  ASSERT_NE(HV, nullptr);
  for (const char *Key : {"p50_ns", "p90_ns", "p99_ns"})
    EXPECT_TRUE(HV->has(Key)) << "missing " << Key;
  EXPECT_EQ(HV->find("p99_ns")->asInt(), 7);
}

TEST_F(TelemetryTest, SnapshotRoundTripsCountersHistogramsAndEvents) {
  TestCounterA += 5;
  TestHistA.record(7);
  TestHistA.record(900);
  { PIRA_TIME_SCOPE("child/work"); }
  json::Value Snapshot = telemetry::snapshotToJson();
  EXPECT_TRUE(Snapshot.find("pid")->isInt());

  // A fresh registry fed the snapshot reproduces the source exactly —
  // this is the worker->parent merge path.
  telemetry::reset();
  telemetry::setEnabled(true);
  constexpr uint64_t Rebase = 1000000000ull;
  telemetry::mergeSnapshot(Snapshot, Rebase);
  EXPECT_EQ(TestCounterA.value(), 5u);
  EXPECT_EQ(TestHistA.count(), 2u);
  EXPECT_EQ(TestHistA.sum(), 907u);
  EXPECT_EQ(TestHistA.max(), 900u);
  std::vector<telemetry::TimedEvent> Events = telemetry::events();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].Path, "child/work");
  // The foreign timeline is re-based so its earliest event lands at the
  // requested instant, and the foreign pid is preserved.
  EXPECT_EQ(Events[0].StartNs, Rebase);
  EXPECT_EQ(Events[0].Pid, telemetry::processId());

  // Merging is additive: a second apply doubles counts but not max.
  telemetry::mergeSnapshot(Snapshot, Rebase);
  EXPECT_EQ(TestCounterA.value(), 10u);
  EXPECT_EQ(TestHistA.count(), 4u);
  EXPECT_EQ(TestHistA.max(), 900u);
}

TEST_F(TelemetryTest, MergeSnapshotDropsUnknownNamesAndMergesEventsOnlyWhenEnabled) {
  json::Value Snapshot = json::Value::object();
  json::Value Counters = json::Value::object();
  Counters.set("NoSuchCounterEver", 9);
  Counters.set("TestCounterB", 3);
  Snapshot.set("counters", std::move(Counters));
  json::Value Hists = json::Value::object();
  Hists.set("NoSuchHistEver", json::Value::object());
  Snapshot.set("histograms", std::move(Hists));
  json::Value Evs = json::Value::array();
  json::Value EV = json::Value::object();
  EV.set("path", "ghost");
  EV.set("start_ns", 5);
  EV.set("dur_ns", 1);
  Evs.push(std::move(EV));
  Snapshot.set("events", std::move(Evs));

  telemetry::setEnabled(false);
  telemetry::mergeSnapshot(Snapshot, 0);
  EXPECT_EQ(TestCounterB.value(), 3u); // known name merged
  EXPECT_TRUE(telemetry::events().empty()); // tracing off: events dropped

  telemetry::setEnabled(true);
  telemetry::mergeSnapshot(Snapshot, 0);
  EXPECT_EQ(telemetry::events().size(), 1u);
}

TEST_F(TelemetryTest, PrometheusExpositionShape) {
  TestCounterA += 5;
  TestHistA.record(0);
  TestHistA.record(3);
  TestHistA.record(3000000000ull); // 3s
  std::ostringstream OS;
  telemetry::writePrometheus(OS);
  std::string Text = OS.str();

  EXPECT_NE(Text.find("# TYPE pira_TestCounterA_total counter\n"),
            std::string::npos);
  EXPECT_NE(Text.find("pira_TestCounterA_total 5\n"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE pira_TestHistA_seconds histogram\n"),
            std::string::npos);
  // Buckets are cumulative: the 0-bound bucket holds the zero sample,
  // +Inf holds everything.
  EXPECT_NE(Text.find("pira_TestHistA_seconds_bucket{le=\"0\"} 1\n"),
            std::string::npos);
  EXPECT_NE(Text.find("pira_TestHistA_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(Text.find("pira_TestHistA_seconds_count 3\n"), std::string::npos);
  // OpenMetrics terminator, exactly at the end.
  ASSERT_GE(Text.size(), 6u);
  EXPECT_EQ(Text.substr(Text.size() - 6), "# EOF\n");
}

TEST_F(TelemetryTest, StatsReportCarriesProvenanceAndHistograms) {
  TestHistA.record(42);
  Function F = dotProduct(4);
  MachineModel M = MachineModel::rs6000(8);
  PipelineResult R = runAndMeasure(StrategyKind::Combined, F, M);
  ASSERT_TRUE(R.Success) << R.Error;
  json::Value Report = makeStatsReport(R, "combined", M);

  const json::Value *Prov = Report.find("provenance");
  ASSERT_NE(Prov, nullptr);
  EXPECT_EQ(Prov->find("tool")->asString(), "pirac");
  EXPECT_EQ(Prov->find("tool_version")->asString(), PiraVersionString);
  for (const char *Key : {"git_sha", "compiler", "build_type", "ndebug"})
    EXPECT_TRUE(Prov->has(Key)) << "missing provenance field " << Key;

  const json::Value *Hists = Report.find("histograms");
  ASSERT_NE(Hists, nullptr);
  const json::Value *HV = Hists->find("TestHistA");
  ASSERT_NE(HV, nullptr);
  EXPECT_EQ(HV->find("count")->asInt(), 1);
  EXPECT_EQ(HV->find("sum_ns")->asInt(), 42);
  for (const char *Key : {"description", "max_ns", "p50_ns", "p90_ns",
                          "p99_ns", "buckets"})
    EXPECT_TRUE(HV->has(Key)) << "missing histogram field " << Key;
}

TEST_F(TelemetryTest, StatsReportRoundTripsThroughParser) {
  Function F = dotProduct(4);
  MachineModel M = MachineModel::rs6000(8);
  PipelineResult R = runAndMeasure(StrategyKind::Combined, F, M);
  ASSERT_TRUE(R.Success) << R.Error;

  json::Value Report = makeStatsReport(R, "combined", M);
  std::string Text = Report.toString();

  json::Value Parsed;
  std::string Error;
  ASSERT_TRUE(json::parse(Text, Parsed, Error)) << Error;

  EXPECT_EQ(Parsed.find("schema")->asString(), StatsSchemaName);
  EXPECT_EQ(Parsed.find("version")->asInt(), StatsSchemaVersion);
  EXPECT_EQ(Parsed.find("strategy")->asString(), "combined");

  // Every PipelineResult field is present and faithful.
  const json::Value *P = Parsed.find("pipeline");
  ASSERT_NE(P, nullptr);
  for (const char *Key :
       {"success", "error", "registers_used", "spilled_webs",
        "spill_instructions", "false_deps", "anti_ordering_losses",
        "parallel_edges_dropped", "static_cycles", "dyn_cycles",
        "dyn_instructions", "semantics_preserved"})
    EXPECT_TRUE(P->has(Key)) << "missing pipeline field " << Key;
  EXPECT_EQ(P->find("dyn_cycles")->asInt(),
            static_cast<int64_t>(R.DynCycles));
  EXPECT_EQ(P->find("registers_used")->asInt(), R.RegistersUsed);
  EXPECT_TRUE(P->find("semantics_preserved")->asBool());

  // The counter registry made it through with >= 10 entries, each
  // carrying a value and a description.
  const json::Value *Counters = Parsed.find("counters");
  ASSERT_NE(Counters, nullptr);
  EXPECT_GE(Counters->members().size(), 10u);
  for (const auto &[Name, C] : Counters->members()) {
    EXPECT_TRUE(C.has("value")) << Name;
    EXPECT_TRUE(C.has("description")) << Name;
  }

  // Timers made it through, and the combined run produced the scopes the
  // later perf PRs will regress against.
  const json::Value *Timers = Parsed.find("timers");
  ASSERT_NE(Timers, nullptr);
  bool SawClosure = false, SawColoring = false, SawList = false;
  for (const json::Value &T : Timers->elements()) {
    const std::string &Path = T.find("path")->asString();
    SawClosure |= Path.find("pig/closure") != std::string::npos;
    SawColoring |= Path.find("pig/coloring") != std::string::npos;
    SawList |= Path.find("sched/list") != std::string::npos;
  }
  EXPECT_TRUE(SawClosure);
  EXPECT_TRUE(SawColoring);
  EXPECT_TRUE(SawList);
}

TEST_F(TelemetryTest, PipelineFailureReasonsAreNeverSilent) {
  // A function whose only block loops forever: the reference interpreter
  // cannot complete, so runAndMeasure must fail with a populated error.
  Function F("spin");
  IRBuilder B(F);
  unsigned Entry = B.startBlock("entry");
  (void)B.loadImm(1);
  B.br(Entry);

  MachineModel M = MachineModel::rs6000(8);
  PipelineResult R = runAndMeasure(StrategyKind::AllocFirst, F, M);
  EXPECT_FALSE(R.Success);
  EXPECT_FALSE(R.Error.empty());
  // The report serializes that reason.
  json::Value Report = makeStatsReport(R, "alloc-first", M);
  EXPECT_FALSE(Report.find("pipeline")->find("error")->asString().empty());
}

//===----------------------------------------------------------------------===//
// JSON library
//===----------------------------------------------------------------------===//

TEST(JsonTest, WriterEscapesAndParserUnescapes) {
  json::Value V = json::Value::object();
  V.set("text", "line1\nline2\t\"quoted\" \\slash");
  V.set("neg", static_cast<int64_t>(-42));
  V.set("pi", 3.25);
  V.set("flag", true);
  V.set("nothing", nullptr);
  json::Value Arr = json::Value::array();
  Arr.push(1);
  Arr.push("two");
  V.set("arr", std::move(Arr));

  json::Value Back;
  std::string Error;
  ASSERT_TRUE(json::parse(V.toString(), Back, Error)) << Error;
  EXPECT_EQ(Back.find("text")->asString(), "line1\nline2\t\"quoted\" \\slash");
  EXPECT_EQ(Back.find("neg")->asInt(), -42);
  EXPECT_DOUBLE_EQ(Back.find("pi")->asDouble(), 3.25);
  EXPECT_TRUE(Back.find("flag")->asBool());
  EXPECT_TRUE(Back.find("nothing")->isNull());
  ASSERT_EQ(Back.find("arr")->elements().size(), 2u);
  EXPECT_EQ(Back.find("arr")->elements()[1].asString(), "two");
}

TEST(JsonTest, IntegersSurviveExactly) {
  json::Value V = json::Value::object();
  V.set("big", static_cast<uint64_t>(1) << 53);
  json::Value Back;
  std::string Error;
  ASSERT_TRUE(json::parse(V.toString(-1), Back, Error)) << Error;
  EXPECT_TRUE(Back.find("big")->isInt());
  EXPECT_EQ(Back.find("big")->asInt(), static_cast<int64_t>(1) << 53);
}

TEST(JsonTest, ParserRejectsMalformedInput) {
  json::Value V;
  std::string Error;
  EXPECT_FALSE(json::parse("{", V, Error));
  EXPECT_FALSE(json::parse("[1,]", V, Error));
  EXPECT_FALSE(json::parse("{\"a\":1} trailing", V, Error));
  EXPECT_FALSE(json::parse("\"unterminated", V, Error));
  EXPECT_FALSE(json::parse("01x", V, Error));
  EXPECT_FALSE(Error.empty());
}

TEST(JsonTest, ObjectsPreserveInsertionOrder) {
  json::Value V = json::Value::object();
  V.set("zebra", 1);
  V.set("apple", 2);
  V.set("zebra", 3); // replaces in place, keeps position
  EXPECT_EQ(V.members()[0].first, "zebra");
  EXPECT_EQ(V.members()[0].second.asInt(), 3);
  EXPECT_EQ(V.members()[1].first, "apple");
  EXPECT_EQ(V.toString(-1), "{\"zebra\":3,\"apple\":2}");
}

} // namespace
