//===- tests/regalloc_test.cpp - Register allocation unit tests -----------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "analysis/Webs.h"
#include "ir/IRBuilder.h"
#include "ir/Interpreter.h"
#include "ir/Verifier.h"
#include "regalloc/Allocation.h"
#include "regalloc/ChaitinAllocator.h"
#include "regalloc/InterferenceGraph.h"
#include "regalloc/SpillCost.h"
#include "regalloc/SpillInserter.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

#include <limits>
#include <set>

using namespace pira;

//===----------------------------------------------------------------------===//
// InterferenceGraph
//===----------------------------------------------------------------------===//

TEST(InterferenceTest, SimultaneouslyLiveValuesConflict) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("e");
  Reg A = B.loadImm(1);
  Reg C = B.loadImm(2);
  Reg S = B.binary(Opcode::Add, A, C);
  B.ret(S);
  Webs W(F);
  InterferenceGraph IG(F, W);
  EXPECT_TRUE(IG.interfere(W.webOfDef(0, 0), W.webOfDef(0, 1)));
}

TEST(InterferenceTest, LastUseOpenEndpointAllowsReuse) {
  // Paper Section 2: the statement of the last use is not part of the
  // interval, so def-at-last-use does not interfere.
  Function F("t");
  IRBuilder B(F);
  B.startBlock("e");
  Reg A = B.loadImm(1);
  Reg C = B.binary(Opcode::Add, A, A); // last use of A defines C
  B.ret(C);
  Webs W(F);
  InterferenceGraph IG(F, W);
  EXPECT_FALSE(IG.interfere(W.webOfDef(0, 0), W.webOfDef(0, 1)));
}

TEST(InterferenceTest, Example2NeedsThreeColors) {
  // The paper's Figure 4 commentary: "only three registers are needed"
  // for the plain interference graph of Example 2.
  Function F = paperExample2();
  Webs W(F);
  InterferenceGraph IG(F, W);
  std::vector<double> Costs(W.numWebs(), 1.0);
  Allocation A = chaitinColor(IG.graph(), Costs, /*NumRegs=*/3);
  EXPECT_TRUE(A.fullyColored());
  EXPECT_EQ(A.NumColorsUsed, 3u);
  // Two colors cannot work: the pressure peak is 3.
  Allocation A2 = chaitinColor(IG.graph(), Costs, /*NumRegs=*/2);
  EXPECT_FALSE(A2.fullyColored());
}

TEST(InterferenceTest, PressureMatchesKnownValue) {
  Function F = paperExample2();
  Webs W(F);
  InterferenceGraph IG(F, W);
  EXPECT_EQ(IG.maxLivePressure(), 3u);
}

TEST(InterferenceTest, LivenessAtWebGranularity) {
  Function F = dotProduct(1);
  Webs W(F);
  InterferenceGraph IG(F, W);
  unsigned SumWeb = W.webOfDef(0, 0);
  EXPECT_TRUE(IG.liveIn(1).test(SumWeb));
  EXPECT_TRUE(IG.liveOut(1).test(SumWeb));
  EXPECT_TRUE(IG.liveIn(2).test(SumWeb));
}

TEST(InterferenceTest, FunctionInputsInterfereAtEntry) {
  Function F("t");
  F.setNumRegs(2);
  F.addBlock("e");
  // Both inputs read: they are simultaneously live at entry.
  F.block(0).append(Instruction(Opcode::Add, 0, {0, 1}));
  F.block(0).append(Instruction(Opcode::Ret, NoReg, {0}));
  Webs W(F);
  InterferenceGraph IG(F, W);
  ASSERT_EQ(W.numWebs(), 3u);
  unsigned In0 = W.webOfUse(0, 0, 0);
  unsigned In1 = W.webOfUse(0, 0, 1);
  EXPECT_TRUE(IG.interfere(In0, In1));
}

//===----------------------------------------------------------------------===//
// Spill costs
//===----------------------------------------------------------------------===//

TEST(SpillCostTest, LoopResidentsCostMore) {
  Function F = dotProduct(1);
  Webs W(F);
  std::vector<double> Costs = computeSpillCosts(F, W);
  // A web used only in the entry block (N bound) vs one used in the loop
  // (the loads): loop webs weigh more per reference.
  unsigned LoopLoadWeb = W.webOfDef(1, 0);
  unsigned BoundWeb = W.webOfDef(0, 2); // N, used once in the loop compare
  EXPECT_GT(Costs[LoopLoadWeb], 0.0);
  EXPECT_GT(Costs[BoundWeb], 0.0);
  // The loop-resident load web has def+use inside the loop: >= 20.
  EXPECT_GE(Costs[LoopLoadWeb], 20.0);
}

TEST(SpillCostTest, EntryDefWebGetsExtra) {
  Function F("t");
  F.setNumRegs(1);
  F.addBlock("e");
  F.block(0).append(Instruction(Opcode::Ret, NoReg, {0}));
  Webs W(F);
  std::vector<double> Costs = computeSpillCosts(F, W);
  ASSERT_EQ(Costs.size(), 1u);
  EXPECT_DOUBLE_EQ(Costs[0], 2.0); // one use + entry-def surcharge
}

//===----------------------------------------------------------------------===//
// chaitinColor
//===----------------------------------------------------------------------===//

TEST(ChaitinColorTest, TriangleNeedsThree) {
  UndirectedGraph G(3);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(0, 2);
  std::vector<double> Costs = {1, 1, 1};
  Allocation A = chaitinColor(G, Costs, 3);
  EXPECT_TRUE(A.fullyColored());
  EXPECT_EQ(A.NumColorsUsed, 3u);
  std::set<int> Colors(A.ColorOfWeb.begin(), A.ColorOfWeb.end());
  EXPECT_EQ(Colors.size(), 3u);
}

TEST(ChaitinColorTest, ColoringIsProper) {
  // A 5-cycle is 3-chromatic; verify no edge shares a color.
  UndirectedGraph G(5);
  for (unsigned I = 0; I != 5; ++I)
    G.addEdge(I, (I + 1) % 5);
  std::vector<double> Costs(5, 1.0);
  Allocation A = chaitinColor(G, Costs, 3);
  ASSERT_TRUE(A.fullyColored());
  for (const auto &[U, V] : G.edgeList())
    EXPECT_NE(A.ColorOfWeb[U], A.ColorOfWeb[V]);
}

TEST(ChaitinColorTest, SpillsCheapestWhenStuck) {
  // K4 with 2 registers: must spill; vertex 2 is the cheapest.
  UndirectedGraph G(4);
  for (unsigned I = 0; I != 4; ++I)
    for (unsigned J = I + 1; J != 4; ++J)
      G.addEdge(I, J);
  std::vector<double> Costs = {10, 10, 1, 10};
  Allocation A = chaitinColor(G, Costs, 2);
  ASSERT_FALSE(A.fullyColored());
  EXPECT_EQ(A.SpilledWebs[0], 2u);
}

TEST(ChaitinColorTest, InfiniteCostNeverSpilled) {
  UndirectedGraph G(4);
  for (unsigned I = 0; I != 4; ++I)
    for (unsigned J = I + 1; J != 4; ++J)
      G.addEdge(I, J);
  constexpr double Inf = std::numeric_limits<double>::infinity();
  std::vector<double> Costs = {Inf, Inf, Inf, 5.0};
  Allocation A = chaitinColor(G, Costs, 2);
  ASSERT_FALSE(A.fullyColored());
  // K4 with two colors needs two spills; the finite-cost vertex must be
  // chosen first, before the procedure is forced onto infinite ones.
  EXPECT_EQ(A.SpilledWebs.front(), 3u);
}

TEST(ChaitinColorTest, EmptyGraphColorsTrivially) {
  UndirectedGraph G(0);
  Allocation A = chaitinColor(G, {}, 4);
  EXPECT_TRUE(A.fullyColored());
  EXPECT_EQ(A.NumColorsUsed, 0u);
}

TEST(ChaitinColorTest, IsolatedVerticesShareOneColor) {
  UndirectedGraph G(6);
  std::vector<double> Costs(6, 1.0);
  Allocation A = chaitinColor(G, Costs, 2);
  ASSERT_TRUE(A.fullyColored());
  EXPECT_EQ(A.NumColorsUsed, 1u);
}

//===----------------------------------------------------------------------===//
// applyAllocation
//===----------------------------------------------------------------------===//

TEST(ApplyAllocationTest, RewritesOperandsConsistently) {
  Function F = paperExample2();
  Webs W(F);
  InterferenceGraph IG(F, W);
  std::vector<double> Costs(W.numWebs(), 1.0);
  Allocation A = chaitinColor(IG.graph(), Costs, 8);
  ASSERT_TRUE(A.fullyColored());
  Function G = F;
  applyAllocation(G, W, A);
  EXPECT_TRUE(G.isAllocated());
  EXPECT_LE(G.numRegs(), 8u);
  // Semantics must be identical.
  ExecResult Before = interpret(F, makeInitialState(F, 5));
  ExecResult After = interpret(G, makeInitialState(G, 5));
  ASSERT_TRUE(Before.Completed);
  ASSERT_TRUE(After.Completed);
  EXPECT_EQ(Before.ReturnValue, After.ReturnValue);
  EXPECT_TRUE(statesEquivalent(Before.Final, After.Final));
}

//===----------------------------------------------------------------------===//
// SpillInserter
//===----------------------------------------------------------------------===//

TEST(SpillInserterTest, InsertsStoreAfterDefAndLoadBeforeUse) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("e");
  Reg A = B.loadImm(5); // inst 0, web to spill
  Reg C = B.binary(Opcode::Add, A, A);
  B.ret(C);
  Webs W(F);
  unsigned SpillWeb = W.webOfDef(0, 0);
  std::set<Reg> NoSpill;
  SpillCode Code = insertSpillCode(F, W, {SpillWeb}, NoSpill);
  EXPECT_EQ(Code.Stores, 1u);
  EXPECT_EQ(Code.Loads, 1u);
  // Layout now: li, store, load, add, ret.
  ASSERT_EQ(F.block(0).size(), 5u);
  EXPECT_EQ(F.block(0).inst(1).opcode(), Opcode::Store);
  EXPECT_EQ(F.block(0).inst(2).opcode(), Opcode::Load);
  EXPECT_EQ(F.block(0).inst(1).arraySymbol(), SpillArrayName);
  // The spilled register and the reload temp are both pinned.
  EXPECT_TRUE(NoSpill.count(A));
  EXPECT_EQ(NoSpill.size(), 2u);
  std::string Err;
  EXPECT_TRUE(verifyFunction(F, Err)) << Err;
}

TEST(SpillInserterTest, PreservesSemantics) {
  Function F = paperExample2();
  Function Original = F;
  Webs W(F);
  std::set<Reg> NoSpill;
  // Spill webs of s0 and s4 (arbitrary but deterministic).
  insertSpillCode(F, W, {W.webOfDef(0, 0), W.webOfDef(0, 4)}, NoSpill);
  ExecState InitA = makeInitialState(Original, 9);
  ExecState InitB = makeInitialState(F, 9);
  for (auto &[Name, Data] : InitB.Arrays)
    if (Name != SpillArrayName)
      Data = InitA.Arrays.at(Name);
  ExecResult RA = interpret(Original, std::move(InitA));
  ExecResult RB = interpret(F, std::move(InitB));
  ASSERT_TRUE(RA.Completed);
  ASSERT_TRUE(RB.Completed);
  EXPECT_EQ(RA.ReturnValue, RB.ReturnValue);
}

TEST(SpillInserterTest, OneReloadPerInstructionEvenWithTwoUses) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("e");
  Reg A = B.loadImm(3);
  Reg C = B.binary(Opcode::Mul, A, A); // two uses of A in one instruction
  B.ret(C);
  Webs W(F);
  std::set<Reg> NoSpill;
  SpillCode Code = insertSpillCode(F, W, {W.webOfDef(0, 0)}, NoSpill);
  EXPECT_EQ(Code.Loads, 1u) << "one reload must feed both operands";
  ExecResult R = interpret(F, makeInitialState(F, 0));
  EXPECT_EQ(R.ReturnValue, 9);
}

TEST(SpillInserterTest, EntryDefWebStoredAtFunctionTop) {
  Function F("t");
  F.setNumRegs(1);
  F.addBlock("e");
  F.block(0).append(Instruction(Opcode::Ret, NoReg, {0})); // input value
  Webs W(F);
  std::set<Reg> NoSpill;
  SpillCode Code = insertSpillCode(F, W, {0}, NoSpill);
  EXPECT_EQ(Code.Stores, 1u);
  EXPECT_EQ(F.block(0).inst(0).opcode(), Opcode::Store);
}

TEST(SpillInserterTest, SecondRoundUsesFreshSlots) {
  Function F("t");
  IRBuilder B(F);
  B.startBlock("e");
  Reg A = B.loadImm(1);
  Reg C = B.loadImm(2);
  Reg S = B.binary(Opcode::Add, A, C);
  B.ret(S);
  std::set<Reg> NoSpill;
  {
    Webs W(F);
    insertSpillCode(F, W, {W.webOfDef(0, 0)}, NoSpill);
  }
  unsigned SizeAfterFirst = F.arraySize(SpillArrayName);
  {
    Webs W(F);
    // Spill the web of C (register 1) in the rewritten function.
    unsigned Target = ~0u;
    for (unsigned Web = 0; Web != W.numWebs(); ++Web)
      if (W.webRegister(Web) == C)
        Target = Web;
    ASSERT_NE(Target, ~0u);
    insertSpillCode(F, W, {Target}, NoSpill);
  }
  EXPECT_EQ(F.arraySize(SpillArrayName), SizeAfterFirst + 1);
}

//===----------------------------------------------------------------------===//
// chaitinAllocate (full loop)
//===----------------------------------------------------------------------===//

TEST(ChaitinAllocateTest, AmpleRegistersNoSpill) {
  Function F = paperExample2();
  AllocStats S = chaitinAllocate(F, 8);
  EXPECT_TRUE(S.Success);
  EXPECT_EQ(S.SpilledWebs, 0u);
  EXPECT_EQ(S.Rounds, 1u);
  EXPECT_LE(S.ColorsUsed, 8u);
  EXPECT_TRUE(F.isAllocated());
}

TEST(ChaitinAllocateTest, UsesMinimumColorsOnExample2) {
  Function F = paperExample2();
  AllocStats S = chaitinAllocate(F, 3);
  EXPECT_TRUE(S.Success);
  EXPECT_EQ(S.ColorsUsed, 3u);
  EXPECT_EQ(S.SpilledWebs, 0u);
}

TEST(ChaitinAllocateTest, TightRegistersSpillButConverge) {
  Function F = firFilter(6); // coefficient webs inflate pressure
  AllocStats S = chaitinAllocate(F, 3);
  EXPECT_TRUE(S.Success) << "allocation must converge with spilling";
  EXPECT_GT(S.SpilledWebs, 0u);
  EXPECT_GT(S.SpillStores + S.SpillLoads, 0u);
  std::string Err;
  EXPECT_TRUE(verifyFunction(F, Err)) << Err;
  EXPECT_LE(F.numRegs(), 3u);
}

TEST(ChaitinAllocateTest, SpilledCodePreservesSemantics) {
  Function Original = firFilter(6);
  Function F = Original;
  AllocStats S = chaitinAllocate(F, 3);
  ASSERT_TRUE(S.Success);
  ExecState InitA = makeInitialState(Original, 4);
  ExecState InitB = makeInitialState(F, 4);
  for (auto &[Name, Data] : InitB.Arrays) {
    auto It = InitA.Arrays.find(Name);
    if (It != InitA.Arrays.end())
      Data = It->second;
    else
      Data.assign(Data.size(), 0);
  }
  ExecResult RA = interpret(Original, std::move(InitA));
  ExecResult RB = interpret(F, std::move(InitB));
  ASSERT_TRUE(RA.Completed);
  ASSERT_TRUE(RB.Completed) << RB.Error;
  for (const auto &[Name, Data] : RA.Final.Arrays)
    EXPECT_EQ(Data, RB.Final.Arrays.at(Name)) << "array " << Name;
}

TEST(ChaitinAllocateTest, EveryKernelAllocatesWithEightRegs) {
  for (auto &[Name, Kernel] : standardKernelSuite()) {
    Function F = Kernel;
    AllocStats S = chaitinAllocate(F, 8);
    EXPECT_TRUE(S.Success) << Name;
    std::string Err;
    EXPECT_TRUE(verifyFunction(F, Err)) << Name << ": " << Err;
  }
}
