//===- tests/core_test.cpp - Core framework unit tests --------------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
// These tests pin the paper's worked examples edge-for-edge: Example 1
// (Figure 2a-c, Figure 3) and Example 2 (Figures 1, 4, 5).
//
//===----------------------------------------------------------------------===//

#include "analysis/Webs.h"
#include "core/FalseDepChecker.h"
#include "core/FalseDependenceGraph.h"
#include "core/ParallelInterferenceGraph.h"
#include "core/PinterAllocator.h"
#include "ir/IRBuilder.h"
#include "ir/Interpreter.h"
#include "machine/MachineModel.h"
#include "pipeline/Strategies.h"
#include "regalloc/ChaitinAllocator.h"
#include "regalloc/SpillCost.h"
#include "regalloc/InterferenceGraph.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

#include <set>

using namespace pira;

namespace {

using EdgeSet = std::set<std::pair<unsigned, unsigned>>;

/// Edges of \p G restricted to vertices < \p Limit (drops the terminator
/// so asserts can speak in the paper's s1..sN numbering).
EdgeSet edgesBelow(const UndirectedGraph &G, unsigned Limit) {
  EdgeSet S;
  for (const auto &[A, B] : G.edgeList())
    if (A < Limit && B < Limit)
      S.insert({A, B});
  return S;
}

} // namespace

//===----------------------------------------------------------------------===//
// Example 1: Figure 2 (a)-(c) and Figure 3
//===----------------------------------------------------------------------===//

TEST(Example1Test, Figure2b_EtEdges) {
  // Paper: Et = closure edges {s1,s4},{s1,s5},{s3,s5},{s2,s3},{s2,s5}
  // plus machine constraints {s1,s3} (single fetch unit) and {s4,s5}
  // (single fixed-point unit). Our instruction indices are s_i - 1.
  Function F = paperExample1();
  MachineModel M = MachineModel::paperTwoUnit();
  FalseDependenceGraph FDG(F, 0, M);
  EdgeSet Expected = {{0, 2}, {0, 3}, {0, 4}, {1, 2},
                      {1, 4}, {2, 4}, {3, 4}};
  EXPECT_EQ(edgesBelow(FDG.constraints(), 5), Expected);
}

TEST(Example1Test, Figure2b_MachineConstraintPairs) {
  Function F = paperExample1();
  FalseDependenceGraph FDG(F, 0, MachineModel::paperTwoUnit());
  // Exactly the paper's two machine-dependent constraints:
  // {s1,s3} (loads) and {s4,s5} (fixed-point ops).
  EdgeSet Expected = {{0, 2}, {3, 4}};
  EXPECT_EQ(edgesBelow(FDG.machinePairs(), 5), Expected);
}

TEST(Example1Test, Figure2b_FalseDependencePairs) {
  Function F = paperExample1();
  FalseDependenceGraph FDG(F, 0, MachineModel::paperTwoUnit());
  // Paper: "the only false dependence edges are {s1,s2}, {s2,s4} and
  // {s3,s4}".
  EdgeSet Expected = {{0, 1}, {1, 3}, {2, 3}};
  EXPECT_EQ(edgesBelow(FDG.parallelPairs(), 5), Expected);
}

TEST(Example1Test, Figure2c_InterferenceEdges) {
  Function F = paperExample1();
  Webs W(F);
  InterferenceGraph IG(F, W);
  // Webs coincide with defs s1..s5 here (single defs, block order).
  auto Web = [&](unsigned Inst) { return W.webOfDef(0, Inst); };
  // s1 is live across s2,s3,s4 definitions (last use at s5).
  EXPECT_TRUE(IG.interfere(Web(0), Web(1)));
  EXPECT_TRUE(IG.interfere(Web(0), Web(2)));
  EXPECT_TRUE(IG.interfere(Web(0), Web(3)));
  // Open endpoint: s5 defined at s1's last use — no interference.
  EXPECT_FALSE(IG.interfere(Web(0), Web(4)));
  // s2 dies at s3's definition (open endpoint).
  EXPECT_FALSE(IG.interfere(Web(1), Web(2)));
  // s3 live until s5; s4 defined in between.
  EXPECT_TRUE(IG.interfere(Web(2), Web(3)));
  EXPECT_FALSE(IG.interfere(Web(2), Web(4)));
  // s4 and s5 both live out to the store block.
  EXPECT_TRUE(IG.interfere(Web(3), Web(4)));
}

TEST(Example1Test, Figure3_PigColoringUsesThreeRegisters) {
  // Paper: three registers suffice *without* introducing any false
  // dependence (mapping s1-r1, s2-r2, s3-r2, s4-r3, s5-r2).
  Function F = paperExample1();
  MachineModel M = MachineModel::paperTwoUnit();
  Webs W(F);
  InterferenceGraph IG(F, W);
  ParallelInterferenceGraph PIG(F, W, IG, M);
  std::vector<double> Costs(W.numWebs(), 1.0);
  Allocation A = pinterColor(PIG, Costs, 3);
  ASSERT_TRUE(A.fullyColored());
  EXPECT_EQ(A.NumColorsUsed, 3u);
  EXPECT_EQ(A.ParallelEdgesDropped, 0u);
}

TEST(Example1Test, PaperMappingIsLegalInPig) {
  // The exact assignment from the paper's introduction:
  // s1-r1, s2-r2, s3-r2, s4-r3, s5-r2.
  Function F = paperExample1();
  Webs W(F);
  InterferenceGraph IG(F, W);
  ParallelInterferenceGraph PIG(F, W, IG, MachineModel::paperTwoUnit());
  auto Web = [&](unsigned Inst) { return W.webOfDef(0, Inst); };
  int Color[5] = {0, 1, 1, 2, 1}; // r1, r2, r2, r3, r2
  for (unsigned I = 0; I != 5; ++I)
    for (unsigned J = I + 1; J != 5; ++J)
      if (PIG.combined().hasEdge(Web(I), Web(J))) {
        EXPECT_NE(Color[I], Color[J])
            << "paper mapping violates PIG edge s" << I + 1 << "-s"
            << J + 1;
      }
}

TEST(Example1Test, NaiveReuseCreatesTheIntroFalseDependence) {
  // The introduction's allocation (c): s4 reuses s2's register, creating
  // an output dependence between instructions 2 and 4 (paper: "a false
  // dependence is introduced between the second and fourth
  // instructions").
  Function Symbolic = paperExample1();
  Function Alloc = Symbolic;
  // Mapping of (c): s1-r1, s2-r2, s3-r3, s4-r2, s5-r1.
  Webs W(Alloc);
  Allocation A;
  A.ColorOfWeb.assign(W.numWebs(), -1);
  int Colors[5] = {0, 1, 2, 1, 0};
  for (unsigned I = 0; I != 5; ++I)
    A.ColorOfWeb[W.webOfDef(0, I)] = Colors[I];
  A.NumColorsUsed = 3;
  applyAllocation(Alloc, W, A);
  auto False = findFalseDependences(Symbolic, Alloc,
                                    MachineModel::paperTwoUnit());
  ASSERT_EQ(False.size(), 1u);
  EXPECT_EQ(False[0].From, 1u); // second instruction (s2)
  EXPECT_EQ(False[0].To, 3u);   // fourth instruction (s4)
  EXPECT_EQ(False[0].Kind, DepKind::Output);
}

//===----------------------------------------------------------------------===//
// Example 2: Figures 1, 4, 5
//===----------------------------------------------------------------------===//

TEST(Example2Test, Figure1_DataDependenceEdges) {
  Function F = paperExample2();
  MachineModel M = MachineModel::paperTwoUnit();
  DependenceGraph G(F, 0, M);
  EdgeSet Flow;
  for (const DepEdge &E : G.edges())
    if (E.Kind == DepKind::Flow && E.To < 9)
      Flow.insert({E.From, E.To});
  // Figure 1: s1,s2 -> s3; s1,s2 -> s4; s3,s4 -> s5; s6,s7 -> s8;
  // s5,s8 -> s9. (0-based: subtract 1.)
  EdgeSet Expected = {{0, 2}, {1, 2}, {0, 3}, {1, 3}, {2, 4},
                      {3, 4}, {5, 7}, {6, 7}, {4, 8}, {7, 8}};
  EXPECT_EQ(Flow, Expected);
}

TEST(Example2Test, ComplementEdgesMatchPaperText) {
  // Paper: "The only edges in the complement graph of the example are
  // between S8 and each of the five statements s1..s5, and all the edges
  // between the two sets {s7,s6} and {s3,s4,s5}."
  Function F = paperExample2();
  FalseDependenceGraph FDG(F, 0, MachineModel::paperTwoUnit());
  EdgeSet Expected;
  for (unsigned I = 0; I != 5; ++I)
    Expected.insert({I, 7}); // s8 with s1..s5
  for (unsigned Src : {5u, 6u})
    for (unsigned Dst : {2u, 3u, 4u})
      Expected.insert({Dst, Src}); // {s6,s7} x {s3,s4,s5}
  EXPECT_EQ(edgesBelow(FDG.parallelPairs(), 9), Expected);
}

TEST(Example2Test, AllFourLoadsPairwiseConstrained) {
  Function F = paperExample2();
  FalseDependenceGraph FDG(F, 0, MachineModel::paperTwoUnit());
  // Single fetch unit: the paper generates all edges between the four
  // loads s1, s2, s6, s7.
  unsigned Loads[4] = {0, 1, 5, 6};
  for (unsigned I = 0; I != 4; ++I)
    for (unsigned J = I + 1; J != 4; ++J) {
      EXPECT_TRUE(
          FDG.constraints().hasEdge(Loads[I], Loads[J]))
          << "loads " << Loads[I] << "," << Loads[J];
      EXPECT_FALSE(FDG.canIssueTogether(Loads[I], Loads[J]));
    }
}

TEST(Example2Test, Figure4_InterferenceNeedsOnlyThreeColors) {
  Function F = paperExample2();
  Webs W(F);
  InterferenceGraph IG(F, W);
  std::vector<double> Costs(W.numWebs(), 1.0);
  Allocation A = chaitinColor(IG.graph(), Costs, 3);
  EXPECT_TRUE(A.fullyColored());
  EXPECT_EQ(A.NumColorsUsed, 3u);
}

TEST(Example2Test, Figure5_PigNeedsExactlyFourRegisters) {
  // Paper: "With the parallel interference graph four registers are
  // needed."
  Function F = paperExample2();
  MachineModel M = MachineModel::paperTwoUnit();
  Webs W(F);
  InterferenceGraph IG(F, W);
  ParallelInterferenceGraph PIG(F, W, IG, M);
  std::vector<double> Costs(W.numWebs(), 1.0);
  Allocation A4 = pinterColor(PIG, Costs, 4);
  ASSERT_TRUE(A4.fullyColored());
  EXPECT_EQ(A4.NumColorsUsed, 4u);
  EXPECT_EQ(A4.ParallelEdgesDropped, 0u);
  // Three registers cannot color the PIG without giving something up.
  Allocation A3 = pinterColor(PIG, Costs, 3);
  EXPECT_TRUE(!A3.fullyColored() || A3.ParallelEdgesDropped > 0);
}

TEST(Example2Test, PigForbidsTheParallelismKillingAssignments) {
  // Paper: "there is no restriction to assign the same register, for
  // example, to operations S8 and S3 or to operations S8 and S2 thus
  // preventing the possible parallel scheduling ... Such an assignment
  // is impossible with the parallel interference graph."
  Function F = paperExample2();
  Webs W(F);
  InterferenceGraph IG(F, W);
  ParallelInterferenceGraph PIG(F, W, IG, MachineModel::paperTwoUnit());
  auto Web = [&](unsigned Inst) { return W.webOfDef(0, Inst); };
  // Plain interference graph allows s8/s3 and s8/s2 sharing:
  EXPECT_FALSE(IG.interfere(Web(7), Web(2)));
  EXPECT_FALSE(IG.interfere(Web(7), Web(1)));
  // The PIG forbids both:
  EXPECT_TRUE(PIG.combined().hasEdge(Web(7), Web(2)));
  EXPECT_TRUE(PIG.combined().hasEdge(Web(7), Web(1)));
}

TEST(Example2Test, Figure5_PaperAssignmentLegalInPig) {
  // Figure 5: r1=s1, r2=s2, r3=s3, r2=s4, r3=s5, r1=s6, r4=s7, r4=s8,
  // r1=s9.
  Function F = paperExample2();
  Webs W(F);
  InterferenceGraph IG(F, W);
  ParallelInterferenceGraph PIG(F, W, IG, MachineModel::paperTwoUnit());
  auto Web = [&](unsigned Inst) { return W.webOfDef(0, Inst); };
  int Color[9] = {0, 1, 2, 1, 2, 0, 3, 3, 0};
  for (unsigned I = 0; I != 9; ++I)
    for (unsigned J = I + 1; J != 9; ++J)
      if (PIG.combined().hasEdge(Web(I), Web(J))) {
        EXPECT_NE(Color[I], Color[J])
            << "paper Figure 5 violates PIG edge s" << I + 1 << "-s"
            << J + 1;
      }
}

//===----------------------------------------------------------------------===//
// FalseDependenceGraph general properties
//===----------------------------------------------------------------------===//

TEST(FalseDependenceGraphTest, ComplementIsExact) {
  Function F = paperExample2();
  FalseDependenceGraph FDG(F, 0, MachineModel::paperTwoUnit());
  unsigned N = FDG.size();
  for (unsigned U = 0; U != N; ++U)
    for (unsigned V = U + 1; V != N; ++V)
      EXPECT_NE(FDG.constraints().hasEdge(U, V),
                FDG.parallelPairs().hasEdge(U, V))
          << "pair " << U << "," << V;
}

TEST(FalseDependenceGraphTest, SingleIssueMachineHasEmptyEf) {
  Function F = paperExample2();
  FalseDependenceGraph FDG(F, 0, MachineModel::scalar());
  EXPECT_EQ(FDG.parallelPairs().numEdges(), 0u);
}

TEST(FalseDependenceGraphTest, WiderMachineNeverShrinksEf) {
  Function F = livermoreHydro(1);
  FalseDependenceGraph Narrow(F, 1, MachineModel::rs6000());
  FalseDependenceGraph Wide(F, 1, MachineModel::vliw4());
  for (const auto &[U, V] : Narrow.parallelPairs().edgeList())
    EXPECT_TRUE(Wide.canIssueTogether(U, V))
        << U << "," << V << " parallel on rs6000 but not on vliw4";
}

//===----------------------------------------------------------------------===//
// ParallelInterferenceGraph
//===----------------------------------------------------------------------===//

TEST(PigTest, CombinedIsUnionOfFamilies) {
  Function F = paperExample2();
  Webs W(F);
  InterferenceGraph IG(F, W);
  ParallelInterferenceGraph PIG(F, W, IG, MachineModel::paperTwoUnit());
  for (const auto &[A, B] : PIG.combined().edgeList())
    EXPECT_TRUE(PIG.interference().hasEdge(A, B) ||
                PIG.parallel().hasEdge(A, B));
  for (const auto &[A, B] : PIG.interference().edgeList())
    EXPECT_TRUE(PIG.combined().hasEdge(A, B));
  for (const auto &[A, B] : PIG.parallel().edgeList())
    EXPECT_TRUE(PIG.combined().hasEdge(A, B));
}

TEST(PigTest, ParallelBenefitPositiveOnParallelEdges) {
  Function F = paperExample2();
  Webs W(F);
  InterferenceGraph IG(F, W);
  ParallelInterferenceGraph PIG(F, W, IG, MachineModel::paperTwoUnit());
  for (const auto &[A, B] : PIG.parallel().edgeList())
    EXPECT_GT(PIG.parallelBenefit(A, B), 0.0);
  EXPECT_EQ(PIG.parallelBenefit(0, 0), 0.0);
}

TEST(PigTest, ScalarMachinePigEqualsInterferenceGraph) {
  // Degenerate case: no parallelism to protect, combined == Gr, so the
  // framework collapses to classic Chaitin.
  Function F = paperExample2();
  Webs W(F);
  InterferenceGraph IG(F, W);
  ParallelInterferenceGraph PIG(F, W, IG, MachineModel::scalar());
  EXPECT_EQ(PIG.parallel().numEdges(), 0u);
  EXPECT_EQ(PIG.combined().edgeList(), IG.graph().edgeList());
}

TEST(PigTest, RegionModeAddsCrossBlockEdges) {
  // Two control-equivalent blocks with independent defs: region mode
  // must connect them.
  Function F("t");
  IRBuilder B(F);
  B.startBlock("first");
  Reg A = B.loadImm(1); // fixed unit
  B.br(1);
  B.startBlock("second");
  Reg C = B.binary(Opcode::FAdd, A, A); // float unit, dep on A only
  Reg D = B.loadImm(2);                 // independent of everything
  Reg E2 = B.binary(Opcode::FMul, C, D);
  B.ret(E2);
  Webs W(F);
  InterferenceGraph IG(F, W);
  MachineModel M = MachineModel::paperTwoUnit();
  ParallelInterferenceGraph Without(F, W, IG, M, /*UseRegions=*/false);
  ParallelInterferenceGraph With(F, W, IG, M, /*UseRegions=*/true);
  EXPECT_GT(With.parallel().numEdges(), Without.parallel().numEdges());
  // A (block 0) and D (block 1) are independent and on the same unit...
  // single fixed unit forbids them; A and C (float) conflict via flow.
  // A and the float multiply are dependent; but A with nothing else...
  // D (fixed) with C (float): no dependence, different units -> edge.
  EXPECT_TRUE(With.parallel().hasEdge(W.webOfDef(1, 0), W.webOfDef(1, 1)) ||
              With.parallel().hasEdge(W.webOfDef(0, 0), W.webOfDef(1, 0)));
}

//===----------------------------------------------------------------------===//
// pinterColor specifics
//===----------------------------------------------------------------------===//

TEST(PinterColorTest, DropsParallelEdgesBeforeSpilling) {
  // Example 2 with 3 registers: the plain interference graph is
  // 3-colorable, so the procedure must shed parallel edges rather than
  // spill.
  Function F = paperExample2();
  Webs W(F);
  InterferenceGraph IG(F, W);
  ParallelInterferenceGraph PIG(F, W, IG, MachineModel::paperTwoUnit());
  std::vector<double> Costs(W.numWebs(), 1.0);
  Allocation A = pinterColor(PIG, Costs, 3);
  EXPECT_TRUE(A.fullyColored()) << "Gr is 3-colorable; no spill needed";
  EXPECT_GT(A.ParallelEdgesDropped, 0u);
  EXPECT_EQ(A.NumColorsUsed, 3u);
}

TEST(PinterColorTest, NeverDropsLemma3Edges) {
  // Edges in Ef ∩ Er serve both masters; with enough registers nothing
  // is dropped at all.
  Function F = paperExample2();
  Webs W(F);
  InterferenceGraph IG(F, W);
  ParallelInterferenceGraph PIG(F, W, IG, MachineModel::paperTwoUnit());
  std::vector<double> Costs(W.numWebs(), 1.0);
  Allocation A = pinterColor(PIG, Costs, 8);
  EXPECT_TRUE(A.fullyColored());
  EXPECT_EQ(A.ParallelEdgesDropped, 0u);
}

TEST(PinterColorTest, ZeroParallelWeightDegeneratesToClassicH) {
  // With WParallel = 0 and no parallel edges, h* == cost/degree.
  UndirectedGraph G(4);
  for (unsigned I = 0; I != 4; ++I)
    for (unsigned J = I + 1; J != 4; ++J)
      G.addEdge(I, J);
  // Build a PIG-like wrapper through a function with that conflict
  // structure is heavyweight; instead check chaitinColor and pinterColor
  // agree on Example 2 under a scalar machine (PIG == Gr there).
  Function F = paperExample2();
  Webs W(F);
  InterferenceGraph IG(F, W);
  ParallelInterferenceGraph PIG(F, W, IG, MachineModel::scalar());
  std::vector<double> Costs = computeSpillCosts(F, W);
  PinterOptions Opts;
  Opts.ParallelWeight = 0.0;
  Allocation A = pinterColor(PIG, Costs, 2);
  Allocation C = chaitinColor(IG.graph(), Costs, 2);
  EXPECT_EQ(A.SpilledWebs, C.SpilledWebs);
}

//===----------------------------------------------------------------------===//
// pinterAllocate end to end
//===----------------------------------------------------------------------===//

TEST(PinterAllocateTest, Example2FourRegsNoFalseDeps) {
  Function F = paperExample2();
  Function Twin;
  MachineModel M = MachineModel::paperTwoUnit();
  PinterStats S = pinterAllocate(F, 4, M, {}, &Twin);
  ASSERT_TRUE(S.Success);
  EXPECT_EQ(S.ColorsUsed, 4u);
  EXPECT_EQ(S.SpilledWebs, 0u);
  EXPECT_EQ(S.ParallelEdgesDropped, 0u);
  EXPECT_TRUE(findFalseDependences(Twin, F, M).empty());
}

TEST(PinterAllocateTest, AllKernelsConvergeAndPreserveSemantics) {
  for (auto &[Name, Kernel] : standardKernelSuite()) {
    Function F = Kernel;
    MachineModel M = MachineModel::rs6000(8);
    PinterStats S = pinterAllocate(F, 8, M);
    ASSERT_TRUE(S.Success) << Name;
    ExecState InitA = makeInitialState(Kernel, 3);
    ExecState InitB = makeInitialState(F, 3);
    for (auto &[ArrName, Data] : InitB.Arrays) {
      auto It = InitA.Arrays.find(ArrName);
      if (It != InitA.Arrays.end())
        Data = It->second;
      else
        Data.assign(Data.size(), 0);
    }
    ExecResult RA = interpret(Kernel, std::move(InitA));
    ExecResult RB = interpret(F, std::move(InitB));
    ASSERT_TRUE(RA.Completed) << Name;
    ASSERT_TRUE(RB.Completed) << Name << ": " << RB.Error;
    EXPECT_EQ(RA.HasReturnValue, RB.HasReturnValue) << Name;
    if (RA.HasReturnValue) {
      EXPECT_EQ(RA.ReturnValue, RB.ReturnValue) << Name;
    }
    for (const auto &[ArrName, Data] : RA.Final.Arrays)
      EXPECT_EQ(Data, RB.Final.Arrays.at(ArrName))
          << Name << " array " << ArrName;
  }
}

TEST(PinterAllocateTest, TightRegistersStillConverge) {
  Function F = firFilter(6);
  MachineModel M = MachineModel::rs6000(3);
  PinterStats S = pinterAllocate(F, 3, M);
  EXPECT_TRUE(S.Success);
  EXPECT_GT(S.SpilledWebs + S.ParallelEdgesDropped, 0u);
}

TEST(PinterAllocateTest, RegionModeConverges) {
  Function F = figure6Diamond();
  MachineModel M = MachineModel::paperTwoUnit();
  PinterOptions Opts;
  Opts.UseRegions = true;
  PinterStats S = pinterAllocate(F, 6, M, Opts);
  EXPECT_TRUE(S.Success);
}

//===----------------------------------------------------------------------===//
// FalseDepChecker
//===----------------------------------------------------------------------===//

TEST(FalseDepCheckerTest, CleanAllocationReportsNothing) {
  Function Symbolic = paperExample2();
  Function F = Symbolic;
  MachineModel M = MachineModel::paperTwoUnit();
  Webs W(F);
  InterferenceGraph IG(F, W);
  ParallelInterferenceGraph PIG(F, W, IG, M);
  std::vector<double> Costs(W.numWebs(), 1.0);
  Allocation A = pinterColor(PIG, Costs, 8);
  ASSERT_TRUE(A.fullyColored());
  applyAllocation(F, W, A);
  EXPECT_TRUE(findFalseDependences(Symbolic, F, M).empty());
}

TEST(FalseDepCheckerTest, DetectsForcedOutputFalseDep) {
  // Assign s8 (fmul) the same register as s3 (add): they can co-issue,
  // so the output dependence is false.
  Function Symbolic = paperExample2();
  Function F = Symbolic;
  Webs W(F);
  Allocation A;
  A.ColorOfWeb.assign(W.numWebs(), -1);
  // s1..s9 -> r0 r1 r2 r3 r4 r5 r6 r2(!) r7
  int Colors[9] = {0, 1, 2, 3, 4, 5, 6, 2, 7};
  for (unsigned I = 0; I != 9; ++I)
    A.ColorOfWeb[W.webOfDef(0, I)] = Colors[I];
  A.NumColorsUsed = 8;
  applyAllocation(F, W, A);
  auto False =
      findFalseDependences(Symbolic, F, MachineModel::paperTwoUnit());
  ASSERT_EQ(False.size(), 1u);
  EXPECT_EQ(False[0].From, 2u);
  EXPECT_EQ(False[0].To, 7u);
}

TEST(FalseDepCheckerTest, ConstrainedReuseIsNotFalse) {
  // s3 and s4 are both fixed-point ops (single unit): they can never
  // co-issue, so s4 reusing a register read by s3 is harmless.
  Function Symbolic = paperExample2();
  Function F = Symbolic;
  Webs W(F);
  Allocation A;
  A.ColorOfWeb.assign(W.numWebs(), -1);
  // Give s4 the register of s2 (read by s3): output dep s2->s4? No —
  // s2's def is a load; s4 redefines its register. {s2,s4}: load vs mul
  // could co-issue... choose s4 reusing s3's... simplest: the identity
  // mapping with 9 registers has no reuse at all.
  for (unsigned I = 0; I != 9; ++I)
    A.ColorOfWeb[W.webOfDef(0, I)] = static_cast<int>(I);
  A.NumColorsUsed = 9;
  applyAllocation(F, W, A);
  EXPECT_TRUE(findFalseDependences(Symbolic, F,
                                   MachineModel::paperTwoUnit())
                  .empty());
}

TEST(FalseDepCheckerTest, AntiOrderingLossesCounted) {
  // The paper's own Figure 5 mapping creates anti edges on co-issuable
  // pairs (not false, but ordering-restricting); the checker's companion
  // counter must see at least one.
  Function Symbolic = paperExample2();
  Function F = Symbolic;
  Webs W(F);
  Allocation A;
  A.ColorOfWeb.assign(W.numWebs(), -1);
  int Color[9] = {0, 1, 2, 1, 2, 0, 3, 3, 0};
  for (unsigned I = 0; I != 9; ++I)
    A.ColorOfWeb[W.webOfDef(0, I)] = Color[I];
  A.NumColorsUsed = 4;
  applyAllocation(F, W, A);
  MachineModel M = MachineModel::paperTwoUnit();
  EXPECT_TRUE(findFalseDependences(Symbolic, F, M).empty())
      << "Figure 5 must be false-dependence free";
  EXPECT_GT(countAntiOrderingLosses(Symbolic, F, M), 0u);
}

//===----------------------------------------------------------------------===//
// End-to-end pinning of the Example 2 artifact
//===----------------------------------------------------------------------===//

TEST(Example2Test, CombinedScheduleIsMachineOptimal) {
  // Four loads through one fetch unit bound the block at 4 cycles; the
  // dependent adds/muls overlap with them and each other, giving the
  // 7-cycle optimum (with the ret). The combined pipeline must hit it
  // with 4 registers and no false dependences.
  MachineModel M = MachineModel::paperTwoUnit(4);
  PipelineResult R = runStrategy(StrategyKind::Combined, paperExample2(), M);
  ASSERT_TRUE(R.Success) << R.Error;
  EXPECT_EQ(R.StaticCycles, 7u);
  EXPECT_EQ(R.RegistersUsed, 4u);
  EXPECT_EQ(R.FalseDeps, 0u);
  EXPECT_EQ(R.SpilledWebs, 0u);
  // Structural shape of the optimum: one load per cycle for the first
  // four cycles (single fetch unit).
  auto Groups = R.Sched.Blocks[0].groupsByCycle();
  for (unsigned C = 0; C != 4; ++C) {
    unsigned Loads = 0;
    for (unsigned I : Groups[C])
      Loads += R.Final.block(0).inst(I).opcode() == Opcode::Load;
    EXPECT_EQ(Loads, 1u) << "cycle " << C;
  }
}

TEST(Example2Test, EfEdgeCountIsElevenExactly) {
  Function F = paperExample2();
  FalseDependenceGraph FDG(F, 0, MachineModel::paperTwoUnit());
  unsigned Count = 0;
  for (const auto &[A, B] : FDG.parallelPairs().edgeList())
    Count += (A < 9 && B < 9) ? 1 : 0;
  EXPECT_EQ(Count, 11u) << "the paper's text enumerates 11 edges";
}

TEST(Example1Test, EtAndEfPartitionAllPairs) {
  Function F = paperExample1();
  FalseDependenceGraph FDG(F, 0, MachineModel::paperTwoUnit());
  // Over s1..s5: C(5,2) = 10 pairs split 7 / 3.
  unsigned Et = 0, Ef = 0;
  for (unsigned A = 0; A != 5; ++A)
    for (unsigned B = A + 1; B != 5; ++B) {
      Et += FDG.constraints().hasEdge(A, B);
      Ef += FDG.parallelPairs().hasEdge(A, B);
    }
  EXPECT_EQ(Et, 7u);
  EXPECT_EQ(Ef, 3u);
}

TEST(PigTest, InterferenceFamilyIsExactlyGr) {
  // The PIG's interference family must be Gr verbatim (the paper unions
  // families; it never drops interference edges).
  Function F = livermoreHydro(2);
  Webs W(F);
  InterferenceGraph IG(F, W);
  ParallelInterferenceGraph PIG(F, W, IG, MachineModel::rs6000());
  EXPECT_EQ(PIG.interference().edgeList(), IG.graph().edgeList());
}

TEST(PigTest, ChromaticNeedNeverBelowGr) {
  // The PIG contains Gr, so its coloring can never use fewer registers.
  for (auto &[Name, Kernel] : standardKernelSuite()) {
    Webs W(Kernel);
    InterferenceGraph IG(Kernel, W);
    ParallelInterferenceGraph PIG(Kernel, W, IG,
                                  MachineModel::paperTwoUnit());
    std::vector<double> Costs(W.numWebs(), 1.0);
    Allocation Gr = chaitinColor(IG.graph(), Costs, 64);
    Allocation Pig = pinterColor(PIG, Costs, 64);
    ASSERT_TRUE(Gr.fullyColored()) << Name;
    ASSERT_TRUE(Pig.fullyColored()) << Name;
    EXPECT_GE(Pig.NumColorsUsed, Gr.NumColorsUsed) << Name;
  }
}
