//===- tests/machine_test.cpp - Machine model unit tests ------------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "machine/MachineModel.h"
#include "pipeline/Strategies.h"
#include "sim/SuperscalarSim.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

using namespace pira;

TEST(MachineModelTest, PresetShapes) {
  MachineModel Scalar = MachineModel::scalar();
  EXPECT_EQ(Scalar.issueWidth(), 1u);
  EXPECT_TRUE(Scalar.isSingleUnit(UnitKind::IntALU));

  MachineModel Paper = MachineModel::paperTwoUnit();
  EXPECT_EQ(Paper.units(UnitKind::IntALU), 1u);
  EXPECT_EQ(Paper.units(UnitKind::FPU), 1u);
  EXPECT_EQ(Paper.units(UnitKind::Memory), 1u);
  EXPECT_GE(Paper.issueWidth(), 2u);
  // The paper's examples reason with unit latencies.
  for (unsigned I = 0; I != NumOpcodes; ++I)
    EXPECT_EQ(Paper.latency(static_cast<Opcode>(I)), 1u);

  MachineModel Vliw = MachineModel::vliw4();
  EXPECT_EQ(Vliw.units(UnitKind::IntALU), 2u);
  EXPECT_FALSE(Vliw.isSingleUnit(UnitKind::IntALU));
  EXPECT_TRUE(Vliw.isSingleUnit(UnitKind::FPU));
}

TEST(MachineModelTest, LatencyOverrides) {
  MachineModel M = MachineModel::scalar();
  EXPECT_EQ(M.latency(Opcode::Div), 8u) << "opcode default";
  M.setLatency(Opcode::Div, 3);
  EXPECT_EQ(M.latency(Opcode::Div), 3u);
  M.setUniformLatency(2);
  EXPECT_EQ(M.latency(Opcode::Add), 2u);
  EXPECT_EQ(M.latency(Opcode::Div), 2u);
}

TEST(MachineModelTest, RegisterFileOverride) {
  MachineModel M = MachineModel::rs6000(16);
  EXPECT_EQ(M.numPhysRegs(), 16u);
  M.setNumPhysRegs(4);
  EXPECT_EQ(M.numPhysRegs(), 4u);
}

TEST(MachineModelTest, Rs6000FloatLatencies) {
  MachineModel M = MachineModel::rs6000();
  EXPECT_EQ(M.latency(Opcode::FMul), 2u);
  EXPECT_EQ(M.latency(Opcode::Load), 2u);
  EXPECT_EQ(M.latency(Opcode::Add), 1u);
}

TEST(MachineModelTest, WiderMachinesNeverSlower) {
  // Sanity across presets: a 4-wide machine should beat single issue on
  // a parallel kernel under the same allocator.
  Function F = reductionTree(8);
  PipelineResult Narrow = runAndMeasure(
      StrategyKind::Combined, F, MachineModel::scalar(10));
  PipelineResult Wide =
      runAndMeasure(StrategyKind::Combined, F, MachineModel::vliw4(10));
  ASSERT_TRUE(Narrow.Success);
  ASSERT_TRUE(Wide.Success);
  EXPECT_LT(Wide.DynCycles, Narrow.DynCycles);
}

TEST(SimStallTest, BoundaryStallsReportedForCrossBlockLatency) {
  // A value produced at the very end of the entry block with latency 2
  // and consumed first thing in the next block forces a boundary stall.
  Function F("t");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg A = B.load("a", NoReg, 0); // rs6000 load latency 2
  B.br(1);
  B.startBlock("next");
  Reg C = B.binary(Opcode::Add, A, A);
  B.ret(C);
  MachineModel M = MachineModel::rs6000(8);
  PipelineResult R = runAndMeasure(StrategyKind::AllocFirst, F, M);
  ASSERT_TRUE(R.Success) << R.Error;
  // Re-simulate to read the stall counter directly.
  SimResult Sim = simulate(R.Final, R.Sched, M, makeInitialState(R.Final, 1));
  ASSERT_TRUE(Sim.Completed) << Sim.Error;
  EXPECT_GT(Sim.BoundaryStalls, 0u);
}

TEST(SimStallTest, NoStallsInSingleBlock) {
  Function F = paperExample2();
  MachineModel M = MachineModel::paperTwoUnit(8);
  PipelineResult R = runAndMeasure(StrategyKind::Combined, F, M);
  ASSERT_TRUE(R.Success);
  SimResult Sim = simulate(R.Final, R.Sched, M, makeInitialState(R.Final, 1));
  ASSERT_TRUE(Sim.Completed);
  EXPECT_EQ(Sim.BoundaryStalls, 0u);
}
