//===- service/Connection.cpp - One accepted client socket ----------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "service/Connection.h"

#include "service/Framing.h"

#include <sys/socket.h>
#include <unistd.h>

using namespace pira;
using namespace pira::service;

Connection::Connection(int Fd, uint64_t Id, std::string Peer)
    : SockFd(Fd), ClientId(Id), PeerName(std::move(Peer)) {}

Connection::~Connection() {
  if (SockFd >= 0)
    ::close(SockFd);
}

bool Connection::sendDoc(const json::Value &Doc) {
  std::lock_guard<std::mutex> Lock(WriteMutex);
  if (!writeFrameDoc(SockFd, Doc)) {
    DroppedResponses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void Connection::shutdownBoth() { ::shutdown(SockFd, SHUT_RDWR); }
