//===- service/Server.cpp - The pirac compile daemon ----------------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "pipeline/Report.h"
#include "pipeline/Worker.h"
#include "service/CacheClient.h"
#include "support/Hash.h"
#include "support/Io.h"
#include "support/Telemetry.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <iostream>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace pira;
using namespace pira::service;

PIRA_STAT(NumServeRequests, "Service requests received (all types)");
PIRA_STAT(NumServeCompiles, "Service compile requests completed");
PIRA_STAT(NumServeShedQueueFull,
          "Compile requests shed because the admission queue was full");
PIRA_STAT(NumServeShedBudget,
          "Compile requests shed because the client's budget was exhausted");
PIRA_STAT(NumServeShedDraining, "Compile requests refused while draining");
PIRA_STAT(NumServeProtocolErrors,
          "Service frames or requests that violated the wire protocol");
PIRA_STAT(NumServeDeadlineExpired,
          "Service requests whose deadline expired while queued");
PIRA_STAT(NumServeDrainCancelled,
          "Queued service requests cancelled by a drain");
PIRA_STAT(NumServeClientsAccepted, "Service client connections accepted");
PIRA_STAT(NumServeClientsRejected,
          "Service client connections rejected at the connection cap");
PIRA_STAT(NumServeIdleTimeouts,
          "Service connections closed by the inactivity timeout");
PIRA_STAT(NumServeCacheLookups, "Shared-cache lookup requests served");
PIRA_STAT(NumServeCacheHits, "Shared-cache lookups answered with an entry");
PIRA_STAT(NumServeCacheStores, "Shared-cache store requests accepted");
PIRA_STAT(NumServeCacheStoreRejected,
          "Shared-cache stores rejected by integrity or decode checks");
PIRA_HIST(ServeQueueWaitLatency,
          "Admission-queue wait per service compile request");
PIRA_HIST(ServeRequestLatency,
          "Service compile latency, execution start to response");

Server::Server(ServerOptions O)
    : Opts(std::move(O)), Cache(CacheMode::On, Opts.CacheDir),
      Queue(Opts.QueueDepth) {
  if (Opts.CacheMaxBytes != 0)
    Cache.setDiskLimitBytes(Opts.CacheMaxBytes);
  if (!Opts.CacheRemote.empty())
    Cache.attachRemote(makeCacheBackendForTarget(Opts.CacheRemote));
}

Server::~Server() {
  if (SignalR >= 0)
    ::close(SignalR);
  if (SignalW >= 0)
    ::close(SignalW);
}

Status Server::bind() {
  // A client that hangs up while a response is in flight must cost a
  // DroppedResponses tick, not the process; embedders that never go
  // through pirac's main() need this just as much.
  io::ignoreSigpipe();
  if (Opts.SocketPath.empty() && Opts.TcpPort < 0)
    return Status::error(ErrorCode::InvalidArgument, "serve/bind",
                         "no transport: need a socket path or a TCP port");
  if (!Opts.SocketPath.empty()) {
    Expected<Listener> L = Listener::listenUnix(Opts.SocketPath);
    if (!L)
      return L.status();
    Unix = L.take();
  }
  if (Opts.TcpPort >= 0) {
    Expected<Listener> L = Listener::listenTcp(static_cast<uint16_t>(Opts.TcpPort));
    if (!L)
      return L.status();
    Tcp = L.take();
  }
  int Fds[2];
  if (::pipe(Fds) < 0)
    return Status::error(ErrorCode::Internal, "serve/bind",
                         std::string("pipe: ") + std::strerror(errno));
  SignalR = Fds[0];
  SignalW = Fds[1];
  ::fcntl(SignalR, F_SETFD, FD_CLOEXEC);
  ::fcntl(SignalW, F_SETFD, FD_CLOEXEC);
  return Status();
}

uint16_t Server::tcpPort() const { return Tcp.port(); }

void Server::requestDrain() {
  // Async-signal-safe: one write, failure ignored (a full pipe already
  // holds an unserviced shutdown byte).
  if (SignalW >= 0)
    (void)!::write(SignalW, "T", 1);
}

void Server::requestAbort() {
  if (SignalW >= 0)
    (void)!::write(SignalW, "I", 1);
}

void Server::acceptFrom(const Listener &L) {
  std::string Peer;
  int Fd = L.acceptOne(Peer);
  if (Fd < 0)
    return;

  // A client that stops reading must not wedge an executor inside a
  // response write: bound sends, then treat the EAGAIN like any other
  // gone peer (a dropped response).
  timeval SendTimeout;
  SendTimeout.tv_sec = 10;
  SendTimeout.tv_usec = 0;
  ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &SendTimeout,
               sizeof(SendTimeout));

  sweepConnections(/*All=*/false);

  uint64_t Id = 0;
  {
    std::lock_guard<std::mutex> Lock(RegistryMutex);
    if (Connections.size() >= Opts.MaxClients) {
      ++NumServeClientsRejected;
      writeFrameDoc(Fd, errorResponse(0, "server-overloaded",
                                      "connection cap (" +
                                          std::to_string(Opts.MaxClients) +
                                          " clients) reached",
                                      /*Retryable=*/true));
      ::close(Fd);
      return;
    }
    Id = NextClientId++;
  }

  auto Conn = std::make_shared<Connection>(Fd, Id, Peer);
  ++NumServeClientsAccepted;
  if (Opts.Verbose)
    std::cerr << "pirac serve: client " << Id << " connected (" << Peer
              << ")\n";

  Slot S;
  S.Conn = Conn;
  S.Reader = std::thread([this, Conn] { readerLoop(Conn); });
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  Connections.emplace(Id, std::move(S));
}

void Server::sweepConnections(bool All) {
  // Joins happen outside the registry lock: a reader answering a stats
  // request takes RegistryMutex itself, and joining it under the lock
  // would deadlock.
  std::vector<std::thread> ToJoin;
  {
    std::lock_guard<std::mutex> Lock(RegistryMutex);
    for (auto It = Connections.begin(); It != Connections.end();) {
      if (All)
        It->second.Conn->shutdownBoth();
      if (All || It->second.Conn->ReaderDone.load()) {
        ToJoin.push_back(std::move(It->second.Reader));
        It = Connections.erase(It);
      } else {
        ++It;
      }
    }
  }
  for (std::thread &T : ToJoin)
    T.join();
}

void Server::readerLoop(std::shared_ptr<Connection> Conn) {
  for (;;) {
    std::string Payload;
    FrameStatus S = readFrame(Conn->fd(), Payload, Opts.MaxFrameBytes,
                              Opts.IdleTimeoutMs);
    if (S == FrameStatus::Ok) {
      json::Value Doc;
      std::string Error;
      if (!json::parse(Payload, Doc, Error)) {
        // Well-framed garbage (including depth bombs and invalid
        // UTF-8, rejected by the hardened parser): answer and keep the
        // connection — resynchronization is safe on a frame boundary.
        ++NumServeProtocolErrors;
        Conn->ProtocolErrors.fetch_add(1, std::memory_order_relaxed);
        Conn->sendDoc(errorResponse(0, "protocol-error",
                                    "request does not parse: " + Error,
                                    /*Retryable=*/false));
        continue;
      }
      handleRequest(Conn, Doc);
      continue;
    }
    if (S == FrameStatus::TooLarge || S == FrameStatus::BadLength) {
      // Framing violations cannot be resynchronized (the stream offset
      // is lost): answer best-effort, then close.
      ++NumServeProtocolErrors;
      Conn->ProtocolErrors.fetch_add(1, std::memory_order_relaxed);
      Conn->sendDoc(errorResponse(
          0, "protocol-error",
          std::string("bad frame: ") + frameStatusName(S),
          /*Retryable=*/false));
      break;
    }
    if (S == FrameStatus::Timeout)
      ++NumServeIdleTimeouts; // Idle or slowloris peer: disconnect.
    break;                    // Timeout, Eof, or Error.
  }
  Conn->shutdownBoth();
  Conn->ReaderDone.store(true);
  if (Opts.Verbose)
    std::cerr << "pirac serve: client " << Conn->id() << " disconnected\n";
}

void Server::handleRequest(const std::shared_ptr<Connection> &Conn,
                           const json::Value &Doc) {
  // Salvage the id first so even a rejected request is answerable.
  uint64_t Id = 0;
  if (const json::Value *IdV = Doc.find("id"))
    if (IdV->isInt() && IdV->asInt() >= 0)
      Id = static_cast<uint64_t>(IdV->asInt());

  auto Protocol = [&](const std::string &Message) {
    ++NumServeProtocolErrors;
    Conn->ProtocolErrors.fetch_add(1, std::memory_order_relaxed);
    Conn->sendDoc(errorResponse(Id, "protocol-error", Message,
                                /*Retryable=*/false));
  };

  const json::Value *Schema = Doc.find("schema");
  const json::Value *Version = Doc.find("version");
  const json::Value *Type = Doc.find("type");
  if (Doc.isObject() && Schema != nullptr && Schema->isString() &&
      Schema->asString() == CacheRequestSchemaName)
    return handleCacheRequest(Conn, Doc, Id);
  if (!Doc.isObject() || Schema == nullptr || !Schema->isString() ||
      Schema->asString() != RequestSchemaName)
    return Protocol("not a pira.request document");
  if (Version == nullptr || !Version->isInt() ||
      Version->asInt() != ServiceProtocolVersion)
    return Protocol("unsupported protocol version");
  if (!Doc.has("id"))
    return Protocol("request has no id");
  if (Type == nullptr || !Type->isString())
    return Protocol("request has no type");

  ++NumServeRequests;
  Conn->Requests.fetch_add(1, std::memory_order_relaxed);
  const std::string &TypeName = Type->asString();

  // health and stats bypass admission: the daemon stays observable
  // precisely when the compile queue is saturated.
  if (TypeName == "health") {
    json::Value Resp = responseEnvelope(Id, "health");
    Resp.set("status", Draining.load() ? "draining" : "ok");
    Conn->sendDoc(Resp);
    return;
  }
  if (TypeName == "stats") {
    json::Value Resp = responseEnvelope(Id, "stats");
    Resp.set("stats", statsToJson());
    Conn->sendDoc(Resp);
    return;
  }
  if (TypeName != "compile")
    return Protocol("unknown request type '" + TypeName + "'");

  const json::Value *Job = Doc.find("job");
  if (Job == nullptr || !Job->isObject())
    return Protocol("compile request has no job document");

  if (Draining.load()) {
    ++NumServeShedDraining;
    Conn->Shed.fetch_add(1, std::memory_order_relaxed);
    Conn->sendDoc(errorResponse(Id, "server-draining",
                                "server is draining; retry elsewhere or "
                                "after restart",
                                /*Retryable=*/true));
    return;
  }
  if (Conn->InFlight.load(std::memory_order_relaxed) >=
      Opts.PerClientBudget) {
    ++NumServeShedBudget;
    Conn->Shed.fetch_add(1, std::memory_order_relaxed);
    Conn->sendDoc(errorResponse(
        Id, "server-overloaded",
        "per-client budget (" + std::to_string(Opts.PerClientBudget) +
            " concurrent requests) exhausted",
        /*Retryable=*/true));
    return;
  }

  ServeRequest R;
  R.Conn = Conn;
  R.Id = Id;
  R.Job = *Job;
  R.EnqueueNs = telemetry::monotonicNowNs();
  if (const json::Value *Deadline = Doc.find("deadline_ms"))
    if (Deadline->isInt() && Deadline->asInt() > 0)
      R.DeadlineNs =
          R.EnqueueNs + static_cast<uint64_t>(Deadline->asInt()) * 1000000u;

  Conn->InFlight.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> Lock(DrainMutex);
    ++Outstanding;
  }
  if (!Queue.tryPush(std::move(R))) {
    Conn->InFlight.fetch_sub(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> Lock(DrainMutex);
      --Outstanding;
    }
    DrainCv.notify_all();
    ++NumServeShedQueueFull;
    Conn->Shed.fetch_add(1, std::memory_order_relaxed);
    Conn->sendDoc(errorResponse(
        Id, "server-overloaded",
        "admission queue full (" + std::to_string(Queue.capacity()) +
            " requests)",
        /*Retryable=*/true));
  }
}

void Server::handleCacheRequest(const std::shared_ptr<Connection> &Conn,
                                const json::Value &Doc, uint64_t Id) {
  auto Reject = [&](const std::string &Message) {
    ++NumServeProtocolErrors;
    Conn->ProtocolErrors.fetch_add(1, std::memory_order_relaxed);
    Conn->sendDoc(cacheErrorResponse(Id, "protocol-error", Message,
                                     /*Retryable=*/false));
  };

  if (!Opts.CacheServe)
    return Reject("this daemon is not serving a shared cache "
                  "(start it with --cache-serve)");

  const json::Value *Version = Doc.find("version");
  if (Version == nullptr || !Version->isInt() ||
      Version->asInt() != ServiceProtocolVersion)
    return Reject("unsupported cache protocol version");
  if (!Doc.has("id"))
    return Reject("cache request has no id");
  const json::Value *Op = Doc.find("op");
  if (Op == nullptr || !Op->isString())
    return Reject("cache request has no op");
  const json::Value *Key = Doc.find("key");
  if (Key == nullptr || !Key->isString() || Key->asString().empty())
    return Reject("cache request has no key");

  const std::string &OpName = Op->asString();
  if (OpName == "lookup") {
    ++NumServeCacheLookups;
    std::string Serialized;
    std::optional<PipelineResult> R =
        Cache.lookup(Key->asString(), &Serialized);
    json::Value Resp = cacheResponseEnvelope(Id, "lookup");
    if (R) {
      ++NumServeCacheHits;
      Resp.set("hit", true);
      // The digest covers the exact bytes on the wire; the client
      // re-hashes what it receives, so in-flight corruption anywhere
      // between these two hash calls is caught.
      Resp.set("entry", Serialized);
      Resp.set("sha256", hash::Sha256::hashHex(Serialized));
    } else {
      Resp.set("hit", false);
    }
    Conn->sendDoc(Resp);
    return;
  }

  if (OpName == "store") {
    const json::Value *Entry = Doc.find("entry");
    const json::Value *Digest = Doc.find("sha256");
    if (Entry == nullptr || !Entry->isString() || Digest == nullptr ||
        !Digest->isString()) {
      ++NumServeCacheStoreRejected;
      return Reject("cache store has no entry or digest");
    }
    // The same integrity gauntlet the consuming side runs: digest over
    // the received bytes, a full decode, and the self-identifying key.
    // A client cannot poison the shared cache with anything that merely
    // looks like an entry — or with a valid entry filed under the wrong
    // key.
    if (hash::Sha256::hashHex(Entry->asString()) != Digest->asString()) {
      ++NumServeCacheStoreRejected;
      return Reject("cache store digest mismatch");
    }
    json::Value Parsed;
    std::string Error;
    if (!json::parse(Entry->asString(), Parsed, Error)) {
      ++NumServeCacheStoreRejected;
      return Reject("cache store entry does not parse: " + Error);
    }
    const json::Value *SelfKey = Parsed.find("key");
    if (SelfKey == nullptr || !SelfKey->isString() ||
        SelfKey->asString() != Key->asString()) {
      ++NumServeCacheStoreRejected;
      return Reject("cache store entry does not match its key");
    }
    Expected<PipelineResult> Decoded = decodeCacheEntry(Parsed);
    if (!Decoded) {
      ++NumServeCacheStoreRejected;
      return Reject("cache store entry does not decode: " +
                    Decoded.status().message());
    }
    Cache.insert(Key->asString(), *Decoded);
    ++NumServeCacheStores;
    json::Value Resp = cacheResponseEnvelope(Id, "store");
    Resp.set("stored", true);
    Conn->sendDoc(Resp);
    return;
  }

  Reject("unknown cache op '" + OpName + "'");
}

void Server::executeOne(ServeRequest R) {
  auto Finish = [&] {
    R.Conn->InFlight.fetch_sub(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> Lock(DrainMutex);
      --Outstanding;
    }
    DrainCv.notify_all();
  };

  uint64_t Now = telemetry::monotonicNowNs();
  ServeQueueWaitLatency.record(Now - R.EnqueueNs);

  // A deadline that expired in the queue: answer without burning an
  // executor slot on work the client has already given up on.
  if (R.DeadlineNs != 0 && Now > R.DeadlineNs) {
    ++NumServeDeadlineExpired;
    R.Conn->sendDoc(errorResponse(R.Id, "deadline-exceeded",
                                  "deadline expired while queued",
                                  /*Retryable=*/false));
    Finish();
    return;
  }

  Expected<WorkerJob> Job = decodeWorkerJob(R.Job);
  if (!Job) {
    ++NumServeProtocolErrors;
    R.Conn->ProtocolErrors.fetch_add(1, std::memory_order_relaxed);
    R.Conn->sendDoc(errorResponse(R.Id, "protocol-error",
                                  Job.status().toString(),
                                  /*Retryable=*/false));
    Finish();
    return;
  }
  if (!Job->FaultSpec.empty()) {
    // Fault injection is process-global (support/FaultInjection): one
    // client arming it would arm it for every tenant. Only the
    // single-job --worker path may adopt a spec.
    ++NumServeProtocolErrors;
    R.Conn->ProtocolErrors.fetch_add(1, std::memory_order_relaxed);
    R.Conn->sendDoc(errorResponse(
        R.Id, "protocol-error",
        "fault injection is not available over the service",
        /*Retryable=*/false));
    Finish();
    return;
  }

  // The job's deadline also bounds the compile itself (the guard's
  // per-rung watchdog), so a deadline request cannot wedge an executor.
  GuardedResult G;
  {
    telemetry::HistTimer Latency(ServeRequestLatency);
    G = runWorkerJob(*Job, &Cache);
  }
  ++NumServeCompiles;

  json::Value Resp = responseEnvelope(R.Id, "result");
  Resp.set("result", encodeWorkerResult(G));
  R.Conn->sendDoc(Resp);
  Finish();
}

void Server::executorLoop() {
  for (;;) {
    std::optional<ServeRequest> R = Queue.pop();
    if (!R)
      return;
    executeOne(std::move(*R));
  }
}

int Server::run() {
  unsigned Threads = Opts.Threads != 0
                         ? Opts.Threads
                         : std::max(1u, std::thread::hardware_concurrency());
  Executors.reserve(Threads);
  for (unsigned I = 0; I != Threads; ++I)
    Executors.emplace_back([this] { executorLoop(); });

  // The accept loop: listeners plus the signal self-pipe.
  for (;;) {
    pollfd Fds[3];
    nfds_t N = 0;
    Fds[N].fd = SignalR;
    Fds[N].events = POLLIN;
    Fds[N].revents = 0;
    ++N;
    int UnixIdx = -1, TcpIdx = -1;
    if (Unix.valid()) {
      UnixIdx = static_cast<int>(N);
      Fds[N].fd = Unix.fd();
      Fds[N].events = POLLIN;
      Fds[N].revents = 0;
      ++N;
    }
    if (Tcp.valid()) {
      TcpIdx = static_cast<int>(N);
      Fds[N].fd = Tcp.fd();
      Fds[N].events = POLLIN;
      Fds[N].revents = 0;
      ++N;
    }
    if (::poll(Fds, N, -1) < 0) {
      if (errno == EINTR)
        continue;
      break; // Unpollable listener set: treat as abort.
    }
    if (Fds[0].revents != 0) {
      char Byte = 0;
      if (::read(SignalR, &Byte, 1) == 1 && Byte == 'I')
        Aborting.store(true);
      break; // 'T' (drain) or 'I' (abort) — either ends accepting.
    }
    if (UnixIdx >= 0 && Fds[UnixIdx].revents != 0)
      acceptFrom(Unix);
    if (TcpIdx >= 0 && Fds[TcpIdx].revents != 0)
      acceptFrom(Tcp);
  }

  // No new connections or admissions from here on.
  Draining.store(true);
  Unix.close();
  Tcp.close();

  if (!Aborting.load()) {
    // Graceful drain: give queued + executing work the grace period.
    std::unique_lock<std::mutex> Lock(DrainMutex);
    DrainCv.wait_for(Lock, std::chrono::milliseconds(Opts.DrainTimeoutMs),
                     [&] { return Outstanding == 0; });
  }

  // Whatever is still queued never ran; answer it honestly (drain) or
  // drop it (abort — the client's retry loop handles the dead socket).
  Queue.close();
  for (ServeRequest &R : Queue.drainRemaining()) {
    if (!Aborting.load()) {
      ++NumServeDrainCancelled;
      R.Conn->sendDoc(errorResponse(R.Id, "server-draining",
                                    "server shut down before this request "
                                    "ran",
                                    /*Retryable=*/true));
    }
    R.Conn->InFlight.fetch_sub(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> DLock(DrainMutex);
    --Outstanding;
  }

  // pop() returns nullopt once the closed queue empties; an executor
  // mid-compile finishes its request first (compiles are bounded by the
  // guard's watchdog, so this join is bounded too).
  for (std::thread &T : Executors)
    T.join();
  Executors.clear();

  sweepConnections(/*All=*/true);
  return Aborting.load() ? 130 : 0;
}

json::Value Server::statsToJson() {
  json::Value D = json::Value::object();
  D.set("schema", ServeStatsSchemaName);
  D.set("version", ServeStatsSchemaVersion);

  json::Value Q = json::Value::object();
  Q.set("depth", static_cast<uint64_t>(Queue.depth()));
  Q.set("capacity", static_cast<uint64_t>(Queue.capacity()));
  D.set("queue", std::move(Q));

  json::Value Req = json::Value::object();
  Req.set("total", NumServeRequests.value());
  Req.set("compiles", NumServeCompiles.value());
  Req.set("shed_queue_full", NumServeShedQueueFull.value());
  Req.set("shed_budget", NumServeShedBudget.value());
  Req.set("shed_draining", NumServeShedDraining.value());
  Req.set("shed", NumServeShedQueueFull.value() +
                      NumServeShedBudget.value() +
                      NumServeShedDraining.value());
  Req.set("protocol_errors", NumServeProtocolErrors.value());
  Req.set("deadline_expired", NumServeDeadlineExpired.value());
  Req.set("drain_cancelled", NumServeDrainCancelled.value());
  D.set("requests", std::move(Req));

  json::Value Conns = json::Value::object();
  json::Value Clients = json::Value::array();
  {
    std::lock_guard<std::mutex> Lock(RegistryMutex);
    Conns.set("accepted", NumServeClientsAccepted.value());
    Conns.set("rejected", NumServeClientsRejected.value());
    Conns.set("active", static_cast<uint64_t>(Connections.size()));
    for (const auto &[Id, S] : Connections) {
      json::Value Row = json::Value::object();
      Row.set("id", Id);
      Row.set("peer", S.Conn->peer());
      Row.set("requests", S.Conn->Requests.load(std::memory_order_relaxed));
      Row.set("in_flight",
              S.Conn->InFlight.load(std::memory_order_relaxed));
      Row.set("shed", S.Conn->Shed.load(std::memory_order_relaxed));
      Row.set("protocol_errors",
              S.Conn->ProtocolErrors.load(std::memory_order_relaxed));
      Row.set("dropped_responses",
              S.Conn->DroppedResponses.load(std::memory_order_relaxed));
      Clients.push(std::move(Row));
    }
  }
  D.set("connections", std::move(Conns));
  D.set("clients", std::move(Clients));

  D.set("cache", Cache.statsToJson());

  // The shared-cache serving surface (satellite of the "cache" block,
  // which covers the daemon's own tiers): what this daemon answered,
  // plus the upstream tier's health when daemons are chained.
  json::Value RC = json::Value::object();
  RC.set("serving", Opts.CacheServe);
  RC.set("lookups", NumServeCacheLookups.value());
  RC.set("hits", NumServeCacheHits.value());
  RC.set("stores", NumServeCacheStores.value());
  RC.set("store_rejected", NumServeCacheStoreRejected.value());
  if (RemoteCacheTier *Tier = Cache.remote()) {
    RemoteCacheTier::Stats TS = Tier->stats();
    RC.set("quarantined", TS.Quarantined);
    RC.set("breaker", RemoteCacheTier::breakerName(TS.State));
    RC.set("breaker_trips", TS.BreakerTrips);
    RC.set("upstream", Tier->statsToJson());
  }
  D.set("remote_cache", std::move(RC));

  D.set("counters", countersToJson());
  D.set("histograms", histogramsToJson());
  return D;
}
