//===- service/Client.h - Reconnecting compile-service client ---*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the `pirac serve` protocol: a synchronous,
/// single-connection ServiceClient whose call() survives a daemon death
/// invisibly — on a dead or reset socket it reconnects with bounded
/// doubling backoff and *resends* the request, and on a retryable
/// server answer (`server-overloaded`, `server-draining`) it backs off
/// and tries again. kill -9 the daemon mid-request, restart it, and the
/// caller never notices beyond latency. Safe because compile requests
/// are idempotent: a compile is a pure function of its job document
/// (the determinism contract, DESIGN.md §7), so re-running one the dead
/// daemon may already have finished changes nothing.
///
/// compileBatchRemote() is the batch driver's remote twin: it fans a
/// BatchItem list over per-thread clients (each with its own
/// connection), lands results in pre-sized input-order slots, and
/// finalizes aggregates with the same finalizeBatchAggregates the
/// in-process driver uses — which is what makes a remote stats report
/// byte-compare clean against `pirac --jobs N`. Requests that exhaust
/// their retries become per-item structured failures
/// (server-overloaded and friends); they never abort the batch.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_SERVICE_CLIENT_H
#define PIRA_SERVICE_CLIENT_H

#include "pipeline/Batch.h"
#include "service/Framing.h"
#include "support/Status.h"

#include <cstdint>
#include <string>

namespace pira {
namespace service {

struct ClientOptions {
  /// Unix socket path of the daemon; empty means TCP.
  std::string SocketPath;
  /// Loopback TCP port; used when SocketPath is empty.
  int TcpPort = -1;
  /// Total attempts per call (connect failures, dead sockets, and
  /// retryable server answers all consume attempts). 1 = no retry.
  unsigned MaxAttempts = 8;
  /// Backoff before attempt N: min(RetryBackoffMs << (N-1), BackoffCapMs).
  unsigned RetryBackoffMs = 50;
  unsigned BackoffCapMs = 2000;
  /// Patience for one response, ms; 0 = forever. Compiles are bounded
  /// by the server's watchdog, so "forever" still terminates — but a
  /// finite value turns a wedged daemon into a retry.
  int ResponseTimeoutMs = 120000;
  /// Frame cap for responses (mirror of the server's).
  uint32_t MaxFrameBytes = DefaultMaxFrameBytes;
  /// Reconnect/retry notices on stderr (the serve-smoke CI job greps
  /// for these to prove the kill -9 was actually ridden out).
  bool Verbose = false;
  /// Seed for deterministic backoff jitter. N clients restarted
  /// together (a daemon death under a fanned-out batch) must not
  /// reconnect in lockstep; seeding each with its own id spreads the
  /// retry storm while keeping any one client's timing reproducible.
  uint64_t JitterSeed = 0;
};

/// The backoff before attempt \p Attempt (1-based; attempt 0 never
/// waits): uniform in [base/2, base] where base =
/// min(RetryBackoffMs << (Attempt-1), BackoffCapMs), jittered
/// deterministically from JitterSeed. Exposed for tests.
uint64_t retryBackoffMs(const ClientOptions &Opts, unsigned Attempt);

/// Connects to a daemon at \p SocketPath (unix) or, when that is empty,
/// loopback TCP \p TcpPort. Returns the connected descriptor, or a
/// Status describing the failure (connect refusals map to the retryable
/// ServerOverloaded code). Shared by ServiceClient and the remote-cache
/// transport.
Expected<int> connectToDaemon(const std::string &SocketPath, int TcpPort);

class ServiceClient {
public:
  explicit ServiceClient(ClientOptions Opts);
  ~ServiceClient();
  ServiceClient(const ServiceClient &) = delete;
  ServiceClient &operator=(const ServiceClient &) = delete;

  /// One request/response round trip under the full retry policy (see
  /// file comment). \p Type is "compile" / "health" / "stats"; \p Job,
  /// when non-null, is embedded as the "job" member; \p DeadlineMs > 0
  /// rides along as the server-enforced deadline. Returns the response
  /// document, or the Status of the last failure once attempts are
  /// exhausted (non-retryable server errors fail immediately).
  Expected<json::Value> call(const char *Type, const json::Value *Job,
                             uint64_t DeadlineMs = 0);

  /// call("compile") plus result decoding.
  Expected<GuardedResult> compile(const json::Value &JobDoc,
                                  uint64_t DeadlineMs = 0);

  /// The daemon's pira.serve-stats document.
  Expected<json::Value> stats();

  /// The daemon's health answer ("ok" / "draining").
  Expected<json::Value> health();

  /// Connections established over this client's lifetime (>1 means it
  /// rode out at least one daemon death).
  uint64_t connectCount() const { return Connects; }

private:
  Status ensureConnected();
  void disconnect();

  ClientOptions Opts;
  int Fd = -1;
  uint64_t NextId = 1;
  uint64_t Connects = 0;
};

/// Compiles \p Batch against a running daemon (see file comment).
/// Spins min(Opts.Jobs or default, batch size) threads, each with its
/// own connection. Per-item failures (including retry exhaustion when
/// no daemon ever answers) land as structured diagnostics in that
/// item's slot. Opts fields that are process-local concerns of the
/// in-process driver (Isolate, Journal, Cache) are ignored — the
/// daemon owns its own cache.
BatchResult compileBatchRemote(const std::vector<BatchItem> &Batch,
                               const MachineModel &Machine,
                               const BatchOptions &Opts,
                               const ClientOptions &Client);

} // namespace service
} // namespace pira

#endif // PIRA_SERVICE_CLIENT_H
