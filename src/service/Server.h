//===- service/Server.h - The pirac compile daemon --------------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `pirac serve` daemon: accepts concurrent clients over the framed
/// protocol (service/Framing.h), executes pira.job documents through the
/// same guarded pipeline the batch driver and sandboxed workers use
/// (pipeline/Worker.h: decodeWorkerJob / runWorkerJob), and keeps one
/// CompilationCache permanently warm across requests — the amortization
/// a one-shot pirac process can never get.
///
/// The robustness surface, in one place:
///
///   * Admission: one reader thread per connection feeds a bounded FIFO
///     (service/AdmissionQueue.h) drained by a fixed pool of executor
///     threads. When the queue is full or a client exceeds its
///     concurrent-request budget, the request is answered *immediately*
///     with `server-overloaded` (retryable) — overload degrades into
///     fast shedding, never an unbounded backlog or a hang.
///
///   * Hostile input: frames over the cap are rejected before their
///     payload is read; zero-length frames, unparsable JSON (the
///     hardened support/Json parser: depth limit, UTF-8 validation),
///     and schema violations are answered with `protocol-error`;
///     a peer that stalls mid-frame or goes idle trips the inactivity
///     timeout and is disconnected. One hostile client never affects
///     another — every per-client failure is contained to its
///     connection.
///
///   * Deadlines: a request's `deadline_ms` is enforced server-side —
///     a request that expires while queued is answered
///     `deadline-exceeded` without wasting an executor on it.
///
///   * Shutdown: requestDrain() (SIGTERM) stops accepting, lets
///     in-flight work finish up to DrainTimeoutMs, answers whatever
///     remains queued with `server-draining`, and run() returns 0.
///     requestAbort() (SIGINT) skips the grace period and returns 130.
///     Both are async-signal-safe (one byte down a self-pipe).
///
///   * Fault injection is process-global state (support/FaultInjection),
///     so the multi-tenant daemon refuses jobs carrying a non-empty
///     fault spec with `protocol-error` rather than letting one client
///     arm faults for everyone.
///
/// The `health` and `stats` request types are answered inline by the
/// connection reader, bypassing the admission queue, so the daemon
/// stays observable precisely when it is overloaded.
///
/// With ServerOptions::CacheServe on, the daemon also answers the
/// shared-cache protocol ("pira.cache-request": lookup/store against
/// the warm cache, DESIGN.md §13), again inline. A store is accepted
/// only after the digest check and a full decode, so one hostile client
/// cannot poison the cache every other client shares; daemons can chain
/// (CacheRemote) so an edge daemon's misses consult an upstream one.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_SERVICE_SERVER_H
#define PIRA_SERVICE_SERVER_H

#include "pipeline/Cache.h"
#include "service/AdmissionQueue.h"
#include "service/Framing.h"
#include "service/Listener.h"
#include "support/Status.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace pira {
namespace service {

/// Serve-stats document constants.
inline constexpr const char *ServeStatsSchemaName = "pira.serve-stats";
inline constexpr int ServeStatsSchemaVersion = 1;

struct ServerOptions {
  /// Unix socket path; empty disables the unix transport.
  std::string SocketPath;
  /// Loopback TCP port; -1 disables, 0 asks the kernel (see tcpPort()).
  int TcpPort = -1;
  /// Executor threads; 0 = hardware concurrency.
  unsigned Threads = 0;
  /// Admission-queue capacity; pushes beyond it shed.
  size_t QueueDepth = 128;
  /// Concurrent connections; accepts beyond it are answered
  /// `server-overloaded` and closed.
  size_t MaxClients = 64;
  /// Concurrent admitted-but-unanswered requests per client.
  uint64_t PerClientBudget = 16;
  /// Frame cap (bytes); oversized frames are rejected unread.
  uint32_t MaxFrameBytes = DefaultMaxFrameBytes;
  /// Per-connection inactivity timeout (idle + slowloris), ms; 0 = off.
  int IdleTimeoutMs = 30000;
  /// SIGTERM grace period for in-flight work, ms.
  int DrainTimeoutMs = 5000;
  /// Disk tier for the warm cache; empty = memory-only.
  std::string CacheDir;
  /// Answer pira.cache-request frames (lookup/store against the warm
  /// cache). Off by default: a plain compile daemon refuses them.
  bool CacheServe = false;
  /// Chain this daemon's cache behind another daemon's ("port" or a
  /// unix socket path): misses here consult the upstream, stores
  /// propagate best-effort. Empty = no chaining.
  std::string CacheRemote;
  /// Bound for the on-disk cache tier in bytes; 0 = unbounded.
  uint64_t CacheMaxBytes = 0;
  /// Accept/disconnect notices on stderr.
  bool Verbose = false;
};

class Server {
public:
  explicit Server(ServerOptions Opts);
  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Creates the listening sockets (and the signal self-pipe). Must
  /// succeed before run().
  Status bind();

  /// Serves until requestDrain() or requestAbort(); returns the process
  /// exit code (0 after a clean drain, 130 after an abort).
  int run();

  /// Begin graceful drain (SIGTERM semantics). Async-signal-safe.
  void requestDrain();

  /// Fast abort (SIGINT semantics). Async-signal-safe.
  void requestAbort();

  /// After bind(): the actual TCP port (resolves a 0 request).
  uint16_t tcpPort() const;

  /// The "pira.serve-stats" v1 document: queue, request, and connection
  /// tallies, per-client rows, the warm cache's stats block, and the v5
  /// telemetry snapshot (counters + histograms).
  json::Value statsToJson();

  /// The warm cache (tests pre-seed or inspect it).
  CompilationCache &cache() { return Cache; }

private:
  void readerLoop(std::shared_ptr<Connection> Conn);
  void executorLoop();
  /// Handles one parsed request document on \p Conn.
  void handleRequest(const std::shared_ptr<Connection> &Conn,
                     const json::Value &Doc);
  /// Handles one pira.cache-request document inline (cache operations
  /// are cheap; like health/stats they bypass admission).
  void handleCacheRequest(const std::shared_ptr<Connection> &Conn,
                          const json::Value &Doc, uint64_t Id);
  void executeOne(ServeRequest R);
  void acceptFrom(const Listener &L);
  /// Joins reader threads whose connections are done; \p All joins
  /// everything (shutdown).
  void sweepConnections(bool All);

  ServerOptions Opts;
  Listener Unix;
  Listener Tcp;
  int SignalR = -1; ///< Self-pipe: read end (polled by run()).
  int SignalW = -1; ///< Self-pipe: write end (signal handlers).

  CompilationCache Cache;
  AdmissionQueue Queue;

  std::atomic<bool> Draining{false};
  std::atomic<bool> Aborting{false};

  /// Admitted-but-unanswered requests (queued + executing), the drain
  /// barrier's predicate. Guarded by DrainMutex so a decrement and its
  /// notify can never race a waiter into a missed wakeup.
  std::mutex DrainMutex;
  std::condition_variable DrainCv;
  uint64_t Outstanding = 0;

  std::mutex RegistryMutex;
  uint64_t NextClientId = 1;
  struct Slot {
    std::shared_ptr<Connection> Conn;
    std::thread Reader;
  };
  std::map<uint64_t, Slot> Connections;

  std::vector<std::thread> Executors;
};

} // namespace service
} // namespace pira

#endif // PIRA_SERVICE_SERVER_H
