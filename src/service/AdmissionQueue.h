//===- service/AdmissionQueue.h - Bounded FIFO admission --------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The service's admission controller: a bounded, strictly-FIFO queue
/// between the connection readers (producers) and the compile executors
/// (consumers). The bound is the whole point — when the queue is full
/// the *push fails immediately* and the caller answers the client with
/// a structured `server-overloaded` response, so overload degrades into
/// fast, honest shedding instead of an unbounded backlog, unbounded
/// memory, or a silent hang. FIFO order gives fairness across clients:
/// nobody's request can be overtaken while it waits.
///
/// close() wakes every blocked consumer; drainRemaining() hands the
/// un-run tail back so a draining server can answer each queued request
/// with `server-draining` rather than dropping it on the floor.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_SERVICE_ADMISSIONQUEUE_H
#define PIRA_SERVICE_ADMISSIONQUEUE_H

#include "service/Connection.h"
#include "support/Json.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

namespace pira {
namespace service {

/// One admitted compile request, waiting for an executor.
struct ServeRequest {
  std::shared_ptr<Connection> Conn; ///< Where the answer goes.
  uint64_t Id = 0;                  ///< Client-chosen request id.
  json::Value Job;                  ///< The embedded pira.job document.
  uint64_t EnqueueNs = 0;           ///< Monotonic admission instant.
  uint64_t DeadlineNs = 0;          ///< Absolute deadline; 0 = none.
};

class AdmissionQueue {
public:
  explicit AdmissionQueue(size_t Capacity) : Capacity(Capacity) {}

  /// Admits \p R unless the queue is at capacity or closed. Never
  /// blocks — a full queue is the caller's cue to shed.
  bool tryPush(ServeRequest R);

  /// Blocks for the next request in admission order; std::nullopt once
  /// the queue is closed and empty (executor shutdown).
  std::optional<ServeRequest> pop();

  /// Stops admission and wakes every blocked pop().
  void close();

  /// After close(): hands back whatever never ran, for cancellation.
  std::vector<ServeRequest> drainRemaining();

  size_t depth() const;
  size_t capacity() const { return Capacity; }
  bool closed() const;

private:
  size_t Capacity;
  mutable std::mutex Mutex;
  std::condition_variable NotEmpty;
  std::deque<ServeRequest> Items;
  bool Closed = false;
};

} // namespace service
} // namespace pira

#endif // PIRA_SERVICE_ADMISSIONQUEUE_H
