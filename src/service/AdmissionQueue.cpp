//===- service/AdmissionQueue.cpp - Bounded FIFO admission ----------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "service/AdmissionQueue.h"

using namespace pira;
using namespace pira::service;

bool AdmissionQueue::tryPush(ServeRequest R) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Closed || Items.size() >= Capacity)
      return false;
    Items.push_back(std::move(R));
  }
  NotEmpty.notify_one();
  return true;
}

std::optional<ServeRequest> AdmissionQueue::pop() {
  std::unique_lock<std::mutex> Lock(Mutex);
  NotEmpty.wait(Lock, [&] { return Closed || !Items.empty(); });
  if (Items.empty())
    return std::nullopt; // Closed and drained: executor shutdown.
  ServeRequest R = std::move(Items.front());
  Items.pop_front();
  return R;
}

void AdmissionQueue::close() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Closed = true;
  }
  NotEmpty.notify_all();
}

std::vector<ServeRequest> AdmissionQueue::drainRemaining() {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<ServeRequest> Out(std::make_move_iterator(Items.begin()),
                                std::make_move_iterator(Items.end()));
  Items.clear();
  return Out;
}

size_t AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Items.size();
}

bool AdmissionQueue::closed() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Closed;
}
