//===- service/Listener.h - Serve-socket setup and accept -------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Listening-socket plumbing for `pirac serve`: a unix-domain socket
/// (the default transport, path-addressed) and an optional loopback TCP
/// port. Binding a unix socket whose path is left over from a previous
/// daemon (crashed, kill -9'd) unlinks the stale node first — a
/// restarted daemon must come up without manual cleanup, because the
/// crash-recovery story depends on it. TCP binds 127.0.0.1 only with
/// SO_REUSEADDR for the same reason.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_SERVICE_LISTENER_H
#define PIRA_SERVICE_LISTENER_H

#include "support/Status.h"

#include <cstdint>
#include <string>

namespace pira {
namespace service {

/// One listening socket (unix or TCP) plus its cleanup obligations.
class Listener {
public:
  Listener() = default;
  ~Listener() { close(); }
  Listener(const Listener &) = delete;
  Listener &operator=(const Listener &) = delete;
  Listener(Listener &&O) noexcept;
  Listener &operator=(Listener &&O) noexcept;

  /// Binds + listens on unix socket \p Path, unlinking a stale node.
  static Expected<Listener> listenUnix(const std::string &Path);

  /// Binds + listens on 127.0.0.1:\p Port (0 = kernel-assigned).
  static Expected<Listener> listenTcp(uint16_t Port);

  /// Accepts one connection; -1 with errno preserved on failure.
  /// \p Peer receives a short transport label ("unix" / "tcp:IP:port").
  int acceptOne(std::string &Peer) const;

  /// Closes the socket and unlinks a unix path we own.
  void close();

  int fd() const { return Fd; }
  bool valid() const { return Fd >= 0; }
  /// For TCP: the actual bound port (after a 0 request).
  uint16_t port() const { return Port; }
  const std::string &path() const { return UnixPath; }

private:
  int Fd = -1;
  uint16_t Port = 0;
  std::string UnixPath; ///< Non-empty when we must unlink on close.
};

} // namespace service
} // namespace pira

#endif // PIRA_SERVICE_LISTENER_H
