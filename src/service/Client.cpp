//===- service/Client.cpp - Reconnecting compile-service client -----------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"

#include "ir/Printer.h"
#include "machine/MachineConfig.h"
#include "machine/MachineModel.h"
#include "pipeline/Worker.h"
#include "support/Io.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <iostream>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace pira;
using namespace pira::service;

namespace {

Status clientError(ErrorCode Code, const std::string &What) {
  return Status::error(Code, "serve/client", What);
}

/// Maps a wire error name onto the ErrorCode taxonomy. "server-draining"
/// has no code of its own — to a retrying caller it is exactly a
/// shedding answer.
ErrorCode codeForWireError(const std::string &Name) {
  if (Name == "server-draining")
    return ErrorCode::ServerOverloaded;
  return errorCodeFromName(Name);
}

/// splitmix64 finalizer; deterministic jitter needs nothing stronger.
uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e9b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

} // namespace

uint64_t pira::service::retryBackoffMs(const ClientOptions &Opts,
                                       unsigned Attempt) {
  if (Attempt == 0)
    return 0;
  unsigned Shift = Attempt - 1;
  uint64_t Base = Shift >= 32 ? Opts.BackoffCapMs
                              : std::min<uint64_t>(
                                    static_cast<uint64_t>(Opts.RetryBackoffMs)
                                        << Shift,
                                    Opts.BackoffCapMs);
  if (Base <= 1)
    return Base;
  // Uniform in [base/2, base]: the floor keeps a retry from being
  // immediate, the jitter keeps a fleet of clients from being
  // synchronized.
  uint64_t Span = Base - Base / 2;
  uint64_t R = mix64(Opts.JitterSeed ^ mix64(Attempt));
  return Base / 2 + R % (Span + 1);
}

Expected<int> pira::service::connectToDaemon(const std::string &SocketPath,
                                             int TcpPort) {
  if (!SocketPath.empty()) {
    sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    if (SocketPath.size() >= sizeof(Addr.sun_path))
      return clientError(ErrorCode::InvalidArgument,
                         "socket path too long: '" + SocketPath + "'");
    std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
    int NewFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (NewFd < 0)
      return clientError(ErrorCode::Internal,
                         std::string("socket: ") + std::strerror(errno));
    if (::connect(NewFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
        0) {
      Status S = clientError(ErrorCode::ServerOverloaded,
                             "connect('" + SocketPath +
                                 "') failed: " + std::strerror(errno));
      ::close(NewFd);
      return S;
    }
    return NewFd;
  }
  if (TcpPort >= 0) {
    sockaddr_in Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(static_cast<uint16_t>(TcpPort));
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    int NewFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (NewFd < 0)
      return clientError(ErrorCode::Internal,
                         std::string("socket: ") + std::strerror(errno));
    if (::connect(NewFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
        0) {
      Status S = clientError(ErrorCode::ServerOverloaded,
                             "connect(127.0.0.1:" + std::to_string(TcpPort) +
                                 ") failed: " + std::strerror(errno));
      ::close(NewFd);
      return S;
    }
    return NewFd;
  }
  return clientError(ErrorCode::InvalidArgument,
                     "no daemon address: need a socket path or TCP port");
}

ServiceClient::ServiceClient(ClientOptions O) : Opts(std::move(O)) {
  // A daemon death mid-request must surface as EPIPE from the write
  // that noticed (then reconnect + resend), not kill the host process.
  // pirac's main() does this too; library embedders get it for free.
  io::ignoreSigpipe();
}

ServiceClient::~ServiceClient() { disconnect(); }

void ServiceClient::disconnect() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

Status ServiceClient::ensureConnected() {
  if (Fd >= 0)
    return Status();

  Expected<int> NewFd = connectToDaemon(Opts.SocketPath, Opts.TcpPort);
  if (!NewFd)
    return NewFd.status();

  Fd = NewFd.take();
  ++Connects;
  if (Opts.Verbose && Connects > 1)
    std::cerr << "pirac client: reconnected to the daemon (connection #"
              << Connects << ")\n";
  return Status();
}

Expected<json::Value> ServiceClient::call(const char *Type,
                                          const json::Value *Job,
                                          uint64_t DeadlineMs) {
  Status Last =
      clientError(ErrorCode::ServerOverloaded, "no connection attempts made");
  unsigned Attempts = std::max(1u, Opts.MaxAttempts);
  for (unsigned Attempt = 0; Attempt != Attempts; ++Attempt) {
    if (Attempt != 0) {
      uint64_t Backoff = retryBackoffMs(Opts, Attempt);
      if (Opts.Verbose)
        std::cerr << "pirac client: retrying in " << Backoff << " ms ("
                  << Last.toString() << ")\n";
      std::this_thread::sleep_for(std::chrono::milliseconds(Backoff));
    }

    Status C = ensureConnected();
    if (!C.ok()) {
      Last = std::move(C);
      continue;
    }

    // A fresh id per attempt: a resend after reconnect must never be
    // answered by a stale response that survived in a kernel buffer.
    uint64_t Id = NextId++;
    json::Value Req = requestEnvelope(Id, Type);
    if (DeadlineMs != 0)
      Req.set("deadline_ms", DeadlineMs);
    if (Job != nullptr)
      Req.set("job", *Job);

    if (!writeFrameDoc(Fd, Req)) {
      // The daemon died under us (EPIPE/ECONNRESET): reconnect and
      // resend — compiles are idempotent, so a resend is always safe.
      Last = clientError(ErrorCode::ServerOverloaded,
                         std::string("request write failed: ") +
                             std::strerror(errno));
      disconnect();
      continue;
    }

    bool Retry = false;
    for (;;) {
      std::string Payload;
      FrameStatus S =
          readFrame(Fd, Payload, Opts.MaxFrameBytes, Opts.ResponseTimeoutMs);
      if (S != FrameStatus::Ok) {
        Last = clientError(ErrorCode::ServerOverloaded,
                           std::string("response read failed: ") +
                               frameStatusName(S));
        disconnect();
        Retry = true;
        break;
      }
      json::Value Doc;
      std::string Error;
      if (!json::parse(Payload, Doc, Error)) {
        Last = clientError(ErrorCode::ProtocolError,
                           "response does not parse: " + Error);
        disconnect();
        Retry = true;
        break;
      }
      const json::Value *RId = Doc.find("id");
      if (RId == nullptr || !RId->isInt() ||
          static_cast<uint64_t>(RId->asInt()) != Id)
        continue; // Not ours (e.g. an id-0 framing complaint): keep reading.

      const json::Value *RType = Doc.find("type");
      if (RType != nullptr && RType->isString() &&
          RType->asString() == "error") {
        const json::Value *Name = Doc.find("error");
        const json::Value *Message = Doc.find("message");
        const json::Value *Retryable = Doc.find("retryable");
        std::string ErrName = Name != nullptr && Name->isString()
                                  ? Name->asString()
                                  : "internal";
        std::string Msg = Message != nullptr && Message->isString()
                              ? Message->asString()
                              : ErrName;
        Last = Status::error(codeForWireError(ErrName), "serve", Msg);
        if (Retryable != nullptr && Retryable->isBool() &&
            Retryable->asBool()) {
          Retry = true; // Shed or draining: back off and try again.
          break;
        }
        return Last; // protocol-error etc.: retrying cannot help.
      }
      return Doc;
    }
    if (!Retry)
      break;
  }
  return Last;
}

Expected<GuardedResult> ServiceClient::compile(const json::Value &JobDoc,
                                               uint64_t DeadlineMs) {
  Expected<json::Value> Resp = call("compile", &JobDoc, DeadlineMs);
  if (!Resp)
    return Resp.status();
  const json::Value *Result = Resp->find("result");
  if (Result == nullptr)
    return clientError(ErrorCode::ProtocolError,
                       "result response has no result document");
  return decodeWorkerResult(*Result);
}

Expected<json::Value> ServiceClient::stats() {
  Expected<json::Value> Resp = call("stats", nullptr);
  if (!Resp)
    return Resp.status();
  const json::Value *S = Resp->find("stats");
  if (S == nullptr)
    return clientError(ErrorCode::ProtocolError,
                       "stats response has no stats document");
  return *S;
}

Expected<json::Value> ServiceClient::health() {
  return call("health", nullptr);
}

BatchResult pira::service::compileBatchRemote(
    const std::vector<BatchItem> &Batch, const MachineModel &Machine,
    const BatchOptions &Opts, const ClientOptions &Client) {
  BatchResult R;
  R.Results.resize(Batch.size());
  R.Outcomes.resize(Batch.size());
  unsigned Jobs = Opts.Jobs != 0 ? Opts.Jobs : ThreadPool::defaultJobCount();
  R.JobsUsed = Jobs;
  if (Batch.empty())
    return R;

  // Printed once; every job document carries the same machine text.
  std::string MachineText = machineModelToString(Machine);

  // The daemon owns caching, journaling, and isolation; strip the
  // process-local knobs so job documents are pure compile requests.
  BatchOptions JobOpts = Opts;
  JobOpts.Jobs = 1;
  JobOpts.Cache = nullptr;
  JobOpts.Journal = nullptr;
  JobOpts.Isolate = false;

  std::atomic<size_t> NextItem{0};
  auto Work = [&](size_t ThreadIdx) {
    // One connection per thread: a daemon death costs each thread one
    // reconnect, not a shared-socket pile-up. Each thread jitters its
    // retries from its own seed so a daemon death does not turn N
    // threads into one synchronized reconnect stampede.
    ClientOptions PerThread = Client;
    PerThread.JitterSeed = Client.JitterSeed ^ (ThreadIdx + 1);
    ServiceClient C(PerThread);
    for (;;) {
      size_t I = NextItem.fetch_add(1, std::memory_order_relaxed);
      if (I >= Batch.size())
        return;
      std::string IRText = functionToString(Batch[I].Input);
      // The fault key mirrors the in-process driver (input position) so
      // the daemon's cache keys line up with local semantics; the spec
      // is always empty — the service refuses armed jobs.
      json::Value Job = encodeWorkerJob(IRText, MachineText, JobOpts,
                                        /*FaultSpec=*/"", /*FaultKey=*/I);
      Expected<GuardedResult> G = C.compile(Job);
      if (G) {
        R.Results[I] = std::move(G->Result);
        R.Outcomes[I] = std::move(G->Outcome);
      } else {
        // Retries exhausted or a non-retryable answer: a structured
        // per-item failure, never an aborted batch.
        PipelineResult &P = R.Results[I];
        P.Success = false;
        P.Diag = G.status();
        P.Diag.addContext("function @" + Batch[I].Input.name());
        P.Error = P.Diag.toString();
        R.Outcomes[I].Requested = strategyName(Opts.Strategy);
      }
    }
  };

  size_t NumThreads = std::min<size_t>(Jobs, Batch.size());
  if (NumThreads <= 1) {
    Work(0);
  } else {
    std::vector<std::thread> Threads;
    Threads.reserve(NumThreads);
    for (size_t T = 0; T != NumThreads; ++T)
      Threads.emplace_back(Work, T);
    for (std::thread &T : Threads)
      T.join();
  }

  finalizeBatchAggregates(R);
  return R;
}
