//===- service/Framing.h - Length-prefixed frame protocol -------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire format of the `pirac serve` protocol: every message is one
/// frame — a 4-byte big-endian payload length followed by that many
/// bytes of UTF-8 JSON. Framing is the service's first line of defense,
/// so the reader is written for hostile peers:
///
///   - a length over the frame cap is rejected *before* any payload is
///     read (FrameStatus::TooLarge) — a four-byte header cannot make
///     the server allocate gigabytes;
///   - a zero length is malformed (BadLength) — there is no empty
///     document;
///   - a peer that stalls mid-frame (slowloris) or goes idle trips the
///     inactivity timeout (Timeout); any byte of progress re-arms it;
///   - a clean close between frames is Eof, distinct from Error
///     (ECONNRESET and friends, errno preserved).
///
/// The payload is bytes here; parsing it as JSON — with support/Json's
/// hardened parser (depth limit, UTF-8 validation) — and judging the
/// document is the caller's job (Server/Client).
///
/// Frame *writes* go through io::writeFull (support/Io.h), the same
/// retrying helper the journal and subprocess layers use. The server
/// arms SO_SNDTIMEO on its sockets so a client that stops reading
/// surfaces as a bounded EAGAIN failure, never a wedged executor.
///
/// On top of the raw frames sit the request/response envelopes
/// ("pira.request" / "pira.response" v1):
///
///   request:  {"schema","version","id", "type": "compile"|"health"|
///              "stats", ["deadline_ms"], ["job": <pira.job doc>]}
///   response: {"schema","version","id", "type": "result"|"health"|
///              "stats"|"error", ...}
///
/// Error responses carry {"error": "server-overloaded"|"protocol-error"
/// |"deadline-exceeded"|"server-draining", "message", "retryable"}.
///
/// The shared-cache protocol rides the same frames with its own
/// envelopes ("pira.cache-request" / "pira.cache-response" v1):
///
///   request:  {"schema","version","id", "op": "lookup"|"store", "key",
///              ["entry": <compact pira.cache text>, "sha256"]}
///   response: {"schema","version","id", "op",
///              lookup: "hit": bool [+ "entry", "sha256"],
///              store:  "stored": bool,
///              or "error"/"message"/"retryable" like the compile path}
///
/// "sha256" is the producer-side digest of the exact "entry" bytes; the
/// consumer re-hashes what it received and quarantines on any mismatch
/// (DESIGN.md §13). The server accepts a store only after the same
/// digest check plus a full decode, so a hostile client cannot poison
/// the shared cache with bytes that merely look like an entry.
///
/// Every framing helper here is a fault-injection point: the `net.*`
/// sites (support/FaultInjection.h) deterministically simulate short
/// writes, torn frames, stalled reads, connection resets, and in-flight
/// payload corruption for the process that armed them.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_SERVICE_FRAMING_H
#define PIRA_SERVICE_FRAMING_H

#include "support/Json.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace pira {
namespace service {

/// Envelope schema constants.
inline constexpr const char *RequestSchemaName = "pira.request";
inline constexpr const char *ResponseSchemaName = "pira.response";
inline constexpr const char *CacheRequestSchemaName = "pira.cache-request";
inline constexpr const char *CacheResponseSchemaName = "pira.cache-response";
inline constexpr int ServiceProtocolVersion = 1;

/// Default frame cap: generous for compile jobs (whole functions travel
/// as text), tiny next to what an unchecked 32-bit length could demand.
inline constexpr uint32_t DefaultMaxFrameBytes = 16u << 20;

/// How one readFrame attempt ended.
enum class FrameStatus {
  Ok,        ///< A whole frame landed in the payload buffer.
  Eof,       ///< Peer closed cleanly on a frame boundary.
  Timeout,   ///< Inactivity timeout expired (idle peer or slowloris).
  TooLarge,  ///< Header announced a payload over the cap.
  BadLength, ///< Header announced a zero-length payload.
  Error,     ///< Read error (errno preserved), or mid-frame EOF.
};

/// Printable name for diagnostics ("ok", "eof", "timeout", ...).
const char *frameStatusName(FrameStatus S);

/// Frames \p Payload: 4-byte big-endian length, then the bytes.
std::string frameBytes(std::string_view Payload);

/// Frames a JSON document (compact serialization).
std::string frameDoc(const json::Value &Doc);

/// Reads one frame from blocking descriptor \p Fd into \p Payload.
/// Waits at most \p IdleTimeoutMs (0 = forever) for each increment of
/// progress; rejects payloads over \p MaxBytes without reading them.
FrameStatus readFrame(int Fd, std::string &Payload, uint32_t MaxBytes,
                      int IdleTimeoutMs);

/// Writes one framed payload with io::writeFull. False on error with
/// errno preserved (EPIPE/ECONNRESET = peer gone; EAGAIN = an armed
/// SO_SNDTIMEO expired on a peer that stopped reading).
bool writeFrame(int Fd, std::string_view Payload);

/// writeFrame of a compact-serialized document.
bool writeFrameDoc(int Fd, const json::Value &Doc);

/// A bare pira.request envelope (schema, version, id, type); the caller
/// adds "job" / "deadline_ms" as the type requires.
json::Value requestEnvelope(uint64_t Id, const char *Type);

/// A bare pira.response envelope.
json::Value responseEnvelope(uint64_t Id, const char *Type);

/// A complete error response: {"error": \p Error, "message",
/// "retryable"}. \p Error is one of the error-vocabulary strings above.
json::Value errorResponse(uint64_t Id, const char *Error,
                          std::string Message, bool Retryable);

/// A bare pira.cache-request envelope (schema, version, id, op); the
/// caller adds "key" (and "entry"/"sha256" for a store).
json::Value cacheRequestEnvelope(uint64_t Id, const char *Op);

/// A bare pira.cache-response envelope.
json::Value cacheResponseEnvelope(uint64_t Id, const char *Op);

/// A complete cache-protocol error response.
json::Value cacheErrorResponse(uint64_t Id, const char *Error,
                               std::string Message, bool Retryable);

} // namespace service
} // namespace pira

#endif // PIRA_SERVICE_FRAMING_H
