//===- service/CacheClient.cpp - Remote-cache socket transport ------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "service/CacheClient.h"

#include "service/Client.h"
#include "support/Io.h"

#include <cerrno>
#include <cstring>

#include <unistd.h>

using namespace pira;
using namespace pira::service;

namespace {

Status transportError(const std::string &What) {
  return Status::error(ErrorCode::ServerOverloaded, "cache/remote", What);
}

Status protocolError(const std::string &What) {
  return Status::error(ErrorCode::ProtocolError, "cache/remote", What);
}

} // namespace

SocketCacheBackend::SocketCacheBackend(std::string SocketPath, int TcpPort,
                                       uint32_t MaxFrameBytes)
    : SocketPath(std::move(SocketPath)), TcpPort(TcpPort),
      MaxFrameBytes(MaxFrameBytes) {
  io::ignoreSigpipe(); // A daemon death must be an EPIPE, not a SIGPIPE.
}

SocketCacheBackend::~SocketCacheBackend() { disconnect(); }

void SocketCacheBackend::disconnect() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

Status SocketCacheBackend::ensureConnected() {
  if (Fd >= 0)
    return Status();
  Expected<int> NewFd = connectToDaemon(SocketPath, TcpPort);
  if (!NewFd)
    return NewFd.status();
  Fd = NewFd.take();
  return Status();
}

std::string SocketCacheBackend::describe() const {
  if (!SocketPath.empty())
    return "unix:" + SocketPath;
  return "tcp:127.0.0.1:" + std::to_string(TcpPort);
}

Expected<json::Value> SocketCacheBackend::roundTrip(const json::Value &Req,
                                                    uint64_t Id,
                                                    int DeadlineMs) {
  Status C = ensureConnected();
  if (!C.ok())
    return C;

  if (!writeFrameDoc(Fd, Req)) {
    Status S = transportError(std::string("cache request write failed: ") +
                              std::strerror(errno));
    disconnect();
    return S;
  }

  for (;;) {
    std::string Payload;
    FrameStatus S = readFrame(Fd, Payload, MaxFrameBytes, DeadlineMs);
    if (S != FrameStatus::Ok) {
      Status E = transportError(std::string("cache response read failed: ") +
                                frameStatusName(S));
      disconnect();
      return E;
    }
    json::Value Doc;
    std::string Error;
    if (!json::parse(Payload, Doc, Error)) {
      Status E = protocolError("cache response does not parse: " + Error);
      disconnect();
      return E;
    }
    const json::Value *RId = Doc.find("id");
    if (RId == nullptr || !RId->isInt() ||
        static_cast<uint64_t>(RId->asInt()) != Id)
      continue; // Not ours (an id-0 framing complaint): keep reading.

    const json::Value *Op = Doc.find("op");
    if (Op != nullptr && Op->isString() && Op->asString() == "error") {
      const json::Value *Name = Doc.find("error");
      const json::Value *Message = Doc.find("message");
      std::string Msg = Message != nullptr && Message->isString()
                            ? Message->asString()
                            : (Name != nullptr && Name->isString()
                                   ? Name->asString()
                                   : "cache error");
      // A daemon that answers but refuses (not serving a cache, bad
      // request) will refuse the retry too: disconnecting buys nothing,
      // but the tier will count the failure and the breaker will stop
      // asking.
      return protocolError("daemon refused cache request: " + Msg);
    }
    return Doc;
  }
}

Expected<RemoteCacheHit> SocketCacheBackend::lookup(const std::string &Key,
                                                    int DeadlineMs) {
  uint64_t Id = NextId++;
  json::Value Req = cacheRequestEnvelope(Id, "lookup");
  Req.set("key", Key);
  Expected<json::Value> Resp = roundTrip(Req, Id, DeadlineMs);
  if (!Resp)
    return Resp.status();

  const json::Value *Hit = Resp->find("hit");
  if (Hit == nullptr || !Hit->isBool())
    return protocolError("cache lookup response has no hit flag");
  RemoteCacheHit Out;
  if (!Hit->asBool())
    return Out; // Clean miss.
  const json::Value *Entry = Resp->find("entry");
  const json::Value *Digest = Resp->find("sha256");
  if (Entry == nullptr || !Entry->isString() || Digest == nullptr ||
      !Digest->isString())
    return protocolError("cache hit response is missing entry or digest");
  Out.Found = true;
  Out.EntryText = Entry->asString();
  Out.Digest = Digest->asString();
  return Out;
}

Status SocketCacheBackend::store(const std::string &Key,
                                 const std::string &EntryText,
                                 const std::string &Digest, int DeadlineMs) {
  uint64_t Id = NextId++;
  json::Value Req = cacheRequestEnvelope(Id, "store");
  Req.set("key", Key);
  Req.set("entry", EntryText);
  Req.set("sha256", Digest);
  Expected<json::Value> Resp = roundTrip(Req, Id, DeadlineMs);
  if (!Resp)
    return Resp.status();
  const json::Value *Stored = Resp->find("stored");
  if (Stored == nullptr || !Stored->isBool() || !Stored->asBool())
    return protocolError("daemon did not acknowledge the store");
  return Status();
}

std::unique_ptr<RemoteCacheBackend>
pira::service::makeCacheBackendForTarget(const std::string &Target) {
  bool AllDigits = !Target.empty() && Target.size() <= 5;
  for (char C : Target)
    if (C < '0' || C > '9')
      AllDigits = false;
  if (AllDigits) {
    int Port = 0;
    for (char C : Target)
      Port = Port * 10 + (C - '0');
    return std::make_unique<SocketCacheBackend>(std::string(), Port);
  }
  return std::make_unique<SocketCacheBackend>(Target, -1);
}
