//===- service/CacheClient.h - Remote-cache socket transport ----*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The socket transport under pipeline/Cache.h's RemoteCacheTier: one
/// lazily (re)connected connection to a `pirac serve --cache-serve`
/// daemon, speaking the framed "pira.cache-request"/"pira.cache-response"
/// protocol (service/Framing.h). This class is deliberately dumb — one
/// best-effort network operation per call, disconnecting on any failure
/// so the next call starts from a clean connect. All resilience policy
/// (deadlines as timeouts are passed in; retries, backoff, the circuit
/// breaker, integrity verification, quarantine) lives in the tier, which
/// also serializes calls, so no locking happens here.
///
/// Transport failures — connect refused, short write, torn frame,
/// timeout, reset, or a daemon answer that is not valid protocol — all
/// come back as error Statuses; the tier turns every one of them into
/// "no entry" and the batch falls down the degradation ladder. The
/// `net.*` fault-injection sites fire inside the framing helpers this
/// transport calls, so arming them in a client process exercises every
/// one of these paths deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_SERVICE_CACHECLIENT_H
#define PIRA_SERVICE_CACHECLIENT_H

#include "pipeline/Cache.h"
#include "service/Framing.h"

#include <memory>
#include <string>

namespace pira {
namespace service {

class SocketCacheBackend : public RemoteCacheBackend {
public:
  /// \p SocketPath non-empty selects a unix socket; otherwise loopback
  /// TCP \p TcpPort. Does not connect — the first operation does.
  SocketCacheBackend(std::string SocketPath, int TcpPort,
                     uint32_t MaxFrameBytes = DefaultMaxFrameBytes);
  ~SocketCacheBackend() override;

  Expected<RemoteCacheHit> lookup(const std::string &Key,
                                  int DeadlineMs) override;
  Status store(const std::string &Key, const std::string &EntryText,
               const std::string &Digest, int DeadlineMs) override;
  std::string describe() const override;

private:
  Status ensureConnected();
  void disconnect();

  /// Sends \p Req and reads the response matching its id, treating
  /// \p DeadlineMs as the per-read inactivity timeout. Disconnects on
  /// every failure. An "error" response becomes an error Status.
  Expected<json::Value> roundTrip(const json::Value &Req, uint64_t Id,
                                  int DeadlineMs);

  std::string SocketPath;
  int TcpPort;
  uint32_t MaxFrameBytes;
  int Fd = -1;
  uint64_t NextId = 1;
};

/// Builds a backend for a `--cache-remote TARGET` string: all digits is
/// a loopback TCP port, anything else a unix socket path.
std::unique_ptr<RemoteCacheBackend>
makeCacheBackendForTarget(const std::string &Target);

} // namespace service
} // namespace pira

#endif // PIRA_SERVICE_CACHECLIENT_H
