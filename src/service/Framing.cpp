//===- service/Framing.cpp - Length-prefixed frame protocol ---------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "service/Framing.h"

#include "support/FaultInjection.h"
#include "support/Io.h"

#include <cerrno>

#include <poll.h>
#include <unistd.h>

using namespace pira;
using namespace pira::service;

const char *pira::service::frameStatusName(FrameStatus S) {
  switch (S) {
  case FrameStatus::Ok:
    return "ok";
  case FrameStatus::Eof:
    return "eof";
  case FrameStatus::Timeout:
    return "timeout";
  case FrameStatus::TooLarge:
    return "too-large";
  case FrameStatus::BadLength:
    return "bad-length";
  case FrameStatus::Error:
    return "error";
  }
  return "error";
}

std::string pira::service::frameBytes(std::string_view Payload) {
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  std::string Out;
  Out.reserve(Payload.size() + 4);
  Out.push_back(static_cast<char>((Len >> 24) & 0xff));
  Out.push_back(static_cast<char>((Len >> 16) & 0xff));
  Out.push_back(static_cast<char>((Len >> 8) & 0xff));
  Out.push_back(static_cast<char>(Len & 0xff));
  Out.append(Payload);
  return Out;
}

std::string pira::service::frameDoc(const json::Value &Doc) {
  return frameBytes(Doc.toString(-1));
}

namespace {

/// Waits for readability, EINTR-proof. Returns 1 ready, 0 timeout,
/// -1 error.
int waitReadable(int Fd, int TimeoutMs) {
  for (;;) {
    pollfd P;
    P.fd = Fd;
    P.events = POLLIN;
    P.revents = 0;
    int N = ::poll(&P, 1, TimeoutMs <= 0 ? -1 : TimeoutMs);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    return N;
  }
}

/// Accumulates exactly \p Want bytes, polling before every read so an
/// inactive peer times out instead of blocking the thread forever.
/// \p SawAny reports whether any byte of this frame arrived (an EOF on
/// the very first byte is a clean close; later it is a torn frame).
FrameStatus readExact(int Fd, char *Buf, size_t Want, int IdleTimeoutMs,
                      bool &SawAny) {
  size_t Got = 0;
  while (Got < Want) {
    int Ready = waitReadable(Fd, IdleTimeoutMs);
    if (Ready < 0)
      return FrameStatus::Error;
    if (Ready == 0)
      return FrameStatus::Timeout;
    ssize_t N = ::read(Fd, Buf + Got, Want - Got);
    if (N < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue;
      return FrameStatus::Error;
    }
    if (N == 0)
      return SawAny ? FrameStatus::Error : FrameStatus::Eof;
    SawAny = true;
    Got += static_cast<size_t>(N);
  }
  return FrameStatus::Ok;
}

} // namespace

namespace {

/// The net.payload.corrupt effect: mutate the last ASCII digit of the
/// payload ('9' wraps to '0'). A digit-for-digit swap keeps the JSON
/// structurally valid, so the corruption survives parsing and must be
/// caught by the end-to-end integrity digest, not by the parser. Cache
/// entries and digests both end in digit-bearing fields, so one mutated
/// character is guaranteed to break the sha256 cross-check. Payloads
/// with no digit (tiny control frames) pass through unchanged.
void corruptPayloadInFlight(std::string &Payload) {
  for (size_t I = Payload.size(); I != 0; --I) {
    char &C = Payload[I - 1];
    if (C >= '0' && C <= '9') {
      C = C == '9' ? '0' : static_cast<char>(C + 1);
      return;
    }
  }
}

} // namespace

FrameStatus pira::service::readFrame(int Fd, std::string &Payload,
                                     uint32_t MaxBytes, int IdleTimeoutMs) {
  Payload.clear();
  if (faultinject::enabled()) {
    // A peer that stalls forever: report the inactivity timeout without
    // consuming anything from the stream.
    if (faultinject::shouldFire("net.read.stall"))
      return FrameStatus::Timeout;
    // A connection reset by the peer (or a middlebox) before any byte.
    if (faultinject::shouldFire("net.reset")) {
      errno = ECONNRESET;
      return FrameStatus::Error;
    }
  }
  unsigned char Header[4];
  bool SawAny = false;
  FrameStatus HS = readExact(Fd, reinterpret_cast<char *>(Header), 4,
                             IdleTimeoutMs, SawAny);
  if (HS != FrameStatus::Ok)
    return HS;
  uint32_t Len = (static_cast<uint32_t>(Header[0]) << 24) |
                 (static_cast<uint32_t>(Header[1]) << 16) |
                 (static_cast<uint32_t>(Header[2]) << 8) |
                 static_cast<uint32_t>(Header[3]);
  if (Len == 0)
    return FrameStatus::BadLength;
  if (MaxBytes != 0 && Len > MaxBytes)
    return FrameStatus::TooLarge; // Rejected before a byte is read.
  Payload.resize(Len);
  FrameStatus PS = readExact(Fd, Payload.data(), Len, IdleTimeoutMs, SawAny);
  if (PS == FrameStatus::Eof)
    return FrameStatus::Error; // EOF mid-frame is always torn.
  if (PS == FrameStatus::Ok && faultinject::enabled()) {
    // The peer died with the frame half-sent: the payload arrived but
    // the caller must treat the connection as torn.
    if (faultinject::shouldFire("net.frame.torn")) {
      errno = ECONNRESET;
      return FrameStatus::Error;
    }
    // Bytes flipped in transit: the frame reads clean, the payload lies.
    if (faultinject::shouldFire("net.payload.corrupt"))
      corruptPayloadInFlight(Payload);
  }
  return PS;
}

bool pira::service::writeFrame(int Fd, std::string_view Payload) {
  std::string Framed = frameBytes(Payload);
  if (faultinject::enabled() && faultinject::shouldFire("net.write.short")) {
    // Half the frame actually reaches the wire, so the peer exercises
    // its torn-frame defenses while the writer sees a dead peer.
    (void)io::writeFull(Fd, Framed.data(), Framed.size() / 2);
    errno = EPIPE;
    return false;
  }
  return io::writeFull(Fd, Framed.data(), Framed.size());
}

bool pira::service::writeFrameDoc(int Fd, const json::Value &Doc) {
  return writeFrame(Fd, Doc.toString(-1));
}

json::Value pira::service::requestEnvelope(uint64_t Id, const char *Type) {
  json::Value D = json::Value::object();
  D.set("schema", RequestSchemaName);
  D.set("version", ServiceProtocolVersion);
  D.set("id", Id);
  D.set("type", Type);
  return D;
}

json::Value pira::service::responseEnvelope(uint64_t Id, const char *Type) {
  json::Value D = json::Value::object();
  D.set("schema", ResponseSchemaName);
  D.set("version", ServiceProtocolVersion);
  D.set("id", Id);
  D.set("type", Type);
  return D;
}

json::Value pira::service::errorResponse(uint64_t Id, const char *Error,
                                         std::string Message, bool Retryable) {
  json::Value D = responseEnvelope(Id, "error");
  D.set("error", Error);
  D.set("message", std::move(Message));
  D.set("retryable", Retryable);
  return D;
}

json::Value pira::service::cacheRequestEnvelope(uint64_t Id, const char *Op) {
  json::Value D = json::Value::object();
  D.set("schema", CacheRequestSchemaName);
  D.set("version", ServiceProtocolVersion);
  D.set("id", Id);
  D.set("op", Op);
  return D;
}

json::Value pira::service::cacheResponseEnvelope(uint64_t Id, const char *Op) {
  json::Value D = json::Value::object();
  D.set("schema", CacheResponseSchemaName);
  D.set("version", ServiceProtocolVersion);
  D.set("id", Id);
  D.set("op", Op);
  return D;
}

json::Value pira::service::cacheErrorResponse(uint64_t Id, const char *Error,
                                              std::string Message,
                                              bool Retryable) {
  json::Value D = cacheResponseEnvelope(Id, "error");
  D.set("error", Error);
  D.set("message", std::move(Message));
  D.set("retryable", Retryable);
  return D;
}
