//===- service/Framing.cpp - Length-prefixed frame protocol ---------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "service/Framing.h"

#include "support/Io.h"

#include <cerrno>

#include <poll.h>
#include <unistd.h>

using namespace pira;
using namespace pira::service;

const char *pira::service::frameStatusName(FrameStatus S) {
  switch (S) {
  case FrameStatus::Ok:
    return "ok";
  case FrameStatus::Eof:
    return "eof";
  case FrameStatus::Timeout:
    return "timeout";
  case FrameStatus::TooLarge:
    return "too-large";
  case FrameStatus::BadLength:
    return "bad-length";
  case FrameStatus::Error:
    return "error";
  }
  return "error";
}

std::string pira::service::frameBytes(std::string_view Payload) {
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  std::string Out;
  Out.reserve(Payload.size() + 4);
  Out.push_back(static_cast<char>((Len >> 24) & 0xff));
  Out.push_back(static_cast<char>((Len >> 16) & 0xff));
  Out.push_back(static_cast<char>((Len >> 8) & 0xff));
  Out.push_back(static_cast<char>(Len & 0xff));
  Out.append(Payload);
  return Out;
}

std::string pira::service::frameDoc(const json::Value &Doc) {
  return frameBytes(Doc.toString(-1));
}

namespace {

/// Waits for readability, EINTR-proof. Returns 1 ready, 0 timeout,
/// -1 error.
int waitReadable(int Fd, int TimeoutMs) {
  for (;;) {
    pollfd P;
    P.fd = Fd;
    P.events = POLLIN;
    P.revents = 0;
    int N = ::poll(&P, 1, TimeoutMs <= 0 ? -1 : TimeoutMs);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    return N;
  }
}

/// Accumulates exactly \p Want bytes, polling before every read so an
/// inactive peer times out instead of blocking the thread forever.
/// \p SawAny reports whether any byte of this frame arrived (an EOF on
/// the very first byte is a clean close; later it is a torn frame).
FrameStatus readExact(int Fd, char *Buf, size_t Want, int IdleTimeoutMs,
                      bool &SawAny) {
  size_t Got = 0;
  while (Got < Want) {
    int Ready = waitReadable(Fd, IdleTimeoutMs);
    if (Ready < 0)
      return FrameStatus::Error;
    if (Ready == 0)
      return FrameStatus::Timeout;
    ssize_t N = ::read(Fd, Buf + Got, Want - Got);
    if (N < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue;
      return FrameStatus::Error;
    }
    if (N == 0)
      return SawAny ? FrameStatus::Error : FrameStatus::Eof;
    SawAny = true;
    Got += static_cast<size_t>(N);
  }
  return FrameStatus::Ok;
}

} // namespace

FrameStatus pira::service::readFrame(int Fd, std::string &Payload,
                                     uint32_t MaxBytes, int IdleTimeoutMs) {
  Payload.clear();
  unsigned char Header[4];
  bool SawAny = false;
  FrameStatus HS = readExact(Fd, reinterpret_cast<char *>(Header), 4,
                             IdleTimeoutMs, SawAny);
  if (HS != FrameStatus::Ok)
    return HS;
  uint32_t Len = (static_cast<uint32_t>(Header[0]) << 24) |
                 (static_cast<uint32_t>(Header[1]) << 16) |
                 (static_cast<uint32_t>(Header[2]) << 8) |
                 static_cast<uint32_t>(Header[3]);
  if (Len == 0)
    return FrameStatus::BadLength;
  if (MaxBytes != 0 && Len > MaxBytes)
    return FrameStatus::TooLarge; // Rejected before a byte is read.
  Payload.resize(Len);
  FrameStatus PS = readExact(Fd, Payload.data(), Len, IdleTimeoutMs, SawAny);
  if (PS == FrameStatus::Eof)
    return FrameStatus::Error; // EOF mid-frame is always torn.
  return PS;
}

bool pira::service::writeFrame(int Fd, std::string_view Payload) {
  std::string Framed = frameBytes(Payload);
  return io::writeFull(Fd, Framed.data(), Framed.size());
}

bool pira::service::writeFrameDoc(int Fd, const json::Value &Doc) {
  return writeFrame(Fd, Doc.toString(-1));
}

json::Value pira::service::requestEnvelope(uint64_t Id, const char *Type) {
  json::Value D = json::Value::object();
  D.set("schema", RequestSchemaName);
  D.set("version", ServiceProtocolVersion);
  D.set("id", Id);
  D.set("type", Type);
  return D;
}

json::Value pira::service::responseEnvelope(uint64_t Id, const char *Type) {
  json::Value D = json::Value::object();
  D.set("schema", ResponseSchemaName);
  D.set("version", ServiceProtocolVersion);
  D.set("id", Id);
  D.set("type", Type);
  return D;
}

json::Value pira::service::errorResponse(uint64_t Id, const char *Error,
                                         std::string Message, bool Retryable) {
  json::Value D = responseEnvelope(Id, "error");
  D.set("error", Error);
  D.set("message", std::move(Message));
  D.set("retryable", Retryable);
  return D;
}
