//===- service/Listener.cpp - Serve-socket setup and accept ---------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "service/Listener.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace pira;
using namespace pira::service;

namespace {

Status listenError(const std::string &What) {
  return Status::error(ErrorCode::Internal, "serve/listen",
                       What + ": " + std::strerror(errno));
}

} // namespace

Listener::Listener(Listener &&O) noexcept
    : Fd(std::exchange(O.Fd, -1)), Port(std::exchange(O.Port, 0)),
      UnixPath(std::move(O.UnixPath)) {
  O.UnixPath.clear();
}

Listener &Listener::operator=(Listener &&O) noexcept {
  if (this != &O) {
    close();
    Fd = std::exchange(O.Fd, -1);
    Port = std::exchange(O.Port, 0);
    UnixPath = std::move(O.UnixPath);
    O.UnixPath.clear();
  }
  return *this;
}

Expected<Listener> Listener::listenUnix(const std::string &Path) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path))
    return Status::error(ErrorCode::InvalidArgument, "serve/listen",
                         "socket path too long (" +
                             std::to_string(Path.size()) + " bytes, limit " +
                             std::to_string(sizeof(Addr.sun_path) - 1) +
                             "): '" + Path + "'");
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return listenError("socket(AF_UNIX)");

  // A stale node from a crashed daemon must not block restart; a *live*
  // daemon still holds its own listening fd, so unlinking only detaches
  // the path, it cannot hijack established connections.
  ::unlink(Path.c_str());

  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Status S = listenError("bind('" + Path + "')");
    ::close(Fd);
    return S;
  }
  if (::listen(Fd, 64) < 0) {
    Status S = listenError("listen('" + Path + "')");
    ::close(Fd);
    ::unlink(Path.c_str());
    return S;
  }
  Listener L;
  L.Fd = Fd;
  L.UnixPath = Path;
  return L;
}

Expected<Listener> Listener::listenTcp(uint16_t Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return listenError("socket(AF_INET)");

  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  // Loopback only: the daemon speaks an unauthenticated protocol.
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);

  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Status S = listenError("bind(127.0.0.1:" + std::to_string(Port) + ")");
    ::close(Fd);
    return S;
  }
  if (::listen(Fd, 64) < 0) {
    Status S = listenError("listen(tcp)");
    ::close(Fd);
    return S;
  }

  // Recover the kernel-assigned port after a 0 request.
  socklen_t AddrLen = sizeof(Addr);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &AddrLen) < 0) {
    Status S = listenError("getsockname(tcp)");
    ::close(Fd);
    return S;
  }

  Listener L;
  L.Fd = Fd;
  L.Port = ntohs(Addr.sin_port);
  return L;
}

int Listener::acceptOne(std::string &Peer) const {
  for (;;) {
    sockaddr_storage Addr;
    socklen_t AddrLen = sizeof(Addr);
    int Conn = ::accept(Fd, reinterpret_cast<sockaddr *>(&Addr), &AddrLen);
    if (Conn < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    if (Addr.ss_family == AF_INET) {
      const auto *In = reinterpret_cast<const sockaddr_in *>(&Addr);
      char Buf[INET_ADDRSTRLEN] = {0};
      ::inet_ntop(AF_INET, &In->sin_addr, Buf, sizeof(Buf));
      Peer = std::string("tcp:") + Buf + ":" + std::to_string(ntohs(In->sin_port));
    } else {
      Peer = "unix";
    }
    return Conn;
  }
}

void Listener::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  if (!UnixPath.empty()) {
    ::unlink(UnixPath.c_str());
    UnixPath.clear();
  }
}
