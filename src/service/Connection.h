//===- service/Connection.h - One accepted client socket --------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One accepted client of the compile service: the socket, a write lock
/// (the connection's reader thread and any number of executor threads
/// answer on the same descriptor), and the per-client tallies the
/// admission controller and the stats endpoint read.
///
/// Connections are shared_ptr-owned: the server's registry holds one
/// reference, and every request sitting in the admission queue holds
/// another, so a client that disconnects mid-request leaves a valid
/// object for the executor to fail its response write against (counted
/// as a dropped response, never a crash or a stall).
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_SERVICE_CONNECTION_H
#define PIRA_SERVICE_CONNECTION_H

#include "support/Json.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace pira {
namespace service {

class Connection {
public:
  /// Takes ownership of \p Fd. \p Id is the server-assigned client id
  /// (1-based accept order); \p Peer a short transport label.
  Connection(int Fd, uint64_t Id, std::string Peer);
  ~Connection();
  Connection(const Connection &) = delete;
  Connection &operator=(const Connection &) = delete;

  int fd() const { return SockFd; }
  uint64_t id() const { return ClientId; }
  const std::string &peer() const { return PeerName; }

  /// Serialized frame write; false when the peer is gone or the send
  /// timeout expired (the failure is tallied as a dropped response).
  bool sendDoc(const json::Value &Doc);

  /// Shuts the socket down both ways, waking a blocked reader; the fd
  /// itself closes with the object.
  void shutdownBoth();

  /// True once the reader thread has exited (registry sweep hint).
  std::atomic<bool> ReaderDone{false};

  /// Per-client tallies (stats endpoint + admission control).
  std::atomic<uint64_t> Requests{0};       ///< Compile requests admitted.
  std::atomic<uint64_t> InFlight{0};       ///< Admitted, not yet answered.
  std::atomic<uint64_t> Shed{0};           ///< Overload/budget rejections.
  std::atomic<uint64_t> ProtocolErrors{0}; ///< Malformed frames/requests.
  std::atomic<uint64_t> DroppedResponses{0}; ///< Writes to a gone peer.

private:
  int SockFd;
  uint64_t ClientId;
  std::string PeerName;
  std::mutex WriteMutex;
};

} // namespace service
} // namespace pira

#endif // PIRA_SERVICE_CONNECTION_H
