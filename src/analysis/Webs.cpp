//===- analysis/Webs.cpp - Right-number-of-names live ranges --------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "analysis/Webs.h"

#include "ir/Function.h"
#include "support/BitVector.h"

#include <cassert>
#include <numeric>

using namespace pira;

namespace {

/// Plain union-find over dense ids.
class UnionFind {
public:
  explicit UnionFind(unsigned N) : Parent(N) {
    std::iota(Parent.begin(), Parent.end(), 0u);
  }

  unsigned find(unsigned X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  }

  void merge(unsigned A, unsigned B) { Parent[find(A)] = find(B); }

private:
  std::vector<unsigned> Parent;
};

/// One definition record: a real site or a register's virtual entry def.
struct DefRecord {
  Reg R;
  bool Virtual;
  unsigned Block; // real defs only
  unsigned Inst;  // real defs only
};

} // namespace

Webs::Webs(const Function &F) {
  unsigned NumBlocks = F.numBlocks();
  unsigned NumRegs = F.numRegs();

  // Enumerate defs: one virtual entry def per register first (so a web
  // with id order starting at real defs stays deterministic), then real
  // defs in program order.
  std::vector<DefRecord> Defs;
  Defs.reserve(NumRegs + F.totalInstructions());
  for (Reg R = 0; R != NumRegs; ++R)
    Defs.push_back({R, /*Virtual=*/true, 0, 0});

  DefIndexAt.resize(NumBlocks);
  UseWebAt.resize(NumBlocks);
  for (unsigned B = 0; B != NumBlocks; ++B) {
    const BasicBlock &BB = F.block(B);
    DefIndexAt[B].assign(BB.size(), -1);
    UseWebAt[B].resize(BB.size());
    for (unsigned I = 0, E = BB.size(); I != E; ++I) {
      const Instruction &Inst = BB.inst(I);
      UseWebAt[B][I].assign(Inst.uses().size(), 0);
      if (!Inst.hasDef())
        continue;
      DefIndexAt[B][I] = static_cast<int>(Defs.size());
      Defs.push_back({Inst.def(), /*Virtual=*/false, B, I});
    }
  }
  unsigned NumDefs = static_cast<unsigned>(Defs.size());

  // Per-block Gen (downward-exposed defs) and Kill (all other defs of the
  // registers the block writes).
  std::vector<BitVector> Gen(NumBlocks, BitVector(NumDefs));
  std::vector<BitVector> Kill(NumBlocks, BitVector(NumDefs));
  std::vector<std::vector<unsigned>> DefsOfReg(NumRegs);
  for (unsigned D = 0; D != NumDefs; ++D)
    DefsOfReg[Defs[D].R].push_back(D);

  for (unsigned B = 0; B != NumBlocks; ++B) {
    const BasicBlock &BB = F.block(B);
    for (unsigned I = 0, E = BB.size(); I != E; ++I) {
      if (DefIndexAt[B][I] < 0)
        continue;
      unsigned D = static_cast<unsigned>(DefIndexAt[B][I]);
      for (unsigned Other : DefsOfReg[Defs[D].R]) {
        Gen[B].reset(Other);
        Kill[B].set(Other);
      }
      Gen[B].set(D);
      Kill[B].reset(D);
    }
  }

  // Entry fact: every virtual def reaches the entry.
  BitVector EntryFact(NumDefs);
  for (Reg R = 0; R != NumRegs; ++R)
    EntryFact.set(R);

  std::vector<std::vector<unsigned>> Preds = F.predecessors();
  std::vector<BitVector> ReachIn(NumBlocks, BitVector(NumDefs));
  std::vector<BitVector> ReachOut(NumBlocks, BitVector(NumDefs));
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned B = 0; B != NumBlocks; ++B) {
      BitVector In(NumDefs);
      if (B == 0)
        In.unionWith(EntryFact);
      for (unsigned P : Preds[B])
        In.unionWith(ReachOut[P]);
      BitVector Out = In;
      Out.subtract(Kill[B]);
      Out.unionWith(Gen[B]);
      if (In != ReachIn[B] || Out != ReachOut[B]) {
        ReachIn[B] = std::move(In);
        ReachOut[B] = std::move(Out);
        Changed = true;
      }
    }
  }

  // Bind each use to its reaching defs and union them. Remember one
  // representative def per use operand for later web lookup.
  UnionFind UF(NumDefs);
  std::vector<std::vector<std::vector<unsigned>>> UseDefAt(NumBlocks);
  for (unsigned B = 0; B != NumBlocks; ++B) {
    const BasicBlock &BB = F.block(B);
    UseDefAt[B].resize(BB.size());
    // LocalDef[R]: def index of the latest in-block def of R seen so far.
    std::vector<int> LocalDef(NumRegs, -1);
    for (unsigned I = 0, E = BB.size(); I != E; ++I) {
      const Instruction &Inst = BB.inst(I);
      UseDefAt[B][I].assign(Inst.uses().size(), 0);
      for (unsigned Op = 0, OE = static_cast<unsigned>(Inst.uses().size());
           Op != OE; ++Op) {
        Reg R = Inst.uses()[Op];
        unsigned First = ~0u;
        if (LocalDef[R] >= 0) {
          First = static_cast<unsigned>(LocalDef[R]);
        } else {
          for (unsigned D : DefsOfReg[R]) {
            if (!ReachIn[B].test(D))
              continue;
            if (First == ~0u)
              First = D;
            else
              UF.merge(First, D);
          }
          // Unreachable blocks receive no dataflow facts; bind their uses
          // to the register's virtual entry def.
          if (First == ~0u)
            First = R;
        }
        UseDefAt[B][I][Op] = First;
      }
      if (DefIndexAt[B][I] >= 0)
        LocalDef[Inst.def()] = DefIndexAt[B][I];
    }
  }

  // A virtual entry def whose web has no real def and no bound use is an
  // artifact of modeling; skip such webs entirely.
  BitVector RootReferenced(NumDefs);
  for (unsigned D = NumRegs; D != NumDefs; ++D)
    RootReferenced.set(UF.find(D));
  for (unsigned B = 0; B != NumBlocks; ++B)
    for (unsigned I = 0, E = F.block(B).size(); I != E; ++I)
      for (unsigned D : UseDefAt[B][I])
        RootReferenced.set(UF.find(D));

  // Number webs densely in order of first def id; fill the public tables.
  DefWeb.assign(NumDefs, ~0u);
  std::vector<int> RootToWeb(NumDefs, -1);
  for (unsigned D = 0; D != NumDefs; ++D) {
    unsigned Root = UF.find(D);
    if (!RootReferenced.test(Root))
      continue;
    if (RootToWeb[Root] < 0) {
      RootToWeb[Root] = static_cast<int>(WebRegs.size());
      WebRegs.push_back(Defs[D].R);
      WebDefs.emplace_back();
      WebHasEntryDef.push_back(false);
      WebUseCounts.push_back(0);
    }
    unsigned Web = static_cast<unsigned>(RootToWeb[Root]);
    DefWeb[D] = Web;
    if (Defs[D].Virtual)
      WebHasEntryDef[Web] = true;
    else
      WebDefs[Web].push_back({Defs[D].Block, Defs[D].Inst});
  }

  for (unsigned B = 0; B != NumBlocks; ++B)
    for (unsigned I = 0, E = F.block(B).size(); I != E; ++I)
      for (unsigned Op = 0,
                    OE = static_cast<unsigned>(UseDefAt[B][I].size());
           Op != OE; ++Op) {
        unsigned Web = DefWeb[UseDefAt[B][I][Op]];
        UseWebAt[B][I][Op] = Web;
        ++WebUseCounts[Web];
      }
}

unsigned Webs::webOfDef(unsigned Block, unsigned Inst) const {
  assert(Block < DefIndexAt.size() && Inst < DefIndexAt[Block].size() &&
         "instruction out of range");
  int D = DefIndexAt[Block][Inst];
  assert(D >= 0 && "instruction has no def");
  return DefWeb[static_cast<unsigned>(D)];
}

unsigned Webs::webOfUse(unsigned Block, unsigned Inst,
                        unsigned OpIdx) const {
  assert(Block < UseWebAt.size() && Inst < UseWebAt[Block].size() &&
         OpIdx < UseWebAt[Block][Inst].size() && "use operand out of range");
  return UseWebAt[Block][Inst][OpIdx];
}
