//===- analysis/Regions.h - Plausible block pairs and regions ---*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper schedules across block boundaries by treating two blocks as
/// one when they are "plausible for being scheduled together": one
/// executes iff the other does. Its stated criterion — B1 dominates B2
/// and B2 postdominates B1 — is verified on the dominator and
/// postdominator trees. A region here is a maximal chain of pairwise
/// plausible blocks forming an acyclic fragment; acyclicity is judged on
/// the CFG with back edges (u -> v where v dominates u) removed, so a
/// region never spans two iterations of a loop but may cover blocks
/// inside one body.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_ANALYSIS_REGIONS_H
#define PIRA_ANALYSIS_REGIONS_H

#include "support/BitMatrix.h"

#include <vector>

namespace pira {

class Function;

/// Groups blocks into acyclic control-equivalent regions.
class RegionAnalysis {
public:
  /// Analyzes \p F.
  explicit RegionAnalysis(const Function &F);

  /// Returns true when blocks \p A and \p B (A != B) are plausible for
  /// joint scheduling: one dominates the other, the other postdominates
  /// the first, and the pair is acyclic (no path back from the dominated
  /// block to the dominator).
  bool plausiblePair(unsigned A, unsigned B) const;

  /// Regions as ordered block lists (dominator first). Every block
  /// appears in exactly one region; isolated blocks form singletons.
  const std::vector<std::vector<unsigned>> &regions() const {
    return RegionList;
  }

  /// Returns the region index containing block \p B.
  unsigned regionOf(unsigned B) const { return RegionOf[B]; }

private:
  BitMatrix Reach;    // block-level reachability (nonempty paths)
  BitMatrix Plausible;
  std::vector<std::vector<unsigned>> RegionList;
  std::vector<unsigned> RegionOf;
};

} // namespace pira

#endif // PIRA_ANALYSIS_REGIONS_H
