//===- analysis/DependenceGraph.cpp - Per-block schedule graph ------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "analysis/DependenceGraph.h"

#include "ir/Function.h"
#include "machine/MachineModel.h"
#include "support/Telemetry.h"
#include "transforms/DagReduce.h"

#include <cassert>
#include <map>

using namespace pira;

PIRA_STAT(NumClosureComponents,
          "Weakly connected components split off before closure");
PIRA_STAT(NumClosureChainsCollapsed,
          "Single-entry/single-exit chains collapsed before closure");
PIRA_STAT(NumClosureEdgesStripped,
          "Redundant transitive edges stripped before closure");
PIRA_STAT(NumClosureSinksPeeled,
          "Universal terminator sinks peeled before closure");

const char *pira::depKindName(DepKind Kind) {
  switch (Kind) {
  case DepKind::Flow:
    return "flow";
  case DepKind::Anti:
    return "anti";
  case DepKind::Output:
    return "output";
  case DepKind::Memory:
    return "memory";
  case DepKind::Control:
    return "control";
  }
  assert(false && "unknown dependence kind");
  return "?";
}

namespace {
constexpr unsigned NoEdge = ~0u;
} // namespace

void DependenceGraph::addEdge(unsigned From, unsigned To, DepKind Kind,
                              unsigned Latency) {
  assert(From < NumNodes && To < NumNodes && From < To &&
         "bad dependence edge; node order must stay topological");
  if (Adjacent.test(From, To)) {
    // Keep the strongest (largest latency) constraint for duplicates. The
    // per-From chain makes this a walk over From's edges only.
    for (unsigned EI = FirstFrom[From]; EI != NoEdge; EI = NextFrom[EI]) {
      DepEdge &E = Edges[EI];
      if (E.To == To) {
        if (E.Latency < Latency)
          E.Latency = Latency;
        return;
      }
    }
    assert(false && "adjacency bit set without a matching edge");
    return;
  }
  Adjacent.set(From, To);
  unsigned EI = static_cast<unsigned>(Edges.size());
  NextFrom.push_back(FirstFrom[From]);
  FirstFrom[From] = EI;
  Edges.push_back({From, To, Kind, Latency});
}

void DependenceGraph::buildCsr() {
  unsigned NumEdges = static_cast<unsigned>(Edges.size());
  unsigned *SOff = Storage.allocateZeroed<unsigned>(NumNodes + 1);
  unsigned *POff = Storage.allocateZeroed<unsigned>(NumNodes + 1);
  for (const DepEdge &E : Edges) {
    ++SOff[E.From + 1];
    ++POff[E.To + 1];
  }
  for (unsigned I = 0; I != NumNodes; ++I) {
    SOff[I + 1] += SOff[I];
    POff[I + 1] += POff[I];
  }
  unsigned *SIdx = Storage.allocate<unsigned>(NumEdges);
  unsigned *PIdx = Storage.allocate<unsigned>(NumEdges);
  {
    // Stable fill in edge-insertion order, matching the order the old
    // per-node vectors accumulated.
    std::vector<unsigned> SFill(SOff, SOff + NumNodes);
    std::vector<unsigned> PFill(POff, POff + NumNodes);
    for (unsigned EI = 0; EI != NumEdges; ++EI) {
      SIdx[SFill[Edges[EI].From]++] = EI;
      PIdx[PFill[Edges[EI].To]++] = EI;
    }
  }
  SuccOff = SOff;
  SuccIdx = SIdx;
  PredOff = POff;
  PredIdx = PIdx;
  FirstFrom = {};
  NextFrom = {};
}

/// Returns true when the two memory instructions provably access disjoint
/// locations under the interpreter's wrap-modulo-size addressing.
///
/// Sound rules only: different arrays never alias; within one array two
/// accesses are disjoint when they share the same base register (or are
/// both direct) and have distinct constant offsets that both lie inside
/// the declared bounds (wrapping is then the identity, and equal bases
/// shift both offsets identically).
static bool provablyDisjoint(const Function &F, const Instruction &A,
                             const Instruction &B) {
  assert(A.isMemory() && B.isMemory() && "not memory instructions");
  if (A.arraySymbolId() != B.arraySymbolId())
    return true;
  unsigned Size = F.arraySize(A.arraySymbol());
  if (Size == 0)
    return false;

  auto IndexOf = [](const Instruction &I) -> Reg {
    if (I.opcode() == Opcode::Load)
      return I.uses().empty() ? NoReg : I.uses()[0];
    return I.uses().size() > 1 ? I.uses()[1] : NoReg;
  };
  if (IndexOf(A) != IndexOf(B))
    return false;
  bool InBounds = A.imm() >= 0 && B.imm() >= 0 &&
                  A.imm() < static_cast<int64_t>(Size) &&
                  B.imm() < static_cast<int64_t>(Size);
  return InBounds && A.imm() != B.imm();
}

DependenceGraph::DependenceGraph(const Function &F, unsigned BlockIdx,
                                 const MachineModel &Machine) {
  const BasicBlock &BB = F.block(BlockIdx);
  NumNodes = BB.size();
  FirstFrom.assign(NumNodes, NoEdge);
  Adjacent = BitMatrix(NumNodes);

  // LastDef[R] / readers since that def, for register dependences. These
  // track *positions*, so the same construction serves symbolic code (no
  // redefinition, hence no anti/output edges) and allocated code.
  std::map<Reg, unsigned> LastDef;
  std::map<Reg, std::vector<unsigned>> ReadersSinceDef;
  std::vector<unsigned> MemOps;

  for (unsigned I = 0; I != NumNodes; ++I) {
    const Instruction &Inst = BB.inst(I);

    // Flow dependences: latest prior def of each used register.
    for (Reg U : Inst.uses()) {
      auto It = LastDef.find(U);
      if (It != LastDef.end()) {
        const Instruction &Producer = BB.inst(It->second);
        addEdge(It->second, I, DepKind::Flow,
                Machine.latency(Producer.opcode()));
      }
      ReadersSinceDef[U].push_back(I);
    }

    if (Inst.hasDef()) {
      Reg D = Inst.def();
      // Output dependence on the previous def of D.
      auto It = LastDef.find(D);
      if (It != LastDef.end())
        addEdge(It->second, I, DepKind::Output, 1);
      // Anti dependences from readers of the previous value of D. Zero
      // latency: a superscalar reads operands before writing results, so
      // reader and overwriter may share a cycle.
      for (unsigned Reader : ReadersSinceDef[D])
        if (Reader != I)
          addEdge(Reader, I, DepKind::Anti, 0);
      LastDef[D] = I;
      ReadersSinceDef[D].clear();
    }

    // Memory ordering: any prior memory op that may touch the same slot,
    // unless both are loads.
    if (Inst.isMemory()) {
      bool IsLoad = Inst.opcode() == Opcode::Load;
      for (unsigned Prev : MemOps) {
        const Instruction &PrevInst = BB.inst(Prev);
        bool PrevIsLoad = PrevInst.opcode() == Opcode::Load;
        if (IsLoad && PrevIsLoad)
          continue;
        if (provablyDisjoint(F, PrevInst, Inst))
          continue;
        addEdge(Prev, I, DepKind::Memory,
                Machine.latency(PrevInst.opcode()));
      }
      MemOps.push_back(I);
    }
  }

  // The terminator stays last: every instruction precedes it. Zero latency
  // lets work share the branch's final cycle, as on real machines.
  if (NumNodes != 0 && BB.inst(NumNodes - 1).isTerminator())
    for (unsigned I = 0; I + 1 < NumNodes; ++I)
      addEdge(I, NumNodes - 1, DepKind::Control, 0);

  buildCsr();
}

BitMatrix DependenceGraph::reachability(ThreadPool *Pool) const {
  std::vector<std::pair<unsigned, unsigned>> EdgePairs;
  EdgePairs.reserve(Edges.size());
  for (const DepEdge &E : Edges)
    EdgePairs.push_back({E.From, E.To});
  dagreduce::ReduceStats RS;
  BitMatrix M = dagreduce::reducedClosure(NumNodes, EdgePairs, Pool, &RS);
  NumClosureComponents += RS.Components;
  NumClosureChainsCollapsed += RS.Chains;
  NumClosureEdgesStripped += RS.StrippedEdges;
  NumClosureSinksPeeled += RS.PeeledSink ? 1 : 0;
  return M;
}

bool DependenceGraph::hasPath(unsigned From, unsigned To) const {
  assert(From < NumNodes && To < NumNodes && "node out of range");
  // Small scope; a DFS avoids building the full closure.
  std::vector<unsigned> Stack = {From};
  BitVector Seen(NumNodes);
  Seen.set(From);
  while (!Stack.empty()) {
    unsigned Node = Stack.back();
    Stack.pop_back();
    for (unsigned EI : succEdges(Node)) {
      unsigned Next = Edges[EI].To;
      if (Next == To)
        return true;
      if (!Seen.test(Next)) {
        Seen.set(Next);
        Stack.push_back(Next);
      }
    }
  }
  return false;
}
