//===- analysis/DependenceGraph.h - Per-block schedule graph ----*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's schedule graph Gs for one basic block: one vertex per
/// instruction and a directed edge (u, v) whenever u must execute before
/// v — register data dependences (flow, and anti/output once registers are
/// reused), conservative memory ordering, and terminator placement. With
/// symbolic registers (one register per value) no anti or output register
/// dependence exists, exactly as the paper observes, so Et then "contains
/// exactly the real constraints on the scheduler."
///
/// Every edge satisfies From < To: dependences always point from an earlier
/// instruction to a later one, so node order is a topological order. The
/// reduction pipeline behind reachability() relies on this invariant.
///
/// Adjacency is stored in CSR form (flat offset/index arrays in an arena,
/// returned as spans): one contiguous allocation instead of one vector per
/// node, built once after construction.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_ANALYSIS_DEPENDENCEGRAPH_H
#define PIRA_ANALYSIS_DEPENDENCEGRAPH_H

#include "support/Arena.h"
#include "support/BitMatrix.h"

#include <span>
#include <vector>

namespace pira {

class BasicBlock;
class Function;
class MachineModel;
class ThreadPool;

/// Classifies why one instruction must precede another.
enum class DepKind : unsigned {
  Flow,    ///< Register written by From is read by To.
  Anti,    ///< Register read by From is rewritten by To.
  Output,  ///< Register written by From is rewritten by To.
  Memory,  ///< Possible same-location memory access ordering.
  Control, ///< Terminator must remain at the block end.
};

/// Returns a printable name for \p Kind.
const char *depKindName(DepKind Kind);

/// One precedence edge of the schedule graph.
struct DepEdge {
  unsigned From;
  unsigned To;
  DepKind Kind;
  /// Minimum issue-cycle separation: To may issue no earlier than
  /// cycle(From) + Latency. Zero permits same-cycle issue (anti
  /// dependences under read-before-write register semantics).
  unsigned Latency;
};

/// The schedule graph of one basic block.
class DependenceGraph {
public:
  /// Builds the graph for \p BB of \p F with \p Machine's latencies.
  /// \p BlockIdx selects the block within the function.
  DependenceGraph(const Function &F, unsigned BlockIdx,
                  const MachineModel &Machine);

  DependenceGraph(const DependenceGraph &) = delete;
  DependenceGraph &operator=(const DependenceGraph &) = delete;

  /// Returns the number of instructions (vertices).
  unsigned size() const { return NumNodes; }

  /// Returns all edges in deterministic order.
  const std::vector<DepEdge> &edges() const { return Edges; }

  /// Returns the indices into edges() of edges leaving \p Node, in
  /// insertion order.
  std::span<const unsigned> succEdges(unsigned Node) const {
    return {SuccIdx + SuccOff[Node], SuccOff[Node + 1] - SuccOff[Node]};
  }

  /// Returns the indices into edges() of edges entering \p Node, in
  /// insertion order.
  std::span<const unsigned> predEdges(unsigned Node) const {
    return {PredIdx + PredOff[Node], PredOff[Node + 1] - PredOff[Node]};
  }

  /// Returns true when an edge (\p From, \p To) of any kind exists.
  bool hasEdge(unsigned From, unsigned To) const {
    return Adjacent.test(From, To);
  }

  /// Returns the direct-edge adjacency matrix (no closure).
  const BitMatrix &adjacency() const { return Adjacent; }

  /// Returns directed reachability (the transitive closure of the edge
  /// relation). Entry (u, v) is set iff a nonempty path u -> v exists.
  ///
  /// Computed through the pre-closure DAG reduction (component split,
  /// chain collapse, transitive-edge strip); bit-identical to closing the
  /// adjacency matrix directly. \p Pool, when non-null, closes independent
  /// components in parallel with no effect on the result.
  BitMatrix reachability(ThreadPool *Pool = nullptr) const;

  /// Returns true when a nonempty directed path \p From -> \p To exists.
  /// Convenience over reachability() for one-off queries.
  bool hasPath(unsigned From, unsigned To) const;

private:
  void addEdge(unsigned From, unsigned To, DepKind Kind, unsigned Latency);
  /// Freezes the per-node edge lists into CSR arrays; called once at the
  /// end of construction.
  void buildCsr();

  unsigned NumNodes = 0;
  std::vector<DepEdge> Edges;
  BitMatrix Adjacent;

  /// CSR adjacency over edge indices, arena-backed.
  Arena Storage;
  const unsigned *SuccOff = nullptr;
  const unsigned *SuccIdx = nullptr;
  const unsigned *PredOff = nullptr;
  const unsigned *PredIdx = nullptr;

  /// Construction-only intrusive per-From edge chains for duplicate
  /// detection (freed by buildCsr).
  std::vector<unsigned> FirstFrom;
  std::vector<unsigned> NextFrom;
};

} // namespace pira

#endif // PIRA_ANALYSIS_DEPENDENCEGRAPH_H
