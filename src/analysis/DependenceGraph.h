//===- analysis/DependenceGraph.h - Per-block schedule graph ----*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's schedule graph Gs for one basic block: one vertex per
/// instruction and a directed edge (u, v) whenever u must execute before
/// v — register data dependences (flow, and anti/output once registers are
/// reused), conservative memory ordering, and terminator placement. With
/// symbolic registers (one register per value) no anti or output register
/// dependence exists, exactly as the paper observes, so Et then "contains
/// exactly the real constraints on the scheduler."
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_ANALYSIS_DEPENDENCEGRAPH_H
#define PIRA_ANALYSIS_DEPENDENCEGRAPH_H

#include "support/BitMatrix.h"

#include <vector>

namespace pira {

class BasicBlock;
class Function;
class MachineModel;

/// Classifies why one instruction must precede another.
enum class DepKind : unsigned {
  Flow,    ///< Register written by From is read by To.
  Anti,    ///< Register read by From is rewritten by To.
  Output,  ///< Register written by From is rewritten by To.
  Memory,  ///< Possible same-location memory access ordering.
  Control, ///< Terminator must remain at the block end.
};

/// Returns a printable name for \p Kind.
const char *depKindName(DepKind Kind);

/// One precedence edge of the schedule graph.
struct DepEdge {
  unsigned From;
  unsigned To;
  DepKind Kind;
  /// Minimum issue-cycle separation: To may issue no earlier than
  /// cycle(From) + Latency. Zero permits same-cycle issue (anti
  /// dependences under read-before-write register semantics).
  unsigned Latency;
};

/// The schedule graph of one basic block.
class DependenceGraph {
public:
  /// Builds the graph for \p BB of \p F with \p Machine's latencies.
  /// \p BlockIdx selects the block within the function.
  DependenceGraph(const Function &F, unsigned BlockIdx,
                  const MachineModel &Machine);

  /// Returns the number of instructions (vertices).
  unsigned size() const { return NumNodes; }

  /// Returns all edges in deterministic order.
  const std::vector<DepEdge> &edges() const { return Edges; }

  /// Returns the indices into edges() of edges leaving \p Node.
  const std::vector<unsigned> &succEdges(unsigned Node) const {
    return Succ[Node];
  }

  /// Returns the indices into edges() of edges entering \p Node.
  const std::vector<unsigned> &predEdges(unsigned Node) const {
    return Pred[Node];
  }

  /// Returns true when an edge (\p From, \p To) of any kind exists.
  bool hasEdge(unsigned From, unsigned To) const {
    return Adjacent.test(From, To);
  }

  /// Returns directed reachability (the transitive closure of the edge
  /// relation). Entry (u, v) is set iff a nonempty path u -> v exists.
  BitMatrix reachability() const;

  /// Returns true when a nonempty directed path \p From -> \p To exists.
  /// Convenience over reachability() for one-off queries.
  bool hasPath(unsigned From, unsigned To) const;

private:
  void addEdge(unsigned From, unsigned To, DepKind Kind, unsigned Latency);

  unsigned NumNodes = 0;
  std::vector<DepEdge> Edges;
  std::vector<std::vector<unsigned>> Succ;
  std::vector<std::vector<unsigned>> Pred;
  BitMatrix Adjacent;
};

} // namespace pira

#endif // PIRA_ANALYSIS_DEPENDENCEGRAPH_H
