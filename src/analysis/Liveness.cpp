//===- analysis/Liveness.cpp - Global live-variable analysis --------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "analysis/Liveness.h"

#include "ir/Function.h"

using namespace pira;

Liveness::Liveness(const Function &F) {
  unsigned NumBlocks = F.numBlocks();
  unsigned NumRegs = F.numRegs();
  UseSets.assign(NumBlocks, BitVector(NumRegs));
  DefSets.assign(NumBlocks, BitVector(NumRegs));
  LiveInSets.assign(NumBlocks, BitVector(NumRegs));
  LiveOutSets.assign(NumBlocks, BitVector(NumRegs));

  for (unsigned B = 0; B != NumBlocks; ++B) {
    for (const Instruction &I : F.block(B).instructions()) {
      for (Reg U : I.uses())
        if (!DefSets[B].test(U))
          UseSets[B].set(U);
      if (I.hasDef())
        DefSets[B].set(I.def());
    }
  }

  // Iterate to the (unique) fixed point; reverse block order converges
  // quickly on reducible CFGs.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned B = NumBlocks; B-- != 0;) {
      BitVector Out(NumRegs);
      for (unsigned Succ : F.block(B).successors())
        Out.unionWith(LiveInSets[Succ]);
      BitVector In = Out;
      In.subtract(DefSets[B]);
      In.unionWith(UseSets[B]);
      if (Out != LiveOutSets[B] || In != LiveInSets[B]) {
        LiveOutSets[B] = std::move(Out);
        LiveInSets[B] = std::move(In);
        Changed = true;
      }
    }
  }
}
