//===- analysis/Regions.cpp - Plausible block pairs and regions -----------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "analysis/Regions.h"

#include "analysis/Dominators.h"
#include "ir/Function.h"

#include <cassert>

using namespace pira;

RegionAnalysis::RegionAnalysis(const Function &F) {
  unsigned N = F.numBlocks();
  DominatorTree Dom = DominatorTree::forward(F);
  DominatorTree PDom = DominatorTree::postdom(F);

  // Acyclicity is judged with back edges removed: a region is an acyclic
  // fragment *within* one loop body (an edge u -> v is a back edge when v
  // dominates u).
  Reach = BitMatrix(N);
  for (unsigned B = 0; B != N; ++B)
    for (unsigned S : F.block(B).successors())
      if (!Dom.dominates(S, B))
        Reach.set(B, S);
  Reach.transitiveClosure();

  Plausible = BitMatrix(N);
  for (unsigned A = 0; A != N; ++A) {
    for (unsigned B = 0; B != N; ++B) {
      if (A == B)
        continue;
      // A executes iff B executes: A dom B and B postdom A — and the pair
      // must be acyclic (rules out loop header/latch pairs).
      if (Dom.dominates(A, B) && PDom.dominates(B, A) && !Reach.test(B, A))
        Plausible.set(A, B); // ordered: A precedes B
    }
  }

  // Greedy chains in dominance order: start from each unassigned block,
  // repeatedly append the lowest-index unassigned block plausible with
  // every block already in the chain.
  RegionOf.assign(N, ~0u);
  for (unsigned Start = 0; Start != N; ++Start) {
    if (RegionOf[Start] != ~0u)
      continue;
    std::vector<unsigned> Chain = {Start};
    RegionOf[Start] = static_cast<unsigned>(RegionList.size());
    bool Extended = true;
    while (Extended) {
      Extended = false;
      for (unsigned Cand = 0; Cand != N; ++Cand) {
        if (RegionOf[Cand] != ~0u)
          continue;
        bool Ok = true;
        for (unsigned Member : Chain)
          if (!Plausible.test(Member, Cand) &&
              !Plausible.test(Cand, Member)) {
            Ok = false;
            break;
          }
        if (!Ok)
          continue;
        RegionOf[Cand] = RegionOf[Start];
        // Keep dominance order: insert before the first member the
        // candidate precedes.
        size_t Pos = Chain.size();
        for (size_t I = 0; I != Chain.size(); ++I)
          if (Plausible.test(Cand, Chain[I])) {
            Pos = I;
            break;
          }
        Chain.insert(Chain.begin() + static_cast<long>(Pos), Cand);
        Extended = true;
        break;
      }
    }
    RegionList.push_back(std::move(Chain));
  }
}

bool RegionAnalysis::plausiblePair(unsigned A, unsigned B) const {
  assert(A < RegionOf.size() && B < RegionOf.size() && "block out of range");
  return Plausible.test(A, B) || Plausible.test(B, A);
}
