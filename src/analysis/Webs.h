//===- analysis/Webs.h - Right-number-of-names live ranges ------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's "right number of names" analysis (after Chaitin et al.):
/// def-use chains that reach a common use are combined into one compound
/// live interval — the value must end up in a single register (Figure 6).
/// A web is such a maximal union of definitions; webs are the vertices of
/// the interference graph and of the parallelizable interference graph.
///
/// Values read before any definition (function inputs) are modeled by a
/// virtual definition at the entry, so every use belongs to exactly one
/// web.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_ANALYSIS_WEBS_H
#define PIRA_ANALYSIS_WEBS_H

#include "ir/Instruction.h"

#include <utility>
#include <vector>

namespace pira {

class Function;

/// A definition site: block index and instruction index within it.
using DefSite = std::pair<unsigned, unsigned>;

/// Partitions definitions into webs via reaching-definitions dataflow and
/// union-find over shared uses.
class Webs {
public:
  /// Runs the analysis on \p F.
  explicit Webs(const Function &F);

  /// Returns the number of webs (live-range vertices).
  unsigned numWebs() const { return static_cast<unsigned>(WebRegs.size()); }

  /// Returns the register the web names (all defs of a web define the
  /// same register).
  Reg webRegister(unsigned Web) const { return WebRegs[Web]; }

  /// Returns the web of the value defined by instruction \p Inst of block
  /// \p Block (which must have a def).
  unsigned webOfDef(unsigned Block, unsigned Inst) const;

  /// Returns the web supplying use operand \p OpIdx of instruction
  /// \p Inst in block \p Block.
  unsigned webOfUse(unsigned Block, unsigned Inst, unsigned OpIdx) const;

  /// Real definition sites of \p Web in program order.
  const std::vector<DefSite> &defsOfWeb(unsigned Web) const {
    return WebDefs[Web];
  }

  /// True when the web's value may flow in at function entry (it contains
  /// the register's virtual entry definition).
  bool hasEntryDef(unsigned Web) const { return WebHasEntryDef[Web]; }

  /// Number of use operands bound to \p Web across the function.
  unsigned numUsesOfWeb(unsigned Web) const { return WebUseCounts[Web]; }

private:
  // Dense maps keyed by (block, inst): index of the def record, and for
  // each use operand its web. Built once in the constructor.
  std::vector<std::vector<int>> DefIndexAt;           // -1 when no def
  std::vector<std::vector<std::vector<unsigned>>> UseWebAt;
  std::vector<unsigned> DefWeb;                       // def record -> web
  std::vector<Reg> WebRegs;
  std::vector<std::vector<DefSite>> WebDefs;
  std::vector<bool> WebHasEntryDef;
  std::vector<unsigned> WebUseCounts;
};

} // namespace pira

#endif // PIRA_ANALYSIS_WEBS_H
