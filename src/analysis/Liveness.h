//===- analysis/Liveness.h - Global live-variable analysis ------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic backward may-liveness over the CFG. Live ranges feed the
/// interference graph; per the paper, the statement of a value's last use
/// is *not* part of its live interval, which lets the register be reused
/// by that very statement.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_ANALYSIS_LIVENESS_H
#define PIRA_ANALYSIS_LIVENESS_H

#include "ir/Instruction.h"
#include "support/BitVector.h"

#include <vector>

namespace pira {

class Function;

/// Live-in / live-out register sets per block.
class Liveness {
public:
  /// Runs the iterative dataflow on \p F.
  explicit Liveness(const Function &F);

  /// Registers live on entry to block \p B.
  const BitVector &liveIn(unsigned B) const { return LiveInSets[B]; }

  /// Registers live on exit from block \p B.
  const BitVector &liveOut(unsigned B) const { return LiveOutSets[B]; }

  /// Returns true when register \p R is live on entry to block \p B.
  bool isLiveIn(unsigned B, Reg R) const { return LiveInSets[B].test(R); }

  /// Returns true when register \p R is live on exit from block \p B.
  bool isLiveOut(unsigned B, Reg R) const { return LiveOutSets[B].test(R); }

  /// Registers read before any write within block \p B (upward-exposed).
  const BitVector &upwardExposed(unsigned B) const { return UseSets[B]; }

  /// Registers written within block \p B.
  const BitVector &defined(unsigned B) const { return DefSets[B]; }

private:
  std::vector<BitVector> UseSets;
  std::vector<BitVector> DefSets;
  std::vector<BitVector> LiveInSets;
  std::vector<BitVector> LiveOutSets;
};

} // namespace pira

#endif // PIRA_ANALYSIS_LIVENESS_H
