//===- analysis/Dominators.h - Dominator and postdominator trees *- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator and postdominator trees over the CFG, computed with the
/// iterative Cooper-Harvey-Kennedy algorithm. The paper uses both to find
/// "plausible" block pairs for region scheduling: B1 dominates B2 and B2
/// postdominates B1 iff the two blocks execute under exactly the same
/// conditions.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_ANALYSIS_DOMINATORS_H
#define PIRA_ANALYSIS_DOMINATORS_H

#include <vector>

namespace pira {

class Function;

/// A dominator tree over an arbitrary successor relation; see the two
/// factories for forward and reverse (postdominator) orientations.
class DominatorTree {
public:
  /// Builds the forward dominator tree of \p F (entry = block 0).
  static DominatorTree forward(const Function &F);

  /// Builds the postdominator tree of \p F over the reversed CFG with a
  /// virtual exit joining every Ret (and otherwise successor-less) block.
  /// The virtual exit has index numBlocks().
  static DominatorTree postdom(const Function &F);

  /// Returns the immediate dominator of \p Block, or -1 for the root and
  /// for nodes unreachable in this orientation.
  int idom(unsigned Block) const { return Idom[Block]; }

  /// Returns true when \p A dominates \p B (reflexive). Unreachable nodes
  /// dominate nothing and are dominated by nothing but themselves.
  bool dominates(unsigned A, unsigned B) const;

  /// Returns true when \p Block is reachable in this orientation.
  bool isReachable(unsigned Block) const {
    return Block == Root || Idom[Block] != -1;
  }

  /// Returns the number of nodes (including any virtual exit).
  unsigned size() const { return static_cast<unsigned>(Idom.size()); }

  /// Returns the root node index.
  unsigned root() const { return Root; }

private:
  DominatorTree(const std::vector<std::vector<unsigned>> &Succs,
                unsigned Root);

  unsigned Root = 0;
  std::vector<int> Idom;
};

} // namespace pira

#endif // PIRA_ANALYSIS_DOMINATORS_H
