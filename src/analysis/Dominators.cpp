//===- analysis/Dominators.cpp - Dominator and postdominator trees --------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"

#include "ir/Function.h"

#include <algorithm>
#include <cassert>

using namespace pira;

/// Computes a reverse postorder of the graph reachable from \p Root.
static std::vector<unsigned>
reversePostorder(const std::vector<std::vector<unsigned>> &Succs,
                 unsigned Root) {
  unsigned N = static_cast<unsigned>(Succs.size());
  std::vector<unsigned> Order;
  std::vector<char> State(N, 0); // 0 new, 1 open, 2 done
  std::vector<std::pair<unsigned, unsigned>> Stack = {{Root, 0}};
  State[Root] = 1;
  while (!Stack.empty()) {
    auto &[Node, NextChild] = Stack.back();
    if (NextChild < Succs[Node].size()) {
      unsigned Child = Succs[Node][NextChild++];
      if (State[Child] == 0) {
        State[Child] = 1;
        Stack.emplace_back(Child, 0);
      }
      continue;
    }
    State[Node] = 2;
    Order.push_back(Node);
    Stack.pop_back();
  }
  std::reverse(Order.begin(), Order.end());
  return Order;
}

DominatorTree::DominatorTree(
    const std::vector<std::vector<unsigned>> &Succs, unsigned Root)
    : Root(Root) {
  unsigned N = static_cast<unsigned>(Succs.size());
  Idom.assign(N, -1);

  std::vector<unsigned> RPO = reversePostorder(Succs, Root);
  std::vector<int> RpoNumber(N, -1);
  for (unsigned I = 0, E = static_cast<unsigned>(RPO.size()); I != E; ++I)
    RpoNumber[RPO[I]] = static_cast<int>(I);

  std::vector<std::vector<unsigned>> Preds(N);
  for (unsigned B = 0; B != N; ++B)
    for (unsigned S : Succs[B])
      Preds[S].push_back(B);

  // Cooper-Harvey-Kennedy: intersect along idom chains until fixpoint.
  auto Intersect = [&](unsigned A, unsigned B) {
    while (A != B) {
      while (RpoNumber[A] > RpoNumber[B])
        A = static_cast<unsigned>(Idom[A]);
      while (RpoNumber[B] > RpoNumber[A])
        B = static_cast<unsigned>(Idom[B]);
    }
    return A;
  };

  Idom[Root] = static_cast<int>(Root); // temporary self-loop for intersect
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned Node : RPO) {
      if (Node == Root)
        continue;
      unsigned NewIdom = ~0u;
      for (unsigned P : Preds[Node]) {
        if (RpoNumber[P] < 0 || Idom[P] == -1)
          continue; // unreachable or not yet processed
        NewIdom = NewIdom == ~0u ? P : Intersect(P, NewIdom);
      }
      if (NewIdom == ~0u)
        continue;
      if (Idom[Node] != static_cast<int>(NewIdom)) {
        Idom[Node] = static_cast<int>(NewIdom);
        Changed = true;
      }
    }
  }
  Idom[Root] = -1;
}

bool DominatorTree::dominates(unsigned A, unsigned B) const {
  assert(A < Idom.size() && B < Idom.size() && "node out of range");
  if (!isReachable(B))
    return A == B;
  for (int Node = static_cast<int>(B); Node != -1;
       Node = Idom[static_cast<unsigned>(Node)])
    if (static_cast<unsigned>(Node) == A)
      return true;
  return false;
}

DominatorTree DominatorTree::forward(const Function &F) {
  std::vector<std::vector<unsigned>> Succs(F.numBlocks());
  for (unsigned B = 0, E = F.numBlocks(); B != E; ++B)
    Succs[B] = F.block(B).successors();
  return DominatorTree(Succs, /*Root=*/0);
}

DominatorTree DominatorTree::postdom(const Function &F) {
  unsigned N = F.numBlocks();
  unsigned VirtualExit = N;
  // Reversed CFG with the virtual exit as root; exit-less blocks (Ret or
  // no successors) feed the virtual exit in the forward direction.
  std::vector<std::vector<unsigned>> Reversed(N + 1);
  for (unsigned B = 0; B != N; ++B) {
    std::vector<unsigned> Succs = F.block(B).successors();
    if (Succs.empty())
      Reversed[VirtualExit].push_back(B);
    for (unsigned S : Succs)
      Reversed[S].push_back(B);
  }
  return DominatorTree(Reversed, VirtualExit);
}
