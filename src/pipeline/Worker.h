//===- pipeline/Worker.h - Self-exec compile-worker protocol ----*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol between the batch driver's --isolate mode and its
/// sandboxed pirac children. The parent serializes one compile job —
/// the function's textual IR, the full machine description, the rung's
/// strategy, every option that affects the result, and the fault spec
/// plus key — to the child's stdin; the child (pirac --worker) runs the
/// ordinary compile guard on it and writes one result document to
/// stdout. Both documents are JSON with the usual versioned-schema
/// discipline ("pira.job" / "pira.result").
///
/// Contract: a worker that produced a result document exits 0 even when
/// the compile inside it failed — the failure travels as the structured
/// diagnostic in the document. A nonzero exit or a missing/unparsable
/// document therefore always means the *process* died (crash, OOM kill,
/// timeout, protocol bug), which is exactly the event the parent's
/// ChildCrashed / ChildKilled / ChildTimeout taxonomy captures.
///
/// Protocol v2 adds cross-process telemetry: the job document carries a
/// "telemetry" flag (whether the parent is recording trace scopes), and
/// the result document carries a "telemetry" block — the child's pid,
/// nonzero counters, nonempty latency histograms, and (when the flag was
/// set) its finished trace events (telemetry::snapshotToJson). The
/// parent folds the block into its own registries with
/// telemetry::mergeSnapshot, re-basing child timestamps onto the instant
/// it spawned the child, so --isolate --trace-out shows child compile
/// phases nested under the parent's spawn/ladder spans.
///
/// Determinism: the compile payload of both documents is
/// insertion-ordered JSON with no clocks or pids, and the telemetry
/// block's counters and histogram bucket *counts* are deterministic for
/// deterministic work and merge commutatively — so isolated batches keep
/// the byte-identical-across---jobs guarantee for everything outside the
/// wall-clock fields (event timestamps, histogram sums), which live in
/// the stats report's volatile tail (see pipeline/Report.h).
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_PIPELINE_WORKER_H
#define PIRA_PIPELINE_WORKER_H

#include "pipeline/Batch.h"

#include <iosfwd>
#include <string>

namespace pira {

/// Schema constants for both protocol documents.
inline constexpr const char *WorkerJobSchemaName = "pira.job";
inline constexpr const char *WorkerResultSchemaName = "pira.result";
/// v3 added the "oracle" options block (max_instructions, node_budget)
/// so the exact strategy's envelope survives the parent -> child hop.
inline constexpr int WorkerProtocolVersion = 3;

/// One compile job as the parent ships it: \p IRText and \p MachineText
/// are the canonical printed forms (the child re-parses them), \p Opts
/// supplies strategy and knobs, and \p FaultSpec / \p FaultKey transport
/// the harness state so injected faults fire identically in the child.
json::Value encodeWorkerJob(const std::string &IRText,
                            const std::string &MachineText,
                            const BatchOptions &Opts,
                            const std::string &FaultSpec, uint64_t FaultKey);

/// A decoded pira.job document: everything runWorkerJob needs. This is
/// the shared currency between the two consumers of the protocol — the
/// sandboxed `pirac --worker` child and the `pirac serve` daemon — so a
/// job means exactly the same thing whichever door it arrives through.
struct WorkerJob {
  std::string IRText;      ///< Canonical textual IR of the function.
  std::string MachineText; ///< Canonical machine description.
  BatchOptions Opts;       ///< Strategy and every result-affecting knob.
  std::string FaultSpec;   ///< Fault-injection spec ("" disarmed).
  uint64_t FaultKey = 0;   ///< Fault key for this compilation.
  bool WantTelemetry = false; ///< Parent records trace scopes (v2).
};

/// Decodes and validates a pira.job document. Errors are ProtocolError
/// diagnostics naming the malformed piece; the worker maps them to exit
/// 3, the server to a `protocol-error` response.
Expected<WorkerJob> decodeWorkerJob(const json::Value &Doc);

/// Executes one decoded job through the ordinary guarded pipeline:
/// parse the machine and IR, consult \p Cache (when non-null — the
/// daemon's permanently warm tier; null for one-shot workers), run
/// compileFunctionGuarded, insert clean non-degraded successes back.
/// Parse failures travel inside the result like any compile failure.
/// Does NOT touch the process-global fault-injection config; the caller
/// decides whether the job's FaultSpec may be adopted (the single-job
/// worker does, the multi-tenant server refuses).
GuardedResult runWorkerJob(const WorkerJob &Job,
                           CompilationCache *Cache = nullptr);

/// The child's answer: the ladder record plus the full pipeline result
/// (successes carry the allocated code, schedule, and symbolic twin so
/// the parent's BatchResult is as complete as an in-process compile).
json::Value encodeWorkerResult(const GuardedResult &G);

/// Inverse of encodeWorkerResult. Errors mean a malformed document —
/// the parent maps them to a worker-protocol Internal diagnostic.
Expected<GuardedResult> decodeWorkerResult(const json::Value &Doc);

/// The `pirac --worker` entry: reads one job document from \p In, runs
/// the guarded compile, writes one result document to \p Out. Returns
/// the process exit code — 0 whenever a result document was written
/// (compile failures included), 3 for protocol-level errors (unreadable
/// or malformed job), with a diagnostic on \p Err.
int runWorkerMode(std::istream &In, std::ostream &Out, std::ostream &Err);

} // namespace pira

#endif // PIRA_PIPELINE_WORKER_H
