//===- pipeline/Oracle.cpp - Exact branch-and-bound strategy --------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
//
// The search enumerates, cycle by cycle, every issue set that the machine
// (issue width, unit counts) and the register file admit, over the symbolic
// schedule graph Gs. Register admission is exact: an issue set is feasible
// iff some within-cycle order keeps the number of simultaneously-live
// values at or under K, and for a single block live ranges are intervals
// along the issue order, so K registers suffice exactly when that peak
// does not exceed K (the left-edge greedy achieves it). Three classical
// reductions keep the enumeration sound yet small:
//
//   * Earliest-issue dominance: delaying an instruction past its ready
//     cycle never helps — register pressure depends only on the *sequence*
//     of issue sets, not on their wall-clock cycles — so the search only
//     idles toward a pending latency event.
//   * Admissible bounds: critical-path height and per-unit-class
//     ceil(remaining/units) floors, checked against the incumbent.
//   * Dominance memoization: per scheduled-set bitmask, a Pareto front of
//     (makespan-so-far, effective ready times); a state pointwise no
//     better than a stored one cannot lead to a better completion.
//
// Scope: single-block functions without symbolic register reuse. The
// reuse restriction is what makes the optimality claim airtight — a
// coloring allocator may legally *rename* the webs of a reused symbolic
// register apart and thereby drop anti/output edges the symbolic graph
// contains, so an oracle that enforced those edges could be beaten.
// Out-of-scope inputs fail fast with SearchExhausted and fall down the
// degradation ladder.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Oracle.h"

#include "analysis/DependenceGraph.h"
#include "ir/Function.h"
#include "machine/MachineModel.h"
#include "pipeline/Strategies.h"
#include "sched/EPTimes.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <vector>

using namespace pira;

PIRA_STAT(NumOracleRuns, "Oracle searches started");
PIRA_STAT(NumOracleSolved, "Oracle searches that proved an optimum");
PIRA_STAT(NumOracleInfeasible,
          "Oracle searches that proved no spill-free schedule fits");
PIRA_STAT(NumOracleOutOfScope,
          "Oracle inputs rejected before search (multi-block, too large, "
          "symbolic reuse)");
PIRA_STAT(NumOracleExhausted,
          "Oracle searches abandoned on node budget or deadline");
PIRA_STAT(NumOracleNodes, "Oracle search nodes expanded");
PIRA_STAT(NumOracleBoundPrunes, "Oracle branches cut by admissible bounds");
PIRA_STAT(NumOracleDominancePrunes,
          "Oracle states cut by dominance memoization");
PIRA_HIST(OracleSearchNs, "Oracle search wall time per function (ns)");

namespace {

constexpr unsigned Inf = std::numeric_limits<unsigned>::max();

/// The whole search over one block. Built once per oracleCompile call;
/// all state is per-instance, so concurrent batch workers never share.
class OracleSearch {
public:
  OracleSearch(const Function &F, const MachineModel &M)
      : F(F), M(M), G(F, /*BlockIdx=*/0, M) {}

  /// Runs the search. Returns Ok and fills \p Out on a proven optimum;
  /// SearchExhausted / AllocFailure otherwise (see Oracle.h).
  Status run(const OracleOptions &Opts, PipelineResult &Out);

private:
  /// Issue-set enumeration scratch, one instance per search level so a
  /// committed cycle's recursion cannot clobber its parent's candidates.
  struct Level {
    std::vector<unsigned> Work;    ///< Candidates, decided left to right.
    std::vector<unsigned> Members; ///< Tentatively included set.
    unsigned UnitsUsed[NumUnitKinds] = {};
    std::vector<unsigned> PredsLeftDyn; ///< PredsLeft net of Members.
    std::vector<unsigned> BlockedBy; ///< >=1-latency preds inside Members.
    std::vector<char> InWork;        ///< Guards duplicate appends.
  };

  // --- static problem data -------------------------------------------------
  const Function &F;
  const MachineModel &M;
  DependenceGraph G;
  unsigned N = 0;     ///< Instructions in block 0.
  unsigned K = 0;     ///< Physical registers.
  unsigned Width = 0; ///< Issue width.
  uint64_t FullMask = 0;
  std::vector<unsigned> Height;     ///< Critical-path height per node.
  std::vector<unsigned> UnitOf;     ///< Unit class per node.
  std::vector<char> HasDef;         ///< Node defines a value.
  std::vector<unsigned> NumReaders; ///< Reader-instruction count per value.
  /// Distinct producing values read by each instruction.
  std::vector<std::vector<unsigned>> UseVals;
  /// Producer value per use slot (aligned with uses()).
  std::vector<std::vector<unsigned>> SlotProducer;

  // --- mutable search state (undo-managed) ---------------------------------
  uint64_t Mask = 0;
  std::vector<unsigned> CycleOf;
  std::vector<unsigned> Ready;       ///< Earliest cycle from scheduled preds.
  std::vector<unsigned> PredsLeft;   ///< Unscheduled predecessors.
  std::vector<unsigned> ReadersLeft; ///< Unscheduled readers per value.
  unsigned LiveCount = 0;            ///< Values live after Mask.

  // --- incumbent and pruning ----------------------------------------------
  unsigned Best = Inf; ///< Incumbent makespan.
  std::vector<unsigned> BestCycleOf;
  /// Pareto entries per mask: [makespan-so-far, eff-ready of each
  /// unscheduled node in index order]. Bounded per mask and globally;
  /// skipping an insert only costs pruning power, never soundness.
  std::unordered_map<uint64_t, std::vector<std::vector<unsigned>>> Memo;
  static constexpr size_t MaxMemoEntries = 1u << 20;
  static constexpr size_t MaxParetoPerMask = 8;
  size_t MemoEntries = 0;

  uint64_t Nodes = 0;
  uint64_t NodeBudget = 0;
  bool Exhausted = false;
  bool HitDeadline = false;

  Status prepare(const OracleOptions &Opts);
  void dfs(unsigned Cycle, unsigned MkSoFar);
  void enumerate(Level &L, unsigned Pos, unsigned Cycle, unsigned MkSoFar);
  void commit(const std::vector<unsigned> &S, unsigned Cycle,
              unsigned MkSoFar);
  bool overBudget();
  bool dominated(unsigned Cycle, unsigned MkSoFar);
  bool cycleOrderFeasible(const std::vector<unsigned> &S,
                          std::vector<unsigned> *WitnessOrder) const;
  Status materialize(PipelineResult &Out);
};

Status OracleSearch::prepare(const OracleOptions &Opts) {
  auto outOfScope = [](std::string Msg) {
    ++NumOracleOutOfScope;
    return Status::error(ErrorCode::SearchExhausted, "oracle/scope",
                         std::move(Msg));
  };
  unsigned Cap = std::min(Opts.MaxInstructions, 64u);
  if (F.numBlocks() != 1)
    return outOfScope("oracle handles single-block functions, @" + F.name() +
                      " has " + std::to_string(F.numBlocks()) + " blocks");
  N = F.block(0).size();
  if (N == 0 || N > Cap)
    return outOfScope("block size " + std::to_string(N) +
                      " outside the oracle's envelope [1, " +
                      std::to_string(Cap) + "]");
  Width = M.issueWidth();
  if (std::min(Width, N) > 16)
    return outOfScope("issue width " + std::to_string(Width) +
                      " exceeds the within-cycle subset DP's 16-wide limit");
  for (const DepEdge &E : G.edges())
    if (E.Kind == DepKind::Anti || E.Kind == DepKind::Output)
      return outOfScope("symbolic register reuse in @" + F.name() +
                        " (a renaming allocator could drop the anti/output "
                        "edges the exact search would have to respect)");

  K = M.numPhysRegs();
  FullMask = N == 64 ? ~uint64_t(0) : (uint64_t(1) << N) - 1;
  Height = computeHeights(G);
  NodeBudget = Opts.NodeBudget;

  const BasicBlock &BB = F.block(0);
  UnitOf.resize(N);
  HasDef.resize(N);
  NumReaders.assign(N, 0);
  UseVals.resize(N);
  SlotProducer.resize(N);
  std::vector<unsigned> LastDef(F.numRegs(), Inf);
  for (unsigned I = 0; I != N; ++I) {
    const Instruction &Inst = BB.inst(I);
    UnitOf[I] = static_cast<unsigned>(Inst.unit());
    HasDef[I] = Inst.hasDef() ? 1 : 0;
    SlotProducer[I].reserve(Inst.uses().size());
    for (Reg R : Inst.uses()) {
      if (R >= LastDef.size() || LastDef[R] == Inf)
        return outOfScope("instruction " + std::to_string(I) +
                          " reads a register with no reaching definition");
      unsigned V = LastDef[R];
      SlotProducer[I].push_back(V);
      if (std::find(UseVals[I].begin(), UseVals[I].end(), V) ==
          UseVals[I].end()) {
        UseVals[I].push_back(V);
        ++NumReaders[V];
      }
    }
    if (Inst.hasDef())
      LastDef[Inst.def()] = I;
  }

  // Register-pressure floor: when I executes, its distinct operand values
  // are simultaneously live (every one still has I as a pending reader),
  // and its def needs a register of its own account. No schedule evades
  // this, so exceeding K here is a proof of spill-free infeasibility.
  for (unsigned I = 0; I != N; ++I) {
    unsigned Need = std::max<unsigned>(
        static_cast<unsigned>(UseVals[I].size()), HasDef[I] ? 1u : 0u);
    if (Need > K) {
      ++NumOracleInfeasible;
      return Status::error(
          ErrorCode::AllocFailure, "oracle/pressure-floor",
          "no spill-free schedule exists: instruction " + std::to_string(I) +
              " alone needs " + std::to_string(Need) + " registers, machine " +
              M.name() + " has " + std::to_string(K));
    }
  }

  CycleOf.assign(N, 0);
  Ready.assign(N, 0);
  PredsLeft.resize(N);
  for (unsigned I = 0; I != N; ++I)
    PredsLeft[I] = static_cast<unsigned>(G.predEdges(I).size());
  ReadersLeft = NumReaders;
  return Status();
}

bool OracleSearch::overBudget() {
  if (Exhausted)
    return true;
  if (NodeBudget != 0 && Nodes > NodeBudget) {
    Exhausted = true;
    return true;
  }
  // Cooperative deadline: poll rather than throw, so a watchdog firing
  // mid-search degrades down the ladder (the heuristic rungs are orders
  // of magnitude faster and each gets a fresh deadline) instead of being
  // treated as "would blow again".
  if ((Nodes & 255u) == 0 && deadline::expired()) {
    Exhausted = true;
    HitDeadline = true;
    return true;
  }
  return false;
}

/// Exact register admission for issue set \p S at the current state:
/// true iff some within-cycle order (0-latency edges inside \p S
/// respected) keeps simultaneous liveness at or under K. Occupancy after
/// an executed prefix T is order-independent — values die when their
/// last pending reader lands in T, defs (dead-born ones hold to the end
/// of the cycle) each take one register — so a subset DP over prefixes
/// decides feasibility exactly. \p WitnessOrder, when requested, gets a
/// deterministic admissible order (used by materialization).
bool OracleSearch::cycleOrderFeasible(
    const std::vector<unsigned> &S, std::vector<unsigned> *WitnessOrder) const {
  unsigned Sz = static_cast<unsigned>(S.size());
  if (Sz == 0) {
    if (WitnessOrder)
      WitnessOrder->clear();
    return true;
  }
  assert(Sz <= 16 && "issue set beyond subset-DP range");

  // Dying values: live now, every remaining reader inside S. For each,
  // the mask of S-positions that read it; released once all have run.
  std::vector<unsigned> DyingMask;
  std::vector<unsigned> SeenVals;
  for (unsigned P = 0; P != Sz; ++P)
    for (unsigned V : UseVals[S[P]]) {
      if (ReadersLeft[V] == 0 ||
          std::find(SeenVals.begin(), SeenVals.end(), V) != SeenVals.end())
        continue;
      SeenVals.push_back(V);
      unsigned InSMask = 0, InSCount = 0;
      for (unsigned Q = 0; Q != Sz; ++Q)
        if (std::find(UseVals[S[Q]].begin(), UseVals[S[Q]].end(), V) !=
            UseVals[S[Q]].end()) {
          InSMask |= 1u << Q;
          ++InSCount;
        }
      if (InSCount == ReadersLeft[V])
        DyingMask.push_back(InSMask);
    }

  // Within-cycle precedence: 0-latency graph edges with both ends in S.
  std::vector<unsigned> PredMask(Sz, 0);
  for (unsigned P = 0; P != Sz; ++P)
    for (unsigned EI : G.succEdges(S[P])) {
      const DepEdge &E = G.edges()[EI];
      if (E.Latency != 0)
        continue;
      for (unsigned Q = 0; Q != Sz; ++Q)
        if (S[Q] == E.To)
          PredMask[Q] |= 1u << P;
    }

  unsigned Full = (1u << Sz) - 1u;
  auto occupancy = [&](unsigned T) {
    unsigned Occ = LiveCount;
    for (unsigned DM : DyingMask)
      if ((DM & ~T) == 0)
        --Occ;
    for (unsigned P = 0; P != Sz; ++P)
      if ((T >> P & 1u) && HasDef[S[P]])
        ++Occ;
    return Occ;
  };

  std::vector<char> Feasible(size_t(Full) + 1, 0);
  std::vector<unsigned> Last(size_t(Full) + 1, 0);
  Feasible[0] = LiveCount <= K;
  for (unsigned T = 1; T <= Full; ++T) {
    if (occupancy(T) > K)
      continue;
    for (unsigned P = 0; P != Sz; ++P) {
      if (!(T >> P & 1u))
        continue;
      unsigned Prev = T & ~(1u << P);
      if (Feasible[Prev] && (PredMask[P] & ~Prev) == 0) {
        Feasible[T] = 1;
        Last[T] = P;
        break;
      }
    }
  }
  if (!Feasible[Full])
    return false;
  if (WitnessOrder) {
    WitnessOrder->assign(Sz, 0);
    unsigned T = Full;
    for (unsigned Step = Sz; Step != 0; --Step) {
      unsigned P = Last[T];
      (*WitnessOrder)[Step - 1] = S[P];
      T &= ~(1u << P);
    }
  }
  return true;
}

bool OracleSearch::dominated(unsigned Cycle, unsigned MkSoFar) {
  std::vector<unsigned> Sig;
  Sig.reserve(N + 1);
  Sig.push_back(MkSoFar);
  for (unsigned I = 0; I != N; ++I)
    if (!(Mask >> I & 1))
      Sig.push_back(std::max(Ready[I], Cycle));
  auto &Entries = Memo[Mask];
  for (const std::vector<unsigned> &E : Entries) {
    bool Dominates = true;
    for (size_t J = 0; J != Sig.size(); ++J)
      if (E[J] > Sig[J]) {
        Dominates = false;
        break;
      }
    if (Dominates)
      return true;
  }
  Entries.erase(std::remove_if(Entries.begin(), Entries.end(),
                               [&](const std::vector<unsigned> &E) {
                                 for (size_t J = 0; J != Sig.size(); ++J)
                                   if (Sig[J] > E[J])
                                     return false;
                                 --MemoEntries;
                                 return true;
                               }),
                Entries.end());
  if (Entries.size() < MaxParetoPerMask && MemoEntries < MaxMemoEntries) {
    Entries.push_back(std::move(Sig));
    ++MemoEntries;
  }
  return false;
}

/// Applies issue set \p S at \p Cycle, recurses into the earliest next
/// decision cycle (or records the incumbent on completion), and undoes.
void OracleSearch::commit(const std::vector<unsigned> &S, unsigned Cycle,
                          unsigned MkSoFar) {
  std::vector<std::pair<unsigned, unsigned>> ReadyUndo;
  for (unsigned I : S) {
    Mask |= uint64_t(1) << I;
    CycleOf[I] = Cycle;
    for (unsigned EI : G.succEdges(I)) {
      const DepEdge &E = G.edges()[EI];
      unsigned NewReady = Cycle + E.Latency;
      if (NewReady > Ready[E.To]) {
        ReadyUndo.emplace_back(E.To, Ready[E.To]);
        Ready[E.To] = NewReady;
      }
      --PredsLeft[E.To];
    }
    for (unsigned V : UseVals[I])
      if (--ReadersLeft[V] == 0)
        --LiveCount;
    if (HasDef[I] && NumReaders[I] > 0)
      ++LiveCount;
  }

  unsigned NewMk = std::max(MkSoFar, Cycle + 1);
  if (Mask == FullMask) {
    if (NewMk < Best) {
      Best = NewMk;
      BestCycleOf = CycleOf;
    }
  } else {
    unsigned Next = Inf;
    for (unsigned I = 0; I != N; ++I)
      if (!(Mask >> I & 1) && PredsLeft[I] == 0)
        Next = std::min(Next, std::max(Ready[I], Cycle + 1));
    assert(Next != Inf && "unscheduled DAG must expose a source");
    dfs(Next, NewMk);
  }

  for (size_t J = S.size(); J != 0; --J) {
    unsigned I = S[J - 1];
    if (HasDef[I] && NumReaders[I] > 0)
      --LiveCount;
    for (unsigned V : UseVals[I])
      if (ReadersLeft[V]++ == 0)
        ++LiveCount;
    for (unsigned EI : G.succEdges(I))
      ++PredsLeft[G.edges()[EI].To];
    Mask &= ~(uint64_t(1) << I);
  }
  for (size_t J = ReadyUndo.size(); J != 0; --J)
    Ready[ReadyUndo[J - 1].first] = ReadyUndo[J - 1].second;
}

/// Include/exclude recursion over the issue candidates at \p Cycle.
/// Including an instruction may enable 0-latency successors whose only
/// remaining predecessors are in the set (terminator co-issue); they are
/// appended to the worklist and decided in turn, so every distinct set
/// is produced exactly once.
void OracleSearch::enumerate(Level &L, unsigned Pos, unsigned Cycle,
                             unsigned MkSoFar) {
  if (Exhausted)
    return;
  if (Pos == L.Work.size()) {
    if (L.Members.empty()) {
      // Idle move: legal only toward a pending latency event. When no
      // event is pending, waiting changes nothing (liveness depends
      // only on the scheduled set), so a state admitting no nonempty
      // issue set is a genuine dead end.
      unsigned Next = Inf;
      for (unsigned I = 0; I != N; ++I)
        if (!(Mask >> I & 1) && PredsLeft[I] == 0 && Ready[I] > Cycle)
          Next = std::min(Next, Ready[I]);
      if (Next != Inf)
        dfs(Next, MkSoFar);
      return;
    }
    if (cycleOrderFeasible(L.Members, nullptr))
      commit(L.Members, Cycle, MkSoFar);
    return;
  }
  unsigned I = L.Work[Pos];
  // Include first: with candidates ordered by falling height this dives
  // toward a greedy critical-path solution, handing the bounds a tight
  // incumbent early.
  if (L.Members.size() < Width &&
      L.UnitsUsed[UnitOf[I]] < M.units(static_cast<UnitKind>(UnitOf[I])) &&
      L.PredsLeftDyn[I] == 0 && L.BlockedBy[I] == 0) {
    L.Members.push_back(I);
    ++L.UnitsUsed[UnitOf[I]];
    size_t Appended = 0;
    for (unsigned EI : G.succEdges(I)) {
      const DepEdge &E = G.edges()[EI];
      if (E.Latency == 0) {
        if (--L.PredsLeftDyn[E.To] == 0 && L.BlockedBy[E.To] == 0 &&
            !(Mask >> E.To & 1) && Ready[E.To] <= Cycle && !L.InWork[E.To]) {
          L.Work.push_back(E.To);
          L.InWork[E.To] = 1;
          ++Appended;
        }
      } else {
        ++L.BlockedBy[E.To];
      }
    }
    enumerate(L, Pos + 1, Cycle, MkSoFar);
    for (unsigned EI : G.succEdges(I)) {
      const DepEdge &E = G.edges()[EI];
      if (E.Latency == 0)
        ++L.PredsLeftDyn[E.To];
      else
        --L.BlockedBy[E.To];
    }
    for (size_t J = 0; J != Appended; ++J) {
      L.InWork[L.Work.back()] = 0;
      L.Work.pop_back();
    }
    --L.UnitsUsed[UnitOf[I]];
    L.Members.pop_back();
    if (Exhausted)
      return;
  }
  enumerate(L, Pos + 1, Cycle, MkSoFar);
}

void OracleSearch::dfs(unsigned Cycle, unsigned MkSoFar) {
  ++Nodes;
  ++NumOracleNodes;
  if (overBudget())
    return;

  // Admissible lower bounds against the incumbent. Ready times of nodes
  // with unscheduled predecessors are partial maxima, hence still lower
  // bounds; every term therefore underestimates the true completion.
  unsigned LB = MkSoFar;
  unsigned RemTotal = 0;
  unsigned RemPerUnit[NumUnitKinds] = {};
  for (unsigned I = 0; I != N; ++I) {
    if (Mask >> I & 1)
      continue;
    LB = std::max(LB, std::max(Ready[I], Cycle) + Height[I] + 1);
    ++RemTotal;
    ++RemPerUnit[UnitOf[I]];
  }
  LB = std::max(LB, Cycle + (RemTotal + Width - 1) / Width);
  for (unsigned U = 0; U != NumUnitKinds; ++U)
    if (RemPerUnit[U] != 0)
      LB = std::max(
          LB, Cycle + (RemPerUnit[U] + M.units(static_cast<UnitKind>(U)) - 1) /
                          M.units(static_cast<UnitKind>(U)));
  if (LB >= Best) {
    ++NumOracleBoundPrunes;
    return;
  }
  if (dominated(Cycle, MkSoFar)) {
    ++NumOracleDominancePrunes;
    return;
  }

  Level L;
  for (unsigned I = 0; I != N; ++I)
    if (!(Mask >> I & 1) && PredsLeft[I] == 0 && Ready[I] <= Cycle)
      L.Work.push_back(I);
  std::sort(L.Work.begin(), L.Work.end(), [&](unsigned A, unsigned B) {
    if (Height[A] != Height[B])
      return Height[A] > Height[B];
    return A < B;
  });
  L.PredsLeftDyn = PredsLeft;
  L.BlockedBy.assign(N, 0);
  L.InWork.assign(N, 0);
  for (unsigned I : L.Work)
    L.InWork[I] = 1;
  enumerate(L, 0, Cycle, MkSoFar);
}

/// Rebuilds the winning schedule into code: replays the cycles to
/// recover deterministic witness orders, reorders the block, renames
/// registers with the left-edge greedy along the final positions, and
/// re-checks the result against the allocated code's own schedule graph.
Status OracleSearch::materialize(PipelineResult &Out) {
  // Replay state (the search's undos left the counters pristine).
  ReadersLeft = NumReaders;
  LiveCount = 0;
  unsigned Makespan = Best;
  std::vector<std::vector<unsigned>> Cycles(Makespan);
  for (unsigned I = 0; I != N; ++I)
    Cycles[BestCycleOf[I]].push_back(I);

  std::vector<unsigned> NewOrder;
  NewOrder.reserve(N);
  for (unsigned C = 0; C != Makespan; ++C) {
    std::vector<unsigned> Witness;
    if (!cycleOrderFeasible(Cycles[C], &Witness))
      return Status::error(ErrorCode::Internal, "oracle/materialize",
                           "winning schedule lost register feasibility on "
                           "replay (cycle " +
                               std::to_string(C) + ")");
    for (unsigned I : Witness) {
      NewOrder.push_back(I);
      for (unsigned V : UseVals[I])
        if (--ReadersLeft[V] == 0)
          --LiveCount;
      if (HasDef[I] && NumReaders[I] > 0)
        ++LiveCount;
    }
  }

  // Reordered symbolic twin: allocation stays a pure renaming at fixed
  // positions, exactly what the false-dependence checker requires.
  Function Twin = F;
  {
    std::vector<Instruction> Reordered;
    Reordered.reserve(N);
    for (unsigned I : NewOrder)
      Reordered.push_back(F.block(0).inst(I));
    Twin.block(0).instructions() = std::move(Reordered);
  }

  // Left-edge renaming along the final position order. Dying values free
  // their register at their last reader (usable later the same cycle —
  // the read-before-write handoff); dead-born defs hold theirs to the
  // end of their cycle (output latency 1).
  Function Alloc = Twin;
  std::vector<unsigned> PhysOf(N, Inf);
  std::vector<char> RegBusy(K, 0);
  std::vector<unsigned> FreeAtCycleEnd;
  ReadersLeft = NumReaders;
  unsigned MaxReg = 0;
  bool AnyReg = false;
  unsigned PrevCycle = 0;
  for (unsigned P = 0; P != N; ++P) {
    unsigned I = NewOrder[P];
    unsigned C = BestCycleOf[I];
    if (C != PrevCycle) {
      for (unsigned R : FreeAtCycleEnd)
        RegBusy[R] = 0;
      FreeAtCycleEnd.clear();
      PrevCycle = C;
    }
    Instruction &Inst = Alloc.block(0).inst(P);
    for (size_t Slot = 0; Slot != SlotProducer[I].size(); ++Slot)
      Inst.setUse(static_cast<unsigned>(Slot),
                  PhysOf[SlotProducer[I][Slot]]);
    for (unsigned V : UseVals[I])
      if (--ReadersLeft[V] == 0)
        RegBusy[PhysOf[V]] = 0;
    if (HasDef[I]) {
      unsigned R = 0;
      while (R != K && RegBusy[R])
        ++R;
      if (R == K)
        return Status::error(ErrorCode::Internal, "oracle/materialize",
                             "left-edge renaming ran out of registers on a "
                             "schedule the search admitted");
      RegBusy[R] = 1;
      PhysOf[I] = R;
      Inst.setDef(R);
      MaxReg = std::max(MaxReg, R);
      AnyReg = true;
      if (NumReaders[I] == 0)
        FreeAtCycleEnd.push_back(R);
    }
  }
  unsigned RegsUsed = AnyReg ? MaxReg + 1 : 0;
  Alloc.setNumRegs(RegsUsed);
  Alloc.setAllocated(true);

  // Belt and braces: the allocated code's own schedule graph (with the
  // anti/output edges the renaming introduced) must admit the cycle
  // assignment, and every cycle must fit the machine.
  BlockSchedule BS;
  BS.CycleOf.resize(N);
  for (unsigned P = 0; P != N; ++P)
    BS.CycleOf[P] = BestCycleOf[NewOrder[P]];
  BS.Makespan = Makespan;
  DependenceGraph GA(Alloc, 0, M);
  for (const DepEdge &E : GA.edges())
    if (BS.CycleOf[E.To] < BS.CycleOf[E.From] + E.Latency)
      return Status::error(ErrorCode::Internal, "oracle/materialize",
                           "allocated code rejects the oracle schedule "
                           "(edge " +
                               std::to_string(E.From) + " -> " +
                               std::to_string(E.To) + ")");
  for (unsigned C = 0; C != Makespan; ++C) {
    unsigned Issued = 0;
    unsigned PerUnit[NumUnitKinds] = {};
    for (unsigned P = 0; P != N; ++P)
      if (BS.CycleOf[P] == C) {
        ++Issued;
        ++PerUnit[UnitOf[NewOrder[P]]];
      }
    if (Issued > Width)
      return Status::error(ErrorCode::Internal, "oracle/materialize",
                           "oracle schedule overfills issue width at cycle " +
                               std::to_string(C));
    for (unsigned U = 0; U != NumUnitKinds; ++U)
      if (PerUnit[U] > M.units(static_cast<UnitKind>(U)))
        return Status::error(ErrorCode::Internal, "oracle/materialize",
                             "oracle schedule overfills a unit class at "
                             "cycle " +
                                 std::to_string(C));
  }

  Out.Final = std::move(Alloc);
  Out.SymbolicTwin = std::move(Twin);
  Out.Sched.Blocks.assign(1, BS);
  Out.RegistersUsed = RegsUsed;
  Out.SpilledWebs = 0;
  Out.SpillInstructions = 0;
  Out.StaticCycles = Makespan;
  return Status();
}

Status OracleSearch::run(const OracleOptions &Opts, PipelineResult &Out) {
  if (Status S = prepare(Opts); !S.ok())
    return S;
  {
    telemetry::HistTimer T(OracleSearchNs);
    dfs(/*Cycle=*/0, /*MkSoFar=*/0);
  }
  if (Exhausted) {
    ++NumOracleExhausted;
    return Status::error(
        ErrorCode::SearchExhausted, "oracle/search",
        HitDeadline ? "deadline expired after " + std::to_string(Nodes) +
                          " search nodes; the optimum is unproven"
                    : "node budget (" + std::to_string(NodeBudget) +
                          ") exhausted; the optimum is unproven");
  }
  if (Best == Inf) {
    ++NumOracleInfeasible;
    return Status::error(ErrorCode::AllocFailure, "oracle/search",
                         "exhaustive search proves no spill-free schedule "
                         "of @" +
                             F.name() + " fits in " + std::to_string(K) +
                             " registers on " + M.name());
  }
  ++NumOracleSolved;
  return materialize(Out);
}

} // namespace

Status pira::oracleCompile(const Function &Input, const MachineModel &Machine,
                           const OracleOptions &Opts, PipelineResult &Out) {
  ++NumOracleRuns;
  OracleSearch Search(Input, Machine);
  return Search.run(Opts, Out);
}
