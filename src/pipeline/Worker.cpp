//===- pipeline/Worker.cpp - Self-exec compile-worker protocol ------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Worker.h"

#include "ir/Parser.h"
#include "machine/MachineConfig.h"
#include "machine/MachineModel.h"
#include "pipeline/Cache.h"
#include "pipeline/Report.h"
#include "support/FaultInjection.h"
#include "support/Telemetry.h"

#include <iostream>
#include <sstream>
#include <type_traits>

using namespace pira;

json::Value pira::encodeWorkerJob(const std::string &IRText,
                                  const std::string &MachineText,
                                  const BatchOptions &Opts,
                                  const std::string &FaultSpec,
                                  uint64_t FaultKey) {
  json::Value Job = json::Value::object();
  Job.set("schema", WorkerJobSchemaName);
  Job.set("version", WorkerProtocolVersion);
  Job.set("ir", IRText);
  Job.set("machine", MachineText);
  Job.set("strategy", strategyName(Opts.Strategy));
  json::Value Pinter = json::Value::object();
  Pinter.set("interference_weight", Opts.Pinter.InterferenceWeight);
  Pinter.set("parallel_weight", Opts.Pinter.ParallelWeight);
  Pinter.set("pre_schedule", Opts.Pinter.PreSchedule);
  Pinter.set("use_regions", Opts.Pinter.UseRegions);
  Pinter.set("max_rounds", Opts.Pinter.MaxRounds);
  Job.set("pinter", std::move(Pinter));
  json::Value Budget = json::Value::object();
  Budget.set("max_instructions", Opts.Budget.MaxInstructions);
  Budget.set("max_blocks", Opts.Budget.MaxBlocks);
  Budget.set("deadline_ms", Opts.Budget.DeadlineMs);
  Job.set("budget", std::move(Budget));
  // v3: the exact strategy's envelope rides along so an isolated oracle
  // rung behaves exactly like an in-process one.
  json::Value Oracle = json::Value::object();
  Oracle.set("max_instructions", Opts.Oracle.MaxInstructions);
  Oracle.set("node_budget", Opts.Oracle.NodeBudget);
  Job.set("oracle", std::move(Oracle));
  Job.set("measure", Opts.Measure);
  Job.set("seed", Opts.Seed);
  Job.set("degrade", Opts.Degrade);
  json::Value Fault = json::Value::object();
  Fault.set("spec", FaultSpec);
  Fault.set("key", FaultKey);
  Job.set("fault", std::move(Fault));
  // v2: tell the child whether the parent is recording trace scopes, so
  // its result document ships events only when they will be merged.
  Job.set("telemetry", telemetry::enabled());
  return Job;
}

namespace {

Status malformed(const std::string &What) {
  return Status::error(ErrorCode::ParseError, "worker",
                       "malformed protocol document: " + What);
}

/// Reads a required typed member; a small lenient-reader family keeps
/// the decode paths flat.
const json::Value *member(const json::Value &Obj, const char *Name) {
  return Obj.isObject() ? Obj.find(Name) : nullptr;
}

bool readU64(const json::Value &Obj, const char *Name, uint64_t &Out) {
  const json::Value *V = member(Obj, Name);
  if (V == nullptr || !V->isInt() || V->asInt() < 0)
    return false;
  Out = static_cast<uint64_t>(V->asInt());
  return true;
}

bool readBool(const json::Value &Obj, const char *Name, bool &Out) {
  const json::Value *V = member(Obj, Name);
  if (V == nullptr || !V->isBool())
    return false;
  Out = V->asBool();
  return true;
}

bool readString(const json::Value &Obj, const char *Name, std::string &Out) {
  const json::Value *V = member(Obj, Name);
  if (V == nullptr || !V->isString())
    return false;
  Out = V->asString();
  return true;
}

bool readDouble(const json::Value &Obj, const char *Name, double &Out) {
  const json::Value *V = member(Obj, Name);
  if (V == nullptr || !V->isNumber())
    return false;
  Out = V->asDouble();
  return true;
}

/// Serializes one ladder record; mirror of decodeOutcome below.
json::Value encodeOutcome(const CompileOutcome &O) {
  json::Value Out = json::Value::object();
  Out.set("requested", O.Requested);
  Out.set("used", O.Used);
  Out.set("rung", O.Rung);
  Out.set("degraded", O.Degraded);
  json::Value Attempts = json::Value::array();
  for (const CompileAttempt &A : O.FailedAttempts) {
    json::Value One = json::Value::object();
    One.set("rung", A.Rung);
    One.set("diagnostic", A.Diag.toJson());
    Attempts.push(std::move(One));
  }
  Out.set("attempts", std::move(Attempts));
  return Out;
}

bool decodeOutcome(const json::Value &Doc, CompileOutcome &O) {
  uint64_t Rung = 0;
  if (!readString(Doc, "requested", O.Requested) ||
      !readString(Doc, "used", O.Used) || !readU64(Doc, "rung", Rung) ||
      !readBool(Doc, "degraded", O.Degraded))
    return false;
  O.Rung = static_cast<unsigned>(Rung);
  const json::Value *Attempts = member(Doc, "attempts");
  if (Attempts == nullptr || !Attempts->isArray())
    return false;
  for (const json::Value &One : Attempts->elements()) {
    CompileAttempt A;
    if (!readString(One, "rung", A.Rung))
      return false;
    const json::Value *Diag = member(One, "diagnostic");
    if (Diag == nullptr)
      return false;
    A.Diag = Status::fromJson(*Diag);
    O.FailedAttempts.push_back(std::move(A));
  }
  return true;
}

/// Restores a failed PipelineResult from its "pipeline" serialization
/// (successes travel as full cache entries instead; see encode).
bool decodeFailedPipeline(const json::Value &Pipe, PipelineResult &R) {
  bool Success = false;
  if (!readBool(Pipe, "success", Success) || Success ||
      !readString(Pipe, "error", R.Error))
    return false;
  const json::Value *Diag = member(Pipe, "diagnostic");
  if (Diag == nullptr)
    return false;
  R.Diag = Status::fromJson(*Diag);
  R.Success = false;
  // Scalars are usually zero on failure, but a semantics divergence (for
  // example) fails *after* measurement — keep whatever was recorded.
  uint64_t U = 0;
  auto Opt = [&](const char *Name, auto &Out) {
    if (readU64(Pipe, Name, U))
      Out = static_cast<std::remove_reference_t<decltype(Out)>>(U);
  };
  Opt("registers_used", R.RegistersUsed);
  Opt("spilled_webs", R.SpilledWebs);
  Opt("spill_instructions", R.SpillInstructions);
  Opt("false_deps", R.FalseDeps);
  Opt("anti_ordering_losses", R.AntiOrderingLosses);
  Opt("parallel_edges_dropped", R.ParallelEdgesDropped);
  Opt("static_cycles", R.StaticCycles);
  Opt("dyn_cycles", R.DynCycles);
  Opt("dyn_instructions", R.DynInstructions);
  readBool(Pipe, "semantics_preserved", R.SemanticsPreserved);
  return true;
}

} // namespace

json::Value pira::encodeWorkerResult(const GuardedResult &G) {
  json::Value Doc = json::Value::object();
  Doc.set("schema", WorkerResultSchemaName);
  Doc.set("version", WorkerProtocolVersion);
  Doc.set("outcome", encodeOutcome(G.Outcome));
  if (G.Result.Success) {
    // The cache-entry form already carries the allocated code, the
    // symbolic twin, the schedule, and every pipeline scalar.
    Doc.set("entry", encodeCacheEntry(G.Result, /*Key=*/""));
  } else {
    Doc.set("pipeline", pipelineResultToJson(G.Result));
  }
  return Doc;
}

Expected<GuardedResult> pira::decodeWorkerResult(const json::Value &Doc) {
  std::string Schema;
  uint64_t Version = 0;
  if (!readString(Doc, "schema", Schema) || Schema != WorkerResultSchemaName)
    return malformed("wrong result schema");
  if (!readU64(Doc, "version", Version) ||
      Version != static_cast<uint64_t>(WorkerProtocolVersion))
    return malformed("wrong result version");
  GuardedResult G;
  const json::Value *Outcome = member(Doc, "outcome");
  if (Outcome == nullptr || !decodeOutcome(*Outcome, G.Outcome))
    return malformed("bad outcome record");
  if (const json::Value *Entry = member(Doc, "entry")) {
    Expected<PipelineResult> R = decodeCacheEntry(*Entry);
    if (!R)
      return malformed("bad result entry (" + R.status().message() + ")");
    G.Result = R.take();
    return G;
  }
  const json::Value *Pipe = member(Doc, "pipeline");
  if (Pipe == nullptr || !decodeFailedPipeline(*Pipe, G.Result))
    return malformed("bad pipeline record");
  return G;
}

Expected<WorkerJob> pira::decodeWorkerJob(const json::Value &Doc) {
  auto Bad = [](const std::string &What) {
    return Status::error(ErrorCode::ProtocolError, "worker",
                         "malformed job document: " + What);
  };
  WorkerJob Job;
  std::string Schema, StrategyText;
  uint64_t Version = 0;
  if (!readString(Doc, "schema", Schema) || Schema != WorkerJobSchemaName)
    return Bad("wrong job schema");
  if (!readU64(Doc, "version", Version) ||
      Version != static_cast<uint64_t>(WorkerProtocolVersion))
    return Bad("wrong job version");
  if (!readString(Doc, "ir", Job.IRText) ||
      !readString(Doc, "machine", Job.MachineText) ||
      !readString(Doc, "strategy", StrategyText))
    return Bad("missing ir/machine/strategy");

  Expected<StrategyKind> Kind = strategyFromName(StrategyText);
  if (!Kind)
    return Bad(Kind.status().message());
  Job.Opts.Strategy = *Kind;
  uint64_t MaxRounds = Job.Opts.Pinter.MaxRounds;
  uint64_t OracleMaxInsts = Job.Opts.Oracle.MaxInstructions;
  const json::Value *Pinter = member(Doc, "pinter");
  const json::Value *Budget = member(Doc, "budget");
  const json::Value *Oracle = member(Doc, "oracle");
  const json::Value *Fault = member(Doc, "fault");
  if (Pinter == nullptr || Budget == nullptr || Oracle == nullptr ||
      Fault == nullptr ||
      !readU64(*Oracle, "max_instructions", OracleMaxInsts) ||
      !readU64(*Oracle, "node_budget", Job.Opts.Oracle.NodeBudget) ||
      !readDouble(*Pinter, "interference_weight",
                  Job.Opts.Pinter.InterferenceWeight) ||
      !readDouble(*Pinter, "parallel_weight",
                  Job.Opts.Pinter.ParallelWeight) ||
      !readBool(*Pinter, "pre_schedule", Job.Opts.Pinter.PreSchedule) ||
      !readBool(*Pinter, "use_regions", Job.Opts.Pinter.UseRegions) ||
      !readU64(*Pinter, "max_rounds", MaxRounds) ||
      !readU64(*Budget, "max_instructions",
               Job.Opts.Budget.MaxInstructions) ||
      !readU64(*Budget, "max_blocks", Job.Opts.Budget.MaxBlocks) ||
      !readU64(*Budget, "deadline_ms", Job.Opts.Budget.DeadlineMs) ||
      !readBool(Doc, "measure", Job.Opts.Measure) ||
      !readU64(Doc, "seed", Job.Opts.Seed) ||
      !readBool(Doc, "degrade", Job.Opts.Degrade))
    return Bad("malformed job options");
  Job.Opts.Pinter.MaxRounds = static_cast<unsigned>(MaxRounds);
  Job.Opts.Oracle.MaxInstructions = static_cast<unsigned>(OracleMaxInsts);

  if (!readString(*Fault, "spec", Job.FaultSpec) ||
      !readU64(*Fault, "key", Job.FaultKey))
    return Bad("malformed fault record");
  readBool(Doc, "telemetry", Job.WantTelemetry);
  return Job;
}

GuardedResult pira::runWorkerJob(const WorkerJob &Job,
                                 CompilationCache *Cache) {
  faultinject::ScopedKey Key(Job.FaultKey);
  GuardedResult G;
  auto Fail = [&](Status S) {
    G.Outcome.Requested = strategyName(Job.Opts.Strategy);
    G.Result.Success = false;
    G.Result.Diag = std::move(S);
    G.Result.Error = G.Result.Diag.toString();
    return G;
  };

  std::string MachineError;
  std::optional<MachineModel> Machine =
      parseMachineModel(Job.MachineText, MachineError);
  if (!Machine)
    return Fail(Status::error(ErrorCode::ParseError, "worker",
                              "machine does not parse: " + MachineError));
  Expected<Function> F = parseFunctionEx(Job.IRText, "<worker-job>");
  if (!F) {
    Status S = F.status();
    S.addContext("worker job IR");
    return Fail(std::move(S));
  }

  // The daemon's warm tier: same key discipline and same
  // only-clean-non-degraded insert rule as compileBatch.
  std::string CacheKey;
  if (Cache != nullptr) {
    CacheKey = computeCacheKey(*F, *Machine, Job.Opts);
    if (std::optional<PipelineResult> Hit = Cache->lookup(CacheKey)) {
      G.Result = std::move(*Hit);
      G.Outcome.Requested = strategyName(Job.Opts.Strategy);
      G.Outcome.Used = G.Outcome.Requested;
      return G;
    }
  }
  G = compileFunctionGuarded(*F, *Machine, Job.Opts);
  if (Cache != nullptr && G.Result.Success && !G.Outcome.Degraded)
    Cache->insert(CacheKey, G.Result);
  return G;
}

int pira::runWorkerMode(std::istream &In, std::ostream &Out,
                        std::ostream &Err) {
  std::ostringstream SS;
  SS << In.rdbuf();

  json::Value Doc;
  std::string Error;
  if (!json::parse(SS.str(), Doc, Error)) {
    Err << "pirac --worker: job does not parse: " << Error << '\n';
    return 3;
  }
  Expected<WorkerJob> Job = decodeWorkerJob(Doc);
  if (!Job) {
    Err << "pirac --worker: " << Job.status().toString() << '\n';
    return 3;
  }

  // Configure explicitly even when empty: the child must mirror the
  // parent's harness, not adopt PIRA_FAULT on its own. The server never
  // takes this path — fault state is process-global and a multi-tenant
  // daemon must not let one request rearm it for everyone.
  if (!faultinject::configure(Job->FaultSpec, Error)) {
    Err << "pirac --worker: bad fault spec: " << Error << '\n';
    return 3;
  }

  // v2: mirror the parent's scope-recording switch so trace events are
  // produced exactly when the parent will merge them. Counters and
  // histograms record (and ship) regardless.
  telemetry::setEnabled(Job->WantTelemetry);

  // From here on every failure is a *compile* failure: it travels inside
  // the result document, and the worker still exits 0.
  GuardedResult G = runWorkerJob(*Job);
  json::Value Result = encodeWorkerResult(G);
  // v2: everything this process observed rides home in the result doc —
  // the parent's registries absorb it as if the compile ran in-process.
  Result.set("telemetry", telemetry::snapshotToJson());
  Result.write(Out, /*Indent=*/-1);
  Out << '\n';
  Out.flush();
  return Out ? 0 : 3;
}
