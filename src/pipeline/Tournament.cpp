//===- pipeline/Tournament.cpp - Heuristic-gap tournament -----------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Tournament.h"

#include "ir/IRBuilder.h"
#include "machine/MachineModel.h"
#include "pipeline/Report.h"
#include "support/Rng.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

using namespace pira;

PIRA_STAT(NumTournamentRuns, "Tournament harness invocations");
PIRA_STAT(NumTournamentCells,
          "Tournament compiles (corpus functions x strategies)");
PIRA_STAT(NumTournamentOracleSolved,
          "Tournament functions where the oracle proved an optimum");
PIRA_STAT(NumTournamentBeatsOracle,
          "Tournament cells where a heuristic beat the oracle (must stay 0)");

namespace {

/// Everything of one (function, strategy) cell the report needs. Plain
/// data so cells can be filled concurrently into pre-sized slots.
struct CellResult {
  bool Success = false;
  std::string FailCode;    ///< errorCodeName of the diagnostic.
  std::string FailMessage; ///< First line of context for the report.
  unsigned Registers = 0;
  unsigned Spills = 0;
  unsigned SpillInstructions = 0;
  unsigned FalseDeps = 0;
  unsigned StaticCycles = 0;
  uint64_t DynCycles = 0;
  bool SemanticsPreserved = false;
};

CellResult summarizeCell(const GuardedResult &G) {
  CellResult C;
  const PipelineResult &R = G.Result;
  C.Success = R.Success;
  if (!R.Success) {
    C.FailCode = errorCodeName(R.Diag.code());
    C.FailMessage = R.Diag.message();
  } else {
    C.Registers = R.RegistersUsed;
    C.Spills = R.SpilledWebs;
    C.SpillInstructions = R.SpillInstructions;
    C.FalseDeps = R.FalseDeps;
    C.StaticCycles = R.StaticCycles;
    C.DynCycles = R.DynCycles;
    C.SemanticsPreserved = R.SemanticsPreserved;
  }
  return C;
}

/// Splitmix-style per-function seed derivation so neighbouring corpus
/// indices land in unrelated xorshift streams.
uint64_t mixSeed(uint64_t Seed, uint64_t Index) {
  uint64_t Z = Seed + 0x9E3779B97F4A7C15ull * (Index + 1);
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
  return Z ^ (Z >> 31);
}

/// Per-strategy running tallies while walking the result grid.
struct Tally {
  uint64_t Compared = 0;    ///< Cells with an oracle optimum to compare to.
  uint64_t Optimal = 0;     ///< Ties the oracle (0 spills, equal cycles).
  uint64_t Suboptimal = 0;  ///< Lexicographically worse than the oracle.
  uint64_t BeatsOracle = 0; ///< Lexicographically better — must stay 0.
  uint64_t Spilled = 0;     ///< Subset of Suboptimal that spilled.
  uint64_t Failures = 0;    ///< Failed cells over the whole corpus.
  uint64_t CycleGap = 0;    ///< Sum of cycle excess over spill-free cells.
  uint64_t MaxCycleGap = 0;
  uint64_t SpillGap = 0;    ///< Spilled webs over compared cells.
  int64_t FalseDepGap = 0;  ///< Signed: heuristics may beat the oracle here.
  uint64_t SpillFree = 0;   ///< Cells entering the cycle/false-dep sums.
};

} // namespace

std::vector<BatchItem> pira::makeTournamentCorpus(unsigned Count,
                                                  unsigned Insts,
                                                  uint64_t Seed,
                                                  TournamentOptions &Opts) {
  Opts.CorpusCount = Count;
  Opts.CorpusInsts = Insts;
  Opts.CorpusSeed = Seed;
  Opts.CorpusSource = "generated";

  std::vector<BatchItem> Corpus;
  Corpus.reserve(Count);
  for (unsigned I = 0; I < Count; ++I) {
    Rng R(mixSeed(Seed, I));
    BatchItem Item;
    Item.Name = "t" + std::to_string(I);
    Item.Input = Function(Item.Name);
    IRBuilder B(Item.Input);
    B.startBlock("entry");

    // Every value gets a fresh symbolic register — the paper's
    // one-register-per-value discipline and, deliberately, the oracle's
    // scope: no symbolic reuse means no anti/output edges, so every
    // corpus function admits an exact baseline.
    std::vector<Reg> Defined;
    unsigned Budget = std::max(3u, Insts); // roots + >=1 body op + ret
    unsigned Roots =
        std::min(Budget - 2, 2 + static_cast<unsigned>(R.nextBelow(3)));
    for (unsigned J = 0; J < Roots; ++J)
      Defined.push_back(B.loadImm(R.nextInRange(-8, 64)));

    static const Opcode IntOps[] = {Opcode::Add, Opcode::Sub, Opcode::Mul,
                                    Opcode::And, Opcode::Or,  Opcode::Xor};
    static const Opcode FpOps[] = {Opcode::FAdd, Opcode::FSub, Opcode::FMul};
    auto pick = [&R, &Defined] {
      return Defined[R.nextBelow(Defined.size())];
    };
    for (unsigned Emitted = Roots; Emitted + 1 < Budget; ++Emitted) {
      unsigned Roll = static_cast<unsigned>(R.nextBelow(100));
      if (Roll < 45) {
        Defined.push_back(
            B.binary(IntOps[R.nextBelow(std::size(IntOps))], pick(), pick()));
      } else if (Roll < 65) {
        Defined.push_back(
            B.binary(FpOps[R.nextBelow(std::size(FpOps))], pick(), pick()));
      } else if (Roll < 75) {
        Defined.push_back(
            B.unary(R.chancePercent(50) ? Opcode::Neg : Opcode::FNeg, pick()));
      } else if (Roll < 83) {
        Defined.push_back(B.fma(pick(), pick(), pick()));
      } else if (Roll < 93) {
        Defined.push_back(B.load("m", NoReg, R.nextInRange(0, 31)));
      } else {
        B.store("m", pick(), NoReg, R.nextInRange(32, 63));
      }
    }
    B.ret(pick());
    Corpus.push_back(std::move(Item));
  }
  return Corpus;
}

json::Value pira::runTournament(const std::vector<BatchItem> &Corpus,
                                const MachineModel &Machine,
                                const TournamentOptions &Opts) {
  PIRA_TIME_SCOPE("tournament/run");
  ++NumTournamentRuns;

  const std::vector<StrategyKind> &Strategies = allStrategies();
  const unsigned K = static_cast<unsigned>(Strategies.size());
  const unsigned N = static_cast<unsigned>(Corpus.size());
  unsigned OracleSlot = 0;
  for (unsigned S = 0; S < K; ++S)
    if (Strategies[S] == StrategyKind::Oracle)
      OracleSlot = S;

  // One guarded compile per (function, strategy), fanned out flat over
  // the pool into pre-sized slots — input-order merge, so the grid (and
  // the report built from it) is byte-identical for any Jobs value.
  std::vector<CellResult> Grid(static_cast<size_t>(N) * K);
  auto runCell = [&](unsigned Flat) {
    unsigned F = Flat / K, S = Flat % K;
    BatchOptions BO;
    BO.Strategy = Strategies[S];
    BO.Oracle = Opts.Oracle;
    BO.Budget = Opts.Budget;
    BO.Measure = Opts.Measure;
    BO.Seed = Opts.Seed;
    BO.Jobs = 1;
    BO.Degrade = false; // a degraded rung would corrupt the comparison
    Grid[Flat] = summarizeCell(
        compileFunctionGuarded(Corpus[F].Input, Machine, BO));
    ++NumTournamentCells;
  };
  const unsigned Total = N * K;
  if (Opts.Jobs == 1) {
    for (unsigned Flat = 0; Flat < Total; ++Flat)
      runCell(Flat);
  } else {
    ThreadPool Pool(Opts.Jobs);
    Pool.parallelFor(Total, runCell);
  }

  // Walk the grid once, building the per-function records and the
  // per-strategy tallies together.
  std::vector<Tally> Tallies(K);
  uint64_t OracleSolved = 0, OracleExhausted = 0, OracleInfeasible = 0,
           OracleFailed = 0;
  json::Value Functions = json::Value::array();
  for (unsigned F = 0; F < N; ++F) {
    const CellResult &O = Grid[static_cast<size_t>(F) * K + OracleSlot];
    const char *OracleStatus;
    if (O.Success) {
      OracleStatus = "optimal";
      ++OracleSolved;
      ++NumTournamentOracleSolved;
    } else if (O.FailCode == errorCodeName(ErrorCode::SearchExhausted)) {
      OracleStatus = "exhausted";
      ++OracleExhausted;
    } else if (O.FailCode == errorCodeName(ErrorCode::AllocFailure)) {
      OracleStatus = "infeasible";
      ++OracleInfeasible;
    } else {
      OracleStatus = "failed";
      ++OracleFailed;
    }

    json::Value FJ = json::Value::object();
    FJ.set("name", Corpus[F].Name);
    unsigned Insts = 0;
    for (unsigned BI = 0; BI < Corpus[F].Input.numBlocks(); ++BI)
      Insts += static_cast<unsigned>(
          Corpus[F].Input.block(BI).instructions().size());
    FJ.set("instructions", Insts);
    json::Value OJ = json::Value::object();
    OJ.set("status", OracleStatus);
    if (O.Success) {
      OJ.set("cycles", O.StaticCycles);
      OJ.set("registers", O.Registers);
      OJ.set("false_deps", O.FalseDeps);
      if (Opts.Measure)
        OJ.set("dyn_cycles", O.DynCycles);
    } else {
      OJ.set("code", O.FailCode);
    }
    FJ.set("oracle", std::move(OJ));

    json::Value Results = json::Value::array();
    for (unsigned S = 0; S < K; ++S) {
      if (S == OracleSlot)
        continue;
      const CellResult &C = Grid[static_cast<size_t>(F) * K + S];
      Tally &T = Tallies[S];
      json::Value RJ = json::Value::object();
      RJ.set("strategy", strategyName(Strategies[S]));
      const char *Verdict;
      if (!C.Success) {
        Verdict = "failed";
        ++T.Failures;
        RJ.set("code", C.FailCode);
      } else {
        RJ.set("registers", C.Registers);
        RJ.set("spills", C.Spills);
        RJ.set("false_deps", C.FalseDeps);
        RJ.set("cycles", C.StaticCycles);
        if (Opts.Measure)
          RJ.set("dyn_cycles", C.DynCycles);
        if (!O.Success) {
          Verdict = "no_baseline";
        } else {
          ++T.Compared;
          // Lexicographic (spills, static cycles): the oracle spills
          // nothing, so any spill is a loss; among spill-free results
          // cycles decide, and the oracle's optimality proof says the
          // heuristic can never come out ahead.
          if (C.Spills > 0) {
            Verdict = "spilled";
            ++T.Suboptimal;
            ++T.Spilled;
            T.SpillGap += C.Spills;
          } else {
            ++T.SpillFree;
            int64_t Gap = static_cast<int64_t>(C.StaticCycles) -
                          static_cast<int64_t>(O.StaticCycles);
            T.FalseDepGap += static_cast<int64_t>(C.FalseDeps) -
                             static_cast<int64_t>(O.FalseDeps);
            if (Gap < 0) {
              Verdict = "beats_oracle";
              ++T.BeatsOracle;
              ++NumTournamentBeatsOracle;
            } else if (Gap == 0) {
              Verdict = "optimal";
              ++T.Optimal;
            } else {
              Verdict = "suboptimal";
              ++T.Suboptimal;
              T.CycleGap += static_cast<uint64_t>(Gap);
              T.MaxCycleGap =
                  std::max(T.MaxCycleGap, static_cast<uint64_t>(Gap));
            }
            RJ.set("cycle_gap", Gap);
          }
        }
      }
      RJ.set("verdict", Verdict);
      Results.push(std::move(RJ));
    }
    FJ.set("results", std::move(Results));
    Functions.push(std::move(FJ));
  }

  json::Value Root = json::Value::object();
  Root.set("schema", TournamentSchemaName);
  Root.set("version", TournamentSchemaVersion);
  Root.set("provenance", buildProvenanceToJson());
  Root.set("machine", machineToJson(Machine));
  json::Value CorpusJ = json::Value::object();
  CorpusJ.set("functions", N);
  CorpusJ.set("instructions_per_block", Opts.CorpusInsts);
  CorpusJ.set("seed", Opts.CorpusSeed);
  CorpusJ.set("source", Opts.CorpusSource);
  Root.set("corpus", std::move(CorpusJ));
  json::Value Names = json::Value::array();
  for (StrategyKind S : Strategies)
    Names.push(json::Value(strategyName(S)));
  Root.set("strategies", std::move(Names));
  json::Value OracleJ = json::Value::object();
  OracleJ.set("solved", OracleSolved);
  OracleJ.set("exhausted", OracleExhausted);
  OracleJ.set("infeasible", OracleInfeasible);
  OracleJ.set("failed", OracleFailed);
  Root.set("oracle", std::move(OracleJ));
  json::Value Aggregate = json::Value::array();
  for (unsigned S = 0; S < K; ++S) {
    if (S == OracleSlot)
      continue;
    const Tally &T = Tallies[S];
    json::Value AJ = json::Value::object();
    AJ.set("strategy", strategyName(Strategies[S]));
    AJ.set("compared", T.Compared);
    AJ.set("optimal", T.Optimal);
    AJ.set("suboptimal", T.Suboptimal);
    AJ.set("beats_oracle", T.BeatsOracle);
    AJ.set("spilled", T.Spilled);
    AJ.set("failures", T.Failures);
    AJ.set("spill_free", T.SpillFree);
    AJ.set("cycle_gap", T.CycleGap);
    AJ.set("max_cycle_gap", T.MaxCycleGap);
    AJ.set("spill_gap", T.SpillGap);
    AJ.set("false_dep_gap", T.FalseDepGap);
    Aggregate.push(std::move(AJ));
  }
  Root.set("aggregate", std::move(Aggregate));
  Root.set("functions", std::move(Functions));
  return Root;
}

void pira::printTournamentSummary(const json::Value &Report,
                                  std::ostream &OS) {
  const json::Value *OracleJ = Report.find("oracle");
  const json::Value *CorpusJ = Report.find("corpus");
  const json::Value *Aggregate = Report.find("aggregate");
  if (OracleJ == nullptr || CorpusJ == nullptr || Aggregate == nullptr ||
      !Aggregate->isArray())
    return;
  auto countOf = [](const json::Value *Obj, const char *Key) -> int64_t {
    const json::Value *V = Obj == nullptr ? nullptr : Obj->find(Key);
    return V != nullptr && V->isInt() ? V->asInt() : 0;
  };
  OS << "tournament: " << countOf(CorpusJ, "functions")
     << " functions; oracle solved " << countOf(OracleJ, "solved")
     << ", exhausted " << countOf(OracleJ, "exhausted") << ", infeasible "
     << countOf(OracleJ, "infeasible") << ", failed "
     << countOf(OracleJ, "failed") << "\n";
  OS << std::left << std::setw(18) << "strategy" << std::right
     << std::setw(9) << "compared" << std::setw(9) << "optimal"
     << std::setw(11) << "suboptimal" << std::setw(9) << "spilled"
     << std::setw(9) << "beats" << std::setw(10) << "cycle+"
     << std::setw(8) << "spill+" << std::setw(9) << "fdep+" << "\n";
  for (const json::Value &Row : Aggregate->elements()) {
    const json::Value *Name = Row.find("strategy");
    OS << std::left << std::setw(18)
       << (Name != nullptr && Name->isString() ? Name->asString() : "?")
       << std::right << std::setw(9) << countOf(&Row, "compared")
       << std::setw(9) << countOf(&Row, "optimal") << std::setw(11)
       << countOf(&Row, "suboptimal") << std::setw(9)
       << countOf(&Row, "spilled") << std::setw(9)
       << countOf(&Row, "beats_oracle") << std::setw(10)
       << countOf(&Row, "cycle_gap") << std::setw(8)
       << countOf(&Row, "spill_gap") << std::setw(9)
       << countOf(&Row, "false_dep_gap") << "\n";
  }
}
