//===- pipeline/Oracle.h - Exact branch-and-bound strategy ------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The exact oracle over the joint schedule + allocation space: a
/// branch-and-bound search that, for a single-block function, finds a
/// spill-free schedule of provably minimum makespan among all schedules
/// for which a K-register allocation exists, then materializes the code
/// (reorder + left-edge renaming) and the schedule. It is the ground
/// truth the heuristic-gap tournament and the differential property
/// tests measure the Section-4 strategies against (ROADMAP item 3; the
/// combinatorial line of Unison, arXiv:1804.02452).
///
/// Formulation (see DESIGN.md §9 for the full argument):
///
///   * The search enumerates cycle-by-cycle issue sets over the symbolic
///     block's schedule graph Gs — exactly the legal schedules, since
///     symbolic code has no anti/output register edges.
///   * Issue sets respect issue width and per-class unit counts, and a
///     register-feasibility check: an issue set is admitted only if some
///     within-cycle order (0-latency edges respected) keeps the number
///     of simultaneously-live values at or under K. Under read-before-
///     write cycle semantics this check is exact — for a fixed schedule
///     of one block, live ranges are intervals along the issue order,
///     so minimum registers equals peak simultaneous liveness and the
///     left-edge greedy achieves it.
///   * Admissible lower bounds prune: the critical path (height over
///     Gs's latencies) and per-unit-class resource floors
///     ceil(remaining / units). A per-instruction pressure floor
///     (an instruction's operands are all live when it issues) rejects
///     provably unallocatable blocks before any search.
///   * Dominance memoization prunes revisits: per scheduled-instruction
///     bitmask the search keeps Pareto-minimal (cycle, ready-times)
///     entries and cuts any state pointwise no better than a stored one.
///   * The search is budgeted and cooperative: it spends at most
///     NodeBudget search nodes and polls the batch driver's watchdog
///     deadline, so a blowup degrades cleanly down the existing ladder
///     (SearchExhausted is not ladder-fatal) instead of hanging.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_PIPELINE_ORACLE_H
#define PIRA_PIPELINE_ORACLE_H

#include "support/Status.h"

#include <cstdint>

namespace pira {

class Function;
class MachineModel;
struct PipelineResult;

/// Tunables of the exact search. Defaults keep the oracle inside its
/// feasible envelope (single blocks up to ~30 instructions).
struct OracleOptions {
  /// Largest single-block instruction count the oracle attempts; bigger
  /// inputs fail fast with SearchExhausted and fall down the ladder.
  /// Hard-capped at 64 (the scheduled-set bitmask is one word).
  unsigned MaxInstructions = 30;

  /// Search-node budget; exceeding it abandons the proof with
  /// SearchExhausted. 0 means unlimited (tests only — an adversarial
  /// block can make the exact search take effectively forever).
  uint64_t NodeBudget = 2'000'000;
};

/// Runs the exact search on \p Input for \p Machine. On success fills
/// \p Out: Final (allocated, reordered to the optimal schedule),
/// SymbolicTwin (same order, symbolic registers — the false-dep
/// checker's twin), Sched (the optimal cycle assignment; the caller must
/// NOT re-run the list scheduler over it), RegistersUsed, StaticCycles,
/// and zero spill fields, and returns Ok.
///
/// Failure Statuses:
///   * SearchExhausted — input out of scope (multi-block, too large) or
///     the node budget / a cooperative deadline ran out before the
///     search finished. Not fatal to the degradation ladder.
///   * AllocFailure — proof of infeasibility: no spill-free schedule of
///     this block fits in the machine's registers.
Status oracleCompile(const Function &Input, const MachineModel &Machine,
                     const OracleOptions &Opts, PipelineResult &Out);

} // namespace pira

#endif // PIRA_PIPELINE_ORACLE_H
