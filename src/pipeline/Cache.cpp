//===- pipeline/Cache.cpp - Content-addressed compilation cache -----------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Cache.h"

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "machine/MachineConfig.h"
#include "machine/MachineModel.h"
#include "pipeline/Report.h"
#include "support/FaultInjection.h"
#include "support/Hash.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

using namespace pira;

PIRA_STAT(NumCacheMemoryHits, "Cache hits served from the in-memory tier");
PIRA_STAT(NumCacheDiskHits, "Cache hits served from the on-disk tier");
PIRA_STAT(NumCacheMisses, "Cache lookups that found no usable entry");
PIRA_STAT(NumCacheInserts, "Cache entries inserted");
PIRA_STAT(NumCacheCorruptEntries,
          "On-disk cache entries rejected as corrupt (treated as misses)");
PIRA_STAT(NumCacheWriteFailures, "Cache entries that failed to land on disk");
PIRA_STAT(NumCacheVerifyMismatches,
          "Verify-mode recompiles that did not match the cached entry");
PIRA_STAT(NumCacheRemoteHits,
          "Cache hits served (and verified) from the remote tier");
PIRA_STAT(NumCacheRemoteQuarantined,
          "Remote cache entries quarantined by integrity checks");
PIRA_STAT(NumCacheRemoteBreakerTrips,
          "Remote cache circuit-breaker transitions to open");
PIRA_STAT(NumCacheTrimmedEntries,
          "On-disk cache entries evicted by the size bound");

PIRA_HIST(CacheLookupLatency,
          "One cache lookup: memory probe, and the disk read when it "
          "misses there");

const char *pira::cacheModeName(CacheMode Mode) {
  switch (Mode) {
  case CacheMode::Off:
    return "off";
  case CacheMode::On:
    return "on";
  case CacheMode::Verify:
    return "verify";
  }
  return "unknown";
}

Expected<CacheMode> pira::cacheModeFromName(std::string_view Name) {
  if (Name == "off")
    return CacheMode::Off;
  if (Name == "on")
    return CacheMode::On;
  if (Name == "verify")
    return CacheMode::Verify;
  return Status::error(ErrorCode::InvalidArgument, "cache",
                       "unknown cache mode '" + std::string(Name) +
                           "' (expected off, on, or verify)");
}

namespace {

/// Locale-independent shortest-round-trip rendering of \p D for the key
/// blob (PinterOptions carries doubles).
std::string formatDoubleForKey(double D) {
  char Buf[40];
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
  auto [Ptr, Ec] = std::to_chars(Buf, Buf + sizeof(Buf), D);
  (void)Ec;
  return std::string(Buf, Ptr);
#else
  std::snprintf(Buf, sizeof(Buf), "%.17g", D);
  for (char *P = Buf; *P; ++P)
    if (*P == ',')
      *P = '.';
  return Buf;
#endif
}

} // namespace

std::string pira::computeCacheKey(const Function &Input,
                                  const MachineModel &Machine,
                                  const BatchOptions &Opts) {
  PIRA_TIME_SCOPE("cache/key");
  hash::Sha256 H;
  // Length-framed fields: no concatenation of two different field lists
  // can produce the same byte stream.
  auto Field = [&H](std::string_view Tag, std::string_view Value) {
    H.update(Tag);
    H.update(":");
    H.update(std::to_string(Value.size()));
    H.update(":");
    H.update(Value);
    H.update("\n");
  };
  Field("format", std::string(CacheSchemaName) + "/" +
                      std::to_string(CacheSchemaVersion));
  Field("ir", functionToString(Input));
  Field("machine", machineModelToString(Machine));
  Field("strategy", strategyName(Opts.Strategy));
  Field("pinter.interference-weight",
        formatDoubleForKey(Opts.Pinter.InterferenceWeight));
  Field("pinter.parallel-weight",
        formatDoubleForKey(Opts.Pinter.ParallelWeight));
  Field("pinter.pre-schedule", Opts.Pinter.PreSchedule ? "1" : "0");
  Field("pinter.use-regions", Opts.Pinter.UseRegions ? "1" : "0");
  Field("pinter.max-rounds", std::to_string(Opts.Pinter.MaxRounds));
  Field("oracle.max-instructions",
        std::to_string(Opts.Oracle.MaxInstructions));
  Field("oracle.node-budget", std::to_string(Opts.Oracle.NodeBudget));
  Field("budget.max-instructions",
        std::to_string(Opts.Budget.MaxInstructions));
  Field("budget.max-blocks", std::to_string(Opts.Budget.MaxBlocks));
  Field("budget.deadline-ms", std::to_string(Opts.Budget.DeadlineMs));
  Field("measure", Opts.Measure ? "1" : "0");
  Field("seed", std::to_string(Opts.Seed));
  Field("degrade", Opts.Degrade ? "1" : "0");
  // Armed faults change outcomes as a function of (spec, fault key), so
  // both join the key; with the harness disarmed neither contributes and
  // identical functions share entries across batch positions.
  std::string FaultSpec = faultinject::currentSpec();
  Field("fault.spec", FaultSpec);
  if (!FaultSpec.empty())
    Field("fault.key", std::to_string(faultinject::currentKey()));
  return H.hexDigest();
}

json::Value pira::encodeCacheEntry(const PipelineResult &R,
                                   const std::string &Key) {
  json::Value Entry = json::Value::object();
  Entry.set("schema", CacheSchemaName);
  Entry.set("version", CacheSchemaVersion);
  Entry.set("key", Key);
  Entry.set("final", functionToString(R.Final));
  Entry.set("symbolic", functionToString(R.SymbolicTwin));
  json::Value Sched = json::Value::array();
  for (const BlockSchedule &B : R.Sched.Blocks) {
    json::Value One = json::Value::object();
    One.set("makespan", B.Makespan);
    json::Value Cycles = json::Value::array();
    for (unsigned C : B.CycleOf)
      Cycles.push(C);
    One.set("cycles", std::move(Cycles));
    Sched.push(std::move(One));
  }
  Entry.set("schedule", std::move(Sched));
  Entry.set("pipeline", pipelineResultToJson(R));
  return Entry;
}

namespace {

/// Reads an unsigned integer member of \p Obj; false when absent or not
/// a non-negative integer.
bool readUnsigned(const json::Value &Obj, const char *Name, uint64_t &Out) {
  const json::Value *V = Obj.find(Name);
  if (V == nullptr || !V->isInt() || V->asInt() < 0)
    return false;
  Out = static_cast<uint64_t>(V->asInt());
  return true;
}

Status corrupt(const std::string &What) {
  return Status::error(ErrorCode::ParseError, "cache",
                       "corrupt cache entry: " + What);
}

} // namespace

Expected<PipelineResult> pira::decodeCacheEntry(const json::Value &Entry) {
  if (!Entry.isObject())
    return corrupt("not a JSON object");
  const json::Value *Schema = Entry.find("schema");
  const json::Value *Version = Entry.find("version");
  if (Schema == nullptr || !Schema->isString() ||
      Schema->asString() != CacheSchemaName)
    return corrupt("wrong schema");
  if (Version == nullptr || !Version->isInt() ||
      Version->asInt() != CacheSchemaVersion)
    return corrupt("wrong version");

  const json::Value *Final = Entry.find("final");
  const json::Value *Symbolic = Entry.find("symbolic");
  const json::Value *Sched = Entry.find("schedule");
  const json::Value *Pipe = Entry.find("pipeline");
  if (Final == nullptr || !Final->isString() || Symbolic == nullptr ||
      !Symbolic->isString() || Sched == nullptr || !Sched->isArray() ||
      Pipe == nullptr || !Pipe->isObject())
    return corrupt("missing field");

  PipelineResult R;
  Expected<Function> F = parseFunctionEx(Final->asString(), "<cache:final>");
  if (!F)
    return corrupt("final IR does not parse (" + F.status().message() + ")");
  R.Final = F.take();
  Expected<Function> Twin =
      parseFunctionEx(Symbolic->asString(), "<cache:symbolic>");
  if (!Twin)
    return corrupt("symbolic IR does not parse (" + Twin.status().message() +
                   ")");
  R.SymbolicTwin = Twin.take();

  if (Sched->size() != R.Final.numBlocks())
    return corrupt("schedule block count mismatch");
  for (unsigned B = 0; B != R.Final.numBlocks(); ++B) {
    const json::Value &One = Sched->elements()[B];
    uint64_t Makespan = 0;
    if (!One.isObject() || !readUnsigned(One, "makespan", Makespan))
      return corrupt("bad schedule block");
    const json::Value *Cycles = One.find("cycles");
    if (Cycles == nullptr || !Cycles->isArray() ||
        Cycles->size() != R.Final.block(B).size())
      return corrupt("schedule length mismatch");
    BlockSchedule BS;
    BS.Makespan = static_cast<unsigned>(Makespan);
    BS.CycleOf.reserve(Cycles->size());
    for (const json::Value &C : Cycles->elements()) {
      if (!C.isInt() || C.asInt() < 0 ||
          static_cast<uint64_t>(C.asInt()) >= Makespan)
        return corrupt("schedule cycle out of range");
      BS.CycleOf.push_back(static_cast<unsigned>(C.asInt()));
    }
    R.Sched.Blocks.push_back(std::move(BS));
  }

  const json::Value *Success = Pipe->find("success");
  if (Success == nullptr || !Success->isBool() || !Success->asBool())
    return corrupt("entry is not a successful compile");
  uint64_t U = 0;
  auto ReadField = [&](const char *Name, auto &Out) {
    if (!readUnsigned(*Pipe, Name, U))
      return false;
    Out = static_cast<std::remove_reference_t<decltype(Out)>>(U);
    return true;
  };
  const json::Value *Sem = Pipe->find("semantics_preserved");
  if (!ReadField("registers_used", R.RegistersUsed) ||
      !ReadField("spilled_webs", R.SpilledWebs) ||
      !ReadField("spill_instructions", R.SpillInstructions) ||
      !ReadField("false_deps", R.FalseDeps) ||
      !ReadField("anti_ordering_losses", R.AntiOrderingLosses) ||
      !ReadField("parallel_edges_dropped", R.ParallelEdgesDropped) ||
      !ReadField("static_cycles", R.StaticCycles) ||
      !ReadField("dyn_cycles", R.DynCycles) ||
      !ReadField("dyn_instructions", R.DynInstructions) || Sem == nullptr ||
      !Sem->isBool())
    return corrupt("bad pipeline stats");
  R.SemanticsPreserved = Sem->asBool();
  R.Success = true;
  return R;
}

//===----------------------------------------------------------------------===//
// RemoteCacheTier
//===----------------------------------------------------------------------===//

namespace {

/// splitmix64 finalizer: a cheap, well-mixed hash for the backoff
/// jitter. Deterministic in its inputs, so two runs with the same seed
/// back off identically — and two clients with different seeds do not.
uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e9b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

/// Jittered backoff before attempt \p Attempt (2-based): uniform in
/// [base/2, base] where base = min(BackoffMs << (Attempt-2), cap).
/// Half the window is kept as a floor so a retry is never immediate.
unsigned jitteredBackoffMs(const RemoteCacheOptions &Opts, unsigned Attempt,
                           uint64_t Salt) {
  unsigned Shift = Attempt >= 2 ? Attempt - 2 : 0;
  uint64_t Base = Shift >= 32 ? Opts.BackoffCapMs
                              : std::min<uint64_t>(
                                    static_cast<uint64_t>(Opts.BackoffMs)
                                        << Shift,
                                    Opts.BackoffCapMs);
  if (Base == 0)
    return 0;
  uint64_t Span = Base - Base / 2;
  uint64_t R = mix64(Opts.JitterSeed ^ mix64(Salt ^ Attempt));
  return static_cast<unsigned>(Base / 2 + (Span == 0 ? 0 : R % (Span + 1)));
}

} // namespace

RemoteCacheTier::RemoteCacheTier(std::unique_ptr<RemoteCacheBackend> Backend,
                                 RemoteCacheOptions Opts)
    : Backend(std::move(Backend)), Opts(Opts) {}

const char *RemoteCacheTier::breakerName(Breaker B) {
  switch (B) {
  case Breaker::Closed:
    return "closed";
  case Breaker::Open:
    return "open";
  case Breaker::HalfOpen:
    return "half-open";
  }
  return "unknown";
}

bool RemoteCacheTier::admitLocked(uint64_t NowNs) {
  switch (Tally.State) {
  case Breaker::Closed:
    return true;
  case Breaker::Open: {
    uint64_t CooldownNs =
        static_cast<uint64_t>(Opts.BreakerCooldownMs) * 1000000ull;
    if (NowNs - OpenedAtNs < CooldownNs)
      return false;
    // Cooldown over: this operation becomes the half-open probe.
    Tally.State = Breaker::HalfOpen;
    ProbeInFlight = true;
    return true;
  }
  case Breaker::HalfOpen:
    if (ProbeInFlight)
      return false;
    ProbeInFlight = true;
    return true;
  }
  return false;
}

void RemoteCacheTier::recordSuccess() {
  std::lock_guard<std::mutex> Lock(StateMutex);
  ConsecutiveFailures = 0;
  ProbeInFlight = false;
  Tally.State = Breaker::Closed;
}

void RemoteCacheTier::recordFailure() {
  std::lock_guard<std::mutex> Lock(StateMutex);
  ++ConsecutiveFailures;
  bool Trip = false;
  if (Tally.State == Breaker::HalfOpen) {
    // The probe failed: straight back to open, cooldown restarts.
    ProbeInFlight = false;
    Trip = true;
  } else if (Tally.State == Breaker::Closed &&
             ConsecutiveFailures >= Opts.BreakerThreshold) {
    Trip = true;
  }
  if (Trip) {
    Tally.State = Breaker::Open;
    OpenedAtNs = telemetry::monotonicNowNs();
    ++Tally.BreakerTrips;
    ++NumCacheRemoteBreakerTrips;
  }
}

template <typename OpFn>
bool RemoteCacheTier::runOp(const std::string &Key, OpFn &&Op) {
  {
    std::lock_guard<std::mutex> Lock(StateMutex);
    if (!admitLocked(telemetry::monotonicNowNs())) {
      ++Tally.BreakerSkipped;
      return false;
    }
  }
  bool Succeeded = false;
  for (unsigned Attempt = 1;
       Attempt <= std::max(1u, Opts.MaxAttempts) && !Succeeded; ++Attempt) {
    if (Attempt > 1) {
      unsigned Ms = jitteredBackoffMs(Opts, Attempt, Key.size());
      if (Ms != 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
    }
    {
      std::lock_guard<std::mutex> Lock(BackendMutex);
      Succeeded = Op();
    }
    if (!Succeeded) {
      std::lock_guard<std::mutex> Lock(StateMutex);
      ++Tally.TransportFailures;
    }
  }
  if (Succeeded)
    recordSuccess();
  else
    recordFailure();
  return Succeeded;
}

std::shared_ptr<const json::Value>
RemoteCacheTier::lookup(const std::string &Key, std::string *TextOut) {
  PIRA_TIME_SCOPE("cache/remote-lookup");
  // Single-flight: the first thread in becomes the leader; every
  // concurrent identical lookup waits on its flight instead of sending
  // a duplicate request down one serialized connection.
  std::shared_ptr<Flight> F;
  {
    std::unique_lock<std::mutex> Lock(FlightMutex);
    auto It = Flights.find(Key);
    if (It != Flights.end()) {
      F = It->second;
      {
        std::lock_guard<std::mutex> SLock(StateMutex);
        ++Tally.Lookups;
        ++Tally.Collapsed;
      }
      FlightCv.wait(Lock, [&] { return F->Done; });
      if (TextOut != nullptr && F->Entry)
        *TextOut = F->Text;
      return F->Entry;
    }
    F = std::make_shared<Flight>();
    Flights.emplace(Key, F);
  }
  {
    std::lock_guard<std::mutex> Lock(StateMutex);
    ++Tally.Lookups;
  }

  RemoteCacheHit Hit;
  bool Transported = runOp(Key, [&] {
    Expected<RemoteCacheHit> R = Backend->lookup(Key, Opts.OpDeadlineMs);
    if (!R)
      return false;
    Hit = R.take();
    return true;
  });

  std::shared_ptr<const json::Value> Result;
  std::string Text;
  if (Transported && Hit.Found) {
    // Integrity gauntlet: digest over the exact received bytes, then a
    // structural parse, then a full decode, then the self-identifying
    // key. Anything short of all four is quarantine — counted, never
    // used, and indistinguishable from a miss to the caller.
    bool Verified = false;
    if (hash::Sha256::hashHex(Hit.EntryText) == Hit.Digest) {
      json::Value Parsed;
      std::string Error;
      if (json::parse(Hit.EntryText, Parsed, Error)) {
        auto Entry = std::make_shared<const json::Value>(std::move(Parsed));
        const json::Value *K = Entry->find("key");
        if (K != nullptr && K->isString() && K->asString() == Key &&
            decodeCacheEntry(*Entry).ok()) {
          Result = std::move(Entry);
          Text = Hit.EntryText;
          Verified = true;
        }
      }
    }
    std::lock_guard<std::mutex> Lock(StateMutex);
    if (Verified) {
      ++Tally.Hits;
      ++NumCacheRemoteHits;
    } else {
      ++Tally.Quarantined;
      ++NumCacheRemoteQuarantined;
    }
  } else if (Transported) {
    std::lock_guard<std::mutex> Lock(StateMutex);
    ++Tally.Misses;
  }

  {
    std::lock_guard<std::mutex> Lock(FlightMutex);
    F->Entry = Result;
    F->Text = Text;
    F->Done = true;
    Flights.erase(Key);
  }
  FlightCv.notify_all();
  if (TextOut != nullptr && Result)
    *TextOut = Text;
  return Result;
}

void RemoteCacheTier::store(const std::string &Key,
                            const std::string &EntryText) {
  PIRA_TIME_SCOPE("cache/remote-store");
  std::string Digest = hash::Sha256::hashHex(EntryText);
  bool Acked = false;
  bool Transported = runOp(Key, [&] {
    Status S = Backend->store(Key, EntryText, Digest, Opts.OpDeadlineMs);
    if (!S.ok())
      return false;
    Acked = true;
    return true;
  });
  std::lock_guard<std::mutex> Lock(StateMutex);
  if (Transported && Acked)
    ++Tally.Stores;
  else
    ++Tally.StoreFailures;
}

RemoteCacheTier::Stats RemoteCacheTier::stats() const {
  std::lock_guard<std::mutex> Lock(StateMutex);
  return Tally;
}

json::Value RemoteCacheTier::statsToJson() const {
  Stats S = stats();
  json::Value Out = json::Value::object();
  Out.set("backend", Backend->describe());
  Out.set("lookups", S.Lookups);
  Out.set("hits", S.Hits);
  Out.set("misses", S.Misses);
  Out.set("stores", S.Stores);
  Out.set("store_failures", S.StoreFailures);
  Out.set("transport_failures", S.TransportFailures);
  Out.set("quarantined", S.Quarantined);
  Out.set("breaker", breakerName(S.State));
  Out.set("breaker_trips", S.BreakerTrips);
  Out.set("breaker_skipped", S.BreakerSkipped);
  Out.set("collapsed", S.Collapsed);
  return Out;
}

//===----------------------------------------------------------------------===//
// CompilationCache
//===----------------------------------------------------------------------===//

CompilationCache::CompilationCache(CacheMode Mode, std::string DiskDir)
    : Mode(Mode), DiskDir(std::move(DiskDir)) {}

void CompilationCache::attachRemote(std::unique_ptr<RemoteCacheBackend> Backend,
                                    RemoteCacheOptions RemoteOpts) {
  Remote = std::make_unique<RemoteCacheTier>(std::move(Backend), RemoteOpts);
}

std::string CompilationCache::filePathFor(const std::string &Key) const {
  if (DiskDir.empty())
    return std::string();
  return DiskDir + "/" + Key + ".json";
}

std::optional<PipelineResult>
CompilationCache::lookup(const std::string &Key, std::string *SerializedOut) {
  PIRA_TIME_SCOPE("cache/lookup");
  telemetry::HistTimer Latency(CacheLookupLatency);
  std::shared_ptr<const json::Value> Entry;
  bool FromRemote = false;
  if (Remote != nullptr) {
    // Remote first: the daemon is the shared source of truth, and every
    // one of its failure modes (dead, slow, tripped breaker, garbage)
    // reads as "no entry" here — the top rung of the degradation
    // ladder. The tier already verified digest, decode, and key.
    Entry = Remote->lookup(Key);
    FromRemote = Entry != nullptr;
  }
  if (!Entry) {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Memory.find(Key);
    if (It != Memory.end())
      Entry = It->second;
  }
  bool FromDisk = false;
  if (!Entry) {
    std::string Path = filePathFor(Key);
    std::ifstream In(Path);
    if (Path.empty() || !In) {
      std::lock_guard<std::mutex> Lock(Mutex);
      ++Tally.Misses;
      ++NumCacheMisses;
      return std::nullopt;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    json::Value Parsed;
    std::string Error;
    if (!json::parse(SS.str(), Parsed, Error)) {
      std::lock_guard<std::mutex> Lock(Mutex);
      ++Tally.CorruptEntries;
      ++NumCacheCorruptEntries;
      ++Tally.Misses;
      ++NumCacheMisses;
      return std::nullopt;
    }
    Entry = std::make_shared<const json::Value>(std::move(Parsed));
    FromDisk = true;
  }

  Expected<PipelineResult> Decoded = decodeCacheEntry(*Entry);
  if (!Decoded) {
    // Structurally broken (or truncated mid-JSON but still parsable)
    // entries read as misses; a recompile will overwrite them.
    std::lock_guard<std::mutex> Lock(Mutex);
    if (FromDisk) {
      ++Tally.CorruptEntries;
      ++NumCacheCorruptEntries;
    } else if (!FromRemote) {
      Memory.erase(Key);
    }
    ++Tally.Misses;
    ++NumCacheMisses;
    return std::nullopt;
  }

  if (SerializedOut != nullptr)
    *SerializedOut = Entry->toString(-1);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (FromRemote) {
      // Promote to the memory tier only; the disk tier stays what local
      // compiles wrote, so a flaky remote cannot churn it.
      Memory.emplace(Key, Entry);
      ++Tally.RemoteHits;
    } else if (FromDisk) {
      Memory.emplace(Key, Entry);
      ++Tally.DiskHits;
      ++NumCacheDiskHits;
    } else {
      ++Tally.MemoryHits;
      ++NumCacheMemoryHits;
    }
  }
  return Decoded.take();
}

void CompilationCache::insert(const std::string &Key,
                              const PipelineResult &R) {
  PIRA_TIME_SCOPE("cache/insert");
  auto Entry =
      std::make_shared<const json::Value>(encodeCacheEntry(R, Key));
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Memory[Key] = Entry;
    ++Tally.Inserts;
    ++NumCacheInserts;
  }
  std::string Path = filePathFor(Key);
  if (Path.empty()) {
    // Memory-only locally, but still publish to the shared tier.
    if (Remote != nullptr)
      Remote->store(Key, Entry->toString(-1));
    return;
  }

  // One file per key, written to a unique temp name in the same
  // directory, fsync'd, and renamed into place: readers see either no
  // entry or a complete one, and concurrent writers of the same key
  // race to identical content. The fsync before the rename matters —
  // without it a power loss can leave the *renamed* file truncated,
  // which is exactly the torn entry the atomic rename exists to
  // prevent. (Truncated entries still read as misses, but durability
  // should not depend on that backstop.) The directory fsync makes the
  // rename itself durable. Failures degrade to memory-only (counted).
  static std::atomic<uint64_t> TempCounter{0};
  std::error_code Ec;
  std::filesystem::create_directories(DiskDir, Ec);
  std::string Temp = Path + ".tmp." +
                     std::to_string(TempCounter.fetch_add(1)) + "." +
                     std::to_string(reinterpret_cast<uintptr_t>(this));
  std::string Payload = Entry->toString(0) + "\n";
  bool Ok = false;
  int Fd = ::open(Temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd >= 0) {
    size_t Off = 0;
    Ok = true;
    while (Off < Payload.size()) {
      ssize_t N = ::write(Fd, Payload.data() + Off, Payload.size() - Off);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        Ok = false;
        break;
      }
      Off += static_cast<size_t>(N);
    }
    Ok = Ok && ::fsync(Fd) == 0;
    Ok = (::close(Fd) == 0) && Ok;
  }
  if (Ok) {
    std::filesystem::rename(Temp, Path, Ec);
    Ok = !Ec;
  }
  if (Ok) {
    int DirFd = ::open(DiskDir.c_str(), O_RDONLY);
    if (DirFd >= 0) {
      ::fsync(DirFd);
      ::close(DirFd);
    }
    std::lock_guard<std::mutex> Lock(Mutex);
    WrittenKeys.insert(Key);
    trimDiskLocked();
  } else {
    std::filesystem::remove(Temp, Ec);
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Tally.WriteFailures;
    ++NumCacheWriteFailures;
  }

  // Best-effort publication to the shared tier, after the local tiers
  // are safe: a store that never lands only costs other clients a
  // recompile, never this one.
  if (Remote != nullptr)
    Remote->store(Key, Entry->toString(-1));
}

void CompilationCache::trimDiskLocked() {
  if (DiskDir.empty() || DiskLimitBytes == 0)
    return;
  namespace fs = std::filesystem;
  struct DiskEntry {
    int64_t MtimeTicks;
    std::string Name;
    uint64_t Size;
  };
  std::vector<DiskEntry> Entries;
  uint64_t Total = 0;
  std::error_code Ec;
  fs::directory_iterator It(DiskDir, Ec);
  if (Ec)
    return;
  for (const fs::directory_entry &DE : It) {
    std::error_code E2;
    if (!DE.is_regular_file(E2) || E2)
      continue;
    std::string Name = DE.path().filename().string();
    // In-flight temp files belong to a concurrent writer; only settled
    // "<key>.json" entries are trim candidates.
    if (Name.size() < 6 || Name.substr(Name.size() - 5) != ".json")
      continue;
    uint64_t Size = DE.file_size(E2);
    if (E2)
      continue;
    auto Mtime = DE.last_write_time(E2);
    if (E2)
      continue;
    Total += Size;
    Entries.push_back(
        {static_cast<int64_t>(Mtime.time_since_epoch().count()),
         std::move(Name), Size});
  }
  if (Total <= DiskLimitBytes)
    return;
  // Oldest first; the name breaks mtime ties so the order is total and
  // two racing trimmers pick the same victims.
  std::sort(Entries.begin(), Entries.end(),
            [](const DiskEntry &A, const DiskEntry &B) {
              return A.MtimeTicks != B.MtimeTicks ? A.MtimeTicks < B.MtimeTicks
                                                  : A.Name < B.Name;
            });
  for (const DiskEntry &E : Entries) {
    if (Total <= DiskLimitBytes)
      break;
    std::string Key = E.Name.substr(0, E.Name.size() - 5);
    // Never evict what this instance wrote: the running batch (or a
    // Verify pass right behind it) may still be counting on it.
    if (WrittenKeys.count(Key) != 0)
      continue;
    std::error_code E3;
    if (fs::remove(DiskDir + "/" + E.Name, E3) && !E3) {
      Total -= E.Size;
      ++Tally.TrimmedEntries;
      ++NumCacheTrimmedEntries;
    }
  }
}

void CompilationCache::noteVerifyMismatch() {
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Tally.VerifyMismatches;
  ++NumCacheVerifyMismatches;
}

CompilationCache::Stats CompilationCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Tally;
}

json::Value CompilationCache::statsToJson() const {
  Stats S = stats();
  json::Value Out = json::Value::object();
  Out.set("mode", cacheModeName(Mode));
  Out.set("disk", !DiskDir.empty());
  Out.set("memory_hits", S.MemoryHits);
  Out.set("disk_hits", S.DiskHits);
  Out.set("remote_hits", S.RemoteHits);
  Out.set("misses", S.Misses);
  Out.set("inserts", S.Inserts);
  Out.set("corrupt_entries", S.CorruptEntries);
  Out.set("write_failures", S.WriteFailures);
  Out.set("verify_mismatches", S.VerifyMismatches);
  Out.set("trimmed_entries", S.TrimmedEntries);
  uint64_t Hits = S.MemoryHits + S.DiskHits + S.RemoteHits;
  uint64_t Lookups = Hits + S.Misses;
  Out.set("hit_rate", Lookups == 0 ? 0.0
                                   : static_cast<double>(Hits) /
                                         static_cast<double>(Lookups));
  if (Remote != nullptr)
    Out.set("remote", Remote->statsToJson());
  return Out;
}
