//===- pipeline/Strategies.cpp - Phase-ordering strategies ----------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Strategies.h"

#include "analysis/Webs.h"
#include "core/FalseDepChecker.h"
#include "ir/Verifier.h"
#include "machine/MachineModel.h"
#include "regalloc/ChaitinAllocator.h"
#include "regalloc/SpillInserter.h"
#include "sched/ListScheduler.h"
#include "sched/IntegratedPrepass.h"
#include "sched/PreScheduler.h"
#include "sim/SuperscalarSim.h"
#include "support/FaultInjection.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <iterator>
#include <numeric>
#include <set>

using namespace pira;

PIRA_STAT(NumPipelineRuns, "Strategy pipelines started");
PIRA_STAT(NumPipelineFailures, "Strategy pipelines that did not succeed");

namespace {

/// The single source of truth for strategy naming: display name, an
/// optional accepted alias, and the telemetry scope label. strategyName,
/// strategyFromName (including its valid-names error text), and
/// allStrategies all read this table, so none of them can drift when a
/// strategy is added — the historical failure mode was an error message
/// that never learned about "spill-all".
struct StrategyNameRow {
  StrategyKind Kind;
  const char *Name;
  const char *Alias; ///< nullptr when the canonical name is the only one.
  const char *ScopeLabel;
};

constexpr StrategyNameRow StrategyNameTable[] = {
    {StrategyKind::AllocFirst, "alloc-first", nullptr,
     "strategy/alloc-first"},
    {StrategyKind::SchedFirst, "sched-first", nullptr,
     "strategy/sched-first"},
    {StrategyKind::IntegratedPrepass, "goodman-hsu-ips", "ips",
     "strategy/goodman-hsu-ips"},
    {StrategyKind::Combined, "combined", nullptr, "strategy/combined"},
    {StrategyKind::SpillAll, "spill-all", nullptr, "strategy/spill-all"},
    {StrategyKind::Oracle, "oracle", nullptr, "strategy/oracle"},
};

} // namespace

const char *pira::strategyName(StrategyKind Kind) {
  for (const StrategyNameRow &Row : StrategyNameTable)
    if (Row.Kind == Kind)
      return Row.Name;
  // Out-of-range enum values reach here (e.g. a bad cast); naming them
  // beats the undefined behaviour an assert leaves in release builds.
  return "unknown";
}

Expected<StrategyKind> pira::strategyFromName(std::string_view Name) {
  std::string Valid;
  for (const StrategyNameRow &Row : StrategyNameTable) {
    if (Name == Row.Name || (Row.Alias != nullptr && Name == Row.Alias))
      return Row.Kind;
    if (!Valid.empty())
      Valid += &Row == &StrategyNameTable[std::size(StrategyNameTable) - 1]
                   ? ", or "
                   : ", ";
    Valid += Row.Name;
    if (Row.Alias != nullptr)
      Valid += std::string(" (alias ") + Row.Alias + ")";
  }
  return Status::error(ErrorCode::InvalidArgument, "strategy",
                       "unknown strategy '" + std::string(Name) +
                           "' (expected " + Valid + ")");
}

const std::vector<StrategyKind> &pira::allStrategies() {
  static const std::vector<StrategyKind> All = [] {
    // Oracle first (the tournament baseline), then the heuristics from
    // most to least integrated, the safety net last.
    std::vector<StrategyKind> V = {
        StrategyKind::Oracle,     StrategyKind::Combined,
        StrategyKind::IntegratedPrepass, StrategyKind::SchedFirst,
        StrategyKind::AllocFirst, StrategyKind::SpillAll,
    };
    assert(V.size() == std::size(StrategyNameTable) &&
           "allStrategies out of sync with the name table");
    return V;
  }();
  return All;
}

/// Timer label for one strategy (PIRA_TIME_SCOPE needs a literal with
/// static lifetime).
static const char *strategyScopeName(StrategyKind Kind) {
  for (const StrategyNameRow &Row : StrategyNameTable)
    if (Row.Kind == Kind)
      return Row.ScopeLabel;
  return "strategy/unknown";
}

/// Marks \p R failed with both the legacy string and the structured
/// diagnostic.
static void fail(PipelineResult &R, ErrorCode Code, std::string Phase,
                 std::string Message) {
  R.Success = false;
  R.Error = Message;
  R.Diag = Status::error(Code, std::move(Phase), std::move(Message));
}

/// Shared tail: schedule the allocated code, count false dependences,
/// verify structure. A verification failure here leaves the dynamic
/// fields at their defaults, so the error spells out that the run died
/// before simulation — a JSON report must never show Success == false
/// with an empty (or misleading) Error. \p KeepSchedule preserves a
/// schedule the strategy already computed (the oracle's proven-optimal
/// cycle assignment must not be replaced by the list scheduler's).
static void finishPipeline(PipelineResult &R, const MachineModel &Machine,
                           bool KeepSchedule = false) {
  std::string VerifyError;
  {
    PIRA_TIME_SCOPE("verify/final");
    bool Injected = faultinject::shouldFire("verify.final");
    if (Injected || !verifyFunction(R.Final, VerifyError)) {
      if (Injected)
        VerifyError = "injected verification failure";
      fail(R, Injected ? ErrorCode::FaultInjected : ErrorCode::VerifyError,
           "verify/final",
           "final code fails verification (pipeline aborted before "
           "scheduling and simulation; dynamic counts are zero and "
           "semantics were never checked): " +
               VerifyError);
      return;
    }
  }
  faultinject::maybeThrow("sched.final");
  deadline::checkpoint();
  if (!KeepSchedule)
    R.Sched = scheduleFunction(R.Final, Machine);
  R.StaticCycles = R.Sched.totalMakespan();
  {
    PIRA_TIME_SCOPE("analysis/falsedeps");
    R.FalseDeps = static_cast<unsigned>(
        findFalseDependences(R.SymbolicTwin, R.Final, Machine).size());
    R.AntiOrderingLosses =
        countAntiOrderingLosses(R.SymbolicTwin, R.Final, Machine);
  }
}

PipelineResult pira::runStrategy(StrategyKind Kind, const Function &Input,
                                 const MachineModel &Machine,
                                 const PinterOptions &Opts,
                                 const OracleOptions &OOpts) {
  PIRA_TIME_SCOPE(strategyScopeName(Kind));
  ++NumPipelineRuns;
  PipelineResult R;
  if (Input.isAllocated()) {
    // Input-dependent precondition: a structured error, not an assert
    // that vanishes (into UB) under NDEBUG.
    fail(R, ErrorCode::InvalidArgument, "strategy",
         "strategies start from symbolic code, but @" + Input.name() +
             " is already allocated");
    ++NumPipelineFailures;
    return R;
  }
  faultinject::maybeThrow("strategy.entry");
  deadline::checkpoint();
  R.Final = Input;
  unsigned K = Machine.numPhysRegs();

  // Shared Chaitin tail of the three phase-ordered strategies; also the
  // residue coloring of SpillAll. \p Site lets the fault harness target
  // the real strategies without condemning the safety-net rung.
  auto AllocateWithChaitin = [&](const char *Site) -> bool {
    bool Injected = faultinject::shouldFire(Site);
    AllocStats Stats;
    if (!Injected)
      Stats = chaitinAllocate(R.Final, K, /*MaxRounds=*/32, &R.SymbolicTwin);
    if (!Stats.Success) {
      fail(R, Injected ? ErrorCode::FaultInjected : ErrorCode::AllocFailure,
           "alloc/chaitin",
           Injected ? "injected allocation failure"
                    : "chaitin allocation did not converge");
      return false;
    }
    R.Success = true;
    R.RegistersUsed = Stats.ColorsUsed;
    R.SpilledWebs += Stats.SpilledWebs;
    R.SpillInstructions += Stats.SpillStores + Stats.SpillLoads;
    return true;
  };

  switch (Kind) {
  case StrategyKind::AllocFirst: {
    if (!AllocateWithChaitin("alloc.chaitin"))
      return R;
    break;
  }
  case StrategyKind::SchedFirst: {
    // Aggressive pre-pass: order each block exactly as the list scheduler
    // would issue it with unlimited registers, then allocate on the
    // stretched live ranges, then re-schedule the allocated code.
    {
      PIRA_TIME_SCOPE("sched/aggressive-prepass");
      preScheduleFunction(R.Final, Machine);
      FunctionSchedule Pre = scheduleFunction(R.Final, Machine);
      for (unsigned B = 0, E = R.Final.numBlocks(); B != E; ++B)
        reorderBlockBySchedule(R.Final, B, Pre.Blocks[B]);
    }
    if (!AllocateWithChaitin("alloc.chaitin"))
      return R;
    break;
  }
  case StrategyKind::IntegratedPrepass: {
    // Goodman-Hsu: pressure-aware prepass ordering, then Chaitin.
    integratedPrepassSchedule(R.Final, Machine, K);
    if (!AllocateWithChaitin("alloc.chaitin"))
      return R;
    break;
  }
  case StrategyKind::Combined: {
    bool Injected = faultinject::shouldFire("alloc.pinter");
    PinterStats Stats;
    if (!Injected)
      Stats = pinterAllocate(R.Final, K, Machine, Opts, &R.SymbolicTwin);
    if (!Stats.Success) {
      fail(R, Injected ? ErrorCode::FaultInjected : ErrorCode::AllocFailure,
           "alloc/pinter",
           Injected ? "injected allocation failure"
                    : "combined allocation did not converge");
      return R;
    }
    R.Success = true;
    R.RegistersUsed = Stats.ColorsUsed;
    R.SpilledWebs = Stats.SpilledWebs;
    R.SpillInstructions = Stats.SpillStores + Stats.SpillLoads;
    R.ParallelEdgesDropped = Stats.ParallelEdgesDropped;
    break;
  }
  case StrategyKind::Oracle: {
    // The exact search does scheduling and allocation in one piece and
    // returns a proven-optimal cycle assignment; the shared tail must
    // keep that schedule rather than re-run the list scheduler.
    Status S = oracleCompile(Input, Machine, OOpts, R);
    if (!S.ok()) {
      R.Success = false;
      R.Error = S.message();
      R.Diag = std::move(S);
      ++NumPipelineFailures;
      return R;
    }
    R.Success = true;
    deadline::checkpoint();
    finishPipeline(R, Machine, /*KeepSchedule=*/true);
    if (!R.Success)
      ++NumPipelineFailures;
    return R;
  }
  case StrategyKind::SpillAll: {
    // The safety net: send every web to memory, then color the residue
    // of short reload/store ranges. Lives entirely in spill code, so it
    // succeeds wherever Chaitin's degenerate case (everything already
    // spilled) would — the bottom rung of the degradation ladder.
    PIRA_TIME_SCOPE("alloc/spill-all");
    {
      Webs W(R.Final);
      std::vector<unsigned> AllWebs(W.numWebs());
      std::iota(AllWebs.begin(), AllWebs.end(), 0u);
      std::set<Reg> NoSpillRegs;
      SpillCode Code = insertSpillCode(R.Final, W, AllWebs, NoSpillRegs);
      R.SpilledWebs = static_cast<unsigned>(AllWebs.size());
      R.SpillInstructions = Code.Stores + Code.Loads;
    }
    if (!AllocateWithChaitin("alloc.spillall"))
      return R;
    break;
  }
  default:
    fail(R, ErrorCode::InvalidArgument, "strategy",
         "unknown strategy kind " +
             std::to_string(static_cast<int>(Kind)));
    ++NumPipelineFailures;
    return R;
  }

  deadline::checkpoint();
  finishPipeline(R, Machine);
  if (!R.Success) {
    ++NumPipelineFailures;
    if (R.Error.empty())
      R.Error = "pipeline failed without a recorded reason";
    if (R.Diag.ok())
      R.Diag = Status::error(ErrorCode::Internal, "strategy", R.Error);
  }
  return R;
}

PipelineResult pira::runAndMeasure(StrategyKind Kind, const Function &Input,
                                   const MachineModel &Machine,
                                   const PinterOptions &Opts, uint64_t Seed,
                                   const OracleOptions &OOpts) {
  PipelineResult R = runStrategy(Kind, Input, Machine, Opts, OOpts);
  if (!R.Success)
    return R;

  // Ground truth: sequential interpretation of the *input* code.
  PIRA_TIME_SCOPE("sim/measure");
  faultinject::maybeThrow("sim.measure");
  deadline::checkpoint();
  ExecState Initial = makeInitialState(Input, Seed);
  ExecResult Ref = [&] {
    PIRA_TIME_SCOPE("sim/reference");
    return interpret(Input, Initial);
  }();
  if (!Ref.Completed) {
    ++NumPipelineFailures;
    fail(R, ErrorCode::SimFailure, "sim/reference",
         "reference interpretation failed: " + Ref.Error);
    return R;
  }

  // The final code touches the same arrays plus spillmem; build its
  // initial state from the same seed (same array contents for shared
  // arrays, spillmem zeroed).
  ExecState SimInitial = makeInitialState(R.Final, Seed);
  for (auto &[Name, Data] : SimInitial.Arrays) {
    auto It = Initial.Arrays.find(Name);
    if (It != Initial.Arrays.end())
      Data = It->second;
    else
      Data.assign(Data.size(), 0); // spill memory starts cold
  }

  SimResult Sim = simulate(R.Final, R.Sched, Machine, std::move(SimInitial));
  R.DynCycles = Sim.Cycles;
  R.DynInstructions = Sim.Instructions;
  if (!Sim.Completed) {
    ++NumPipelineFailures;
    fail(R, ErrorCode::SimFailure, "sim/measure",
         "simulation failed after " + std::to_string(R.DynInstructions) +
             " instructions: " + Sim.Error);
    return R;
  }

  // Observable outputs: every array of the original program, plus the
  // returned value. On divergence the error names the first mismatched
  // observable so reports are actionable without rerunning.
  std::string Mismatch;
  for (const auto &[Name, Data] : Ref.Final.Arrays) {
    auto It = Sim.Final.Arrays.find(Name);
    if (It == Sim.Final.Arrays.end()) {
      Mismatch = "array '" + Name + "' missing from simulated state";
      break;
    }
    if (It->second != Data) {
      Mismatch = "array '" + Name + "' contents differ";
      break;
    }
  }
  if (Mismatch.empty() && Ref.HasReturnValue != Sim.HasReturnValue)
    Mismatch = "return-value presence differs";
  if (Mismatch.empty() && Ref.HasReturnValue &&
      Ref.ReturnValue != Sim.ReturnValue)
    Mismatch = "return value differs (" + std::to_string(Ref.ReturnValue) +
               " vs " + std::to_string(Sim.ReturnValue) + ")";

  R.SemanticsPreserved = Mismatch.empty();
  if (!R.SemanticsPreserved) {
    ++NumPipelineFailures;
    fail(R, ErrorCode::SemanticsDiverged, "sim/measure",
         "semantics diverged from the sequential reference after " +
             std::to_string(R.DynInstructions) + " instructions: " +
             Mismatch);
  }
  return R;
}
