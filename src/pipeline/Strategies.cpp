//===- pipeline/Strategies.cpp - Phase-ordering strategies ----------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Strategies.h"

#include "core/FalseDepChecker.h"
#include "ir/Verifier.h"
#include "machine/MachineModel.h"
#include "regalloc/ChaitinAllocator.h"
#include "sched/ListScheduler.h"
#include "sched/IntegratedPrepass.h"
#include "sched/PreScheduler.h"
#include "sim/SuperscalarSim.h"

#include <cassert>

using namespace pira;

const char *pira::strategyName(StrategyKind Kind) {
  switch (Kind) {
  case StrategyKind::AllocFirst:
    return "alloc-first";
  case StrategyKind::SchedFirst:
    return "sched-first";
  case StrategyKind::IntegratedPrepass:
    return "goodman-hsu-ips";
  case StrategyKind::Combined:
    return "combined";
  }
  assert(false && "unknown strategy");
  return "?";
}

/// Shared tail: schedule the allocated code, count false dependences,
/// verify structure.
static void finishPipeline(PipelineResult &R, const MachineModel &Machine) {
  std::string VerifyError;
  if (!verifyFunction(R.Final, VerifyError)) {
    R.Success = false;
    R.Error = "final code fails verification: " + VerifyError;
    return;
  }
  R.Sched = scheduleFunction(R.Final, Machine);
  R.StaticCycles = R.Sched.totalMakespan();
  R.FalseDeps = static_cast<unsigned>(
      findFalseDependences(R.SymbolicTwin, R.Final, Machine).size());
  R.AntiOrderingLosses =
      countAntiOrderingLosses(R.SymbolicTwin, R.Final, Machine);
}

PipelineResult pira::runStrategy(StrategyKind Kind, const Function &Input,
                                 const MachineModel &Machine,
                                 const PinterOptions &Opts) {
  assert(!Input.isAllocated() && "strategies start from symbolic code");
  PipelineResult R;
  R.Final = Input;
  unsigned K = Machine.numPhysRegs();

  switch (Kind) {
  case StrategyKind::AllocFirst: {
    AllocStats Stats = chaitinAllocate(R.Final, K, /*MaxRounds=*/32,
                                       &R.SymbolicTwin);
    if (!Stats.Success) {
      R.Error = "chaitin allocation did not converge";
      return R;
    }
    R.Success = true;
    R.RegistersUsed = Stats.ColorsUsed;
    R.SpilledWebs = Stats.SpilledWebs;
    R.SpillInstructions = Stats.SpillStores + Stats.SpillLoads;
    break;
  }
  case StrategyKind::SchedFirst: {
    // Aggressive pre-pass: order each block exactly as the list scheduler
    // would issue it with unlimited registers, then allocate on the
    // stretched live ranges, then re-schedule the allocated code.
    preScheduleFunction(R.Final, Machine);
    FunctionSchedule Pre = scheduleFunction(R.Final, Machine);
    for (unsigned B = 0, E = R.Final.numBlocks(); B != E; ++B)
      reorderBlockBySchedule(R.Final, B, Pre.Blocks[B]);
    AllocStats Stats = chaitinAllocate(R.Final, K, /*MaxRounds=*/32,
                                       &R.SymbolicTwin);
    if (!Stats.Success) {
      R.Error = "chaitin allocation did not converge";
      return R;
    }
    R.Success = true;
    R.RegistersUsed = Stats.ColorsUsed;
    R.SpilledWebs = Stats.SpilledWebs;
    R.SpillInstructions = Stats.SpillStores + Stats.SpillLoads;
    break;
  }
  case StrategyKind::IntegratedPrepass: {
    // Goodman-Hsu: pressure-aware prepass ordering, then Chaitin.
    integratedPrepassSchedule(R.Final, Machine, K);
    AllocStats Stats = chaitinAllocate(R.Final, K, /*MaxRounds=*/32,
                                       &R.SymbolicTwin);
    if (!Stats.Success) {
      R.Error = "chaitin allocation did not converge";
      return R;
    }
    R.Success = true;
    R.RegistersUsed = Stats.ColorsUsed;
    R.SpilledWebs = Stats.SpilledWebs;
    R.SpillInstructions = Stats.SpillStores + Stats.SpillLoads;
    break;
  }
  case StrategyKind::Combined: {
    PinterStats Stats =
        pinterAllocate(R.Final, K, Machine, Opts, &R.SymbolicTwin);
    if (!Stats.Success) {
      R.Error = "combined allocation did not converge";
      return R;
    }
    R.Success = true;
    R.RegistersUsed = Stats.ColorsUsed;
    R.SpilledWebs = Stats.SpilledWebs;
    R.SpillInstructions = Stats.SpillStores + Stats.SpillLoads;
    R.ParallelEdgesDropped = Stats.ParallelEdgesDropped;
    break;
  }
  }

  finishPipeline(R, Machine);
  return R;
}

PipelineResult pira::runAndMeasure(StrategyKind Kind, const Function &Input,
                                   const MachineModel &Machine,
                                   const PinterOptions &Opts,
                                   uint64_t Seed) {
  PipelineResult R = runStrategy(Kind, Input, Machine, Opts);
  if (!R.Success)
    return R;

  // Ground truth: sequential interpretation of the *input* code.
  ExecState Initial = makeInitialState(Input, Seed);
  ExecResult Ref = interpret(Input, Initial);
  if (!Ref.Completed) {
    R.Success = false;
    R.Error = "reference interpretation failed: " + Ref.Error;
    return R;
  }

  // The final code touches the same arrays plus spillmem; build its
  // initial state from the same seed (same array contents for shared
  // arrays, spillmem zeroed).
  ExecState SimInitial = makeInitialState(R.Final, Seed);
  for (auto &[Name, Data] : SimInitial.Arrays) {
    auto It = Initial.Arrays.find(Name);
    if (It != Initial.Arrays.end())
      Data = It->second;
    else
      Data.assign(Data.size(), 0); // spill memory starts cold
  }

  SimResult Sim = simulate(R.Final, R.Sched, Machine, std::move(SimInitial));
  if (!Sim.Completed) {
    R.Success = false;
    R.Error = "simulation failed: " + Sim.Error;
    return R;
  }
  R.DynCycles = Sim.Cycles;
  R.DynInstructions = Sim.Instructions;

  // Observable outputs: every array of the original program, plus the
  // returned value.
  bool ArraysMatch = true;
  for (const auto &[Name, Data] : Ref.Final.Arrays) {
    auto It = Sim.Final.Arrays.find(Name);
    if (It == Sim.Final.Arrays.end() || It->second != Data) {
      ArraysMatch = false;
      break;
    }
  }
  R.SemanticsPreserved = ArraysMatch &&
                         Ref.HasReturnValue == Sim.HasReturnValue &&
                         (!Ref.HasReturnValue ||
                          Ref.ReturnValue == Sim.ReturnValue);
  if (!R.SemanticsPreserved) {
    R.Success = false;
    R.Error = "semantics diverged from the sequential reference";
  }
  return R;
}
