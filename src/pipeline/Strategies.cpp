//===- pipeline/Strategies.cpp - Phase-ordering strategies ----------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Strategies.h"

#include "core/FalseDepChecker.h"
#include "ir/Verifier.h"
#include "machine/MachineModel.h"
#include "regalloc/ChaitinAllocator.h"
#include "sched/ListScheduler.h"
#include "sched/IntegratedPrepass.h"
#include "sched/PreScheduler.h"
#include "sim/SuperscalarSim.h"
#include "support/Telemetry.h"

#include <cassert>

using namespace pira;

PIRA_STAT(NumPipelineRuns, "Strategy pipelines started");
PIRA_STAT(NumPipelineFailures, "Strategy pipelines that did not succeed");

const char *pira::strategyName(StrategyKind Kind) {
  switch (Kind) {
  case StrategyKind::AllocFirst:
    return "alloc-first";
  case StrategyKind::SchedFirst:
    return "sched-first";
  case StrategyKind::IntegratedPrepass:
    return "goodman-hsu-ips";
  case StrategyKind::Combined:
    return "combined";
  }
  assert(false && "unknown strategy");
  return "?";
}

/// Timer label for one strategy (PIRA_TIME_SCOPE needs a literal with
/// static lifetime).
static const char *strategyScopeName(StrategyKind Kind) {
  switch (Kind) {
  case StrategyKind::AllocFirst:
    return "strategy/alloc-first";
  case StrategyKind::SchedFirst:
    return "strategy/sched-first";
  case StrategyKind::IntegratedPrepass:
    return "strategy/goodman-hsu-ips";
  case StrategyKind::Combined:
    return "strategy/combined";
  }
  return "strategy/unknown";
}

/// Shared tail: schedule the allocated code, count false dependences,
/// verify structure. A verification failure here leaves the dynamic
/// fields at their defaults, so the error spells out that the run died
/// before simulation — a JSON report must never show Success == false
/// with an empty (or misleading) Error.
static void finishPipeline(PipelineResult &R, const MachineModel &Machine) {
  std::string VerifyError;
  {
    PIRA_TIME_SCOPE("verify/final");
    if (!verifyFunction(R.Final, VerifyError)) {
      R.Success = false;
      R.Error = "final code fails verification (pipeline aborted before "
                "scheduling and simulation; dynamic counts are zero and "
                "semantics were never checked): " +
                VerifyError;
      return;
    }
  }
  R.Sched = scheduleFunction(R.Final, Machine);
  R.StaticCycles = R.Sched.totalMakespan();
  {
    PIRA_TIME_SCOPE("analysis/falsedeps");
    R.FalseDeps = static_cast<unsigned>(
        findFalseDependences(R.SymbolicTwin, R.Final, Machine).size());
    R.AntiOrderingLosses =
        countAntiOrderingLosses(R.SymbolicTwin, R.Final, Machine);
  }
}

PipelineResult pira::runStrategy(StrategyKind Kind, const Function &Input,
                                 const MachineModel &Machine,
                                 const PinterOptions &Opts) {
  assert(!Input.isAllocated() && "strategies start from symbolic code");
  PIRA_TIME_SCOPE(strategyScopeName(Kind));
  ++NumPipelineRuns;
  PipelineResult R;
  R.Final = Input;
  unsigned K = Machine.numPhysRegs();

  switch (Kind) {
  case StrategyKind::AllocFirst: {
    AllocStats Stats = chaitinAllocate(R.Final, K, /*MaxRounds=*/32,
                                       &R.SymbolicTwin);
    if (!Stats.Success) {
      R.Error = "chaitin allocation did not converge";
      return R;
    }
    R.Success = true;
    R.RegistersUsed = Stats.ColorsUsed;
    R.SpilledWebs = Stats.SpilledWebs;
    R.SpillInstructions = Stats.SpillStores + Stats.SpillLoads;
    break;
  }
  case StrategyKind::SchedFirst: {
    // Aggressive pre-pass: order each block exactly as the list scheduler
    // would issue it with unlimited registers, then allocate on the
    // stretched live ranges, then re-schedule the allocated code.
    {
      PIRA_TIME_SCOPE("sched/aggressive-prepass");
      preScheduleFunction(R.Final, Machine);
      FunctionSchedule Pre = scheduleFunction(R.Final, Machine);
      for (unsigned B = 0, E = R.Final.numBlocks(); B != E; ++B)
        reorderBlockBySchedule(R.Final, B, Pre.Blocks[B]);
    }
    AllocStats Stats = chaitinAllocate(R.Final, K, /*MaxRounds=*/32,
                                       &R.SymbolicTwin);
    if (!Stats.Success) {
      R.Error = "chaitin allocation did not converge";
      return R;
    }
    R.Success = true;
    R.RegistersUsed = Stats.ColorsUsed;
    R.SpilledWebs = Stats.SpilledWebs;
    R.SpillInstructions = Stats.SpillStores + Stats.SpillLoads;
    break;
  }
  case StrategyKind::IntegratedPrepass: {
    // Goodman-Hsu: pressure-aware prepass ordering, then Chaitin.
    integratedPrepassSchedule(R.Final, Machine, K);
    AllocStats Stats = chaitinAllocate(R.Final, K, /*MaxRounds=*/32,
                                       &R.SymbolicTwin);
    if (!Stats.Success) {
      R.Error = "chaitin allocation did not converge";
      return R;
    }
    R.Success = true;
    R.RegistersUsed = Stats.ColorsUsed;
    R.SpilledWebs = Stats.SpilledWebs;
    R.SpillInstructions = Stats.SpillStores + Stats.SpillLoads;
    break;
  }
  case StrategyKind::Combined: {
    PinterStats Stats =
        pinterAllocate(R.Final, K, Machine, Opts, &R.SymbolicTwin);
    if (!Stats.Success) {
      R.Error = "combined allocation did not converge";
      return R;
    }
    R.Success = true;
    R.RegistersUsed = Stats.ColorsUsed;
    R.SpilledWebs = Stats.SpilledWebs;
    R.SpillInstructions = Stats.SpillStores + Stats.SpillLoads;
    R.ParallelEdgesDropped = Stats.ParallelEdgesDropped;
    break;
  }
  }

  finishPipeline(R, Machine);
  if (!R.Success) {
    ++NumPipelineFailures;
    if (R.Error.empty())
      R.Error = "pipeline failed without a recorded reason";
  }
  return R;
}

PipelineResult pira::runAndMeasure(StrategyKind Kind, const Function &Input,
                                   const MachineModel &Machine,
                                   const PinterOptions &Opts,
                                   uint64_t Seed) {
  PipelineResult R = runStrategy(Kind, Input, Machine, Opts);
  if (!R.Success)
    return R;

  // Ground truth: sequential interpretation of the *input* code.
  PIRA_TIME_SCOPE("sim/measure");
  ExecState Initial = makeInitialState(Input, Seed);
  ExecResult Ref = [&] {
    PIRA_TIME_SCOPE("sim/reference");
    return interpret(Input, Initial);
  }();
  if (!Ref.Completed) {
    R.Success = false;
    ++NumPipelineFailures;
    R.Error = "reference interpretation failed: " + Ref.Error;
    return R;
  }

  // The final code touches the same arrays plus spillmem; build its
  // initial state from the same seed (same array contents for shared
  // arrays, spillmem zeroed).
  ExecState SimInitial = makeInitialState(R.Final, Seed);
  for (auto &[Name, Data] : SimInitial.Arrays) {
    auto It = Initial.Arrays.find(Name);
    if (It != Initial.Arrays.end())
      Data = It->second;
    else
      Data.assign(Data.size(), 0); // spill memory starts cold
  }

  SimResult Sim = simulate(R.Final, R.Sched, Machine, std::move(SimInitial));
  R.DynCycles = Sim.Cycles;
  R.DynInstructions = Sim.Instructions;
  if (!Sim.Completed) {
    R.Success = false;
    ++NumPipelineFailures;
    R.Error = "simulation failed after " +
              std::to_string(R.DynInstructions) + " instructions: " +
              Sim.Error;
    return R;
  }

  // Observable outputs: every array of the original program, plus the
  // returned value. On divergence the error names the first mismatched
  // observable so reports are actionable without rerunning.
  std::string Mismatch;
  for (const auto &[Name, Data] : Ref.Final.Arrays) {
    auto It = Sim.Final.Arrays.find(Name);
    if (It == Sim.Final.Arrays.end()) {
      Mismatch = "array '" + Name + "' missing from simulated state";
      break;
    }
    if (It->second != Data) {
      Mismatch = "array '" + Name + "' contents differ";
      break;
    }
  }
  if (Mismatch.empty() && Ref.HasReturnValue != Sim.HasReturnValue)
    Mismatch = "return-value presence differs";
  if (Mismatch.empty() && Ref.HasReturnValue &&
      Ref.ReturnValue != Sim.ReturnValue)
    Mismatch = "return value differs (" + std::to_string(Ref.ReturnValue) +
               " vs " + std::to_string(Sim.ReturnValue) + ")";

  R.SemanticsPreserved = Mismatch.empty();
  if (!R.SemanticsPreserved) {
    R.Success = false;
    ++NumPipelineFailures;
    R.Error = "semantics diverged from the sequential reference after " +
              std::to_string(R.DynInstructions) + " instructions: " +
              Mismatch;
  }
  return R;
}
