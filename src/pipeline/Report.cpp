//===- pipeline/Report.cpp - Structured JSON stats reports ----------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Report.h"

#include "machine/MachineModel.h"
#include "support/Telemetry.h"

#include <fstream>
#include <iostream>

using namespace pira;

// The build system injects git SHA and build type when it can determine
// them; a bare compiler invocation still builds with the fallbacks.
#ifndef PIRA_GIT_SHA
#define PIRA_GIT_SHA "unknown"
#endif
#ifndef PIRA_BUILD_TYPE
#define PIRA_BUILD_TYPE "unknown"
#endif

json::Value pira::pipelineResultToJson(const PipelineResult &R) {
  json::Value P = json::Value::object();
  P.set("success", R.Success);
  P.set("error", R.Error);
  P.set("diagnostic", R.Diag.toJson());
  P.set("registers_used", R.RegistersUsed);
  P.set("spilled_webs", R.SpilledWebs);
  P.set("spill_instructions", R.SpillInstructions);
  P.set("false_deps", R.FalseDeps);
  P.set("anti_ordering_losses", R.AntiOrderingLosses);
  P.set("parallel_edges_dropped", R.ParallelEdgesDropped);
  P.set("static_cycles", R.StaticCycles);
  P.set("dyn_cycles", R.DynCycles);
  P.set("dyn_instructions", R.DynInstructions);
  P.set("semantics_preserved", R.SemanticsPreserved);
  return P;
}

json::Value pira::machineToJson(const MachineModel &Machine) {
  json::Value M = json::Value::object();
  M.set("name", Machine.name());
  M.set("registers", Machine.numPhysRegs());
  M.set("issue_width", Machine.issueWidth());
  return M;
}

json::Value pira::countersToJson() {
  json::Value C = json::Value::object();
  for (const telemetry::Counter *Counter : telemetry::counters()) {
    json::Value One = json::Value::object();
    One.set("value", Counter->value());
    One.set("description", Counter->description());
    C.set(Counter->name(), std::move(One));
  }
  return C;
}

json::Value pira::histogramsToJson() {
  json::Value Root = json::Value::object();
  for (const telemetry::Histogram *H : telemetry::histograms()) {
    json::Value One = json::Value::object();
    One.set("description", H->description());
    uint64_t Count = H->count();
    One.set("count", Count);
    One.set("sum_ns", H->sum());
    One.set("max_ns", H->max());
    // An empty histogram has no percentiles; omitting the keys (rather
    // than inventing a value) keeps consumers from averaging zeros in.
    if (Count != 0) {
      One.set("p50_ns", H->percentileUpperBound(50.0));
      One.set("p90_ns", H->percentileUpperBound(90.0));
      One.set("p99_ns", H->percentileUpperBound(99.0));
    }
    json::Value Buckets = json::Value::array();
    for (unsigned I = 0; I < telemetry::Histogram::NumBuckets; ++I) {
      if (uint64_t N = H->bucketCount(I)) {
        json::Value Pair = json::Value::array();
        Pair.push(static_cast<int64_t>(I));
        Pair.push(static_cast<int64_t>(N));
        Buckets.push(std::move(Pair));
      }
    }
    One.set("buckets", std::move(Buckets));
    Root.set(H->name(), std::move(One));
  }
  return Root;
}

json::Value pira::buildProvenanceToJson() {
  json::Value P = json::Value::object();
  P.set("tool", "pirac");
  P.set("tool_version", PiraVersionString);
  P.set("git_sha", PIRA_GIT_SHA);
#if defined(__clang__)
  P.set("compiler", std::string("clang ") + __clang_version__);
#elif defined(__GNUC__)
  P.set("compiler", std::string("gcc ") + __VERSION__);
#else
  P.set("compiler", "unknown");
#endif
  P.set("build_type", PIRA_BUILD_TYPE);
#ifdef NDEBUG
  P.set("ndebug", true);
#else
  P.set("ndebug", false);
#endif
  return P;
}

json::Value pira::timersToJson() {
  json::Value T = json::Value::array();
  for (const telemetry::TimerAggregate &A : telemetry::timerAggregates()) {
    json::Value One = json::Value::object();
    One.set("path", A.Path);
    One.set("calls", A.Calls);
    One.set("total_ns", A.TotalNs);
    T.push(std::move(One));
  }
  return T;
}

json::Value pira::makeStatsReport(const PipelineResult &R,
                                  const std::string &Strategy,
                                  const MachineModel &Machine) {
  json::Value Root = json::Value::object();
  Root.set("schema", StatsSchemaName);
  Root.set("version", StatsSchemaVersion);
  Root.set("provenance", buildProvenanceToJson());
  if (!Strategy.empty())
    Root.set("strategy", Strategy);
  Root.set("machine", machineToJson(Machine));
  Root.set("pipeline", pipelineResultToJson(R));
  Root.set("counters", countersToJson());
  Root.set("histograms", histogramsToJson());
  Root.set("timers", timersToJson());
  return Root;
}

bool pira::writeJsonFile(const json::Value &Report,
                         const std::string &FilePath, std::string &Error) {
  if (FilePath == "-") {
    Report.write(std::cout, 0);
    std::cout << '\n';
    std::cout.flush();
    if (!std::cout) {
      Error = "error while writing report to stdout";
      return false;
    }
    return true;
  }
  std::ofstream Out(FilePath);
  if (!Out) {
    Error = "cannot open '" + FilePath + "' for writing";
    return false;
  }
  Report.write(Out, 0);
  Out << '\n';
  if (!Out) {
    Error = "error while writing '" + FilePath + "'";
    return false;
  }
  return true;
}
