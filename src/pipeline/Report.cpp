//===- pipeline/Report.cpp - Structured JSON stats reports ----------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Report.h"

#include "machine/MachineModel.h"
#include "support/Telemetry.h"

#include <fstream>

using namespace pira;

json::Value pira::pipelineResultToJson(const PipelineResult &R) {
  json::Value P = json::Value::object();
  P.set("success", R.Success);
  P.set("error", R.Error);
  P.set("diagnostic", R.Diag.toJson());
  P.set("registers_used", R.RegistersUsed);
  P.set("spilled_webs", R.SpilledWebs);
  P.set("spill_instructions", R.SpillInstructions);
  P.set("false_deps", R.FalseDeps);
  P.set("anti_ordering_losses", R.AntiOrderingLosses);
  P.set("parallel_edges_dropped", R.ParallelEdgesDropped);
  P.set("static_cycles", R.StaticCycles);
  P.set("dyn_cycles", R.DynCycles);
  P.set("dyn_instructions", R.DynInstructions);
  P.set("semantics_preserved", R.SemanticsPreserved);
  return P;
}

json::Value pira::machineToJson(const MachineModel &Machine) {
  json::Value M = json::Value::object();
  M.set("name", Machine.name());
  M.set("registers", Machine.numPhysRegs());
  M.set("issue_width", Machine.issueWidth());
  return M;
}

json::Value pira::countersToJson() {
  json::Value C = json::Value::object();
  for (const telemetry::Counter *Counter : telemetry::counters()) {
    json::Value One = json::Value::object();
    One.set("value", Counter->value());
    One.set("description", Counter->description());
    C.set(Counter->name(), std::move(One));
  }
  return C;
}

json::Value pira::timersToJson() {
  json::Value T = json::Value::array();
  for (const telemetry::TimerAggregate &A : telemetry::timerAggregates()) {
    json::Value One = json::Value::object();
    One.set("path", A.Path);
    One.set("calls", A.Calls);
    One.set("total_ns", A.TotalNs);
    T.push(std::move(One));
  }
  return T;
}

json::Value pira::makeStatsReport(const PipelineResult &R,
                                  const std::string &Strategy,
                                  const MachineModel &Machine) {
  json::Value Root = json::Value::object();
  Root.set("schema", StatsSchemaName);
  Root.set("version", StatsSchemaVersion);
  if (!Strategy.empty())
    Root.set("strategy", Strategy);
  Root.set("machine", machineToJson(Machine));
  Root.set("pipeline", pipelineResultToJson(R));
  Root.set("counters", countersToJson());
  Root.set("timers", timersToJson());
  return Root;
}

bool pira::writeJsonFile(const json::Value &Report,
                         const std::string &FilePath, std::string &Error) {
  std::ofstream Out(FilePath);
  if (!Out) {
    Error = "cannot open '" + FilePath + "' for writing";
    return false;
  }
  Report.write(Out, 0);
  Out << '\n';
  if (!Out) {
    Error = "error while writing '" + FilePath + "'";
    return false;
  }
  return true;
}
