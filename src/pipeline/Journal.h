//===- pipeline/Journal.h - Crash-safe batch journal ------------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A resumable record of batch progress: one append-only JSONL file
/// whose first line is a header binding the journal to a specific batch
/// (a config digest plus the item count) and whose every further line
/// records one finished function — its input position, its name, the
/// full worker-protocol result document, and the isolation record.
/// Records are fsync'd as they land (and the directory is fsync'd when
/// the file is created), so after a kill -9 the journal holds exactly
/// the functions that finished.
///
/// Resume (`pirac --journal FILE --resume`) re-opens the same file:
/// the header must match the current batch's digest (a mismatched
/// journal is an error, never silently ignored — replaying results into
/// the wrong batch would be corruption), a torn trailing line (the
/// record being written when the process died) is truncated away, and
/// every surviving record's position is replayed instead of recompiled.
/// Replayed results decode through the worker protocol, so a resumed
/// run's report is byte-identical to an uninterrupted run's (modulo
/// timers and counters; see CompileOutcome::Resumed).
///
/// The digest is a SHA-256 over everything that can change a result:
/// the machine description, strategy and options, budgets, isolation
/// and retry knobs, the armed fault spec, and every item's name and
/// canonical printed IR in order. Worker count is excluded — a batch
/// may be resumed under a different --jobs value.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_PIPELINE_JOURNAL_H
#define PIRA_PIPELINE_JOURNAL_H

#include "pipeline/Batch.h"

#include <cstddef>
#include <map>
#include <mutex>
#include <string>

namespace pira {

/// Journal schema constants (header line).
inline constexpr const char *JournalSchemaName = "pira.journal";
inline constexpr int JournalSchemaVersion = 1;

/// Digest binding a journal to one batch configuration (64 hex chars).
/// Folds in the live fault-injection spec, like computeCacheKey.
std::string computeJournalDigest(const std::vector<BatchItem> &Batch,
                                 const MachineModel &Machine,
                                 const BatchOptions &Opts);

/// One batch journal, open for replay and append. Not movable (owns a
/// file descriptor and a mutex); make one per batch run.
class BatchJournal {
public:
  BatchJournal() = default;
  ~BatchJournal();
  BatchJournal(const BatchJournal &) = delete;
  BatchJournal &operator=(const BatchJournal &) = delete;

  /// Opens \p Path for this batch. With \p Resume set an existing file
  /// is validated against \p Digest / \p Items, torn trailing data is
  /// truncated away, and surviving records become replayable; a missing
  /// file starts fresh. Without \p Resume the file is created anew
  /// (truncating any previous contents). Returns an error Status on I/O
  /// failure or on a digest/item-count mismatch.
  Status open(const std::string &Path, const std::string &Digest,
              size_t Items, bool Resume);

  /// True when \p Position finished in a previous run.
  bool has(size_t Position) const;

  /// The replayable record for \p Position: its worker-protocol result
  /// document and (possibly null) isolation record. Null when absent.
  const json::Value *resultFor(size_t Position) const;
  const json::Value *isolationFor(size_t Position) const;

  /// Appends one finished function and fsyncs the record. \p Result is
  /// the worker-protocol result document; \p Isolation may be null.
  /// Thread-safe. Failures are counted and returned, never thrown.
  Status append(size_t Position, const std::string &Name,
                const json::Value &Result, const json::Value *Isolation);

  /// Records replayable after open(), i.e. functions this run skips.
  size_t resumedCount() const { return Records.size(); }

  /// Appends that failed to land since open().
  uint64_t appendFailures() const;

  const std::string &path() const { return Path; }

private:
  /// One replayed record, decomposed for cheap access.
  struct Record {
    json::Value Result;
    json::Value Isolation; ///< Null when the run was not isolated.
    bool HasIsolation = false;
  };

  int Fd = -1;
  std::string Path;
  std::map<size_t, Record> Records; ///< Replayable positions.

  mutable std::mutex Mutex; ///< Guards appends and the failure tally.
  uint64_t AppendFailures = 0;
};

} // namespace pira

#endif // PIRA_PIPELINE_JOURNAL_H
