//===- pipeline/Report.h - Structured JSON stats reports --------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-readable side of the pipeline: serializes PipelineResult,
/// the telemetry counter registry, and aggregated phase timers into one
/// JSON document with a stable, versioned schema ("pira.stats"). `pirac
/// --stats-out` and the bench binaries emit this format so
/// the perf trajectory of the repo is diffable across PRs.
///
/// Schema (version 5):
///
///   {
///     "schema": "pira.stats", "version": 5,
///     "provenance": {"tool", "tool_version", "git_sha", "compiler",
///                    "build_type", "ndebug"},
///     "strategy": "combined",            // when known
///     "machine": {"name": ..., "registers": N, "issue_width": W},
///     "pipeline": { ...every PipelineResult scalar field...,
///                   "diagnostic": {"code", "phase", "message",
///                                  "context": [...]} },
///     "counters": {"NumFoo": {"value": N, "description": ...}, ...},
///     "histograms": {"FooLatency": {"description", "count", "sum_ns",
///                    "max_ns", "p50_ns", "p90_ns", "p99_ns",
///                    "buckets": [[i, n], ...]}, ...},
///     "timers": [{"path": ..., "calls": N, "total_ns": N}, ...]
///   }
///
/// Batch reports (makeBatchStatsReport) replace "pipeline" with a
/// "functions" array and add "batch" aggregates plus "failures" and
/// "degradations" sections (the failure model; see DESIGN.md §8), and —
/// when a compilation cache was live — a "cache" block: {"mode",
/// "disk", "memory_hits", "disk_hits", "misses", "inserts",
/// "corrupt_entries", "write_failures", "verify_mismatches",
/// "hit_rate"} (pipeline/Cache.h).
/// Version history: v2 added "diagnostic" per result and the batch
/// "failures"/"degradations" sections and "failed"/"degraded"
/// aggregates; v3 added the batch "cache" block; v4 added the
/// per-function "isolation" record (sandboxed-child spawns, retries,
/// crashes, timeouts, last exit/signal) and the batch "isolated"/
/// "crashes"/"timeouts"/"retries" tallies for --isolate runs. The
/// journal-resume count is deliberately a counter, not a batch field,
/// so resumed reports stay byte-identical to uninterrupted ones.
/// v5 added the "provenance" block and the "histograms" section, and —
/// for --isolate runs — child counters/histograms/trace events merged
/// into the parent registries via the result-doc v2 telemetry block
/// (pipeline/Worker.h).
///
/// Byte-identity contract: everything above the "histograms" key is
/// deterministic for deterministic inputs (counters and histogram
/// *counts* merge commutatively, so they match across --jobs); the
/// "histograms" bucket placement and "timers" sections carry wall-clock
/// measurements and are the report's volatile tail — identity checks
/// neutralize those two sections and compare histogram counts
/// separately.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_PIPELINE_REPORT_H
#define PIRA_PIPELINE_REPORT_H

#include "pipeline/Strategies.h"
#include "support/Json.h"

#include <string>

namespace pira {

class MachineModel;

/// Schema constants; bump the version whenever a field changes meaning.
inline constexpr const char *StatsSchemaName = "pira.stats";
inline constexpr int StatsSchemaVersion = 5;

/// The tool version stamped into provenance blocks and --version output.
inline constexpr const char *PiraVersionString = "0.6.0";

/// Serializes every scalar field of \p R (code and schedule bodies are
/// deliberately omitted — they belong to the textual printers).
json::Value pipelineResultToJson(const PipelineResult &R);

/// Serializes \p Machine's identity (name, register count, issue width).
json::Value machineToJson(const MachineModel &Machine);

/// The registered telemetry counters as {"name": {"value", "description"}}.
json::Value countersToJson();

/// The registered latency histograms as {"name": {"description",
/// "count", "sum_ns", "max_ns", "p50_ns", "p90_ns", "p99_ns",
/// "buckets": [[index, count], ...]}}. Every registered histogram
/// appears (a stable key set); buckets are sparse. Percentiles are the
/// deterministic log2 bucket upper bounds.
json::Value histogramsToJson();

/// Aggregated phase timers as [{"path", "calls", "total_ns"}].
json::Value timersToJson();

/// The build-provenance block stamped into every stats report and
/// printed by `pirac --version`: tool name + version, git SHA and build
/// type when the build system knew them, compiler id/version, and
/// whether asserts were compiled out (ndebug).
json::Value buildProvenanceToJson();

/// Assembles the full versioned stats document for one pipeline run.
/// \p Strategy may be empty when the run is not strategy-shaped.
json::Value makeStatsReport(const PipelineResult &R,
                            const std::string &Strategy,
                            const MachineModel &Machine);

/// Writes \p Report (pretty-printed) to \p FilePath — or to stdout when
/// \p FilePath is "-"; false with \p Error set on I/O failure.
bool writeJsonFile(const json::Value &Report, const std::string &FilePath,
                   std::string &Error);

} // namespace pira

#endif // PIRA_PIPELINE_REPORT_H
