//===- pipeline/Cache.h - Content-addressed compilation cache ---*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memoizes compileBatch() results across duplicate functions and across
/// process runs. The premise is the determinism contract (DESIGN.md §7):
/// a compile is a pure function of (canonical IR, machine, strategy,
/// options), so a cached result is exactly the result a recompile would
/// produce — which makes cached reuse safe and byte-level verification
/// (CacheMode::Verify) meaningful.
///
/// The key is the SHA-256 of a framed blob covering everything that can
/// change the output: the canonical *printed* IR (so whitespace and
/// comment differences in source text collapse onto one key), the full
/// machine description (units, width, registers, non-default latencies),
/// the strategy, PinterOptions, resource budgets, Measure/Seed/Degrade,
/// the armed fault-injection spec plus the thread's fault key, and a
/// cache-format version salt. Worker count is deliberately excluded —
/// results are identical for any --jobs value.
///
/// The value is the full compiled artifact, serialized via support/Json
/// ("pira.cache" schema): printed final and symbolic-twin IR, the
/// per-block schedule, and the scalar stats block. Decoding re-parses
/// the IR, so a hit reconstructs a PipelineResult that serializes
/// byte-identically to a fresh compile's.
///
/// Two tiers: an in-memory map (intra-process; catches duplicate
/// functions inside one batch) and an optional on-disk directory, one
/// file per key, written to a temp name, fsync'd (file and directory),
/// and atomically renamed so a crashed or racing writer — or a power
/// loss mid-write — can never leave a torn entry under a live key.
/// Corrupt or truncated disk entries are treated as misses and
/// recompiled — the degradation philosophy of DESIGN.md §8 applied to
/// the cache itself.
///
/// Only verifier-clean, non-degraded successes are ever inserted: a
/// degraded or failed function must re-walk the ladder every time, so a
/// transient failure cause (or a fixed one) is never fossilized.
///
/// A third, optional tier is *remote*: a `pirac serve --cache-serve`
/// daemon answering lookup/store over the framed cache protocol
/// (service/Framing.h). The RemoteCacheTier here is the hostile-network
/// envelope around any RemoteCacheBackend transport: per-operation
/// deadlines, bounded exponential backoff with deterministic jitter, a
/// circuit breaker (consecutive failures trip the tier open; periodic
/// half-open probes let a recovered daemon back in), single-flight
/// collapsing of concurrent identical lookups, and end-to-end integrity
/// verification — every fetched entry is re-hashed against the digest
/// its producer computed, fully decoded, and checked against the key it
/// claims to be, and anything that fails is quarantined (counted, never
/// used, never a crash). Every remote failure mode degrades silently
/// down the ladder remote → local disk/memory → compile, so batch
/// reports stay byte-identical (modulo the volatile timer/counter
/// sections) whether the daemon is healthy, slow, dead, flapping, or
/// returning garbage. DESIGN.md §13 specifies the protocol and rules.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_PIPELINE_CACHE_H
#define PIRA_PIPELINE_CACHE_H

#include "pipeline/Batch.h"

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>

namespace pira {

/// How the batch driver consults the cache.
enum class CacheMode {
  Off,    ///< Never look, never insert.
  On,     ///< Hits short-circuit compilation; misses insert.
  Verify, ///< Hits recompile anyway and cross-check byte identity.
};

/// Stable lower-case name ("off", "on", "verify").
const char *cacheModeName(CacheMode Mode);

/// Parses a mode name; unknown spellings produce an InvalidArgument
/// Status listing the accepted ones.
Expected<CacheMode> cacheModeFromName(std::string_view Name);

/// Serialized-entry schema constants. The version participates in the
/// key salt, so bumping it invalidates every existing entry at once.
inline constexpr const char *CacheSchemaName = "pira.cache";
inline constexpr int CacheSchemaVersion = 1;

/// Computes the content-addressed key (64 hex chars) for compiling
/// \p Input on \p Machine under \p Opts. Opts.Jobs and Opts.Cache are
/// ignored; the live fault-injection configuration and the calling
/// thread's fault key are folded in (see file comment).
std::string computeCacheKey(const Function &Input, const MachineModel &Machine,
                            const BatchOptions &Opts);

/// Serializes a successful \p R as a cache entry. \p Key is stored for
/// self-identification. Pre: R.Success.
json::Value encodeCacheEntry(const PipelineResult &R, const std::string &Key);

/// Reconstructs a PipelineResult from \p Entry. Any structural problem —
/// wrong schema or version, missing field, unparsable IR, schedule shape
/// not matching the code — comes back as an error Status; callers treat
/// that as a cache miss.
Expected<PipelineResult> decodeCacheEntry(const json::Value &Entry);

//===----------------------------------------------------------------------===//
// Remote tier
//===----------------------------------------------------------------------===//

/// What a remote lookup brought back. \p Found false is a clean miss;
/// when true, \p EntryText is the compact entry serialization and
/// \p Digest the producer-side SHA-256 hex of exactly those bytes.
struct RemoteCacheHit {
  bool Found = false;
  std::string EntryText;
  std::string Digest;
};

/// The transport under RemoteCacheTier. Implementations do one
/// best-effort network operation per call — no retries, no policy;
/// the tier owns deadlines, backoff, and the breaker. Calls are
/// serialized by the tier, so implementations need not be thread-safe.
/// The socket-backed implementation lives in service/CacheClient.h;
/// tests substitute mocks.
class RemoteCacheBackend {
public:
  virtual ~RemoteCacheBackend() = default;

  /// Fetches \p Key. A transport or protocol failure is an error
  /// Status; "the daemon has no such entry" is a Found=false success.
  /// \p DeadlineMs bounds the whole operation (0 = no bound).
  virtual Expected<RemoteCacheHit> lookup(const std::string &Key,
                                          int DeadlineMs) = 0;

  /// Publishes \p EntryText under \p Key with its \p Digest.
  virtual Status store(const std::string &Key, const std::string &EntryText,
                       const std::string &Digest, int DeadlineMs) = 0;

  /// Human-readable endpoint for diagnostics.
  virtual std::string describe() const = 0;
};

/// Robustness knobs of the remote tier. The defaults suit a loopback
/// daemon; tests shrink every window to keep failure paths fast.
struct RemoteCacheOptions {
  /// Per-operation deadline, ms (0 = unbounded — not recommended).
  int OpDeadlineMs = 2000;
  /// Attempts per operation; 1 disables in-tier retry.
  unsigned MaxAttempts = 2;
  /// Backoff before attempt N: jittered min(BackoffMs << (N-2), cap).
  unsigned BackoffMs = 10;
  unsigned BackoffCapMs = 200;
  /// Consecutive failed operations that trip the breaker open.
  unsigned BreakerThreshold = 3;
  /// How long the breaker stays open before a half-open probe, ms.
  int BreakerCooldownMs = 1000;
  /// Seed for the deterministic backoff jitter.
  uint64_t JitterSeed = 0;
};

/// The hostile-network envelope (see the file comment). Thread-safe;
/// never throws, never blocks longer than deadlines + backoff, and
/// reports every failure as a miss — the caller cannot tell a dead
/// daemon from a cold one, which is exactly the degradation contract.
class RemoteCacheTier {
public:
  enum class Breaker {
    Closed,   ///< Healthy: operations flow.
    Open,     ///< Tripped: operations fail instantly, no network.
    HalfOpen, ///< Cooldown expired: one probe in flight decides.
  };

  struct Stats {
    uint64_t Lookups = 0;           ///< Lookup operations requested.
    uint64_t Hits = 0;              ///< Verified remote entries served.
    uint64_t Misses = 0;            ///< Clean remote misses.
    uint64_t Stores = 0;            ///< Stores acknowledged by the peer.
    uint64_t StoreFailures = 0;     ///< Stores that never landed.
    uint64_t TransportFailures = 0; ///< Failed attempts (all causes).
    uint64_t Quarantined = 0;       ///< Fetched entries that failed
                                    ///< integrity checks (never used).
    uint64_t BreakerTrips = 0;      ///< Transitions to Open.
    uint64_t BreakerSkipped = 0;    ///< Operations refused while Open.
    uint64_t Collapsed = 0;         ///< Lookups served by another
                                    ///< in-flight identical lookup.
    Breaker State = Breaker::Closed;
  };

  RemoteCacheTier(std::unique_ptr<RemoteCacheBackend> Backend,
                  RemoteCacheOptions Opts);

  /// Fetches and *verifies* \p Key. Returns the parsed entry (shared so
  /// callers can decode outside any lock) plus its exact serialized
  /// text via \p TextOut; nullptr on miss, quarantine, breaker-open, or
  /// any transport failure — all indistinguishable by design.
  std::shared_ptr<const json::Value> lookup(const std::string &Key,
                                            std::string *TextOut = nullptr);

  /// Publishes an entry best-effort: failures are counted and dropped.
  void store(const std::string &Key, const std::string &EntryText);

  Stats stats() const;

  /// Stable name of a breaker state ("closed", "open", "half-open").
  static const char *breakerName(Breaker B);

  /// The "remote" sub-block of the cache stats report.
  json::Value statsToJson() const;

private:
  /// True when the breaker admits an operation now (may move Open →
  /// HalfOpen). Called under StateMutex.
  bool admitLocked(uint64_t NowNs);
  void recordSuccess();
  void recordFailure();

  /// One backend operation with deadline, attempts, backoff + jitter,
  /// and breaker accounting. \p Op runs under BackendMutex.
  template <typename OpFn> bool runOp(const std::string &Key, OpFn &&Op);

  std::unique_ptr<RemoteCacheBackend> Backend;
  RemoteCacheOptions Opts;

  /// Serializes backend use (the transport holds one connection).
  std::mutex BackendMutex;

  mutable std::mutex StateMutex;
  Stats Tally;
  unsigned ConsecutiveFailures = 0;
  uint64_t OpenedAtNs = 0;
  bool ProbeInFlight = false;

  /// Single-flight table: key -> the flight every concurrent identical
  /// lookup waits on.
  struct Flight {
    bool Done = false;
    std::shared_ptr<const json::Value> Entry;
    std::string Text;
  };
  std::mutex FlightMutex;
  std::condition_variable FlightCv;
  std::map<std::string, std::shared_ptr<Flight>> Flights;
};

/// The two-tier cache. Thread-safe: compileBatch workers look up and
/// insert concurrently. One instance per logical cache — pirac makes one
/// per process; tests make one per scenario.
class CompilationCache {
public:
  /// Lifetime tallies, also mirrored into the global telemetry counters.
  /// Deterministic whenever lookups are (warm runs, or cold runs without
  /// concurrent intra-batch duplicates); the per-batch "cache" stats
  /// block is built from these.
  struct Stats {
    uint64_t MemoryHits = 0;       ///< Served from the in-memory tier.
    uint64_t DiskHits = 0;         ///< Served (and promoted) from disk.
    uint64_t RemoteHits = 0;       ///< Served (verified) from the remote
                                   ///< tier and promoted to memory.
    uint64_t Misses = 0;           ///< No usable entry anywhere.
    uint64_t Inserts = 0;          ///< Entries written.
    uint64_t CorruptEntries = 0;   ///< Disk entries that failed to decode.
    uint64_t WriteFailures = 0;    ///< Disk writes that could not land.
    uint64_t VerifyMismatches = 0; ///< Verify-mode byte-identity failures.
    uint64_t TrimmedEntries = 0;   ///< Disk entries evicted by the
                                   ///< size bound (oldest first).
  };

  /// \p DiskDir empty means memory-only. The directory is created on
  /// first insert; an uncreatable or unreadable directory degrades to
  /// memory-only operation (counted as write failures / misses).
  explicit CompilationCache(CacheMode Mode, std::string DiskDir = "");

  CacheMode mode() const { return Mode; }
  const std::string &diskDir() const { return DiskDir; }

  /// Chains a remote tier in front of the local ones. Call before any
  /// lookup/insert traffic (pirac wires it right after construction).
  void attachRemote(std::unique_ptr<RemoteCacheBackend> Backend,
                    RemoteCacheOptions RemoteOpts = {});

  /// The attached remote tier, nullptr when local-only.
  RemoteCacheTier *remote() { return Remote.get(); }

  /// Bounds the on-disk tier to \p Bytes (0 = unbounded). When an
  /// insert pushes the directory over the bound, the oldest entries are
  /// unlinked first — except entries this instance wrote, which the
  /// current batch may still be counting on.
  void setDiskLimitBytes(uint64_t Bytes) { DiskLimitBytes = Bytes; }

  /// Looks \p Key up remote-first, then memory, then disk. On a hit
  /// returns the decoded result and, when \p SerializedOut is non-null,
  /// the canonical compact serialization of the stored entry (what
  /// Verify compares against). Corrupt entries count and read as
  /// misses; so does every remote failure (the degradation ladder).
  std::optional<PipelineResult> lookup(const std::string &Key,
                                       std::string *SerializedOut = nullptr);

  /// Inserts \p R under \p Key into every tier (remote best-effort).
  /// The caller enforces the only-clean-non-degraded rule; insert
  /// serializes and stores.
  void insert(const std::string &Key, const PipelineResult &R);

  /// Records one Verify-mode byte-identity failure.
  void noteVerifyMismatch();

  /// Snapshot of the lifetime tallies.
  Stats stats() const;

  /// The "cache" block of the pira.stats report (schema v3): mode, disk
  /// flag, every tally, and the derived hit rate.
  json::Value statsToJson() const;

private:
  /// Entry file path for \p Key, "" when memory-only.
  std::string filePathFor(const std::string &Key) const;

  /// Enforces DiskLimitBytes after a disk write: unlinks the oldest
  /// entries (mtime, then name) until the directory fits, skipping keys
  /// in WrittenKeys and in-flight ".tmp." files. Unlink is atomic, so a
  /// crash mid-trim leaves only a directory that is slightly too large.
  void trimDiskLocked();

  CacheMode Mode;
  std::string DiskDir;
  uint64_t DiskLimitBytes = 0;
  std::unique_ptr<RemoteCacheTier> Remote;

  mutable std::mutex Mutex;
  /// Key -> serialized entry. shared_ptr so lookups can decode outside
  /// the lock. std::map keeps iteration deterministic for debugging.
  std::map<std::string, std::shared_ptr<const json::Value>> Memory;
  /// Keys this instance wrote to disk — the trimmer never evicts them,
  /// so a warm rerun inside one process cannot lose its own entries.
  std::set<std::string> WrittenKeys;
  Stats Tally;
};

} // namespace pira

#endif // PIRA_PIPELINE_CACHE_H
