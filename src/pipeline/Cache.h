//===- pipeline/Cache.h - Content-addressed compilation cache ---*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memoizes compileBatch() results across duplicate functions and across
/// process runs. The premise is the determinism contract (DESIGN.md §7):
/// a compile is a pure function of (canonical IR, machine, strategy,
/// options), so a cached result is exactly the result a recompile would
/// produce — which makes cached reuse safe and byte-level verification
/// (CacheMode::Verify) meaningful.
///
/// The key is the SHA-256 of a framed blob covering everything that can
/// change the output: the canonical *printed* IR (so whitespace and
/// comment differences in source text collapse onto one key), the full
/// machine description (units, width, registers, non-default latencies),
/// the strategy, PinterOptions, resource budgets, Measure/Seed/Degrade,
/// the armed fault-injection spec plus the thread's fault key, and a
/// cache-format version salt. Worker count is deliberately excluded —
/// results are identical for any --jobs value.
///
/// The value is the full compiled artifact, serialized via support/Json
/// ("pira.cache" schema): printed final and symbolic-twin IR, the
/// per-block schedule, and the scalar stats block. Decoding re-parses
/// the IR, so a hit reconstructs a PipelineResult that serializes
/// byte-identically to a fresh compile's.
///
/// Two tiers: an in-memory map (intra-process; catches duplicate
/// functions inside one batch) and an optional on-disk directory, one
/// file per key, written to a temp name, fsync'd (file and directory),
/// and atomically renamed so a crashed or racing writer — or a power
/// loss mid-write — can never leave a torn entry under a live key.
/// Corrupt or truncated disk entries are treated as misses and
/// recompiled — the degradation philosophy of DESIGN.md §8 applied to
/// the cache itself.
///
/// Only verifier-clean, non-degraded successes are ever inserted: a
/// degraded or failed function must re-walk the ladder every time, so a
/// transient failure cause (or a fixed one) is never fossilized.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_PIPELINE_CACHE_H
#define PIRA_PIPELINE_CACHE_H

#include "pipeline/Batch.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

namespace pira {

/// How the batch driver consults the cache.
enum class CacheMode {
  Off,    ///< Never look, never insert.
  On,     ///< Hits short-circuit compilation; misses insert.
  Verify, ///< Hits recompile anyway and cross-check byte identity.
};

/// Stable lower-case name ("off", "on", "verify").
const char *cacheModeName(CacheMode Mode);

/// Parses a mode name; unknown spellings produce an InvalidArgument
/// Status listing the accepted ones.
Expected<CacheMode> cacheModeFromName(std::string_view Name);

/// Serialized-entry schema constants. The version participates in the
/// key salt, so bumping it invalidates every existing entry at once.
inline constexpr const char *CacheSchemaName = "pira.cache";
inline constexpr int CacheSchemaVersion = 1;

/// Computes the content-addressed key (64 hex chars) for compiling
/// \p Input on \p Machine under \p Opts. Opts.Jobs and Opts.Cache are
/// ignored; the live fault-injection configuration and the calling
/// thread's fault key are folded in (see file comment).
std::string computeCacheKey(const Function &Input, const MachineModel &Machine,
                            const BatchOptions &Opts);

/// Serializes a successful \p R as a cache entry. \p Key is stored for
/// self-identification. Pre: R.Success.
json::Value encodeCacheEntry(const PipelineResult &R, const std::string &Key);

/// Reconstructs a PipelineResult from \p Entry. Any structural problem —
/// wrong schema or version, missing field, unparsable IR, schedule shape
/// not matching the code — comes back as an error Status; callers treat
/// that as a cache miss.
Expected<PipelineResult> decodeCacheEntry(const json::Value &Entry);

/// The two-tier cache. Thread-safe: compileBatch workers look up and
/// insert concurrently. One instance per logical cache — pirac makes one
/// per process; tests make one per scenario.
class CompilationCache {
public:
  /// Lifetime tallies, also mirrored into the global telemetry counters.
  /// Deterministic whenever lookups are (warm runs, or cold runs without
  /// concurrent intra-batch duplicates); the per-batch "cache" stats
  /// block is built from these.
  struct Stats {
    uint64_t MemoryHits = 0;       ///< Served from the in-memory tier.
    uint64_t DiskHits = 0;         ///< Served (and promoted) from disk.
    uint64_t Misses = 0;           ///< No usable entry anywhere.
    uint64_t Inserts = 0;          ///< Entries written.
    uint64_t CorruptEntries = 0;   ///< Disk entries that failed to decode.
    uint64_t WriteFailures = 0;    ///< Disk writes that could not land.
    uint64_t VerifyMismatches = 0; ///< Verify-mode byte-identity failures.
  };

  /// \p DiskDir empty means memory-only. The directory is created on
  /// first insert; an uncreatable or unreadable directory degrades to
  /// memory-only operation (counted as write failures / misses).
  explicit CompilationCache(CacheMode Mode, std::string DiskDir = "");

  CacheMode mode() const { return Mode; }
  const std::string &diskDir() const { return DiskDir; }

  /// Looks \p Key up in memory, then on disk. On a hit returns the
  /// decoded result and, when \p SerializedOut is non-null, the
  /// canonical compact serialization of the stored entry (what Verify
  /// compares against). Corrupt entries count and read as misses.
  std::optional<PipelineResult> lookup(const std::string &Key,
                                       std::string *SerializedOut = nullptr);

  /// Inserts \p R under \p Key into both tiers. The caller enforces the
  /// only-clean-non-degraded rule; insert serializes and stores.
  void insert(const std::string &Key, const PipelineResult &R);

  /// Records one Verify-mode byte-identity failure.
  void noteVerifyMismatch();

  /// Snapshot of the lifetime tallies.
  Stats stats() const;

  /// The "cache" block of the pira.stats report (schema v3): mode, disk
  /// flag, every tally, and the derived hit rate.
  json::Value statsToJson() const;

private:
  /// Entry file path for \p Key, "" when memory-only.
  std::string filePathFor(const std::string &Key) const;

  CacheMode Mode;
  std::string DiskDir;

  mutable std::mutex Mutex;
  /// Key -> serialized entry. shared_ptr so lookups can decode outside
  /// the lock. std::map keeps iteration deterministic for debugging.
  std::map<std::string, std::shared_ptr<const json::Value>> Memory;
  Stats Tally;
};

} // namespace pira

#endif // PIRA_PIPELINE_CACHE_H
