//===- pipeline/Strategies.h - Phase-ordering strategies --------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end compilation strategies over the same substrate, matching
/// the orderings the paper discusses:
///
///   * AllocFirst — Chaitin coloring of the plain interference graph,
///     then list scheduling (the MIPS ordering [6]; register reuse may
///     introduce false dependences that fence off parallelism).
///   * SchedFirst — aggressive pre-pass scheduling of the symbolic code,
///     then Chaitin allocation on the stretched live ranges, then final
///     scheduling (the RS/6000 ordering [14]; more spills under
///     pressure).
///   * IntegratedPrepass — Goodman-Hsu [10]: a pressure-aware dual-mode
///     prepass scheduler, then Chaitin allocation and final scheduling.
///   * Combined — the paper's framework: coloring of the parallelizable
///     interference graph (PinterAllocator), then list scheduling.
///   * SpillAll — the always-succeeds safety net: every web is spilled
///     to memory up front, leaving only short reload/store ranges for a
///     trivial coloring. Slow code, but verifier-clean on inputs that
///     defeat every real allocator — the bottom rung of the batch
///     driver's degradation ladder.
///   * Oracle — the exact branch-and-bound search over the joint
///     schedule + allocation space (pipeline/Oracle.h): provably minimum
///     makespan among spill-free schedules for small single blocks, the
///     ground truth of the heuristic-gap tournament. Blows up (or goes
///     out of scope) with SearchExhausted and falls down the ladder.
///
/// Every strategy reports the same statistics so benches can print them
/// side by side, and validates semantics against the sequential
/// interpreter. Failures are structured: PipelineResult carries both the
/// legacy Error string and a Status diagnostic (code, phase, context).
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_PIPELINE_STRATEGIES_H
#define PIRA_PIPELINE_STRATEGIES_H

#include "core/PinterAllocator.h"
#include "ir/Function.h"
#include "pipeline/Oracle.h"
#include "sched/Schedule.h"
#include "support/Status.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pira {

class MachineModel;

/// Identifies a phase-ordering strategy.
enum class StrategyKind {
  AllocFirst,
  SchedFirst,
  IntegratedPrepass,
  Combined,
  SpillAll,
  Oracle,
};

/// Returns a short printable name ("alloc-first", ...). Out-of-range
/// values (a cast gone wrong, a corrupted report) map to "unknown" —
/// never undefined behaviour, release builds included.
const char *strategyName(StrategyKind Kind);

/// Parses a strategy name ("alloc-first", "sched-first", "ips" or
/// "goodman-hsu-ips", "combined", "spill-all", "oracle"). Unknown names
/// produce an InvalidArgument Status listing the accepted spellings; the
/// list is generated from the same table strategyName reads, so the two
/// cannot drift apart.
Expected<StrategyKind> strategyFromName(std::string_view Name);

/// Every strategy, in a stable display order (the oracle first — the
/// tournament's baseline — then the heuristics from most to least
/// integrated). Backed by the same table as strategyName.
const std::vector<StrategyKind> &allStrategies();

/// Everything a strategy run produces.
struct PipelineResult {
  bool Success = false;          ///< Allocation converged and code verifies.
  std::string Error;             ///< First failure when !Success.
  Status Diag;                   ///< Structured twin of Error (Ok on success).
  Function Final;                ///< Allocated (physical-register) code.
  Function SymbolicTwin;         ///< Post-spill symbolic code (for checks).
  FunctionSchedule Sched;        ///< Final schedule of Final.

  unsigned RegistersUsed = 0;    ///< Distinct physical registers.
  unsigned SpilledWebs = 0;      ///< Live ranges sent to memory.
  unsigned SpillInstructions = 0;///< Loads + stores inserted.
  unsigned FalseDeps = 0;        ///< False (output) dependence edges.
  unsigned AntiOrderingLosses = 0; ///< Anti edges on co-issuable pairs.
  unsigned ParallelEdgesDropped = 0; ///< Combined only.
  unsigned StaticCycles = 0;     ///< Sum of block makespans.

  /// Dynamic figures from the superscalar simulator (filled by
  /// runAndMeasure; zero otherwise).
  uint64_t DynCycles = 0;
  uint64_t DynInstructions = 0;
  bool SemanticsPreserved = false;
};

/// Runs \p Kind on a copy of \p Input for \p Machine (whose register file
/// bounds the allocator). \p Opts tunes the Combined strategy only;
/// \p OOpts tunes the Oracle strategy only.
/// May throw faultinject::FaultInjectedError (armed throw-sites) or
/// deadline::DeadlineExceededError (armed watchdog deadline); the batch
/// driver's guard turns both into per-function diagnostics.
PipelineResult runStrategy(StrategyKind Kind, const Function &Input,
                           const MachineModel &Machine,
                           const PinterOptions &Opts = {},
                           const OracleOptions &OOpts = {});

/// Runs the strategy, then simulates the result against the sequential
/// interpretation of \p Input (initial state seeded with \p Seed),
/// filling the dynamic fields and SemanticsPreserved.
PipelineResult runAndMeasure(StrategyKind Kind, const Function &Input,
                             const MachineModel &Machine,
                             const PinterOptions &Opts = {},
                             uint64_t Seed = 42,
                             const OracleOptions &OOpts = {});

} // namespace pira

#endif // PIRA_PIPELINE_STRATEGIES_H
