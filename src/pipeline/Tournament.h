//===- pipeline/Tournament.h - Heuristic-gap tournament ---------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heuristic-gap tournament: every strategy compiles every function
/// of a corpus, and a `pira.tournament` v1 JSON report quantifies how
/// far each Section-4 heuristic sits from the exact oracle's joint
/// optimum (ROADMAP item 3; the combinatorial line of arXiv:1804.02452).
///
/// Report semantics — all comparisons are restricted to functions where
/// the oracle *proved* an optimum:
///
///   * spill_gap: total spilled webs of the strategy over those
///     functions (the oracle spills none, so this is the strategy's raw
///     spill count and is trivially >= 0).
///   * cycle_gap: sum of (strategy static cycles - oracle static
///     cycles), counted only where the strategy also spilled nothing —
///     spill code changes the instruction count, making cycle totals
///     incomparable. Each term is provably >= 0: a spill-free heuristic
///     result is itself a point of the oracle's search space.
///   * false_dep_gap: same restriction, signed — the oracle minimizes
///     makespan, not false dependences, so a heuristic may legitimately
///     come out ahead here.
///   * optimal / suboptimal / beats_oracle tallies compare
///     (spills, static cycles) lexicographically; beats_oracle must be
///     0 on every corpus — the differential tests and the CI smoke job
///     assert exactly that.
///
/// Determinism: runs fan out on the thread pool into pre-sized slots
/// and the report carries no clocks or counters, so it is byte-identical
/// across --jobs widths (pinned by tests/oracle_test.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_PIPELINE_TOURNAMENT_H
#define PIRA_PIPELINE_TOURNAMENT_H

#include "pipeline/Batch.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace pira {

/// Schema constants of the tournament report.
inline constexpr const char *TournamentSchemaName = "pira.tournament";
inline constexpr int TournamentSchemaVersion = 1;

/// Tournament knobs.
struct TournamentOptions {
  /// Thread-pool width; 0 means ThreadPool::defaultJobCount(), 1 runs
  /// inline with no pool.
  unsigned Jobs = 0;
  /// Also simulate each result against the sequential reference
  /// (dynamic cycles + semantics), seeded with Seed.
  bool Measure = true;
  uint64_t Seed = 42;
  OracleOptions Oracle;  ///< The exact strategy's envelope.
  ResourceBudget Budget; ///< Per-run guard budget (deadline included).
  /// Corpus echo for the report (filled by makeTournamentCorpus; callers
  /// supplying their own corpus may leave these 0 / "files").
  unsigned CorpusCount = 0;
  unsigned CorpusInsts = 0;
  uint64_t CorpusSeed = 0;
  std::string CorpusSource = "files";
};

/// Builds the standard tournament corpus: \p Count deterministic
/// single-block functions of roughly \p Insts instructions each, fresh
/// symbolic register per value (so every one is inside the oracle's
/// scope), drawn from \p Seed. Also stamps the corpus echo fields of
/// \p Opts.
std::vector<BatchItem> makeTournamentCorpus(unsigned Count, unsigned Insts,
                                            uint64_t Seed,
                                            TournamentOptions &Opts);

/// Runs every strategy (allStrategies()) on every corpus item on the
/// thread pool and returns the `pira.tournament` v1 report. Individual
/// compile failures (including oracle blowups) become per-function
/// records, never exceptions.
json::Value runTournament(const std::vector<BatchItem> &Corpus,
                          const MachineModel &Machine,
                          const TournamentOptions &Opts);

/// Prints the human-readable aggregate table of \p Report to \p OS.
void printTournamentSummary(const json::Value &Report, std::ostream &OS);

} // namespace pira

#endif // PIRA_PIPELINE_TOURNAMENT_H
