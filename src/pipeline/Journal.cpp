//===- pipeline/Journal.cpp - Crash-safe batch journal --------------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Journal.h"

#include "ir/Printer.h"
#include "machine/MachineConfig.h"
#include "machine/MachineModel.h"
#include "support/FaultInjection.h"
#include "support/Hash.h"
#include "support/Io.h"
#include "support/Telemetry.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace pira;

PIRA_STAT(NumJournalRecordsWritten, "Batch-journal records appended");
PIRA_STAT(NumJournalRecordsReplayed,
          "Functions replayed from a batch journal instead of recompiled");
PIRA_STAT(NumJournalAppendFailures,
          "Batch-journal appends that failed to land on disk");
PIRA_STAT(NumJournalTornRecords,
          "Torn trailing journal data truncated away on resume");
PIRA_STAT(NumJournalHeaderRestarts,
          "Resumed journals restarted fresh because the header itself "
          "was torn (the previous run died mid-header-write)");
PIRA_STAT(NumJournalEmptyResumes,
          "Resumed journals found zero-length (created but never "
          "written) and started fresh");

std::string pira::computeJournalDigest(const std::vector<BatchItem> &Batch,
                                       const MachineModel &Machine,
                                       const BatchOptions &Opts) {
  PIRA_TIME_SCOPE("journal/digest");
  hash::Sha256 H;
  // Same length-framed field discipline as computeCacheKey: no two
  // distinct field lists can collide onto one byte stream.
  auto Field = [&H](std::string_view Tag, std::string_view Value) {
    H.update(Tag);
    H.update(":");
    H.update(std::to_string(Value.size()));
    H.update(":");
    H.update(Value);
    H.update("\n");
  };
  Field("format", std::string(JournalSchemaName) + "/" +
                      std::to_string(JournalSchemaVersion));
  Field("machine", machineModelToString(Machine));
  Field("strategy", strategyName(Opts.Strategy));
  Field("pinter.max-rounds", std::to_string(Opts.Pinter.MaxRounds));
  Field("pinter.pre-schedule", Opts.Pinter.PreSchedule ? "1" : "0");
  Field("pinter.use-regions", Opts.Pinter.UseRegions ? "1" : "0");
  Field("oracle.max-instructions",
        std::to_string(Opts.Oracle.MaxInstructions));
  Field("oracle.node-budget", std::to_string(Opts.Oracle.NodeBudget));
  Field("budget.max-instructions",
        std::to_string(Opts.Budget.MaxInstructions));
  Field("budget.max-blocks", std::to_string(Opts.Budget.MaxBlocks));
  Field("budget.deadline-ms", std::to_string(Opts.Budget.DeadlineMs));
  Field("measure", Opts.Measure ? "1" : "0");
  Field("seed", std::to_string(Opts.Seed));
  Field("degrade", Opts.Degrade ? "1" : "0");
  Field("isolate", Opts.Isolate ? "1" : "0");
  Field("retries", std::to_string(Opts.MaxRetries));
  Field("child-mem-mb", std::to_string(Opts.ChildMemLimitMB));
  Field("child-timeout-ms", std::to_string(Opts.ChildTimeoutMs));
  Field("fault.spec", faultinject::currentSpec());
  Field("items", std::to_string(Batch.size()));
  for (const BatchItem &I : Batch) {
    Field("item.name", I.Name);
    Field("item.ir", functionToString(I.Input));
  }
  return H.hexDigest();
}

namespace {

Status journalError(const std::string &What) {
  return Status::error(ErrorCode::Internal, "journal", What);
}

Status journalErrno(const std::string &What) {
  return journalError(What + ": " + std::strerror(errno));
}

/// fsyncs the directory containing \p Path so a freshly created journal
/// file survives a crash of the file system's in-memory state.
void syncParentDir(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  std::string Dir = Slash == std::string::npos ? "." : Path.substr(0, Slash);
  if (Dir.empty())
    Dir = "/";
  int Fd = ::open(Dir.c_str(), O_RDONLY);
  if (Fd < 0)
    return; // Advisory only; the record fsyncs still happened.
  ::fsync(Fd);
  ::close(Fd);
}

} // namespace

BatchJournal::~BatchJournal() {
  if (Fd >= 0)
    ::close(Fd);
}

Status BatchJournal::open(const std::string &Path, const std::string &Digest,
                          size_t Items, bool Resume) {
  if (Fd >= 0)
    return journalError("journal already open");
  this->Path = Path;

  json::Value Header = json::Value::object();
  Header.set("schema", JournalSchemaName);
  Header.set("version", JournalSchemaVersion);
  Header.set("digest", Digest);
  Header.set("items", static_cast<uint64_t>(Items));
  std::string HeaderLine = Header.toString(-1) + "\n";

  if (Resume) {
    int ReadFd = ::open(Path.c_str(), O_RDWR);
    if (ReadFd < 0 && errno != ENOENT)
      return journalErrno("cannot open journal '" + Path + "'");
    if (ReadFd >= 0) {
      // Read the whole file; journals are one line per function and a
      // batch is at most a few thousand functions.
      std::string Contents;
      char Buf[1 << 16];
      for (;;) {
        ssize_t N = io::readFull(ReadFd, Buf, sizeof(Buf));
        if (N < 0) {
          ::close(ReadFd);
          return journalErrno("cannot read journal '" + Path + "'");
        }
        Contents.append(Buf, static_cast<size_t>(N));
        if (static_cast<size_t>(N) < sizeof(Buf))
          break; // EOF
      }

      // Walk complete lines; the first unparsable or unterminated line
      // marks the torn tail — everything from there on is truncated
      // away so the re-append continues from a clean record boundary.
      size_t ValidEnd = 0, LineStart = 0;
      bool SawHeader = false;
      Status Bad; // first structural (non-torn) problem
      while (LineStart < Contents.size()) {
        size_t Newline = Contents.find('\n', LineStart);
        if (Newline == std::string::npos)
          break; // unterminated tail: torn
        std::string Line =
            Contents.substr(LineStart, Newline - LineStart);
        json::Value Doc;
        std::string Error;
        if (!json::parse(Line, Doc, Error)) {
          // A *complete* (newline-terminated) first line that is not
          // JSON means this file never was a pira.journal; refuse to
          // truncate-and-recreate over someone else's data. Later lines
          // are the ordinary torn/garbage tail.
          if (!SawHeader)
            Bad = journalError("'" + Path + "' is not a pira.journal file");
          break;
        }
        if (!SawHeader) {
          const json::Value *Schema = Doc.find("schema");
          const json::Value *Version = Doc.find("version");
          const json::Value *D = Doc.find("digest");
          const json::Value *N = Doc.find("items");
          if (!Doc.isObject() || Schema == nullptr || !Schema->isString() ||
              Schema->asString() != JournalSchemaName || Version == nullptr ||
              !Version->isInt() || Version->asInt() != JournalSchemaVersion) {
            Bad = journalError("'" + Path + "' is not a pira.journal file");
            break;
          }
          if (D == nullptr || !D->isString() || D->asString() != Digest)
            Bad = journalError(
                "journal '" + Path +
                "' was written for a different batch configuration "
                "(digest mismatch; refusing to resume)");
          else if (N == nullptr || !N->isInt() ||
                   N->asInt() != static_cast<int64_t>(Items))
            Bad = journalError("journal '" + Path +
                               "' item count does not match this batch");
          if (!Bad.ok())
            break;
          SawHeader = true;
        } else {
          const json::Value *Pos = Doc.find("position");
          const json::Value *Result = Doc.find("result");
          if (!Doc.isObject() || Pos == nullptr || !Pos->isInt() ||
              Pos->asInt() < 0 ||
              static_cast<size_t>(Pos->asInt()) >= Items ||
              Result == nullptr)
            break; // malformed record: treat as torn tail
          Record R;
          R.Result = *Result;
          if (const json::Value *Iso = Doc.find("isolation")) {
            R.Isolation = *Iso;
            R.HasIsolation = true;
          }
          Records[static_cast<size_t>(Pos->asInt())] = std::move(R);
        }
        ValidEnd = Newline + 1;
        LineStart = Newline + 1;
      }
      if (!Bad.ok()) {
        ::close(ReadFd);
        Records.clear();
        return Bad;
      }
      if (SawHeader) {
        if (ValidEnd != Contents.size()) {
          ++NumJournalTornRecords;
          if (::ftruncate(ReadFd, static_cast<off_t>(ValidEnd)) != 0) {
            ::close(ReadFd);
            Records.clear();
            return journalErrno("cannot truncate torn journal tail in '" +
                                Path + "'");
          }
        }
        if (::lseek(ReadFd, 0, SEEK_END) < 0) {
          ::close(ReadFd);
          Records.clear();
          return journalErrno("cannot seek journal '" + Path + "'");
        }
        NumJournalRecordsReplayed += Records.size();
        Fd = ReadFd;
        return Status();
      }
      // File existed but held no usable header. Two innocent shapes
      // reach here — a zero-length file (the previous run died between
      // create and header write) and a torn header line with no newline
      // (it died mid-write) — and each gets its own counter so a resume
      // that silently recompiles everything is explainable afterwards.
      // Anything else (a complete non-header first line) was refused
      // above rather than destroyed.
      if (Contents.empty())
        ++NumJournalEmptyResumes;
      else
        ++NumJournalHeaderRestarts;
      ::close(ReadFd);
    }
  }

  int NewFd =
      ::open(Path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (NewFd < 0)
    return journalErrno("cannot create journal '" + Path + "'");
  if (!io::writeFull(NewFd, HeaderLine.data(), HeaderLine.size()) ||
      ::fsync(NewFd) != 0) {
    Status S = journalErrno("cannot write journal header to '" + Path + "'");
    ::close(NewFd);
    return S;
  }
  syncParentDir(Path);
  Fd = NewFd;
  return Status();
}

bool BatchJournal::has(size_t Position) const {
  return Records.find(Position) != Records.end();
}

const json::Value *BatchJournal::resultFor(size_t Position) const {
  auto It = Records.find(Position);
  return It == Records.end() ? nullptr : &It->second.Result;
}

const json::Value *BatchJournal::isolationFor(size_t Position) const {
  auto It = Records.find(Position);
  return It == Records.end() || !It->second.HasIsolation
             ? nullptr
             : &It->second.Isolation;
}

Status BatchJournal::append(size_t Position, const std::string &Name,
                            const json::Value &Result,
                            const json::Value *Isolation) {
  json::Value Doc = json::Value::object();
  Doc.set("position", static_cast<uint64_t>(Position));
  Doc.set("name", Name);
  Doc.set("result", Result);
  if (Isolation != nullptr)
    Doc.set("isolation", *Isolation);
  std::string Line = Doc.toString(-1) + "\n";

  std::lock_guard<std::mutex> Lock(Mutex);
  if (Fd < 0) {
    ++AppendFailures;
    ++NumJournalAppendFailures;
    return journalError("journal is not open");
  }
  // One write per record keeps concurrent appends on record boundaries;
  // the fsync makes the record durable before the batch moves on, which
  // is the whole point of journaling.
  if (!io::writeFull(Fd, Line.data(), Line.size()) || ::fsync(Fd) != 0) {
    ++AppendFailures;
    ++NumJournalAppendFailures;
    return journalErrno("cannot append journal record for '" + Name + "'");
  }
  ++NumJournalRecordsWritten;
  return Status();
}

uint64_t BatchJournal::appendFailures() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return AppendFailures;
}
