//===- pipeline/Batch.h - Parallel batch-compilation driver -----*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// compileBatch(): runs one strategy over a batch of independent
/// functions, sharded across a work-stealing thread pool (support/
/// ThreadPool), with a deterministic merge. Per-function compilation is
/// pure — runStrategy copies its input, the MachineModel is shared
/// strictly read-only, and telemetry counters are relaxed atomics — so
/// the only thread-visible ordering is which worker picks which item,
/// and results are written into pre-sized slots indexed by input
/// position. Consequently every field of BatchResult, and the stats
/// report built from it, is bit-identical for any worker count; only the
/// telemetry *timers* (wall-clock samples) differ run to run. That is
/// the determinism contract the parallel-vs-serial property tests pin
/// down.
///
/// Fault isolation (the failure model, see DESIGN.md §8): every function
/// compiles through compileFunctionGuarded, which
///
///   1. rejects inputs over the resource budget (instruction / block
///      caps) with a structured ResourceExhausted diagnostic,
///   2. arms the per-task watchdog deadline around each attempt,
///   3. captures phase exceptions, injected faults, and deadline
///      overruns into the function's result instead of letting them
///      escape to the pool, and
///   4. walks the degradation ladder — requested strategy, then
///      Chaitin (alloc-first), then the spill-everywhere baseline — so
///      that every input yields verifier-clean code unless even the
///      bottom rung fails.
///
/// When BatchOptions::Cache is set, every item's content-addressed key
/// is computed up front and looked up *before* the guard runs; a hit
/// short-circuits compilation entirely (or, in Verify mode, recompiles
/// and cross-checks byte identity), and only verifier-clean
/// non-degraded successes are ever inserted. See pipeline/Cache.h.
///
/// A failed or degraded function never stops the batch; its outcome is
/// recorded per-function and surfaced in the stats report's "failures"
/// and "degradations" sections. Ladder decisions depend only on the
/// input (fault-injection keys are input positions, real wall-clock
/// deadlines are off by default), so fault-injected batches keep the
/// worker-count determinism guarantee. Arming DeadlineMs trades that
/// guarantee for overrun protection — expiry depends on machine load.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_PIPELINE_BATCH_H
#define PIRA_PIPELINE_BATCH_H

#include "pipeline/Strategies.h"
#include "support/Json.h"

#include <string>
#include <vector>

namespace pira {

class MachineModel;
class CompilationCache;

/// One unit of batch work: a named symbolic-form function.
struct BatchItem {
  std::string Name;  ///< Display name ("file.pir" or the function name).
  Function Input;    ///< Symbolic code to compile.
};

/// Per-function resource budget; 0 means unlimited. Instruction and
/// block caps are checked against the input before any phase runs and
/// are fully deterministic. DeadlineMs arms the cooperative per-task
/// watchdog (support/ThreadPool) around every ladder rung — overruns
/// depend on wall clock, so arming it trades batch determinism for
/// protection against pathological inputs.
struct ResourceBudget {
  uint64_t MaxInstructions = 0; ///< Cap on input instruction count.
  uint64_t MaxBlocks = 0;       ///< Cap on input basic-block count.
  uint64_t DeadlineMs = 0;      ///< Wall-clock budget per ladder rung.
};

/// Batch-wide knobs.
struct BatchOptions {
  StrategyKind Strategy = StrategyKind::Combined;
  PinterOptions Pinter;       ///< Tunes the Combined strategy only.
  /// Worker threads; 0 means ThreadPool::defaultJobCount() (PIRA_JOBS or
  /// the hardware concurrency). 1 compiles inline with no pool at all,
  /// which doubles as the serial reference for determinism checks.
  unsigned Jobs = 0;
  bool Measure = true;        ///< Also simulate + check semantics.
  uint64_t Seed = 42;         ///< Simulation seed (Measure only).
  ResourceBudget Budget;      ///< Per-function resource limits.
  /// Walk the degradation ladder on failure (requested strategy →
  /// alloc-first → spill-all). Off means one attempt, report as-is.
  bool Degrade = true;
  /// Content-addressed compilation cache (pipeline/Cache.h), consulted
  /// before the compile guard and fed after verifier-clean non-degraded
  /// successes. Null (the default) disables caching; non-owning, must
  /// outlive the call. The cache's own mode picks On vs Verify.
  CompilationCache *Cache = nullptr;
};

/// One failed ladder attempt: which rung, and why it failed.
struct CompileAttempt {
  std::string Rung;  ///< Strategy name of the attempt.
  Status Diag;       ///< Its structured failure.
};

/// How one function travelled through the guard and the ladder.
struct CompileOutcome {
  std::string Requested;   ///< Strategy the caller asked for.
  std::string Used;        ///< Rung that produced the final result
                           ///< (empty when the budget rejected the input).
  unsigned Rung = 0;       ///< 0 = requested strategy, 1 = alloc-first, ...
  bool Degraded = false;   ///< Succeeded, but below the requested rung.
  std::vector<CompileAttempt> FailedAttempts; ///< Rungs that failed first.
};

/// Guarded result: the final PipelineResult (last rung attempted) plus
/// the ladder record.
struct GuardedResult {
  PipelineResult Result;
  CompileOutcome Outcome;
};

/// Compiles one function under the full fault-isolation contract (see
/// file comment): budget check, watchdog deadline, exception capture,
/// degradation ladder. Never throws; every failure is a structured
/// diagnostic in the returned result.
GuardedResult compileFunctionGuarded(const Function &Input,
                                     const MachineModel &Machine,
                                     const BatchOptions &Opts = {});

/// An input that never reached compilation (unreadable file, parse or
/// verify failure). pirac collects these so the stats report's
/// "failures" section covers the whole input set, not just the
/// functions that compiled.
struct BatchFailure {
  std::string Name;
  Status Diag;
};

/// Everything a batch run produces. Results sits in input order no
/// matter which worker finished first.
struct BatchResult {
  std::vector<PipelineResult> Results;  ///< Parallel to the input batch.
  std::vector<CompileOutcome> Outcomes; ///< Ladder record per item.
  unsigned JobsUsed = 0;                ///< Worker threads actually used.
  unsigned Succeeded = 0;               ///< Results with Success set.
  unsigned Failed = 0;                  ///< Results with Success clear.
  unsigned Degraded = 0;                ///< Succeeded below the requested rung.

  /// Sums over successful results (deterministic; see file comment).
  unsigned TotalRegistersUsed = 0;   ///< Max, not sum: peak register need.
  unsigned TotalSpilledWebs = 0;
  unsigned TotalSpillInstructions = 0;
  unsigned TotalFalseDeps = 0;
  unsigned TotalStaticCycles = 0;
  uint64_t TotalDynCycles = 0;
  uint64_t TotalDynInstructions = 0;
};

/// Compiles every item of \p Batch with \p Opts.Strategy for \p Machine.
/// \p Machine is shared read-only across workers and must outlive the
/// call. Items compile independently; a failure in one does not stop the
/// others. Each item's fault-injection key is its input position.
BatchResult compileBatch(const std::vector<BatchItem> &Batch,
                         const MachineModel &Machine,
                         const BatchOptions &Opts = {});

/// Assembles the versioned "pira.stats" document for a batch run: the
/// shared preamble, one "functions" array entry per item (input order),
/// batch aggregates, a "failures" array (every failed function plus the
/// \p InputFailures that never compiled), a "degradations" array (every
/// function rescued below its requested rung, with the per-rung
/// diagnostics), a "cache" block when \p Cache is non-null (schema v3),
/// counters, and timers. Everything except "timers" is byte-identical
/// across worker counts; the worker count itself is deliberately not
/// recorded so reports diff clean across --jobs values. (The "counters"
/// and "cache" sections do vary between cold and warm cache runs — a
/// hit legitimately skips the compile-phase counters — so warm-vs-cold
/// report comparisons exclude "timers", "counters", and "cache".)
json::Value makeBatchStatsReport(const BatchResult &R,
                                 const std::vector<BatchItem> &Batch,
                                 const std::string &Strategy,
                                 const MachineModel &Machine,
                                 const std::vector<BatchFailure> &InputFailures = {},
                                 const CompilationCache *Cache = nullptr);

} // namespace pira

#endif // PIRA_PIPELINE_BATCH_H
