//===- pipeline/Batch.h - Parallel batch-compilation driver -----*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// compileBatch(): runs one strategy over a batch of independent
/// functions, sharded across a work-stealing thread pool (support/
/// ThreadPool), with a deterministic merge. Per-function compilation is
/// pure — runStrategy copies its input, the MachineModel is shared
/// strictly read-only, and telemetry counters are relaxed atomics — so
/// the only thread-visible ordering is which worker picks which item,
/// and results are written into pre-sized slots indexed by input
/// position. Consequently every field of BatchResult, and the stats
/// report built from it, is bit-identical for any worker count; only the
/// telemetry *timers* (wall-clock samples) differ run to run. That is
/// the determinism contract the parallel-vs-serial property tests pin
/// down.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_PIPELINE_BATCH_H
#define PIRA_PIPELINE_BATCH_H

#include "pipeline/Strategies.h"
#include "support/Json.h"

#include <string>
#include <vector>

namespace pira {

class MachineModel;

/// One unit of batch work: a named symbolic-form function.
struct BatchItem {
  std::string Name;  ///< Display name ("file.pir" or the function name).
  Function Input;    ///< Symbolic code to compile.
};

/// Batch-wide knobs.
struct BatchOptions {
  StrategyKind Strategy = StrategyKind::Combined;
  PinterOptions Pinter;       ///< Tunes the Combined strategy only.
  /// Worker threads; 0 means ThreadPool::defaultJobCount() (PIRA_JOBS or
  /// the hardware concurrency). 1 compiles inline with no pool at all,
  /// which doubles as the serial reference for determinism checks.
  unsigned Jobs = 0;
  bool Measure = true;        ///< Also simulate + check semantics.
  uint64_t Seed = 42;         ///< Simulation seed (Measure only).
};

/// Everything a batch run produces. Results sits in input order no
/// matter which worker finished first.
struct BatchResult {
  std::vector<PipelineResult> Results; ///< Parallel to the input batch.
  unsigned JobsUsed = 0;               ///< Worker threads actually used.
  unsigned Succeeded = 0;              ///< Results with Success set.

  /// Sums over successful results (deterministic; see file comment).
  unsigned TotalRegistersUsed = 0;   ///< Max, not sum: peak register need.
  unsigned TotalSpilledWebs = 0;
  unsigned TotalSpillInstructions = 0;
  unsigned TotalFalseDeps = 0;
  unsigned TotalStaticCycles = 0;
  uint64_t TotalDynCycles = 0;
  uint64_t TotalDynInstructions = 0;
};

/// Compiles every item of \p Batch with \p Opts.Strategy for \p Machine.
/// \p Machine is shared read-only across workers and must outlive the
/// call. Items compile independently; a failure in one does not stop the
/// others.
BatchResult compileBatch(const std::vector<BatchItem> &Batch,
                         const MachineModel &Machine,
                         const BatchOptions &Opts = {});

/// Assembles the versioned "pira.stats" document for a batch run: the
/// shared preamble, one "functions" array entry per item (input order),
/// batch aggregates, counters, and timers. Everything except "timers" is
/// byte-identical across worker counts; the worker count itself is
/// deliberately not recorded so reports diff clean across --jobs values.
json::Value makeBatchStatsReport(const BatchResult &R,
                                 const std::vector<BatchItem> &Batch,
                                 const std::string &Strategy,
                                 const MachineModel &Machine);

} // namespace pira

#endif // PIRA_PIPELINE_BATCH_H
