//===- pipeline/Batch.h - Parallel batch-compilation driver -----*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// compileBatch(): runs one strategy over a batch of independent
/// functions, sharded across a work-stealing thread pool (support/
/// ThreadPool), with a deterministic merge. Per-function compilation is
/// pure — runStrategy copies its input, the MachineModel is shared
/// strictly read-only, and telemetry counters are relaxed atomics — so
/// the only thread-visible ordering is which worker picks which item,
/// and results are written into pre-sized slots indexed by input
/// position. Consequently every field of BatchResult, and the stats
/// report built from it, is bit-identical for any worker count; only the
/// telemetry *timers* (wall-clock samples) differ run to run. That is
/// the determinism contract the parallel-vs-serial property tests pin
/// down.
///
/// Fault isolation (the failure model, see DESIGN.md §8): every function
/// compiles through compileFunctionGuarded, which
///
///   1. rejects inputs over the resource budget (instruction / block
///      caps) with a structured ResourceExhausted diagnostic,
///   2. arms the per-task watchdog deadline around each attempt,
///   3. captures phase exceptions, injected faults, and deadline
///      overruns into the function's result instead of letting them
///      escape to the pool, and
///   4. walks the degradation ladder — requested strategy, then
///      Chaitin (alloc-first), then the spill-everywhere baseline — so
///      that every input yields verifier-clean code unless even the
///      bottom rung fails.
///
/// When BatchOptions::Cache is set, every item's content-addressed key
/// is computed up front and looked up *before* the guard runs; a hit
/// short-circuits compilation entirely (or, in Verify mode, recompiles
/// and cross-checks byte identity), and only verifier-clean
/// non-degraded successes are ever inserted. See pipeline/Cache.h.
///
/// A failed or degraded function never stops the batch; its outcome is
/// recorded per-function and surfaced in the stats report's "failures"
/// and "degradations" sections. Ladder decisions depend only on the
/// input (fault-injection keys are input positions, real wall-clock
/// deadlines are off by default), so fault-injected batches keep the
/// worker-count determinism guarantee. Arming DeadlineMs trades that
/// guarantee for overrun protection — expiry depends on machine load.
///
/// Process isolation (BatchOptions::Isolate): each ladder rung runs in a
/// sandboxed child process (pirac --worker, see pipeline/Worker.h and
/// support/Subprocess.h) so a crash, OOM kill, or hard hang in one
/// function becomes a structured ChildCrashed / ChildKilled /
/// ChildTimeout diagnostic instead of taking down the batch driver.
/// Spawn-level failures and ChildKilled retry up to MaxRetries times
/// with a deterministic backoff. When BatchOptions::Journal is set,
/// every finished function is appended to a crash-safe on-disk journal,
/// and a resumed run replays journal records instead of recompiling.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_PIPELINE_BATCH_H
#define PIRA_PIPELINE_BATCH_H

#include "pipeline/Strategies.h"
#include "support/Json.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pira {

class MachineModel;
class CompilationCache;
class BatchJournal;

/// One unit of batch work: a named symbolic-form function.
struct BatchItem {
  std::string Name;  ///< Display name ("file.pir" or the function name).
  Function Input;    ///< Symbolic code to compile.
};

/// Per-function resource budget; 0 means unlimited. Instruction and
/// block caps are checked against the input before any phase runs and
/// are fully deterministic. DeadlineMs arms the cooperative per-task
/// watchdog (support/ThreadPool) around every ladder rung — overruns
/// depend on wall clock, so arming it trades batch determinism for
/// protection against pathological inputs.
struct ResourceBudget {
  uint64_t MaxInstructions = 0; ///< Cap on input instruction count.
  uint64_t MaxBlocks = 0;       ///< Cap on input basic-block count.
  uint64_t DeadlineMs = 0;      ///< Wall-clock budget per ladder rung.
};

/// Batch-wide knobs.
struct BatchOptions {
  StrategyKind Strategy = StrategyKind::Combined;
  PinterOptions Pinter;       ///< Tunes the Combined strategy only.
  OracleOptions Oracle;       ///< Tunes the Oracle strategy only.
  /// Worker threads; 0 means ThreadPool::defaultJobCount() (PIRA_JOBS or
  /// the hardware concurrency). 1 compiles inline with no pool at all,
  /// which doubles as the serial reference for determinism checks.
  unsigned Jobs = 0;
  bool Measure = true;        ///< Also simulate + check semantics.
  uint64_t Seed = 42;         ///< Simulation seed (Measure only).
  ResourceBudget Budget;      ///< Per-function resource limits.
  /// Walk the degradation ladder on failure (requested strategy →
  /// alloc-first → spill-all). Off means one attempt, report as-is.
  bool Degrade = true;
  /// Content-addressed compilation cache (pipeline/Cache.h), consulted
  /// before the compile guard and fed after verifier-clean non-degraded
  /// successes. Null (the default) disables caching; non-owning, must
  /// outlive the call. The cache's own mode picks On vs Verify.
  CompilationCache *Cache = nullptr;

  /// Run every ladder rung in a sandboxed child process (see file
  /// comment). Requires WorkerExe; child deaths become structured
  /// ChildCrashed / ChildKilled / ChildTimeout diagnostics.
  bool Isolate = false;
  /// Path of the pirac binary to self-exec as `WorkerExe --worker`.
  /// pirac fills this from /proc/self/exe; empty disables isolation.
  std::string WorkerExe;
  /// Extra attempts for retryable child failures (spawn errors and
  /// ChildKilled). 0 means one attempt, no retries.
  unsigned MaxRetries = 0;
  /// Base backoff before retry attempt N: RetryBackoffMs << (N - 1)
  /// milliseconds. Deterministic — no jitter, no clock sampling.
  unsigned RetryBackoffMs = 10;
  /// Address-space cap (RLIMIT_AS) per child, MiB; 0 leaves it off.
  /// Keep it off under sanitizers — ASan reserves terabytes of shadow.
  uint64_t ChildMemLimitMB = 0;
  /// Wall-clock budget per child, ms; the parent SIGKILLs overruns and
  /// reports ChildTimeout. 0 leaves it off. Like Budget.DeadlineMs this
  /// depends on real time, so arming it trades batch determinism for
  /// hang protection.
  uint64_t ChildTimeoutMs = 0;
  /// Crash-safe batch journal (pipeline/Journal.h). Non-owning; must be
  /// open and must outlive the call. Finished functions are appended;
  /// positions already present replay instead of recompiling.
  BatchJournal *Journal = nullptr;

  /// Emit a live progress line to stderr as items finish: done/total,
  /// failed/degraded/crashed tallies, cache hit rate (when a cache is
  /// live), and an ETA. Rate-limited, and TTY-aware: a terminal gets an
  /// in-place carriage-return line, a pipe gets occasional full lines.
  /// Display only — no effect on results or reports.
  bool Progress = false;
};

/// One failed ladder attempt: which rung, and why it failed.
struct CompileAttempt {
  std::string Rung;  ///< Strategy name of the attempt.
  Status Diag;       ///< Its structured failure.
};

/// How one function's sandboxed children behaved (Isolate mode only;
/// all-zero otherwise). Every field is a deterministic function of the
/// input and the armed fault sites — wall-clock timeouts excepted — so
/// it may appear in the stats report without breaking the byte-identity
/// contract.
struct IsolationOutcome {
  bool Isolated = false;   ///< Compiled out of process at all.
  unsigned Spawns = 0;     ///< Children forked (rungs × attempts).
  unsigned Retries = 0;    ///< Attempts beyond the first, summed.
  unsigned Crashes = 0;    ///< Children that died on a crash signal.
  unsigned Timeouts = 0;   ///< Children SIGKILLed by the watchdog.
  int ExitCode = 0;        ///< Last child's exit code (-1 if signaled).
  int Signal = 0;          ///< Last child's fatal signal (0 if none).
  bool TimedOut = false;   ///< Last child hit the wall-clock budget.
};

/// How one function travelled through the guard and the ladder.
struct CompileOutcome {
  std::string Requested;   ///< Strategy the caller asked for.
  std::string Used;        ///< Rung that produced the final result
                           ///< (empty when the budget rejected the input).
  unsigned Rung = 0;       ///< 0 = requested strategy, 1 = alloc-first, ...
  bool Degraded = false;   ///< Succeeded, but below the requested rung.
  std::vector<CompileAttempt> FailedAttempts; ///< Rungs that failed first.
  IsolationOutcome Isolation; ///< Child-process record (Isolate mode).
  /// Replayed from a batch journal rather than compiled. Deliberately
  /// not serialized into per-function stats: a resumed run's report must
  /// stay byte-identical to the uninterrupted run's (the resumed tally
  /// lives in the telemetry counters instead).
  bool Resumed = false;
};

/// Guarded result: the final PipelineResult (last rung attempted) plus
/// the ladder record.
struct GuardedResult {
  PipelineResult Result;
  CompileOutcome Outcome;
  /// Raw result-doc-v2 telemetry blocks from every sandboxed child that
  /// answered (Isolate mode only; empty otherwise). Already merged into
  /// the live registries by the time the caller sees them; kept so the
  /// journal can store them and a resumed run can re-merge. Not part of
  /// stats reports.
  std::vector<json::Value> ChildTelemetry;
};

/// Compiles one function under the full fault-isolation contract (see
/// file comment): budget check, watchdog deadline, exception capture,
/// degradation ladder. Never throws; every failure is a structured
/// diagnostic in the returned result.
GuardedResult compileFunctionGuarded(const Function &Input,
                                     const MachineModel &Machine,
                                     const BatchOptions &Opts = {});

/// An input that never reached compilation (unreadable file, parse or
/// verify failure). pirac collects these so the stats report's
/// "failures" section covers the whole input set, not just the
/// functions that compiled.
struct BatchFailure {
  std::string Name;
  Status Diag;
};

/// Everything a batch run produces. Results sits in input order no
/// matter which worker finished first.
struct BatchResult {
  std::vector<PipelineResult> Results;  ///< Parallel to the input batch.
  std::vector<CompileOutcome> Outcomes; ///< Ladder record per item.
  unsigned JobsUsed = 0;                ///< Worker threads actually used.
  unsigned Succeeded = 0;               ///< Results with Success set.
  unsigned Failed = 0;                  ///< Results with Success clear.
  unsigned Degraded = 0;                ///< Succeeded below the requested rung.

  /// Isolation tallies (zero outside Isolate mode). Deterministic, so
  /// they live in the report's "batch" block — except Resumed, which
  /// depends on where the previous run died and is surfaced via the
  /// counters section only (see CompileOutcome::Resumed).
  unsigned Isolated = 0;  ///< Functions compiled in child processes.
  unsigned Crashes = 0;   ///< Child crash signals over the whole batch.
  unsigned Timeouts = 0;  ///< Child wall/CPU overruns over the batch.
  unsigned Retries = 0;   ///< Child retry attempts over the batch.
  unsigned Resumed = 0;   ///< Functions replayed from the journal.

  /// Sums over successful results (deterministic; see file comment).
  unsigned TotalRegistersUsed = 0;   ///< Max, not sum: peak register need.
  unsigned TotalSpilledWebs = 0;
  unsigned TotalSpillInstructions = 0;
  unsigned TotalFalseDeps = 0;
  unsigned TotalStaticCycles = 0;
  uint64_t TotalDynCycles = 0;
  uint64_t TotalDynInstructions = 0;
};

/// Recomputes every aggregate field of \p R (Succeeded, Failed,
/// Degraded, isolation tallies, the Total* sums) from Results and
/// Outcomes, walking them in input order. compileBatch calls this at
/// the end of every run; the service client (service/Client.h) calls it
/// after assembling a BatchResult from daemon responses, so both paths
/// aggregate identically — that identity is what makes a remote batch
/// report byte-compare clean against an in-process one.
void finalizeBatchAggregates(BatchResult &R);

/// Compiles every item of \p Batch with \p Opts.Strategy for \p Machine.
/// \p Machine is shared read-only across workers and must outlive the
/// call. Items compile independently; a failure in one does not stop the
/// others. Each item's fault-injection key is its input position.
BatchResult compileBatch(const std::vector<BatchItem> &Batch,
                         const MachineModel &Machine,
                         const BatchOptions &Opts = {});

/// One observation of batch progress, as rendered into a --progress
/// stderr line. Plain data so the formatting is unit-testable away from
/// the atomics and the rate limiter that feed it.
struct ProgressSnapshot {
  uint64_t Done = 0;
  uint64_t Total = 0;
  uint64_t Failed = 0;
  uint64_t Degraded = 0;
  uint64_t Crashed = 0;
  /// Cache tallies; the cache segment is omitted when HasCache is false
  /// or no lookup has happened yet.
  bool HasCache = false;
  uint64_t CacheHits = 0;
  uint64_t CacheLookups = 0;
  /// Wall time since the batch started, in seconds.
  double ElapsedS = 0.0;
};

/// Renders one --progress line (text only; the terminal redraw bytes
/// are the caller's concern). Pure: same snapshot, same string. The
/// rate and ETA segments require at least one finished item and a
/// strictly positive elapsed time — the first tick of a fast batch can
/// land within the clock's granularity, and dividing by that zero must
/// not leak "inf" or "nan" into the line.
std::string formatProgressLine(const ProgressSnapshot &S);

/// Assembles the versioned "pira.stats" document for a batch run: the
/// shared preamble, one "functions" array entry per item (input order),
/// batch aggregates, a "failures" array (every failed function plus the
/// \p InputFailures that never compiled), a "degradations" array (every
/// function rescued below its requested rung, with the per-rung
/// diagnostics), a "cache" block when \p Cache is non-null (schema v3),
/// counters, and timers. Schema v4 adds a per-function "isolation"
/// record for functions compiled out of process and the batch
/// "isolated"/"crashes"/"timeouts"/"retries" tallies (deterministic;
/// the resumed count is deliberately counters-only). Schema v5 adds the
/// "provenance" block and the "histograms" section (pipeline/Report.h).
/// Everything except "histograms" bucket placement and "timers" is
/// byte-identical across worker counts (histogram *counts* included);
/// the worker count itself is deliberately not recorded so reports diff
/// clean across --jobs values. (The "counters", "histograms", and
/// "cache" sections do vary between cold and warm cache runs — a hit
/// legitimately skips the compile-phase counters — so warm-vs-cold
/// report comparisons exclude "timers", "counters", "histograms", and
/// "cache".)
json::Value makeBatchStatsReport(const BatchResult &R,
                                 const std::vector<BatchItem> &Batch,
                                 const std::string &Strategy,
                                 const MachineModel &Machine,
                                 const std::vector<BatchFailure> &InputFailures = {},
                                 const CompilationCache *Cache = nullptr);

} // namespace pira

#endif // PIRA_PIPELINE_BATCH_H
