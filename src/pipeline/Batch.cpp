//===- pipeline/Batch.cpp - Parallel batch-compilation driver -------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Batch.h"

#include "ir/Printer.h"
#include "machine/MachineConfig.h"
#include "machine/MachineModel.h"
#include "pipeline/Cache.h"
#include "pipeline/Journal.h"
#include "pipeline/Report.h"
#include "pipeline/Worker.h"
#include "support/FaultInjection.h"
#include "support/Subprocess.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>

#include <unistd.h>

using namespace pira;

PIRA_STAT(NumBatchesCompiled, "Batch compilations driven");
PIRA_STAT(NumBatchItemsCompiled, "Functions compiled via compileBatch");
PIRA_STAT(NumGuardedCompiles, "Functions run through the compile guard");
PIRA_STAT(NumBudgetRejections, "Functions rejected by the resource budget");
PIRA_STAT(NumDegradedFunctions,
          "Functions rescued by a lower ladder rung than requested");
PIRA_STAT(NumFailedFunctions, "Functions that failed every ladder rung");
PIRA_STAT(NumCapturedTaskExceptions,
          "Phase exceptions captured by the compile guard");
PIRA_STAT(NumIsolatedCompiles, "Functions compiled in sandboxed children");
PIRA_STAT(NumChildCrashes, "Sandboxed children that died on a crash signal");
PIRA_STAT(NumChildTimeouts,
          "Sandboxed children killed for exceeding their wall/CPU budget");
PIRA_STAT(NumChildKills,
          "Sandboxed children killed by other signals (OOM kill, external)");
PIRA_STAT(NumChildRetries, "Sandboxed child attempts beyond the first");
PIRA_STAT(NumWorkerProtocolErrors,
          "Sandboxed children that exited without a valid result document");
PIRA_STAT(NumJournalCorruptReplays,
          "Journal records that failed to decode (recompiled instead)");

PIRA_HIST(CompileFunctionLatency,
          "End-to-end latency of one function's compile (guarded or "
          "isolated, retries included)");
PIRA_HIST(LadderRungLatency,
          "Latency of one degradation-ladder rung attempt (recorded where "
          "the rung ran: in-process, or inside the sandboxed child and "
          "merged up)");

/// Marks \p R failed with both the legacy string and the structured
/// diagnostic (the Strategies-side twin is file-static).
static void failResult(PipelineResult &R, Status S) {
  R.Success = false;
  R.Error = S.toString();
  R.Diag = std::move(S);
}

/// One ladder rung under the guard: arms the watchdog, runs the
/// strategy, and converts anything thrown into a structured failure.
static PipelineResult runRungGuarded(StrategyKind Kind, const Function &Input,
                                     const MachineModel &Machine,
                                     const BatchOptions &Opts) {
  PipelineResult R;
  try {
    deadline::ScopedDeadline Watchdog(Opts.Budget.DeadlineMs);
    R = Opts.Measure
            ? runAndMeasure(Kind, Input, Machine, Opts.Pinter, Opts.Seed,
                            Opts.Oracle)
            : runStrategy(Kind, Input, Machine, Opts.Pinter, Opts.Oracle);
  } catch (const faultinject::FaultInjectedError &E) {
    ++NumCapturedTaskExceptions;
    failResult(R, Status::error(ErrorCode::FaultInjected, "guard", E.what()));
  } catch (const deadline::DeadlineExceededError &) {
    ++NumCapturedTaskExceptions;
    failResult(R, Status::error(
                      ErrorCode::DeadlineExceeded, "guard",
                      "watchdog deadline exceeded (budget " +
                          std::to_string(Opts.Budget.DeadlineMs) + " ms)"));
  } catch (const std::exception &E) {
    ++NumCapturedTaskExceptions;
    failResult(R, Status::error(ErrorCode::Internal, "guard",
                                std::string("unhandled exception: ") +
                                    E.what()));
  } catch (...) {
    ++NumCapturedTaskExceptions;
    failResult(R, Status::error(ErrorCode::Internal, "guard",
                                "unhandled non-standard exception"));
  }
  return R;
}

GuardedResult pira::compileFunctionGuarded(const Function &Input,
                                           const MachineModel &Machine,
                                           const BatchOptions &Opts) {
  PIRA_TIME_SCOPE("batch/guarded-compile");
  ++NumGuardedCompiles;
  // Hard-fault sites (crash.*) fire before the exception net on purpose:
  // they model the failures no in-process guard can catch — the whole
  // reason the batch driver grows a process sandbox.
  faultinject::maybeHardFault();
  GuardedResult Out;
  Out.Outcome.Requested = strategyName(Opts.Strategy);
  std::string FnFrame = "function @" + Input.name();

  // Budget gate: reject oversized inputs before any phase burns time on
  // them. Deterministic — a pure function of the input.
  bool InjectedBudget = faultinject::shouldFire("budget.instructions");
  uint64_t Insts = Input.totalInstructions();
  if (InjectedBudget ||
      (Opts.Budget.MaxInstructions != 0 &&
       Insts > Opts.Budget.MaxInstructions)) {
    ++NumBudgetRejections;
    Status S =
        InjectedBudget
            ? Status::error(ErrorCode::FaultInjected, "budget",
                            "injected instruction-budget overrun")
            : Status::error(ErrorCode::ResourceExhausted, "budget",
                            std::to_string(Insts) +
                                " instructions exceed the budget of " +
                                std::to_string(Opts.Budget.MaxInstructions));
    S.addContext(FnFrame);
    failResult(Out.Result, std::move(S));
    return Out;
  }
  if (Opts.Budget.MaxBlocks != 0 && Input.numBlocks() > Opts.Budget.MaxBlocks) {
    ++NumBudgetRejections;
    Status S = Status::error(
        ErrorCode::ResourceExhausted, "budget",
        std::to_string(Input.numBlocks()) +
            " blocks exceed the budget of " +
            std::to_string(Opts.Budget.MaxBlocks));
    S.addContext(FnFrame);
    failResult(Out.Result, std::move(S));
    return Out;
  }

  // The degradation ladder: requested strategy first, then Chaitin on
  // the plain interference graph, then the spill-everywhere baseline.
  std::vector<StrategyKind> Rungs = {Opts.Strategy};
  if (Opts.Degrade) {
    if (Opts.Strategy != StrategyKind::AllocFirst &&
        Opts.Strategy != StrategyKind::SpillAll)
      Rungs.push_back(StrategyKind::AllocFirst);
    if (Opts.Strategy != StrategyKind::SpillAll)
      Rungs.push_back(StrategyKind::SpillAll);
  }

  for (unsigned I = 0; I != Rungs.size(); ++I) {
    PipelineResult R;
    {
      telemetry::HistTimer RungTimer(LadderRungLatency);
      R = runRungGuarded(Rungs[I], Input, Machine, Opts);
    }
    R.Diag.addContext("rung " + std::string(strategyName(Rungs[I])));
    R.Diag.addContext(FnFrame);
    Out.Outcome.Used = strategyName(Rungs[I]);
    Out.Outcome.Rung = I;
    if (R.Success) {
      Out.Outcome.Degraded = I != 0;
      if (Out.Outcome.Degraded)
        ++NumDegradedFunctions;
      Out.Result = std::move(R);
      return Out;
    }
    // A blown deadline or budget would blow again on a retry that
    // starts from the same input; stop the ladder there.
    bool Fatal = R.Diag.code() == ErrorCode::DeadlineExceeded ||
                 R.Diag.code() == ErrorCode::ResourceExhausted;
    Out.Outcome.FailedAttempts.push_back(
        {std::string(strategyName(Rungs[I])), R.Diag});
    Out.Result = std::move(R);
    if (Fatal)
      break;
  }
  ++NumFailedFunctions;
  return Out;
}

//===----------------------------------------------------------------------===//
// Out-of-process compilation (BatchOptions::Isolate)
//===----------------------------------------------------------------------===//

/// Serializes the child-process record; appears per-function in the
/// stats report and in journal records.
static json::Value isolationToJson(const IsolationOutcome &Iso) {
  json::Value Out = json::Value::object();
  Out.set("isolated", Iso.Isolated);
  Out.set("spawns", Iso.Spawns);
  Out.set("retries", Iso.Retries);
  Out.set("crashes", Iso.Crashes);
  Out.set("timeouts", Iso.Timeouts);
  Out.set("exit", Iso.ExitCode);
  Out.set("signal", Iso.Signal);
  Out.set("timed_out", Iso.TimedOut);
  return Out;
}

/// Lenient inverse, for journal replay. Missing members keep defaults so
/// an older journal still replays.
static void isolationFromJson(const json::Value &Doc, IsolationOutcome &Iso) {
  auto U = [&Doc](const char *Name, unsigned &Out) {
    if (const json::Value *V = Doc.find(Name); V != nullptr && V->isInt())
      Out = static_cast<unsigned>(V->asInt());
  };
  if (const json::Value *V = Doc.find("isolated");
      V != nullptr && V->isBool())
    Iso.Isolated = V->asBool();
  U("spawns", Iso.Spawns);
  U("retries", Iso.Retries);
  U("crashes", Iso.Crashes);
  U("timeouts", Iso.Timeouts);
  if (const json::Value *V = Doc.find("exit"); V != nullptr && V->isInt())
    Iso.ExitCode = static_cast<int>(V->asInt());
  if (const json::Value *V = Doc.find("signal"); V != nullptr && V->isInt())
    Iso.Signal = static_cast<int>(V->asInt());
  if (const json::Value *V = Doc.find("timed_out");
      V != nullptr && V->isBool())
    Iso.TimedOut = V->asBool();
}

/// Classifies how a reaped child died. Crash signals become
/// ChildCrashed; the kernel's CPU-rlimit signal maps to ChildTimeout
/// like the parent's own watchdog kill; everything else (the OOM
/// killer's SIGKILL, an external kill) is ChildKilled — the one class
/// worth retrying, since the cause may be transient.
static ErrorCode classifyChildSignal(int Signal) {
  switch (Signal) {
  case SIGSEGV:
  case SIGABRT:
  case SIGBUS:
  case SIGILL:
  case SIGFPE:
  case SIGTRAP:
    return ErrorCode::ChildCrashed;
  case SIGXCPU:
    return ErrorCode::ChildTimeout;
  default:
    return ErrorCode::ChildKilled;
  }
}

/// compileFunctionGuarded's out-of-process twin: the parent walks the
/// same degradation ladder, but every rung runs in a sandboxed child
/// (`WorkerExe --worker`, Degrade off) so crashes, OOM kills, and hard
/// hangs in one rung surface as structured diagnostics and the next
/// rung still gets its chance. Spawn failures and ChildKilled retry up
/// to Opts.MaxRetries times with deterministic backoff; ChildTimeout is
/// fatal to the ladder (a hang would hang again), mirroring how the
/// in-process ladder stops on DeadlineExceeded.
static GuardedResult compileFunctionIsolated(const Function &Input,
                                             const std::string &MachineText,
                                             const BatchOptions &Opts) {
  PIRA_TIME_SCOPE("batch/isolated-compile");
  ++NumIsolatedCompiles;
  GuardedResult Out;
  IsolationOutcome &Iso = Out.Outcome.Isolation;
  Iso.Isolated = true;
  Out.Outcome.Requested = strategyName(Opts.Strategy);
  std::string FnFrame = "function @" + Input.name();

  std::string IRText = functionToString(Input);
  std::string FaultSpec = faultinject::currentSpec();
  uint64_t FaultKey = faultinject::currentKey();

  std::vector<StrategyKind> Rungs = {Opts.Strategy};
  if (Opts.Degrade) {
    if (Opts.Strategy != StrategyKind::AllocFirst &&
        Opts.Strategy != StrategyKind::SpillAll)
      Rungs.push_back(StrategyKind::AllocFirst);
    if (Opts.Strategy != StrategyKind::SpillAll)
      Rungs.push_back(StrategyKind::SpillAll);
  }

  for (unsigned RungIdx = 0; RungIdx != Rungs.size(); ++RungIdx) {
    PIRA_TIME_SCOPE("isolate/rung");
    std::string RungName = strategyName(Rungs[RungIdx]);

    // The child compiles exactly this rung: ladder policy stays in the
    // parent, so a rung that crashes the child still falls through to
    // the next rung.
    BatchOptions ChildOpts = Opts;
    ChildOpts.Strategy = Rungs[RungIdx];
    ChildOpts.Degrade = false;
    ChildOpts.Isolate = false;
    ChildOpts.Jobs = 1;
    ChildOpts.Cache = nullptr;
    ChildOpts.Journal = nullptr;
    std::string Job =
        encodeWorkerJob(IRText, MachineText, ChildOpts, FaultSpec, FaultKey)
            .toString(-1) +
        "\n";

    GuardedResult Child;
    bool GotResult = false;
    Status RungDiag;
    for (unsigned Attempt = 0;; ++Attempt) {
      if (Attempt != 0) {
        ++Iso.Retries;
        ++NumChildRetries;
        // Deterministic exponential backoff; no jitter, no clock reads.
        std::this_thread::sleep_for(std::chrono::milliseconds(
            static_cast<uint64_t>(Opts.RetryBackoffMs) << (Attempt - 1)));
      }
      ++Iso.Spawns;
      SubprocessOptions SP;
      SP.Argv = {Opts.WorkerExe, "--worker"};
      SP.Input = Job;
      SP.TimeoutMs = Opts.ChildTimeoutMs;
      SP.MemoryLimitMB = Opts.ChildMemLimitMB;
      // The child's trace timeline gets re-based onto this instant, so
      // its phases nest under the span this scope records.
      uint64_t SpawnStartNs = telemetry::monotonicNowNs();
      Expected<SubprocessResult> SR = [&SP] {
        PIRA_TIME_SCOPE("isolate/spawn");
        return runSubprocess(SP);
      }();

      bool Retryable = false;
      if (!SR) {
        // Spawn-level failure (fork/pipe/exec): nothing ran, so a retry
        // is always safe and the cause (fd or pid pressure) transient.
        RungDiag = SR.status();
        RungDiag.addContext("spawning " + Opts.WorkerExe);
        Retryable = true;
      } else {
        Iso.ExitCode = SR->ExitCode;
        Iso.Signal = SR->Signal;
        Iso.TimedOut = SR->TimedOut;
        if (SR->TimedOut) {
          ++Iso.Timeouts;
          ++NumChildTimeouts;
          RungDiag = Status::error(
              ErrorCode::ChildTimeout, "isolate",
              "worker killed after exceeding its wall-clock budget of " +
                  std::to_string(Opts.ChildTimeoutMs) + " ms");
        } else if (SR->Signal != 0) {
          ErrorCode Code = classifyChildSignal(SR->Signal);
          std::string Msg = "worker died on signal " +
                            std::to_string(SR->Signal) + " (" +
                            signalName(SR->Signal) + ")";
          if (Code == ErrorCode::ChildCrashed) {
            ++Iso.Crashes;
            ++NumChildCrashes;
          } else if (Code == ErrorCode::ChildTimeout) {
            ++Iso.Timeouts;
            ++NumChildTimeouts;
            Msg += " [CPU rlimit]";
          } else {
            ++NumChildKills;
            Retryable = true;
          }
          RungDiag = Status::error(Code, "isolate", std::move(Msg));
        } else {
          // Child exited on its own; a valid result document is the
          // only acceptable outcome, exit status notwithstanding.
          json::Value Doc;
          std::string Error;
          Expected<GuardedResult> Decoded =
              json::parse(SR->Stdout, Doc, Error)
                  ? decodeWorkerResult(Doc)
                  : Expected<GuardedResult>(Status::error(
                        ErrorCode::Internal, "isolate",
                        "worker wrote no parsable result document (" +
                            Error + ")"));
          if (Decoded) {
            Child = Decoded.take();
            GotResult = true;
            // Protocol v2: fold the child's counters, histograms, and
            // (when recording) trace events into this process as if the
            // compile had run here. Keep the raw block too — it rides
            // into the journal so a resumed run can re-merge it.
            if (const json::Value *Tel = Doc.find("telemetry")) {
              telemetry::mergeSnapshot(*Tel, SpawnStartNs);
              Out.ChildTelemetry.push_back(*Tel);
            }
          } else {
            ++NumWorkerProtocolErrors;
            RungDiag = Decoded.status();
            if (SR->ExitCode != 0)
              RungDiag.addContext("worker exit code " +
                                  std::to_string(SR->ExitCode));
          }
        }
      }
      if (GotResult || !Retryable || Attempt >= Opts.MaxRetries)
        break;
    }

    Out.Outcome.Used = RungName;
    Out.Outcome.Rung = RungIdx;
    if (GotResult) {
      if (Child.Result.Success) {
        Out.Outcome.Degraded = RungIdx != 0;
        if (Out.Outcome.Degraded)
          ++NumDegradedFunctions;
        Out.Result = std::move(Child.Result);
        return Out;
      }
      // Clean child, failed compile: the child's diagnostic already
      // carries its rung and function context. Same fatal classes as
      // the in-process ladder.
      bool Fatal = Child.Result.Diag.code() == ErrorCode::DeadlineExceeded ||
                   Child.Result.Diag.code() == ErrorCode::ResourceExhausted;
      Out.Outcome.FailedAttempts.push_back({RungName, Child.Result.Diag});
      Out.Result = std::move(Child.Result);
      if (Fatal)
        break;
      continue;
    }

    RungDiag.addContext("rung " + RungName);
    RungDiag.addContext(FnFrame);
    Out.Outcome.FailedAttempts.push_back({RungName, RungDiag});
    failResult(Out.Result, RungDiag);
    // A hung child would hang again from the same input; crashes and
    // kills may be rung-specific, so those walk on down the ladder.
    if (Out.Result.Diag.code() == ErrorCode::ChildTimeout)
      break;
  }
  ++NumFailedFunctions;
  return Out;
}

namespace {

/// The --progress stderr line. Purely cosmetic: it reads the finished
/// slots and the cache tallies, never influences them, and is rate
/// limited so a fast batch doesn't drown stderr. On a terminal the line
/// redraws in place (CR + clear-to-EOL); piped stderr gets occasional
/// whole lines instead so logs stay readable.
class ProgressMeter {
public:
  ProgressMeter(bool Enabled, size_t Total, const CompilationCache *Cache)
      : Enabled(Enabled && Total > 0), Total(Total), Cache(Cache),
        IsTty(::isatty(STDERR_FILENO) != 0),
        StartNs(telemetry::monotonicNowNs()),
        LastEmitNs(0) {}

  void tick(const PipelineResult &P, const CompileOutcome &O) {
    if (!Enabled)
      return;
    Done.fetch_add(1, std::memory_order_relaxed);
    if (!P.Success)
      Failed.fetch_add(1, std::memory_order_relaxed);
    if (O.Degraded)
      Degraded.fetch_add(1, std::memory_order_relaxed);
    if (O.Isolation.Crashes != 0)
      Crashed.fetch_add(O.Isolation.Crashes, std::memory_order_relaxed);
    maybeEmit(/*Final=*/false);
  }

  void finish() {
    if (Enabled)
      maybeEmit(/*Final=*/true);
  }

private:
  void maybeEmit(bool Final) {
    uint64_t Now = telemetry::monotonicNowNs();
    if (!Final) {
      uint64_t Interval = IsTty ? 100'000'000ull : 1'000'000'000ull;
      uint64_t Last = LastEmitNs.load(std::memory_order_relaxed);
      if (Now - Last < Interval ||
          !LastEmitNs.compare_exchange_strong(Last, Now,
                                              std::memory_order_relaxed))
        return;
    }
    std::lock_guard<std::mutex> Lock(EmitMutex);
    ProgressSnapshot S;
    S.Done = Done.load(std::memory_order_relaxed);
    S.Total = Total;
    S.Failed = Failed.load(std::memory_order_relaxed);
    S.Degraded = Degraded.load(std::memory_order_relaxed);
    S.Crashed = Crashed.load(std::memory_order_relaxed);
    if (Cache != nullptr) {
      CompilationCache::Stats CS = Cache->stats();
      S.HasCache = true;
      S.CacheHits = CS.MemoryHits + CS.DiskHits;
      S.CacheLookups = S.CacheHits + CS.Misses;
    }
    S.ElapsedS = static_cast<double>(Now - StartNs) / 1e9;
    std::string Line = formatProgressLine(S);
    if (IsTty) {
      // Redraw in place; the final emission commits the line.
      std::fputs(("\r" + Line + "\x1b[K").c_str(), stderr);
      if (Final)
        std::fputc('\n', stderr);
    } else {
      std::fputs((Line + "\n").c_str(), stderr);
    }
    std::fflush(stderr);
  }

  bool Enabled;
  size_t Total;
  const CompilationCache *Cache;
  bool IsTty;
  uint64_t StartNs;
  std::atomic<uint64_t> LastEmitNs;
  std::atomic<uint64_t> Done{0};
  std::atomic<uint64_t> Failed{0};
  std::atomic<uint64_t> Degraded{0};
  std::atomic<uint64_t> Crashed{0};
  std::mutex EmitMutex;
};

} // namespace

std::string pira::formatProgressLine(const ProgressSnapshot &S) {
  std::string Line = "pirac: " + std::to_string(S.Done) + "/" +
                     std::to_string(S.Total) + " done";
  Line += ", " + std::to_string(S.Failed) + " failed";
  Line += ", " + std::to_string(S.Degraded) + " degraded";
  Line += ", " + std::to_string(S.Crashed) + " crashed";
  if (S.HasCache && S.CacheLookups != 0) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.1f",
                  100.0 * static_cast<double>(S.CacheHits) /
                      static_cast<double>(S.CacheLookups));
    Line += std::string(" | cache ") + Buf + "%";
  }
  // Both divisions below need Done > 0 and a positive elapsed time; the
  // first tick of a fast batch can land at elapsed == 0 (clock
  // granularity), where a rate would print "inf" and the ETA "nan".
  if (S.Done != 0 && S.ElapsedS > 0.0) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.1f",
                  static_cast<double>(S.Done) / S.ElapsedS);
    Line += std::string(" | ") + Buf + "/s";
    if (S.Done < S.Total) {
      double Eta = S.ElapsedS / static_cast<double>(S.Done) *
                   static_cast<double>(S.Total - S.Done);
      std::snprintf(Buf, sizeof(Buf), "%.1f", Eta);
      Line += std::string(" | eta ") + Buf + "s";
    }
  }
  return Line;
}

BatchResult pira::compileBatch(const std::vector<BatchItem> &Batch,
                               const MachineModel &Machine,
                               const BatchOptions &OptsIn) {
  BatchOptions Opts = OptsIn;
  // The whole-batch span is recorded by hand at the end rather than as
  // a TimeScope: a live scope on the caller's thread would prefix the
  // serial path's per-item event paths but not the pool workers', and
  // the trace contract is that the event set does not depend on the
  // worker count.
  uint64_t BatchStartNs = telemetry::monotonicNowNs();
  ++NumBatchesCompiled;
  NumBatchItemsCompiled += Batch.size();

  BatchResult R;
  R.Results.resize(Batch.size());
  R.Outcomes.resize(Batch.size());

  // Isolation needs the printed machine description in every job
  // document; print it once, outside the workers.
  bool UseIsolation = Opts.Isolate && !Opts.WorkerExe.empty();
  std::string MachineText =
      UseIsolation ? machineModelToString(Machine) : std::string();

  unsigned Jobs = Opts.Jobs == 0 ? ThreadPool::defaultJobCount() : Opts.Jobs;
  Jobs = std::max(1u, Jobs);

  // A single-function batch takes the serial path below and would leave
  // every requested worker idle. Spend them inside the compile instead:
  // hand the Pinter pipeline a pool so each block's transitive closure
  // runs its independent schedule-graph components in parallel. This is
  // invisible to results (component closures write disjoint rows) and
  // to the cache key (the pool is not a keyed option), so reports stay
  // byte-identical across --jobs. Isolated runs delegate to a child
  // process and get no pool here.
  std::unique_ptr<ThreadPool> ClosurePool;
  if (Jobs > 1 && Batch.size() == 1 && !UseIsolation) {
    ClosurePool = std::make_unique<ThreadPool>(Jobs);
    Opts.Pinter.ClosurePool = ClosurePool.get();
  }

  // Compiles item \p I in process or in a sandboxed child.
  auto Compile = [&](unsigned I) {
    telemetry::HistTimer Latency(CompileFunctionLatency);
    return UseIsolation
               ? compileFunctionIsolated(Batch[I].Input, MachineText, Opts)
               : compileFunctionGuarded(Batch[I].Input, Machine, Opts);
  };

  // Lands a finished item: journals it (when journaling), then moves it
  // into its slots. The journal write happens before the slots are
  // filled so a crash between the two re-runs the function rather than
  // losing it.
  auto Land = [&](unsigned I, GuardedResult G) {
    if (Opts.Journal != nullptr) {
      json::Value Iso;
      bool HasIso = G.Outcome.Isolation.Isolated;
      if (HasIso)
        Iso = isolationToJson(G.Outcome.Isolation);
      json::Value Doc = encodeWorkerResult(G);
      // Journal the children's telemetry blocks alongside the result so
      // a resumed run re-merges the counters/histograms this run did.
      if (!G.ChildTelemetry.empty()) {
        json::Value Tels = json::Value::array();
        for (json::Value &Tel : G.ChildTelemetry)
          Tels.push(std::move(Tel));
        Doc.set("telemetry_list", std::move(Tels));
      }
      // Append failures are tallied inside the journal (the driver
      // surfaces them as an exit-code-3 condition); the batch itself
      // keeps going — a broken journal must not break the compile.
      (void)Opts.Journal->append(I, Batch[I].Name, std::move(Doc),
                                 HasIso ? &Iso : nullptr);
    }
    R.Results[I] = std::move(G.Result);
    R.Outcomes[I] = std::move(G.Outcome);
  };

  auto CompileOne = [&](unsigned I) {
    // Each slot is written by exactly one worker; the MachineModel and
    // the inputs are read-only. runStrategy copies the function, so the
    // item itself is never mutated. The fault key is the input position,
    // so injected faults hit the same functions for any worker count.
    faultinject::ScopedKey Key(I);

    // Journal replay precedes everything: a position that finished in a
    // previous run is never recompiled (and never re-appended). The
    // decoded record restores result, ladder, and isolation fields, so
    // reports stay byte-identical modulo timers and counters.
    if (Opts.Journal != nullptr && Opts.Journal->has(I)) {
      const json::Value *Stored = Opts.Journal->resultFor(I);
      Expected<GuardedResult> Replayed = decodeWorkerResult(*Stored);
      if (Replayed) {
        GuardedResult G = Replayed.take();
        G.Outcome.Resumed = true;
        // A journaled isolated record carries its children's telemetry
        // blocks; replaying them restores the counters and histograms
        // the original run merged, so a resumed run's registries match
        // an uninterrupted one's.
        if (const json::Value *Tels = Stored->find("telemetry_list");
            Tels != nullptr && Tels->isArray())
          for (const json::Value &Tel : Tels->elements())
            telemetry::mergeSnapshot(Tel, telemetry::monotonicNowNs());
        if (const json::Value *Iso = Opts.Journal->isolationFor(I))
          isolationFromJson(*Iso, G.Outcome.Isolation);
        R.Results[I] = std::move(G.Result);
        R.Outcomes[I] = std::move(G.Outcome);
        return;
      }
      // An undecodable record (a journal from a newer build, say) is
      // not fatal: recompile the function and keep going.
      ++NumJournalCorruptReplays;
    }

    // Cache lookup precedes the compile guard: a hit stands in for the
    // entire guarded compile (it was inserted by one, and only clean
    // non-degraded successes ever are). The key must be computed under
    // the scoped fault key — armed faults are part of it.
    CompilationCache *Cache = Opts.Cache;
    std::string CacheKey;
    if (Cache != nullptr && Cache->mode() != CacheMode::Off) {
      CacheKey = computeCacheKey(Batch[I].Input, Machine, Opts);
      std::string CachedSerialized;
      std::optional<PipelineResult> Hit =
          Cache->lookup(CacheKey, &CachedSerialized);
      if (Hit) {
        if (Cache->mode() == CacheMode::On) {
          GuardedResult G;
          G.Result = std::move(*Hit);
          G.Outcome.Requested = strategyName(Opts.Strategy);
          G.Outcome.Used = G.Outcome.Requested;
          Land(I, std::move(G));
          return;
        }
        // Verify mode: recompile anyway and hold the entry to byte
        // identity. The fresh result wins either way, so a poisoned
        // cache can flag but never corrupt a verify run.
        GuardedResult G = Compile(I);
        bool Matches =
            G.Result.Success && !G.Outcome.Degraded &&
            encodeCacheEntry(G.Result, CacheKey).toString(-1) ==
                CachedSerialized;
        if (!Matches)
          Cache->noteVerifyMismatch();
        Land(I, std::move(G));
        return;
      }
    }

    GuardedResult G = Compile(I);
    // Never cache degraded or failed functions: they must re-walk the
    // ladder (and re-surface their diagnostics) on every run.
    if (!CacheKey.empty() && G.Result.Success && !G.Outcome.Degraded)
      Cache->insert(CacheKey, G.Result);
    Land(I, std::move(G));
  };

  ProgressMeter Progress(Opts.Progress, Batch.size(), Opts.Cache);
  // Slot I is fully written when CompileOne(I) returns, so the meter may
  // read its own item's result without racing other workers.
  auto CompileOneTicked = [&](unsigned I) {
    CompileOne(I);
    Progress.tick(R.Results[I], R.Outcomes[I]);
  };

  if (Jobs == 1 || Batch.size() <= 1) {
    // Serial reference path: no pool, same observable results.
    R.JobsUsed = 1;
    for (unsigned I = 0, E = static_cast<unsigned>(Batch.size()); I != E; ++I)
      CompileOneTicked(I);
  } else {
    ThreadPool Pool(Jobs);
    R.JobsUsed = Pool.numWorkers();
    Pool.parallelFor(static_cast<unsigned>(Batch.size()), CompileOneTicked);
  }
  Progress.finish();

  if (telemetry::enabled()) {
    telemetry::TimedEvent Span;
    Span.Path = "batch/compile";
    Span.Label = "batch/compile";
    Span.StartNs = BatchStartNs;
    Span.DurationNs = telemetry::monotonicNowNs() - BatchStartNs;
    Span.ThreadId = 0; // compileBatch runs on the driver's main thread
    Span.Depth = 0;
    Span.Pid = telemetry::processId();
    telemetry::recordForeignEvents({std::move(Span)});
  }

  // Deterministic merge: aggregates walk the results in input order, and
  // every aggregated field came from a computation independent of worker
  // scheduling.
  finalizeBatchAggregates(R);
  return R;
}

void pira::finalizeBatchAggregates(BatchResult &R) {
  R.Succeeded = R.Failed = R.Degraded = 0;
  R.Isolated = R.Crashes = R.Timeouts = R.Retries = R.Resumed = 0;
  R.TotalRegistersUsed = R.TotalSpilledWebs = R.TotalSpillInstructions = 0;
  R.TotalFalseDeps = R.TotalStaticCycles = 0;
  R.TotalDynCycles = R.TotalDynInstructions = 0;
  for (size_t I = 0; I != R.Results.size(); ++I) {
    const PipelineResult &P = R.Results[I];
    const IsolationOutcome &Iso = R.Outcomes[I].Isolation;
    if (Iso.Isolated)
      ++R.Isolated;
    R.Crashes += Iso.Crashes;
    R.Timeouts += Iso.Timeouts;
    R.Retries += Iso.Retries;
    if (R.Outcomes[I].Resumed)
      ++R.Resumed;
    if (!P.Success) {
      ++R.Failed;
      continue;
    }
    ++R.Succeeded;
    if (R.Outcomes[I].Degraded)
      ++R.Degraded;
    R.TotalRegistersUsed = std::max(R.TotalRegistersUsed, P.RegistersUsed);
    R.TotalSpilledWebs += P.SpilledWebs;
    R.TotalSpillInstructions += P.SpillInstructions;
    R.TotalFalseDeps += P.FalseDeps;
    R.TotalStaticCycles += P.StaticCycles;
    R.TotalDynCycles += P.DynCycles;
    R.TotalDynInstructions += P.DynInstructions;
  }
}

/// Serializes one ladder record ({"requested", "used", "rung",
/// "attempts": [{"rung", "diagnostic"}]}).
static json::Value outcomeToJson(const CompileOutcome &O) {
  json::Value Out = json::Value::object();
  Out.set("requested", O.Requested);
  Out.set("used", O.Used);
  Out.set("rung", O.Rung);
  json::Value Attempts = json::Value::array();
  for (const CompileAttempt &A : O.FailedAttempts) {
    json::Value One = json::Value::object();
    One.set("rung", A.Rung);
    One.set("diagnostic", A.Diag.toJson());
    Attempts.push(std::move(One));
  }
  Out.set("attempts", std::move(Attempts));
  return Out;
}

json::Value pira::makeBatchStatsReport(
    const BatchResult &R, const std::vector<BatchItem> &Batch,
    const std::string &Strategy, const MachineModel &Machine,
    const std::vector<BatchFailure> &InputFailures,
    const CompilationCache *Cache) {
  json::Value Root = json::Value::object();
  Root.set("schema", StatsSchemaName);
  Root.set("version", StatsSchemaVersion);
  Root.set("provenance", buildProvenanceToJson());
  if (!Strategy.empty())
    Root.set("strategy", Strategy);
  Root.set("machine", machineToJson(Machine));

  // Callers that assembled a BatchResult by hand may not have outcome
  // records; the report degrades to the pre-ladder shape then.
  bool HaveOutcomes = R.Outcomes.size() == R.Results.size();

  json::Value Functions = json::Value::array();
  for (size_t I = 0; I != R.Results.size(); ++I) {
    json::Value One = json::Value::object();
    One.set("name", I < Batch.size() ? Batch[I].Name : std::string());
    One.set("pipeline", pipelineResultToJson(R.Results[I]));
    if (HaveOutcomes && (R.Outcomes[I].Rung != 0 ||
                         !R.Outcomes[I].FailedAttempts.empty()))
      One.set("degradation", outcomeToJson(R.Outcomes[I]));
    // Schema v4: the child-process record, for isolated functions only.
    // Resumed-ness is deliberately absent (see CompileOutcome::Resumed).
    if (HaveOutcomes && R.Outcomes[I].Isolation.Isolated)
      One.set("isolation", isolationToJson(R.Outcomes[I].Isolation));
    Functions.push(std::move(One));
  }
  Root.set("functions", std::move(Functions));

  json::Value Agg = json::Value::object();
  Agg.set("items", static_cast<uint64_t>(R.Results.size()));
  Agg.set("succeeded", R.Succeeded);
  Agg.set("failed", R.Failed + static_cast<unsigned>(InputFailures.size()));
  Agg.set("degraded", R.Degraded);
  // Schema v4 isolation tallies. All deterministic — the resumed count
  // is not among them (counters-only), so a resumed run's report is
  // byte-identical to the uninterrupted run's.
  Agg.set("isolated", R.Isolated);
  Agg.set("crashes", R.Crashes);
  Agg.set("timeouts", R.Timeouts);
  Agg.set("retries", R.Retries);
  Agg.set("max_registers_used", R.TotalRegistersUsed);
  Agg.set("spilled_webs", R.TotalSpilledWebs);
  Agg.set("spill_instructions", R.TotalSpillInstructions);
  Agg.set("false_deps", R.TotalFalseDeps);
  Agg.set("static_cycles", R.TotalStaticCycles);
  Agg.set("dyn_cycles", R.TotalDynCycles);
  Agg.set("dyn_instructions", R.TotalDynInstructions);
  Root.set("batch", std::move(Agg));

  // Failures: inputs that never compiled first (they precede the batch
  // in pipeline order), then every function that failed all its rungs.
  json::Value Failures = json::Value::array();
  for (const BatchFailure &F : InputFailures) {
    json::Value One = json::Value::object();
    One.set("name", F.Name);
    One.set("diagnostic", F.Diag.toJson());
    Failures.push(std::move(One));
  }
  for (size_t I = 0; I != R.Results.size(); ++I) {
    if (R.Results[I].Success)
      continue;
    json::Value One = json::Value::object();
    One.set("name", I < Batch.size() ? Batch[I].Name : std::string());
    One.set("diagnostic", R.Results[I].Diag.toJson());
    Failures.push(std::move(One));
  }
  Root.set("failures", std::move(Failures));

  json::Value Degradations = json::Value::array();
  if (HaveOutcomes)
    for (size_t I = 0; I != R.Results.size(); ++I) {
      if (!R.Outcomes[I].Degraded)
        continue;
      json::Value One = json::Value::object();
      One.set("name", I < Batch.size() ? Batch[I].Name : std::string());
      One.set("ladder", outcomeToJson(R.Outcomes[I]));
      Degradations.push(std::move(One));
    }
  Root.set("degradations", std::move(Degradations));

  if (Cache != nullptr)
    Root.set("cache", Cache->statsToJson());
  Root.set("counters", countersToJson());
  // The volatile tail: histogram bucket placement and timers carry wall
  // clock. Identity checks neutralize both (histogram *counts* stay
  // comparable; see Report.h).
  Root.set("histograms", histogramsToJson());
  Root.set("timers", timersToJson());
  return Root;
}
